package godisc

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"godisc/internal/servetest"
)

// buildPublicSofty is a second zoo-independent model with its own name and
// a two-axis dynamic signature, so restart tests cover multiple cache
// entries per directory.
func buildPublicSofty() *Graph {
	g := NewGraph("softy")
	b := g.Ctx.NewDim("B")
	s := g.Ctx.NewDim("S")
	x := g.Parameter("x", F32, Shape{b, s})
	g.SetOutputs(g.Softmax(g.Tanh(x)))
	return g
}

// cacheTestServer registers both restart-test models on a fresh server.
func cacheTestServer(t *testing.T, cfg ServerConfig, opts ...Option) *Server {
	t.Helper()
	srv := NewServer(cfg, opts...)
	if err := srv.Register("mlp", func() *Graph { return buildPublicMLP() }); err != nil {
		t.Fatal(err)
	}
	if err := srv.Register("softy", func() *Graph { return buildPublicSofty() }); err != nil {
		t.Fatal(err)
	}
	return srv
}

// replayRestartTrace sends a deterministic request mix and returns every
// output's raw float32 data, for bit-identical comparison across restarts.
func replayRestartTrace(t *testing.T, srv *Server) [][]float32 {
	t.Helper()
	var outs [][]float32
	for _, batch := range []int{1, 3, 8} {
		resp, err := srv.Infer(context.Background(), &Request{
			Model:  "mlp",
			Inputs: []*Tensor{RandN(uint64(100+batch), 1, batch, 8)},
		})
		if err != nil {
			t.Fatalf("mlp batch %d: %v", batch, err)
		}
		outs = append(outs, append([]float32(nil), resp.Outputs[0].F32()...))
	}
	for _, bs := range [][2]int{{2, 5}, {4, 9}} {
		resp, err := srv.Infer(context.Background(), &Request{
			Model:  "softy",
			Inputs: []*Tensor{RandN(uint64(200+bs[0]), 1, bs[0], bs[1])},
		})
		if err != nil {
			t.Fatalf("softy %v: %v", bs, err)
		}
		outs = append(outs, append([]float32(nil), resp.Outputs[0].F32()...))
	}
	return outs
}

func shutdownServer(t *testing.T, srv *Server) {
	t.Helper()
	servetest.Drain(t, srv)
}

// TestEngineCacheWarmRestart is the headline persistence check: a second
// server on the same cache directory must serve the whole trace from disk
// — zero compiler invocations — and produce bit-identical outputs.
func TestEngineCacheWarmRestart(t *testing.T) {
	dir := t.TempDir()

	cold := cacheTestServer(t, ServerConfig{MaxConcurrent: 4}, WithEngineCache(dir))
	coldOuts := replayRestartTrace(t, cold)
	cst := cold.Stats()
	if cst.Compilations == 0 || cst.EnginePersists == 0 {
		t.Fatalf("cold server must compile and persist: %+v", cst)
	}
	shutdownServer(t, cold)

	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var engFiles int
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".eng" {
			engFiles++
		}
	}
	if engFiles != 2 {
		t.Fatalf("want 2 persisted engines, got %d: %v", engFiles, ents)
	}

	warm := cacheTestServer(t, ServerConfig{MaxConcurrent: 4}, WithEngineCache(dir))
	warmOuts := replayRestartTrace(t, warm)
	wst := warm.Stats()
	if wst.Compilations != 0 {
		t.Fatalf("warm restart must not invoke the compiler: %d compilations", wst.Compilations)
	}
	if wst.EngineLoads != 2 {
		t.Fatalf("warm restart must load both engines from disk: %+v", wst)
	}
	shutdownServer(t, warm)

	if len(coldOuts) != len(warmOuts) {
		t.Fatalf("trace lengths differ: %d vs %d", len(coldOuts), len(warmOuts))
	}
	for i := range coldOuts {
		if len(coldOuts[i]) != len(warmOuts[i]) {
			t.Fatalf("output %d: length %d vs %d", i, len(coldOuts[i]), len(warmOuts[i]))
		}
		for j := range coldOuts[i] {
			if math.Float32bits(coldOuts[i][j]) != math.Float32bits(warmOuts[i][j]) {
				t.Fatalf("output %d[%d]: %x vs %x — warm restart must be bit-identical",
					i, j, coldOuts[i][j], warmOuts[i][j])
			}
		}
	}
}

// TestEngineCacheFingerprintBump proves a config change invalidates the
// cache safely: entries persisted under one device are quarantined — not
// served — by a server compiled for another, which recompiles instead.
func TestEngineCacheFingerprintBump(t *testing.T) {
	dir := t.TempDir()

	a10 := cacheTestServer(t, ServerConfig{MaxConcurrent: 4},
		WithEngineCache(dir), WithDevice(A10()))
	replayRestartTrace(t, a10)
	shutdownServer(t, a10)

	t4 := cacheTestServer(t, ServerConfig{MaxConcurrent: 4},
		WithEngineCache(dir), WithDevice(T4()))
	replayRestartTrace(t, t4)
	st := t4.Stats()
	shutdownServer(t, t4)

	if st.EngineMismatch != 2 {
		t.Fatalf("both stale entries must be fingerprint-mismatched: %+v", st)
	}
	if st.Compilations != 2 || st.EngineLoads != 0 {
		t.Fatalf("stale entries must be recompiled, never served: %+v", st)
	}
	bad, err := os.ReadDir(filepath.Join(dir, ".bad"))
	if err != nil || len(bad) != 2 {
		t.Fatalf("stale entries must be quarantined to .bad/: %v %v", bad, err)
	}
}

// TestEngineCacheCorruptEntry flips bytes in a persisted engine and
// restarts: the damaged entry must be quarantined and recompiled without
// any request failing.
func TestEngineCacheCorruptEntry(t *testing.T) {
	dir := t.TempDir()

	cold := cacheTestServer(t, ServerConfig{MaxConcurrent: 4}, WithEngineCache(dir))
	replayRestartTrace(t, cold)
	shutdownServer(t, cold)

	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var damaged int
	for _, e := range ents {
		if filepath.Ext(e.Name()) != ".eng" || damaged > 0 {
			continue
		}
		p := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		for i := len(data) / 2; i < len(data); i += 97 {
			data[i] ^= 0x5a
		}
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		damaged++
	}
	if damaged != 1 {
		t.Fatalf("expected to damage one entry, got %d", damaged)
	}

	warm := cacheTestServer(t, ServerConfig{MaxConcurrent: 4}, WithEngineCache(dir))
	replayRestartTrace(t, warm)
	st := warm.Stats()
	shutdownServer(t, warm)

	if st.EngineCorrupt != 1 {
		t.Fatalf("damaged entry must be detected: %+v", st)
	}
	if st.Compilations != 1 || st.EngineLoads != 1 {
		t.Fatalf("one recompile + one disk load wanted: %+v", st)
	}
	if bad, err := os.ReadDir(filepath.Join(dir, ".bad")); err != nil || len(bad) != 1 {
		t.Fatalf("damaged entry must be quarantined: %v %v", bad, err)
	}
}

// TestEngineCacheAsyncCompile serves a first-seen signature through the
// public API with AsyncCompile on: the first response comes from the
// interpreter immediately (Compiling), later responses from the compiled
// engine, and both agree with the reference evaluator.
func TestEngineCacheAsyncCompile(t *testing.T) {
	srv := cacheTestServer(t, ServerConfig{
		MaxConcurrent: 4,
		AsyncCompile:  true,
		CacheDir:      t.TempDir(),
	})
	in := RandN(7, 1, 5, 8)
	first, err := srv.Infer(context.Background(), &Request{Model: "mlp", Inputs: []*Tensor{in}})
	if err != nil {
		t.Fatal(err)
	}
	if !first.Compiling || !first.Fallback {
		t.Fatalf("first-seen signature must be served by the interpreter while compiling: %+v", first)
	}
	want, err := Evaluate(buildPublicMLP(), []*Tensor{in})
	if err != nil {
		t.Fatal(err)
	}
	if err := AllClose(first.Outputs[0], want[0], 1e-5, 1e-6); err != nil {
		t.Fatalf("fallback output: %v", err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := srv.Infer(context.Background(), &Request{Model: "mlp", Inputs: []*Tensor{in}})
		if err != nil {
			t.Fatal(err)
		}
		if resp.CacheHit && !resp.Compiling {
			if err := AllClose(resp.Outputs[0], want[0], 1e-5, 1e-6); err != nil {
				t.Fatalf("engine output: %v", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background compile never delivered an engine")
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := srv.Stats()
	shutdownServer(t, srv)
	if st.Compilations != 1 {
		t.Fatalf("exactly one background compile wanted: %+v", st)
	}
	if st.FallbackRuns == 0 {
		t.Fatal("first request must run on the interpreter")
	}
	if st.EnginePersists != 1 {
		t.Fatalf("async-compiled engine must be persisted: %+v", st)
	}
}
