// custom_pipeline shows the compiler's ablation hooks: the same attention
// block compiled with fusion/stitching/specialization selectively disabled,
// with kernel counts and simulated time side by side — a miniature of the
// paper's contribution-breakdown experiment.
package main

import (
	"fmt"
	"log"
	"math"

	"godisc"
)

// buildAttention builds one scaled-dot-product attention head with dynamic
// batch and sequence length.
func buildAttention() *godisc.Graph {
	g := godisc.NewGraph("attention")
	b := g.Ctx.NewDim("B")
	s := g.Ctx.NewDim("S")
	g.Ctx.DeclareRange(s, 1, 512)
	h := g.Ctx.StaticDim(32)
	q := g.Parameter("q", godisc.F32, godisc.Shape{b, s, h})
	k := g.Parameter("k", godisc.F32, godisc.Shape{b, s, h})
	v := g.Parameter("v", godisc.F32, godisc.Shape{b, s, h})
	scale := g.ConstScalar(float32(1 / math.Sqrt(32)))
	scores := g.Mul(g.MatMul(q, g.Transpose(k, 0, 2, 1)), scale)
	g.SetOutputs(g.MatMul(g.Softmax(scores), v))
	return g
}

func main() {
	configs := []struct {
		name string
		opts []godisc.Option
	}{
		{"no fusion", []godisc.Option{godisc.WithoutFusion()}},
		{"no stitch", []godisc.Option{godisc.WithoutStitch()}},
		{"no specialization", []godisc.Option{godisc.WithoutSpecialization()}},
		{"full pipeline", nil},
	}
	shape := [][]int{{8, 96, 32}, {8, 96, 32}, {8, 96, 32}}

	fmt.Println("config               kernels     µs/request")
	fmt.Println("--------------------------------------------")
	for _, c := range configs {
		eng, err := godisc.CompileWith(buildAttention(), c.opts...)
		if err != nil {
			log.Fatal(err)
		}
		prof, err := eng.Simulate(shape)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %7d %14.1f\n", c.name, eng.Kernels(), prof.SimulatedNs/1e3)
	}

	// Correctness holds in every configuration: compare two of them.
	full, _ := godisc.CompileWith(buildAttention())
	none, _ := godisc.CompileWith(buildAttention(), godisc.WithoutFusion())
	q := godisc.RandN(1, 1, 2, 9, 32)
	k := godisc.RandN(2, 1, 2, 9, 32)
	v := godisc.RandN(3, 1, 2, 9, 32)
	rf, err := full.Run([]*godisc.Tensor{q, k, v})
	if err != nil {
		log.Fatal(err)
	}
	rn, err := none.Run([]*godisc.Tensor{q, k, v})
	if err != nil {
		log.Fatal(err)
	}
	if err := godisc.AllClose(rf.Outputs[0], rn.Outputs[0], 1e-4, 1e-5); err != nil {
		log.Fatal("configurations disagree: ", err)
	}
	fmt.Println("\nall configurations produce identical numerics (verified)")
}
