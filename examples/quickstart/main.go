// Quickstart: build a small model with a dynamic batch dimension, compile
// it once, and run it at several batch sizes — the core promise of the
// dynamic-shape compiler is that the second and third runs reuse the same
// executable with no recompilation.
package main

import (
	"fmt"
	"log"

	"godisc"
)

func main() {
	// Build y = relu(x·W + b) with a symbolic batch dimension.
	g := godisc.NewGraph("quickstart")
	batch := g.Ctx.NewDim("B")
	x := g.Parameter("x", godisc.F32, godisc.Shape{batch, g.Ctx.StaticDim(16)})
	w := g.Constant(godisc.RandN(1, 0.3, 16, 4))
	bias := g.Constant(godisc.RandN(2, 0.3, 4))
	g.SetOutputs(g.Relu(g.Add(g.MatMul(x, w), bias)))

	// Compile once. The engine is shape-generic: its cache signature
	// mentions the symbol d0, not a number.
	eng, err := godisc.CompileWith(g, godisc.WithDevice(godisc.A10()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %d kernels, signature %s\n\n", eng.Kernels(), eng.Signature())

	// Run at three different batch sizes with the same executable.
	for _, b := range []int{1, 8, 129} {
		in := godisc.RandN(uint64(b), 1, b, 16)
		res, err := eng.Run([]*godisc.Tensor{in})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("batch %3d -> output %v, %d launches, %.1f µs simulated\n",
			b, res.Outputs[0].Shape(), res.Profile.Launches, res.Profile.SimulatedNs/1e3)
	}
}
