// bert_serving replays a realistic online-serving trace (Zipf-distributed
// sequence lengths, mixed batch sizes) through the compiled BERT encoder
// and through an eager-framework baseline, printing the running latency
// comparison — the scenario the paper's end-to-end evaluation measures.
package main

import (
	"fmt"
	"log"

	"godisc"
)

func main() {
	model, err := godisc.ModelByName("bert")
	if err != nil {
		log.Fatal(err)
	}
	suite, err := godisc.NewBaselineSuite(model.Build, godisc.A10())
	if err != nil {
		log.Fatal(err)
	}
	disc := suite["BladeDISC"]
	eager := suite["PyTorch"]

	// A small hand-rolled serving trace: (batch, seqLen) pairs with the
	// skew of production traffic — many short requests, a few long ones.
	trace := [][2]int{
		{1, 12}, {4, 24}, {1, 12}, {8, 96}, {2, 12}, {1, 48},
		{4, 24}, {1, 12}, {2, 128}, {1, 12}, {4, 48}, {1, 24},
	}

	fmt.Println("request   shape        BladeDISC      PyTorch   speedup")
	fmt.Println("---------------------------------------------------------")
	var discTotal, eagerTotal float64
	for i, bs := range trace {
		shapes := [][]int{{bs[0], bs[1]}, {bs[0], bs[1]}} // ids + position ids
		dp, err := disc.Simulate(shapes)
		if err != nil {
			log.Fatal(err)
		}
		ep, err := eager.Simulate(shapes)
		if err != nil {
			log.Fatal(err)
		}
		// Exclude the one-time compilation from the per-request view.
		d := dp.SimulatedNs - dp.CompileNs
		e := ep.SimulatedNs - ep.CompileNs
		discTotal += d
		eagerTotal += e
		fmt.Printf("%7d   b=%-2d s=%-4d %8.1fµs  %8.1fµs   %5.2fx\n",
			i, bs[0], bs[1], d/1e3, e/1e3, e/d)
	}
	fmt.Println("---------------------------------------------------------")
	fmt.Printf("total: BladeDISC %.2fms, PyTorch %.2fms — %.2fx end to end\n",
		discTotal/1e6, eagerTotal/1e6, eagerTotal/discTotal)
	fmt.Println("\n(every request above reused one compiled executable — no recompilation)")
}
