// serialize_deploy demonstrates the model-artifact workflow: a "training
// side" builds a graph and writes it as a portable text artifact; a
// "serving side" parses the artifact — symbolic dimensions, shape facts
// and weights intact — compiles it once, and serves dynamic shapes. This
// is the same format `discc -o / -in` uses.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"godisc"
)

func main() {
	// --- training side: build and export ---
	g := godisc.NewGraph("sentiment")
	b := g.Ctx.NewDim("B")
	s := g.Ctx.NewDim("S")
	g.Ctx.DeclareRange(s, 1, 128)
	ids := g.Parameter("ids", godisc.I32, godisc.Shape{b, s})
	table := g.Constant(godisc.RandN(1, 0.1, 64, 16))
	emb := g.Gather(table, ids)            // [B,S,16]
	pooled := g.Mean(emb, []int{1}, false) // [B,16]
	w := g.Constant(godisc.RandN(2, 0.2, 16, 2))
	g.SetOutputs(g.Softmax(g.MatMul(pooled, w)))

	artifact := godisc.WriteGraph(g)
	path := filepath.Join(os.TempDir(), "sentiment.disc")
	if err := os.WriteFile(path, []byte(artifact), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported %s (%d bytes, %d nodes)\n\n", path, len(artifact), len(g.Toposort()))

	// --- serving side: parse, compile once, serve many shapes ---
	src, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := godisc.ParseGraph(string(src))
	if err != nil {
		log.Fatal(err)
	}
	eng, err := godisc.CompileWith(loaded, godisc.WithDevice(godisc.T4()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %d kernels, cache signature %s\n", eng.Kernels(), eng.Signature())

	for _, req := range [][2]int{{1, 7}, {4, 32}, {2, 128}} {
		in := godisc.NewTensor(godisc.I32, req[0], req[1])
		for i := range in.I32() {
			in.I32()[i] = int32(i % 64)
		}
		res, err := eng.Run([]*godisc.Tensor{in})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("request b=%d s=%-4d -> probs %v (%d launches)\n",
			req[0], req[1], res.Outputs[0].Shape(), res.Profile.Launches)
	}
	fmt.Println("\nartifact round trip preserved symbols, facts and weights — one compile served all shapes")
}
