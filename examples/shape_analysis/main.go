// shape_analysis demonstrates the cross-level symbolic shape machinery:
// how dimension symbols propagate through operators, what the shape
// constraint context proves (equality, product equality from reshape,
// divisibility, ranges), and how those facts decide fusion legality and
// compile-time variant pruning.
package main

import (
	"fmt"
	"log"

	"godisc"
)

func main() {
	g := godisc.NewGraph("analysis")
	ctx := g.Ctx

	// Two dynamic dims with declared facts: S in [1, 512], H divisible by 4.
	b := ctx.NewDim("B")
	s := ctx.NewDim("S")
	ctx.DeclareRange(s, 1, 512)
	h := ctx.NewDim("H")
	ctx.DeclareDivisible(h, 4)

	x := g.Parameter("x", godisc.F32, godisc.Shape{b, s, h})
	fmt.Printf("x            : %s\n", ctx.String(x.Shape))

	// Elementwise ops reuse the same symbols — that is the propagation.
	y := g.Exp(x)
	fmt.Printf("exp(x)       : %s (same symbols: %v)\n",
		ctx.String(y.Shape), ctx.ShapeEqual(x.Shape, y.Shape))

	// Reshape records a product fact: [B,S,H] and [B*S,H] provably hold
	// the same elements, so a fused loop may run straight through it.
	m := g.MergeDims(y, 0, 2)
	fmt.Printf("reshape      : %s (product-equal to x: %v)\n",
		ctx.String(m.Shape), ctx.ProductEqual(m.Shape, x.Shape))

	// Broadcasting a bias unifies nothing but is provably loop-compatible.
	bias := g.Parameter("bias", godisc.F32, godisc.Shape{h})
	z := g.Add(m, bias)
	fmt.Printf("add bias     : %s\n", ctx.String(z.Shape))

	// Declared facts visible to codegen:
	lo, hi := ctx.Range(s)
	fmt.Printf("\nfacts: S in [%d, %d]  (stitch budget provable: %v)\n", lo, hi, hi <= 4096)
	fmt.Printf("       H divisible by %d (vectorized variant provable)\n", ctx.Divisor(h))

	g.SetOutputs(g.Relu(z))
	eng, err := godisc.CompileWith(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompiled plan (%d kernels):\n%s", eng.Kernels(), eng.PlanSummary())
	fmt.Printf("cache signature: %s\n", eng.Signature())

	// One executable, many shapes — including shapes sharing B and S.
	for _, shape := range [][]int{{2, 7, 8}, {1, 512, 64}} {
		in := godisc.RandN(9, 1, shape...)
		bv := godisc.RandN(10, 1, shape[2])
		res, err := eng.Run([]*godisc.Tensor{in, bv})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("run %v -> %v in %d launch(es)\n",
			shape, res.Outputs[0].Shape(), res.Profile.Launches)
	}
}
