// serving demonstrates the concurrent serving runtime: one godisc.Server
// fronts a model with dynamic shapes, compiles it exactly once per
// symbolic signature (no matter how many requests race on the cold
// cache), executes requests from many goroutines against the one cached
// engine, and reports the serving counters.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"godisc"
)

// buildClassifier is a small two-layer net with a dynamic batch axis: the
// symbolic signature "[d0,32]" is the engine-cache key that serves every
// batch size below.
func buildClassifier() *godisc.Graph {
	g := godisc.NewGraph("classifier")
	b := g.Ctx.NewDim("B")
	g.Ctx.DeclareRange(b, 1, 256)
	x := g.Parameter("x", godisc.F32, godisc.Shape{b, g.Ctx.StaticDim(32)})
	w1 := g.Constant(godisc.RandN(1, 0.2, 32, 64))
	w2 := g.Constant(godisc.RandN(2, 0.2, 64, 10))
	g.SetOutputs(g.Softmax(g.MatMul(g.Relu(g.MatMul(x, w1)), w2)))
	return g
}

func main() {
	srv := godisc.NewServer(
		godisc.ServerConfig{MaxConcurrent: 4, QueueDepth: 32},
		godisc.WithDevice(godisc.A10()),
	)
	defer srv.Close()
	if err := srv.Register("classifier", buildClassifier); err != nil {
		log.Fatal(err)
	}

	// 16 concurrent requests with mixed batch sizes hit the cold cache at
	// once; the singleflight engine cache compiles once and everyone
	// shares the result.
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			batch := 1 + i*3%17
			in := godisc.RandN(uint64(i), 0.5, batch, 32)
			resp, err := srv.Infer(context.Background(),
				&godisc.Request{Model: "classifier", Inputs: []*godisc.Tensor{in}})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("request %2d: batch=%-3d signature=%s cacheHit=%-5v sim=%.1fµs\n",
				i, batch, resp.Signature, resp.CacheHit, resp.Profile.SimulatedNs/1e3)
		}(i)
	}
	wg.Wait()

	st := srv.Stats()
	fmt.Printf("\n%s\n", st)
	fmt.Printf("→ %d engines for %d requests: one compilation per symbolic signature\n",
		st.Engines, st.Requests)
}
