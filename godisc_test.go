package godisc

import (
	"strings"
	"testing"
)

// buildPublicMLP builds a small model purely through the public API.
func buildPublicMLP() *Graph {
	g := NewGraph("mlp")
	b := g.Ctx.NewDim("B")
	x := g.Parameter("x", F32, Shape{b, g.Ctx.StaticDim(8)})
	w := g.Constant(RandN(1, 0.3, 8, 4))
	bias := g.Constant(RandN(2, 0.3, 4))
	g.SetOutputs(g.Relu(g.Add(g.MatMul(x, w), bias)))
	return g
}

func TestPublicCompileAndRun(t *testing.T) {
	eng, err := Compile(buildPublicMLP(), Options{Device: A10()})
	if err != nil {
		t.Fatal(err)
	}
	ref := buildPublicMLP()
	for _, batch := range []int{1, 7, 32} {
		in := RandN(uint64(batch), 1, batch, 8)
		res, err := eng.Run([]*Tensor{in})
		if err != nil {
			t.Fatal(err)
		}
		want, err := Evaluate(ref, []*Tensor{in})
		if err != nil {
			t.Fatal(err)
		}
		if err := AllClose(res.Outputs[0], want[0], 1e-5, 1e-6); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if res.Profile.Launches == 0 {
			t.Fatal("no launches recorded")
		}
	}
}

func TestPublicOptionsAblation(t *testing.T) {
	full, err := Compile(buildPublicMLP(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	unfused, err := Compile(buildPublicMLP(), Options{DisableFusion: true})
	if err != nil {
		t.Fatal(err)
	}
	if full.Kernels() >= unfused.Kernels() {
		t.Fatalf("fusion must reduce kernels: %d vs %d", full.Kernels(), unfused.Kernels())
	}
}

func TestPublicSignatureAndSummary(t *testing.T) {
	eng, err := Compile(buildPublicMLP(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sig := eng.Signature(); sig != "[d0,8]" {
		t.Fatalf("signature %q", sig)
	}
	if !strings.Contains(eng.PlanSummary(), "group") {
		t.Fatal("plan summary empty")
	}
}

func TestPublicSimulate(t *testing.T) {
	eng, err := Compile(buildPublicMLP(), Options{Device: T4()})
	if err != nil {
		t.Fatal(err)
	}
	p, err := eng.Simulate([][]int{{128, 8}})
	if err != nil {
		t.Fatal(err)
	}
	if p.SimulatedNs <= 0 {
		t.Fatal("no simulated time")
	}
}

func TestPublicModelZoo(t *testing.T) {
	if len(Models()) != 7 {
		t.Fatalf("zoo size %d", len(Models()))
	}
	m, err := ModelByName("bert")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Compile(m.Build(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Kernels() == 0 {
		t.Fatal("empty plan")
	}
}

func TestPublicBaselineSuite(t *testing.T) {
	suite, err := NewBaselineSuite(buildPublicMLP, A10())
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 8 {
		t.Fatalf("suite size %d", len(suite))
	}
	in := RandN(3, 1, 4, 8)
	for name, s := range suite {
		if _, prof, err := s.Invoke([]*Tensor{in}); err != nil || prof.SimulatedNs <= 0 {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestPublicVerboseTrace(t *testing.T) {
	g := NewGraph("t")
	b := g.Ctx.NewDim("B")
	x := g.Parameter("x", F32, Shape{b})
	g.SetOutputs(g.Softmax(g.Add(x, Scalar0(g))))
	var lines []string
	_, err := Compile(g, Options{Verbose: func(f string, a ...any) {
		lines = append(lines, f)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("verbose trace empty")
	}
}

// Scalar0 adds a zero constant through the graph (exercises simplify).
func Scalar0(g *Graph) *Node { return g.ConstScalar(0) }

func TestCompileRejectsInvalidGraphs(t *testing.T) {
	// No outputs.
	g := NewGraph("empty")
	b := g.Ctx.NewDim("B")
	g.Parameter("x", F32, Shape{b})
	if _, err := Compile(g, Options{}); err == nil {
		t.Fatal("graph without outputs must fail to compile")
	}
}

func TestCompileAllAblationKnobs(t *testing.T) {
	opts := []Options{
		{DisableStitch: true},
		{DisableHorizontal: true},
		{DisableFusion: true},
		{DisableSpecialization: true},
		{DisableStitch: true, DisableSpecialization: true},
	}
	in := RandN(1, 0.5, 3, 8)
	ref, err := Evaluate(buildPublicMLP(), []*Tensor{in})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range opts {
		eng, err := Compile(buildPublicMLP(), o)
		if err != nil {
			t.Fatalf("opts %d: %v", i, err)
		}
		res, err := eng.Run([]*Tensor{in})
		if err != nil {
			t.Fatalf("opts %d: %v", i, err)
		}
		if err := AllClose(res.Outputs[0], ref[0], 1e-5, 1e-6); err != nil {
			t.Fatalf("opts %d: %v", i, err)
		}
	}
}
