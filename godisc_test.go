package godisc

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

// buildPublicMLP builds a small model purely through the public API.
func buildPublicMLP() *Graph {
	g := NewGraph("mlp")
	b := g.Ctx.NewDim("B")
	x := g.Parameter("x", F32, Shape{b, g.Ctx.StaticDim(8)})
	w := g.Constant(RandN(1, 0.3, 8, 4))
	bias := g.Constant(RandN(2, 0.3, 4))
	g.SetOutputs(g.Relu(g.Add(g.MatMul(x, w), bias)))
	return g
}

func TestPublicCompileAndRun(t *testing.T) {
	eng, err := CompileWith(buildPublicMLP(), WithDevice(A10()))
	if err != nil {
		t.Fatal(err)
	}
	ref := buildPublicMLP()
	for _, batch := range []int{1, 7, 32} {
		in := RandN(uint64(batch), 1, batch, 8)
		res, err := eng.Run([]*Tensor{in})
		if err != nil {
			t.Fatal(err)
		}
		want, err := Evaluate(ref, []*Tensor{in})
		if err != nil {
			t.Fatal(err)
		}
		if err := AllClose(res.Outputs[0], want[0], 1e-5, 1e-6); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if res.Profile.Launches == 0 {
			t.Fatal("no launches recorded")
		}
	}
}

func TestPublicOptionsAblation(t *testing.T) {
	full, err := CompileWith(buildPublicMLP())
	if err != nil {
		t.Fatal(err)
	}
	unfused, err := CompileWith(buildPublicMLP(), WithoutFusion())
	if err != nil {
		t.Fatal(err)
	}
	if full.Kernels() >= unfused.Kernels() {
		t.Fatalf("fusion must reduce kernels: %d vs %d", full.Kernels(), unfused.Kernels())
	}
}

func TestPublicSignatureAndSummary(t *testing.T) {
	eng, err := CompileWith(buildPublicMLP())
	if err != nil {
		t.Fatal(err)
	}
	if sig := eng.Signature(); sig != "[d0,8]" {
		t.Fatalf("signature %q", sig)
	}
	if !strings.Contains(eng.PlanSummary(), "group") {
		t.Fatal("plan summary empty")
	}
}

func TestPublicSimulate(t *testing.T) {
	eng, err := CompileWith(buildPublicMLP(), WithDevice(T4()))
	if err != nil {
		t.Fatal(err)
	}
	p, err := eng.Simulate([][]int{{128, 8}})
	if err != nil {
		t.Fatal(err)
	}
	if p.SimulatedNs <= 0 {
		t.Fatal("no simulated time")
	}
}

func TestPublicModelZoo(t *testing.T) {
	if len(Models()) != 7 {
		t.Fatalf("zoo size %d", len(Models()))
	}
	m, err := ModelByName("bert")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := CompileWith(m.Build())
	if err != nil {
		t.Fatal(err)
	}
	if eng.Kernels() == 0 {
		t.Fatal("empty plan")
	}
}

func TestPublicBaselineSuite(t *testing.T) {
	suite, err := NewBaselineSuite(buildPublicMLP, A10())
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 8 {
		t.Fatalf("suite size %d", len(suite))
	}
	in := RandN(3, 1, 4, 8)
	for name, s := range suite {
		if _, prof, err := s.Invoke([]*Tensor{in}); err != nil || prof.SimulatedNs <= 0 {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestPublicVerboseTrace(t *testing.T) {
	g := NewGraph("t")
	b := g.Ctx.NewDim("B")
	x := g.Parameter("x", F32, Shape{b})
	g.SetOutputs(g.Softmax(g.Add(x, Scalar0(g))))
	var lines []string
	_, err := CompileWith(g, WithVerbose(func(f string, a ...any) {
		lines = append(lines, f)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("verbose trace empty")
	}
}

// Scalar0 adds a zero constant through the graph (exercises simplify).
func Scalar0(g *Graph) *Node { return g.ConstScalar(0) }

func TestCompileRejectsInvalidGraphs(t *testing.T) {
	// No outputs.
	g := NewGraph("empty")
	b := g.Ctx.NewDim("B")
	g.Parameter("x", F32, Shape{b})
	if _, err := CompileWith(g); err == nil {
		t.Fatal("graph without outputs must fail to compile")
	}
}

func TestCompileAllAblationKnobs(t *testing.T) {
	opts := [][]Option{
		{WithoutStitch()},
		{WithoutHorizontalFusion()},
		{WithoutFusion()},
		{WithoutSpecialization()},
		{WithoutStitch(), WithoutSpecialization()},
	}
	in := RandN(1, 0.5, 3, 8)
	ref, err := Evaluate(buildPublicMLP(), []*Tensor{in})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range opts {
		eng, err := CompileWith(buildPublicMLP(), o...)
		if err != nil {
			t.Fatalf("opts %d: %v", i, err)
		}
		res, err := eng.Run([]*Tensor{in})
		if err != nil {
			t.Fatalf("opts %d: %v", i, err)
		}
		if err := AllClose(res.Outputs[0], ref[0], 1e-5, 1e-6); err != nil {
			t.Fatalf("opts %d: %v", i, err)
		}
	}
}

// TestRunContextPublic: context cancellation works through the public
// surface and surfaces as the context error.
func TestRunContextPublic(t *testing.T) {
	eng, err := CompileWith(buildPublicMLP())
	if err != nil {
		t.Fatal(err)
	}
	in := RandN(3, 1, 4, 8)
	res, err := eng.RunContext(context.Background(), []*Tensor{in})
	if err != nil || len(res.Outputs) != 1 {
		t.Fatalf("RunContext: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.RunContext(ctx, []*Tensor{in}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RunContext: %v", err)
	}
}

// TestSentinelErrorsPublic: compile and shape failures branch with
// errors.Is on the exported sentinels.
func TestSentinelErrorsPublic(t *testing.T) {
	g := NewGraph("bad")
	g.Parameter("x", F32, Shape{g.Ctx.NewDim("B")})
	// No outputs: the pipeline rejects the graph.
	if _, err := CompileWith(g); !errors.Is(err, ErrCompileFailed) {
		t.Fatalf("compile err = %v, want ErrCompileFailed", err)
	}

	eng, err := CompileWith(buildPublicMLP())
	if err != nil {
		t.Fatal(err)
	}
	wrong := RandN(1, 1, 4, 9) // static dim is 8
	if _, err := eng.Run([]*Tensor{wrong}); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("run err = %v, want ErrShapeMismatch", err)
	}
}

// TestPublicServer drives the serving runtime end to end through the
// public API: register, warm, concurrent Infer, stats.
func TestPublicServer(t *testing.T) {
	srv := NewServer(ServerConfig{MaxConcurrent: 8}, WithDevice(A10()))
	if err := srv.Register("mlp", buildPublicMLP); err != nil {
		t.Fatal(err)
	}

	ref := buildPublicMLP()
	var wg sync.WaitGroup
	errc := make(chan error, 12)
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			batch := 1 + i%5
			in := RandN(uint64(100+batch), 1, batch, 8)
			resp, err := srv.Infer(context.Background(), &Request{Model: "mlp", Inputs: []*Tensor{in}})
			if err != nil {
				errc <- err
				return
			}
			want, err := Evaluate(ref, []*Tensor{in})
			if err != nil {
				errc <- err
				return
			}
			if err := AllClose(resp.Outputs[0], want[0], 1e-4, 1e-5); err != nil {
				errc <- err
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Completed != 12 || st.Engines != 1 || st.CacheMisses != 1 {
		t.Fatalf("stats: %s", st)
	}
	srv.Close()
	if _, err := srv.Infer(context.Background(), &Request{Model: "mlp"}); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("after close: %v", err)
	}
}

// TestConcurrentEngineRunMatchesEvaluate runs one public Engine from 8
// goroutines with mixed dynamic shapes, checks every result against
// Evaluate, and asserts the shared buffer pool stays consistent (drains
// to zero outstanding buffers, reuses across runs).
func TestConcurrentEngineRunMatchesEvaluate(t *testing.T) {
	eng, err := CompileWith(buildPublicMLP())
	if err != nil {
		t.Fatal(err)
	}
	ref := buildPublicMLP()
	batches := []int{1, 2, 5, 9, 16, 23, 32, 48}
	inputs := make([]*Tensor, len(batches))
	wants := make([][]*Tensor, len(batches))
	for i, b := range batches {
		inputs[i] = RandN(uint64(200+b), 1, b, 8)
		want, err := Evaluate(ref, []*Tensor{inputs[i]})
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = want
	}

	var wg sync.WaitGroup
	errc := make(chan error, 8*6)
	for gi := 0; gi < 8; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for it := 0; it < 6; it++ {
				ci := (gi + it) % len(batches)
				res, err := eng.Run([]*Tensor{inputs[ci]})
				if err != nil {
					errc <- err
					return
				}
				if err := AllClose(res.Outputs[0], wants[ci][0], 1e-4, 1e-5); err != nil {
					errc <- err
					return
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	st := eng.exe.Pool.Stats()
	if st.InUseElems != 0 {
		t.Fatalf("pool has %d elems outstanding after concurrent runs", st.InUseElems)
	}
	if st.Reuses == 0 {
		t.Fatal("steady-state concurrent serving must reuse pooled buffers")
	}
}
