module godisc

go 1.22
