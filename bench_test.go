package godisc

// One testing.B benchmark per table/figure of the paper reproduction
// (experiment index in DESIGN.md §4). Each benchmark drives the
// corresponding internal/bench experiment and reports its headline numbers
// as custom metrics, so `go test -bench=.` regenerates the whole
// evaluation. cmd/discbench prints the full tables.

import (
	"testing"

	"godisc/internal/bench"
	"godisc/internal/models"
	"godisc/internal/tensor"
)

// benchCfg is sized so the full `-bench=.` run completes in seconds while
// keeping every mechanism (cache misses, tuning budgets, padding) active.
func benchCfg() bench.Config {
	cfg := bench.DefaultConfig()
	cfg.Requests = 60
	return cfg
}

// BenchmarkE1ModelSuite regenerates the model-inventory table.
func BenchmarkE1ModelSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.ModelSuite(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 7 {
			b.Fatalf("rows %d", len(rows))
		}
	}
}

// benchEndToEnd shares the E2/E3 driver across devices.
func benchEndToEnd(b *testing.B, device string) {
	cfg := benchCfg()
	cfg.Device = device
	var res *bench.EndToEndResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.EndToEnd(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, base := range bench.BaselineOrder {
		b.ReportMetric(res.MeanSpeedup[base], "mean_x_"+base)
	}
}

// BenchmarkE2EndToEndA10 regenerates the A10 end-to-end speedup figure.
func BenchmarkE2EndToEndA10(b *testing.B) { benchEndToEnd(b, "A10") }

// BenchmarkE3EndToEndT4 regenerates the T4 end-to-end speedup figure.
func BenchmarkE3EndToEndT4(b *testing.B) { benchEndToEnd(b, "T4") }

// BenchmarkE4Ablation regenerates the contribution-breakdown figure.
func BenchmarkE4Ablation(b *testing.B) {
	cfg := benchCfg()
	cfg.Models = []string{"bert", "gpt2"}
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Ablation(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	full := rows[len(rows)-1]
	b.ReportMetric(full.SpeedupOverBase["bert"], "bert_full_x")
	b.ReportMetric(full.SpeedupOverBase["gpt2"], "gpt2_full_x")
}

// BenchmarkE5ShapeDiversity regenerates the shape-diversity sweep.
func BenchmarkE5ShapeDiversity(b *testing.B) {
	cfg := benchCfg()
	var pts []bench.DiversityPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = bench.ShapeDiversity(cfg, "bert", []int{1, 4, 16, 64})
		if err != nil {
			b.Fatal(err)
		}
	}
	last := pts[len(pts)-1]
	b.ReportMetric(last.NsPerRequest["XLA"]/last.NsPerRequest["BladeDISC"], "xla_vs_disc_at_64")
}

// BenchmarkE6FusionStats regenerates the fusion-statistics table.
func BenchmarkE6FusionStats(b *testing.B) {
	cfg := benchCfg()
	cfg.Models = []string{"bert", "gpt2", "seq2seq"}
	var rows []bench.FusionStatsRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.FusionStats(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].LaunchesUnfused/rows[0].LaunchesFused, "bert_launch_reduction")
}

// BenchmarkE7ConstraintAblation regenerates the constraint-granularity
// figure.
func BenchmarkE7ConstraintAblation(b *testing.B) {
	cfg := benchCfg()
	cfg.Models = []string{"bert"}
	var rows []bench.ConstraintRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.ConstraintAblation(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].Kernels["bert"])/float64(rows[len(rows)-1].Kernels["bert"]),
		"kernel_reduction_full_vs_static")
}

// BenchmarkE8Specialization regenerates the variant-dispatch table.
func BenchmarkE8Specialization(b *testing.B) {
	var rows []bench.SpecializationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Specialization(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	best := 1.0
	for _, r := range rows {
		if g := r.NsOff / r.NsOn; g > best {
			best = g
		}
	}
	b.ReportMetric(best, "best_variant_gain_x")
}

// BenchmarkE9CompileCache regenerates the compilation-cache table.
func BenchmarkE9CompileCache(b *testing.B) {
	var rows []bench.CacheRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.CompileCache(benchCfg(), "bert")
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Trace == "churn" && r.Strategy == "BladeDISC" {
			b.ReportMetric(float64(r.Compiles), "disc_compiles_on_churn")
		}
		if r.Trace == "churn" && r.Strategy == "XLA" {
			b.ReportMetric(float64(r.Compiles), "xla_compiles_on_churn")
		}
	}
}

// BenchmarkCompiledInference measures the real (wall-clock) cost of one
// compiled inference through the kernel interpreter — the substrate's own
// speed, not the simulated device time.
func BenchmarkCompiledInference(b *testing.B) {
	for _, name := range []string{"bert", "gpt2", "dlrm"} {
		b.Run(name, func(b *testing.B) {
			m, err := models.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			eng, err := CompileWith(m.Build())
			if err != nil {
				b.Fatal(err)
			}
			r := tensor.NewRNG(1)
			ins := m.GenInputs(r, 2, 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(ins); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompilation measures wall-clock compilation latency: the whole
// pipeline from model build through codegen.
func BenchmarkCompilation(b *testing.B) {
	m, err := models.ByName("bert")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := CompileWith(m.Build()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10Memory regenerates the device-memory residency table.
func BenchmarkE10Memory(b *testing.B) {
	cfg := benchCfg()
	cfg.Models = []string{"bert", "gpt2"}
	cfg.Requests = 10
	var rows []bench.MemoryRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.MemoryFootprint(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].PeakUnplannedBytes)/float64(rows[0].PeakPlannedBytes), "bert_mem_saving_x")
}

// BenchmarkE11Adaptive regenerates the shape-feedback lifecycle table.
func BenchmarkE11Adaptive(b *testing.B) {
	var rows []bench.AdaptiveRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.AdaptiveSpeculation(benchCfg(), "bert")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].UsPerRequest/rows[2].UsPerRequest, "hot_shape_gain_x")
}

// BenchmarkE14ParallelScaling regenerates the host-parallelism scaling
// curve: modeled DAG-makespan speedup per worker count, the measured
// wall-clock ratio on this host, and the bit-identity proof (1 = every
// parallel output matched the sequential engine bit for bit).
func BenchmarkE14ParallelScaling(b *testing.B) {
	var rows []bench.ParallelRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.ParallelScaling(benchCfg(), []int{1, 2, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	identical := 1.0
	for _, r := range rows {
		if !r.BitIdentical {
			identical = 0
		}
		switch r.Workers {
		case 2:
			b.ReportMetric(r.Speedup, "speedup_w2")
		case 4:
			b.ReportMetric(r.Speedup, "speedup_w4")
			b.ReportMetric(r.WallSpeedup, "wall_speedup_w4")
		case 8:
			b.ReportMetric(r.Speedup, "speedup_w8")
		}
	}
	b.ReportMetric(identical, "bit_identical")
}

// BenchmarkE15DynamicBatching regenerates the dynamic-batching saturation
// table: modeled per-request device time solo vs inside a full coalescing
// window, the throughput and FCFS-p99 both imply at 32 saturated clients,
// and the real-server engagement + bit-identity proof.
func BenchmarkE15DynamicBatching(b *testing.B) {
	var rows []bench.BatchingRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.DynamicBatching(benchCfg(), 8, 32)
		if err != nil {
			b.Fatal(err)
		}
	}
	identical := 1.0
	for _, r := range rows {
		if !r.BitIdentical {
			identical = 0
		}
		b.ReportMetric(r.Throughput, "throughput_"+r.Model)
		b.ReportMetric(r.SoloP99Us/r.BatchedP99Us, "p99_gain_"+r.Model)
		b.ReportMetric(float64(r.BatchedRuns), "batched_runs_"+r.Model)
	}
	b.ReportMetric(identical, "bit_identical")
}

// BenchmarkE16ColdStart regenerates the cold-start table: time to first
// response cold vs warm restart (persistent engine cache) and sync vs
// async compile, plus the warm run's zero-compile and bit-identity proofs.
func BenchmarkE16ColdStart(b *testing.B) {
	var rows []bench.ColdStartRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.ColdStart(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	identical := 1.0
	var warmCompiles float64
	for _, r := range rows {
		if !r.BitIdentical {
			identical = 0
		}
		warmCompiles += float64(r.WarmCompiles)
		b.ReportMetric(r.ColdSyncMs/r.WarmSyncMs, "warm_speedup_"+r.Model)
		b.ReportMetric(r.ColdSyncMs/r.ColdAsyncMs, "async_ttfr_gain_"+r.Model)
	}
	b.ReportMetric(warmCompiles, "warm_compilations")
	b.ReportMetric(identical, "bit_identical")
}

// BenchmarkE12ScaleSweep regenerates the model-width sweep.
func BenchmarkE12ScaleSweep(b *testing.B) {
	cfg := benchCfg()
	cfg.Requests = 40
	var rows []bench.ScaleRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.ScaleSweep(cfg, []int{16, 64, 256})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Speedup["PyTorch"], "pytorch_x_at_h16")
	b.ReportMetric(rows[len(rows)-1].Speedup["PyTorch"], "pytorch_x_at_h256")
}

// BenchmarkE17BytecodeVM regenerates the kernel-execution ablation: real
// wall-clock kernel-substrate time per request under the bytecode VM vs the
// retained closure compiler, with bit-identity checked on every output. The
// aggregate kernel speedup is the PR 8 acceptance number (target >= 2x).
func BenchmarkE17BytecodeVM(b *testing.B) {
	var rows []bench.BytecodeRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.BytecodeAblation(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	identical := 1.0
	var bc, cl float64
	for _, r := range rows {
		if !r.BitIdentical {
			identical = 0
		}
		bc += r.BytecodeKernelNs
		cl += r.ClosureKernelNs
		b.ReportMetric(r.KernelSpeedup, "kernel_x_"+r.Model)
	}
	if bc > 0 {
		b.ReportMetric(cl/bc, "kernel_x_aggregate")
	}
	b.ReportMetric(identical, "bit_identical")
}
