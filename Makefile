# Tier-1 verify gate (see ROADMAP.md): build, vet, full tests, then the
# race detector over the concurrent serving/execution paths, then a
# randomized chaos replay with fault injection enabled, then an
# informational bench comparison against the checked-in results.
.PHONY: verify build vet test race bench bench-compare chaos

verify: build vet test race chaos bench-compare

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./internal/serve ./internal/exec ./internal/ral ./internal/workload .

# chaos replays the serve/exec suites under -race with fault injection
# armed at a fresh random seed. The seed is printed so a failing run
# reproduces with: GODISC_FAULT_SEED=<seed> make chaos
chaos:
	@seed=$${GODISC_FAULT_SEED:-$$(od -An -N4 -tu4 /dev/urandom | tr -d ' ')}; \
	spec=$${GODISC_FAULTS:-"compile:transient:0.25,kernel-launch:panic:0.3,alloc:transient:0.25"}; \
	echo "chaos: GODISC_FAULTS=$$spec GODISC_FAULT_SEED=$$seed"; \
	GODISC_FAULTS="$$spec" GODISC_FAULT_SEED="$$seed" \
		go test -race -count=1 ./internal/serve ./internal/exec

# bench runs every experiment benchmark once and checks the parsed
# results into BENCH_PR3.json (per-experiment custom metrics, including
# the E14 sequential-vs-parallel speedup curve). -benchtime=1x because
# each benchmark iteration is itself a whole experiment replay.
bench:
	go test -run '^$$' -bench=. -benchtime=1x -benchmem . | tee bench.out
	go run ./cmd/benchjson -in bench.out -out BENCH_PR3.json
	@rm -f bench.out
	@echo "wrote BENCH_PR3.json"

# bench-compare prints deltas between the two most recent checked-in
# BENCH_*.json files (or against itself when only one exists). It is
# informational and never fails the build.
bench-compare:
	@files=$$(ls BENCH_*.json 2>/dev/null | sort | tail -2); \
	set -- $$files; \
	if [ $$# -eq 0 ]; then echo "bench-compare: no BENCH_*.json checked in (run 'make bench')"; \
	elif [ $$# -eq 1 ]; then go run ./cmd/benchjson -compare "$$1" "$$1" || true; \
	else go run ./cmd/benchjson -compare "$$1" "$$2" || true; fi
