# Tier-1 verify gate (see ROADMAP.md): build, vet, full tests, then the
# race detector over the concurrent serving/execution paths.
.PHONY: verify build vet test race bench

verify: build vet test race

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./internal/serve ./internal/exec ./internal/ral ./internal/workload .

bench:
	go test -bench=. -benchmem .
