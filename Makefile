# Tier-1 verify gate (see ROADMAP.md): build, vet, full tests, then the
# race detector over the concurrent serving/execution paths, then a
# randomized chaos replay with fault injection enabled.
.PHONY: verify build vet test race bench chaos

verify: build vet test race chaos

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./internal/serve ./internal/exec ./internal/ral ./internal/workload .

# chaos replays the serve/exec suites under -race with fault injection
# armed at a fresh random seed. The seed is printed so a failing run
# reproduces with: GODISC_FAULT_SEED=<seed> make chaos
chaos:
	@seed=$${GODISC_FAULT_SEED:-$$(od -An -N4 -tu4 /dev/urandom | tr -d ' ')}; \
	spec=$${GODISC_FAULTS:-"compile:transient:0.25,kernel-launch:panic:0.3,alloc:transient:0.25"}; \
	echo "chaos: GODISC_FAULTS=$$spec GODISC_FAULT_SEED=$$seed"; \
	GODISC_FAULTS="$$spec" GODISC_FAULT_SEED="$$seed" \
		go test -race -count=1 ./internal/serve ./internal/exec

bench:
	go test -bench=. -benchmem .
