# Tier-1 verify gate (see ROADMAP.md): build, vet, full tests, then the
# race detector over the concurrent serving/execution paths, then the
# per-package coverage floors, then a randomized chaos replay with fault
# injection enabled, then an informational bench comparison against the
# checked-in results.
.PHONY: verify build vet test race cover fuzz bench bench-compare chaos soak

verify: build vet test race cover chaos bench-compare

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# race includes a ~1s slice of the governance soak (TestSoakGovernedOverload);
# `make soak` runs the full 30s version.
race:
	go test -race ./internal/serve ./internal/exec ./internal/ral ./internal/workload \
		./internal/obs ./internal/opt ./internal/fusion ./internal/faultinject \
		./internal/enginecache ./internal/kir ./internal/fleet .

# cover enforces per-package coverage floors on the serving/execution/
# observability core. Floors sit a few points under the measured value at
# the time they were set, so genuine regressions fail verify while small
# refactors don't. Raise a floor when coverage grows; never lower one to
# make a build pass.
cover:
	@fail=0; \
	for entry in internal/serve:85 internal/exec:77 internal/obs:92 internal/enginecache:72 internal/fleet:80; do \
		pkg=$${entry%%:*}; floor=$${entry##*:}; \
		pct=$$(go test -cover ./$$pkg | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "cover: $$pkg: no coverage reported"; fail=1; continue; fi; \
		ok=$$(awk -v p="$$pct" -v f="$$floor" 'BEGIN{print (p+0 >= f+0) ? 1 : 0}'); \
		if [ "$$ok" = "1" ]; then echo "cover: $$pkg $$pct% (floor $$floor%)"; \
		else echo "cover: FAIL $$pkg $$pct% below floor $$floor%"; fail=1; fi; \
	done; exit $$fail

# fuzz runs the native fuzz targets (trace-file and fault-spec parsers,
# the engine-cache entry decoder, the KIR differential generator — random
# kernel programs interpreted vs bytecode vs closures, bit-exact — and the
# fleet's v2 HTTP infer-body decoder) for FUZZTIME each. Crashers land in
# testdata/fuzz/ for triage.
FUZZTIME ?= 30s
fuzz:
	go test -fuzz=FuzzTraceSpec -fuzztime=$(FUZZTIME) ./internal/workload
	go test -fuzz=FuzzFaultSpec -fuzztime=$(FUZZTIME) ./internal/faultinject
	go test -fuzz=FuzzEngineCacheDecode -fuzztime=$(FUZZTIME) ./internal/enginecache
	go test -fuzz=FuzzKIRProgram -fuzztime=$(FUZZTIME) ./internal/kir
	go test -fuzz=FuzzV2InferDecode -fuzztime=$(FUZZTIME) ./internal/fleet

# chaos replays the serve/exec suites under -race with fault injection
# armed at a fresh random seed. The seed is printed so a failing run
# reproduces with: GODISC_FAULT_SEED=<seed> make chaos
chaos:
	@seed=$${GODISC_FAULT_SEED:-$$(od -An -N4 -tu4 /dev/urandom | tr -d ' ')}; \
	spec=$${GODISC_FAULTS:-"compile:transient:0.25,kernel-launch:panic:0.3,alloc:transient:0.25,cache-read:transient:0.4,cache-write:transient:0.4,http-read:transient:0.2,http-decode:transient:0.2,http-write:error:0.2"}; \
	echo "chaos: GODISC_FAULTS=$$spec GODISC_FAULT_SEED=$$seed"; \
	GODISC_FAULTS="$$spec" GODISC_FAULT_SEED="$$seed" \
		go test -race -count=1 ./internal/serve ./internal/exec ./internal/fleet

# soak stretches the randomized governed-overload run (mixed priorities,
# tight deadlines, fault injection, memory budget) and the fleet-scale
# HTTP saturation run (3 models × 2 versions, eviction churn under a
# tight governor budget, zero 5xx, bit-identical outputs, strict
# priority ordering of shed traffic) to 30s each under -race.
SOAKTIME ?= 30s
soak:
	GODISC_SOAK=$(SOAKTIME) go test -race -count=1 -v \
		-run TestSoakGovernedOverload ./internal/serve
	GODISC_SOAK=$(SOAKTIME) go test -race -count=1 -v \
		-run TestSaturationFleetHTTP ./internal/fleet

# bench runs every experiment benchmark once and checks the parsed
# results into BENCH_PR8.json (per-experiment custom metrics, now
# including the E17 bytecode-vs-closure kernel ablation with its
# aggregate real wall-clock speedup and bit-identity bit).
# -benchtime=1x because each benchmark iteration is itself a whole
# experiment replay.
bench:
	go test -run '^$$' -bench=. -benchtime=1x -benchmem . | tee bench.out
	go run ./cmd/benchjson -in bench.out -out BENCH_PR8.json
	@rm -f bench.out
	@echo "wrote BENCH_PR8.json"

# bench-compare prints deltas between the two most recent checked-in
# BENCH_*.json files (or against itself when only one exists). It is
# informational and never fails the build.
bench-compare:
	@files=$$(ls BENCH_*.json 2>/dev/null | sort | tail -2); \
	set -- $$files; \
	if [ $$# -eq 0 ]; then echo "bench-compare: no BENCH_*.json checked in (run 'make bench')"; \
	elif [ $$# -eq 1 ]; then go run ./cmd/benchjson -compare "$$1" "$$1" || true; \
	else go run ./cmd/benchjson -compare "$$1" "$$2" || true; fi
