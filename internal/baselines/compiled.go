package baselines

import (
	"fmt"
	"math/bits"
	"sync"

	"godisc/internal/codegen"
	"godisc/internal/device"
	"godisc/internal/exec"
	"godisc/internal/fusion"
	"godisc/internal/graph"
	"godisc/internal/obs"
	"godisc/internal/opt"
	"godisc/internal/ral"
	"godisc/internal/symshape"
	"godisc/internal/tensor"
)

// CacheKeying selects how a compiled strategy keys its compilation cache —
// the mechanism that separates dynamic-shape compilation from static
// recompilation and guard-based recompilation.
type CacheKeying uint8

const (
	// KeySymbolic: one cache entry per symbolic signature (BladeDISC).
	KeySymbolic CacheKeying = iota
	// KeyConcrete: one entry per concrete shape tuple (XLA, TVM).
	KeyConcrete
	// KeyClass: one entry per shape *class* — dims classed as 1 vs dynamic
	// with power-of-two size classes (Torch Inductor dynamic mode guards).
	KeyClass
	// KeyBucket: one entry per padding bucket (TensorRT optimization
	// profiles); inputs pay for the bucket's padded shapes.
	KeyBucket
)

// CompiledParams configures a compiled-family strategy.
type CompiledParams struct {
	Name string
	// Fusion is the planner configuration (stitching off for XLA etc.).
	Fusion fusion.Config
	// Codegen toggles specialization variants.
	Codegen codegen.Options
	// Keying selects the compilation-cache key.
	Keying CacheKeying
	// CompileNs is charged on every cache miss.
	CompileNs float64
	// HostNsPerLaunch is runtime dispatch overhead per launch.
	HostNsPerLaunch float64
	// GuardNsPerCall is charged once per invocation (Inductor's guard
	// evaluation); zero for others.
	GuardNsPerCall float64
	// DeviceTimeScale scales kernel time to model codegen quality
	// differences (static specialization, tuning) relative to the shared
	// dynamic lowering. < 1 is faster.
	DeviceTimeScale float64
	// MaxCacheEntries caps the compilation cache (a tuning budget: TVM
	// tunes the K hottest shapes offline). 0 means unbounded. Shapes
	// beyond the budget run untuned at FallbackScale, with no stall.
	MaxCacheEntries int
	// FallbackScale is the device-time scale for shapes outside the
	// tuning budget.
	FallbackScale float64
	// AdaptiveSpeculation enables the runtime shape-feedback loop: after
	// a warmup window, dominant dimension values are declared likely and
	// the executable is relowered once with speculative variants.
	AdaptiveSpeculation bool
	// Workers is the engine's host-side execution parallelism (DAG
	// scheduling + kernel partitioning). The zero value keeps execution
	// sequential so strategy comparisons measure the cost model, not the
	// host machine; discrun sets it for real-latency runs.
	Workers int
	// Hook, when set, opens an `exec` span (with per-unit kernel and
	// partition children) on every invocation; discrun's -trace-out
	// threads a tracer here. Nil costs one branch per run.
	Hook obs.Hook
	// Metrics, when set, registers the engine's execution counters and
	// buffer-pool gauges. Nil is a no-op.
	Metrics *obs.Registry
}

// BladeDISCParams is the paper's system: full dynamic-shape fusion and
// specialization, symbolic cache.
func BladeDISCParams() CompiledParams {
	return CompiledParams{
		Name:                "BladeDISC",
		Fusion:              fusion.DefaultConfig(),
		Codegen:             codegen.DefaultOptions(),
		Keying:              KeySymbolic,
		CompileNs:           0.9e9,
		HostNsPerLaunch:     1500,
		DeviceTimeScale:     1.0,
		AdaptiveSpeculation: true,
	}
}

// XLAParams models XLA: strong static fusion (no stitching), slightly
// better static kernels, recompiles per concrete shape.
func XLAParams() CompiledParams {
	return CompiledParams{
		Name: "XLA",
		// XLA's GPU pipeline includes horizontal loop fusion; stitching
		// (shared-memory skeleton fusion) is the BladeDISC-only piece.
		Fusion:          fusion.Config{EnableLoop: true, EnableInput: true, EnableHorizontal: true},
		Codegen:         codegen.Options{Vectorize: true},
		Keying:          KeyConcrete,
		CompileNs:       1.6e9,
		HostNsPerLaunch: 1800,
		DeviceTimeScale: 0.9,
	}
}

// TVMParams models TVM: per-shape tuned kernels — fast steady state, very
// expensive per new shape.
func TVMParams() CompiledParams {
	return CompiledParams{
		Name:            "TVM",
		Fusion:          fusion.Config{EnableLoop: true, EnableInput: true, EnableHorizontal: true},
		Codegen:         codegen.Options{Vectorize: true},
		Keying:          KeyConcrete,
		CompileNs:       24e9,
		HostNsPerLaunch: 1500,
		DeviceTimeScale: 0.86,
		MaxCacheEntries: 8,
		FallbackScale:   1.8,
	}
}

// InductorParams models Torch Inductor's dynamic-shape mode: symbolic
// compilation with per-call guard evaluation, weaker fusion, and
// recompilation when a guard class flips.
func InductorParams() CompiledParams {
	return CompiledParams{
		Name:            "TorchInductor",
		Fusion:          fusion.Config{EnableLoop: true, EnableInput: true},
		Codegen:         codegen.Options{},
		Keying:          KeyClass,
		CompileNs:       2.5e9,
		HostNsPerLaunch: 2500,
		GuardNsPerCall:  52000,
		DeviceTimeScale: 1.85,
	}
}

// TensorRTParams models TensorRT: bucketed engines with padding; excellent
// kernels at the bucket shapes, padded work and per-engine builds paid for.
func TensorRTParams() CompiledParams {
	return CompiledParams{
		Name: "TensorRT",
		// Engines built over dynamic optimization profiles lose the
		// shape-specific tactic selection and some fusions of fixed-shape
		// engines: stitch-level fusion off, near-par kernel quality.
		Fusion:          fusion.Config{EnableLoop: true, EnableInput: true, EnableHorizontal: true},
		Codegen:         codegen.DefaultOptions(),
		Keying:          KeyBucket,
		CompileNs:       6e9,
		HostNsPerLaunch: 1000,
		DeviceTimeScale: 1.0,
	}
}

// Compiled is a compiled-family strategy over the shared pipeline. The
// executable itself is shape-generic; the *cost* of static strategies comes
// from their cache keying (recompiles) and, for buckets, padded shapes.
type Compiled struct {
	params CompiledParams
	g      *graph.Graph
	// mu serializes invocations: the cache, the feedback histogram and
	// the (respecializable) executable are shared mutable state.
	mu    sync.Mutex
	exe   *exec.Executable
	cache *ral.Cache
	fb    *feedback
}

// NewCompiled optimizes, plans and lowers the model once. The graph is
// consumed (mutated by the pass pipeline).
func NewCompiled(g *graph.Graph, dev *device.Model, p CompiledParams) (*Compiled, error) {
	pipeline := opt.Default()
	if !p.Fusion.EnableLoop && !p.Fusion.EnableInput && !p.Fusion.EnableStitch {
		// No fusion to enable: duplication would only add kernels.
		pipeline = opt.WithoutDuplication()
	}
	if _, err := pipeline.Run(g); err != nil {
		return nil, fmt.Errorf("baselines: %s: %w", p.Name, err)
	}
	plan, err := fusion.NewPlanner(p.Fusion).Plan(g)
	if err != nil {
		return nil, fmt.Errorf("baselines: %s: %w", p.Name, err)
	}
	exe, err := exec.Compile(g, plan, dev, exec.Options{
		Codegen:        p.Codegen,
		HostDispatchNs: p.HostNsPerLaunch,
		AliasViews:     true,
		Workers:        p.Workers,
		Hook:           p.Hook,
		Metrics:        p.Metrics,
	})
	if err != nil {
		return nil, fmt.Errorf("baselines: %s: %w", p.Name, err)
	}
	c := &Compiled{params: p, g: g, exe: exe, cache: ral.NewCache()}
	if p.AdaptiveSpeculation {
		c.fb = newFeedback()
	}
	return c, nil
}

// Name implements Strategy.
func (c *Compiled) Name() string { return c.params.Name }

// Plan exposes the fusion plan (for the fusion-statistics experiment).
func (c *Compiled) Plan() *fusion.Plan { return c.exe.Plan }

// CacheStats exposes compilation-cache behaviour (hits, misses, entries).
func (c *Compiled) CacheStats() (int, int, int) { return c.cache.Stats() }

// Invoke implements Strategy. Invocations are serialized internally.
func (c *Compiled) Invoke(inputs []*tensor.Tensor) ([]*tensor.Tensor, *ral.Profiler, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	shapes := make([][]int, len(inputs))
	for i, in := range inputs {
		shapes[i] = in.Shape()
	}
	prof, scale, err := c.chargeCacheAndGuards(shapes)
	if err != nil {
		return nil, nil, err
	}
	res, err := c.exe.Run(inputs)
	if err != nil {
		return nil, nil, err
	}
	runProf := res.Profile
	if c.params.Keying == KeyBucket {
		// The engine executes at the bucket's padded shapes: replace the
		// execution cost with a simulation at the padded shapes. Outputs
		// keep the real (unpadded) numerics — the engine masks padding.
		runProf, err = c.exe.Simulate(c.paddedShapes(shapes))
		if err != nil {
			return nil, nil, err
		}
	}
	scaleDeviceTime(runProf, scale)
	prof.Add(runProf)
	return res.Outputs, prof, nil
}

// Simulate implements Strategy. Invocations are serialized internally.
func (c *Compiled) Simulate(shapes [][]int) (*ral.Profiler, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	prof, scale, err := c.chargeCacheAndGuards(shapes)
	if err != nil {
		return nil, err
	}
	simShapes := shapes
	if c.params.Keying == KeyBucket {
		simShapes = c.paddedShapes(shapes)
	}
	runProf, err := c.exe.Simulate(simShapes)
	if err != nil {
		return nil, err
	}
	scaleDeviceTime(runProf, scale)
	prof.Add(runProf)
	return prof, nil
}

// chargeCacheAndGuards applies the cache-keying mechanism and per-call
// guard overheads for one request, returning the device-time scale to use
// (the tuned scale, or the fallback scale when the tuning budget is
// exhausted and this shape is uncovered).
func (c *Compiled) chargeCacheAndGuards(shapes [][]int) (*ral.Profiler, float64, error) {
	key := c.cacheKey(shapes)
	prof := ral.NewProfiler()
	scale := c.params.DeviceTimeScale
	_, _, entries := c.cache.Stats()
	budgetFull := c.params.MaxCacheEntries > 0 && entries >= c.params.MaxCacheEntries
	if budgetFull {
		if !c.cache.Contains(key) {
			// Outside the tuning budget: no stall, untuned kernels.
			scale = c.params.FallbackScale
			if scale <= 0 {
				scale = 1.5
			}
			if c.params.GuardNsPerCall > 0 {
				prof.Host(c.params.GuardNsPerCall)
			}
			return prof, scale, nil
		}
	}
	if _, hit, err := c.cache.GetOrCompile(key, func() (any, error) { return struct{}{}, nil }); err != nil {
		return nil, 0, err
	} else if !hit {
		prof.Compile(c.params.CompileNs)
	}
	if c.params.GuardNsPerCall > 0 {
		prof.Host(c.params.GuardNsPerCall)
	}
	if stall := c.maybeRespecialize(shapes); stall > 0 {
		prof.Compile(stall)
	}
	return prof, scale, nil
}

// paddedShapes rounds every dynamic dim up to its bucket.
func (c *Compiled) paddedShapes(shapes [][]int) [][]int {
	padded := make([][]int, len(shapes))
	for i, s := range shapes {
		padded[i] = bucketShape(s, c.dynamicDims(i))
	}
	return padded
}

// cacheKey renders the cache key per the strategy's keying mechanism.
func (c *Compiled) cacheKey(shapes [][]int) string {
	switch c.params.Keying {
	case KeySymbolic:
		paramShapes := make([]symshape.Shape, len(c.g.Params))
		for i, p := range c.g.Params {
			paramShapes[i] = p.Shape
		}
		return c.g.Ctx.Signature(paramShapes)
	case KeyConcrete:
		return symshape.ConcreteSignature(shapes)
	case KeyClass:
		classed := make([][]int, len(shapes))
		for i, s := range shapes {
			cs := make([]int, len(s))
			for j, d := range s {
				cs[j] = sizeClass(d)
			}
			classed[i] = cs
		}
		return symshape.ConcreteSignature(classed)
	case KeyBucket:
		padded := make([][]int, len(shapes))
		for i, s := range shapes {
			padded[i] = bucketShape(s, c.dynamicDims(i))
		}
		return symshape.ConcreteSignature(padded)
	}
	return "?"
}

// dynamicDims reports which dims of parameter i are dynamic (static dims
// are never padded — the engine profile fixes them).
func (c *Compiled) dynamicDims(i int) []bool {
	p := c.g.Params[i]
	dyn := make([]bool, p.Rank())
	for j, d := range p.Shape {
		dyn[j] = !c.g.Ctx.IsStatic(d)
	}
	return dyn
}

// sizeClass buckets a dim for guard-class keying: 1 is special-cased (as
// Inductor does), everything else falls in power-of-two classes.
func sizeClass(d int) int {
	if d <= 1 {
		return d
	}
	return 1 << bits.Len(uint(d-1))
}

// bucketShape rounds dynamic dims up to the next power of two (minimum 32,
// mirroring the coarse optimization profiles of production engines).
func bucketShape(s []int, dyn []bool) []int {
	out := make([]int, len(s))
	for i, d := range s {
		if !dyn[i] || d <= 0 {
			out[i] = d
			continue
		}
		b := d
		if b < 32 {
			b = 32
		}
		out[i] = 1 << bits.Len(uint(b-1))
	}
	return out
}

// NewSuite builds the full comparison set of the paper: BladeDISC plus all
// seven baselines, each on its own copy of the model graph. build must
// return a fresh graph per call.
func NewSuite(build func() *graph.Graph, dev *device.Model) (map[string]Strategy, error) {
	suite := map[string]Strategy{}
	for _, p := range []InterpParams{PyTorchParams(), TorchScriptParams(), ONNXRuntimeParams()} {
		s, err := NewInterpreter(build(), dev, p)
		if err != nil {
			return nil, fmt.Errorf("baselines: %s: %w", p.Name, err)
		}
		suite[p.Name] = s
	}
	for _, p := range []CompiledParams{BladeDISCParams(), XLAParams(), TVMParams(), InductorParams(), TensorRTParams()} {
		s, err := NewCompiled(build(), dev, p)
		if err != nil {
			return nil, err
		}
		suite[p.Name] = s
	}
	return suite, nil
}
