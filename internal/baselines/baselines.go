// Package baselines implements the seven comparator execution strategies
// of the paper's evaluation — PyTorch, TorchScript, ONNX Runtime, XLA, TVM,
// Torch Inductor (dynamic) and TensorRT — plus BladeDISC itself, all over
// the same graph IR and the same analytic device model. Each strategy
// reproduces the published *mechanism* that governs its behaviour under
// shape dynamism:
//
//   - PyTorch: op-by-op dispatch, one kernel per op, large host overhead.
//   - TorchScript: the same kernel library with script-mode dispatch and
//     elementwise chain fusion.
//   - ONNX Runtime: pattern-fused kernel library (composite softmax /
//     layernorm kernels), low dispatch overhead, dynamic shapes natively.
//   - XLA: whole-graph static compilation — good fused kernels, but the
//     compilation cache is keyed by concrete shapes, so every new shape
//     recompiles.
//   - TVM: per-shape tuned kernels — fastest steady state on a seen shape,
//     most expensive per new shape (tuning).
//   - Torch Inductor (dynamic shape mode): symbolic compilation with guard
//     checks per call, weaker fusion, recompiles when a guard class flips.
//   - TensorRT: bucketed engines with padding — inputs round up to the
//     bucket's shape and the padded work is paid for.
//
// Absolute constants are stated in each strategy's Params and can be swept;
// all end-to-end claims in EXPERIMENTS.md are about relative shape, which
// these mechanisms determine.
package baselines

import (
	"godisc/internal/ral"
	"godisc/internal/tensor"
)

// Strategy processes inference requests and reports the simulated cost of
// each.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Invoke runs one request. Outputs carry real numerics for strategies
	// that execute (all of them do here); Profile carries the simulated
	// cost of this invocation, including any compile stall it triggered.
	Invoke(inputs []*tensor.Tensor) ([]*tensor.Tensor, *ral.Profiler, error)
	// Simulate charges the cost of one request given only its input
	// shapes, without computing values. Cache/compile behaviour is
	// identical to Invoke. Trace replays use this path.
	Simulate(shapes [][]int) (*ral.Profiler, error)
}

// scaleDeviceTime multiplies the device portion (kernel/library time) of a
// profile by f, leaving host and compile charges untouched. Used to model
// baseline kernel-quality differences relative to the shared lowering.
func scaleDeviceTime(p *ral.Profiler, f float64) {
	dev := p.SimulatedNs - p.HostNs - p.CompileNs
	p.SimulatedNs = dev*f + p.HostNs + p.CompileNs
	for k := range p.PerKernel {
		p.PerKernel[k] *= f
	}
}
