package baselines

import (
	"testing"

	"godisc/internal/device"
	"godisc/internal/graph"
	"godisc/internal/ral"
	"godisc/internal/symshape"
	"godisc/internal/tensor"
)

// buildToy returns a fresh small transformer-flavoured graph: matmul +
// bias + gelu + softmax over a dynamic [B, S] input.
func buildToy() *graph.Graph {
	g := graph.New("toy")
	b := g.Ctx.NewDim("B")
	s := g.Ctx.NewDim("S")
	g.Ctx.DeclareRange(s, 1, 512)
	h := g.Ctx.StaticDim(16)
	x := g.Parameter("x", tensor.F32, symshape.Shape{b, s, h})
	r := tensor.NewRNG(21)
	w := g.Constant(tensor.RandN(r, 0.2, 16, 16))
	bias := g.Constant(tensor.RandN(r, 0.2, 16))
	y := g.Gelu(g.Add(g.MatMul(x, w), bias))
	g.SetOutputs(g.Softmax(y))
	return g
}

func toyInput(r *tensor.RNG, b, s int) *tensor.Tensor {
	return tensor.RandN(r, 1, b, s, 16)
}

func TestSuiteAllStrategiesAgreeNumerically(t *testing.T) {
	dev := device.A10()
	suite, err := NewSuite(buildToy, dev)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 8 {
		t.Fatalf("suite has %d strategies, want 8", len(suite))
	}
	r := tensor.NewRNG(22)
	in := toyInput(r, 2, 7)
	ref, err := graph.Evaluate(buildToy(), []*tensor.Tensor{in})
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range suite {
		outs, prof, err := s.Invoke([]*tensor.Tensor{in})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if prof.SimulatedNs <= 0 {
			t.Fatalf("%s: non-positive simulated time", name)
		}
		for i := range ref {
			if err := tensor.AllClose(outs[i], ref[i], 1e-4, 1e-5); err != nil {
				t.Fatalf("%s output %d: %v", name, i, err)
			}
		}
	}
}

// steadyState runs the strategy once to warm the cache, then invokes again
// and returns the second profile.
func steadyState(t *testing.T, s Strategy, in *tensor.Tensor) *ral.Profiler {
	t.Helper()
	if _, _, err := s.Invoke([]*tensor.Tensor{in}); err != nil {
		t.Fatal(err)
	}
	_, prof, err := s.Invoke([]*tensor.Tensor{in})
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

func TestBladeDISCBeatsEagerSteadyState(t *testing.T) {
	dev := device.A10()
	r := tensor.NewRNG(23)
	in := toyInput(r, 4, 33)
	disc, err := NewCompiled(buildToy(), dev, BladeDISCParams())
	if err != nil {
		t.Fatal(err)
	}
	eager, err := NewInterpreter(buildToy(), dev, PyTorchParams())
	if err != nil {
		t.Fatal(err)
	}
	dp := steadyState(t, disc, in)
	ep := steadyState(t, eager, in)
	if dp.SimulatedNs >= ep.SimulatedNs {
		t.Fatalf("BladeDISC (%.0fns) must beat eager (%.0fns) at steady state",
			dp.SimulatedNs, ep.SimulatedNs)
	}
	if dp.Launches >= ep.Launches {
		t.Fatalf("BladeDISC launches %d must be below eager %d", dp.Launches, ep.Launches)
	}
}

func TestSymbolicCacheNeverRecompiles(t *testing.T) {
	disc, err := NewCompiled(buildToy(), device.A10(), BladeDISCParams())
	if err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(24)
	for _, shape := range [][2]int{{1, 5}, {2, 100}, {3, 7}, {8, 256}} {
		if _, _, err := disc.Invoke([]*tensor.Tensor{toyInput(r, shape[0], shape[1])}); err != nil {
			t.Fatal(err)
		}
	}
	_, misses, entries := disc.CacheStats()
	if misses != 1 || entries != 1 {
		t.Fatalf("symbolic cache: misses=%d entries=%d, want 1/1", misses, entries)
	}
}

func TestConcreteCacheRecompilesPerShape(t *testing.T) {
	xla, err := NewCompiled(buildToy(), device.A10(), XLAParams())
	if err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(25)
	shapes := [][2]int{{1, 5}, {2, 100}, {3, 7}, {1, 5}} // one repeat
	for _, shape := range shapes {
		if _, _, err := xla.Invoke([]*tensor.Tensor{toyInput(r, shape[0], shape[1])}); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses, entries := xla.CacheStats()
	if misses != 3 || entries != 3 || hits != 1 {
		t.Fatalf("concrete cache: hits=%d misses=%d entries=%d, want 1/3/3", hits, misses, entries)
	}
}

func TestClassCacheRecompilesPerClass(t *testing.T) {
	ind, err := NewCompiled(buildToy(), device.A10(), InductorParams())
	if err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(26)
	// 5 and 7 share the power-of-two class 8; 100 is class 128.
	for _, shape := range [][2]int{{1, 5}, {1, 7}, {1, 100}} {
		if _, _, err := ind.Invoke([]*tensor.Tensor{toyInput(r, shape[0], shape[1])}); err != nil {
			t.Fatal(err)
		}
	}
	_, misses, _ := ind.CacheStats()
	if misses != 2 {
		t.Fatalf("class cache misses=%d, want 2", misses)
	}
}

func TestBucketPaddingCost(t *testing.T) {
	trt, err := NewCompiled(buildToy(), device.A10(), TensorRTParams())
	if err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(27)
	// Sequence 65 pads to 128: nearly half the padded work is waste. The
	// profile must charge the padded bytes, i.e. more than a same-shape
	// BladeDISC run.
	in := toyInput(r, 2, 65)
	disc, err := NewCompiled(buildToy(), device.A10(), BladeDISCParams())
	if err != nil {
		t.Fatal(err)
	}
	tp := steadyState(t, trt, in)
	dp := steadyState(t, disc, in)
	if tp.BytesMoved <= dp.BytesMoved {
		t.Fatalf("padded bytes %.0f must exceed exact bytes %.0f", tp.BytesMoved, dp.BytesMoved)
	}
	// Same bucket -> no new engine build.
	if _, _, err := trt.Invoke([]*tensor.Tensor{toyInput(r, 2, 100)}); err != nil {
		t.Fatal(err)
	}
	_, misses, _ := trt.CacheStats()
	if misses != 1 {
		t.Fatalf("bucket cache misses=%d, want 1 (65 and 100 share bucket 128)", misses)
	}
}

func TestInductorGuardOverheadPerCall(t *testing.T) {
	ind, err := NewCompiled(buildToy(), device.A10(), InductorParams())
	if err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(28)
	in := toyInput(r, 1, 8)
	prof := steadyState(t, ind, in)
	if prof.HostNs < InductorParams().GuardNsPerCall {
		t.Fatalf("guard overhead missing: host=%.0f", prof.HostNs)
	}
}

func TestSizeClassAndBucket(t *testing.T) {
	cases := []struct{ in, class, bucket int }{
		{1, 1, 32}, {5, 8, 32}, {16, 16, 32}, {17, 32, 32}, {100, 128, 128},
	}
	for _, c := range cases {
		if got := sizeClass(c.in); got != c.class {
			t.Errorf("sizeClass(%d) = %d, want %d", c.in, got, c.class)
		}
		if got := bucketShape([]int{c.in}, []bool{true})[0]; got != c.bucket {
			t.Errorf("bucket(%d) = %d, want %d", c.in, got, c.bucket)
		}
	}
	// Static dims never pad.
	if got := bucketShape([]int{33}, []bool{false})[0]; got != 33 {
		t.Errorf("static dim padded to %d", got)
	}
}

func TestShapeDiversityHurtsStaticNotDynamic(t *testing.T) {
	// The paper's central end-to-end effect: on a shape-diverse trace, the
	// concrete-keyed compiler pays a compile stall per new shape while the
	// symbolic-keyed compiler pays one total.
	dev := device.A10()
	disc, err := NewCompiled(buildToy(), dev, BladeDISCParams())
	if err != nil {
		t.Fatal(err)
	}
	xla, err := NewCompiled(buildToy(), dev, XLAParams())
	if err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(29)
	var discTotal, xlaTotal float64
	for s := 4; s < 40; s += 3 { // 12 distinct sequence lengths
		in := toyInput(r, 2, s)
		_, dp, err := disc.Invoke([]*tensor.Tensor{in})
		if err != nil {
			t.Fatal(err)
		}
		_, xp, err := xla.Invoke([]*tensor.Tensor{in})
		if err != nil {
			t.Fatal(err)
		}
		discTotal += dp.SimulatedNs
		xlaTotal += xp.SimulatedNs
	}
	if discTotal >= xlaTotal {
		t.Fatalf("on a diverse trace BladeDISC (%.3gms) must beat XLA (%.3gms)",
			discTotal/1e6, xlaTotal/1e6)
	}
}
