package baselines

import (
	"fmt"

	"godisc/internal/device"
	"godisc/internal/fusion"
	"godisc/internal/graph"
	"godisc/internal/ral"
	"godisc/internal/symshape"
	"godisc/internal/tensor"
)

// InterpParams configures an interpreter-family strategy (the eager
// frameworks: PyTorch, TorchScript, ONNX Runtime).
type InterpParams struct {
	Name string
	// HostNsPerOp is dispatcher overhead charged per graph op (the Python
	// / framework dispatch path).
	HostNsPerOp float64
	// HostNsPerLaunch is charged per kernel launch on top of the device's
	// launch overhead.
	HostNsPerLaunch float64
	// FuseElementwise enables elementwise chain fusion (TorchScript NNC,
	// ORT's fused elementwise ops).
	FuseElementwise bool
	// KernelTimeScale scales device time to model kernel library quality
	// (1.0 = the shared lowering's quality).
	KernelTimeScale float64
}

// PyTorchParams models eager PyTorch.
func PyTorchParams() InterpParams {
	return InterpParams{Name: "PyTorch", HostNsPerOp: 10100, HostNsPerLaunch: 0,
		FuseElementwise: false, KernelTimeScale: 1.0}
}

// TorchScriptParams models TorchScript with the NNC fuser.
func TorchScriptParams() InterpParams {
	return InterpParams{Name: "TorchScript", HostNsPerOp: 8200, HostNsPerLaunch: 800,
		FuseElementwise: true, KernelTimeScale: 1.0}
}

// ONNXRuntimeParams models ONNX Runtime with its fused kernel library.
func ONNXRuntimeParams() InterpParams {
	return InterpParams{Name: "ONNXRuntime", HostNsPerOp: 1100, HostNsPerLaunch: 1600,
		FuseElementwise: true, KernelTimeScale: 1.01}
}

// Interpreter executes the *undecomposed* graph op by op with a kernel
// library: composite ops (softmax, layernorm) are single library kernels,
// and optionally single-use elementwise chains fuse. Numerics come from the
// reference evaluator; costs from the device model.
type Interpreter struct {
	params InterpParams
	g      *graph.Graph
	dev    *device.Model
	plan   *fusion.Plan
	nOps   int
}

// NewInterpreter plans the launch structure once (it is shape independent).
// The graph must be the raw, undecomposed model graph.
func NewInterpreter(g *graph.Graph, dev *device.Model, p InterpParams) (*Interpreter, error) {
	cfg := fusion.Config{}
	if p.FuseElementwise {
		cfg.EnableLoop = true
	}
	plan, err := fusion.NewPlanner(cfg).Plan(g)
	if err != nil {
		return nil, err
	}
	nOps := 0
	for _, n := range g.Toposort() {
		if !n.IsLeaf() {
			nOps++
		}
	}
	return &Interpreter{params: p, g: g, dev: dev, plan: plan, nOps: nOps}, nil
}

// Name implements Strategy.
func (it *Interpreter) Name() string { return it.params.Name }

// Invoke implements Strategy.
func (it *Interpreter) Invoke(inputs []*tensor.Tensor) ([]*tensor.Tensor, *ral.Profiler, error) {
	outs, err := graph.Evaluate(it.g, inputs)
	if err != nil {
		return nil, nil, err
	}
	prof, err := it.cost(inputs)
	if err != nil {
		return nil, nil, err
	}
	return outs, prof, nil
}

// cost charges the launch structure for the given concrete input shapes.
func (it *Interpreter) cost(inputs []*tensor.Tensor) (*ral.Profiler, error) {
	shapes := make([][]int, len(inputs))
	for i, in := range inputs {
		shapes[i] = in.Shape()
	}
	return it.Simulate(shapes)
}

// Simulate implements Strategy.
func (it *Interpreter) Simulate(shapes [][]int) (*ral.Profiler, error) {
	bind := symshape.NewBinding(it.g.Ctx)
	for i, p := range it.g.Params {
		if err := bind.Bind(p.Shape, shapes[i]); err != nil {
			return nil, fmt.Errorf("baselines: parameter %d: %w", i, err)
		}
	}
	prof := ral.NewProfiler()
	prof.Host(it.params.HostNsPerOp * float64(it.nOps))
	dims := func(n *graph.Node) ([]int, error) {
		return bind.Eval(n.Shape)
	}
	for _, grp := range it.plan.Groups {
		if err := it.chargeGroup(grp, dims, prof); err != nil {
			return nil, err
		}
	}
	scaleDeviceTime(prof, it.params.KernelTimeScale)
	return prof, nil
}

// chargeGroup charges one kernel launch for a plan group.
func (it *Interpreter) chargeGroup(grp *fusion.Group, dims func(*graph.Node) ([]int, error), prof *ral.Profiler) error {
	numel := func(n *graph.Node) (int, error) {
		s, err := dims(n)
		if err != nil {
			return 0, err
		}
		return tensor.Numel(s), nil
	}
	// Reshape-only groups are views: free.
	if len(grp.Nodes) == 1 && grp.Nodes[0].Kind == graph.OpReshape {
		return nil
	}
	var bytes, flops float64
	for _, in := range grp.Inputs {
		n, err := numel(in)
		if err != nil {
			return err
		}
		bytes += float64(4 * n)
	}
	for _, out := range grp.Outputs {
		n, err := numel(out)
		if err != nil {
			return err
		}
		bytes += float64(4 * n)
	}
	memEff, cmpEff := 0.8, 0.5
	name := "elementwise"
	head := grp.Nodes[len(grp.Nodes)-1]
	switch head.Kind {
	case graph.OpMatMul:
		oN, err := numel(head)
		if err != nil {
			return err
		}
		aShape, err := dims(head.Inputs[0])
		if err != nil {
			return err
		}
		// flops = 2*M*N*K*batch = 2 * out elements * K.
		f := 2 * float64(oN) * float64(aShape[len(aShape)-1])
		prof.Host(it.params.HostNsPerLaunch)
		prof.Library("matmul", bytes, f, it.dev.MatmulTimeNs(bytes, f))
		return nil
	case graph.OpConv1D:
		oN, err := numel(head)
		if err != nil {
			return err
		}
		wShape, err := dims(head.Inputs[1])
		if err != nil {
			return err
		}
		f := 2 * float64(oN) * float64(wShape[0]) * float64(wShape[1])
		prof.Host(it.params.HostNsPerLaunch)
		prof.Library("conv1d", bytes, f, it.dev.MatmulTimeNs(bytes, f))
		return nil
	case graph.OpSoftmax:
		name = "softmax"
		memEff, cmpEff = 0.85, 0.5
		oN, _ := numel(head)
		bytes *= 1.25 // internal two-pass traffic of the library kernel
		flops = 12 * float64(oN)
	case graph.OpLayerNorm:
		name = "layernorm"
		memEff, cmpEff = 0.85, 0.5
		oN, _ := numel(head)
		bytes *= 1.25
		flops = 10 * float64(oN)
	case graph.OpReduce:
		name = "reduce"
		memEff = 0.7
		iN, _ := numel(head.Inputs[0])
		flops = float64(iN)
	case graph.OpTranspose:
		name = "transpose"
		memEff = 0.55
	case graph.OpConcat, graph.OpSlice, graph.OpGather, graph.OpPad:
		name = "data"
		memEff = 0.7
	default:
		// Elementwise (possibly fused chain): flops over the domain.
		for _, n := range grp.Nodes {
			oN, err := numel(n)
			if err != nil {
				return err
			}
			flops += float64(n.Kind.FlopsPerElement()) * float64(oN)
		}
	}
	prof.Host(it.params.HostNsPerLaunch)
	prof.Launch(name, "", bytes, flops, it.dev.KernelTimeNs(device.KernelCost{
		Bytes: bytes, Flops: flops, MemEfficiency: memEff, ComputeEfficiency: cmpEff,
	}))
	return nil
}
