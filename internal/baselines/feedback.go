package baselines

import (
	"godisc/internal/exec"
	"godisc/internal/graph"
	"godisc/internal/symshape"
)

// Shape-feedback speculation: BladeDISC pairs its compile-time variant
// machinery with runtime feedback — the compiler observes the concrete
// values hot dimensions actually take and respecializes once a dominant
// value emerges. This file implements that loop for the Compiled strategy:
// a per-dimension histogram, a dominance test, and a one-shot background
// respecialization that declares the winners as likely values and relowers
// the same plan (the symbolic cache entry is unchanged — speculation adds
// variants, it does not fork executables).

// feedback accumulates observed values per dynamic dimension root.
type feedback struct {
	counts map[symshape.DimID]map[int64]int
	calls  int
	done   bool
}

func newFeedback() *feedback {
	return &feedback{counts: map[symshape.DimID]map[int64]int{}}
}

// observe records the concrete extents of one invocation's parameters.
func (f *feedback) observe(g *graph.Graph, shapes [][]int) {
	f.calls++
	for i, p := range g.Params {
		if i >= len(shapes) {
			return
		}
		for j, d := range p.Shape {
			if g.Ctx.IsStatic(d) || j >= len(shapes[i]) {
				continue
			}
			r := g.Ctx.Root(d)
			m := f.counts[r]
			if m == nil {
				m = map[int64]int{}
				f.counts[r] = m
			}
			m[int64(shapes[i][j])]++
		}
	}
}

// dominantValues returns, for each observed dimension, a value that
// accounts for more than half of the observations — the speculation
// candidates.
func (f *feedback) dominantValues() map[symshape.DimID]int64 {
	out := map[symshape.DimID]int64{}
	for d, m := range f.counts {
		total := 0
		bestV, bestN := int64(0), 0
		for v, n := range m {
			total += n
			if n > bestN {
				bestV, bestN = v, n
			}
		}
		if total > 0 && bestN*2 > total {
			out[d] = bestV
		}
	}
	return out
}

// SpeculationWarmup is the number of invocations observed before the
// strategy considers respecializing.
const SpeculationWarmup = 16

// maybeRespecialize runs the feedback loop: after the warmup window, if any
// dynamic dimension has a dominant value, declare it likely and relower the
// executable once. Returns the compile stall to charge (0 if nothing
// happened).
func (c *Compiled) maybeRespecialize(shapes [][]int) float64 {
	if !c.params.AdaptiveSpeculation || c.fb == nil || c.fb.done {
		return 0
	}
	c.fb.observe(c.g, shapes)
	if c.fb.calls < SpeculationWarmup {
		return 0
	}
	c.fb.done = true
	dom := c.fb.dominantValues()
	if len(dom) == 0 {
		return 0
	}
	for d, v := range dom {
		c.g.Ctx.DeclareLikely(d, v)
	}
	exe, err := exec.Compile(c.g, c.exe.Plan, c.exe.Dev, exec.Options{
		Codegen:        c.params.Codegen,
		HostDispatchNs: c.params.HostNsPerLaunch,
		AliasViews:     true,
		Workers:        c.params.Workers,
	})
	if err != nil {
		// Respecialization is best effort: keep the existing executable.
		return 0
	}
	c.exe = exe
	// Relowering a handful of kernels is far cheaper than a fresh
	// compilation; charge a fraction of the full stall.
	return c.params.CompileNs * 0.25
}
