package baselines

import (
	"strings"
	"testing"

	"godisc/internal/device"
	"godisc/internal/graph"
	"godisc/internal/tensor"
)

func TestAdaptiveSpeculationRespecializes(t *testing.T) {
	disc, err := NewCompiled(buildToy(), device.A10(), BladeDISCParams())
	if err != nil {
		t.Fatal(err)
	}
	// Serve a workload dominated by seq=96 with occasional outliers.
	shapes := func(s int) [][]int { return [][]int{{4, s, 16}} }
	for i := 0; i < SpeculationWarmup+1; i++ {
		s := 96
		if i%5 == 4 {
			s = 33
		}
		if _, err := disc.Simulate(shapes(s)); err != nil {
			t.Fatal(err)
		}
	}
	// After warmup the hot shape must dispatch to a speculative variant
	// mentioning the dominant sequence length.
	prof, err := disc.Simulate(shapes(96))
	if err != nil {
		t.Fatal(err)
	}
	hit := false
	for name := range prof.VariantHits {
		if strings.HasPrefix(name, "spec") && strings.Contains(name, "96") {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("hot shape did not take a speculative variant: %v", prof.VariantHits)
	}
	// Outlier shapes still run correctly (fallback variants) with real
	// numerics.
	r := tensor.NewRNG(51)
	in := tensor.RandN(r, 1, 2, 33, 16)
	outs, _, err := disc.Invoke([]*tensor.Tensor{in})
	if err != nil {
		t.Fatal(err)
	}
	want, err := graph.Evaluate(buildToy(), []*tensor.Tensor{in})
	if err != nil {
		t.Fatal(err)
	}
	if err := tensor.AllClose(outs[0], want[0], 1e-4, 1e-5); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveSpeculationSkipsDiverseTraffic(t *testing.T) {
	disc, err := NewCompiled(buildToy(), device.A10(), BladeDISCParams())
	if err != nil {
		t.Fatal(err)
	}
	// No dominant value on any axis: batch and length both churn.
	for i := 0; i < SpeculationWarmup+4; i++ {
		if _, err := disc.Simulate([][]int{{1 + i%7, 5 + i, 16}}); err != nil {
			t.Fatal(err)
		}
	}
	prof, err := disc.Simulate([][]int{{2, 7, 16}})
	if err != nil {
		t.Fatal(err)
	}
	for name := range prof.VariantHits {
		if len(name) > 4 && name[:4] == "spec" {
			t.Fatalf("diverse traffic must not speculate: %v", prof.VariantHits)
		}
	}
}

func TestFeedbackDominance(t *testing.T) {
	f := newFeedback()
	g := buildToy()
	// 3 observations of 64, 1 of 32 on the seq dim.
	for _, s := range []int{64, 64, 32, 64} {
		f.observe(g, [][]int{{2, s, 16}})
	}
	dom := f.dominantValues()
	found := false
	for _, v := range dom {
		if v == 64 {
			found = true
		}
	}
	if !found {
		t.Fatalf("64 must dominate: %v", dom)
	}
	// 2-2 split on the sequence dim (batch varied too): neither value
	// may dominate.
	f2 := newFeedback()
	batches := []int{1, 2, 3, 4}
	for i, s := range []int{64, 32, 64, 32} {
		f2.observe(g, [][]int{{batches[i], s, 16}})
	}
	for _, v := range f2.dominantValues() {
		if v == 64 || v == 32 {
			t.Fatalf("tied seq values must not dominate: %v", f2.dominantValues())
		}
	}
}
