// Package tensor provides dense, row-major tensors and the reference
// (host-side) math used for constant folding and for validating compiled
// kernels. It is deliberately simple: contiguous storage, three dtypes,
// and eager semantics. The compiled runtime never depends on this package
// for performance, only for correctness checks.
package tensor

import (
	"fmt"
	"strings"
)

// DType enumerates the element types supported by the stack.
type DType uint8

const (
	// F32 is IEEE-754 single precision, the workhorse dtype.
	F32 DType = iota
	// I32 is a 32-bit signed integer, used for indices and shapes.
	I32
	// Bool is a logical value, used for masks and predicates.
	Bool
)

// String implements fmt.Stringer.
func (d DType) String() string {
	switch d {
	case F32:
		return "f32"
	case I32:
		return "i32"
	case Bool:
		return "bool"
	}
	return fmt.Sprintf("dtype(%d)", uint8(d))
}

// Size returns the size of one element in bytes, as charged by the device
// cost model.
func (d DType) Size() int {
	switch d {
	case F32, I32:
		return 4
	case Bool:
		return 1
	}
	return 4
}

// Tensor is a dense row-major tensor. The zero value is an empty f32 scalar
// holder and is not directly usable; construct tensors with New, Zeros,
// FromF32 and friends.
type Tensor struct {
	dtype DType
	shape []int
	f32   []float32
	i32   []int32
	b     []bool
}

// Numel returns the number of elements implied by shape.
func Numel(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// New allocates a zero-filled tensor of the given dtype and shape.
func New(dt DType, shape ...int) *Tensor {
	t := &Tensor{dtype: dt, shape: append([]int(nil), shape...)}
	n := Numel(shape)
	switch dt {
	case F32:
		t.f32 = make([]float32, n)
	case I32:
		t.i32 = make([]int32, n)
	case Bool:
		t.b = make([]bool, n)
	}
	return t
}

// Zeros is an alias for New with dtype F32.
func Zeros(shape ...int) *Tensor { return New(F32, shape...) }

// FromF32 wraps data (not copied) into a tensor of the given shape.
func FromF32(data []float32, shape ...int) *Tensor {
	if len(data) != Numel(shape) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{dtype: F32, shape: append([]int(nil), shape...), f32: data}
}

// FromI32 wraps data (not copied) into an i32 tensor of the given shape.
func FromI32(data []int32, shape ...int) *Tensor {
	if len(data) != Numel(shape) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{dtype: I32, shape: append([]int(nil), shape...), i32: data}
}

// FromBool wraps data (not copied) into a bool tensor of the given shape.
func FromBool(data []bool, shape ...int) *Tensor {
	if len(data) != Numel(shape) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{dtype: Bool, shape: append([]int(nil), shape...), b: data}
}

// Scalar returns a rank-0 f32 tensor holding v.
func Scalar(v float32) *Tensor { return FromF32([]float32{v}) }

// ScalarI32 returns a rank-0 i32 tensor holding v.
func ScalarI32(v int32) *Tensor { return FromI32([]int32{v}) }

// DType reports the element type.
func (t *Tensor) DType() DType { return t.dtype }

// Shape returns the dimensions. The returned slice must not be mutated.
func (t *Tensor) Shape() []int { return t.shape }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Dim returns the extent of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Numel returns the number of elements.
func (t *Tensor) Numel() int { return Numel(t.shape) }

// Bytes returns the storage footprint in bytes.
func (t *Tensor) Bytes() int { return t.Numel() * t.dtype.Size() }

// F32 returns the backing float32 slice. It panics for non-f32 tensors.
func (t *Tensor) F32() []float32 {
	if t.dtype != F32 {
		panic(fmt.Sprintf("tensor: F32() on %s tensor", t.dtype))
	}
	return t.f32
}

// I32 returns the backing int32 slice. It panics for non-i32 tensors.
func (t *Tensor) I32() []int32 {
	if t.dtype != I32 {
		panic(fmt.Sprintf("tensor: I32() on %s tensor", t.dtype))
	}
	return t.i32
}

// Bools returns the backing bool slice. It panics for non-bool tensors.
func (t *Tensor) Bools() []bool {
	if t.dtype != Bool {
		panic(fmt.Sprintf("tensor: Bools() on %s tensor", t.dtype))
	}
	return t.b
}

// At returns element i (flat index) as a float64 regardless of dtype.
func (t *Tensor) At(i int) float64 {
	switch t.dtype {
	case F32:
		return float64(t.f32[i])
	case I32:
		return float64(t.i32[i])
	case Bool:
		if t.b[i] {
			return 1
		}
		return 0
	}
	return 0
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.dtype, t.shape...)
	switch t.dtype {
	case F32:
		copy(c.f32, t.f32)
	case I32:
		copy(c.i32, t.i32)
	case Bool:
		copy(c.b, t.b)
	}
	return c
}

// Reshape returns a view with a new shape sharing storage. The element
// count must match.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	if Numel(shape) != t.Numel() {
		panic(fmt.Sprintf("tensor: reshape %v -> %v changes element count", t.shape, shape))
	}
	return &Tensor{dtype: t.dtype, shape: append([]int(nil), shape...), f32: t.f32, i32: t.i32, b: t.b}
}

// ShapeEq reports whether a and b are identical shapes.
func ShapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Strides returns row-major strides for shape.
func Strides(shape []int) []int {
	s := make([]int, len(shape))
	acc := 1
	for i := len(shape) - 1; i >= 0; i-- {
		s[i] = acc
		acc *= shape[i]
	}
	return s
}

// String renders a short description plus up to a few elements; intended
// for debugging, not serialization.
func (t *Tensor) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s%v[", t.dtype, t.shape)
	n := t.Numel()
	show := n
	if show > 8 {
		show = 8
	}
	for i := 0; i < show; i++ {
		if i > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "%.4g", t.At(i))
	}
	if show < n {
		fmt.Fprintf(&sb, " ... (%d total)", n)
	}
	sb.WriteString("]")
	return sb.String()
}
