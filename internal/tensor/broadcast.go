package tensor

import "fmt"

// BroadcastShapes computes the NumPy-style broadcast of two shapes. Each
// trailing dimension pair must be equal or one of them must be 1. It returns
// an error rather than panicking because it is also used to validate user
// graphs.
func BroadcastShapes(a, b []int) ([]int, error) {
	ra, rb := len(a), len(b)
	r := ra
	if rb > r {
		r = rb
	}
	out := make([]int, r)
	for i := 0; i < r; i++ {
		da, db := 1, 1
		if i >= r-ra {
			da = a[i-(r-ra)]
		}
		if i >= r-rb {
			db = b[i-(r-rb)]
		}
		switch {
		case da == db:
			out[i] = da
		case da == 1:
			out[i] = db
		case db == 1:
			out[i] = da
		default:
			return nil, fmt.Errorf("tensor: shapes %v and %v are not broadcastable", a, b)
		}
	}
	return out, nil
}

// broadcastIndex maps a flat index in the output shape to a flat index in a
// (possibly lower-rank, possibly size-1-dimension) input shape.
type broadcastIndex struct {
	outShape   []int
	inStrides  []int // aligned to outShape rank; 0 where broadcast
	outStrides []int
}

func newBroadcastIndex(outShape, inShape []int) broadcastIndex {
	r := len(outShape)
	ri := len(inShape)
	inStr := Strides(inShape)
	aligned := make([]int, r)
	for i := 0; i < r; i++ {
		j := i - (r - ri)
		if j < 0 || inShape[j] == 1 {
			aligned[i] = 0
		} else {
			aligned[i] = inStr[j]
		}
	}
	return broadcastIndex{outShape: outShape, inStrides: aligned, outStrides: Strides(outShape)}
}

// at converts a flat output index to the flat input index.
func (bi broadcastIndex) at(flat int) int {
	idx := 0
	for i := 0; i < len(bi.outShape); i++ {
		coord := (flat / bi.outStrides[i]) % bi.outShape[i]
		idx += coord * bi.inStrides[i]
	}
	return idx
}
