package tensor

import (
	"testing"
	"testing/quick"
)

func TestConv1DKnownValues(t *testing.T) {
	// x: B=1, S=4, Cin=1 -> [1,2,3,4]; w: K=2, Cin=1, Cout=1 -> [1,1]
	// valid conv: moving sums [3,5,7].
	x := FromF32([]float32{1, 2, 3, 4}, 1, 4, 1)
	w := FromF32([]float32{1, 1}, 2, 1, 1)
	got := Conv1D(x, w)
	if !ShapeEq(got.Shape(), []int{1, 3, 1}) {
		t.Fatalf("shape %v", got.Shape())
	}
	want := []float32{3, 5, 7}
	for i := range want {
		if got.F32()[i] != want[i] {
			t.Fatalf("got %v", got.F32())
		}
	}
}

func TestConv1DMultiChannel(t *testing.T) {
	r := NewRNG(5)
	x := RandN(r, 1, 2, 6, 3)
	w := RandN(r, 1, 3, 3, 4)
	got := Conv1D(x, w)
	if !ShapeEq(got.Shape(), []int{2, 4, 4}) {
		t.Fatalf("shape %v", got.Shape())
	}
	// Spot-check one output against the direct sum.
	bi, ti, oi := 1, 2, 3
	var want float64
	for tap := 0; tap < 3; tap++ {
		for c := 0; c < 3; c++ {
			want += float64(x.F32()[(bi*6+(ti+tap))*3+c]) * float64(w.F32()[(tap*3+c)*4+oi])
		}
	}
	gv := float64(got.F32()[(bi*4+ti)*4+oi])
	if diff := gv - want; diff > 1e-4 || diff < -1e-4 {
		t.Fatalf("got %v want %v", gv, want)
	}
}

// Property: Conv1D is linear in its input.
func TestConv1DLinearity(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		x1 := RandN(r, 1, 1, 5, 2)
		x2 := RandN(r, 1, 1, 5, 2)
		w := RandN(r, 1, 2, 2, 3)
		lhs := Conv1D(Binary(x1, x2, FnAdd), w)
		rhs := Binary(Conv1D(x1, w), Conv1D(x2, w), FnAdd)
		return AllClose(lhs, rhs, 1e-4, 1e-4) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: kernel size 1 conv equals a matmul over channels.
func TestConv1DKernel1IsMatmul(t *testing.T) {
	r := NewRNG(9)
	x := RandN(r, 1, 2, 7, 3)
	w := RandN(r, 1, 1, 3, 4)
	conv := Conv1D(x, w)
	mm := MatMul(x, w.Reshape(3, 4))
	if err := AllClose(conv, mm, 1e-5, 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestPadLoHi(t *testing.T) {
	x := FromF32([]float32{1, 2, 3, 4}, 2, 2)
	got := PadLoHi(x, []int{1, 0}, []int{0, 1})
	if !ShapeEq(got.Shape(), []int{3, 3}) {
		t.Fatalf("shape %v", got.Shape())
	}
	want := []float32{0, 0, 0, 1, 2, 0, 3, 4, 0}
	for i := range want {
		if got.F32()[i] != want[i] {
			t.Fatalf("got %v want %v", got.F32(), want)
		}
	}
}

func TestPadLoHiZeroIsIdentity(t *testing.T) {
	r := NewRNG(3)
	x := RandN(r, 1, 2, 3)
	got := PadLoHi(x, []int{0, 0}, []int{0, 0})
	if err := AllClose(got, x, 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestSameConvPreservesLength(t *testing.T) {
	// 'same' conv with K=3: pad lo=1, hi=1 then valid conv.
	r := NewRNG(7)
	x := RandN(r, 1, 1, 9, 2)
	w := RandN(r, 1, 3, 2, 2)
	padded := PadLoHi(x, []int{0, 1, 0}, []int{0, 1, 0})
	out := Conv1D(padded, w)
	if !ShapeEq(out.Shape(), []int{1, 9, 2}) {
		t.Fatalf("same conv shape %v", out.Shape())
	}
}
