package tensor

import (
	"fmt"
	"math"
)

// UnaryFunc is a scalar f32 function applied pointwise.
type UnaryFunc func(float32) float32

// BinaryFunc is a scalar f32 function applied pointwise with broadcasting.
type BinaryFunc func(float32, float32) float32

// Standard scalar kernels shared with the compiled lowering so that the
// reference and compiled paths agree bit-for-bit on f32 math.
var (
	FnNeg     UnaryFunc = func(x float32) float32 { return -x }
	FnAbs     UnaryFunc = func(x float32) float32 { return float32(math.Abs(float64(x))) }
	FnExp     UnaryFunc = func(x float32) float32 { return float32(math.Exp(float64(x))) }
	FnLog     UnaryFunc = func(x float32) float32 { return float32(math.Log(float64(x))) }
	FnSqrt    UnaryFunc = func(x float32) float32 { return float32(math.Sqrt(float64(x))) }
	FnRsqrt   UnaryFunc = func(x float32) float32 { return float32(1 / math.Sqrt(float64(x))) }
	FnTanh    UnaryFunc = func(x float32) float32 { return float32(math.Tanh(float64(x))) }
	FnErf     UnaryFunc = func(x float32) float32 { return float32(math.Erf(float64(x))) }
	FnSigmoid UnaryFunc = func(x float32) float32 {
		return float32(1 / (1 + math.Exp(-float64(x))))
	}
	FnRelu UnaryFunc = func(x float32) float32 {
		if x < 0 {
			return 0
		}
		return x
	}
	// FnGelu is the erf-form GELU used by BERT.
	FnGelu UnaryFunc = func(x float32) float32 {
		return x * 0.5 * (1 + float32(math.Erf(float64(x)/math.Sqrt2)))
	}

	FnAdd BinaryFunc = func(a, b float32) float32 { return a + b }
	FnSub BinaryFunc = func(a, b float32) float32 { return a - b }
	FnMul BinaryFunc = func(a, b float32) float32 { return a * b }
	FnDiv BinaryFunc = func(a, b float32) float32 { return a / b }
	FnPow BinaryFunc = func(a, b float32) float32 {
		return float32(math.Pow(float64(a), float64(b)))
	}
	FnMax BinaryFunc = func(a, b float32) float32 {
		if a > b {
			return a
		}
		return b
	}
	FnMin BinaryFunc = func(a, b float32) float32 {
		if a < b {
			return a
		}
		return b
	}
)

// Unary applies fn pointwise, returning a new tensor.
func Unary(t *Tensor, fn UnaryFunc) *Tensor {
	if t.dtype != F32 {
		panic(fmt.Sprintf("tensor: Unary on %s tensor", t.dtype))
	}
	out := New(F32, t.shape...)
	for i, v := range t.f32 {
		out.f32[i] = fn(v)
	}
	return out
}

// Binary applies fn pointwise with NumPy broadcasting.
func Binary(a, b *Tensor, fn BinaryFunc) *Tensor {
	if a.dtype != F32 || b.dtype != F32 {
		panic(fmt.Sprintf("tensor: Binary on %s,%s tensors", a.dtype, b.dtype))
	}
	outShape, err := BroadcastShapes(a.shape, b.shape)
	if err != nil {
		panic(err)
	}
	out := New(F32, outShape...)
	if ShapeEq(a.shape, outShape) && ShapeEq(b.shape, outShape) {
		for i := range out.f32 {
			out.f32[i] = fn(a.f32[i], b.f32[i])
		}
		return out
	}
	bia := newBroadcastIndex(outShape, a.shape)
	bib := newBroadcastIndex(outShape, b.shape)
	for i := range out.f32 {
		out.f32[i] = fn(a.f32[bia.at(i)], b.f32[bib.at(i)])
	}
	return out
}

// Compare applies a predicate pointwise with broadcasting, producing a bool
// tensor. op is one of "lt", "le", "gt", "ge", "eq", "ne".
func Compare(a, b *Tensor, op string) *Tensor {
	outShape, err := BroadcastShapes(a.shape, b.shape)
	if err != nil {
		panic(err)
	}
	out := New(Bool, outShape...)
	bia := newBroadcastIndex(outShape, a.shape)
	bib := newBroadcastIndex(outShape, b.shape)
	for i := range out.b {
		x, y := a.At(bia.at(i)), b.At(bib.at(i))
		switch op {
		case "lt":
			out.b[i] = x < y
		case "le":
			out.b[i] = x <= y
		case "gt":
			out.b[i] = x > y
		case "ge":
			out.b[i] = x >= y
		case "eq":
			out.b[i] = x == y
		case "ne":
			out.b[i] = x != y
		default:
			panic("tensor: unknown compare op " + op)
		}
	}
	return out
}

// Select returns where pred is true elements of onTrue, else onFalse, with
// broadcasting across all three operands.
func Select(pred, onTrue, onFalse *Tensor) *Tensor {
	if pred.dtype != Bool {
		panic("tensor: Select predicate must be bool")
	}
	s, err := BroadcastShapes(pred.shape, onTrue.shape)
	if err != nil {
		panic(err)
	}
	outShape, err := BroadcastShapes(s, onFalse.shape)
	if err != nil {
		panic(err)
	}
	out := New(F32, outShape...)
	bip := newBroadcastIndex(outShape, pred.shape)
	bit := newBroadcastIndex(outShape, onTrue.shape)
	bif := newBroadcastIndex(outShape, onFalse.shape)
	for i := range out.f32 {
		if pred.b[bip.at(i)] {
			out.f32[i] = onTrue.f32[bit.at(i)]
		} else {
			out.f32[i] = onFalse.f32[bif.at(i)]
		}
	}
	return out
}

// BroadcastTo materializes t broadcast to shape.
func BroadcastTo(t *Tensor, shape []int) *Tensor {
	if _, err := BroadcastShapes(t.shape, shape); err != nil {
		panic(err)
	}
	out := New(t.dtype, shape...)
	bi := newBroadcastIndex(shape, t.shape)
	switch t.dtype {
	case F32:
		for i := range out.f32 {
			out.f32[i] = t.f32[bi.at(i)]
		}
	case I32:
		for i := range out.i32 {
			out.i32[i] = t.i32[bi.at(i)]
		}
	case Bool:
		for i := range out.b {
			out.b[i] = t.b[bi.at(i)]
		}
	}
	return out
}

// ConvertI32ToF32 converts an i32 tensor to f32.
func ConvertI32ToF32(t *Tensor) *Tensor {
	if t.dtype != I32 {
		panic("tensor: ConvertI32ToF32 on non-i32")
	}
	out := New(F32, t.shape...)
	for i, v := range t.i32 {
		out.f32[i] = float32(v)
	}
	return out
}
