package tensor

import "fmt"

// StackDim0 concatenates tensors along dimension 0. All inputs must agree on
// dtype and on every dimension except the first. Because storage is row-major
// and contiguous, dim-0 concatenation is a sequence of flat copies with no
// element-wise addressing. When a single tensor is passed it is returned
// unchanged, with no copy at all — the common case for a batch of one.
func StackDim0(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: StackDim0 of nothing")
	}
	if len(ts) == 1 {
		return ts[0]
	}
	first := ts[0]
	if first.Rank() < 1 {
		panic("tensor: StackDim0 needs rank >= 1")
	}
	rowLen := Numel(first.shape[1:])
	total := 0
	for _, t := range ts {
		if t.dtype != first.dtype || t.Rank() != first.Rank() {
			panic("tensor: StackDim0 rank/dtype mismatch")
		}
		for i := 1; i < first.Rank(); i++ {
			if t.shape[i] != first.shape[i] {
				panic(fmt.Sprintf("tensor: StackDim0 shape mismatch %v vs %v", t.shape, first.shape))
			}
		}
		total += t.shape[0]
	}
	outShape := append([]int(nil), first.shape...)
	outShape[0] = total
	out := New(first.dtype, outShape...)
	off := 0
	for _, t := range ts {
		n := t.shape[0] * rowLen
		switch first.dtype {
		case F32:
			copy(out.f32[off:off+n], t.f32[:n])
		case I32:
			copy(out.i32[off:off+n], t.i32[:n])
		case Bool:
			copy(out.b[off:off+n], t.b[:n])
		}
		off += n
	}
	return out
}

// ViewDim0 returns a zero-copy view of rows [start, start+rows) along
// dimension 0, sharing backing storage with t. Row-major layout makes a dim-0
// row range a contiguous sub-slice, so no elements are moved. Mutating the
// view mutates t.
func ViewDim0(t *Tensor, start, rows int) *Tensor {
	if t.Rank() < 1 {
		panic("tensor: ViewDim0 needs rank >= 1")
	}
	if start < 0 || rows < 0 || start+rows > t.shape[0] {
		panic(fmt.Sprintf("tensor: ViewDim0 [%d:%d) out of range for dim0=%d", start, start+rows, t.shape[0]))
	}
	rowLen := Numel(t.shape[1:])
	outShape := append([]int(nil), t.shape...)
	outShape[0] = rows
	v := &Tensor{dtype: t.dtype, shape: outShape}
	lo, hi := start*rowLen, (start+rows)*rowLen
	switch t.dtype {
	case F32:
		v.f32 = t.f32[lo:hi:hi]
	case I32:
		v.i32 = t.i32[lo:hi:hi]
	case Bool:
		v.b = t.b[lo:hi:hi]
	}
	return v
}
