package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNumel(t *testing.T) {
	cases := []struct {
		shape []int
		want  int
	}{
		{nil, 1},
		{[]int{0}, 0},
		{[]int{3}, 3},
		{[]int{2, 3, 4}, 24},
	}
	for _, c := range cases {
		if got := Numel(c.shape); got != c.want {
			t.Errorf("Numel(%v) = %d, want %d", c.shape, got, c.want)
		}
	}
}

func TestNewZeroFilled(t *testing.T) {
	ts := New(F32, 2, 3)
	for i, v := range ts.F32() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
	if ts.Numel() != 6 || ts.Bytes() != 24 {
		t.Fatalf("Numel=%d Bytes=%d", ts.Numel(), ts.Bytes())
	}
}

func TestFromF32PanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromF32([]float32{1, 2, 3}, 2, 2)
}

func TestReshapeSharesStorage(t *testing.T) {
	a := FromF32([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	b.F32()[0] = 42
	if a.F32()[0] != 42 {
		t.Fatal("Reshape must share storage")
	}
	if !ShapeEq(b.Shape(), []int{3, 2}) {
		t.Fatalf("shape %v", b.Shape())
	}
}

func TestCloneIndependent(t *testing.T) {
	a := FromF32([]float32{1, 2}, 2)
	b := a.Clone()
	b.F32()[0] = 9
	if a.F32()[0] != 1 {
		t.Fatal("Clone must copy storage")
	}
}

func TestStrides(t *testing.T) {
	got := Strides([]int{2, 3, 4})
	want := []int{12, 4, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Strides = %v, want %v", got, want)
		}
	}
}

func TestBroadcastShapes(t *testing.T) {
	cases := []struct {
		a, b, want []int
		err        bool
	}{
		{[]int{2, 3}, []int{2, 3}, []int{2, 3}, false},
		{[]int{2, 1}, []int{2, 3}, []int{2, 3}, false},
		{[]int{3}, []int{2, 3}, []int{2, 3}, false},
		{[]int{1}, []int{7, 5}, []int{7, 5}, false},
		{[]int{2, 2}, []int{2, 3}, nil, true},
	}
	for _, c := range cases {
		got, err := BroadcastShapes(c.a, c.b)
		if c.err {
			if err == nil {
				t.Errorf("BroadcastShapes(%v,%v): expected error", c.a, c.b)
			}
			continue
		}
		if err != nil {
			t.Errorf("BroadcastShapes(%v,%v): %v", c.a, c.b, err)
			continue
		}
		if !ShapeEq(got, c.want) {
			t.Errorf("BroadcastShapes(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestBinaryBroadcast(t *testing.T) {
	a := FromF32([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromF32([]float32{10, 20, 30}, 3)
	got := Binary(a, b, FnAdd)
	want := []float32{11, 22, 33, 14, 25, 36}
	for i := range want {
		if got.F32()[i] != want[i] {
			t.Fatalf("got %v, want %v", got.F32(), want)
		}
	}
}

func TestBinaryScalarBroadcast(t *testing.T) {
	a := FromF32([]float32{1, 2, 3, 4}, 2, 2)
	s := Scalar(0.5)
	got := Binary(a, s, FnMul)
	want := []float32{0.5, 1, 1.5, 2}
	for i := range want {
		if got.F32()[i] != want[i] {
			t.Fatalf("got %v, want %v", got.F32(), want)
		}
	}
}

func TestUnaryFns(t *testing.T) {
	in := FromF32([]float32{-1, 0, 1, 2}, 4)
	relu := Unary(in, FnRelu)
	want := []float32{0, 0, 1, 2}
	for i := range want {
		if relu.F32()[i] != want[i] {
			t.Fatalf("relu got %v", relu.F32())
		}
	}
	gelu := Unary(Scalar(0), FnGelu)
	if gelu.F32()[0] != 0 {
		t.Fatalf("gelu(0) = %v", gelu.F32()[0])
	}
	// gelu(x) ~ x for large x, ~0 for very negative x.
	if g := Unary(Scalar(10), FnGelu).F32()[0]; math.Abs(float64(g-10)) > 1e-3 {
		t.Fatalf("gelu(10) = %v", g)
	}
}

func TestMatMul2D(t *testing.T) {
	a := FromF32([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromF32([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	got := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	if !ShapeEq(got.Shape(), []int{2, 2}) {
		t.Fatalf("shape %v", got.Shape())
	}
	for i := range want {
		if got.F32()[i] != want[i] {
			t.Fatalf("got %v, want %v", got.F32(), want)
		}
	}
}

func TestMatMulBatchBroadcast(t *testing.T) {
	r := NewRNG(1)
	a := RandN(r, 1, 4, 2, 3) // batch 4
	b := RandN(r, 1, 3, 5)    // broadcast over batch
	got := MatMul(a, b)
	if !ShapeEq(got.Shape(), []int{4, 2, 5}) {
		t.Fatalf("shape %v", got.Shape())
	}
	// Verify batch 2 against the 2-D product.
	a2 := Slice(a, []int{2, 0, 0}, []int{1, 2, 3}).Reshape(2, 3)
	want := MatMul(a2, b)
	gotSlice := Slice(got, []int{2, 0, 0}, []int{1, 2, 5}).Reshape(2, 5)
	if err := AllClose(gotSlice, want, 1e-6, 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestReduceSumAxes(t *testing.T) {
	a := FromF32([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	got := Reduce(a, ReduceSum, []int{1}, false)
	if !ShapeEq(got.Shape(), []int{2}) {
		t.Fatalf("shape %v", got.Shape())
	}
	if got.F32()[0] != 6 || got.F32()[1] != 15 {
		t.Fatalf("got %v", got.F32())
	}
	kd := Reduce(a, ReduceSum, []int{1}, true)
	if !ShapeEq(kd.Shape(), []int{2, 1}) {
		t.Fatalf("keepDims shape %v", kd.Shape())
	}
	all := Reduce(a, ReduceSum, []int{0, 1}, false)
	if all.Numel() != 1 || all.F32()[0] != 21 {
		t.Fatalf("all-axis %v", all.F32())
	}
}

func TestReduceMaxMeanNegAxis(t *testing.T) {
	a := FromF32([]float32{1, 5, 2, -3, 0, 4}, 2, 3)
	mx := Reduce(a, ReduceMax, []int{-1}, false)
	if mx.F32()[0] != 5 || mx.F32()[1] != 4 {
		t.Fatalf("max %v", mx.F32())
	}
	mean := Reduce(a, ReduceMean, []int{0}, false)
	want := []float32{-1, 2.5, 3}
	for i := range want {
		if mean.F32()[i] != want[i] {
			t.Fatalf("mean %v want %v", mean.F32(), want)
		}
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	r := NewRNG(7)
	a := RandN(r, 3, 4, 7)
	s := Softmax(a)
	sums := Reduce(s, ReduceSum, []int{-1}, false)
	for i, v := range sums.F32() {
		if math.Abs(float64(v)-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", i, v)
		}
	}
	// Softmax is shift invariant.
	shifted := Binary(a, Scalar(100), FnAdd)
	if err := AllClose(Softmax(shifted), s, 1e-5, 1e-6); err != nil {
		t.Fatalf("shift invariance: %v", err)
	}
}

func TestLayerNormStats(t *testing.T) {
	r := NewRNG(3)
	a := RandN(r, 2, 5, 16)
	gamma := FromF32(onesSlice(16), 16)
	beta := Zeros(16)
	out := LayerNorm(a, gamma, beta, 1e-5)
	// Each row should have ~0 mean and ~1 variance.
	mean := Reduce(out, ReduceMean, []int{-1}, false)
	for _, v := range mean.F32() {
		if math.Abs(float64(v)) > 1e-4 {
			t.Fatalf("row mean %v", v)
		}
	}
	sq := Binary(out, out, FnMul)
	varr := Reduce(sq, ReduceMean, []int{-1}, false)
	for _, v := range varr.F32() {
		if math.Abs(float64(v)-1) > 1e-2 {
			t.Fatalf("row variance %v", v)
		}
	}
}

func onesSlice(n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = 1
	}
	return s
}

func TestTranspose(t *testing.T) {
	a := FromF32([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	got := Transpose(a, []int{1, 0})
	want := []float32{1, 4, 2, 5, 3, 6}
	if !ShapeEq(got.Shape(), []int{3, 2}) {
		t.Fatalf("shape %v", got.Shape())
	}
	for i := range want {
		if got.F32()[i] != want[i] {
			t.Fatalf("got %v want %v", got.F32(), want)
		}
	}
}

func TestTransposeRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		a := RandN(r, 1, 2, 3, 4)
		perm := []int{2, 0, 1}
		inv := []int{1, 2, 0}
		back := Transpose(Transpose(a, perm), inv)
		return AllClose(a, back, 0, 0) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcat(t *testing.T) {
	a := FromF32([]float32{1, 2, 3, 4}, 2, 2)
	b := FromF32([]float32{5, 6}, 2, 1)
	got := Concat(1, a, b)
	want := []float32{1, 2, 5, 3, 4, 6}
	if !ShapeEq(got.Shape(), []int{2, 3}) {
		t.Fatalf("shape %v", got.Shape())
	}
	for i := range want {
		if got.F32()[i] != want[i] {
			t.Fatalf("got %v want %v", got.F32(), want)
		}
	}
	axis0 := Concat(0, a, a)
	if !ShapeEq(axis0.Shape(), []int{4, 2}) {
		t.Fatalf("axis0 shape %v", axis0.Shape())
	}
}

func TestSliceExtract(t *testing.T) {
	a := FromF32([]float32{0, 1, 2, 3, 4, 5, 6, 7, 8}, 3, 3)
	got := Slice(a, []int{1, 0}, []int{2, 2})
	want := []float32{3, 4, 6, 7}
	for i := range want {
		if got.F32()[i] != want[i] {
			t.Fatalf("got %v want %v", got.F32(), want)
		}
	}
}

func TestGather(t *testing.T) {
	table := FromF32([]float32{10, 11, 20, 21, 30, 31}, 3, 2)
	idx := FromI32([]int32{2, 0, 2}, 3)
	got := Gather(table, idx)
	want := []float32{30, 31, 10, 11, 30, 31}
	if !ShapeEq(got.Shape(), []int{3, 2}) {
		t.Fatalf("shape %v", got.Shape())
	}
	for i := range want {
		if got.F32()[i] != want[i] {
			t.Fatalf("got %v want %v", got.F32(), want)
		}
	}
}

func TestPad(t *testing.T) {
	a := FromF32([]float32{1, 2, 3, 4}, 2, 2)
	got := Pad(a, []int{3, 4}, 0)
	if !ShapeEq(got.Shape(), []int{3, 4}) {
		t.Fatalf("shape %v", got.Shape())
	}
	if got.F32()[0] != 1 || got.F32()[1] != 2 || got.F32()[4] != 3 || got.F32()[5] != 4 {
		t.Fatalf("payload misplaced: %v", got.F32())
	}
	var sum float32
	for _, v := range got.F32() {
		sum += v
	}
	if sum != 10 {
		t.Fatalf("padding must be zero, sum=%v", sum)
	}
}

func TestCompareAndSelect(t *testing.T) {
	a := FromF32([]float32{1, 5, 3}, 3)
	b := FromF32([]float32{2, 2, 3}, 3)
	lt := Compare(a, b, "lt")
	wantB := []bool{true, false, false}
	for i := range wantB {
		if lt.Bools()[i] != wantB[i] {
			t.Fatalf("lt %v", lt.Bools())
		}
	}
	sel := Select(lt, a, b)
	want := []float32{1, 2, 3}
	for i := range want {
		if sel.F32()[i] != want[i] {
			t.Fatalf("select %v", sel.F32())
		}
	}
}

func TestBroadcastTo(t *testing.T) {
	a := FromF32([]float32{1, 2, 3}, 1, 3)
	got := BroadcastTo(a, []int{2, 3})
	want := []float32{1, 2, 3, 1, 2, 3}
	for i := range want {
		if got.F32()[i] != want[i] {
			t.Fatalf("got %v", got.F32())
		}
	}
}

func TestAllCloseDetectsMismatch(t *testing.T) {
	a := FromF32([]float32{1, 2}, 2)
	b := FromF32([]float32{1, 2.5}, 2)
	if err := AllClose(a, b, 0, 0.1); err == nil {
		t.Fatal("expected mismatch")
	}
	if err := AllClose(a, b, 0, 1); err != nil {
		t.Fatalf("within tolerance: %v", err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("RNG must be deterministic")
		}
	}
}

// Property: matmul distributes over addition: A(B+C) == AB + AC.
func TestMatMulDistributive(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		a := RandN(r, 1, 4, 3)
		b := RandN(r, 1, 3, 5)
		c := RandN(r, 1, 3, 5)
		lhs := MatMul(a, Binary(b, c, FnAdd))
		rhs := Binary(MatMul(a, b), MatMul(a, c), FnAdd)
		return AllClose(lhs, rhs, 1e-4, 1e-4) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: reduce-sum over all axes equals the sum of the flat data.
func TestReduceSumTotal(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		a := RandN(r, 1, 3, 4, 5)
		total := Reduce(a, ReduceSum, []int{0, 1, 2}, false)
		var want float64
		for _, v := range a.F32() {
			want += float64(v)
		}
		return math.Abs(float64(total.F32()[0])-want) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
