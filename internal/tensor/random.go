package tensor

import "math"

// RNG is a small deterministic generator (xorshift64*) used to fill test
// and benchmark tensors reproducibly without importing math/rand everywhere.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed (seed 0 is remapped).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float32 returns a uniform value in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / float32(1<<24)
}

// Intn returns a uniform value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with n<=0")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat32 returns an approximately standard-normal value
// (Box-Muller on the uniform generator).
func (r *RNG) NormFloat32() float32 {
	u1 := float64(r.Float32())
	if u1 < 1e-9 {
		u1 = 1e-9
	}
	u2 := float64(r.Float32())
	return float32(math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2))
}

// RandN fills a new f32 tensor with scaled normal values (std = scale).
func RandN(r *RNG, scale float32, shape ...int) *Tensor {
	t := New(F32, shape...)
	for i := range t.f32 {
		t.f32[i] = r.NormFloat32() * scale
	}
	return t
}

// RandUniform fills a new f32 tensor with uniform values in [lo, hi).
func RandUniform(r *RNG, lo, hi float32, shape ...int) *Tensor {
	t := New(F32, shape...)
	for i := range t.f32 {
		t.f32[i] = lo + (hi-lo)*r.Float32()
	}
	return t
}

// RandIndices fills a new i32 tensor with uniform indices in [0, n).
func RandIndices(r *RNG, n int, shape ...int) *Tensor {
	t := New(I32, shape...)
	for i := range t.i32 {
		t.i32[i] = int32(r.Intn(n))
	}
	return t
}
