package tensor

import "fmt"

// Transpose permutes the axes of t according to perm, which must be a
// permutation of [0, rank).
func Transpose(t *Tensor, perm []int) *Tensor {
	r := t.Rank()
	if len(perm) != r {
		panic(fmt.Sprintf("tensor: Transpose perm %v for rank %d", perm, r))
	}
	seen := make([]bool, r)
	outShape := make([]int, r)
	for i, p := range perm {
		if p < 0 || p >= r || seen[p] {
			panic(fmt.Sprintf("tensor: invalid perm %v", perm))
		}
		seen[p] = true
		outShape[i] = t.shape[p]
	}
	out := New(t.dtype, outShape...)
	inStr := Strides(t.shape)
	outStr := Strides(outShape)
	n := t.Numel()
	for flat := 0; flat < n; flat++ {
		iidx := 0
		for i := 0; i < r; i++ {
			coord := (flat / outStr[i]) % outShape[i]
			iidx += coord * inStr[perm[i]]
		}
		switch t.dtype {
		case F32:
			out.f32[flat] = t.f32[iidx]
		case I32:
			out.i32[flat] = t.i32[iidx]
		case Bool:
			out.b[flat] = t.b[iidx]
		}
	}
	return out
}

// Concat concatenates tensors along axis. All inputs must agree on dtype and
// on every dimension except axis.
func Concat(axis int, ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: Concat of nothing")
	}
	r := ts[0].Rank()
	if axis < 0 {
		axis += r
	}
	outShape := append([]int(nil), ts[0].shape...)
	total := 0
	for _, t := range ts {
		if t.Rank() != r || t.dtype != ts[0].dtype {
			panic("tensor: Concat rank/dtype mismatch")
		}
		for i := 0; i < r; i++ {
			if i != axis && t.shape[i] != outShape[i] {
				panic(fmt.Sprintf("tensor: Concat shape mismatch %v vs %v at axis %d", t.shape, outShape, i))
			}
		}
		total += t.shape[axis]
	}
	outShape[axis] = total
	out := New(ts[0].dtype, outShape...)

	// Copy slab by slab: outer = product of dims before axis,
	// inner = product of dims after axis.
	outer := 1
	for i := 0; i < axis; i++ {
		outer *= outShape[i]
	}
	inner := 1
	for i := axis + 1; i < r; i++ {
		inner *= outShape[i]
	}
	outRow := total * inner
	off := 0
	for _, t := range ts {
		row := t.shape[axis] * inner
		for o := 0; o < outer; o++ {
			dst := o*outRow + off
			src := o * row
			switch t.dtype {
			case F32:
				copy(out.f32[dst:dst+row], t.f32[src:src+row])
			case I32:
				copy(out.i32[dst:dst+row], t.i32[src:src+row])
			case Bool:
				copy(out.b[dst:dst+row], t.b[src:src+row])
			}
		}
		off += row
	}
	return out
}

// Slice extracts t[starts[i]:starts[i]+sizes[i]] along every axis.
func Slice(t *Tensor, starts, sizes []int) *Tensor {
	r := t.Rank()
	if len(starts) != r || len(sizes) != r {
		panic("tensor: Slice starts/sizes rank mismatch")
	}
	for i := 0; i < r; i++ {
		if starts[i] < 0 || sizes[i] < 0 || starts[i]+sizes[i] > t.shape[i] {
			panic(fmt.Sprintf("tensor: Slice out of range: shape %v starts %v sizes %v", t.shape, starts, sizes))
		}
	}
	out := New(t.dtype, sizes...)
	inStr := Strides(t.shape)
	outStr := Strides(sizes)
	n := out.Numel()
	for flat := 0; flat < n; flat++ {
		iidx := 0
		for i := 0; i < r; i++ {
			coord := (flat/outStr[i])%sizes[i] + starts[i]
			iidx += coord * inStr[i]
		}
		switch t.dtype {
		case F32:
			out.f32[flat] = t.f32[iidx]
		case I32:
			out.i32[flat] = t.i32[iidx]
		case Bool:
			out.b[flat] = t.b[iidx]
		}
	}
	return out
}

// Gather selects rows of table (axis 0) by indices. For table shape [V, ...]
// and indices shape S, the result has shape S ++ table.shape[1:].
func Gather(table, indices *Tensor) *Tensor {
	if indices.dtype != I32 {
		panic("tensor: Gather indices must be i32")
	}
	rowShape := table.shape[1:]
	rowLen := Numel(rowShape)
	outShape := append(append([]int(nil), indices.shape...), rowShape...)
	out := New(table.dtype, outShape...)
	v := table.shape[0]
	for i, ix := range indices.i32 {
		if int(ix) < 0 || int(ix) >= v {
			panic(fmt.Sprintf("tensor: Gather index %d out of range [0,%d)", ix, v))
		}
		dst, src := i*rowLen, int(ix)*rowLen
		switch table.dtype {
		case F32:
			copy(out.f32[dst:dst+rowLen], table.f32[src:src+rowLen])
		case I32:
			copy(out.i32[dst:dst+rowLen], table.i32[src:src+rowLen])
		case Bool:
			copy(out.b[dst:dst+rowLen], table.b[src:src+rowLen])
		}
	}
	return out
}

// Pad pads t with value to reach the given target shape (padding at the end
// of each axis). Target dims must be >= current dims.
func Pad(t *Tensor, target []int, value float32) *Tensor {
	if len(target) != t.Rank() {
		panic("tensor: Pad rank mismatch")
	}
	for i := range target {
		if target[i] < t.shape[i] {
			panic(fmt.Sprintf("tensor: Pad target %v smaller than %v", target, t.shape))
		}
	}
	out := New(t.dtype, target...)
	if t.dtype == F32 && value != 0 {
		for i := range out.f32 {
			out.f32[i] = value
		}
	}
	inStr := Strides(t.shape)
	outStr := Strides(target)
	n := t.Numel()
	for flat := 0; flat < n; flat++ {
		oidx := 0
		for i := 0; i < t.Rank(); i++ {
			coord := (flat / inStr[i]) % t.shape[i]
			oidx += coord * outStr[i]
		}
		switch t.dtype {
		case F32:
			out.f32[oidx] = t.f32[flat]
		case I32:
			out.i32[oidx] = t.i32[flat]
		case Bool:
			out.b[oidx] = t.b[flat]
		}
	}
	return out
}
