package tensor

import "fmt"

// Conv1D computes a stride-1 valid 1-D convolution (cross-correlation, as
// in ML frameworks): x [B, S, Cin] with filters w [K, Cin, Cout] yields
// [B, S-K+1, Cout].
func Conv1D(x, w *Tensor) *Tensor {
	if x.dtype != F32 || w.dtype != F32 {
		panic("tensor: Conv1D requires f32 operands")
	}
	if x.Rank() != 3 || w.Rank() != 3 {
		panic(fmt.Sprintf("tensor: Conv1D shapes %v ⊛ %v (want [B,S,Cin] ⊛ [K,Cin,Cout])", x.shape, w.shape))
	}
	b, s, cin := x.shape[0], x.shape[1], x.shape[2]
	k, wcin, cout := w.shape[0], w.shape[1], w.shape[2]
	if cin != wcin {
		panic(fmt.Sprintf("tensor: Conv1D channel mismatch %d vs %d", cin, wcin))
	}
	if s < k {
		panic(fmt.Sprintf("tensor: Conv1D sequence %d shorter than kernel %d", s, k))
	}
	sOut := s - k + 1
	out := New(F32, b, sOut, cout)
	for bi := 0; bi < b; bi++ {
		xb := x.f32[bi*s*cin:]
		ob := out.f32[bi*sOut*cout:]
		for t := 0; t < sOut; t++ {
			orow := ob[t*cout : (t+1)*cout]
			for tap := 0; tap < k; tap++ {
				xrow := xb[(t+tap)*cin : (t+tap+1)*cin]
				wtap := w.f32[tap*cin*cout:]
				for c := 0; c < cin; c++ {
					xv := xrow[c]
					if xv == 0 {
						continue
					}
					wrow := wtap[c*cout : (c+1)*cout]
					for o := range orow {
						orow[o] += xv * wrow[o]
					}
				}
			}
		}
	}
	return out
}

// PadLoHi zero-pads t by lo[i] elements before and hi[i] after each axis.
func PadLoHi(t *Tensor, lo, hi []int) *Tensor {
	r := t.Rank()
	if len(lo) != r || len(hi) != r {
		panic("tensor: PadLoHi rank mismatch")
	}
	target := make([]int, r)
	for i := range target {
		if lo[i] < 0 || hi[i] < 0 {
			panic("tensor: PadLoHi negative padding")
		}
		target[i] = lo[i] + t.shape[i] + hi[i]
	}
	out := New(t.dtype, target...)
	inStr := Strides(t.shape)
	outStr := Strides(target)
	n := t.Numel()
	for flat := 0; flat < n; flat++ {
		oidx := 0
		for i := 0; i < r; i++ {
			coord := (flat/inStr[i])%t.shape[i] + lo[i]
			oidx += coord * outStr[i]
		}
		switch t.dtype {
		case F32:
			out.f32[oidx] = t.f32[flat]
		case I32:
			out.i32[oidx] = t.i32[flat]
		case Bool:
			out.b[oidx] = t.b[flat]
		}
	}
	return out
}
