package tensor

import "testing"

func TestStackDim0(t *testing.T) {
	a := FromF32([]float32{1, 2, 3, 4}, 2, 2)
	b := FromF32([]float32{5, 6}, 1, 2)
	c := FromF32([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	s := StackDim0(a, b, c)
	if !ShapeEq(s.Shape(), []int{6, 2}) {
		t.Fatalf("shape %v, want [6 2]", s.Shape())
	}
	want := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	for i, v := range s.F32() {
		if v != want[i] {
			t.Fatalf("element %d: %v != %v", i, v, want[i])
		}
	}
}

func TestStackDim0SingleIsZeroCopy(t *testing.T) {
	a := FromF32([]float32{1, 2, 3, 4}, 2, 2)
	if s := StackDim0(a); s != a {
		t.Fatal("StackDim0 of one tensor must return it unchanged")
	}
}

func TestStackDim0I32AndBool(t *testing.T) {
	s := StackDim0(FromI32([]int32{1, 2}, 1, 2), FromI32([]int32{3, 4}, 1, 2))
	if got := s.I32(); got[0] != 1 || got[3] != 4 {
		t.Fatalf("i32 stack = %v", got)
	}
	sb := StackDim0(FromBool([]bool{true}, 1, 1), FromBool([]bool{false}, 1, 1))
	if got := sb.Bools(); !got[0] || got[1] {
		t.Fatalf("bool stack = %v", got)
	}
}

func TestStackDim0Panics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":          func() { StackDim0() },
		"shape-mismatch": func() { StackDim0(Zeros(2, 3), Zeros(2, 4)) },
		"dtype-mismatch": func() { StackDim0(Zeros(1, 2), FromI32([]int32{1, 2}, 1, 2)) },
		"rank0":          func() { StackDim0(Scalar(1), Scalar(2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestViewDim0SharesStorage(t *testing.T) {
	base := FromF32([]float32{0, 1, 2, 3, 4, 5}, 3, 2)
	v := ViewDim0(base, 1, 2)
	if !ShapeEq(v.Shape(), []int{2, 2}) {
		t.Fatalf("view shape %v, want [2 2]", v.Shape())
	}
	if v.F32()[0] != 2 || v.F32()[3] != 5 {
		t.Fatalf("view data %v", v.F32())
	}
	v.F32()[0] = 42
	if base.F32()[2] != 42 {
		t.Fatal("view does not share backing storage")
	}
}

func TestViewDim0Bounds(t *testing.T) {
	base := Zeros(3, 2)
	for name, fn := range map[string]func(){
		"past-end": func() { ViewDim0(base, 2, 2) },
		"negative": func() { ViewDim0(base, -1, 1) },
		"rank0":    func() { ViewDim0(Scalar(1), 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
	// Empty and full views are legal.
	if v := ViewDim0(base, 3, 0); v.Dim(0) != 0 {
		t.Fatal("empty tail view")
	}
	if v := ViewDim0(base, 0, 3); v.Numel() != 6 {
		t.Fatal("full view")
	}
}
