package tensor

import "testing"

func BenchmarkMatMul128(b *testing.B) {
	r := NewRNG(1)
	x := RandN(r, 1, 128, 128)
	y := RandN(r, 1, 128, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkSoftmaxRows(b *testing.B) {
	r := NewRNG(2)
	x := RandN(r, 1, 256, 256)
	for i := 0; i < b.N; i++ {
		Softmax(x)
	}
}

func BenchmarkLayerNorm(b *testing.B) {
	r := NewRNG(3)
	x := RandN(r, 1, 256, 128)
	gamma := RandN(r, 1, 128)
	beta := RandN(r, 1, 128)
	for i := 0; i < b.N; i++ {
		LayerNorm(x, gamma, beta, 1e-5)
	}
}

func BenchmarkBinaryBroadcast(b *testing.B) {
	r := NewRNG(4)
	x := RandN(r, 1, 64, 64, 16)
	bias := RandN(r, 1, 16)
	for i := 0; i < b.N; i++ {
		Binary(x, bias, FnAdd)
	}
}

func BenchmarkConv1D(b *testing.B) {
	r := NewRNG(5)
	x := RandN(r, 1, 4, 128, 16)
	w := RandN(r, 1, 5, 16, 32)
	for i := 0; i < b.N; i++ {
		Conv1D(x, w)
	}
}
