package tensor

import "fmt"

// MatMul computes a batched matrix product. Both operands must be f32 with
// rank >= 2; leading (batch) dimensions broadcast NumPy-style. For shapes
// [..., M, K] x [..., K, N] the result is [..., M, N].
func MatMul(a, b *Tensor) *Tensor {
	if a.dtype != F32 || b.dtype != F32 {
		panic("tensor: MatMul requires f32 operands")
	}
	if a.Rank() < 2 || b.Rank() < 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank>=2, got %v x %v", a.shape, b.shape))
	}
	m, ka := a.shape[a.Rank()-2], a.shape[a.Rank()-1]
	kb, n := b.shape[b.Rank()-2], b.shape[b.Rank()-1]
	if ka != kb {
		panic(fmt.Sprintf("tensor: MatMul contraction mismatch %v x %v", a.shape, b.shape))
	}
	batchA := a.shape[:a.Rank()-2]
	batchB := b.shape[:b.Rank()-2]
	batch, err := BroadcastShapes(batchA, batchB)
	if err != nil {
		panic(fmt.Sprintf("tensor: MatMul batch dims not broadcastable: %v x %v", a.shape, b.shape))
	}
	outShape := append(append([]int(nil), batch...), m, n)
	out := New(F32, outShape...)

	nb := Numel(batch)
	bia := newBroadcastIndex(batch, batchA)
	bib := newBroadcastIndex(batch, batchB)
	amat, bmat := m*ka, kb*n
	for bi := 0; bi < nb; bi++ {
		ab := a.f32[bia.at(bi)*amat:]
		bb := b.f32[bib.at(bi)*bmat:]
		ob := out.f32[bi*m*n:]
		matmul2d(ob[:m*n], ab[:m*ka], bb[:ka*n], m, ka, n)
	}
	return out
}

// matmul2d computes out[m,n] = a[m,k] * b[k,n] with a cache-friendly ikj
// loop order.
func matmul2d(out, a, b []float32, m, k, n int) {
	for i := 0; i < m; i++ {
		orow := out[i*n : (i+1)*n]
		for x := range orow {
			orow[x] = 0
		}
		arow := a[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j := range orow {
				orow[j] += av * brow[j]
			}
		}
	}
}

// Dot computes the matrix product of two rank-2 tensors.
func Dot(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: Dot requires rank-2 operands")
	}
	return MatMul(a, b)
}
