package tensor

import (
	"fmt"
	"math"
	"sort"
)

// ReduceKind enumerates the supported reduction operators.
type ReduceKind uint8

const (
	// ReduceSum accumulates with addition from identity 0.
	ReduceSum ReduceKind = iota
	// ReduceMax accumulates with max from identity -inf.
	ReduceMax
	// ReduceMin accumulates with min from identity +inf.
	ReduceMin
	// ReduceMean is sum divided by the reduced extent.
	ReduceMean
)

// String implements fmt.Stringer.
func (k ReduceKind) String() string {
	switch k {
	case ReduceSum:
		return "sum"
	case ReduceMax:
		return "max"
	case ReduceMin:
		return "min"
	case ReduceMean:
		return "mean"
	}
	return fmt.Sprintf("reduce(%d)", uint8(k))
}

// Identity returns the identity element of the reduction.
func (k ReduceKind) Identity() float32 {
	switch k {
	case ReduceMax:
		return float32(math.Inf(-1))
	case ReduceMin:
		return float32(math.Inf(1))
	default:
		return 0
	}
}

// Combine folds v into acc.
func (k ReduceKind) Combine(acc, v float32) float32 {
	switch k {
	case ReduceMax:
		if v > acc {
			return v
		}
		return acc
	case ReduceMin:
		if v < acc {
			return v
		}
		return acc
	default:
		return acc + v
	}
}

// ReducedShape returns shape with the given axes removed (keepDims=false) or
// set to 1 (keepDims=true). Axes must be in range and are deduplicated.
func ReducedShape(shape []int, axes []int, keepDims bool) []int {
	drop := map[int]bool{}
	for _, a := range axes {
		if a < 0 {
			a += len(shape)
		}
		if a < 0 || a >= len(shape) {
			panic(fmt.Sprintf("tensor: reduce axis %d out of range for shape %v", a, shape))
		}
		drop[a] = true
	}
	out := make([]int, 0, len(shape))
	for i, d := range shape {
		if drop[i] {
			if keepDims {
				out = append(out, 1)
			}
			continue
		}
		out = append(out, d)
	}
	return out
}

// Reduce reduces t over axes with the given kind. keepDims controls whether
// reduced axes survive as size-1 dimensions.
func Reduce(t *Tensor, kind ReduceKind, axes []int, keepDims bool) *Tensor {
	if t.dtype != F32 {
		panic("tensor: Reduce requires f32")
	}
	norm := make([]int, 0, len(axes))
	for _, a := range axes {
		if a < 0 {
			a += t.Rank()
		}
		norm = append(norm, a)
	}
	sort.Ints(norm)
	outShape := ReducedShape(t.shape, norm, keepDims)
	out := New(F32, outShape...)
	id := kind.Identity()
	for i := range out.f32 {
		out.f32[i] = id
	}

	drop := map[int]bool{}
	redCount := 1
	for _, a := range norm {
		if !drop[a] {
			redCount *= t.shape[a]
		}
		drop[a] = true
	}

	inStr := Strides(t.shape)
	// Strides of the kept dims within the output tensor.
	keptStr := make([]int, t.Rank())
	{
		outStrides := Strides(outShape)
		oi := 0
		for i := 0; i < t.Rank(); i++ {
			if drop[i] {
				if keepDims {
					oi++
				}
				continue
			}
			keptStr[i] = outStrides[oi]
			oi++
		}
	}
	for flat, v := range t.f32 {
		oidx := 0
		for i := 0; i < t.Rank(); i++ {
			if drop[i] {
				continue
			}
			coord := (flat / inStr[i]) % t.shape[i]
			oidx += coord * keptStr[i]
		}
		out.f32[oidx] = kind.Combine(out.f32[oidx], v)
	}
	if kind == ReduceMean {
		inv := 1 / float32(redCount)
		for i := range out.f32 {
			out.f32[i] *= inv
		}
	}
	return out
}

// Softmax computes a numerically stable softmax over the last axis.
func Softmax(t *Tensor) *Tensor {
	if t.dtype != F32 || t.Rank() == 0 {
		panic("tensor: Softmax requires f32 rank>=1")
	}
	n := t.shape[t.Rank()-1]
	rows := t.Numel() / n
	out := New(F32, t.shape...)
	for r := 0; r < rows; r++ {
		in := t.f32[r*n : (r+1)*n]
		o := out.f32[r*n : (r+1)*n]
		mx := float32(math.Inf(-1))
		for _, v := range in {
			if v > mx {
				mx = v
			}
		}
		var sum float32
		for i, v := range in {
			e := float32(math.Exp(float64(v - mx)))
			o[i] = e
			sum += e
		}
		inv := 1 / sum
		for i := range o {
			o[i] *= inv
		}
	}
	return out
}

// LayerNorm normalizes over the last axis with learned scale and bias
// (gamma, beta of shape [lastDim]).
func LayerNorm(t, gamma, beta *Tensor, eps float32) *Tensor {
	n := t.shape[t.Rank()-1]
	if gamma.Numel() != n || beta.Numel() != n {
		panic("tensor: LayerNorm gamma/beta must match last dim")
	}
	rows := t.Numel() / n
	out := New(F32, t.shape...)
	for r := 0; r < rows; r++ {
		in := t.f32[r*n : (r+1)*n]
		o := out.f32[r*n : (r+1)*n]
		var mean float32
		for _, v := range in {
			mean += v
		}
		mean /= float32(n)
		var varsum float32
		for _, v := range in {
			d := v - mean
			varsum += d * d
		}
		inv := float32(1 / math.Sqrt(float64(varsum/float32(n)+eps)))
		for i, v := range in {
			o[i] = (v-mean)*inv*gamma.f32[i] + beta.f32[i]
		}
	}
	return out
}
