package tensor

import (
	"fmt"
	"math"
)

// AllClose reports whether a and b agree in shape and elementwise within
// |x-y| <= atol + rtol*|y|. It returns a descriptive error on the first
// mismatch to make test failures actionable.
func AllClose(a, b *Tensor, rtol, atol float64) error {
	if a.dtype != b.dtype {
		return fmt.Errorf("dtype mismatch: %s vs %s", a.dtype, b.dtype)
	}
	if !ShapeEq(a.shape, b.shape) {
		return fmt.Errorf("shape mismatch: %v vs %v", a.shape, b.shape)
	}
	n := a.Numel()
	worst := -1
	var worstDiff float64
	for i := 0; i < n; i++ {
		x, y := a.At(i), b.At(i)
		if math.IsNaN(x) != math.IsNaN(y) {
			return fmt.Errorf("NaN mismatch at %d: %v vs %v", i, x, y)
		}
		diff := math.Abs(x - y)
		tol := atol + rtol*math.Abs(y)
		if diff > tol && diff > worstDiff {
			worst = i
			worstDiff = diff
		}
	}
	if worst >= 0 {
		return fmt.Errorf("max violation at index %d: %v vs %v (|diff|=%g)", worst, a.At(worst), b.At(worst), worstDiff)
	}
	return nil
}

// MaxAbsDiff returns the maximum elementwise |a-b|; shapes must match.
func MaxAbsDiff(a, b *Tensor) float64 {
	if !ShapeEq(a.shape, b.shape) {
		panic(fmt.Sprintf("tensor: MaxAbsDiff shape mismatch %v vs %v", a.shape, b.shape))
	}
	var m float64
	for i := 0; i < a.Numel(); i++ {
		d := math.Abs(a.At(i) - b.At(i))
		if d > m {
			m = d
		}
	}
	return m
}
