// The rollout controller: health-gated canary promotion with automatic
// rollback (see DESIGN.md §16).
//
// When rollouts are enabled and the watcher (or a load call) introduces a
// new version of a model that already has a serving default, the new
// version does NOT take the default pin immediately. It enters CANARY:
//
//   - split mode: every Nth default-pin request (N ≈ 1/CanaryFraction)
//     is routed to the canary; a canary-routed request that fails with a
//     server-class error is transparently re-served on the stable
//     version, so default-pin traffic never sees a canary 5xx;
//   - shadow mode: every Nth default-pin request is served by the stable
//     version AND re-run on the canary; the two responses are compared
//     bit-wise on the wire encoding. Mismatches are regressions; the
//     client always receives the stable bytes.
//
// The canary is promoted to the default pin after PromoteAfter
// successful canary requests with its error-rate EWMA under
// MaxErrorRate. Any hard regression — a watchdog cancel, a breaker
// opening (or found open), a shadow mismatch — or a judged EWMA over the
// threshold triggers automatic rollback: the canary is quarantined
// (requests to it shed with discerr.ErrVersionQuarantined until a
// half-open probe revives it) and the default pin stays on the prior
// version. A newer version dropping mid-rollout aborts the current one.
package fleet

import (
	"strings"
	"time"

	"godisc/internal/obs"
	"godisc/internal/serve"
)

// RolloutConfig parameterizes the canary rollout controller.
type RolloutConfig struct {
	// Enabled turns the controller on. Off (the default), a new version
	// takes the default pin immediately — PR 9's behavior.
	Enabled bool
	// CanaryFraction is the share of default-pin traffic routed to (or,
	// in shadow mode, mirrored onto) the canary. Default 0.1.
	CanaryFraction float64
	// PromoteAfter is how many successful canary requests are required
	// before promotion. Default 50.
	PromoteAfter int
	// MaxErrorRate is the error-rate EWMA threshold: a judged canary
	// above it rolls back, below it (with PromoteAfter successes) it
	// promotes. Default 0.1.
	MaxErrorRate float64
	// EWMAAlpha is the EWMA smoothing factor. Default 0.2.
	EWMAAlpha float64
	// MinSamples is how many outcomes a version must accumulate before
	// its EWMA is judged at all. Default 10.
	MinSamples int
	// Shadow selects shadow mode: the canary mirrors sampled stable
	// traffic instead of serving it, and bit-wise output comparison
	// gates promotion.
	Shadow bool
	// ProbeCooldown is how long a quarantined version waits before one
	// half-open probe request is admitted. Default 15s.
	ProbeCooldown time.Duration
}

// withDefaults fills the zero values.
func (c RolloutConfig) withDefaults() RolloutConfig {
	if c.CanaryFraction <= 0 || c.CanaryFraction > 1 {
		c.CanaryFraction = 0.1
	}
	if c.PromoteAfter <= 0 {
		c.PromoteAfter = 50
	}
	if c.MaxErrorRate <= 0 || c.MaxErrorRate >= 1 {
		c.MaxErrorRate = 0.1
	}
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		c.EWMAAlpha = 0.2
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 10
	}
	if c.ProbeCooldown <= 0 {
		c.ProbeCooldown = 15 * time.Second
	}
	return c
}

// rollout is one in-flight canary. Guarded by Fleet.mu.
type rollout struct {
	model  string
	canary string // version under evaluation (state CANARY)
	prior  string // stable version holding the default pin
	served int    // successful canary requests so far
	ticker uint64 // default-pin request counter for the traffic split
	every  uint64 // route (or shadow) every `every`-th request
}

// RolloutStats is a point-in-time snapshot of the controller, reported
// by discserve at shutdown.
type RolloutStats struct {
	Started, Promoted, RolledBack, Aborted int64
	ShadowMatches, ShadowMismatches        int64
	// Active lists in-flight rollouts as "model: canary vs prior".
	Active []string
	// Quarantined lists quarantined versions as "model:version".
	Quarantined []string
}

// rolloutOutcome increments both the internal counter and the
// godisc_fleet_rollouts_total{outcome} metric. Caller holds f.mu.
func (f *Fleet) rolloutOutcome(outcome string, n *int64) {
	*n++
	f.reg.Counter("godisc_fleet_rollouts_total", obs.L("outcome", outcome)).Inc()
}

// setHealthGauge publishes mv's lattice state on
// godisc_fleet_version_health{model,version}. Caller holds f.mu.
func (f *Fleet) setHealthGauge(mv *modelVersion) {
	f.reg.Gauge("godisc_fleet_version_health",
		obs.L("model", mv.model), obs.L("version", mv.version)).Set(healthValue(mv.health.state))
}

// splitEvery converts a traffic fraction to a deterministic counter
// period: route every Nth request, N = round(1/fraction).
func splitEvery(fraction float64) uint64 {
	n := uint64(1/fraction + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// startRollout begins canarying `canary` against the current default.
// Caller holds f.mu; the canary's state flips to CANARY so the index and
// readiness surfaces show the transition. An already-running rollout for
// the model is aborted — its canary rejoins the version set as a plain
// READY non-default version.
func (f *Fleet) startRollout(fm *fleetModel, canary string) {
	if ro := f.rollouts[fm.name]; ro != nil {
		if old := fm.versions[ro.canary]; old != nil && old.state == StateCanary {
			old.state = StateReady
		}
		delete(f.rollouts, fm.name)
		f.rolloutOutcome("aborted", &f.roAborted)
	}
	mv := fm.versions[canary]
	mv.state = StateCanary
	f.rollouts[fm.name] = &rollout{
		model:  fm.name,
		canary: canary,
		prior:  fm.defaultVersion,
		every:  splitEvery(f.cfg.Rollout.CanaryFraction),
	}
	f.rolloutOutcome("started", &f.roStarted)
}

// promote moves the canary to the default pin. Caller holds f.mu.
func (f *Fleet) promote(fm *fleetModel, ro *rollout) {
	if mv := fm.versions[ro.canary]; mv != nil {
		mv.state = StateReady
		fm.defaultVersion = ro.canary
	}
	delete(f.rollouts, fm.name)
	f.rolloutOutcome("promoted", &f.roPromoted)
}

// rollback quarantines the canary and keeps the default pin on the prior
// version. Caller holds f.mu.
func (f *Fleet) rollback(fm *fleetModel, ro *rollout, cause string) {
	if mv := fm.versions[ro.canary]; mv != nil {
		mv.state = StateQuarantined
		mv.reason = cause
		mv.health.quarantine(time.Now())
		f.setHealthGauge(mv)
	}
	delete(f.rollouts, fm.name)
	f.rolloutOutcome("rolledback", &f.roRolledBack)
}

// onOutcome is the serve-layer per-request hook: it attributes the
// outcome to its model version, feeds the health EWMA, and drives the
// active rollout's promote/rollback decision. With fallback enabled a
// broken canary's engine failures surface to clients as slow 200s — this
// hook is where those failures stay visible (Fallback/Hung/Breaker*).
func (f *Fleet) onOutcome(ev serve.OutcomeEvent) {
	model, version, ok := strings.Cut(ev.Model, ":")
	if !ok {
		return
	}
	// A fallback served only because the engine is still compiling in the
	// background is not a failure; every other fallback means the engine
	// was abandoned.
	failed := ev.Hung || ev.BreakerOpened || ev.BreakerShorted ||
		(ev.Fallback && !ev.Compiling) || healthRelevant(ev.Err)
	if !failed && ev.Err != nil {
		return // load shedding / client error / context outcome: not health
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	fm := f.models[model]
	if fm == nil {
		return
	}
	mv := fm.versions[version]
	if mv == nil {
		return
	}
	prev := mv.health.state
	mv.health.observe(failed)
	if mv.health.state != prev {
		f.setHealthGauge(mv)
	}

	ro := f.rollouts[model]
	if ro == nil || ro.canary != version || mv.state != StateCanary {
		return
	}
	hard := ev.Hung || ev.BreakerOpened || ev.BreakerShorted
	switch {
	case hard:
		f.rollback(fm, ro, "rollout regression: "+hardCause(ev))
	case mv.health.unhealthy():
		f.rollback(fm, ro, "rollout regression: error-rate EWMA over threshold")
	case !failed && !f.cfg.Rollout.Shadow:
		// In shadow mode a success only counts once its outputs proved
		// bit-identical to the stable version's (shadowResult) — a
		// wrong-answer canary must never out-race its first mismatch.
		f.creditCanary(fm, ro)
	}
}

// creditCanary counts one successful canary request and promotes once
// the gate is met. Caller holds f.mu.
func (f *Fleet) creditCanary(fm *fleetModel, ro *rollout) {
	ro.served++
	mv := fm.versions[ro.canary]
	if ro.served >= f.cfg.Rollout.PromoteAfter && mv != nil &&
		!mv.health.unhealthy() && mv.health.state == HealthHealthy {
		f.promote(fm, ro)
	}
}

// hardCause names the hard-regression signal for the quarantine reason.
func hardCause(ev serve.OutcomeEvent) string {
	switch {
	case ev.Hung:
		return "watchdog cancel"
	case ev.BreakerOpened:
		return "breaker opened"
	default:
		return "breaker open"
	}
}

// shadowResult records one shadow comparison; a mismatch is a hard
// regression of the active rollout.
func (f *Fleet) shadowResult(model, version string, match bool) {
	result := "mismatch"
	if match {
		result = "match"
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.reg.Counter("godisc_fleet_shadow_total", obs.L("result", result)).Inc()
	if match {
		f.shadowMatch++
	} else {
		f.shadowMismatch++
	}
	fm := f.models[model]
	ro := f.rollouts[model]
	if fm == nil || ro == nil || ro.canary != version {
		return
	}
	mv := fm.versions[version]
	if mv == nil || mv.state != StateCanary {
		return
	}
	if !match {
		f.rollback(fm, ro, "rollout regression: shadow output mismatch")
		return
	}
	f.creditCanary(fm, ro)
}

// RolloutStats snapshots the controller for the discserve report line.
func (f *Fleet) RolloutStats() RolloutStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := RolloutStats{
		Started: f.roStarted, Promoted: f.roPromoted,
		RolledBack: f.roRolledBack, Aborted: f.roAborted,
		ShadowMatches: f.shadowMatch, ShadowMismatches: f.shadowMismatch,
	}
	for _, ro := range f.rollouts {
		st.Active = append(st.Active, ro.model+": "+ro.canary+" vs "+ro.prior)
	}
	for _, fm := range f.models {
		for _, mv := range fm.versions {
			if mv.state == StateQuarantined {
				st.Quarantined = append(st.Quarantined, mv.regName)
			}
		}
	}
	return st
}
