package fleet

import (
	"context"
	"errors"
	"net/http"

	"godisc/internal/discerr"
)

// httpError is a fleet-layer error with an explicit HTTP status: unknown
// models/versions, malformed bodies, bad headers. StatusFor honours it
// before the sentinel taxonomy.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

// sentinelStatus maps every discerr sentinel to the HTTP status the v2
// front-end answers with. The list is the complete taxonomy: the
// conformance suite cross-checks it against discerr.Sentinels(), so a new
// sentinel fails the build of that test until a row is added here.
//
//   - 400: the caller's request is broken (shapes, dtypes) — retrying the
//     same bytes can never succeed.
//   - 429: the server shed load (queue, quota) — retry with backoff.
//   - 503: the server is temporarily unable (budget, quarantine, closing,
//     transient faults) — retry later, possibly elsewhere.
//   - 504: the request ran out of time (infeasible deadline, watchdog).
//   - 500: the engine itself failed (compile, kernel panic).
//
// Every 429 and 503 row is a retry-with-backoff outcome, so fail()
// stamps those responses with a Retry-After header.
var sentinelStatus = []struct {
	name string
	err  error
	code int
}{
	{"ErrShapeMismatch", discerr.ErrShapeMismatch, http.StatusBadRequest},
	{"ErrQueueFull", discerr.ErrQueueFull, http.StatusTooManyRequests},
	{"ErrCompileFailed", discerr.ErrCompileFailed, http.StatusInternalServerError},
	{"ErrServerClosed", discerr.ErrServerClosed, http.StatusServiceUnavailable},
	{"ErrKernelPanic", discerr.ErrKernelPanic, http.StatusInternalServerError},
	{"ErrEngineQuarantined", discerr.ErrEngineQuarantined, http.StatusServiceUnavailable},
	{"ErrTransient", discerr.ErrTransient, http.StatusServiceUnavailable},
	{"ErrUnsupported", discerr.ErrUnsupported, http.StatusBadRequest},
	{"ErrMemoryBudget", discerr.ErrMemoryBudget, http.StatusServiceUnavailable},
	{"ErrDeadlineInfeasible", discerr.ErrDeadlineInfeasible, http.StatusGatewayTimeout},
	{"ErrQuotaExceeded", discerr.ErrQuotaExceeded, http.StatusTooManyRequests},
	{"ErrHungRequest", discerr.ErrHungRequest, http.StatusGatewayTimeout},
	{"ErrVersionQuarantined", discerr.ErrVersionQuarantined, http.StatusServiceUnavailable},
	{"ErrRolloutAborted", discerr.ErrRolloutAborted, http.StatusServiceUnavailable},
}

// retryAfterSeconds is the backoff hint stamped on every 429/503
// response. Shed load and temporary unavailability both clear on the
// order of a second in this runtime (queue drain, breaker cooldown,
// probe window), so a single static hint is honest.
const retryAfterSeconds = "1"

// SentinelStatuses returns the sentinel-name → HTTP-status table the
// front-end maps errors through. The conformance tests assert it covers
// discerr.Sentinels() exactly.
func SentinelStatuses() map[string]int {
	m := make(map[string]int, len(sentinelStatus))
	for _, s := range sentinelStatus {
		m[s.name] = s.code
	}
	return m
}

// StatusFor translates an error from the serving stack into the HTTP
// status of the v2 response. Precedence: explicit fleet-layer statuses,
// then body-size rejection, then the sentinel taxonomy (a governor
// timeout wraps both ErrMemoryBudget and context.DeadlineExceeded — the
// sentinel is the more specific fact), then bare context outcomes, then
// 500.
func StatusFor(err error) int {
	if err == nil {
		return http.StatusOK
	}
	var he *httpError
	if errors.As(err, &he) {
		return he.code
	}
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	for _, s := range sentinelStatus {
		if errors.Is(err, s.err) {
			return s.code
		}
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	if errors.Is(err, context.Canceled) {
		// The client went away; 499 is the de-facto (nginx) status for
		// "client closed request" — never observed by the client itself.
		return 499
	}
	return http.StatusInternalServerError
}
