package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"godisc/internal/graph"
	"godisc/internal/serve"
	"godisc/internal/servetest"
	"godisc/internal/tensor"
)

// saturationDuration is ~1s in the plain test gate; `make soak` stretches
// it via GODISC_SOAK (same env the serve soak honours).
func saturationDuration(t *testing.T) time.Duration {
	if v := os.Getenv("GODISC_SOAK"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("GODISC_SOAK: %v", err)
		}
		return d
	}
	return time.Second
}

// The saturation fleet is heavier than the conformance fixture: wide
// enough matmuls that an engine run takes real time, so the admission
// queue genuinely fills and sheds under closed-loop load.
type satSpec struct {
	name string
	in   int
	seed uint64
}

func satSpecs() []satSpec {
	return []satSpec{{"ha", 64, 11}, {"hb", 64, 12}, {"hc", 64, 13}}
}

func satGraph(name, version string) *graph.Graph {
	for _, s := range satSpecs() {
		if s.name != name {
			continue
		}
		switch version {
		case "1":
			return buildDense(s.name, s.seed, s.in, 128, 8)
		case "2":
			return buildDense(s.name, s.seed+100, s.in, 192, 8)
		}
	}
	return nil
}

func satVersions() [][2]string {
	var out [][2]string
	for _, s := range satSpecs() {
		out = append(out, [2]string{s.name, "1"}, [2]string{s.name, "2"})
	}
	return out
}

func writeSatRepo(t testing.TB, dir string) {
	t.Helper()
	for _, s := range satSpecs() {
		for _, v := range []string{"1", "2"} {
			d := filepath.Join(dir, s.name, v)
			if err := os.MkdirAll(d, 0o755); err != nil {
				t.Fatal(err)
			}
			text := graph.WriteText(satGraph(s.name, v))
			if err := os.WriteFile(filepath.Join(d, GraphFileName), []byte(text), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestSaturationFleetHTTP is the fleet-scale acceptance test: a 3-model ×
// 2-version fleet behind real HTTP, more concurrent clients than
// execution slots, all three priorities, and a governor budget that holds
// only ~2 of the 6 engines — so the whole run is eviction/reload churn.
// Invariants over the full run:
//
//   - no response is a 5xx: eviction and reload are invisible to
//     clients; overload surfaces only as 429 (shed) — never as a crash,
//     race or budget error;
//   - every 200 body is bit-identical to a direct serve.Server.Infer of
//     the same model/version/input on an identically built backend;
//   - the interactive error rate is strictly below best-effort's: the
//     admission queue sheds lowest-priority waiters first;
//   - the compiler never runs after warmup (churn reloads persisted
//     engines) and the ledger never exceeds the budget.
func TestSaturationFleetHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation run skipped in -short")
	}
	repo := t.TempDir()
	writeSatRepo(t, repo)
	var maxOne int64
	for _, mv := range satVersions() {
		if b := constBytes(satGraph(mv[0], mv[1])); b > maxOne {
			maxOne = b
		}
	}
	fx := newFixture(t, fixtureOpts{
		budget:        maxOne * 2,
		cacheDir:      t.TempDir(),
		repo:          repo,
		maxConcurrent: 1,
		queueDepth:    1,
		// Engine runs must overlap for the admission queue to fill; on a
		// single-CPU host pure-CPU runs serialize in the scheduler, so
		// inject yield points (latency-only; outputs unchanged).
		kernelLatency: 200 * time.Microsecond,
	})
	warmCompiles := atomic.LoadInt32(fx.compiles)

	// Reference backend: same graphs, no HTTP, no budget. Outputs for
	// every (model, version, batch) triple the clients will send, computed
	// once up front; request bodies likewise.
	var refCompiles int32
	ref := serve.New(serve.Config{MaxConcurrent: 2}, testCompile(&refCompiles))
	defer servetest.Drain(t, ref)
	batches := []int{8, 16, 32}
	type key struct {
		model, version string
		batch          int
	}
	want := map[key][]float32{}
	bodies := map[key][]byte{}
	for _, mv := range satVersions() {
		name, version := mv[0], mv[1]
		if err := ref.Register(name+":"+version, func() *graph.Graph {
			return satGraph(name, version)
		}); err != nil {
			t.Fatal(err)
		}
		for _, b := range batches {
			data := randInput(uint64(b)*31+7, b, 64)
			resp, err := ref.Infer(context.Background(), &serve.Request{
				Model:  name + ":" + version,
				Inputs: []*tensor.Tensor{tensor.FromF32(append([]float32(nil), data...), b, 64)},
			})
			if err != nil {
				t.Fatalf("reference %s:%s batch %d: %v", name, version, b, err)
			}
			k := key{name, version, b}
			want[k] = append([]float32(nil), resp.Outputs[0].F32()...)
			bodies[k] = f32Request(t, []int64{int64(b), 64}, data)
		}
	}

	const clients = 24
	dur := saturationDuration(t)
	deadline := time.Now().Add(dur)
	prios := []string{"interactive", "batch", "best-effort"}
	var (
		total, errs [3]int64 // per-priority request / non-200 counts
		fiveXX      int64
		mismatches  int64
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) * 7919))
			pi := c % 3
			client := &http.Client{Timeout: 30 * time.Second}
			for time.Now().Before(deadline) {
				// Skew traffic: most requests hit one hot version (resident
				// fast path → admission pressure), the rest roam the fleet
				// (residency churn under the tight budget).
				mv := satVersions()[rng.Intn(6)]
				if rng.Float64() < 0.75 {
					mv = [2]string{"ha", "2"}
				}
				k := key{mv[0], mv[1], batches[rng.Intn(len(batches))]}
				req, err := http.NewRequest(http.MethodPost,
					fmt.Sprintf("%s/v2/models/%s/versions/%s/infer", fx.ts.URL, k.model, k.version),
					bytes.NewReader(bodies[k]))
				if err != nil {
					t.Error(err)
					return
				}
				req.Header.Set("X-Godisc-Priority", prios[pi])
				resp, err := client.Do(req)
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				payload, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				atomic.AddInt64(&total[pi], 1)
				if resp.StatusCode != http.StatusOK {
					atomic.AddInt64(&errs[pi], 1)
					if resp.StatusCode >= 500 {
						atomic.AddInt64(&fiveXX, 1)
						t.Errorf("client %d: 5xx %d for %v: %.200s", c, resp.StatusCode, k, payload)
					}
					continue
				}
				var out InferResponse
				if err := json.Unmarshal(payload, &out); err != nil {
					t.Errorf("client %d: bad 200 body: %v", c, err)
					continue
				}
				var got []float32
				if err := json.Unmarshal(out.Outputs[0].Data, &got); err != nil {
					t.Errorf("client %d: bad output data: %v", c, err)
					continue
				}
				ref32 := want[k]
				if len(got) != len(ref32) {
					atomic.AddInt64(&mismatches, 1)
					continue
				}
				for i := range got {
					if math.Float32bits(got[i]) != math.Float32bits(ref32[i]) {
						atomic.AddInt64(&mismatches, 1)
						break
					}
				}
			}
		}(c)
	}
	wg.Wait()

	if fiveXX != 0 {
		t.Fatalf("%d 5xx responses under eviction churn", fiveXX)
	}
	if mismatches != 0 {
		t.Fatalf("%d responses diverged from the direct serve path", mismatches)
	}
	if n := atomic.LoadInt32(fx.compiles); n != warmCompiles {
		t.Fatalf("saturation must never recompile (persisted engines reload): %d → %d", warmCompiles, n)
	}
	gst := fx.gov.Stats()
	if gst.HighWaterBytes > fx.gov.Budget() {
		t.Fatalf("ledger exceeded budget: %+v", gst)
	}
	if fx.f.evictionCounter("lru").Value() == 0 {
		t.Fatal("the budget must have forced eviction churn")
	}

	sum := total[0] + total[1] + total[2]
	if sum < int64(clients) {
		t.Fatalf("run too short to mean anything: %d requests", sum)
	}
	t.Logf("requests=%v errors=%v evictions=%d reloads=%d",
		total, errs, fx.f.evictionCounter("lru").Value(), fx.srv.Stats().EngineLoads)

	// Priority ordering: best-effort must have been shed, and shed harder
	// than interactive (strict, as the admission queue displaces
	// lowest-priority waiters first).
	beRate := float64(errs[2]) / float64(max64(total[2], 1))
	intRate := float64(errs[0]) / float64(max64(total[0], 1))
	if errs[2] == 0 {
		t.Fatal("saturation must shed some best-effort traffic; widen the load if this fires")
	}
	if intRate >= beRate {
		t.Fatalf("interactive error rate %.4f must be strictly below best-effort %.4f (errors %v of %v)",
			intRate, beRate, errs, total)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
