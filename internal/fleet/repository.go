// The model repository: a directory of versioned model definitions that
// the fleet loads into its serve.Server, charges against the memory
// governor, and LRU-evicts under pressure.
//
// Layout:
//
//	<repo>/<model>/<version>/model.graph   textual graph (graph.WriteText)
//	<repo>/<model>/config.json             optional {"default_version": "2"}
//
// Versions are directories; when every version name is numeric the
// default is the highest number, otherwise the lexically last. Each
// loaded version registers with the serve layer as "<model>:<version>"
// (its builder re-parses the stored text, so every compile sees a fresh
// graph) and its resident footprint — the constant/weight bytes the
// compiled engine holds — is reserved on the governor ledger for as long
// as the engine stays in memory.
//
// Eviction: when a reservation does not fit, the fleet evicts the least
// recently used idle engine — fleet-idle (no in-flight HTTP request on
// the version) AND run-idle (the engine-cache entry is unpinned; serve
// pins entries for the duration of every run) — releasing exactly the
// bytes it reserved. An evicted version stays READY: the next request
// re-charges the ledger and the serve layer reloads the engine from the
// persistent engine cache (a decode, not a compilation).
package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"godisc/internal/discerr"
	"godisc/internal/graph"
	"godisc/internal/symshape"
	"godisc/internal/tensor"
)

// Lifecycle states of a loaded model version. CANARY and QUARANTINED are
// the rollout controller's states (rollout.go): a canary serves a traffic
// fraction while its health is judged; a quarantined version sheds
// explicit requests (discerr.ErrVersionQuarantined) except for half-open
// health probes.
const (
	StateReady       = "READY"
	StateFailed      = "FAILED"
	StateUnloading   = "UNLOADING"
	StateCanary      = "CANARY"
	StateQuarantined = "QUARANTINED"
)

// GraphFileName is the file a model version directory must contain.
const GraphFileName = "model.graph"

// modelVersion is one loaded (model, version): its registration in the
// serve layer plus the fleet-side residency accounting.
type modelVersion struct {
	model, version string
	regName        string // serve-layer model name: "<model>:<version>"
	sig            string // symbolic signature (engine-cache key suffix)
	bytes          int64  // resident footprint charged while the engine lives
	meta           ModelMeta

	// loadMu serializes residency transitions so concurrent requests to
	// an evicted version charge the ledger exactly once.
	loadMu chMutex

	// Under Fleet.mu:
	state    string
	reason   string
	resident bool
	release  func() // governor release for bytes; set iff resident
	active   int    // in-flight fleet requests on this version
	lastUsed time.Time
	// health is the version's three-state health lattice (health.go),
	// fed by the serve layer's outcome hook.
	health *healthTracker
}

// chMutex is a channel-based mutex so residency loads can abandon the
// wait when the request context dies instead of piling up behind a slow
// governor reservation.
type chMutex chan struct{}

func newChMutex() chMutex { return make(chan struct{}, 1) }

func (m chMutex) lock(ctx context.Context) error {
	select {
	case m <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (m chMutex) unlock() { <-m }

// fleetModel groups the versions of one model name.
type fleetModel struct {
	name           string
	defaultVersion string
	versions       map[string]*modelVersion
}

// repoConfig is the optional per-model config.json.
type repoConfig struct {
	DefaultVersion string `json:"default_version"`
}

// validModelName rejects names that would escape the repository directory
// or collide with the "<model>:<version>" registration syntax.
func validModelName(name string) bool {
	if name == "" || name == "." || name == ".." {
		return false
	}
	return !strings.ContainsAny(name, ":/\\")
}

// LoadModel loads (or incrementally extends) a model from the repository
// directory: every version not yet loaded is parsed, registered,
// footprint-charged and warmed. Already-loaded versions are untouched, so
// re-issuing load after dropping a new version directory picks it up
// without disturbing traffic. Any failure unwinds the new versions and
// leaves previously loaded ones serving.
func (f *Fleet) LoadModel(ctx context.Context, name string) error {
	if !validModelName(name) {
		return &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf("fleet: invalid model name %q", name)}
	}
	dir := filepath.Join(f.cfg.Repo, name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return &httpError{code: http.StatusNotFound, msg: fmt.Sprintf("fleet: model %q not in repository: %v", name, err)}
	}
	var versions []string
	for _, e := range entries {
		if !e.IsDir() || !validModelName(e.Name()) {
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, e.Name(), GraphFileName)); err == nil {
			versions = append(versions, e.Name())
		}
	}
	if len(versions) == 0 {
		return &httpError{code: http.StatusNotFound, msg: fmt.Sprintf("fleet: model %q has no versions with %s", name, GraphFileName)}
	}
	sortVersions(versions)
	def := versions[len(versions)-1]
	if raw, err := os.ReadFile(filepath.Join(dir, "config.json")); err == nil {
		var rc repoConfig
		if err := json.Unmarshal(raw, &rc); err != nil {
			return &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf("fleet: model %q: config.json: %v", name, err)}
		}
		if rc.DefaultVersion != "" {
			def = rc.DefaultVersion
		}
	}

	// Parse and validate every new version before touching shared state.
	f.mu.Lock()
	fm := f.models[name]
	var have map[string]bool
	if fm != nil {
		have = make(map[string]bool, len(fm.versions))
		for v := range fm.versions {
			have[v] = true
		}
	}
	f.mu.Unlock()

	var fresh []*modelVersion
	for _, v := range versions {
		if have[v] {
			continue
		}
		mv, err := f.loadVersion(ctx, name, v, filepath.Join(dir, v, GraphFileName))
		if err != nil {
			for _, done := range fresh {
				f.unwindVersion(done)
			}
			return fmt.Errorf("fleet: model %q version %q: %w", name, v, err)
		}
		fresh = append(fresh, mv)
	}

	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		for _, done := range fresh {
			f.unwindVersion(done)
		}
		return &httpError{code: http.StatusServiceUnavailable, msg: "fleet: closed"}
	}
	if fm = f.models[name]; fm == nil {
		fm = &fleetModel{name: name, versions: map[string]*modelVersion{}}
		f.models[name] = fm
	}
	freshSet := make(map[string]bool, len(fresh))
	for _, mv := range fresh {
		fm.versions[mv.version] = mv
		freshSet[mv.version] = true
	}
	// Default-pin policy: without the rollout controller a new default
	// takes the pin immediately. With it, a freshly loaded version that
	// would become the default of an already-serving model must earn the
	// pin through a canary instead — the pin stays on the prior version
	// until the controller promotes. A pin change between existing
	// versions (an operator editing config.json) still applies directly.
	if _, ok := fm.versions[def]; ok && def != fm.defaultVersion {
		switch {
		case !f.cfg.Rollout.Enabled || fm.defaultVersion == "":
			fm.defaultVersion = def
		case freshSet[def]:
			f.startRollout(fm, def)
		case fm.versions[def].state == StateReady:
			fm.defaultVersion = def
		}
		// Versions mid-canary or quarantined never take the pin here: a
		// canary earns it via promote(); a quarantined version stays off
		// the pin no matter how often the watcher re-reads the repo.
	}
	f.setModelsGauge()
	f.mu.Unlock()
	return nil
}

// loadVersion parses, registers, charges and warms one version. On any
// error the version is fully unwound.
func (f *Fleet) loadVersion(ctx context.Context, name, version, path string) (*modelVersion, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, &httpError{code: http.StatusNotFound, msg: err.Error()}
	}
	text := string(raw)
	g, err := graph.ParseText(text)
	if err != nil {
		return nil, &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf("parsing %s: %v", GraphFileName, err)}
	}
	mv := &modelVersion{
		model:    name,
		version:  version,
		regName:  name + ":" + version,
		bytes:    constBytes(g),
		meta:     metaOf(name, g),
		loadMu:   newChMutex(),
		state:    StateReady,
		lastUsed: time.Now(),
		health:   newHealthTracker(f.cfg.Rollout),
	}
	// The builder re-parses the stored text so every invocation returns a
	// fresh graph — the determinism contract serve.Register demands.
	if err := f.srv.Register(mv.regName, func() *graph.Graph {
		g, err := graph.ParseText(text)
		if err != nil {
			return nil
		}
		return g
	}); err != nil {
		return nil, err
	}
	if mv.sig, err = f.srv.ModelSignature(mv.regName); err != nil {
		_ = f.srv.Unregister(mv.regName)
		return nil, err
	}
	if err := f.ensureResident(ctx, mv); err != nil {
		_ = f.srv.Unregister(mv.regName)
		return nil, err
	}
	if err := f.srv.Warm(mv.regName); err != nil {
		f.unwindVersion(mv)
		return nil, err
	}
	return mv, nil
}

// unwindVersion rolls back a version that never became visible (or is
// being unloaded): unregister, drop the engine, release the ledger.
func (f *Fleet) unwindVersion(mv *modelVersion) {
	_ = f.srv.Unregister(mv.regName)
	f.srv.EvictEngine(mv.regName, mv.sig)
	f.mu.Lock()
	if mv.resident {
		mv.resident = false
		rel := mv.release
		mv.release = nil
		f.mu.Unlock()
		rel()
		return
	}
	f.mu.Unlock()
}

// UnloadModel removes every version of a model: new requests 404
// immediately, in-flight ones drain, engines are evicted and their
// footprints released. Waits (bounded by ctx) for in-flight runs.
func (f *Fleet) UnloadModel(ctx context.Context, name string) error {
	f.mu.Lock()
	fm := f.models[name]
	if fm == nil {
		f.mu.Unlock()
		return &httpError{code: http.StatusNotFound, msg: fmt.Sprintf("fleet: model %q is not loaded", name)}
	}
	delete(f.models, name)
	var mvs []*modelVersion
	for _, mv := range fm.versions {
		mv.state = StateUnloading
		mvs = append(mvs, mv)
	}
	f.setModelsGauge()
	f.mu.Unlock()

	for _, mv := range mvs {
		if err := f.retireVersion(ctx, mv, "unload"); err != nil {
			return err
		}
	}
	return nil
}

// retireVersion unregisters one version and spins (bounded by ctx) until
// no fleet request is active and the engine-cache entry is unpinned, then
// evicts and releases the ledger bytes.
func (f *Fleet) retireVersion(ctx context.Context, mv *modelVersion, reason string) error {
	_ = f.srv.Unregister(mv.regName)
	for {
		f.mu.Lock()
		idle := mv.active == 0
		f.mu.Unlock()
		_, pinned := f.srv.EvictEngine(mv.regName, mv.sig)
		if idle && !pinned {
			break
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("fleet: unloading %s: %w", mv.regName, ctx.Err())
		case <-time.After(2 * time.Millisecond):
		}
	}
	f.mu.Lock()
	if mv.resident {
		mv.resident = false
		rel := mv.release
		mv.release = nil
		f.mu.Unlock()
		rel()
	} else {
		f.mu.Unlock()
	}
	f.evictionCounter(reason).Inc()
	return nil
}

// resolve maps (model, version) — version "" meaning the default — to its
// loaded modelVersion.
func (f *Fleet) resolve(model, version string) (*modelVersion, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fm := f.models[model]
	if fm == nil {
		return nil, &httpError{code: http.StatusNotFound, msg: fmt.Sprintf("fleet: model %q is not loaded", model)}
	}
	v := version
	if v == "" {
		v = fm.defaultVersion
	}
	mv := fm.versions[v]
	if mv == nil {
		return nil, &httpError{code: http.StatusNotFound, msg: fmt.Sprintf("fleet: model %q has no version %q", model, v)}
	}
	return mv, nil
}

// acquire marks one in-flight request on mv and guarantees its footprint
// is charged (re-charging after an eviction). The caller must
// releaseActive exactly once.
func (f *Fleet) acquire(ctx context.Context, mv *modelVersion) error {
	return f.acquireFor(ctx, mv, false)
}

// acquireFor is acquire with the rollout controller's admission rules:
// CANARY versions serve traffic like READY ones, and a QUARANTINED
// version is admitted only for a half-open health probe (probe=true, the
// caller already holds the probing slot).
func (f *Fleet) acquireFor(ctx context.Context, mv *modelVersion, probe bool) error {
	f.mu.Lock()
	admissible := mv.state == StateReady || mv.state == StateCanary ||
		(probe && mv.state == StateQuarantined)
	if !admissible {
		state := mv.state
		f.mu.Unlock()
		if state == StateQuarantined {
			return fmt.Errorf("fleet: model %s: %w", mv.regName, discerr.ErrVersionQuarantined)
		}
		return &httpError{code: http.StatusServiceUnavailable, msg: fmt.Sprintf("fleet: model %s is %s", mv.regName, state)}
	}
	mv.active++
	mv.lastUsed = time.Now()
	resident := mv.resident
	f.mu.Unlock()
	if resident {
		return nil
	}
	if err := f.ensureResident(ctx, mv); err != nil {
		f.releaseActive(mv)
		return err
	}
	return nil
}

// releaseActive ends one in-flight request on mv.
func (f *Fleet) releaseActive(mv *modelVersion) {
	f.mu.Lock()
	mv.active--
	mv.lastUsed = time.Now()
	f.mu.Unlock()
}

// ensureResident charges mv's footprint on the governor ledger: an
// immediate reservation when it fits, otherwise LRU-evicting idle engines
// until it does. When nothing is idle right now (every resident engine
// has requests in flight) it keeps polling — in-flight work finishing is
// exactly what creates the next victim — bounded by LoadTimeout, after
// which the request fails as a memory-budget rejection.
func (f *Fleet) ensureResident(ctx context.Context, mv *modelVersion) error {
	ctx, cancel := context.WithTimeout(ctx, f.cfg.LoadTimeout)
	defer cancel()
	if err := mv.loadMu.lock(ctx); err != nil {
		return err
	}
	defer mv.loadMu.unlock()
	f.mu.Lock()
	if mv.resident {
		f.mu.Unlock()
		return nil
	}
	f.mu.Unlock()
	if f.gov == nil || mv.bytes <= 0 {
		f.mu.Lock()
		mv.resident, mv.release = true, func() {}
		f.mu.Unlock()
		return nil
	}
	for {
		if release, ok := f.gov.TryReserve(mv.bytes); ok {
			f.mu.Lock()
			mv.resident, mv.release = true, release
			f.mu.Unlock()
			return nil
		}
		if f.evictOneIdle(mv) {
			continue
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("fleet: model %s footprint %d bytes: %w (%v)",
				mv.regName, mv.bytes, discerr.ErrMemoryBudget, ctx.Err())
		case <-time.After(time.Millisecond):
		}
	}
}

// evictOneIdle evicts the least-recently-used idle resident engine other
// than `keep`, releasing its footprint. An engine is only a victim when
// no fleet request is active on it AND its cache entry is unpinned (no
// run in flight anywhere, HTTP or direct). Returns false when nothing
// could be evicted.
func (f *Fleet) evictOneIdle(keep *modelVersion) bool {
	f.mu.Lock()
	var victims []*modelVersion
	for _, fm := range f.models {
		for _, mv := range fm.versions {
			if mv != keep && mv.resident && mv.active == 0 &&
				(mv.state == StateReady || mv.state == StateCanary) {
				victims = append(victims, mv)
			}
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].lastUsed.Before(victims[j].lastUsed) })
	for _, mv := range victims {
		if _, pinned := f.srv.EvictEngine(mv.regName, mv.sig); pinned {
			continue // a run slipped in; try the next-oldest
		}
		mv.resident = false
		rel := mv.release
		mv.release = nil
		f.mu.Unlock()
		rel()
		f.evictionCounter("lru").Inc()
		return true
	}
	f.mu.Unlock()
	return false
}

// sortVersions orders version names numerically when every name parses
// as an integer, lexically otherwise.
func sortVersions(vs []string) {
	numeric := true
	for _, v := range vs {
		if _, err := strconv.Atoi(v); err != nil {
			numeric = false
			break
		}
	}
	sort.Slice(vs, func(i, j int) bool {
		if numeric {
			a, _ := strconv.Atoi(vs[i])
			b, _ := strconv.Atoi(vs[j])
			return a < b
		}
		return vs[i] < vs[j]
	})
}

// constBytes sums the constant payload bytes of a graph — the resident
// footprint a compiled engine of it holds (weights live in the engine for
// its whole lifetime; activations are charged per run by the exec layer).
func constBytes(g *graph.Graph) int64 {
	var n int64
	for _, nd := range g.Nodes() {
		if nd.Lit != nil {
			n += int64(nd.Lit.Bytes())
		}
	}
	return n
}

// metaOf derives the v2 metadata of a graph: dtypes and shapes of every
// parameter and output, dynamic dims as -1 plus their symbolic facts.
func metaOf(name string, g *graph.Graph) ModelMeta {
	meta := ModelMeta{Name: name, Platform: "godisc"}
	for _, p := range g.Params {
		meta.Inputs = append(meta.Inputs, tensorMeta(p.Name, p.DType, g, p))
	}
	for i, o := range g.Outputs {
		meta.Outputs = append(meta.Outputs, tensorMeta(fmt.Sprintf("output_%d", i), o.DType, g, o))
	}
	return meta
}

func tensorMeta(name string, dt tensor.DType, g *graph.Graph, n *graph.Node) TensorMeta {
	tm := TensorMeta{Name: name, Datatype: datatypeOf(dt)}
	for _, d := range n.Shape {
		desc := g.Ctx.Describe(d)
		if desc.Kind == symshape.KindStatic {
			tm.Shape = append(tm.Shape, desc.Static)
			tm.ShapeSymbolic = append(tm.ShapeSymbolic, strconv.FormatInt(desc.Static, 10))
			continue
		}
		tm.Shape = append(tm.Shape, -1)
		tm.ShapeSymbolic = append(tm.ShapeSymbolic, symDimString(desc, d))
	}
	return tm
}

// symDimString renders one dynamic dimension's declared facts, e.g.
// "batch range(1,64) div(4)".
func symDimString(desc symshape.DimDesc, d symshape.DimID) string {
	var sb strings.Builder
	if desc.Name != "" {
		sb.WriteString(desc.Name)
	} else {
		fmt.Fprintf(&sb, "d%d", d)
	}
	if desc.Lo > 1 || desc.Hi < symshape.Unbounded {
		hi := desc.Hi
		if hi >= symshape.Unbounded {
			hi = -1
		}
		fmt.Fprintf(&sb, " range(%d,%d)", desc.Lo, hi)
	}
	if desc.Divisor > 1 {
		fmt.Fprintf(&sb, " div(%d)", desc.Divisor)
	}
	return sb.String()
}

// Index reports every loaded model version and its state, sorted by
// (model, version) — the repository-index route body and the fleet tests'
// observation point.
func (f *Fleet) Index() []ModelStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []ModelStatus
	for _, fm := range f.models {
		for _, mv := range fm.versions {
			out = append(out, ModelStatus{
				Name: mv.model, Version: mv.version,
				State: mv.state, Reason: mv.reason, Resident: mv.resident,
				Health: mv.health.state,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Version < out[j].Version
	})
	return out
}
