package fleet

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"godisc/internal/graph"
	"godisc/internal/serve"
	"godisc/internal/servetest"
	"godisc/internal/tensor"
)

// allVersions enumerates the fixture fleet: 3 models × 2 versions.
func allVersions() [][2]string {
	var out [][2]string
	for _, s := range fixtureSpecs() {
		out = append(out, [2]string{s.name, "1"}, [2]string{s.name, "2"})
	}
	return out
}

// TestFleetLifecycle drives the full load → serve → unload → reload cycle
// over real HTTP and checks the repository index, the ledger and the
// model gauge at every step.
func TestFleetLifecycle(t *testing.T) {
	fx := newFixture(t, fixtureOpts{budget: 1 << 20})

	idx := fx.f.Index()
	if len(idx) != 6 {
		t.Fatalf("autoload must load 3 models × 2 versions, index: %+v", idx)
	}
	var wantBytes int64
	for _, st := range idx {
		if st.State != StateReady || !st.Resident {
			t.Fatalf("version %s:%s must be READY and resident: %+v", st.Name, st.Version, st)
		}
		wantBytes += fixtureBytes(st.Name, st.Version)
	}
	if got := fx.gov.Stats().ReservedBytes; got != wantBytes {
		t.Fatalf("ledger must carry exactly the loaded footprints: got %d want %d", got, wantBytes)
	}

	// Every version serves over HTTP; the default version is "2" (highest
	// numeric).
	for _, mv := range allVersions() {
		resp := fx.infer(t, mv[0], mv[1], 3, nil)
		if resp.ModelName != mv[0] || resp.ModelVersion != mv[1] {
			t.Fatalf("response identifies %s:%s, want %s:%s",
				resp.ModelName, resp.ModelVersion, mv[0], mv[1])
		}
		if len(resp.Outputs) != 1 || resp.Outputs[0].Datatype != DatatypeFP32 {
			t.Fatalf("bad outputs for %v: %+v", mv, resp.Outputs)
		}
	}
	if resp := fx.infer(t, "alpha", "", 2, nil); resp.ModelVersion != "2" {
		t.Fatalf("default version must be the highest numeric, got %q", resp.ModelVersion)
	}

	// Unload beta: immediate 404, ledger shrinks by exactly beta's bytes,
	// gauge drops to 2 models.
	if code, body := fx.do(t, http.MethodPost, "/v2/repository/models/beta/unload", nil, nil); code != http.StatusOK {
		t.Fatalf("unload beta: %d %s", code, body)
	}
	if code, _ := fx.do(t, http.MethodPost, "/v2/models/beta/infer",
		f32Request(t, []int64{1, 12}, make([]float32, 12)), nil); code != http.StatusNotFound {
		t.Fatalf("unloaded model must 404, got %d", code)
	}
	wantAfter := wantBytes - fixtureBytes("beta", "1") - fixtureBytes("beta", "2")
	if got := fx.gov.Stats().ReservedBytes; got != wantAfter {
		t.Fatalf("unload must release exactly beta's footprint: got %d want %d", got, wantAfter)
	}
	if len(fx.f.Index()) != 4 {
		t.Fatalf("index after unload: %+v", fx.f.Index())
	}

	// Reload over HTTP and serve again.
	if code, body := fx.do(t, http.MethodPost, "/v2/repository/models/beta/load", nil, nil); code != http.StatusOK {
		t.Fatalf("load beta: %d %s", code, body)
	}
	fx.infer(t, "beta", "1", 4, nil)
	if got := fx.gov.Stats().ReservedBytes; got != wantBytes {
		t.Fatalf("reload must re-charge the ledger: got %d want %d", got, wantBytes)
	}
}

// TestFleetEvictionChurn runs the whole fleet under a budget that holds
// only a fraction of it, with a persistent engine cache: every request
// must still succeed (evict-reload churn is invisible to clients), the
// ledger must always carry exactly the resident footprints, evicted
// engines must come back via cache decode — never a recompile — and
// evictions must be counted with reason "lru".
func TestFleetEvictionChurn(t *testing.T) {
	// Budget fits roughly two of the six versions, so every round of
	// requests forces eviction churn.
	var maxOne, total int64
	for _, mv := range allVersions() {
		b := fixtureBytes(mv[0], mv[1])
		total += b
		if b > maxOne {
			maxOne = b
		}
	}
	budget := maxOne * 2
	if budget >= total {
		t.Fatalf("fixture footprints too uniform for churn: budget %d total %d", budget, total)
	}
	fx := newFixture(t, fixtureOpts{budget: budget, cacheDir: t.TempDir()})

	warmCompiles := atomic.LoadInt32(fx.compiles)
	if warmCompiles != 6 {
		t.Fatalf("autoload must compile each version once, got %d", warmCompiles)
	}

	for round := 0; round < 4; round++ {
		for _, mv := range allVersions() {
			fx.infer(t, mv[0], mv[1], 1+round, nil)
		}
	}

	if n := atomic.LoadInt32(fx.compiles); n != warmCompiles {
		t.Fatalf("evicted engines must reload from the cache, not recompile: %d → %d", warmCompiles, n)
	}
	st := fx.srv.Stats()
	if st.EngineLoads == 0 {
		t.Fatalf("churn must have reloaded persisted engines: %+v", st)
	}
	if fx.f.evictionCounter("lru").Value() == 0 {
		t.Fatal("churn must have recorded lru evictions")
	}

	// Ledger invariant: reserved == sum of resident footprints, and under
	// budget.
	var resident int64
	for _, s := range fx.f.Index() {
		if s.Resident {
			resident += fixtureBytes(s.Name, s.Version)
		}
	}
	gst := fx.gov.Stats()
	if gst.ReservedBytes != resident {
		t.Fatalf("ledger %d must equal resident footprints %d", gst.ReservedBytes, resident)
	}
	if gst.ReservedBytes > budget || gst.HighWaterBytes > budget {
		t.Fatalf("budget exceeded: %+v (budget %d)", gst, budget)
	}

	// Shutdown releases everything.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := fx.f.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := fx.gov.Stats().ReservedBytes; got != 0 {
		t.Fatalf("close must release every reservation, %d bytes leaked", got)
	}
}

// TestFleetWarmRestartServesWithoutCompiler rebuilds the whole fleet on a
// fresh serve.Server sharing the persistent engine cache: the second
// fleet must serve every version with zero compiler invocations
// (Stats.Compilations == 0 — the ISSUE acceptance criterion).
func TestFleetWarmRestartServesWithoutCompiler(t *testing.T) {
	cacheDir := t.TempDir()
	repo := t.TempDir()
	writeRepo(t, repo)

	cold := newFixture(t, fixtureOpts{budget: 1 << 20, cacheDir: cacheDir, repo: repo})
	for _, mv := range allVersions() {
		cold.infer(t, mv[0], mv[1], 2, nil)
	}
	if n := atomic.LoadInt32(cold.compiles); n != 6 {
		t.Fatalf("cold fleet must compile each version once, got %d", n)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := cold.f.Close(ctx); err != nil {
		t.Fatal(err)
	}
	servetest.Drain(t, cold.srv)

	warm := newFixture(t, fixtureOpts{budget: 1 << 20, cacheDir: cacheDir, repo: repo})
	for _, mv := range allVersions() {
		resp := warm.infer(t, mv[0], mv[1], 2, nil)
		if hit, _ := resp.Parameters["cache_hit"].(bool); !hit {
			t.Fatalf("warm request to %v must report a cache hit: %+v", mv, resp.Parameters)
		}
	}
	if n := atomic.LoadInt32(warm.compiles); n != 0 {
		t.Fatalf("warm fleet must never invoke the compiler, got %d compilations", n)
	}
	if st := warm.srv.Stats(); st.EngineLoads != 6 {
		t.Fatalf("warm fleet must decode all six engines from disk: %+v", st)
	}
}

// TestFleetHTTPMatchesDirectInfer checks bit-identical parity between the
// HTTP path (JSON round-trip included) and a direct serve.Server.Infer on
// an identically built backend.
func TestFleetHTTPMatchesDirectInfer(t *testing.T) {
	fx := newFixture(t, fixtureOpts{budget: 1 << 20})

	var direct int32
	ref := serve.New(serve.Config{MaxConcurrent: 2}, testCompile(&direct))
	defer servetest.Drain(t, ref)

	for _, mv := range allVersions() {
		name, version := mv[0], mv[1]
		if err := ref.Register(name+":"+version, func() *graph.Graph {
			return fixtureGraph(name, version)
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, mv := range allVersions() {
		for _, batch := range []int{1, 3, 8} {
			width := 0
			for _, s := range fixtureSpecs() {
				if s.name == mv[0] {
					width = s.in
				}
			}
			data := randInput(uint64(batch)*31+7, batch, width)
			resp := fx.infer(t, mv[0], mv[1], batch, nil)
			want, err := ref.Infer(context.Background(), &serve.Request{
				Model:  mv[0] + ":" + mv[1],
				Inputs: []*tensor.Tensor{tensor.FromF32(append([]float32(nil), data...), batch, width)},
			})
			if err != nil {
				t.Fatalf("direct infer %v: %v", mv, err)
			}
			var got []float32
			if err := json.Unmarshal(resp.Outputs[0].Data, &got); err != nil {
				t.Fatal(err)
			}
			ref32 := want.Outputs[0].F32()
			if len(got) != len(ref32) {
				t.Fatalf("%v batch %d: %d vs %d elements", mv, batch, len(got), len(ref32))
			}
			for i := range got {
				if math.Float32bits(got[i]) != math.Float32bits(ref32[i]) {
					t.Fatalf("%v batch %d elem %d: HTTP %x vs direct %x — must be bit-identical",
						mv, batch, i, got[i], ref32[i])
				}
			}
		}
	}
}
