// KServe-style v2 inference protocol types: the JSON wire format of the
// fleet front-end. Decoding is deliberately paranoid — the declared shape
// of a tensor is never trusted for allocation; the data array (bounded by
// the request body, which the HTTP layer caps) is decoded first and the
// shape merely validated against it. FuzzV2InferDecode drives
// DecodeInferRequest directly.
package fleet

import (
	"encoding/json"
	"fmt"
	"math"

	"godisc/internal/discerr"
	"godisc/internal/tensor"
)

// V2 datatype names for the dtypes godisc serves.
const (
	DatatypeFP32  = "FP32"
	DatatypeINT32 = "INT32"
	DatatypeBOOL  = "BOOL"
)

// datatypeOf maps a tensor dtype to its v2 wire name.
func datatypeOf(dt tensor.DType) string {
	switch dt {
	case tensor.F32:
		return DatatypeFP32
	case tensor.I32:
		return DatatypeINT32
	case tensor.Bool:
		return DatatypeBOOL
	}
	return "UNKNOWN"
}

// InferTensor is one named tensor on the wire: a flat row-major data array
// plus its declared shape. Data stays raw until the datatype is known.
type InferTensor struct {
	Name     string          `json:"name"`
	Shape    []int64         `json:"shape"`
	Datatype string          `json:"datatype"`
	Data     json.RawMessage `json:"data,omitempty"`
}

// InferRequest is the body of POST /v2/models/{name}/infer.
type InferRequest struct {
	ID     string        `json:"id,omitempty"`
	Inputs []InferTensor `json:"inputs"`
}

// InferResponse is the success body of an infer call.
type InferResponse struct {
	ModelName    string         `json:"model_name"`
	ModelVersion string         `json:"model_version,omitempty"`
	ID           string         `json:"id,omitempty"`
	Outputs      []InferTensor  `json:"outputs"`
	Parameters   map[string]any `json:"parameters,omitempty"`
}

// TensorMeta describes one model input or output in metadata responses.
// Dynamic dimensions are -1 per the v2 protocol; ShapeSymbolic carries the
// symbolic dimension facts (name, range, divisibility) the signature
// declares — the information a client needs to know which concrete shapes
// one engine serves.
type TensorMeta struct {
	Name          string   `json:"name"`
	Datatype      string   `json:"datatype"`
	Shape         []int64  `json:"shape"`
	ShapeSymbolic []string `json:"shape_symbolic,omitempty"`
}

// ModelMeta is the body of GET /v2/models/{name}[/versions/{v}].
type ModelMeta struct {
	Name     string       `json:"name"`
	Versions []string     `json:"versions,omitempty"`
	Platform string       `json:"platform"`
	Inputs   []TensorMeta `json:"inputs"`
	Outputs  []TensorMeta `json:"outputs"`
}

// ModelStatus is one entry of the repository index: a loaded model
// version and its lifecycle state.
type ModelStatus struct {
	Name    string `json:"name"`
	Version string `json:"version"`
	State   string `json:"state"`
	Reason  string `json:"reason,omitempty"`
	// Resident reports whether the version's engine footprint is
	// currently charged against the memory governor (false after an LRU
	// eviction; the next request re-charges and reloads transparently).
	Resident bool `json:"resident"`
	// Health is the version's health-lattice state (HEALTHY, DEGRADED or
	// QUARANTINED — see health.go).
	Health string `json:"health,omitempty"`
}

// DecodeInferRequest parses and validates a v2 infer body into concrete
// tensors, in input order. It never allocates storage from a declared
// shape: the data array — bounded by the body the HTTP layer already
// capped — is decoded first and the overflow-guarded shape product must
// match its length exactly. Malformed JSON, unknown datatypes and
// shape/data disagreements reject with errors that map to 4xx
// (discerr.ErrShapeMismatch / discerr.ErrUnsupported).
func DecodeInferRequest(body []byte) (*InferRequest, []*tensor.Tensor, error) {
	var req InferRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, nil, &httpError{code: 400, msg: fmt.Sprintf("fleet: malformed request body: %v", err)}
	}
	ins := make([]*tensor.Tensor, len(req.Inputs))
	for i := range req.Inputs {
		t, err := decodeTensor(&req.Inputs[i])
		if err != nil {
			return nil, nil, fmt.Errorf("fleet: input %d (%q): %w", i, req.Inputs[i].Name, err)
		}
		ins[i] = t
	}
	return &req, ins, nil
}

// decodeTensor validates one wire tensor and builds the concrete tensor.
func decodeTensor(in *InferTensor) (*tensor.Tensor, error) {
	elems := int64(1)
	for _, d := range in.Shape {
		if d < 0 {
			return nil, fmt.Errorf("negative dim %d in shape %v: %w", d, in.Shape, discerr.ErrShapeMismatch)
		}
		if d != 0 && elems > math.MaxInt64/d {
			return nil, fmt.Errorf("shape %v overflows: %w", in.Shape, discerr.ErrShapeMismatch)
		}
		elems *= d
	}
	shape := make([]int, len(in.Shape))
	for i, d := range in.Shape {
		shape[i] = int(d)
	}
	check := func(n int) error {
		if int64(n) != elems {
			return fmt.Errorf("shape %v declares %d elements, data carries %d: %w",
				in.Shape, elems, n, discerr.ErrShapeMismatch)
		}
		return nil
	}
	switch in.Datatype {
	case DatatypeFP32:
		var data []float32
		if err := json.Unmarshal(in.Data, &data); err != nil {
			return nil, fmt.Errorf("FP32 data: %v: %w", err, discerr.ErrShapeMismatch)
		}
		if err := check(len(data)); err != nil {
			return nil, err
		}
		return tensor.FromF32(data, shape...), nil
	case DatatypeINT32:
		var data []int32
		if err := json.Unmarshal(in.Data, &data); err != nil {
			return nil, fmt.Errorf("INT32 data: %v: %w", err, discerr.ErrShapeMismatch)
		}
		if err := check(len(data)); err != nil {
			return nil, err
		}
		return tensor.FromI32(data, shape...), nil
	case DatatypeBOOL:
		var data []bool
		if err := json.Unmarshal(in.Data, &data); err != nil {
			return nil, fmt.Errorf("BOOL data: %v: %w", err, discerr.ErrShapeMismatch)
		}
		if err := check(len(data)); err != nil {
			return nil, err
		}
		return tensor.FromBool(data, shape...), nil
	default:
		return nil, fmt.Errorf("datatype %q: %w", in.Datatype, discerr.ErrUnsupported)
	}
}

// encodeTensor renders one output tensor for the wire.
func encodeTensor(name string, t *tensor.Tensor) (InferTensor, error) {
	out := InferTensor{Name: name, Datatype: datatypeOf(t.DType())}
	out.Shape = make([]int64, t.Rank())
	for i := 0; i < t.Rank(); i++ {
		out.Shape[i] = int64(t.Dim(i))
	}
	var payload any
	switch t.DType() {
	case tensor.F32:
		payload = t.F32()
	case tensor.I32:
		payload = t.I32()
	case tensor.Bool:
		payload = t.Bools()
	default:
		return out, fmt.Errorf("fleet: output dtype %v: %w", t.DType(), discerr.ErrUnsupported)
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return out, fmt.Errorf("fleet: encoding output %q: %w", name, err)
	}
	out.Data = raw
	return out, nil
}
