// Package fleet is the multi-model HTTP serving front-end: a KServe-style
// v2 inference protocol (JSON over HTTP) layered on a serve.Server, plus
// a model repository with versioning, load/unload lifecycle and
// LRU eviction of idle engines under a shared memory budget.
//
// Routes:
//
//	GET  /v2/health/live
//	GET  /v2/health/ready
//	GET  /v2/models/{model}                        metadata (all versions)
//	GET  /v2/models/{model}/versions/{version}     metadata (one version)
//	GET  /v2/models/{model}/ready                  per-model readiness
//	GET  /v2/models/{model}/versions/{version}/ready
//	POST /v2/models/{model}/infer                  inference (default version)
//	POST /v2/models/{model}/versions/{version}/infer
//	POST /v2/repository/models/{model}/load
//	POST /v2/repository/models/{model}/unload
//	GET  /v2/repository/index                      loaded versions + states
//	GET  /metrics, /debug/trace                    obs endpoints
//
// Request headers: X-Godisc-Priority (interactive | batch | best-effort)
// and X-Godisc-Deadline-Ms (per-request deadline) thread into the serve
// layer's admission policy. Every request runs under an obs span; the
// serve layer nests its infer span beneath it, so HTTP traces contain the
// full infer → exec tree.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"slices"
	"strconv"
	"sync"
	"time"

	"godisc/internal/discerr"
	"godisc/internal/faultinject"
	"godisc/internal/obs"
	"godisc/internal/ral"
	"godisc/internal/serve"
	"godisc/internal/tensor"
)

// Config parameterizes a Fleet.
type Config struct {
	// Server is the inference backend models register with. Required.
	Server *serve.Server
	// Repo is the model repository directory (see repository.go for the
	// layout). Empty disables load/unload (404 on repository routes).
	Repo string
	// Governor is the byte ledger resident engine footprints are charged
	// against; nil defaults to Server.Governor() (possibly nil — then
	// residency is tracked but nothing is ever evicted for space).
	Governor *ral.Governor
	// Metrics receives the fleet counters/gauges; nil gives the fleet a
	// private registry (still served at /metrics).
	Metrics *obs.Registry
	// Observer opens the per-request HTTP spans; Tracer serves
	// /debug/trace. Both optional and typically the same *obs.Tracer.
	Observer obs.Hook
	Tracer   *obs.Tracer
	// MaxBodyBytes caps infer request bodies (default 32 MiB); oversized
	// bodies answer 413.
	MaxBodyBytes int64
	// LoadTimeout bounds footprint reservations and warm compiles during
	// model load (default 30s).
	LoadTimeout time.Duration
	// WatchInterval, when > 0, polls the repository directory and — with
	// AutoLoad — loads models (and new versions of loaded models) that
	// appear in it.
	WatchInterval time.Duration
	AutoLoad      bool
	// Rollout configures health-gated canary rollouts of new versions
	// (rollout.go). Disabled by default: a new version takes the default
	// pin immediately.
	Rollout RolloutConfig
	// Faults, when non-nil, arms the network-layer fault-injection sites
	// (http-read, http-decode, http-write) on the infer path — the
	// `make chaos` hook for the HTTP front-end. Nil is inert.
	Faults *faultinject.Injector
}

// Fleet is the HTTP front-end plus model repository. Build with New,
// serve with Handler() (or Fleet itself as an http.Handler).
type Fleet struct {
	cfg Config
	srv *serve.Server
	gov *ral.Governor
	reg *obs.Registry
	mux *http.ServeMux

	mu     sync.Mutex
	models map[string]*fleetModel
	closed bool

	// rollouts maps model name → its in-flight canary (rollout.go);
	// the ro* / shadow* counters back RolloutStats.
	rollouts                                       map[string]*rollout
	roStarted, roPromoted, roRolledBack, roAborted int64
	shadowMatch, shadowMismatch                    int64

	watchStop chan struct{}
	watchDone chan struct{}
}

// New builds a Fleet over cfg.Server and — when AutoLoad is set — loads
// every model already present in the repository.
func New(cfg Config) (*Fleet, error) {
	if cfg.Server == nil {
		return nil, fmt.Errorf("fleet: Config.Server is required")
	}
	if cfg.Governor == nil {
		cfg.Governor = cfg.Server.Governor()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	if cfg.LoadTimeout <= 0 {
		cfg.LoadTimeout = 30 * time.Second
	}
	cfg.Rollout = cfg.Rollout.withDefaults()
	f := &Fleet{
		cfg:      cfg,
		srv:      cfg.Server,
		gov:      cfg.Governor,
		reg:      cfg.Metrics,
		models:   map[string]*fleetModel{},
		rollouts: map[string]*rollout{},
	}
	f.setModelsGauge()
	f.buildMux()
	// Per-request outcomes from the serve layer feed the per-version
	// health lattice and the rollout controller's promote/rollback
	// decision (rollout.go).
	f.srv.SetOutcomeHook(f.onOutcome)
	if cfg.AutoLoad && cfg.Repo != "" {
		if err := f.loadAll(context.Background()); err != nil {
			return nil, err
		}
	}
	if cfg.WatchInterval > 0 && cfg.Repo != "" {
		f.watchStop = make(chan struct{})
		f.watchDone = make(chan struct{})
		go f.watch()
	}
	return f, nil
}

// Handler returns the fleet's HTTP handler.
func (f *Fleet) Handler() http.Handler { return f.mux }

// ServeHTTP makes Fleet itself an http.Handler.
func (f *Fleet) ServeHTTP(w http.ResponseWriter, r *http.Request) { f.mux.ServeHTTP(w, r) }

// Close stops the repository watcher and unloads every model, releasing
// all ledger reservations (eviction reason "shutdown"). It does not shut
// down the underlying serve.Server — the caller owns that.
func (f *Fleet) Close(ctx context.Context) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	var mvs []*modelVersion
	for name, fm := range f.models {
		for _, mv := range fm.versions {
			mv.state = StateUnloading
			mvs = append(mvs, mv)
		}
		delete(f.models, name)
	}
	f.setModelsGauge()
	f.mu.Unlock()
	f.srv.SetOutcomeHook(nil)
	if f.watchStop != nil {
		close(f.watchStop)
		<-f.watchDone
	}
	var first error
	for _, mv := range mvs {
		if err := f.retireVersion(ctx, mv, "shutdown"); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// loadAll loads every model directory currently in the repository,
// skipping ones that fail (a broken model must not block the rest).
func (f *Fleet) loadAll(ctx context.Context) error {
	entries, err := os.ReadDir(f.cfg.Repo)
	if err != nil {
		return fmt.Errorf("fleet: reading repository %s: %w", f.cfg.Repo, err)
	}
	for _, e := range entries {
		if !e.IsDir() || !validModelName(e.Name()) {
			continue
		}
		_ = f.LoadModel(ctx, e.Name())
	}
	return nil
}

// watch polls the repository, loading new models and new versions of
// loaded models (LoadModel is incremental and idempotent).
func (f *Fleet) watch() {
	defer close(f.watchDone)
	t := time.NewTicker(f.cfg.WatchInterval)
	defer t.Stop()
	for {
		select {
		case <-f.watchStop:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), f.cfg.LoadTimeout)
			if f.cfg.AutoLoad {
				_ = f.loadAll(ctx)
			} else {
				// Without AutoLoad only already-loaded models are
				// refreshed with new versions.
				f.mu.Lock()
				names := make([]string, 0, len(f.models))
				for n := range f.models {
					names = append(names, n)
				}
				f.mu.Unlock()
				for _, n := range names {
					_ = f.LoadModel(ctx, n)
				}
			}
			cancel()
		}
	}
}

// --- HTTP plumbing ---------------------------------------------------

// statusWriter records the response code for metrics and spans.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (f *Fleet) buildMux() {
	f.mux = http.NewServeMux()
	f.route("GET /v2/health/live", "/v2/health/live", f.handleLive)
	f.route("GET /v2/health/ready", "/v2/health/ready", f.handleReady)
	f.route("GET /v2/models/{model}", "/v2/models/{model}", f.handleMeta)
	f.route("GET /v2/models/{model}/versions/{version}", "/v2/models/{model}/versions/{version}", f.handleMeta)
	f.route("GET /v2/models/{model}/ready", "/v2/models/{model}/ready", f.handleModelReady)
	f.route("GET /v2/models/{model}/versions/{version}/ready", "/v2/models/{model}/versions/{version}/ready", f.handleModelReady)
	f.route("POST /v2/models/{model}/infer", "/v2/models/{model}/infer", f.handleInfer)
	f.route("POST /v2/models/{model}/versions/{version}/infer", "/v2/models/{model}/versions/{version}/infer", f.handleInfer)
	f.route("POST /v2/repository/models/{model}/load", "/v2/repository/models/{model}/load", f.handleLoad)
	f.route("POST /v2/repository/models/{model}/unload", "/v2/repository/models/{model}/unload", f.handleUnload)
	f.route("GET /v2/repository/index", "/v2/repository/index", f.handleIndex)
	omux := obs.Mux(f.reg, f.cfg.Tracer)
	f.mux.Handle("/metrics", omux)
	f.mux.Handle("/debug/trace", omux)
}

// route registers a handler wrapped with the span/metrics envelope. The
// route label is the pattern, not the raw path, so metric cardinality is
// bounded by the route table.
func (f *Fleet) route(pattern, label string, h func(http.ResponseWriter, *http.Request)) {
	f.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		var sp *obs.Span
		if f.cfg.Observer != nil {
			sp = f.cfg.Observer.StartSpan("http",
				obs.A("route", label), obs.A("method", r.Method))
			r = r.WithContext(obs.ContextWithSpan(r.Context(), sp))
		}
		// Deferred so an aborted connection — panic(http.ErrAbortHandler),
		// the http-write fault site's broken pipe — still ends the span
		// and counts the request before the panic reaches net/http.
		defer func() {
			if sp != nil {
				sp.SetAttr("code", strconv.Itoa(sw.code))
				sp.End()
			}
			f.reg.Counter("godisc_http_requests_total",
				obs.L("code", strconv.Itoa(sw.code)), obs.L("route", label)).Inc()
		}()
		h(sw, r)
	})
}

// fail writes the JSON error envelope for err at its mapped status.
// Every 429/503 is a retry-with-backoff outcome (shed load, temporary
// unavailability), so those responses carry a Retry-After hint.
func (f *Fleet) fail(w http.ResponseWriter, err error) {
	code := StatusFor(err)
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", retryAfterSeconds)
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (f *Fleet) evictionCounter(reason string) *obs.Counter {
	return f.reg.Counter("godisc_fleet_evictions_total", obs.L("reason", reason))
}

// setModelsGauge publishes the loaded-model count. Caller holds f.mu.
func (f *Fleet) setModelsGauge() {
	f.reg.Gauge("godisc_fleet_models").Set(float64(len(f.models)))
}

// --- handlers ---------------------------------------------------------

func (f *Fleet) handleLive(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"live": true})
}

func (f *Fleet) handleReady(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	closed := f.closed
	f.mu.Unlock()
	if closed {
		writeJSON(w, http.StatusServiceUnavailable, map[string]bool{"ready": false})
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ready": true})
}

func (f *Fleet) handleModelReady(w http.ResponseWriter, r *http.Request) {
	mv, err := f.resolve(r.PathValue("model"), r.PathValue("version"))
	if err != nil {
		f.fail(w, err)
		return
	}
	f.mu.Lock()
	state, health := mv.state, mv.health.state
	f.mu.Unlock()
	// A canary is serving traffic, so it is ready; a quarantined version
	// sheds everything but probes, so it is not.
	ready := state == StateReady || state == StateCanary
	code := http.StatusOK
	if !ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{"ready": ready, "state": state, "health": health})
}

func (f *Fleet) handleMeta(w http.ResponseWriter, r *http.Request) {
	model, version := r.PathValue("model"), r.PathValue("version")
	mv, err := f.resolve(model, version)
	if err != nil {
		f.fail(w, err)
		return
	}
	meta := mv.meta
	if version == "" {
		// Model-level metadata lists every loaded version.
		f.mu.Lock()
		if fm := f.models[model]; fm != nil {
			for v := range fm.versions {
				meta.Versions = append(meta.Versions, v)
			}
		}
		f.mu.Unlock()
		sortVersions(meta.Versions)
	} else {
		meta.Versions = []string{version}
	}
	writeJSON(w, http.StatusOK, meta)
}

func (f *Fleet) handleIndex(w http.ResponseWriter, r *http.Request) {
	idx := f.Index()
	if idx == nil {
		idx = []ModelStatus{}
	}
	writeJSON(w, http.StatusOK, idx)
}

func (f *Fleet) handleLoad(w http.ResponseWriter, r *http.Request) {
	if f.cfg.Repo == "" {
		f.fail(w, &httpError{code: http.StatusNotFound, msg: "fleet: no model repository configured"})
		return
	}
	name := r.PathValue("model")
	if err := f.LoadModel(r.Context(), name); err != nil {
		f.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"name": name, "state": StateReady})
}

func (f *Fleet) handleUnload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("model")
	if err := f.UnloadModel(r.Context(), name); err != nil {
		f.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"name": name, "state": "UNLOADED"})
}

// parsePriority maps the X-Godisc-Priority header to the serve lattice.
func parsePriority(h string) (serve.Priority, error) {
	switch h {
	case "", "batch":
		return serve.PriorityBatch, nil
	case "interactive":
		return serve.PriorityInteractive, nil
	case "best-effort":
		return serve.PriorityBestEffort, nil
	}
	return 0, &httpError{code: http.StatusBadRequest,
		msg: fmt.Sprintf("fleet: unknown priority %q (want interactive | batch | best-effort)", h)}
}

// inferRoute is one infer request's routing decision (routeInfer).
type inferRoute struct {
	mv *modelVersion
	// stable, in canary-split mode, is the default version a failing
	// canary-routed request is transparently re-served on.
	stable *modelVersion
	// shadow, in shadow mode, is the canary the stable response is
	// mirrored onto for bit-wise comparison.
	shadow *modelVersion
	// probe marks a half-open health probe of a quarantined version; the
	// caller owns the version's single probing slot.
	probe bool
}

// routeInfer resolves (model, version) with the rollout controller's
// routing rules. Explicit versions serve directly — except QUARANTINED
// ones, which shed with discerr.ErrVersionQuarantined unless the probe
// cooldown admits one half-open probe. Default-pin requests stay on the
// stable default, with every Nth routed to (split mode) or mirrored onto
// (shadow mode) an active canary.
func (f *Fleet) routeInfer(model, version string) (inferRoute, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fm := f.models[model]
	if fm == nil {
		return inferRoute{}, &httpError{code: http.StatusNotFound, msg: fmt.Sprintf("fleet: model %q is not loaded", model)}
	}
	if version != "" {
		mv := fm.versions[version]
		if mv == nil {
			return inferRoute{}, &httpError{code: http.StatusNotFound, msg: fmt.Sprintf("fleet: model %q has no version %q", model, version)}
		}
		if mv.state == StateQuarantined {
			if mv.health.allowProbe(time.Now()) {
				return inferRoute{mv: mv, probe: true}, nil
			}
			return inferRoute{}, fmt.Errorf("fleet: model %s: %w", mv.regName, discerr.ErrVersionQuarantined)
		}
		return inferRoute{mv: mv}, nil
	}
	def := fm.versions[fm.defaultVersion]
	if def == nil {
		return inferRoute{}, &httpError{code: http.StatusNotFound, msg: fmt.Sprintf("fleet: model %q has no version %q", model, fm.defaultVersion)}
	}
	ro := f.rollouts[model]
	if ro == nil {
		return inferRoute{mv: def}, nil
	}
	canary := fm.versions[ro.canary]
	if canary == nil || canary.state != StateCanary {
		return inferRoute{mv: def}, nil
	}
	ro.ticker++
	if ro.ticker%ro.every != 0 {
		return inferRoute{mv: def}, nil
	}
	if f.cfg.Rollout.Shadow {
		return inferRoute{mv: def, shadow: canary}, nil
	}
	return inferRoute{mv: canary, stable: def}, nil
}

// probeDone resolves a half-open probe: success brings the version back
// as READY/DEGRADED (healthy traffic walks it to HEALTHY), failure
// restarts the quarantine cooldown.
func (f *Fleet) probeDone(mv *modelVersion, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	mv.health.probeResult(ok, time.Now())
	if ok {
		mv.state = StateReady
		mv.reason = ""
	}
	f.setHealthGauge(mv)
}

// stateOf reads mv's lifecycle state under the fleet lock.
func (f *Fleet) stateOf(mv *modelVersion) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return mv.state
}

// runShadow mirrors a stable response's inputs onto the canary and
// compares the wire encodings bit-wise. The client's response is already
// decided; this only feeds the rollout verdict (shadowResult). A canary
// that was rolled back mid-request simply skips the comparison.
func (f *Fleet) runShadow(ctx context.Context, canary *modelVersion, inputs []*tensor.Tensor, prio serve.Priority, stableOut []InferTensor) {
	if err := f.acquireFor(ctx, canary, false); err != nil {
		return
	}
	resp, err := f.srv.Infer(ctx, &serve.Request{Model: canary.regName, Inputs: inputs, Priority: prio})
	f.releaseActive(canary)
	if err != nil {
		return // the outcome hook already recorded the failure
	}
	match := len(resp.Outputs) == len(stableOut)
	if match {
		for i, t := range resp.Outputs {
			wt, err := encodeTensor(stableOut[i].Name, t)
			if err != nil || !slices.Equal(wt.Shape, stableOut[i].Shape) ||
				!bytes.Equal(wt.Data, stableOut[i].Data) {
				match = false
				break
			}
		}
	}
	f.shadowResult(canary.model, canary.version, match)
}

func (f *Fleet) handleInfer(w http.ResponseWriter, r *http.Request) {
	model, version := r.PathValue("model"), r.PathValue("version")
	prio, err := parsePriority(r.Header.Get("X-Godisc-Priority"))
	if err != nil {
		f.fail(w, err)
		return
	}
	ctx := r.Context()
	if h := r.Header.Get("X-Godisc-Deadline-Ms"); h != "" {
		ms, err := strconv.ParseInt(h, 10, 64)
		if err != nil || ms <= 0 {
			f.fail(w, &httpError{code: http.StatusBadRequest,
				msg: fmt.Sprintf("fleet: bad X-Godisc-Deadline-Ms %q", h)})
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
		defer cancel()
	}
	// Network-layer fault sites (faultinject): a firing http-read probe is
	// a body that never arrived (or, in latency mode, a stalled upload), a
	// firing http-decode probe a payload corrupted in flight. Both happen
	// before any acquire, so — like real hostile clients — they can never
	// leak a governor reservation or count against version health.
	if ferr := f.cfg.Faults.Check(faultinject.SiteHTTPRead); ferr != nil {
		f.fail(w, &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf("fleet: reading body: %v", ferr)})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, f.cfg.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			f.fail(w, err)
			return
		}
		f.fail(w, &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf("fleet: reading body: %v", err)})
		return
	}
	if ferr := f.cfg.Faults.Check(faultinject.SiteHTTPDecode); ferr != nil {
		f.fail(w, &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf("fleet: malformed request body: %v", ferr)})
		return
	}
	req, inputs, err := DecodeInferRequest(body)
	if err != nil {
		f.fail(w, err)
		return
	}
	rt, err := f.routeInfer(model, version)
	if err != nil {
		f.fail(w, err)
		return
	}
	mv := rt.mv
	if err := f.acquireFor(ctx, mv, rt.probe); err != nil {
		if rt.probe {
			f.probeDone(mv, false)
		}
		f.fail(w, err)
		return
	}
	resp, err := f.srv.Infer(ctx, &serve.Request{Model: mv.regName, Inputs: inputs, Priority: prio})
	f.releaseActive(mv)
	if rt.probe {
		f.probeDone(mv, err == nil && (!resp.Fallback || resp.Compiling))
	}
	if err != nil && rt.stable != nil && StatusFor(err) >= 500 {
		// Self-healing: a canary-routed default-pin request whose canary
		// failed server-side is re-served on the stable version — the
		// rollback (driven by the outcome hook) happens independently,
		// and the client never sees a canary 5xx.
		mv = rt.stable
		if aerr := f.acquire(ctx, mv); aerr != nil {
			f.fail(w, aerr)
			return
		}
		resp, err = f.srv.Infer(ctx, &serve.Request{Model: mv.regName, Inputs: inputs, Priority: prio})
		f.releaseActive(mv)
	}
	if err != nil {
		// An explicit-version request whose failure triggered (or raced)
		// its own rollback: the version is quarantined now, so classify
		// the loss as the rollout's, wrapping the underlying cause.
		if version != "" && !rt.probe && f.stateOf(rt.mv) == StateQuarantined {
			err = fmt.Errorf("fleet: model %s rolled back: %w: %w", rt.mv.regName, discerr.ErrRolloutAborted, err)
		}
		f.fail(w, err)
		return
	}
	out := InferResponse{ModelName: mv.model, ModelVersion: mv.version, ID: req.ID}
	for i, t := range resp.Outputs {
		wt, err := encodeTensor(fmt.Sprintf("output_%d", i), t)
		if err != nil {
			f.fail(w, err)
			return
		}
		out.Outputs = append(out.Outputs, wt)
	}
	params := map[string]any{}
	if resp.CacheHit {
		params["cache_hit"] = true
	}
	if resp.Fallback {
		params["fallback"] = true
	}
	if resp.Batched {
		params["batched"] = true
	}
	if len(params) > 0 {
		out.Parameters = params
	}
	if rt.shadow != nil {
		f.runShadow(ctx, rt.shadow, inputs, prio, out.Outputs)
	}
	// The http-write site fires after the response is fully decided: an
	// injected error aborts the connection mid-response (the client sees
	// a broken pipe, never a wrong or partial-but-parseable answer);
	// latency mode models a slow downstream reader.
	if ferr := f.cfg.Faults.Check(faultinject.SiteHTTPWrite); ferr != nil {
		panic(http.ErrAbortHandler)
	}
	writeJSON(w, http.StatusOK, out)
}
