// Package fleet is the multi-model HTTP serving front-end: a KServe-style
// v2 inference protocol (JSON over HTTP) layered on a serve.Server, plus
// a model repository with versioning, load/unload lifecycle and
// LRU eviction of idle engines under a shared memory budget.
//
// Routes:
//
//	GET  /v2/health/live
//	GET  /v2/health/ready
//	GET  /v2/models/{model}                        metadata (all versions)
//	GET  /v2/models/{model}/versions/{version}     metadata (one version)
//	GET  /v2/models/{model}/ready                  per-model readiness
//	GET  /v2/models/{model}/versions/{version}/ready
//	POST /v2/models/{model}/infer                  inference (default version)
//	POST /v2/models/{model}/versions/{version}/infer
//	POST /v2/repository/models/{model}/load
//	POST /v2/repository/models/{model}/unload
//	GET  /v2/repository/index                      loaded versions + states
//	GET  /metrics, /debug/trace                    obs endpoints
//
// Request headers: X-Godisc-Priority (interactive | batch | best-effort)
// and X-Godisc-Deadline-Ms (per-request deadline) thread into the serve
// layer's admission policy. Every request runs under an obs span; the
// serve layer nests its infer span beneath it, so HTTP traces contain the
// full infer → exec tree.
package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"godisc/internal/obs"
	"godisc/internal/ral"
	"godisc/internal/serve"
)

// Config parameterizes a Fleet.
type Config struct {
	// Server is the inference backend models register with. Required.
	Server *serve.Server
	// Repo is the model repository directory (see repository.go for the
	// layout). Empty disables load/unload (404 on repository routes).
	Repo string
	// Governor is the byte ledger resident engine footprints are charged
	// against; nil defaults to Server.Governor() (possibly nil — then
	// residency is tracked but nothing is ever evicted for space).
	Governor *ral.Governor
	// Metrics receives the fleet counters/gauges; nil gives the fleet a
	// private registry (still served at /metrics).
	Metrics *obs.Registry
	// Observer opens the per-request HTTP spans; Tracer serves
	// /debug/trace. Both optional and typically the same *obs.Tracer.
	Observer obs.Hook
	Tracer   *obs.Tracer
	// MaxBodyBytes caps infer request bodies (default 32 MiB); oversized
	// bodies answer 413.
	MaxBodyBytes int64
	// LoadTimeout bounds footprint reservations and warm compiles during
	// model load (default 30s).
	LoadTimeout time.Duration
	// WatchInterval, when > 0, polls the repository directory and — with
	// AutoLoad — loads models (and new versions of loaded models) that
	// appear in it.
	WatchInterval time.Duration
	AutoLoad      bool
}

// Fleet is the HTTP front-end plus model repository. Build with New,
// serve with Handler() (or Fleet itself as an http.Handler).
type Fleet struct {
	cfg Config
	srv *serve.Server
	gov *ral.Governor
	reg *obs.Registry
	mux *http.ServeMux

	mu     sync.Mutex
	models map[string]*fleetModel
	closed bool

	watchStop chan struct{}
	watchDone chan struct{}
}

// New builds a Fleet over cfg.Server and — when AutoLoad is set — loads
// every model already present in the repository.
func New(cfg Config) (*Fleet, error) {
	if cfg.Server == nil {
		return nil, fmt.Errorf("fleet: Config.Server is required")
	}
	if cfg.Governor == nil {
		cfg.Governor = cfg.Server.Governor()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	if cfg.LoadTimeout <= 0 {
		cfg.LoadTimeout = 30 * time.Second
	}
	f := &Fleet{
		cfg:    cfg,
		srv:    cfg.Server,
		gov:    cfg.Governor,
		reg:    cfg.Metrics,
		models: map[string]*fleetModel{},
	}
	f.setModelsGauge()
	f.buildMux()
	if cfg.AutoLoad && cfg.Repo != "" {
		if err := f.loadAll(context.Background()); err != nil {
			return nil, err
		}
	}
	if cfg.WatchInterval > 0 && cfg.Repo != "" {
		f.watchStop = make(chan struct{})
		f.watchDone = make(chan struct{})
		go f.watch()
	}
	return f, nil
}

// Handler returns the fleet's HTTP handler.
func (f *Fleet) Handler() http.Handler { return f.mux }

// ServeHTTP makes Fleet itself an http.Handler.
func (f *Fleet) ServeHTTP(w http.ResponseWriter, r *http.Request) { f.mux.ServeHTTP(w, r) }

// Close stops the repository watcher and unloads every model, releasing
// all ledger reservations (eviction reason "shutdown"). It does not shut
// down the underlying serve.Server — the caller owns that.
func (f *Fleet) Close(ctx context.Context) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	var mvs []*modelVersion
	for name, fm := range f.models {
		for _, mv := range fm.versions {
			mv.state = StateUnloading
			mvs = append(mvs, mv)
		}
		delete(f.models, name)
	}
	f.setModelsGauge()
	f.mu.Unlock()
	if f.watchStop != nil {
		close(f.watchStop)
		<-f.watchDone
	}
	var first error
	for _, mv := range mvs {
		if err := f.retireVersion(ctx, mv, "shutdown"); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// loadAll loads every model directory currently in the repository,
// skipping ones that fail (a broken model must not block the rest).
func (f *Fleet) loadAll(ctx context.Context) error {
	entries, err := os.ReadDir(f.cfg.Repo)
	if err != nil {
		return fmt.Errorf("fleet: reading repository %s: %w", f.cfg.Repo, err)
	}
	for _, e := range entries {
		if !e.IsDir() || !validModelName(e.Name()) {
			continue
		}
		_ = f.LoadModel(ctx, e.Name())
	}
	return nil
}

// watch polls the repository, loading new models and new versions of
// loaded models (LoadModel is incremental and idempotent).
func (f *Fleet) watch() {
	defer close(f.watchDone)
	t := time.NewTicker(f.cfg.WatchInterval)
	defer t.Stop()
	for {
		select {
		case <-f.watchStop:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), f.cfg.LoadTimeout)
			if f.cfg.AutoLoad {
				_ = f.loadAll(ctx)
			} else {
				// Without AutoLoad only already-loaded models are
				// refreshed with new versions.
				f.mu.Lock()
				names := make([]string, 0, len(f.models))
				for n := range f.models {
					names = append(names, n)
				}
				f.mu.Unlock()
				for _, n := range names {
					_ = f.LoadModel(ctx, n)
				}
			}
			cancel()
		}
	}
}

// --- HTTP plumbing ---------------------------------------------------

// statusWriter records the response code for metrics and spans.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (f *Fleet) buildMux() {
	f.mux = http.NewServeMux()
	f.route("GET /v2/health/live", "/v2/health/live", f.handleLive)
	f.route("GET /v2/health/ready", "/v2/health/ready", f.handleReady)
	f.route("GET /v2/models/{model}", "/v2/models/{model}", f.handleMeta)
	f.route("GET /v2/models/{model}/versions/{version}", "/v2/models/{model}/versions/{version}", f.handleMeta)
	f.route("GET /v2/models/{model}/ready", "/v2/models/{model}/ready", f.handleModelReady)
	f.route("GET /v2/models/{model}/versions/{version}/ready", "/v2/models/{model}/versions/{version}/ready", f.handleModelReady)
	f.route("POST /v2/models/{model}/infer", "/v2/models/{model}/infer", f.handleInfer)
	f.route("POST /v2/models/{model}/versions/{version}/infer", "/v2/models/{model}/versions/{version}/infer", f.handleInfer)
	f.route("POST /v2/repository/models/{model}/load", "/v2/repository/models/{model}/load", f.handleLoad)
	f.route("POST /v2/repository/models/{model}/unload", "/v2/repository/models/{model}/unload", f.handleUnload)
	f.route("GET /v2/repository/index", "/v2/repository/index", f.handleIndex)
	omux := obs.Mux(f.reg, f.cfg.Tracer)
	f.mux.Handle("/metrics", omux)
	f.mux.Handle("/debug/trace", omux)
}

// route registers a handler wrapped with the span/metrics envelope. The
// route label is the pattern, not the raw path, so metric cardinality is
// bounded by the route table.
func (f *Fleet) route(pattern, label string, h func(http.ResponseWriter, *http.Request)) {
	f.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		var sp *obs.Span
		if f.cfg.Observer != nil {
			sp = f.cfg.Observer.StartSpan("http",
				obs.A("route", label), obs.A("method", r.Method))
			r = r.WithContext(obs.ContextWithSpan(r.Context(), sp))
		}
		h(sw, r)
		if sp != nil {
			sp.SetAttr("code", strconv.Itoa(sw.code))
			sp.End()
		}
		f.reg.Counter("godisc_http_requests_total",
			obs.L("code", strconv.Itoa(sw.code)), obs.L("route", label)).Inc()
	})
}

// fail writes the JSON error envelope for err at its mapped status.
func (f *Fleet) fail(w http.ResponseWriter, err error) {
	writeJSON(w, StatusFor(err), map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (f *Fleet) evictionCounter(reason string) *obs.Counter {
	return f.reg.Counter("godisc_fleet_evictions_total", obs.L("reason", reason))
}

// setModelsGauge publishes the loaded-model count. Caller holds f.mu.
func (f *Fleet) setModelsGauge() {
	f.reg.Gauge("godisc_fleet_models").Set(float64(len(f.models)))
}

// --- handlers ---------------------------------------------------------

func (f *Fleet) handleLive(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"live": true})
}

func (f *Fleet) handleReady(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	closed := f.closed
	f.mu.Unlock()
	if closed {
		writeJSON(w, http.StatusServiceUnavailable, map[string]bool{"ready": false})
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ready": true})
}

func (f *Fleet) handleModelReady(w http.ResponseWriter, r *http.Request) {
	mv, err := f.resolve(r.PathValue("model"), r.PathValue("version"))
	if err != nil {
		f.fail(w, err)
		return
	}
	f.mu.Lock()
	ready := mv.state == StateReady
	f.mu.Unlock()
	if !ready {
		writeJSON(w, http.StatusServiceUnavailable, map[string]bool{"ready": false})
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ready": true})
}

func (f *Fleet) handleMeta(w http.ResponseWriter, r *http.Request) {
	model, version := r.PathValue("model"), r.PathValue("version")
	mv, err := f.resolve(model, version)
	if err != nil {
		f.fail(w, err)
		return
	}
	meta := mv.meta
	if version == "" {
		// Model-level metadata lists every loaded version.
		f.mu.Lock()
		if fm := f.models[model]; fm != nil {
			for v := range fm.versions {
				meta.Versions = append(meta.Versions, v)
			}
		}
		f.mu.Unlock()
		sortVersions(meta.Versions)
	} else {
		meta.Versions = []string{version}
	}
	writeJSON(w, http.StatusOK, meta)
}

func (f *Fleet) handleIndex(w http.ResponseWriter, r *http.Request) {
	idx := f.Index()
	if idx == nil {
		idx = []ModelStatus{}
	}
	writeJSON(w, http.StatusOK, idx)
}

func (f *Fleet) handleLoad(w http.ResponseWriter, r *http.Request) {
	if f.cfg.Repo == "" {
		f.fail(w, &httpError{code: http.StatusNotFound, msg: "fleet: no model repository configured"})
		return
	}
	name := r.PathValue("model")
	if err := f.LoadModel(r.Context(), name); err != nil {
		f.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"name": name, "state": StateReady})
}

func (f *Fleet) handleUnload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("model")
	if err := f.UnloadModel(r.Context(), name); err != nil {
		f.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"name": name, "state": "UNLOADED"})
}

// parsePriority maps the X-Godisc-Priority header to the serve lattice.
func parsePriority(h string) (serve.Priority, error) {
	switch h {
	case "", "batch":
		return serve.PriorityBatch, nil
	case "interactive":
		return serve.PriorityInteractive, nil
	case "best-effort":
		return serve.PriorityBestEffort, nil
	}
	return 0, &httpError{code: http.StatusBadRequest,
		msg: fmt.Sprintf("fleet: unknown priority %q (want interactive | batch | best-effort)", h)}
}

func (f *Fleet) handleInfer(w http.ResponseWriter, r *http.Request) {
	mv, err := f.resolve(r.PathValue("model"), r.PathValue("version"))
	if err != nil {
		f.fail(w, err)
		return
	}
	prio, err := parsePriority(r.Header.Get("X-Godisc-Priority"))
	if err != nil {
		f.fail(w, err)
		return
	}
	ctx := r.Context()
	if h := r.Header.Get("X-Godisc-Deadline-Ms"); h != "" {
		ms, err := strconv.ParseInt(h, 10, 64)
		if err != nil || ms <= 0 {
			f.fail(w, &httpError{code: http.StatusBadRequest,
				msg: fmt.Sprintf("fleet: bad X-Godisc-Deadline-Ms %q", h)})
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
		defer cancel()
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, f.cfg.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			f.fail(w, err)
			return
		}
		f.fail(w, &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf("fleet: reading body: %v", err)})
		return
	}
	req, inputs, err := DecodeInferRequest(body)
	if err != nil {
		f.fail(w, err)
		return
	}
	if err := f.acquire(ctx, mv); err != nil {
		f.fail(w, err)
		return
	}
	defer f.releaseActive(mv)
	resp, err := f.srv.Infer(ctx, &serve.Request{Model: mv.regName, Inputs: inputs, Priority: prio})
	if err != nil {
		f.fail(w, err)
		return
	}
	out := InferResponse{ModelName: mv.model, ModelVersion: mv.version, ID: req.ID}
	for i, t := range resp.Outputs {
		wt, err := encodeTensor(fmt.Sprintf("output_%d", i), t)
		if err != nil {
			f.fail(w, err)
			return
		}
		out.Outputs = append(out.Outputs, wt)
	}
	params := map[string]any{}
	if resp.CacheHit {
		params["cache_hit"] = true
	}
	if resp.Fallback {
		params["fallback"] = true
	}
	if resp.Batched {
		params["batched"] = true
	}
	if len(params) > 0 {
		out.Parameters = params
	}
	writeJSON(w, http.StatusOK, out)
}
