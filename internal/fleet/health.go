// Per-version health: a three-state lattice driven by an error-rate EWMA
// over the serve layer's per-request outcome events.
//
//	HEALTHY ──(EWMA > MaxErrorRate)──▶ DEGRADED ──(rollback)──▶ QUARANTINED
//	   ▲            │                                  │
//	   └─(EWMA ≤ MaxErrorRate/2)◀──────────────────────┘
//	                 (half-open probe success → DEGRADED)
//
// Only engine-class failures feed the EWMA (see healthRelevant): a
// hostile client's 4xx and the server's own load shedding must never
// count against a model version. Recovery from QUARANTINED reuses the
// serve-layer breaker pattern: after a cooldown one explicit-version
// probe request is admitted (half-open); success re-opens the version as
// DEGRADED, failure restarts the cooldown.
package fleet

import (
	"errors"
	"time"

	"godisc/internal/discerr"
)

// Health lattice values, ordered by severity. The numeric value is what
// the godisc_fleet_version_health gauge exports.
const (
	HealthHealthy     = "HEALTHY"
	HealthDegraded    = "DEGRADED"
	HealthQuarantined = "QUARANTINED"
)

// healthValue maps a lattice state to its gauge value.
func healthValue(h string) float64 {
	switch h {
	case HealthDegraded:
		return 1
	case HealthQuarantined:
		return 2
	}
	return 0
}

// healthTracker is one version's health state machine. All fields are
// guarded by Fleet.mu — the fleet serializes every observation.
type healthTracker struct {
	alpha      float64       // EWMA smoothing factor
	maxRate    float64       // error-rate threshold for degradation
	minSamples int           // observations before the EWMA is judged
	cooldown   time.Duration // quarantine → half-open probe delay

	state    string
	ewma     float64
	samples  int
	openedAt time.Time // when the version was (re-)quarantined
	probing  bool      // a half-open probe is in flight
}

func newHealthTracker(cfg RolloutConfig) *healthTracker {
	return &healthTracker{
		alpha:      cfg.EWMAAlpha,
		maxRate:    cfg.MaxErrorRate,
		minSamples: cfg.MinSamples,
		cooldown:   cfg.ProbeCooldown,
		state:      HealthHealthy,
	}
}

// observe folds one request outcome into the EWMA and walks the
// HEALTHY↔DEGRADED edge (QUARANTINED only moves via quarantine/probe).
// Recovery uses half the degradation threshold as hysteresis so the
// state does not flap around the boundary.
func (h *healthTracker) observe(failed bool) {
	x := 0.0
	if failed {
		x = 1.0
	}
	h.ewma = h.alpha*x + (1-h.alpha)*h.ewma
	h.samples++
	if h.state == HealthQuarantined || h.samples < h.minSamples {
		return
	}
	switch {
	case h.state == HealthHealthy && h.ewma > h.maxRate:
		h.state = HealthDegraded
	case h.state == HealthDegraded && h.ewma <= h.maxRate/2:
		h.state = HealthHealthy
	}
}

// unhealthy reports whether the judged EWMA exceeds the threshold.
func (h *healthTracker) unhealthy() bool {
	return h.samples >= h.minSamples && h.ewma > h.maxRate
}

// quarantine drops the version to QUARANTINED and starts the probe
// cooldown clock.
func (h *healthTracker) quarantine(now time.Time) {
	h.state = HealthQuarantined
	h.openedAt = now
	h.probing = false
}

// allowProbe reports whether a quarantined version may serve one
// half-open probe request now — at most one in flight, only after the
// cooldown (the PR 2 breaker's half-open discipline).
func (h *healthTracker) allowProbe(now time.Time) bool {
	if h.state != HealthQuarantined || h.probing || now.Sub(h.openedAt) < h.cooldown {
		return false
	}
	h.probing = true
	return true
}

// probeResult resolves the in-flight half-open probe: success promotes
// the version to DEGRADED with a fresh EWMA window (healthy traffic
// walks it back to HEALTHY), failure restarts the cooldown.
func (h *healthTracker) probeResult(ok bool, now time.Time) {
	h.probing = false
	if ok {
		h.state = HealthDegraded
		h.ewma = 0
		h.samples = 0
		return
	}
	h.openedAt = now
}

// healthRelevant reports whether err is an engine-class failure — the
// only kind that counts against a model version's health. Client errors
// (shapes, dtypes, malformed bodies) and the server's own load shedding
// (queue, quota, budget, deadline, shutdown) say nothing about the
// version; neither do context outcomes (the caller went away).
func healthRelevant(err error) bool {
	if err == nil {
		return false
	}
	for _, s := range []error{
		discerr.ErrCompileFailed,
		discerr.ErrKernelPanic,
		discerr.ErrHungRequest,
		discerr.ErrEngineQuarantined,
		discerr.ErrTransient,
	} {
		if errors.Is(err, s) {
			return true
		}
	}
	return false
}
