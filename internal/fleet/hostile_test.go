// Hostile-client tests: truncated bodies, mid-body disconnects and
// stalled (slow-loris) connections on the v2 infer path. The contract:
// such requests die as 4xx or connection teardowns, never count against
// any version's health, and never leak a governor reservation — the
// fleet only acquires a version after the body has fully arrived.
package fleet

import (
	"bufio"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// hostileFixture is a governed fixture so reservation leaks are visible
// on the ledger.
func hostileFixture(t *testing.T) *fixture {
	t.Helper()
	var budget int64
	for _, s := range fixtureSpecs() {
		for _, v := range []string{"1", "2"} {
			budget += fixtureBytes(s.name, v)
		}
	}
	return newFixture(t, fixtureOpts{budget: budget * 2})
}

// dialFleet opens a raw TCP connection to the fixture's listener.
func dialFleet(t *testing.T, ts *httptest.Server) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

// assertUnharmed verifies the fleet took no damage from a hostile
// connection: the ledger is back to its pre-attack level, every version
// is still HEALTHY, and a normal request succeeds.
func assertUnharmed(t *testing.T, fx *fixture, reservedBefore int64) {
	t.Helper()
	fx.infer(t, "alpha", "", 2, nil)
	if got := fx.gov.Stats().ReservedBytes; got != reservedBefore {
		t.Fatalf("governor ledger moved: %d reserved, want %d (leaked reservation)", got, reservedBefore)
	}
	for _, st := range fx.f.Index() {
		if st.Health != HealthHealthy {
			t.Fatalf("%s:%s health = %s after hostile client, want HEALTHY", st.Name, st.Version, st.Health)
		}
	}
}

// partialInfer is a valid request prefix: complete headers declaring a
// 5000-byte body, then only a fragment of it.
const partialInfer = "POST /v2/models/alpha/infer HTTP/1.1\r\n" +
	"Host: fleet\r\nContent-Type: application/json\r\nContent-Length: 5000\r\n\r\n" +
	`{"inputs":[{"name":"x","shape":[2,8]`

// TestHostileTruncatedBody: a client that half-closes mid-body (FIN with
// the read side still open) gets a 400, not a hang and not a 5xx.
func TestHostileTruncatedBody(t *testing.T) {
	fx := hostileFixture(t)
	before := fx.gov.Stats().ReservedBytes

	conn := dialFleet(t, fx.ts)
	defer conn.Close()
	if _, err := conn.Write([]byte(partialInfer)); err != nil {
		t.Fatal(err)
	}
	if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatalf("reading response to truncated body: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated body answered %d, want 400", resp.StatusCode)
	}
	assertUnharmed(t, fx, before)
}

// TestHostileMidBodyDisconnect: a client that vanishes mid-body (full
// close) leaves no trace — no health damage, no ledger movement, and the
// next request serves normally.
func TestHostileMidBodyDisconnect(t *testing.T) {
	fx := hostileFixture(t)
	before := fx.gov.Stats().ReservedBytes

	for i := 0; i < 8; i++ {
		conn := dialFleet(t, fx.ts)
		_, _ = conn.Write([]byte(partialInfer))
		conn.Close()
	}
	// Give net/http a beat to notice the dead connections.
	time.Sleep(20 * time.Millisecond)
	assertUnharmed(t, fx, before)
}

// TestHostileStalledRead: with the hardened server timeouts discserve
// configures (ReadHeaderTimeout / ReadTimeout), a slow-loris connection
// — headers that never finish, or a body that never arrives — is torn
// down by the server instead of pinning a goroutine forever.
func TestHostileStalledRead(t *testing.T) {
	fx := hostileFixture(t)
	before := fx.gov.Stats().ReservedBytes

	ts := httptest.NewUnstartedServer(fx.f)
	ts.Config.ReadHeaderTimeout = 100 * time.Millisecond
	ts.Config.ReadTimeout = 300 * time.Millisecond
	ts.Start()
	defer ts.Close()

	// Stalled headers: the server must close the connection on its own.
	hdrConn := dialFleet(t, ts)
	defer hdrConn.Close()
	if _, err := hdrConn.Write([]byte("POST /v2/models/alpha/infer HTTP/1.1\r\nHost: fl")); err != nil {
		t.Fatal(err)
	}
	_ = hdrConn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := hdrConn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server kept a stalled-header connection alive past ReadHeaderTimeout")
	}

	// Stalled body: complete headers, a fragment of the body, then
	// nothing. ReadTimeout must unblock the handler's body read.
	bodyConn := dialFleet(t, ts)
	defer bodyConn.Close()
	if _, err := bodyConn.Write([]byte(partialInfer)); err != nil {
		t.Fatal(err)
	}
	_ = bodyConn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 512)
	if _, err := bodyConn.Read(buf); err == nil {
		// A 400 response is also acceptable — the read error surfaced to
		// the handler, which answered before the connection died.
		if !strings.Contains(string(buf), " 400 ") {
			t.Fatalf("stalled-body connection got unexpected response: %q", buf)
		}
	}

	// The normal listener (no hostile connections) still serves, and
	// nothing leaked.
	assertUnharmed(t, fx, before)
}
