// Rollout controller tests: canary promotion, automatic rollback with
// quarantine, shadow-mode bit-wise comparison, half-open probe recovery,
// and the chaos acceptance run (a broken canary under HTTP + kernel
// faults must be rolled back with zero wrong answers and zero 5xx on the
// stable version).
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"godisc/internal/faultinject"
)

// rolloutRepo builds a single-model repository holding only alpha/1, so
// each test controls exactly when version 2 appears.
func rolloutRepo(t testing.TB) string {
	t.Helper()
	repo := t.TempDir()
	writeVersion(t, repo, "alpha", "1", fixtureGraph("alpha", "1"))
	return repo
}

// loadAlpha re-reads the repository (what the watcher does each tick).
func loadAlpha(t testing.TB, fx *fixture) {
	t.Helper()
	if err := fx.f.LoadModel(context.Background(), "alpha"); err != nil {
		t.Fatalf("LoadModel: %v", err)
	}
}

// alphaStatus finds alpha/version in the repository index.
func alphaStatus(t testing.TB, fx *fixture, version string) ModelStatus {
	t.Helper()
	for _, st := range fx.f.Index() {
		if st.Name == "alpha" && st.Version == version {
			return st
		}
	}
	t.Fatalf("alpha/%s not in index: %+v", version, fx.f.Index())
	return ModelStatus{}
}

// TestRolloutPromotesHealthyCanary: a new version enters CANARY instead
// of taking the default pin, serves its traffic split, and is promoted
// to the default after PromoteAfter clean requests.
func TestRolloutPromotesHealthyCanary(t *testing.T) {
	repo := rolloutRepo(t)
	fx := newFixture(t, fixtureOpts{repo: repo, rollout: RolloutConfig{
		Enabled: true, CanaryFraction: 0.5, PromoteAfter: 4, MinSamples: 2,
	}})
	if got := fx.infer(t, "alpha", "", 3, nil).ModelVersion; got != "1" {
		t.Fatalf("default pin before rollout = %s, want 1", got)
	}

	writeVersion(t, repo, "alpha", "2", fixtureGraph("alpha", "2"))
	loadAlpha(t, fx)
	if st := alphaStatus(t, fx, "2"); st.State != StateCanary {
		t.Fatalf("new version state = %s, want %s", st.State, StateCanary)
	}
	if rs := fx.f.RolloutStats(); rs.Started != 1 || len(rs.Active) != 1 {
		t.Fatalf("rollout must be active: %+v", rs)
	}
	// Re-reading an unchanged repository must not disturb the rollout.
	loadAlpha(t, fx)
	if rs := fx.f.RolloutStats(); rs.Started != 1 || rs.Aborted != 0 {
		t.Fatalf("idempotent reload restarted the rollout: %+v", rs)
	}

	sawCanary, sawStable := false, false
	for i := 0; i < 40 && fx.f.RolloutStats().Promoted == 0; i++ {
		switch fx.infer(t, "alpha", "", 2, nil).ModelVersion {
		case "1":
			sawStable = true
		case "2":
			sawCanary = true
		}
	}
	rs := fx.f.RolloutStats()
	if rs.Promoted != 1 || rs.RolledBack != 0 {
		t.Fatalf("canary must promote: %+v", rs)
	}
	if !sawCanary || !sawStable {
		t.Fatalf("split must serve both versions (canary=%v stable=%v)", sawCanary, sawStable)
	}
	st := alphaStatus(t, fx, "2")
	if st.State != StateReady || st.Health != HealthHealthy {
		t.Fatalf("promoted canary = %s/%s, want READY/HEALTHY", st.State, st.Health)
	}
	for i := 0; i < 4; i++ {
		if got := fx.infer(t, "alpha", "", 2, nil).ModelVersion; got != "2" {
			t.Fatalf("default pin after promotion = %s, want 2", got)
		}
	}
}

// TestRolloutRollsBackBrokenCanary: a canary whose engine fails every
// run is rolled back and quarantined automatically. Clients never see a
// 5xx — the failing requests are served by the interpreter fallback —
// and the default pin stays on the prior version. Explicit requests to
// the quarantined version shed 503 with the quarantine sentinel and a
// Retry-After hint.
func TestRolloutRollsBackBrokenCanary(t *testing.T) {
	repo := rolloutRepo(t)
	fx := newFixture(t, fixtureOpts{
		repo:         repo,
		breakEngines: map[string]bool{"alpha-broken": true},
		rollout: RolloutConfig{
			Enabled: true, CanaryFraction: 0.5, PromoteAfter: 100,
			MinSamples: 2, EWMAAlpha: 0.5, MaxErrorRate: 0.5,
			ProbeCooldown: time.Hour, // no probes in this test
		},
	})
	writeVersion(t, repo, "alpha", "2", buildDense("alpha-broken", 999, 8, 24, 4))
	loadAlpha(t, fx)

	rolledBack := false
	for i := 0; i < 60 && !rolledBack; i++ {
		fx.infer(t, "alpha", "", 2, nil) // fx.infer fails the test on any non-200
		rolledBack = fx.f.RolloutStats().RolledBack == 1
	}
	if !rolledBack {
		t.Fatalf("broken canary never rolled back: %+v", fx.f.RolloutStats())
	}
	st := alphaStatus(t, fx, "2")
	if st.State != StateQuarantined || st.Health != HealthQuarantined || st.Reason == "" {
		t.Fatalf("rolled-back canary = %+v, want QUARANTINED with a reason", st)
	}
	for i := 0; i < 4; i++ {
		if got := fx.infer(t, "alpha", "", 2, nil).ModelVersion; got != "1" {
			t.Fatalf("default pin after rollback = %s, want 1", got)
		}
	}

	// Explicit requests to the quarantined version shed with the sentinel.
	body := f32Request(t, []int64{2, 8}, randInput(7, 2, 8))
	resp, err := http.Post(fx.ts.URL+"/v2/models/alpha/versions/2/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("quarantined version answered %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != retryAfterSeconds {
		t.Fatalf("quarantine shed must carry Retry-After=%s, got %q", retryAfterSeconds, got)
	}
	var env map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(env["error"], "quarantined") {
		t.Fatalf("quarantine error envelope = %q", env["error"])
	}

	// The readiness endpoint reports the quarantined version unready.
	code, payload := fx.do(t, "GET", "/v2/models/alpha/versions/2/ready", nil, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("quarantined readiness = %d, want 503", code)
	}
	var ready struct {
		Ready  bool   `json:"ready"`
		State  string `json:"state"`
		Health string `json:"health"`
	}
	if err := json.Unmarshal(payload, &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Ready || ready.State != StateQuarantined || ready.Health != HealthQuarantined {
		t.Fatalf("quarantined readiness body = %+v", ready)
	}

	// A repository re-read (the watcher) must NOT repin the quarantined
	// highest version.
	loadAlpha(t, fx)
	if got := fx.infer(t, "alpha", "", 2, nil).ModelVersion; got != "1" {
		t.Fatalf("watcher repinned onto quarantined version (got %s)", got)
	}
}

// TestShadowMismatchRollsBack: in shadow mode the canary mirrors stable
// traffic and a single bit-wise output mismatch rolls it back. The
// client always receives the stable version's bytes.
func TestShadowMismatchRollsBack(t *testing.T) {
	repo := rolloutRepo(t)
	fx := newFixture(t, fixtureOpts{repo: repo, rollout: RolloutConfig{
		Enabled: true, Shadow: true, CanaryFraction: 1, PromoteAfter: 3,
		MinSamples: 2, ProbeCooldown: time.Hour,
	}})
	ref := fx.infer(t, "alpha", "", 4, nil)

	// Version 2 has different weights → different outputs → mismatch.
	writeVersion(t, repo, "alpha", "2", fixtureGraph("alpha", "2"))
	loadAlpha(t, fx)
	got := fx.infer(t, "alpha", "", 4, nil)
	if got.ModelVersion != "1" {
		t.Fatalf("shadow-mode client response came from %s, want stable 1", got.ModelVersion)
	}
	if !bytes.Equal(got.Outputs[0].Data, ref.Outputs[0].Data) {
		t.Fatal("shadow-mode client bytes differ from the stable reference")
	}
	rs := fx.f.RolloutStats()
	if rs.ShadowMismatches == 0 || rs.RolledBack != 1 {
		t.Fatalf("mismatch must roll the canary back: %+v", rs)
	}
	if st := alphaStatus(t, fx, "2"); st.State != StateQuarantined {
		t.Fatalf("mismatched canary state = %s, want QUARANTINED", st.State)
	}
}

// TestShadowMatchPromotes: a canary whose outputs are bit-identical to
// the stable version's earns promotion through shadow comparisons alone.
func TestShadowMatchPromotes(t *testing.T) {
	repo := rolloutRepo(t)
	fx := newFixture(t, fixtureOpts{repo: repo, rollout: RolloutConfig{
		Enabled: true, Shadow: true, CanaryFraction: 1, PromoteAfter: 3, MinSamples: 2,
	}})
	// Version 2 stores the same graph as version 1: identical weights,
	// bit-identical outputs.
	writeVersion(t, repo, "alpha", "2", fixtureGraph("alpha", "1"))
	loadAlpha(t, fx)
	for i := 0; i < 10 && fx.f.RolloutStats().Promoted == 0; i++ {
		fx.infer(t, "alpha", "", 2, nil)
	}
	rs := fx.f.RolloutStats()
	if rs.Promoted != 1 || rs.ShadowMatches < int64(3) || rs.ShadowMismatches != 0 {
		t.Fatalf("matching shadow canary must promote: %+v", rs)
	}
	if got := fx.infer(t, "alpha", "", 2, nil).ModelVersion; got != "2" {
		t.Fatalf("default pin after shadow promotion = %s, want 2", got)
	}
}

// TestQuarantineProbeRecovery: after the cooldown a quarantined version
// admits exactly one half-open probe; a successful probe re-opens it as
// READY/DEGRADED and healthy traffic walks it back to HEALTHY.
func TestQuarantineProbeRecovery(t *testing.T) {
	repo := rolloutRepo(t)
	fx := newFixture(t, fixtureOpts{repo: repo, rollout: RolloutConfig{
		Enabled: true, Shadow: true, CanaryFraction: 1, MinSamples: 2,
		ProbeCooldown: 30 * time.Millisecond,
	}})
	// Quarantine a healthy-engine canary via a shadow mismatch (different
	// weights, perfectly working engine).
	writeVersion(t, repo, "alpha", "2", fixtureGraph("alpha", "2"))
	loadAlpha(t, fx)
	fx.infer(t, "alpha", "", 2, nil)
	if st := alphaStatus(t, fx, "2"); st.State != StateQuarantined {
		t.Fatalf("setup: expected quarantine, got %s", st.State)
	}

	// Inside the cooldown every explicit request sheds.
	body := f32Request(t, []int64{2, 8}, randInput(7, 2, 8))
	if code, _ := fx.do(t, "POST", "/v2/models/alpha/versions/2/infer", body, nil); code != 503 {
		t.Fatalf("pre-cooldown request = %d, want 503", code)
	}

	// After the cooldown one probe is admitted; the engine works, so the
	// version comes back READY with DEGRADED health.
	time.Sleep(50 * time.Millisecond)
	if got := fx.infer(t, "alpha", "2", 2, nil); got.ModelVersion != "2" {
		t.Fatalf("probe served by %s, want 2", got.ModelVersion)
	}
	st := alphaStatus(t, fx, "2")
	if st.State != StateReady || st.Health != HealthDegraded {
		t.Fatalf("after probe: %s/%s, want READY/DEGRADED", st.State, st.Health)
	}

	// Healthy traffic walks DEGRADED back to HEALTHY.
	for i := 0; i < 3; i++ {
		fx.infer(t, "alpha", "2", 2, nil)
	}
	if st := alphaStatus(t, fx, "2"); st.Health != HealthHealthy {
		t.Fatalf("health after clean traffic = %s, want HEALTHY", st.Health)
	}
}

// TestNewVersionAbortsActiveRollout: a newer version arriving mid-canary
// aborts the running rollout (the old canary rejoins as a plain READY
// version) and starts a fresh one.
func TestNewVersionAbortsActiveRollout(t *testing.T) {
	repo := rolloutRepo(t)
	fx := newFixture(t, fixtureOpts{repo: repo, rollout: RolloutConfig{
		Enabled: true, CanaryFraction: 0.5, PromoteAfter: 1000,
	}})
	writeVersion(t, repo, "alpha", "2", fixtureGraph("alpha", "2"))
	loadAlpha(t, fx)
	writeVersion(t, repo, "alpha", "3", fixtureGraph("alpha", "2"))
	loadAlpha(t, fx)

	rs := fx.f.RolloutStats()
	if rs.Started != 2 || rs.Aborted != 1 {
		t.Fatalf("second version must abort the first rollout: %+v", rs)
	}
	if st := alphaStatus(t, fx, "2"); st.State != StateReady {
		t.Fatalf("aborted canary state = %s, want READY", st.State)
	}
	if st := alphaStatus(t, fx, "3"); st.State != StateCanary {
		t.Fatalf("new canary state = %s, want CANARY", st.State)
	}
	if got := fx.infer(t, "alpha", "", 2, nil).ModelVersion; got == "3" {
		t.Fatal("default pin moved to the unpromoted canary")
	}
}

// fleetChaosSpec is the default fault mix for the chaos rollout run:
// engine-layer faults (kernel panics, transient allocs) plus the
// network-layer sites. `make chaos` overrides it via GODISC_FAULTS.
const fleetChaosSpec = "kernel-launch:panic:0.15,alloc:transient:0.15," +
	"http-read:transient:0.15,http-decode:transient:0.15,http-write:error:0.1"

func fleetChaosInjector(t *testing.T) *faultinject.Injector {
	t.Helper()
	if os.Getenv("GODISC_FAULTS") != "" {
		inj, err := faultinject.FromEnv()
		if err != nil {
			t.Fatalf("GODISC_FAULTS: %v", err)
		}
		t.Logf("chaos: env spec %q seed %d", os.Getenv("GODISC_FAULTS"), inj.Seed())
		return inj
	}
	inj, err := faultinject.FromSpec(fleetChaosSpec, 11)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// TestChaosRolloutAcceptance is the headline self-healing check: a
// broken canary (wrong weights AND a failing engine) is dropped into the
// repository mid-traffic while kernel faults and network-layer faults
// (torn reads, corrupt payloads, aborted writes) fire. The controller
// must roll the canary back on its own; every 200 the client receives
// must carry the stable version's bit-exact bytes; the stable version
// must never answer 5xx.
func TestChaosRolloutAcceptance(t *testing.T) {
	inj := fleetChaosInjector(t)
	repo := rolloutRepo(t)
	fx := newFixture(t, fixtureOpts{
		repo:         repo,
		faults:       inj,
		breakEngines: map[string]bool{"alpha-broken": true},
		rollout: RolloutConfig{
			Enabled: true, Shadow: true, CanaryFraction: 0.5,
			PromoteAfter: 1000, MinSamples: 2, EWMAAlpha: 0.5,
			MaxErrorRate: 0.5, ProbeCooldown: time.Hour,
		},
	})
	// Chaos specs from the environment may arm compile faults, which can
	// break the fixture's auto-load; insist alpha/1 is serving first.
	for i := 0; ; i++ {
		if err := fx.f.LoadModel(context.Background(), "alpha"); err == nil {
			break
		} else if i == 50 {
			t.Fatalf("alpha never loaded under chaos: %v", err)
		}
	}

	// chaosInfer retries through injected request-layer faults (400s and
	// torn connections) until a 200 arrives; a 5xx is always fatal.
	chaosInfer := func(batch int) *InferResponse {
		body := f32Request(t, []int64{int64(batch), 8}, randInput(uint64(batch)*31+7, batch, 8))
		for i := 0; i < 100; i++ {
			resp, err := http.Post(fx.ts.URL+"/v2/models/alpha/infer", "application/json", bytes.NewReader(body))
			if err != nil {
				continue
			}
			if resp.StatusCode >= 500 {
				resp.Body.Close()
				t.Fatalf("stable version answered %d under chaos", resp.StatusCode)
			}
			if resp.StatusCode != http.StatusOK {
				resp.Body.Close()
				continue
			}
			var out InferResponse
			err = json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close()
			if err != nil {
				t.Fatalf("undecodable 200 body: %v", err)
			}
			return &out
		}
		t.Fatal("no 200 in 100 attempts under chaos")
		return nil
	}

	// Bit-exact references per batch size, before the canary exists.
	const maxBatch = 4
	refs := map[int][]byte{}
	for b := 1; b <= maxBatch; b++ {
		refs[b] = chaosInfer(b).Outputs[0].Data
	}

	// Drop the broken canary mid-traffic.
	writeVersion(t, repo, "alpha", "2", buildDense("alpha-broken", 999, 8, 24, 4))
	for i := 0; ; i++ {
		if err := fx.f.LoadModel(context.Background(), "alpha"); err == nil {
			break
		} else if i == 50 {
			t.Fatalf("canary never loaded under chaos: %v", err)
		}
	}

	var ok200, rejected, aborted int
	for i := 0; i < 120; i++ {
		b := i%maxBatch + 1
		body := f32Request(t, []int64{int64(b), 8}, randInput(uint64(b)*31+7, b, 8))
		resp, err := http.Post(fx.ts.URL+"/v2/models/alpha/infer", "application/json", bytes.NewReader(body))
		if err != nil {
			aborted++ // the http-write site tore the connection down
			continue
		}
		func() {
			defer resp.Body.Close()
			switch {
			case resp.StatusCode == http.StatusOK:
				var out InferResponse
				if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
					t.Fatalf("request %d: undecodable 200 body: %v", i, err)
				}
				if out.ModelVersion != "1" {
					t.Fatalf("request %d: shadow-mode client served by version %s", i, out.ModelVersion)
				}
				if !bytes.Equal(out.Outputs[0].Data, refs[b]) {
					t.Fatalf("request %d: WRONG ANSWER under chaos (batch %d)", i, b)
				}
				ok200++
			case resp.StatusCode == http.StatusBadRequest:
				rejected++ // injected torn read / corrupt payload
			case resp.StatusCode >= 500:
				t.Fatalf("request %d: stable version answered %d under chaos", i, resp.StatusCode)
			default:
				t.Fatalf("request %d: unexpected status %d", i, resp.StatusCode)
			}
		}()
	}
	t.Logf("chaos rollout: %d ok, %d rejected, %d aborted; injector fired %d times %v (seed %d)",
		ok200, rejected, aborted, inj.Total(), inj.Counts(), inj.Seed())
	if ok200 == 0 {
		t.Fatal("chaos run produced no successful requests")
	}

	rs := fx.f.RolloutStats()
	if rs.RolledBack < 1 {
		t.Fatalf("broken canary must be rolled back under chaos: %+v", rs)
	}
	st := alphaStatus(t, fx, "2")
	if st.State != StateQuarantined {
		t.Fatalf("broken canary state = %s, want QUARANTINED", st.State)
	}
	if got := chaosInfer(2); got.ModelVersion != "1" {
		t.Fatalf("default pin after chaos = %s, want 1", got.ModelVersion)
	}
}
