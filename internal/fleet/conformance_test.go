package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"godisc/internal/discerr"
)

// TestV2Conformance is the table-driven protocol suite: every route, every
// rejection class, one table. Each case states the exact status the v2
// front-end must answer with.
func TestV2Conformance(t *testing.T) {
	fx := newFixture(t, fixtureOpts{budget: 1 << 20, maxBody: 4096})

	okBody := f32Request(t, []int64{2, 8}, randInput(1, 2, 8))
	big := f32Request(t, []int64{1, 2048}, make([]float32, 2048)) // > maxBody once serialized

	cases := []struct {
		name   string
		method string
		path   string
		body   []byte
		hdr    map[string]string
		want   int
	}{
		{"live", "GET", "/v2/health/live", nil, nil, 200},
		{"ready", "GET", "/v2/health/ready", nil, nil, 200},
		{"meta model", "GET", "/v2/models/alpha", nil, nil, 200},
		{"meta version", "GET", "/v2/models/alpha/versions/1", nil, nil, 200},
		{"meta unknown model", "GET", "/v2/models/nosuch", nil, nil, 404},
		{"meta unknown version", "GET", "/v2/models/alpha/versions/9", nil, nil, 404},
		{"model ready", "GET", "/v2/models/alpha/ready", nil, nil, 200},
		{"model ready version", "GET", "/v2/models/alpha/versions/2/ready", nil, nil, 200},
		{"model ready unknown", "GET", "/v2/models/nosuch/ready", nil, nil, 404},
		{"index", "GET", "/v2/repository/index", nil, nil, 200},
		{"infer ok", "POST", "/v2/models/alpha/infer", okBody, nil, 200},
		{"infer ok versioned", "POST", "/v2/models/alpha/versions/1/infer", okBody, nil, 200},
		{"infer ok interactive", "POST", "/v2/models/alpha/infer", okBody,
			map[string]string{"X-Godisc-Priority": "interactive"}, 200},
		{"infer ok best-effort deadline", "POST", "/v2/models/alpha/infer", okBody,
			map[string]string{"X-Godisc-Priority": "best-effort", "X-Godisc-Deadline-Ms": "5000"}, 200},
		{"infer unknown model", "POST", "/v2/models/nosuch/infer", okBody, nil, 404},
		{"infer unknown version", "POST", "/v2/models/alpha/versions/9/infer", okBody, nil, 404},
		{"infer malformed json", "POST", "/v2/models/alpha/infer", []byte(`{"inputs":[`), nil, 400},
		{"infer not json", "POST", "/v2/models/alpha/infer", []byte("not json at all"), nil, 400},
		{"infer unknown dtype", "POST", "/v2/models/alpha/infer",
			[]byte(`{"inputs":[{"name":"x","shape":[1,8],"datatype":"FP64","data":[1,2,3,4,5,6,7,8]}]}`), nil, 400},
		{"infer shape/data mismatch", "POST", "/v2/models/alpha/infer",
			[]byte(`{"inputs":[{"name":"x","shape":[2,8],"datatype":"FP32","data":[1,2,3]}]}`), nil, 400},
		{"infer negative dim", "POST", "/v2/models/alpha/infer",
			[]byte(`{"inputs":[{"name":"x","shape":[-1,8],"datatype":"FP32","data":[1]}]}`), nil, 400},
		{"infer overflowing shape", "POST", "/v2/models/alpha/infer",
			[]byte(`{"inputs":[{"name":"x","shape":[4611686018427387904,4611686018427387904],"datatype":"FP32","data":[1]}]}`), nil, 400},
		{"infer shape out of range", "POST", "/v2/models/alpha/infer",
			f32Request(t, []int64{96, 8}, make([]float32, 96*8)), nil, 400}, // B declared range(1,64)
		{"infer wrong rank", "POST", "/v2/models/alpha/infer",
			f32Request(t, []int64{16}, make([]float32, 16)), nil, 400},
		{"infer oversized body", "POST", "/v2/models/alpha/infer", big, nil, 413},
		{"infer bad priority", "POST", "/v2/models/alpha/infer", okBody,
			map[string]string{"X-Godisc-Priority": "urgent"}, 400},
		{"infer bad deadline", "POST", "/v2/models/alpha/infer", okBody,
			map[string]string{"X-Godisc-Deadline-Ms": "soon"}, 400},
		{"infer negative deadline", "POST", "/v2/models/alpha/infer", okBody,
			map[string]string{"X-Godisc-Deadline-Ms": "-5"}, 400},
		{"infer wrong method", "GET", "/v2/models/alpha/infer", nil, nil, 405},
		{"meta wrong method", "POST", "/v2/models/alpha", okBody, nil, 405},
		{"load unknown model", "POST", "/v2/repository/models/nosuch/load", nil, nil, 404},
		{"load traversal name", "POST", "/v2/repository/models/..%2F..%2Fetc/load", nil, nil, 400},
		{"unload unknown model", "POST", "/v2/repository/models/nosuch/unload", nil, nil, 404},
		{"unknown route", "GET", "/v2/bogus", nil, nil, 404},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := fx.do(t, tc.method, tc.path, tc.body, tc.hdr)
			if code != tc.want {
				t.Fatalf("%s %s: status %d want %d (body: %.200s)", tc.method, tc.path, code, tc.want, body)
			}
			// Every error our handlers produce carries the JSON envelope.
			if code >= 400 && code != 405 && code != 404 || code == 404 && strings.HasPrefix(tc.path, "/v2/models") {
				var env map[string]string
				if err := json.Unmarshal(body, &env); err != nil || env["error"] == "" {
					t.Fatalf("error responses must carry {\"error\": ...}: %q (%v)", body, err)
				}
			}
		})
	}
}

// TestV2Metadata checks the metadata bodies in detail: datatypes, -1 for
// the dynamic batch axis, and the symbolic dimension facts.
func TestV2Metadata(t *testing.T) {
	fx := newFixture(t, fixtureOpts{budget: 1 << 20})

	code, body := fx.do(t, "GET", "/v2/models/alpha", nil, nil)
	if code != 200 {
		t.Fatalf("meta: %d %s", code, body)
	}
	var meta ModelMeta
	if err := json.Unmarshal(body, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Name != "alpha" || meta.Platform != "godisc" {
		t.Fatalf("meta identity: %+v", meta)
	}
	if len(meta.Versions) != 2 || meta.Versions[0] != "1" || meta.Versions[1] != "2" {
		t.Fatalf("model-level meta must list all versions sorted: %v", meta.Versions)
	}
	if len(meta.Inputs) != 1 || len(meta.Outputs) != 1 {
		t.Fatalf("alpha has one input and one output: %+v", meta)
	}
	in := meta.Inputs[0]
	if in.Name != "x" || in.Datatype != DatatypeFP32 {
		t.Fatalf("input meta: %+v", in)
	}
	if len(in.Shape) != 2 || in.Shape[0] != -1 || in.Shape[1] != 8 {
		t.Fatalf("dynamic batch must be -1, static width literal: %v", in.Shape)
	}
	if len(in.ShapeSymbolic) != 2 || !strings.Contains(in.ShapeSymbolic[0], "range(1,64)") {
		t.Fatalf("symbolic facts must carry the declared range: %v", in.ShapeSymbolic)
	}
	if out := meta.Outputs[0]; out.Shape[len(out.Shape)-1] != 4 {
		t.Fatalf("output meta: %+v", out)
	}

	// Version-scoped metadata pins Versions to the one version.
	code, body = fx.do(t, "GET", "/v2/models/alpha/versions/1", nil, nil)
	if code != 200 {
		t.Fatalf("versioned meta: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &meta); err != nil {
		t.Fatal(err)
	}
	if len(meta.Versions) != 1 || meta.Versions[0] != "1" {
		t.Fatalf("versioned meta: %v", meta.Versions)
	}
}

// TestV2IndexAndReadyLifecycle checks readiness flips with lifecycle:
// ready turns 503 after Close, and the index reflects load state.
func TestV2IndexAndReadyLifecycle(t *testing.T) {
	fx := newFixture(t, fixtureOpts{budget: 1 << 20})

	code, body := fx.do(t, "GET", "/v2/repository/index", nil, nil)
	if code != 200 {
		t.Fatalf("index: %d", code)
	}
	var idx []ModelStatus
	if err := json.Unmarshal(body, &idx); err != nil {
		t.Fatal(err)
	}
	if len(idx) != 6 {
		t.Fatalf("index must list 6 versions: %+v", idx)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := fx.f.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if code, _ := fx.do(t, "GET", "/v2/health/ready", nil, nil); code != 503 {
		t.Fatalf("closed fleet must answer ready=503, got %d", code)
	}
	if code, _ := fx.do(t, "GET", "/v2/health/live", nil, nil); code != 200 {
		t.Fatalf("liveness is process-level and stays 200, got %d", code)
	}
	code, body = fx.do(t, "GET", "/v2/repository/index", nil, nil)
	if code != 200 || strings.TrimSpace(string(body)) != "[]" {
		t.Fatalf("closed fleet index must be the empty array: %d %q", code, body)
	}
}

// TestV2NoRepositoryConfigured: a fleet without a repository serves
// nothing and 404s the repository routes.
func TestV2NoRepositoryConfigured(t *testing.T) {
	fx := newFixture(t, fixtureOpts{noRepo: true})
	if code, _ := fx.do(t, "POST", "/v2/repository/models/alpha/load", nil, nil); code != 404 {
		t.Fatalf("load without a repository must 404, got %d", code)
	}
	if code, _ := fx.do(t, "GET", "/v2/health/ready", nil, nil); code != 200 {
		t.Fatal("an empty fleet is still ready")
	}
}

// TestSentinelStatusExhaustive cross-checks the fleet's sentinel → HTTP
// status table against the discerr registry in both directions, so adding
// a sentinel without mapping it (or mapping a ghost) fails here.
func TestSentinelStatusExhaustive(t *testing.T) {
	reg := discerr.Sentinels()
	table := SentinelStatuses()
	if len(reg) != len(table) {
		t.Fatalf("taxonomy drift: discerr registers %d sentinels, fleet maps %d", len(reg), len(table))
	}
	valid := map[int]bool{400: true, 429: true, 500: true, 503: true, 504: true}
	for _, s := range reg {
		code, ok := table[s.Name]
		if !ok {
			t.Errorf("sentinel %s has no HTTP status mapping — add it to sentinelStatus", s.Name)
			continue
		}
		if !valid[code] {
			t.Errorf("sentinel %s maps to unexpected status %d", s.Name, code)
		}
		// StatusFor must agree for the bare sentinel and for a wrapped one.
		if got := StatusFor(s.Err); got != code {
			t.Errorf("StatusFor(%s) = %d, table says %d", s.Name, got, code)
		}
		if got := StatusFor(fmt.Errorf("serve: request 7: %w", s.Err)); got != code {
			t.Errorf("StatusFor(wrapped %s) = %d, table says %d", s.Name, got, code)
		}
	}
	names := make(map[string]bool, len(reg))
	for _, s := range reg {
		names[s.Name] = true
	}
	for name := range table {
		if !names[name] {
			t.Errorf("fleet maps %q which discerr does not register", name)
		}
	}
}

// TestRetryAfterHeader: every 429/503 the error path emits — shed load,
// temporary unavailability — must carry a Retry-After backoff hint, and
// no other status may. Driven off the full sentinel table so a new
// retryable sentinel is covered automatically.
func TestRetryAfterHeader(t *testing.T) {
	f := &Fleet{}
	for _, s := range sentinelStatus {
		rec := httptest.NewRecorder()
		f.fail(rec, fmt.Errorf("test: %w", s.err))
		got := rec.Header().Get("Retry-After")
		retryable := s.code == 429 || s.code == 503
		switch {
		case retryable && got != retryAfterSeconds:
			t.Errorf("%s (%d): Retry-After = %q, want %q", s.name, s.code, got, retryAfterSeconds)
		case !retryable && got != "":
			t.Errorf("%s (%d): unexpected Retry-After %q on non-retryable status", s.name, s.code, got)
		}
	}
}

// TestStatusForFallbacks covers the non-sentinel branches of StatusFor.
func TestStatusForFallbacks(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, 200},
		{&httpError{code: 418, msg: "teapot"}, 418},
		{&http.MaxBytesError{Limit: 1}, 413},
		{context.DeadlineExceeded, 504},
		{context.Canceled, 499},
		{fmt.Errorf("wrapped: %w", context.Canceled), 499},
		{fmt.Errorf("opaque failure"), 500},
		// A governor timeout wraps both the sentinel and the context error;
		// the sentinel must win.
		{fmt.Errorf("%w: %w", discerr.ErrMemoryBudget, context.DeadlineExceeded), 503},
	}
	for _, tc := range cases {
		if got := StatusFor(tc.err); got != tc.want {
			t.Errorf("StatusFor(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}
