package fleet

import (
	"context"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"godisc/internal/graph"
	"godisc/internal/ral"
	"godisc/internal/serve"
	"godisc/internal/servetest"
)

// writeVersion drops one version directory (graph text) into a repo.
func writeVersion(t testing.TB, repo, model, version string, g *graph.Graph) {
	t.Helper()
	d := filepath.Join(repo, model, version)
	if err := os.MkdirAll(d, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(d, GraphFileName), []byte(graph.WriteText(g)), 0o644); err != nil {
		t.Fatal(err)
	}
}

// waitFor polls cond for up to 5s — the watcher runs on a short interval,
// so anything it will ever do happens well inside that.
func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestFleetWatcherPicksUpRepo starts a fleet over an empty repository with
// the watcher armed and drops models in while it runs: new models and new
// versions of loaded models must come up without any load call, and the
// default version must track the newest drop.
func TestFleetWatcherPicksUpRepo(t *testing.T) {
	srv := serve.New(serve.Config{MaxConcurrent: 2}, testCompile(nil))
	defer servetest.Drain(t, srv)
	repo := t.TempDir()
	f, err := New(Config{
		Server:        srv,
		Repo:          repo,
		WatchInterval: 3 * time.Millisecond,
		AutoLoad:      true,
		LoadTimeout:   10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := f.Close(ctx); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	if f.Handler() == nil {
		t.Fatal("Handler must return the mux")
	}
	if n := len(f.Index()); n != 0 {
		t.Fatalf("empty repo must load nothing, got %d versions", n)
	}

	writeVersion(t, repo, "alpha", "1", fixtureGraph("alpha", "1"))
	waitFor(t, "alpha/1 to load", func() bool {
		mv, err := f.resolve("alpha", "1")
		return err == nil && mv.state == StateReady
	})

	writeVersion(t, repo, "alpha", "2", fixtureGraph("alpha", "2"))
	waitFor(t, "alpha/2 to become the default", func() bool {
		mv, err := f.resolve("alpha", "")
		return err == nil && mv.version == "2"
	})
	if len(f.Index()) != 2 {
		t.Fatalf("index: %+v", f.Index())
	}
}

// TestFleetWatcherWithoutAutoLoad pins the watcher's conservative mode:
// explicitly loaded models are refreshed with new versions, but models
// never loaded stay out of the fleet even when they appear on disk.
func TestFleetWatcherWithoutAutoLoad(t *testing.T) {
	srv := serve.New(serve.Config{MaxConcurrent: 2}, testCompile(nil))
	defer servetest.Drain(t, srv)
	repo := t.TempDir()
	writeVersion(t, repo, "alpha", "1", fixtureGraph("alpha", "1"))
	writeVersion(t, repo, "beta", "1", fixtureGraph("beta", "1"))
	f, err := New(Config{
		Server:        srv,
		Repo:          repo,
		WatchInterval: 3 * time.Millisecond,
		AutoLoad:      false,
		LoadTimeout:   10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = f.Close(ctx)
	}()
	if n := len(f.Index()); n != 0 {
		t.Fatalf("AutoLoad=false must not load at startup, got %d", n)
	}
	if err := f.LoadModel(context.Background(), "alpha"); err != nil {
		t.Fatal(err)
	}

	writeVersion(t, repo, "alpha", "2", fixtureGraph("alpha", "2"))
	waitFor(t, "alpha/2 to load", func() bool {
		_, err := f.resolve("alpha", "2")
		return err == nil
	})
	if _, err := f.resolve("beta", ""); err == nil {
		t.Fatal("unloaded model must not be picked up by the watcher without AutoLoad")
	}
}

// TestLoadModelFailureUnwinds drives every LoadModel error path and pins
// the central invariant: a failed load leaves no trace — no registration,
// no ledger charge, no partial model — and succeeds cleanly once the
// repository is repaired.
func TestLoadModelFailureUnwinds(t *testing.T) {
	srv := serve.New(serve.Config{MaxConcurrent: 2}, testCompile(nil))
	defer servetest.Drain(t, srv)
	repo := t.TempDir()
	gov := ral.NewGovernor(1 << 30)
	f, err := New(Config{
		Server:      srv,
		Repo:        repo,
		Governor:    gov,
		AutoLoad:    false,
		LoadTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = f.Close(ctx)
	}()
	ctx := context.Background()

	for _, tc := range []struct {
		name  string
		model string
		code  int
		prep  func()
	}{
		{"traversal name", "../escape", http.StatusBadRequest, nil},
		{"colon name", "a:b", http.StatusBadRequest, nil},
		{"absent model", "ghost", http.StatusNotFound, nil},
		{"no graph file", "hollow", http.StatusNotFound, func() {
			if err := os.MkdirAll(filepath.Join(repo, "hollow", "1"), 0o755); err != nil {
				t.Fatal(err)
			}
		}},
		{"bad config.json", "badcfg", http.StatusBadRequest, func() {
			writeVersion(t, repo, "badcfg", "1", fixtureGraph("alpha", "1"))
			if err := os.WriteFile(filepath.Join(repo, "badcfg", "config.json"), []byte("{"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		if tc.prep != nil {
			tc.prep()
		}
		err := f.LoadModel(ctx, tc.model)
		if err == nil {
			t.Fatalf("%s: load must fail", tc.name)
		}
		if got := StatusFor(err); got != tc.code {
			t.Fatalf("%s: status %d, want %d (%v)", tc.name, got, tc.code, err)
		}
	}

	// A corrupt version must unwind the versions loaded before it: the
	// ledger drains, nothing stays registered, and repairing the file
	// makes the same load succeed.
	writeVersion(t, repo, "dual", "1", fixtureGraph("alpha", "1"))
	d2 := filepath.Join(repo, "dual", "2")
	if err := os.MkdirAll(d2, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(d2, GraphFileName), []byte("not a graph"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := f.LoadModel(ctx, "dual"); err == nil {
		t.Fatal("corrupt version 2 must fail the whole load")
	}
	if st := gov.Stats(); st.ReservedBytes != 0 {
		t.Fatalf("failed load must release every reservation: %+v", st)
	}
	if _, err := f.resolve("dual", "1"); err == nil {
		t.Fatal("failed load must leave no partial model")
	}
	if err := os.WriteFile(filepath.Join(d2, GraphFileName),
		[]byte(graph.WriteText(fixtureGraph("alpha", "2"))), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := f.LoadModel(ctx, "dual"); err != nil {
		t.Fatalf("repaired repository must load: %v", err)
	}
	want := fixtureBytes("alpha", "1") + fixtureBytes("alpha", "2")
	if st := gov.Stats(); st.ReservedBytes != want {
		t.Fatalf("ledger after repaired load: %d, want %d", st.ReservedBytes, want)
	}

	// config.json can pin the default version below the newest.
	writeVersion(t, repo, "pinned", "1", fixtureGraph("beta", "1"))
	writeVersion(t, repo, "pinned", "2", fixtureGraph("beta", "2"))
	if err := os.WriteFile(filepath.Join(repo, "pinned", "config.json"),
		[]byte(`{"default_version":"1"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := f.LoadModel(ctx, "pinned"); err != nil {
		t.Fatal(err)
	}
	if mv, err := f.resolve("pinned", ""); err != nil || mv.version != "1" {
		t.Fatalf("config.json default_version must win: %v, %v", mv, err)
	}

	// Non-numeric version names fall back to lexical ordering for the
	// implicit default.
	writeVersion(t, repo, "lex", "va", fixtureGraph("gamma", "1"))
	writeVersion(t, repo, "lex", "vb", fixtureGraph("gamma", "2"))
	if err := f.LoadModel(ctx, "lex"); err != nil {
		t.Fatal(err)
	}
	if mv, err := f.resolve("lex", ""); err != nil || mv.version != "vb" {
		t.Fatalf("lexical default must be the last name: %v, %v", mv, err)
	}
}
