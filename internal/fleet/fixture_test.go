package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"godisc/internal/device"
	"godisc/internal/discerr"
	"godisc/internal/exec"
	"godisc/internal/faultinject"
	"godisc/internal/fusion"
	"godisc/internal/graph"
	"godisc/internal/opt"
	"godisc/internal/ral"
	"godisc/internal/serve"
	"godisc/internal/servetest"
	"godisc/internal/symshape"
	"godisc/internal/tensor"
)

// testCompile is the real compilation pipeline with a counter, so fleet
// tests can assert exactly when the compiler runs (and when the
// persistent engine cache makes it unnecessary).
func testCompile(calls *int32) serve.CompileFunc {
	return testCompileFaults(calls, nil)
}

// testCompileFaults additionally threads a fault injector into the
// engines. The saturation test arms a latency-only rule so engine runs
// genuinely overlap on a single-CPU host (pure-CPU runs shorter than a
// scheduling quantum otherwise serialize in the Go scheduler and the
// admission queue never fills).
func testCompileFaults(calls *int32, inj *faultinject.Injector) serve.CompileFunc {
	return func(g *graph.Graph) (serve.Engine, error) {
		if calls != nil {
			atomic.AddInt32(calls, 1)
		}
		if _, err := opt.Default().Run(g); err != nil {
			return nil, err
		}
		plan, err := fusion.NewPlanner(fusion.DefaultConfig()).Plan(g)
		if err != nil {
			return nil, err
		}
		eo := exec.DefaultOptions()
		eo.Faults = inj
		return exec.Compile(g, plan, device.A10(), eo)
	}
}

// buildDense is the fixture model: a two-layer MLP with a dynamic batch
// axis and deterministic weights, parameterized so each (model, version)
// in the repository gets its own weights and hidden width — distinct
// engines, distinct resident footprints.
func buildDense(name string, seed uint64, in, hidden, out int) *graph.Graph {
	g := graph.New(name)
	r := tensor.NewRNG(seed)
	b := g.Ctx.NewDim("B")
	g.Ctx.DeclareRange(b, 1, 64)
	x := g.Parameter("x", tensor.F32, symshape.Shape{b, g.Ctx.StaticDim(int64(in))})
	w1 := g.Constant(tensor.RandN(r, 0.2, in, hidden))
	w2 := g.Constant(tensor.RandN(r, 0.2, hidden, out))
	g.SetOutputs(g.MatMul(g.Relu(g.MatMul(x, w1)), w2))
	return g
}

// fixtureSpec is one fixture model: input width and weight seed. Every
// model ships versions "1" (hidden 16) and "2" (hidden 24).
type fixtureSpec struct {
	name string
	in   int
	seed uint64
}

func fixtureSpecs() []fixtureSpec {
	return []fixtureSpec{{"alpha", 8, 1}, {"beta", 12, 2}, {"gamma", 6, 3}}
}

// fixtureGraph rebuilds the exact graph stored for (model, version), for
// direct serve-layer comparison against HTTP results.
func fixtureGraph(name, version string) *graph.Graph {
	for _, s := range fixtureSpecs() {
		if s.name != name {
			continue
		}
		switch version {
		case "1":
			return buildDense(s.name, s.seed, s.in, 16, 4)
		case "2":
			return buildDense(s.name, s.seed+100, s.in, 24, 4)
		}
	}
	return nil
}

// fixtureBytes is the resident footprint constBytes reports for one
// fixture version — what the governor ledger must charge.
func fixtureBytes(name, version string) int64 {
	return constBytes(fixtureGraph(name, version))
}

// writeRepo materializes the 3-model × 2-version repository on disk.
func writeRepo(t testing.TB, dir string) {
	t.Helper()
	for _, s := range fixtureSpecs() {
		for _, v := range []string{"1", "2"} {
			d := filepath.Join(dir, s.name, v)
			if err := os.MkdirAll(d, 0o755); err != nil {
				t.Fatal(err)
			}
			text := graph.WriteText(fixtureGraph(s.name, v))
			if err := os.WriteFile(filepath.Join(d, GraphFileName), []byte(text), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// fixture bundles one running fleet: serve backend, governor ledger,
// compile counter and an httptest server speaking real HTTP.
type fixture struct {
	f        *Fleet
	srv      *serve.Server
	gov      *ral.Governor
	ts       *httptest.Server
	compiles *int32
}

type fixtureOpts struct {
	budget        int64  // governor budget; 0 = ungoverned
	cacheDir      string // persistent engine cache dir; "" = none
	maxBody       int64
	repo          string // override repo dir ("" = fresh default repo)
	noRepo        bool   // build the fleet with no repository at all
	maxBatchSize  int
	maxConcurrent int // serve execution slots (default 8)
	queueDepth    int // serve admission queue depth (0 = serve default)
	workers       int // exec worker pool size (0 = serve default)
	// kernelLatency, when > 0, injects that much sleep into every kernel
	// launch (latency-only fault; results unchanged) so runs overlap on a
	// single-CPU host.
	kernelLatency time.Duration
	// rollout enables/configures the canary rollout controller.
	rollout RolloutConfig
	// faults arms the fleet's network-layer fault sites (http-read,
	// http-decode, http-write) AND is threaded into the engines so the
	// kernel/alloc sites fire too.
	faults *faultinject.Injector
	// breakEngines lists graph names whose compiled engines fail every
	// run with a transient error — a deterministic per-version broken
	// engine (the serve layer retries, opens the breaker, and serves the
	// request through the interpreter fallback).
	breakEngines map[string]bool
	// serveCfg, when non-nil, tweaks the serve.Config after the fixture
	// defaults are applied.
	serveCfg func(*serve.Config)
}

// brokenEngine wraps an Engine so every run fails with a transient
// error, exercising the retry → breaker → fallback ladder.
type brokenEngine struct{ serve.Engine }

func (brokenEngine) RunContext(context.Context, []*tensor.Tensor) (*exec.Result, error) {
	return nil, fmt.Errorf("fixture: engine wired to fail: %w", discerr.ErrTransient)
}

func newFixture(t testing.TB, o fixtureOpts) *fixture {
	t.Helper()
	if o.maxConcurrent == 0 {
		o.maxConcurrent = 8
	}
	var compiles int32
	inj := o.faults
	if inj == nil && o.kernelLatency > 0 {
		inj = faultinject.New(1).
			ArmLatency(faultinject.SiteKernelLaunch, faultinject.ModeLatency, 1, o.kernelLatency)
	}
	scfg := serve.Config{
		MaxConcurrent: o.maxConcurrent,
		QueueDepth:    o.queueDepth,
		MaxBatchSize:  o.maxBatchSize,
		Workers:       o.workers,
	}
	if o.cacheDir != "" {
		scfg.EngineCache = servetest.OpenCache(t, o.cacheDir)
		// Decoded engines must carry the same injector as compiled ones,
		// or the first evict/reload cycle silently disarms the faults.
		scfg.DecodeEngine = func(payload []byte) (serve.Engine, error) {
			eo := exec.DefaultOptions()
			eo.Faults = inj
			return exec.DecodeImage(payload, device.A10(), eo)
		}
		scfg.EncodeEngine = func(e serve.Engine) ([]byte, error) {
			return servetest.EncodeExecutable(e)
		}
	}
	if o.serveCfg != nil {
		o.serveCfg(&scfg)
	}
	compile := testCompileFaults(&compiles, inj)
	if len(o.breakEngines) > 0 {
		inner := compile
		compile = func(g *graph.Graph) (serve.Engine, error) {
			e, err := inner(g)
			if err == nil && o.breakEngines[g.Name] {
				e = brokenEngine{e}
			}
			return e, err
		}
	}
	srv := serve.New(scfg, compile)

	repo := o.repo
	if repo == "" && !o.noRepo {
		repo = t.TempDir()
		writeRepo(t, repo)
	}
	var gov *ral.Governor
	if o.budget > 0 {
		gov = ral.NewGovernor(o.budget)
	}
	f, err := New(Config{
		Server:       srv,
		Repo:         repo,
		Governor:     gov,
		MaxBodyBytes: o.maxBody,
		LoadTimeout:  10 * time.Second,
		AutoLoad:     !o.noRepo,
		Rollout:      o.rollout,
		Faults:       o.faults,
	})
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	ts := httptest.NewServer(f)
	fx := &fixture{f: f, srv: srv, gov: gov, ts: ts, compiles: &compiles}
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = f.Close(ctx)
		servetest.Drain(t, srv)
	})
	return fx
}

// f32Request builds a v2 infer body carrying one FP32 input tensor.
func f32Request(t testing.TB, shape []int64, data []float32) []byte {
	t.Helper()
	raw, err := json.Marshal(data)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(InferRequest{
		Inputs: []InferTensor{{Name: "x", Shape: shape, Datatype: DatatypeFP32, Data: raw}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// randInput deterministically fills a [batch, width] FP32 input.
func randInput(seed uint64, batch, width int) []float32 {
	r := tensor.NewRNG(seed)
	return tensor.RandN(r, 0.5, batch, width).F32()
}

// do issues one HTTP request against the fixture and returns status +
// decoded JSON body (nil when the body is not an object).
func (fx *fixture) do(t testing.TB, method, path string, body []byte, hdr map[string]string) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, fx.ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, payload
}

// infer POSTs a batch-b request to model (and optional version) and
// decodes the v2 response; fails the test on non-200.
func (fx *fixture) infer(t testing.TB, model, version string, batch int, hdr map[string]string) *InferResponse {
	t.Helper()
	path := "/v2/models/" + model + "/infer"
	if version != "" {
		path = "/v2/models/" + model + "/versions/" + version + "/infer"
	}
	width := 0
	for _, s := range fixtureSpecs() {
		if s.name == model {
			width = s.in
		}
	}
	body := f32Request(t, []int64{int64(batch), int64(width)}, randInput(uint64(batch)*31+7, batch, width))
	code, payload := fx.do(t, http.MethodPost, path, body, hdr)
	if code != http.StatusOK {
		t.Fatalf("POST %s: status %d: %s", path, code, payload)
	}
	var out InferResponse
	if err := json.Unmarshal(payload, &out); err != nil {
		t.Fatalf("POST %s: decoding response: %v", path, err)
	}
	return &out
}
