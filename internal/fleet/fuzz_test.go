package fleet

import (
	"encoding/json"
	"testing"
)

// FuzzV2InferDecode hammers the JSON tensor decoder with arbitrary
// bodies. Invariants: never panic; on success every returned tensor's
// element count equals its declared (overflow-guarded) shape product; an
// absurd declared shape whose data array does not carry that many
// elements must be rejected — the decoder must never allocate from the
// declared shape.
func FuzzV2InferDecode(f *testing.F) {
	// Seed corpus: the conformance suite's accept and reject shapes.
	seeds := [][]byte{
		[]byte(`{"inputs":[{"name":"x","shape":[2,8],"datatype":"FP32","data":[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16]}]}`),
		[]byte(`{"inputs":[{"name":"x","shape":[4],"datatype":"INT32","data":[1,2,3,4]}]}`),
		[]byte(`{"inputs":[{"name":"m","shape":[2],"datatype":"BOOL","data":[true,false]}]}`),
		[]byte(`{"inputs":[{"name":"x","shape":[0],"datatype":"FP32","data":[]}]}`),
		[]byte(`{"id":"r1","inputs":[]}`),
		[]byte(`{"inputs":[`),
		[]byte(`not json at all`),
		[]byte(`{"inputs":[{"name":"x","shape":[1,8],"datatype":"FP64","data":[1,2,3,4,5,6,7,8]}]}`),
		[]byte(`{"inputs":[{"name":"x","shape":[2,8],"datatype":"FP32","data":[1,2,3]}]}`),
		[]byte(`{"inputs":[{"name":"x","shape":[-1,8],"datatype":"FP32","data":[1]}]}`),
		[]byte(`{"inputs":[{"name":"x","shape":[4611686018427387904,4611686018427387904],"datatype":"FP32","data":[1]}]}`),
		[]byte(`{"inputs":[{"name":"x","shape":[9999999999],"datatype":"FP32","data":[1]}]}`),
		[]byte(`{"inputs":[{"name":"x","shape":[1],"datatype":"FP32","data":["oops"]}]}`),
		[]byte(`{"inputs":[{"name":"x","shape":[1],"datatype":"FP32"}]}`),
		[]byte(`{"inputs":[{"name":"x","shape":null,"datatype":"BOOL","data":[]}]}`),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		req, tensors, err := DecodeInferRequest(body)
		if err != nil {
			if req != nil || tensors != nil {
				t.Fatalf("error return must be clean, got req=%v tensors=%v", req, tensors)
			}
			return
		}
		if len(tensors) != len(req.Inputs) {
			t.Fatalf("decoded %d tensors for %d inputs", len(tensors), len(req.Inputs))
		}
		for i, tt := range tensors {
			in := req.Inputs[i]
			want := int64(1)
			for _, d := range in.Shape {
				want *= d
			}
			if int64(tt.Numel()) != want {
				t.Fatalf("input %d: tensor has %d elements, declared shape %v wants %d",
					i, tt.Numel(), in.Shape, want)
			}
			// The accepted request must round-trip as JSON (it will be
			// echoed into responses and logs).
			if _, err := json.Marshal(in); err != nil {
				t.Fatalf("accepted input %d does not re-marshal: %v", i, err)
			}
		}
	})
}
