package symshape

// Sum support mirrors the product support in product.go: concat along an
// axis produces a dimension that is the sum of the input extents. Sum facts
// participate in runtime shape evaluation (Binding.Value) and in equality of
// identically-composed sums, but — matching BladeDISC — they do not feed the
// product-equality oracle.

// DeclareSum creates (or folds) a symbol whose value is the sum of terms.
// If all terms are static the interned static symbol is returned.
func (c *Context) DeclareSum(name string, terms []DimID) DimID {
	allStatic := true
	total := int64(0)
	for _, t := range terms {
		v, ok := c.StaticValue(t)
		if !ok {
			allStatic = false
			break
		}
		total += v
	}
	if allStatic {
		return c.StaticDim(total)
	}
	d := c.NewDim(name)
	if c.decompSum == nil {
		c.decompSum = map[DimID][]DimID{}
	}
	c.decompSum[d] = append([]DimID(nil), terms...)
	lo, hi := int64(0), int64(0)
	for _, t := range terms {
		tlo, thi := c.Range(t)
		lo += tlo
		hi += thi
		if hi > unboundedHi {
			hi = unboundedHi
		}
	}
	inf := &c.info[d]
	inf.lo, inf.hi = lo, hi
	return d
}

// sumTerms returns the recorded sum decomposition of d, if any.
func (c *Context) sumTerms(d DimID) ([]DimID, bool) {
	if c.decompSum == nil {
		return nil, false
	}
	if ts, ok := c.decompSum[c.find(d)]; ok {
		return ts, true
	}
	ts, ok := c.decompSum[d]
	return ts, ok
}

// quot records a derived quotient dimension: value = Num / Denom.
type quot struct {
	Num   DimID
	Denom int64
}

// DeclareQuotient creates a symbol whose value is num/denom; the caller
// must have established that denom divides num (SplitDim does via the
// divisibility facts). If num is static the folded static symbol returns.
func (c *Context) DeclareQuotient(name string, num DimID, denom int64) DimID {
	if denom <= 0 {
		panic("symshape: quotient denominator must be positive")
	}
	if v, ok := c.StaticValue(num); ok {
		return c.StaticDim(v / denom)
	}
	d := c.NewDim(name)
	if c.decompQuot == nil {
		c.decompQuot = map[DimID]quot{}
	}
	c.decompQuot[d] = quot{Num: num, Denom: denom}
	lo, hi := c.Range(num)
	inf := &c.info[d]
	inf.lo = max64(lo/denom, 1)
	inf.hi = max64(hi/denom, 1)
	if div := c.Divisor(num); div%denom == 0 && div/denom > 1 {
		inf.divisor = div / denom
	}
	return d
}

// quotOf returns the recorded quotient decomposition of d, if any.
func (c *Context) quotOf(d DimID) (quot, bool) {
	if c.decompQuot == nil {
		return quot{}, false
	}
	if q, ok := c.decompQuot[c.find(d)]; ok {
		return q, true
	}
	q, ok := c.decompQuot[d]
	return q, ok
}
