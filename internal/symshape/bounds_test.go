package symshape

import "testing"

func TestUpperBoundStatic(t *testing.T) {
	c := NewContext(FeatAll)
	d := c.StaticDim(17)
	b, ok := c.UpperBound(d)
	if !ok || b != 17 {
		t.Fatalf("UpperBound(static 17) = %d, %v", b, ok)
	}
}

func TestUpperBoundDynamicRange(t *testing.T) {
	c := NewContext(FeatAll)
	d := c.NewDim("B")
	if _, ok := c.UpperBound(d); ok {
		t.Fatal("unbounded dynamic dim reported a bound")
	}
	c.DeclareRange(d, 1, 128)
	b, ok := c.UpperBound(d)
	if !ok || b != 128 {
		t.Fatalf("UpperBound(B in [1,128]) = %d, %v", b, ok)
	}
}

func TestUpperBoundDerived(t *testing.T) {
	c := NewContext(FeatAll)
	b := c.NewDim("B")
	s := c.NewDim("S")
	c.DeclareRange(b, 1, 8)
	c.DeclareRange(s, 1, 64)

	prod := c.DeclareProduct("BS", []DimID{b, s})
	if v, ok := c.UpperBound(prod); !ok || v != 8*64 {
		t.Fatalf("UpperBound(B*S) = %d, %v; want 512", v, ok)
	}
	sum := c.DeclareSum("BpS", []DimID{b, s})
	if v, ok := c.UpperBound(sum); !ok || v != 8+64 {
		t.Fatalf("UpperBound(B+S) = %d, %v; want 72", v, ok)
	}
	q := c.DeclareQuotient("Sq", s, 4)
	if v, ok := c.UpperBound(q); !ok || v != 16 {
		t.Fatalf("UpperBound(S/4) = %d, %v; want 16", v, ok)
	}
	aff := c.DeclareAffine("conv", s, 2, 3)
	if v, ok := c.UpperBound(aff); !ok || v != 2*64+3 {
		t.Fatalf("UpperBound(2S+3) = %d, %v; want 131", v, ok)
	}
}

func TestUpperBoundUnboundedOperandPropagates(t *testing.T) {
	c := NewContext(FeatAll)
	b := c.NewDim("B") // no declared range
	s := c.NewDim("S")
	c.DeclareRange(s, 1, 64)
	prod := c.DeclareProduct("BS", []DimID{b, s})
	if v, ok := c.UpperBound(prod); ok {
		t.Fatalf("product with unbounded factor reported bound %d", v)
	}
}
