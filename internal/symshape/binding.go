package symshape

import (
	"fmt"
	"strings"
)

// Binding maps dimension symbols (by root) to concrete runtime values. It is
// produced at invocation time from the concrete shapes of the inputs and
// then used by the runtime's host-side shape computation to size every
// intermediate buffer without recompiling.
type Binding struct {
	ctx  *Context
	vals map[DimID]int64
}

// NewBinding returns an empty binding over ctx.
func NewBinding(ctx *Context) *Binding {
	return &Binding{ctx: ctx, vals: map[DimID]int64{}}
}

// Bind asserts that symbolic shape s has the concrete extents dims. It
// verifies consistency with static values, previous bindings, divisibility
// and range facts, returning a descriptive error on violation.
func (b *Binding) Bind(s Shape, dims []int) error {
	if len(s) != len(dims) {
		return fmt.Errorf("symshape: rank mismatch: symbolic %s vs concrete %v", b.ctx.String(s), dims)
	}
	for i, d := range s {
		v := int64(dims[i])
		if v < 0 {
			return fmt.Errorf("symshape: negative extent %d", v)
		}
		if sv, ok := b.ctx.StaticValue(d); ok {
			if sv != v {
				return fmt.Errorf("symshape: dim %s is static %d but got %d", b.ctx.Name(d), sv, v)
			}
			continue
		}
		r := b.ctx.find(d)
		if prev, ok := b.vals[r]; ok {
			if prev != v {
				return fmt.Errorf("symshape: dim %s bound to both %d and %d", b.ctx.Name(d), prev, v)
			}
			continue
		}
		lo, hi := b.ctx.Range(d)
		if v < lo || v > hi {
			return fmt.Errorf("symshape: dim %s=%d outside declared range [%d,%d]", b.ctx.Name(d), v, lo, hi)
		}
		if div := b.ctx.info[r].divisor; div > 1 && v%div != 0 {
			return fmt.Errorf("symshape: dim %s=%d violates divisibility by %d", b.ctx.Name(d), v, div)
		}
		b.vals[r] = v
	}
	return nil
}

// Value evaluates a single symbol: static value, direct binding, or the
// product of its factors for derived symbols.
func (b *Binding) Value(d DimID) (int64, error) {
	if v, ok := b.ctx.StaticValue(d); ok {
		return v, nil
	}
	r := b.ctx.find(d)
	if v, ok := b.vals[r]; ok {
		return v, nil
	}
	factors, ok := b.ctx.decomp[r]
	if !ok {
		factors, ok = b.ctx.decomp[d]
	}
	if ok {
		p := int64(1)
		for _, f := range factors {
			fv, err := b.Value(f)
			if err != nil {
				return 0, err
			}
			p *= fv
		}
		return p, nil
	}
	if a, ok := b.ctx.affineOf(d); ok {
		bv, err := b.Value(a.Of)
		if err != nil {
			return 0, err
		}
		r := a.Scale*bv + a.Offset
		if r < 0 {
			return 0, fmt.Errorf("symshape: affine dim %s evaluates to %d (base %d)", b.ctx.Name(d), r, bv)
		}
		return r, nil
	}
	if q, ok := b.ctx.quotOf(d); ok {
		nv, err := b.Value(q.Num)
		if err != nil {
			return 0, err
		}
		if nv%q.Denom != 0 {
			return 0, fmt.Errorf("symshape: quotient dim %s: %d not divisible by %d", b.ctx.Name(d), nv, q.Denom)
		}
		return nv / q.Denom, nil
	}
	if terms, ok := b.ctx.sumTerms(d); ok {
		sum := int64(0)
		for _, t := range terms {
			tv, err := b.Value(t)
			if err != nil {
				return 0, err
			}
			sum += tv
		}
		return sum, nil
	}
	return 0, fmt.Errorf("symshape: dim %s is unbound", b.ctx.Name(d))
}

// Eval evaluates a whole symbolic shape to concrete extents.
func (b *Binding) Eval(s Shape) ([]int, error) {
	out := make([]int, len(s))
	for i, d := range s {
		v, err := b.Value(d)
		if err != nil {
			return nil, err
		}
		out[i] = int(v)
	}
	return out, nil
}

// MustEval is Eval that panics; used where binding completeness is an
// internal invariant (after successful Bind of all parameters).
func (b *Binding) MustEval(s Shape) []int {
	out, err := b.Eval(s)
	if err != nil {
		panic(err)
	}
	return out
}

// Signature returns the canonical symbolic signature of a list of shapes:
// static dims print as values, dynamic dims as d0, d1... numbered by first
// appearance of their equality class. Two invocations with different
// concrete shapes but the same signature can share one compiled executable;
// this string is exactly BladeDISC's compilation-cache key.
func (c *Context) Signature(shapes []Shape) string {
	next := 0
	names := map[DimID]string{}
	var sb strings.Builder
	for i, s := range shapes {
		if i > 0 {
			sb.WriteByte(';')
		}
		sb.WriteByte('[')
		for j, d := range s {
			if j > 0 {
				sb.WriteByte(',')
			}
			if v, ok := c.StaticValue(d); ok {
				fmt.Fprintf(&sb, "%d", v)
				continue
			}
			r := c.find(d)
			name, ok := names[r]
			if !ok {
				name = fmt.Sprintf("d%d", next)
				next++
				names[r] = name
			}
			sb.WriteString(name)
		}
		sb.WriteByte(']')
	}
	return sb.String()
}

// ConcreteSignature renders concrete shapes as a cache key — the key a
// static-shape compiler (XLA-style) has to use, causing one cache entry per
// distinct shape tuple.
func ConcreteSignature(shapes [][]int) string {
	var sb strings.Builder
	for i, s := range shapes {
		if i > 0 {
			sb.WriteByte(';')
		}
		sb.WriteByte('[')
		for j, d := range s {
			if j > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", d)
		}
		sb.WriteByte(']')
	}
	return sb.String()
}
