package symshape

import (
	"fmt"
	"sort"
	"strings"
)

// DeclareProduct creates (or reuses) a symbol whose value is the product of
// factors. It is how shape inference models reshape/flatten outputs: the new
// dimension is "derived" and the product fact lets later queries cancel it
// against its factors. If all factors are static, the interned static symbol
// is returned instead.
func (c *Context) DeclareProduct(name string, factors []DimID) DimID {
	allStatic := true
	prod := int64(1)
	for _, f := range factors {
		v, ok := c.StaticValue(f)
		if !ok {
			allStatic = false
			break
		}
		prod *= v
	}
	if allStatic {
		return c.StaticDim(prod)
	}
	d := c.NewDim(name)
	c.decomp[d] = append([]DimID(nil), factors...)
	// Derived facts: divisibility by static factors, range as the product
	// of factor ranges.
	div := int64(1)
	lo, hi := int64(1), int64(1)
	for _, f := range factors {
		if v, ok := c.StaticValue(f); ok && v > 0 {
			div *= v
		} else {
			div *= c.info[c.find(f)].divisor
		}
		flo, fhi := c.Range(f)
		lo *= flo
		if hi > unboundedHi/max64(fhi, 1) {
			hi = unboundedHi
		} else {
			hi *= fhi
		}
	}
	inf := &c.info[d]
	inf.divisor = div
	inf.lo, inf.hi = lo, hi
	return d
}

// expand recursively replaces derived symbols by their factors and splits
// the result into a static coefficient and a sorted multiset of dynamic
// roots. Cycles cannot occur because decomp only references symbols created
// before the derived one.
func (c *Context) expand(dims []DimID) (coeff int64, roots []DimID) {
	coeff = 1
	// expanding tracks derived roots currently on the walk stack; a derived
	// dim unified into its own factor set (degenerate but constructible)
	// must expand as atomic rather than recurse forever.
	expanding := map[DimID]bool{}
	var walk func(d DimID)
	walk = func(d DimID) {
		r := c.find(d)
		if v, ok := c.StaticValue(r); ok {
			coeff *= v
			return
		}
		fs, ok := c.decomp[r]
		if !ok {
			// decomp is keyed by the id at creation time; a later Unify may
			// have left facts on a non-root id of this class.
			fs, ok = c.decomp[d]
		}
		if ok && !expanding[r] {
			expanding[r] = true
			for _, f := range fs {
				walk(f)
			}
			delete(expanding, r)
			return
		}
		roots = append(roots, r)
	}
	for _, d := range dims {
		walk(d)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	return coeff, roots
}

// ProductEqual reports whether the product of extents in as provably equals
// the product in bs. It requires FeatProduct (falling back to fully-static
// comparison otherwise).
func (c *Context) ProductEqual(as, bs []DimID) bool {
	if c.features&FeatProduct == 0 {
		pa, oka := c.staticProduct(as)
		pb, okb := c.staticProduct(bs)
		return oka && okb && pa == pb && c.features&FeatStatic != 0
	}
	ca, ra := c.expand(as)
	cb, rb := c.expand(bs)
	if ca != cb || len(ra) != len(rb) {
		return false
	}
	for i := range ra {
		if ra[i] != rb[i] {
			return false
		}
	}
	return true
}

// staticProduct multiplies fully-static dims, reporting ok=false if any dim
// is dynamic.
func (c *Context) staticProduct(dims []DimID) (int64, bool) {
	p := int64(1)
	for _, d := range dims {
		v, ok := c.StaticValue(d)
		if !ok {
			return 0, false
		}
		p *= v
	}
	return p, true
}

// NumelKey returns a canonical string identifying the symbolic element count
// of a shape — two shapes with equal keys provably have the same number of
// elements. Used by the fusion planner to group compatible loop nests.
func (c *Context) NumelKey(s Shape) string {
	coeff, roots := c.expand(s)
	parts := make([]string, 0, len(roots)+1)
	parts = append(parts, fmt.Sprintf("%d", coeff))
	for _, r := range roots {
		parts = append(parts, fmt.Sprintf("s%d", r))
	}
	return strings.Join(parts, "*")
}
