package symshape

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestStaticDimInterned(t *testing.T) {
	c := NewContext(FeatAll)
	a := c.StaticDim(128)
	b := c.StaticDim(128)
	if a != b {
		t.Fatal("static dims must be interned")
	}
	if v, ok := c.StaticValue(a); !ok || v != 128 {
		t.Fatalf("StaticValue = %d, %v", v, ok)
	}
}

func TestEqualViaUnify(t *testing.T) {
	c := NewContext(FeatAll)
	a := c.NewDim("B")
	b := c.NewDim("B'")
	if c.Equal(a, b) {
		t.Fatal("fresh symbols must not be equal")
	}
	if err := c.Unify(a, b); err != nil {
		t.Fatal(err)
	}
	if !c.Equal(a, b) {
		t.Fatal("unified symbols must be equal")
	}
}

func TestUnifyConflictingStatics(t *testing.T) {
	c := NewContext(FeatAll)
	a := c.StaticDim(2)
	b := c.StaticDim(3)
	if err := c.Unify(a, b); err == nil {
		t.Fatal("expected contradiction error")
	}
}

func TestUnifyPropagatesStatic(t *testing.T) {
	c := NewContext(FeatAll)
	a := c.NewDim("B")
	s := c.StaticDim(64)
	if err := c.Unify(a, s); err != nil {
		t.Fatal(err)
	}
	if v, ok := c.StaticValue(a); !ok || v != 64 {
		t.Fatalf("static did not propagate: %d %v", v, ok)
	}
	if !c.DivisibleBy(a, 32) {
		t.Fatal("static dim should be divisible by its factors")
	}
}

func TestTransitiveUnify(t *testing.T) {
	c := NewContext(FeatAll)
	dims := make([]DimID, 10)
	for i := range dims {
		dims[i] = c.NewDim("x")
	}
	for i := 1; i < len(dims); i++ {
		c.MustUnify(dims[i-1], dims[i])
	}
	if !c.Equal(dims[0], dims[9]) {
		t.Fatal("equality must be transitive")
	}
}

func TestFeatureGatingEquality(t *testing.T) {
	c := NewContext(FeatStaticOnly)
	a := c.NewDim("B")
	b := c.NewDim("B'")
	c.MustUnify(a, b)
	if c.Equal(a, b) {
		t.Fatal("static-only oracle must not see symbol equality")
	}
	c.SetFeatures(FeatAll)
	if !c.Equal(a, b) {
		t.Fatal("full oracle must see symbol equality")
	}
}

func TestShapeEqual(t *testing.T) {
	c := NewContext(FeatAll)
	bdim := c.NewDim("B")
	h := c.StaticDim(768)
	s1 := Shape{bdim, h}
	s2 := Shape{bdim, c.StaticDim(768)}
	if !c.ShapeEqual(s1, s2) {
		t.Fatal("shapes with same symbols must be equal")
	}
	if c.ShapeEqual(s1, Shape{bdim}) {
		t.Fatal("rank mismatch must not be equal")
	}
	if c.ShapeEqual(s1, Shape{c.NewDim("X"), h}) {
		t.Fatal("fresh symbol must not match")
	}
}

func TestDivisibility(t *testing.T) {
	c := NewContext(FeatAll)
	d := c.NewDim("H")
	c.DeclareDivisible(d, 4)
	c.DeclareDivisible(d, 6)
	if got := c.Divisor(d); got != 12 {
		t.Fatalf("Divisor = %d, want lcm 12", got)
	}
	if !c.DivisibleBy(d, 4) || !c.DivisibleBy(d, 3) || c.DivisibleBy(d, 8) {
		t.Fatal("divisibility queries wrong")
	}
	// Arithmetic facts are gated.
	c.SetFeatures(FeatEqualityOnly)
	if c.DivisibleBy(d, 4) {
		t.Fatal("divisibility must be hidden without FeatArith")
	}
}

func TestRanges(t *testing.T) {
	c := NewContext(FeatAll)
	d := c.NewDim("S")
	c.DeclareRange(d, 1, 512)
	c.DeclareRange(d, 8, 1<<40)
	lo, hi := c.Range(d)
	if lo != 8 || hi != 512 {
		t.Fatalf("Range = [%d,%d]", lo, hi)
	}
}

func TestUnifyMergesFacts(t *testing.T) {
	c := NewContext(FeatAll)
	a := c.NewDim("a")
	b := c.NewDim("b")
	c.DeclareDivisible(a, 4)
	c.DeclareRange(b, 16, 256)
	c.MustUnify(a, b)
	if !c.DivisibleBy(b, 4) {
		t.Fatal("divisibility must survive unify")
	}
	lo, hi := c.Range(a)
	if lo != 16 || hi != 256 {
		t.Fatalf("range must survive unify, got [%d,%d]", lo, hi)
	}
}

func TestProductEqualReshape(t *testing.T) {
	c := NewContext(FeatAll)
	b := c.NewDim("B")
	s := c.NewDim("S")
	h := c.StaticDim(768)
	// reshape [B,S,H] -> [BS, H]: BS is a derived product.
	bs := c.DeclareProduct("BS", []DimID{b, s})
	if !c.ProductEqual([]DimID{b, s, h}, []DimID{bs, h}) {
		t.Fatal("reshape element counts must be provably equal")
	}
	if c.ProductEqual([]DimID{b, h}, []DimID{bs, h}) {
		t.Fatal("missing factor must not be equal")
	}
	// The oracle gates product facts.
	c.SetFeatures(FeatEqualityOnly)
	if c.ProductEqual([]DimID{b, s, h}, []DimID{bs, h}) {
		t.Fatal("product facts must be hidden without FeatProduct")
	}
}

func TestDeclareProductAllStatic(t *testing.T) {
	c := NewContext(FeatAll)
	p := c.DeclareProduct("p", []DimID{c.StaticDim(4), c.StaticDim(8)})
	if v, ok := c.StaticValue(p); !ok || v != 32 {
		t.Fatalf("static product folding: %d %v", v, ok)
	}
}

func TestProductDivisibility(t *testing.T) {
	c := NewContext(FeatAll)
	b := c.NewDim("B")
	h := c.StaticDim(64)
	p := c.DeclareProduct("BH", []DimID{b, h})
	if !c.DivisibleBy(p, 64) {
		t.Fatal("product inherits static factor divisibility")
	}
}

func TestNumelKeyGroups(t *testing.T) {
	c := NewContext(FeatAll)
	b := c.NewDim("B")
	s := c.NewDim("S")
	h := c.StaticDim(256)
	k1 := c.NumelKey(Shape{b, s, h})
	k2 := c.NumelKey(Shape{s, b, h}) // commutative
	if k1 != k2 {
		t.Fatalf("NumelKey must be order independent: %q vs %q", k1, k2)
	}
	bs := c.DeclareProduct("BS", []DimID{b, s})
	k3 := c.NumelKey(Shape{bs, h})
	if k1 != k3 {
		t.Fatalf("derived product must share key: %q vs %q", k1, k3)
	}
	k4 := c.NumelKey(Shape{b, h})
	if k4 == k1 {
		t.Fatal("different element counts must differ")
	}
}

func TestBindingEvalAndConsistency(t *testing.T) {
	c := NewContext(FeatAll)
	b := c.NewDim("B")
	s := c.NewDim("S")
	h := c.StaticDim(16)
	bind := NewBinding(c)
	if err := bind.Bind(Shape{b, s, h}, []int{4, 7, 16}); err != nil {
		t.Fatal(err)
	}
	// Same symbol must rebind consistently.
	if err := bind.Bind(Shape{b, h}, []int{4, 16}); err != nil {
		t.Fatal(err)
	}
	if err := bind.Bind(Shape{b}, []int{5}); err == nil {
		t.Fatal("conflicting binding must error")
	}
	bs := c.DeclareProduct("BS", []DimID{b, s})
	got, err := bind.Eval(Shape{bs, h})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 28 || got[1] != 16 {
		t.Fatalf("Eval = %v", got)
	}
}

func TestBindingRejectsStaticMismatch(t *testing.T) {
	c := NewContext(FeatAll)
	h := c.StaticDim(16)
	bind := NewBinding(c)
	if err := bind.Bind(Shape{h}, []int{17}); err == nil {
		t.Fatal("static mismatch must error")
	}
}

func TestBindingRejectsRangeAndDivViolations(t *testing.T) {
	c := NewContext(FeatAll)
	d := c.NewDim("S")
	c.DeclareRange(d, 1, 128)
	bind := NewBinding(c)
	if err := bind.Bind(Shape{d}, []int{256}); err == nil {
		t.Fatal("range violation must error")
	}
	e := c.NewDim("E")
	c.DeclareDivisible(e, 8)
	if err := bind.Bind(Shape{e}, []int{12}); err == nil {
		t.Fatal("divisibility violation must error")
	}
	if err := bind.Bind(Shape{e}, []int{16}); err != nil {
		t.Fatal(err)
	}
}

func TestBindingUnbound(t *testing.T) {
	c := NewContext(FeatAll)
	d := c.NewDim("S")
	bind := NewBinding(c)
	if _, err := bind.Value(d); err == nil {
		t.Fatal("unbound symbol must error")
	}
}

func TestSignatureCanonicalRenaming(t *testing.T) {
	c := NewContext(FeatAll)
	b := c.NewDim("B")
	s := c.NewDim("S")
	h := c.StaticDim(768)
	sig := c.Signature([]Shape{{b, s, h}, {b, h}})
	if sig != "[d0,d1,768];[d0,768]" {
		t.Fatalf("Signature = %q", sig)
	}
	// A different context with different symbol ids must yield the same
	// signature for the same structure.
	c2 := NewContext(FeatAll)
	_ = c2.NewDim("junk")
	b2 := c2.NewDim("batch")
	s2 := c2.NewDim("seq")
	h2 := c2.StaticDim(768)
	if got := c2.Signature([]Shape{{b2, s2, h2}, {b2, h2}}); got != sig {
		t.Fatalf("signatures must be canonical: %q vs %q", got, sig)
	}
}

func TestSignatureMergesUnifiedSymbols(t *testing.T) {
	c := NewContext(FeatAll)
	a := c.NewDim("a")
	b := c.NewDim("b")
	c.MustUnify(a, b)
	sig := c.Signature([]Shape{{a}, {b}})
	if sig != "[d0];[d0]" {
		t.Fatalf("Signature = %q", sig)
	}
}

func TestConcreteSignature(t *testing.T) {
	got := ConcreteSignature([][]int{{4, 128}, {4}})
	if got != "[4,128];[4]" {
		t.Fatalf("ConcreteSignature = %q", got)
	}
}

func TestDynamicShapeNames(t *testing.T) {
	c := NewContext(FeatAll)
	s := c.DynamicShape("x", 3)
	if len(s) != 3 {
		t.Fatalf("rank %d", len(s))
	}
	str := c.String(s)
	if !strings.Contains(str, "x0") || !strings.Contains(str, "x2") {
		t.Fatalf("String = %q", str)
	}
}

// Property: Unify is commutative and idempotent w.r.t. Equal.
func TestUnifyProperties(t *testing.T) {
	f := func(order bool) bool {
		c := NewContext(FeatAll)
		a := c.NewDim("a")
		b := c.NewDim("b")
		if order {
			c.MustUnify(a, b)
		} else {
			c.MustUnify(b, a)
		}
		c.MustUnify(a, b) // idempotent
		return c.Equal(a, b) && c.Equal(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ProductEqual is reflexive for arbitrary shapes and invariant
// under factor permutation.
func TestProductEqualProperties(t *testing.T) {
	f := func(nStatic uint8, seed uint8) bool {
		c := NewContext(FeatAll)
		dims := []DimID{
			c.NewDim("a"), c.NewDim("b"),
			c.StaticDim(int64(nStatic%7) + 1),
		}
		rev := []DimID{dims[2], dims[1], dims[0]}
		return c.ProductEqual(dims, dims) && c.ProductEqual(dims, rev)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDeclareSum(t *testing.T) {
	c := NewContext(FeatAll)
	a := c.NewDim("a")
	bd := c.StaticDim(3)
	s := c.DeclareSum("a+3", []DimID{a, bd})
	bind := NewBinding(c)
	if err := bind.Bind(Shape{a}, []int{5}); err != nil {
		t.Fatal(err)
	}
	v, err := bind.Value(s)
	if err != nil || v != 8 {
		t.Fatalf("sum value = %d, %v", v, err)
	}
	// All-static sums fold.
	if p, ok := c.StaticValue(c.DeclareSum("x", []DimID{bd, c.StaticDim(4)})); !ok || p != 7 {
		t.Fatalf("static sum = %d %v", p, ok)
	}
}

func TestDeclareAffine(t *testing.T) {
	c := NewContext(FeatAll)
	s := c.NewDim("S")
	c.DeclareRange(s, 3, 128)
	// Valid conv with kernel 3: out = S - 2.
	out := c.DeclareAffine("S-2", s, 1, -2)
	bind := NewBinding(c)
	if err := bind.Bind(Shape{s}, []int{10}); err != nil {
		t.Fatal(err)
	}
	v, err := bind.Value(out)
	if err != nil || v != 8 {
		t.Fatalf("affine value = %d, %v", v, err)
	}
	lo, hi := c.Range(out)
	if lo != 1 || hi != 126 {
		t.Fatalf("affine range [%d,%d]", lo, hi)
	}
	// Static folding.
	if p, ok := c.StaticValue(c.DeclareAffine("x", c.StaticDim(5), 2, 1)); !ok || p != 11 {
		t.Fatalf("static affine = %d %v", p, ok)
	}
	// Identity returns the base symbol.
	if c.DeclareAffine("id", s, 1, 0) != s {
		t.Fatal("identity affine must return the base")
	}
}

func TestAffineNegativeValueRejected(t *testing.T) {
	c := NewContext(FeatAll)
	s := c.NewDim("S")
	out := c.DeclareAffine("S-5", s, 1, -5)
	bind := NewBinding(c)
	if err := bind.Bind(Shape{s}, []int{3}); err != nil {
		t.Fatal(err)
	}
	if _, err := bind.Value(out); err == nil {
		t.Fatal("negative affine value must error at runtime")
	}
}

func TestDeclareLikely(t *testing.T) {
	c := NewContext(FeatAll)
	d := c.NewDim("S")
	if _, ok := c.Likely(d); ok {
		t.Fatal("no likely value declared yet")
	}
	c.DeclareLikely(d, 128)
	if v, ok := c.Likely(d); !ok || v != 128 {
		t.Fatalf("Likely = %d, %v", v, ok)
	}
	// Advisory only: bindings at other values still succeed.
	b := NewBinding(c)
	if err := b.Bind(Shape{d}, []int{77}); err != nil {
		t.Fatal(err)
	}
	// Gated behind arithmetic facts.
	c.SetFeatures(FeatEqualityOnly)
	if _, ok := c.Likely(d); ok {
		t.Fatal("likely must be hidden without FeatArith")
	}
}

func TestLikelyPropagatesThroughDerivedDims(t *testing.T) {
	c := NewContext(FeatAll)
	b := c.NewDim("B")
	s := c.NewDim("S")
	c.DeclareLikely(b, 8)
	c.DeclareLikely(s, 64)
	// Product: 8*64.
	bs := c.DeclareProduct("BS", []DimID{b, s})
	if v, ok := c.Likely(bs); !ok || v != 512 {
		t.Fatalf("product likely = %d, %v", v, ok)
	}
	// Sum with a static term: 1+64+1.
	pad := c.DeclareSum("pad", []DimID{c.StaticDim(1), s, c.StaticDim(1)})
	if v, ok := c.Likely(pad); !ok || v != 66 {
		t.Fatalf("sum likely = %d, %v", v, ok)
	}
	// Affine (conv): 66 - 2.
	conv := c.DeclareAffine("conv", pad, 1, -2)
	if v, ok := c.Likely(conv); !ok || v != 64 {
		t.Fatalf("affine likely = %d, %v", v, ok)
	}
	// Quotient: 64/4.
	q := c.DeclareQuotient("q", conv, 4)
	if v, ok := c.Likely(q); !ok || v != 16 {
		t.Fatalf("quot likely = %d, %v", v, ok)
	}
	// A dim without any source likely stays unknown.
	x := c.NewDim("X")
	if _, ok := c.Likely(c.DeclareProduct("XB", []DimID{x, b})); ok {
		t.Fatal("unknown factor must block propagation")
	}
}
