package symshape

// Upper-bound resolution over the symbolic dimension algebra. Footprint
// estimation (exec) and capacity planning need "how big can this dim ever
// be?" answered at compile time: a static dim is itself, a dynamic dim is
// its declared range ceiling, and derived dims (products of split factors,
// sums of concatenated extents, quotients, affine maps) compose the bounds
// of their operands. A dimension whose bound depends on an undeclared
// range is honestly unbounded — callers get ok=false, not a guess.

// boundCeiling caps composed bounds so products of large ranges saturate
// instead of overflowing int64. Anything at or above it reports unbounded.
const boundCeiling = unboundedHi

// UpperBound returns the largest value dimension d can take, derived from
// declared ranges and the dimension algebra. ok is false when d (or any
// dimension it is derived from) has no declared upper bound.
func (c *Context) UpperBound(d DimID) (int64, bool) {
	return c.upperBound(d, map[DimID]bool{})
}

func (c *Context) upperBound(d DimID, visiting map[DimID]bool) (int64, bool) {
	r := c.find(d)
	if visiting[r] {
		return 0, false // defensive: derivation cycles are unbounded
	}
	visiting[r] = true
	defer delete(visiting, r)

	desc := c.Describe(d)
	switch desc.Kind {
	case KindStatic:
		return desc.Static, true
	case KindDynamic:
		if desc.Hi >= boundCeiling {
			return 0, false
		}
		return desc.Hi, true
	case KindProduct:
		prod := int64(1)
		for _, f := range desc.Operands {
			fb, ok := c.upperBound(f, visiting)
			if !ok || fb <= 0 {
				return 0, false
			}
			if prod > boundCeiling/fb {
				return 0, false // would overflow the ceiling
			}
			prod *= fb
		}
		return prod, true
	case KindSum:
		var sum int64
		for _, t := range desc.Operands {
			tb, ok := c.upperBound(t, visiting)
			if !ok {
				return 0, false
			}
			sum += tb
			if sum >= boundCeiling {
				return 0, false
			}
		}
		return sum, true
	case KindQuotient:
		nb, ok := c.upperBound(desc.Operands[0], visiting)
		if !ok || desc.Denom <= 0 {
			return 0, false
		}
		return nb / desc.Denom, true
	case KindAffine:
		bb, ok := c.upperBound(desc.Operands[0], visiting)
		if !ok || desc.Scale < 0 {
			return 0, false
		}
		v := desc.Scale*bb + desc.Offset
		if v < 0 || v >= boundCeiling {
			return 0, false
		}
		return v, true
	}
	return 0, false
}
