package symshape

// Affine support: convolution-style shape arithmetic produces dimensions of
// the form a*d + b (e.g. a stride-1 valid convolution maps S to S - K + 1).
// Affine dims participate in runtime shape evaluation and carry derived
// range facts; like quotients they are atomic to the product oracle.

// affine records value = Scale*val(Of) + Offset.
type affine struct {
	Of     DimID
	Scale  int64
	Offset int64
}

// DeclareAffine creates a symbol whose value is scale*of + offset. If the
// base is static the folded static symbol is returned. The caller must
// ensure the result is non-negative for all admissible values of the base
// (use DeclareRange on the base first); Binding.Value checks at run time.
func (c *Context) DeclareAffine(name string, of DimID, scale, offset int64) DimID {
	if scale == 0 {
		if offset < 0 {
			panic("symshape: affine with negative constant value")
		}
		return c.StaticDim(offset)
	}
	if v, ok := c.StaticValue(of); ok {
		r := scale*v + offset
		if r < 0 {
			panic("symshape: affine folds to negative value")
		}
		return c.StaticDim(r)
	}
	if scale == 1 && offset == 0 {
		return of
	}
	d := c.NewDim(name)
	if c.decompAffine == nil {
		c.decompAffine = map[DimID]affine{}
	}
	c.decompAffine[d] = affine{Of: of, Scale: scale, Offset: offset}
	lo, hi := c.Range(of)
	alo, ahi := scale*lo+offset, scale*hi+offset
	if scale < 0 {
		alo, ahi = ahi, alo
	}
	inf := &c.info[d]
	inf.lo = max64(alo, 0)
	inf.hi = min64(max64(ahi, 0), unboundedHi)
	return d
}

// affineOf returns the recorded affine decomposition of d, if any.
func (c *Context) affineOf(d DimID) (affine, bool) {
	if c.decompAffine == nil {
		return affine{}, false
	}
	if a, ok := c.decompAffine[c.find(d)]; ok {
		return a, true
	}
	a, ok := c.decompAffine[d]
	return a, ok
}

// Likely-value speculation: production workloads concentrate on a few hot
// shape values; BladeDISC speculatively compiles variants specialized to a
// declared likely value and dispatches on runtime equality. The fact is
// advisory — it never constrains Bind.

// DeclareLikely records that d most often takes the value v.
func (c *Context) DeclareLikely(d DimID, v int64) {
	if v <= 0 {
		panic("symshape: likely value must be positive")
	}
	if c.likely == nil {
		c.likely = map[DimID]int64{}
	}
	c.likely[c.find(d)] = v
}

// Likely returns the (declared or derived) likely value of d, if any —
// gated on FeatArith like the other value facts. Likely values propagate
// through derived dimensions: a product is likely the product of its
// factors' likely values, a sum the sum, and so on — so speculation reaches
// fused reshape/concat/conv domains, not just raw parameter dims.
func (c *Context) Likely(d DimID) (int64, bool) {
	if c.features&FeatArith == 0 {
		return 0, false
	}
	return c.likelyOf(d, 0)
}

func (c *Context) likelyOf(d DimID, depth int) (int64, bool) {
	if depth > 16 {
		return 0, false
	}
	if v, ok := c.StaticValue(d); ok {
		return v, true
	}
	if c.likely != nil {
		if v, ok := c.likely[c.find(d)]; ok {
			return v, true
		}
		if v, ok := c.likely[d]; ok {
			return v, true
		}
	}
	r := c.find(d)
	lookup := func(m map[DimID][]DimID) ([]DimID, bool) {
		if m == nil {
			return nil, false
		}
		if v, ok := m[r]; ok {
			return v, true
		}
		v, ok := m[d]
		return v, ok
	}
	if fs, ok := lookup(c.decomp); ok {
		p := int64(1)
		for _, f := range fs {
			v, ok := c.likelyOf(f, depth+1)
			if !ok {
				return 0, false
			}
			p *= v
		}
		return p, true
	}
	if ts, ok := c.sumTerms(d); ok {
		s := int64(0)
		for _, t := range ts {
			v, ok := c.likelyOf(t, depth+1)
			if !ok {
				return 0, false
			}
			s += v
		}
		return s, true
	}
	if q, ok := c.quotOf(d); ok {
		if v, ok := c.likelyOf(q.Num, depth+1); ok && v%q.Denom == 0 {
			return v / q.Denom, true
		}
		return 0, false
	}
	if a, ok := c.affineOf(d); ok {
		if v, ok := c.likelyOf(a.Of, depth+1); ok {
			r := a.Scale*v + a.Offset
			if r > 0 {
				return r, true
			}
		}
		return 0, false
	}
	return 0, false
}
