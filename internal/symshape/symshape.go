// Package symshape implements BladeDISC's cross-level symbolic shape
// representation. Tensor dimensions are symbols, not numbers; a Context
// records what is known about each symbol — a static value if any, equality
// with other symbols (union-find), product equalities (reshape preserves
// element count), divisibility, and value ranges. Every later stage (shape
// inference, fusion, codegen, the compilation cache) consults the Context
// instead of concrete shape values, which is what lets one compilation
// serve arbitrary runtime shapes.
package symshape

import (
	"fmt"
	"strings"
)

// DimID identifies a dimension symbol within a Context.
type DimID int32

// Invalid is the zero-ish sentinel for "no dimension".
const Invalid DimID = -1

// Shape is an ordered list of dimension symbols.
type Shape []DimID

// Clone returns a copy of s.
func (s Shape) Clone() Shape { return append(Shape(nil), s...) }

// Rank returns the number of dimensions.
func (s Shape) Rank() int { return len(s) }

// Features selects which classes of shape facts the Context's queries may
// use. It exists for the constraint-granularity ablation (experiment E7):
// a static-shape compiler can only reason about known values, a naive
// dynamic compiler only about symbol equality, BladeDISC about everything.
type Features uint8

const (
	// FeatStatic allows answering queries from known static values.
	FeatStatic Features = 1 << iota
	// FeatEquality allows the symbol-equality (union-find) facts.
	FeatEquality
	// FeatProduct allows product-equality facts (reshape element counts).
	FeatProduct
	// FeatArith allows divisibility and range facts.
	FeatArith

	// FeatAll enables every fact class (the BladeDISC configuration).
	FeatAll = FeatStatic | FeatEquality | FeatProduct | FeatArith
	// FeatStaticOnly models a shape-value-based compiler.
	FeatStaticOnly = FeatStatic
	// FeatEqualityOnly models symbol equality without product facts.
	FeatEqualityOnly = FeatStatic | FeatEquality
)

// dimInfo is the per-root record of everything known about a symbol.
type dimInfo struct {
	static  int64 // -1 if unknown
	divisor int64 // largest known k with k | dim; 1 if none
	lo, hi  int64 // value range; [1, maxInt] if unknown
	name    string
}

const unboundedHi = int64(1) << 40

// Context owns dimension symbols and the facts relating them.
// It is not safe for concurrent mutation.
type Context struct {
	features Features
	parent   []DimID
	rank     []int32
	info     []dimInfo
	statics  map[int64]DimID
	// decomp maps a derived symbol to the symbols whose product defines it
	// (e.g. flattened batch = B*S). Stored against the DimID at creation.
	decomp map[DimID][]DimID
	// decompSum maps a derived symbol to the symbols whose sum defines it
	// (concat extents). Allocated lazily by DeclareSum.
	decompSum map[DimID][]DimID
	// decompQuot maps a derived symbol to a quotient (SplitDim outer dims).
	// Allocated lazily by DeclareQuotient.
	decompQuot map[DimID]quot
	// decompAffine maps a derived symbol to an affine form (conv output
	// extents). Allocated lazily by DeclareAffine.
	decompAffine map[DimID]affine
	// likely maps symbols to their declared hot value (speculation).
	// Allocated lazily by DeclareLikely.
	likely map[DimID]int64
}

// NewContext returns an empty context with the given feature set.
func NewContext(f Features) *Context {
	return &Context{
		features: f,
		statics:  map[int64]DimID{},
		decomp:   map[DimID][]DimID{},
	}
}

// Features reports the feature set the context was created with.
func (c *Context) Features() Features { return c.features }

// SetFeatures replaces the feature set; used by ablation drivers to re-query
// the same facts under a weaker oracle.
func (c *Context) SetFeatures(f Features) { c.features = f }

// NumDims returns the number of symbols created so far.
func (c *Context) NumDims() int { return len(c.parent) }

// NewDim creates a fresh dynamic dimension symbol. The name is for
// diagnostics only.
func (c *Context) NewDim(name string) DimID {
	id := DimID(len(c.parent))
	c.parent = append(c.parent, id)
	c.rank = append(c.rank, 0)
	c.info = append(c.info, dimInfo{static: -1, divisor: 1, lo: 1, hi: unboundedHi, name: name})
	return id
}

// StaticDim returns the interned symbol for a known value v (v >= 0).
func (c *Context) StaticDim(v int64) DimID {
	if v < 0 {
		panic(fmt.Sprintf("symshape: negative static dim %d", v))
	}
	if id, ok := c.statics[v]; ok {
		return id
	}
	id := c.NewDim(fmt.Sprintf("c%d", v))
	inf := &c.info[id]
	inf.static = v
	inf.divisor = v
	if v == 0 {
		inf.divisor = 1
	}
	inf.lo, inf.hi = v, v
	c.statics[v] = id
	return id
}

// StaticShape interns a whole concrete shape.
func (c *Context) StaticShape(dims ...int64) Shape {
	s := make(Shape, len(dims))
	for i, d := range dims {
		s[i] = c.StaticDim(d)
	}
	return s
}

// DynamicShape creates a shape of fresh dynamic symbols named prefix0..n.
func (c *Context) DynamicShape(prefix string, rank int) Shape {
	s := make(Shape, rank)
	for i := range s {
		s[i] = c.NewDim(fmt.Sprintf("%s%d", prefix, i))
	}
	return s
}

// find returns the union-find root of d with path halving.
func (c *Context) find(d DimID) DimID {
	for c.parent[d] != d {
		c.parent[d] = c.parent[c.parent[d]]
		d = c.parent[d]
	}
	return d
}

// Root exposes the canonical representative of d.
func (c *Context) Root(d DimID) DimID { return c.find(d) }

// Unify declares a == b. It merges static values, divisibility and ranges,
// and returns an error if the merged facts are contradictory (e.g. two
// different static values).
func (c *Context) Unify(a, b DimID) error {
	ra, rb := c.find(a), c.find(b)
	if ra == rb {
		return nil
	}
	ia, ib := c.info[ra], c.info[rb]
	merged := dimInfo{name: ia.name}
	switch {
	case ia.static >= 0 && ib.static >= 0 && ia.static != ib.static:
		return fmt.Errorf("symshape: cannot unify %s=%d with %s=%d", ia.name, ia.static, ib.name, ib.static)
	case ia.static >= 0:
		merged.static = ia.static
	default:
		merged.static = ib.static
	}
	merged.divisor = lcm(ia.divisor, ib.divisor)
	merged.lo = max64(ia.lo, ib.lo)
	merged.hi = min64(ia.hi, ib.hi)
	if merged.lo > merged.hi {
		return fmt.Errorf("symshape: unify %s and %s yields empty range [%d,%d]", ia.name, ib.name, merged.lo, merged.hi)
	}
	if merged.static >= 0 {
		merged.divisor = merged.static
		if merged.static == 0 {
			merged.divisor = 1
		}
		merged.lo, merged.hi = merged.static, merged.static
	}
	// Union by rank.
	if c.rank[ra] < c.rank[rb] {
		ra, rb = rb, ra
		merged.name = c.info[ra].name
	}
	c.parent[rb] = ra
	if c.rank[ra] == c.rank[rb] {
		c.rank[ra]++
	}
	c.info[ra] = merged
	// Keep derived-dimension decompositions reachable from the new root so
	// product/sum facts survive unification (e.g. SplitDim unifies a dim
	// with the product of its split factors).
	if _, ok := c.decomp[ra]; !ok {
		if fs, ok := c.decomp[rb]; ok {
			c.decomp[ra] = fs
		}
	}
	if c.decompSum != nil {
		if _, ok := c.decompSum[ra]; !ok {
			if ts, ok := c.decompSum[rb]; ok {
				c.decompSum[ra] = ts
			}
		}
	}
	return nil
}

// MustUnify is Unify that panics on contradiction; for internal invariants.
func (c *Context) MustUnify(a, b DimID) {
	if err := c.Unify(a, b); err != nil {
		panic(err)
	}
}

// StaticValue returns the known value of d, if any.
func (c *Context) StaticValue(d DimID) (int64, bool) {
	inf := c.info[c.find(d)]
	if inf.static >= 0 {
		return inf.static, true
	}
	return 0, false
}

// IsStatic reports whether d has a known value.
func (c *Context) IsStatic(d DimID) bool {
	_, ok := c.StaticValue(d)
	return ok
}

// Equal reports whether a and b are provably the same extent under the
// context's feature set. Note that even identity (a == b) requires the
// equality feature: a shape-value-based compiler (FeatStaticOnly) sees a
// dynamic dimension as an opaque "?" with no symbol identity, which is
// exactly why such compilers cannot fuse across dynamic dims.
func (c *Context) Equal(a, b DimID) bool {
	if c.features&FeatEquality != 0 && (a == b || c.find(a) == c.find(b)) {
		return true
	}
	if c.features&FeatStatic != 0 {
		va, oka := c.StaticValue(a)
		vb, okb := c.StaticValue(b)
		if oka && okb {
			return va == vb
		}
	}
	return false
}

// ShapeEqual reports whether two shapes are provably identical
// dimension-by-dimension.
func (c *Context) ShapeEqual(a, b Shape) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !c.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// DeclareDivisible records that k divides d.
func (c *Context) DeclareDivisible(d DimID, k int64) {
	if k <= 0 {
		panic("symshape: divisor must be positive")
	}
	inf := &c.info[c.find(d)]
	inf.divisor = lcm(inf.divisor, k)
}

// Divisor returns the largest known k dividing d (1 if nothing is known, or
// if arithmetic facts are disabled).
func (c *Context) Divisor(d DimID) int64 {
	if c.features&FeatArith == 0 {
		if v, ok := c.StaticValue(d); ok && c.features&FeatStatic != 0 {
			if v == 0 {
				return 1
			}
			return v
		}
		return 1
	}
	return c.info[c.find(d)].divisor
}

// DivisibleBy reports whether d is provably divisible by k.
func (c *Context) DivisibleBy(d DimID, k int64) bool {
	if k == 1 {
		return true
	}
	if v, ok := c.StaticValue(d); ok && c.features&FeatStatic != 0 {
		return v%k == 0
	}
	return c.Divisor(d)%k == 0
}

// DeclareRange records lo <= d <= hi.
func (c *Context) DeclareRange(d DimID, lo, hi int64) {
	inf := &c.info[c.find(d)]
	inf.lo = max64(inf.lo, lo)
	inf.hi = min64(inf.hi, hi)
}

// Range returns the known [lo, hi] bounds of d.
func (c *Context) Range(d DimID) (lo, hi int64) {
	if c.features&FeatArith == 0 {
		if v, ok := c.StaticValue(d); ok {
			return v, v
		}
		return 1, unboundedHi
	}
	inf := c.info[c.find(d)]
	return inf.lo, inf.hi
}

// Name returns a printable name for d: the value for static dims, else the
// symbol name given at creation (of the current root).
func (c *Context) Name(d DimID) string {
	inf := c.info[c.find(d)]
	if inf.static >= 0 {
		return fmt.Sprintf("%d", inf.static)
	}
	if inf.name == "" {
		return fmt.Sprintf("s%d", c.find(d))
	}
	return inf.name
}

// String renders a shape like [B, 128, H].
func (c *Context) String(s Shape) string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = c.Name(d)
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

func lcm(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 1
	}
	return a / gcd(a, b) * b
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
