package symshape

// DimKind classifies what defines a dimension symbol.
type DimKind uint8

const (
	// KindDynamic is a free symbol bound at run time.
	KindDynamic DimKind = iota
	// KindStatic has a known value.
	KindStatic
	// KindProduct is the product of its operands.
	KindProduct
	// KindSum is the sum of its operands.
	KindSum
	// KindQuotient is Operands[0] / Denom.
	KindQuotient
	// KindAffine is Scale*Operands[0] + Offset.
	KindAffine
)

// DimDesc is the externally visible description of a dimension symbol,
// used by serialization and debugging tools.
type DimDesc struct {
	Kind     DimKind
	Static   int64   // KindStatic
	Operands []DimID // product factors / sum terms / quotient+affine base
	Denom    int64   // KindQuotient
	Scale    int64   // KindAffine
	Offset   int64   // KindAffine
	Divisor  int64   // declared divisibility (1 if none)
	Lo, Hi   int64   // declared range; Hi == Unbounded when open
	Likely   int64   // declared likely value (0 if none)
	Name     string
}

// Unbounded is the Hi value of a range with no declared upper bound.
const Unbounded = unboundedHi

// Describe returns the description of d's equivalence class.
func (c *Context) Describe(d DimID) DimDesc {
	r := c.find(d)
	inf := c.info[r]
	desc := DimDesc{
		Kind:    KindDynamic,
		Divisor: inf.divisor,
		Lo:      inf.lo,
		Hi:      inf.hi,
		Name:    inf.name,
	}
	if c.likely != nil {
		desc.Likely = c.likely[r]
	}
	if inf.static >= 0 {
		desc.Kind = KindStatic
		desc.Static = inf.static
		return desc
	}
	lookup := func(m map[DimID][]DimID) ([]DimID, bool) {
		if m == nil {
			return nil, false
		}
		if v, ok := m[r]; ok {
			return v, true
		}
		v, ok := m[d]
		return v, ok
	}
	if fs, ok := lookup(c.decomp); ok {
		desc.Kind = KindProduct
		desc.Operands = append([]DimID(nil), fs...)
		return desc
	}
	if ts, ok := c.sumTerms(d); ok {
		desc.Kind = KindSum
		desc.Operands = append([]DimID(nil), ts...)
		return desc
	}
	if q, ok := c.quotOf(d); ok {
		desc.Kind = KindQuotient
		desc.Operands = []DimID{q.Num}
		desc.Denom = q.Denom
		return desc
	}
	if a, ok := c.affineOf(d); ok {
		desc.Kind = KindAffine
		desc.Operands = []DimID{a.Of}
		desc.Scale = a.Scale
		desc.Offset = a.Offset
		return desc
	}
	return desc
}
