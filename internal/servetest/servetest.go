// Package servetest holds test-only helpers shared by the engine-cache
// and serving integration tests across layers (internal/serve, the public
// godisc package, internal/fleet). It deliberately imports only the
// leaf packages — exec, device, enginecache — and NOT internal/serve, so
// every serving layer can use it without an import cycle.
package servetest

import (
	"context"
	"fmt"
	"testing"
	"time"

	"godisc/internal/device"
	"godisc/internal/enginecache"
	"godisc/internal/exec"
)

// DecodeExecutable is the engine decoder the tests install: a persisted
// engine image rebuilt for the default test device (A10) with default
// exec options. Matches what the public layer wires for that config.
func DecodeExecutable(payload []byte) (*exec.Executable, error) {
	return exec.DecodeImage(payload, device.A10(), exec.DefaultOptions())
}

// EncodeExecutable serializes an engine produced by the real compile
// path. It accepts any so callers can pass their layer's Engine
// interface value without this package importing that layer.
func EncodeExecutable(e any) ([]byte, error) {
	exe, ok := e.(*exec.Executable)
	if !ok {
		return nil, fmt.Errorf("servetest: engine %T is not serializable", e)
	}
	return exe.EncodeImage()
}

// OpenCache opens a persistent engine cache in dir under the fixed test
// fingerprint, failing the test on error.
func OpenCache(t testing.TB, dir string) *enginecache.Cache {
	t.Helper()
	ec, err := enginecache.Open(dir, "serve-test")
	if err != nil {
		t.Fatalf("servetest: open engine cache: %v", err)
	}
	return ec
}

// Shutdowner is any serving layer with graceful drain semantics.
type Shutdowner interface {
	Shutdown(context.Context) error
}

// Drain gracefully shuts s down, bounded by a generous test timeout, and
// fails the test if draining errors or stalls.
func Drain(t testing.TB, s Shutdowner) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("servetest: shutdown: %v", err)
	}
}
