//go:build !race

// The zero-alloc gate. Under the race detector sync.Pool intentionally drops
// entries to widen interleavings, so frame reuse (and with it the 0 allocs/op
// guarantee) only holds in normal builds.

package kir

import (
	"fmt"
	"testing"
)

// allocGateKernels are the kernel shapes the dispatch loop must execute with
// zero heap allocations per Run/RunRange: a fused elementwise map, a
// row-reduction, and an indirect gather (ILoad-based indexing).
func allocGateKernels() []*Kernel {
	return []*Kernel{
		{
			Name:       "elementwise",
			NumBuffers: 2,
			DimNames:   []string{"n"},
			Body: []Stmt{
				SLoop{Var: "i", Extent: IDim("n"), Flags: LoopStride1, Body: []Stmt{
					SSet{Var: "v", Val: FUn{Fn: "exp", X: FLoad{Buf: 0, Idx: IVar("i")}}},
					SStore{Buf: 1, Idx: IVar("i"), Val: FBin{Fn: "add", A: FLocal("v"), B: FConst(1)}},
				}},
			},
		},
		{
			Name:       "reduce",
			NumBuffers: 2,
			DimNames:   []string{"r", "l"},
			Body: []Stmt{
				SLoop{Var: "i", Extent: IDim("r"), Body: []Stmt{
					SSet{Var: "acc", Val: FConst(0)},
					SLoop{Var: "j", Extent: IDim("l"), Flags: LoopStride1, Body: []Stmt{
						SSet{Var: "acc", Val: FBin{Fn: "add", A: FLocal("acc"),
							B: FLoad{Buf: 0, Idx: Add(Mul(IVar("i"), IDim("l")), IVar("j"))}}},
					}},
					SStore{Buf: 1, Idx: IVar("i"), Val: FLocal("acc")},
				}},
			},
		},
		{
			Name:       "gather",
			NumBuffers: 3,
			DimNames:   []string{"r", "l"},
			Body: []Stmt{
				SLoop{Var: "i", Extent: IDim("r"), Body: []Stmt{
					SSetInt{Var: "t", Val: IBin{Op: IMod,
						A: IBin{Op: IAdd,
							A: IBin{Op: IMod, A: ILoad{Buf: 1, Idx: IVar("i")}, B: IDim("r")},
							B: IDim("r")},
						B: IDim("r")}},
					SLoop{Var: "j", Extent: IDim("l"), Flags: LoopStride1, Body: []Stmt{
						SStore{Buf: 2,
							Idx: Add(Mul(IVar("i"), IDim("l")), IVar("j")),
							Val: FLoad{Buf: 0, Idx: Add(Mul(IVar("t"), IDim("l")), IVar("j"))}},
					}},
				}},
			},
		},
	}
}

func allocGateBufs(k *Kernel) ([][]float32, []int) {
	dims := make([]int, len(k.DimNames))
	for i := range dims {
		dims[i] = 32
	}
	size := 1
	for _, d := range dims {
		size *= d
	}
	bufs := make([][]float32, k.NumBuffers)
	for i := range bufs {
		bufs[i] = make([]float32, size)
		for j := range bufs[i] {
			bufs[i][j] = float32(j%7) - 3
		}
	}
	return bufs, dims
}

// TestZeroAllocDispatch asserts the tentpole's hard budget: after warmup, a
// Run (and RunRange, for partitionable kernels) performs zero heap
// allocations in both execution modes — the frame pool absorbs everything.
func TestZeroAllocDispatch(t *testing.T) {
	for _, mode := range []ExecMode{ModeBytecode, ModeClosure} {
		for _, k := range allocGateKernels() {
			t.Run(fmt.Sprintf("%s/%s", mode, k.Name), func(t *testing.T) {
				cp, err := k.FinalizeMode(mode)
				if err != nil {
					t.Fatal(err)
				}
				bufs, dims := allocGateBufs(k)
				// Warm the frame pool before counting.
				if err := cp.Run(bufs, dims); err != nil {
					t.Fatal(err)
				}
				if n := testing.AllocsPerRun(100, func() {
					if err := cp.Run(bufs, dims); err != nil {
						t.Fatal(err)
					}
				}); n != 0 {
					t.Fatalf("Run: %v allocs/op, want 0", n)
				}
				if !cp.Partitionable() {
					return
				}
				ext := cp.OuterExtent(dims)
				if n := testing.AllocsPerRun(100, func() {
					if err := cp.RunRange(bufs, dims, 0, ext/2); err != nil {
						t.Fatal(err)
					}
					if err := cp.RunRange(bufs, dims, ext/2, ext); err != nil {
						t.Fatal(err)
					}
				}); n != 0 {
					t.Fatalf("RunRange: %v allocs/op, want 0", n)
				}
			})
		}
	}
}

// TestOuterExtentZeroAlloc pins satellite #2: the parallel executor calls
// OuterExtent on every dispatch to size its grain, so it must not borrow a
// frame (or allocate at all).
func TestOuterExtentZeroAlloc(t *testing.T) {
	k := allocGateKernels()[1] // reduce: partitionable
	cp, err := k.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	_, dims := allocGateBufs(k)
	if !cp.Partitionable() {
		t.Fatal("reduce kernel should be partitionable")
	}
	if n := testing.AllocsPerRun(100, func() {
		if cp.OuterExtent(dims) != 32 {
			t.Fatal("wrong extent")
		}
	}); n != 0 {
		t.Fatalf("OuterExtent: %v allocs/op, want 0", n)
	}
}
