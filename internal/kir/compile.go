package kir

import (
	"fmt"
	"sync"

	"godisc/internal/tensor"
)

// FuncTable maps scalar function names used by FUn/FBin to implementations.
// Sharing the tensor package's functions guarantees every execution mode
// (bytecode, closures, reference interpreter) is bit-identical.
var (
	unaryFuncs = map[string]tensor.UnaryFunc{
		"neg": tensor.FnNeg, "abs": tensor.FnAbs, "exp": tensor.FnExp,
		"log": tensor.FnLog, "sqrt": tensor.FnSqrt, "rsqrt": tensor.FnRsqrt,
		"tanh": tensor.FnTanh, "erf": tensor.FnErf, "sigmoid": tensor.FnSigmoid,
		"relu": tensor.FnRelu, "gelu": tensor.FnGelu, "id": func(x float32) float32 { return x },
	}
	binaryFuncs = map[string]tensor.BinaryFunc{
		"add": tensor.FnAdd, "sub": tensor.FnSub, "mul": tensor.FnMul,
		"div": tensor.FnDiv, "pow": tensor.FnPow, "max": tensor.FnMax,
		"min": tensor.FnMin,
	}
)

// ExecMode selects how Finalize compiles the kernel AST.
type ExecMode uint8

const (
	// ModeBytecode (the default) compiles to a flat register-based
	// bytecode program run by a tight dispatch loop (vm.go), with
	// superinstructions for contiguous row patterns.
	ModeBytecode ExecMode = iota
	// ModeClosure is the previous tree-of-Go-closures execution, retained
	// as the differential oracle behind -exec-mode=closure.
	ModeClosure
)

// String implements fmt.Stringer.
func (m ExecMode) String() string {
	if m == ModeClosure {
		return "closure"
	}
	return "bytecode"
}

// ParseExecMode parses the -exec-mode flag values.
func ParseExecMode(s string) (ExecMode, error) {
	switch s {
	case "bytecode", "":
		return ModeBytecode, nil
	case "closure":
		return ModeClosure, nil
	}
	return ModeBytecode, fmt.Errorf("kir: unknown exec mode %q (have bytecode, closure)", s)
}

// Frame is the runtime activation record of a compiled kernel. In bytecode
// mode ints/floats are the flat register file; in closure mode they are the
// named-local slots.
type Frame struct {
	ints   []int
	floats []float32
	bufs   [][]float32
	dims   []int
}

// Compiled is a kernel after compilation ("machine code"). It is immutable
// and safe for concurrent Run calls (frames are pooled per kernel; every
// register is written before it is read, so frames need no zeroing between
// runs).
type Compiled struct {
	kernel  *Kernel
	mode    ExecMode
	nInts   int
	nFloats int
	frames  sync.Pool

	// Bytecode mode: the flat program (vm.go executes it).
	prog *program

	// Closure mode: the compiled closure tree, plus the range runner when
	// the kernel is partitionable.
	crun   func(*Frame)
	crange func(f *Frame, lo, hi int)

	// extent evaluates the outer loop extent from dims alone — no Frame is
	// constructed, keeping OuterExtent allocation-free on the per-request
	// partitioning path. Set (in both modes) iff the kernel body is a
	// single top-level loop with a dims-only extent.
	extent func(dims []int) int
}

// Finalize validates and compiles the kernel in the default (bytecode)
// mode. This is the compile-time half of the combined codegen: after
// Finalize, Run only binds runtime dims and buffers.
func (k *Kernel) Finalize() (*Compiled, error) { return k.FinalizeMode(ModeBytecode) }

// FinalizeMode validates and compiles the kernel for the given execution
// mode. Both modes accept exactly the same programs and produce
// bit-identical stores.
func (k *Kernel) FinalizeMode(mode ExecMode) (*Compiled, error) {
	dimSlot := map[string]int{}
	for i, d := range k.DimNames {
		if _, dup := dimSlot[d]; dup {
			return nil, fmt.Errorf("kir: kernel %s: duplicate dim %q", k.Name, d)
		}
		dimSlot[d] = i
	}
	cp := &Compiled{kernel: k, mode: mode}
	lp, partitionable := singleOuterLoop(k.Body)
	if partitionable {
		// The extent is evaluated via cp.extent rather than compiled code,
		// so its dims must be validated here.
		if d, ok := unknownDim(lp.Extent, dimSlot); !ok {
			return nil, fmt.Errorf("kir: kernel %s: unknown dim %q", k.Name, d)
		}
		cp.extent = compileDimExtent(lp.Extent, dimSlot)
	}
	if mode == ModeClosure {
		if err := cp.finalizeClosures(dimSlot, lp, partitionable); err != nil {
			return nil, err
		}
		return cp, nil
	}
	if err := cp.finalizeBytecode(dimSlot, lp, partitionable); err != nil {
		return nil, err
	}
	return cp, nil
}

// singleOuterLoop reports whether body is exactly one top-level SLoop whose
// extent is computable from dims and constants alone (no locals, no buffer
// loads) — the shape every partitionable kernel must have.
func singleOuterLoop(body []Stmt) (SLoop, bool) {
	if len(body) != 1 {
		return SLoop{}, false
	}
	lp, ok := body[0].(SLoop)
	if !ok || !dimOnly(lp.Extent) {
		return SLoop{}, false
	}
	return lp, true
}

// dimOnly reports whether e uses only IConst/IDim/IBin nodes.
func dimOnly(e IntExpr) bool {
	switch e := e.(type) {
	case IConst, IDim:
		return true
	case IBin:
		return dimOnly(e.A) && dimOnly(e.B)
	default:
		return false
	}
}

// unknownDim finds the first dim name in a dims-only expression that is not
// declared by the kernel; ok is false when one exists.
func unknownDim(e IntExpr, dimSlot map[string]int) (string, bool) {
	switch e := e.(type) {
	case IDim:
		if _, ok := dimSlot[string(e)]; !ok {
			return string(e), false
		}
	case IBin:
		if d, ok := unknownDim(e.A, dimSlot); !ok {
			return d, false
		}
		return unknownDim(e.B, dimSlot)
	}
	return "", true
}

// compileDimExtent compiles a dims-only extent expression to a closure over
// the dim values — the frame-free evaluator behind OuterExtent. The caller
// guarantees dimOnly(e); unknown dims are reported by the main compile of
// the same expression, so this evaluator maps them to 0.
func compileDimExtent(e IntExpr, dimSlot map[string]int) func(dims []int) int {
	switch e := e.(type) {
	case IConst:
		v := int(e)
		return func([]int) int { return v }
	case IDim:
		slot, ok := dimSlot[string(e)]
		if !ok {
			return func([]int) int { return 0 }
		}
		return func(dims []int) int { return dims[slot] }
	case IBin:
		a := compileDimExtent(e.A, dimSlot)
		b := compileDimExtent(e.B, dimSlot)
		switch e.Op {
		case IAdd:
			return func(d []int) int { return a(d) + b(d) }
		case ISub:
			return func(d []int) int { return a(d) - b(d) }
		case IMul:
			return func(d []int) int { return a(d) * b(d) }
		case IDiv:
			return func(d []int) int { return a(d) / b(d) }
		case IMod:
			return func(d []int) int { return a(d) % b(d) }
		case IMin:
			return func(d []int) int {
				x, y := a(d), b(d)
				if x < y {
					return x
				}
				return y
			}
		}
	}
	return func([]int) int { return 0 }
}

// MustFinalize is Finalize that panics; for statically-known-good kernels
// in tests.
func (k *Kernel) MustFinalize() *Compiled {
	cp, err := k.Finalize()
	if err != nil {
		panic(err)
	}
	return cp
}

func (cp *Compiled) checkArgs(bufs [][]float32, dims []int) error {
	if len(bufs) != cp.kernel.NumBuffers {
		return fmt.Errorf("kir: kernel %s: got %d buffers, want %d",
			cp.kernel.Name, len(bufs), cp.kernel.NumBuffers)
	}
	if len(dims) != len(cp.kernel.DimNames) {
		return fmt.Errorf("kir: kernel %s: got %d dims, want %d",
			cp.kernel.Name, len(dims), len(cp.kernel.DimNames))
	}
	return nil
}

func (cp *Compiled) getFrame(bufs [][]float32, dims []int) *Frame {
	f, _ := cp.frames.Get().(*Frame)
	if f == nil {
		f = &Frame{
			ints:   make([]int, cp.nInts),
			floats: make([]float32, cp.nFloats),
		}
	}
	f.bufs = bufs
	f.dims = dims
	return f
}

// putFrame clears the buffer and dim references before pooling so a pooled
// frame never pins caller memory — including when the kernel panicked and
// the put runs from a defer.
func (cp *Compiled) putFrame(f *Frame) {
	f.bufs = nil
	f.dims = nil
	cp.frames.Put(f)
}

// Run executes the kernel against flat buffers and positional dim values
// (aligned with Kernel.DimNames). The frame is returned to the pool even if
// the kernel panics (exec's fault handler recovers kernel panics; the frame
// must not leak with them).
func (cp *Compiled) Run(bufs [][]float32, dims []int) error {
	if err := cp.checkArgs(bufs, dims); err != nil {
		return err
	}
	f := cp.getFrame(bufs, dims)
	defer cp.putFrame(f)
	if cp.prog != nil {
		if cp.prog.loReg >= 0 {
			f.ints[cp.prog.loReg] = 0
			f.ints[cp.prog.hiReg] = cp.extent(dims)
		}
		cp.prog.exec(f)
	} else {
		cp.crun(f)
	}
	return nil
}

// Partitionable reports whether the kernel can be executed in outer-loop
// ranges (single top-level loop with a dims-only extent). Concurrent
// RunRange calls over disjoint ranges are safe as long as the ranges write
// disjoint output elements — the lowering's responsibility, declared via
// codegen's ParallelOuter flag.
func (cp *Compiled) Partitionable() bool { return cp.extent != nil }

// OuterExtent evaluates the outer loop's extent for concrete dims. It
// returns 0 when the kernel is not partitionable. The evaluation reads the
// dim values directly — no frame is built.
func (cp *Compiled) OuterExtent(dims []int) int {
	if cp.extent == nil || len(dims) != len(cp.kernel.DimNames) {
		return 0
	}
	return cp.extent(dims)
}

// RunRange executes outer-loop iterations [lo, hi) only. Iterations run in
// ascending order, exactly as a full Run would visit them, so splitting
// [0, extent) into contiguous ranges produces bit-identical stores. In
// bytecode mode the range is seeded into the program's dedicated lo/hi
// registers before dispatch.
func (cp *Compiled) RunRange(bufs [][]float32, dims []int, lo, hi int) error {
	if cp.extent == nil {
		return fmt.Errorf("kir: kernel %s: not partitionable", cp.kernel.Name)
	}
	if err := cp.checkArgs(bufs, dims); err != nil {
		return err
	}
	if n := cp.extent(dims); hi > n {
		hi = n
	}
	if lo < 0 {
		lo = 0
	}
	f := cp.getFrame(bufs, dims)
	defer cp.putFrame(f)
	if cp.prog != nil {
		f.ints[cp.prog.loReg] = lo
		f.ints[cp.prog.hiReg] = hi
		cp.prog.exec(f)
	} else {
		cp.crange(f, lo, hi)
	}
	return nil
}

// Name returns the kernel's name.
func (cp *Compiled) Name() string { return cp.kernel.Name }

// Mode returns the execution mode this kernel was compiled for.
func (cp *Compiled) Mode() ExecMode { return cp.mode }

// AST returns the kernel AST this program was compiled from. The AST is
// pure data, so it is what the engine cache serializes; decoding re-runs
// Finalize to regenerate the program.
func (cp *Compiled) AST() *Kernel { return cp.kernel }

// DimNames returns the runtime dim parameter names.
func (cp *Compiled) DimNames() []string { return cp.kernel.DimNames }

// Superinstructions reports how many whole-row superinstructions the
// bytecode compiler emitted (0 in closure mode) — exposed for tests,
// tracing and the E17 experiment.
func (cp *Compiled) Superinstructions() int {
	if cp.prog == nil {
		return 0
	}
	return cp.prog.supers
}
