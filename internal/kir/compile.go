package kir

import (
	"fmt"
	"sync"

	"godisc/internal/tensor"
)

// FuncTable maps scalar function names used by FUn/FBin to implementations.
// Sharing the tensor package's functions guarantees the compiled path is
// bit-identical to the reference interpreter.
var (
	unaryFuncs = map[string]tensor.UnaryFunc{
		"neg": tensor.FnNeg, "abs": tensor.FnAbs, "exp": tensor.FnExp,
		"log": tensor.FnLog, "sqrt": tensor.FnSqrt, "rsqrt": tensor.FnRsqrt,
		"tanh": tensor.FnTanh, "erf": tensor.FnErf, "sigmoid": tensor.FnSigmoid,
		"relu": tensor.FnRelu, "gelu": tensor.FnGelu, "id": func(x float32) float32 { return x },
	}
	binaryFuncs = map[string]tensor.BinaryFunc{
		"add": tensor.FnAdd, "sub": tensor.FnSub, "mul": tensor.FnMul,
		"div": tensor.FnDiv, "pow": tensor.FnPow, "max": tensor.FnMax,
		"min": tensor.FnMin,
	}
)

// Frame is the runtime activation record of a compiled kernel.
type Frame struct {
	ints   []int
	floats []float32
	bufs   [][]float32
	dims   []int
}

// Compiled is a kernel after closure compilation ("machine code"). It is
// immutable and safe for concurrent Run calls (frames are pooled per
// kernel; every local is written before it is read, so frames need no
// zeroing between runs).
type Compiled struct {
	kernel   *Kernel
	run      func(*Frame)
	nInts    int
	nFloats  int
	dimIndex map[string]int
	frames   sync.Pool

	// Range execution (set when the kernel body is a single top-level loop
	// whose extent depends only on dims/consts): rangeRun executes outer
	// iterations [lo,hi) and outerExtent evaluates the loop extent from dims
	// alone. This is what lets the parallel executor partition one kernel
	// across workers without recompiling it.
	rangeRun    func(f *Frame, lo, hi int)
	outerExtent func(f *Frame) int
}

type compiler struct {
	k       *Kernel
	intSlot map[string]int
	fltSlot map[string]int
	dimSlot map[string]int
	err     error
}

func (c *compiler) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("kir: kernel %s: %s", c.k.Name, fmt.Sprintf(format, args...))
	}
}

func (c *compiler) intVar(name string, define bool) int {
	if s, ok := c.intSlot[name]; ok {
		return s
	}
	if !define {
		c.fail("use of undefined int var %q", name)
		return 0
	}
	s := len(c.intSlot)
	c.intSlot[name] = s
	return s
}

func (c *compiler) fltVar(name string, define bool) int {
	if s, ok := c.fltSlot[name]; ok {
		return s
	}
	if !define {
		c.fail("use of undefined f32 local %q", name)
		return 0
	}
	s := len(c.fltSlot)
	c.fltSlot[name] = s
	return s
}

func (c *compiler) checkBuf(i int) {
	if i < 0 || i >= c.k.NumBuffers {
		c.fail("buffer index %d out of range [0,%d)", i, c.k.NumBuffers)
	}
}

// Finalize validates and closure-compiles the kernel. This is the
// compile-time half of the combined codegen: after Finalize, Run only binds
// runtime dims and buffers.
func (k *Kernel) Finalize() (*Compiled, error) {
	c := &compiler{
		k:       k,
		intSlot: map[string]int{},
		fltSlot: map[string]int{},
		dimSlot: map[string]int{},
	}
	for i, d := range k.DimNames {
		if _, dup := c.dimSlot[d]; dup {
			return nil, fmt.Errorf("kir: kernel %s: duplicate dim %q", k.Name, d)
		}
		c.dimSlot[d] = i
	}
	cp := &Compiled{kernel: k, dimIndex: c.dimSlot}
	if lp, ok := singleOuterLoop(k.Body); ok {
		// Compile the loop pieces separately so the same closures serve both
		// full runs and range runs; the full run is just range [0, extent).
		extent := c.compileInt(lp.Extent)
		slot := c.intVar(lp.Var, true)
		inner := c.compileStmts(lp.Body)
		cp.outerExtent = extent
		cp.rangeRun = func(f *Frame, lo, hi int) {
			for i := lo; i < hi; i++ {
				f.ints[slot] = i
				inner(f)
			}
		}
		cp.run = func(f *Frame) { cp.rangeRun(f, 0, extent(f)) }
	} else {
		cp.run = c.compileStmts(k.Body)
	}
	if c.err != nil {
		return nil, c.err
	}
	cp.nInts = len(c.intSlot)
	cp.nFloats = len(c.fltSlot)
	return cp, nil
}

// singleOuterLoop reports whether body is exactly one top-level SLoop whose
// extent is computable from dims and constants alone (no locals, no buffer
// loads) — the shape every partitionable kernel must have.
func singleOuterLoop(body []Stmt) (SLoop, bool) {
	if len(body) != 1 {
		return SLoop{}, false
	}
	lp, ok := body[0].(SLoop)
	if !ok || !dimOnly(lp.Extent) {
		return SLoop{}, false
	}
	return lp, true
}

// dimOnly reports whether e uses only IConst/IDim/IBin nodes.
func dimOnly(e IntExpr) bool {
	switch e := e.(type) {
	case IConst, IDim:
		return true
	case IBin:
		return dimOnly(e.A) && dimOnly(e.B)
	default:
		return false
	}
}

// MustFinalize is Finalize that panics; for statically-known-good kernels
// in tests.
func (k *Kernel) MustFinalize() *Compiled {
	cp, err := k.Finalize()
	if err != nil {
		panic(err)
	}
	return cp
}

func (c *compiler) compileStmts(ss []Stmt) func(*Frame) {
	fns := make([]func(*Frame), len(ss))
	for i, s := range ss {
		fns[i] = c.compileStmt(s)
	}
	if len(fns) == 1 {
		return fns[0]
	}
	return func(f *Frame) {
		for _, fn := range fns {
			fn(f)
		}
	}
}

func (c *compiler) compileStmt(s Stmt) func(*Frame) {
	switch s := s.(type) {
	case SLoop:
		extent := c.compileInt(s.Extent)
		slot := c.intVar(s.Var, true)
		body := c.compileStmts(s.Body)
		return func(f *Frame) {
			n := extent(f)
			for i := 0; i < n; i++ {
				f.ints[slot] = i
				body(f)
			}
		}
	case SSet:
		slot := c.fltVar(s.Var, true)
		val := c.compileExpr(s.Val)
		return func(f *Frame) { f.floats[slot] = val(f) }
	case SSetInt:
		slot := c.intVar(s.Var, true)
		val := c.compileInt(s.Val)
		return func(f *Frame) { f.ints[slot] = val(f) }
	case SStore:
		c.checkBuf(s.Buf)
		buf := s.Buf
		idx := c.compileInt(s.Idx)
		val := c.compileExpr(s.Val)
		return func(f *Frame) { f.bufs[buf][idx(f)] = val(f) }
	case SStoreInt:
		c.checkBuf(s.Buf)
		buf := s.Buf
		idx := c.compileInt(s.Idx)
		val := c.compileInt(s.Val)
		return func(f *Frame) { f.bufs[buf][idx(f)] = float32(val(f)) }
	default:
		c.fail("unknown statement %T", s)
		return func(*Frame) {}
	}
}

func (c *compiler) compileInt(e IntExpr) func(*Frame) int {
	switch e := e.(type) {
	case IConst:
		v := int(e)
		return func(*Frame) int { return v }
	case IDim:
		slot, ok := c.dimSlot[string(e)]
		if !ok {
			c.fail("unknown dim %q", string(e))
			return func(*Frame) int { return 0 }
		}
		return func(f *Frame) int { return f.dims[slot] }
	case IVar:
		slot := c.intVar(string(e), false)
		return func(f *Frame) int { return f.ints[slot] }
	case ILoad:
		c.checkBuf(e.Buf)
		buf := e.Buf
		idx := c.compileInt(e.Idx)
		return func(f *Frame) int { return int(f.bufs[buf][idx(f)]) }
	case IBin:
		a := c.compileInt(e.A)
		b := c.compileInt(e.B)
		switch e.Op {
		case IAdd:
			return func(f *Frame) int { return a(f) + b(f) }
		case ISub:
			return func(f *Frame) int { return a(f) - b(f) }
		case IMul:
			return func(f *Frame) int { return a(f) * b(f) }
		case IDiv:
			return func(f *Frame) int { return a(f) / b(f) }
		case IMod:
			return func(f *Frame) int { return a(f) % b(f) }
		case IMin:
			return func(f *Frame) int {
				x, y := a(f), b(f)
				if x < y {
					return x
				}
				return y
			}
		}
		c.fail("unknown int op %d", e.Op)
		return func(*Frame) int { return 0 }
	default:
		c.fail("unknown int expr %T", e)
		return func(*Frame) int { return 0 }
	}
}

func (c *compiler) compileExpr(e Expr) func(*Frame) float32 {
	switch e := e.(type) {
	case FConst:
		v := float32(e)
		return func(*Frame) float32 { return v }
	case FLoad:
		c.checkBuf(e.Buf)
		buf := e.Buf
		idx := c.compileInt(e.Idx)
		return func(f *Frame) float32 { return f.bufs[buf][idx(f)] }
	case FLocal:
		slot := c.fltVar(string(e), false)
		return func(f *Frame) float32 { return f.floats[slot] }
	case FUn:
		fn, ok := unaryFuncs[e.Fn]
		if !ok {
			c.fail("unknown unary fn %q", e.Fn)
			return func(*Frame) float32 { return 0 }
		}
		if cx, ok := e.X.(FConst); ok {
			// Constant folding at closure-compile time.
			v := fn(float32(cx))
			return func(*Frame) float32 { return v }
		}
		x := c.compileExpr(e.X)
		return func(f *Frame) float32 { return fn(x(f)) }
	case FBin:
		fn, ok := binaryFuncs[e.Fn]
		if !ok {
			c.fail("unknown binary fn %q", e.Fn)
			return func(*Frame) float32 { return 0 }
		}
		if ca, okA := e.A.(FConst); okA {
			if cb, okB := e.B.(FConst); okB {
				v := fn(float32(ca), float32(cb))
				return func(*Frame) float32 { return v }
			}
		}
		a := c.compileExpr(e.A)
		b := c.compileExpr(e.B)
		return func(f *Frame) float32 { return fn(a(f), b(f)) }
	case FCmp:
		a := c.compileExpr(e.A)
		b := c.compileExpr(e.B)
		var pred func(x, y float32) bool
		switch e.Op {
		case "lt":
			pred = func(x, y float32) bool { return x < y }
		case "le":
			pred = func(x, y float32) bool { return x <= y }
		case "gt":
			pred = func(x, y float32) bool { return x > y }
		case "ge":
			pred = func(x, y float32) bool { return x >= y }
		case "eq":
			pred = func(x, y float32) bool { return x == y }
		case "ne":
			pred = func(x, y float32) bool { return x != y }
		default:
			c.fail("unknown compare op %q", e.Op)
			return func(*Frame) float32 { return 0 }
		}
		return func(f *Frame) float32 {
			if pred(a(f), b(f)) {
				return 1
			}
			return 0
		}
	case FSel:
		p := c.compileExpr(e.P)
		a := c.compileExpr(e.A)
		b := c.compileExpr(e.B)
		return func(f *Frame) float32 {
			if p(f) != 0 {
				return a(f)
			}
			return b(f)
		}
	case FCastInt:
		x := c.compileInt(e.X)
		return func(f *Frame) float32 { return float32(x(f)) }
	default:
		c.fail("unknown expr %T", e)
		return func(*Frame) float32 { return 0 }
	}
}

func (cp *Compiled) checkArgs(bufs [][]float32, dims []int) error {
	if len(bufs) != cp.kernel.NumBuffers {
		return fmt.Errorf("kir: kernel %s: got %d buffers, want %d",
			cp.kernel.Name, len(bufs), cp.kernel.NumBuffers)
	}
	if len(dims) != len(cp.kernel.DimNames) {
		return fmt.Errorf("kir: kernel %s: got %d dims, want %d",
			cp.kernel.Name, len(dims), len(cp.kernel.DimNames))
	}
	return nil
}

func (cp *Compiled) getFrame(bufs [][]float32, dims []int) *Frame {
	f, _ := cp.frames.Get().(*Frame)
	if f == nil {
		f = &Frame{
			ints:   make([]int, cp.nInts),
			floats: make([]float32, cp.nFloats),
		}
	}
	f.bufs = bufs
	f.dims = dims
	return f
}

func (cp *Compiled) putFrame(f *Frame) {
	f.bufs = nil
	f.dims = nil
	cp.frames.Put(f)
}

// Run executes the kernel against flat buffers and positional dim values
// (aligned with Kernel.DimNames).
func (cp *Compiled) Run(bufs [][]float32, dims []int) error {
	if err := cp.checkArgs(bufs, dims); err != nil {
		return err
	}
	f := cp.getFrame(bufs, dims)
	cp.run(f)
	cp.putFrame(f)
	return nil
}

// Partitionable reports whether the kernel can be executed in outer-loop
// ranges (single top-level loop with a dims-only extent). Concurrent
// RunRange calls over disjoint ranges are safe as long as the ranges write
// disjoint output elements — the lowering's responsibility, declared via
// codegen's ParallelOuter flag.
func (cp *Compiled) Partitionable() bool { return cp.rangeRun != nil }

// OuterExtent evaluates the outer loop's extent for concrete dims. It
// returns 0 when the kernel is not partitionable.
func (cp *Compiled) OuterExtent(dims []int) int {
	if cp.outerExtent == nil || len(dims) != len(cp.kernel.DimNames) {
		return 0
	}
	return cp.outerExtent(&Frame{dims: dims})
}

// RunRange executes outer-loop iterations [lo, hi) only. Iterations run in
// ascending order, exactly as a full Run would visit them, so splitting
// [0, extent) into contiguous ranges produces bit-identical stores.
func (cp *Compiled) RunRange(bufs [][]float32, dims []int, lo, hi int) error {
	if cp.rangeRun == nil {
		return fmt.Errorf("kir: kernel %s: not partitionable", cp.kernel.Name)
	}
	if err := cp.checkArgs(bufs, dims); err != nil {
		return err
	}
	f := cp.getFrame(bufs, dims)
	if n := cp.outerExtent(f); hi > n {
		hi = n
	}
	if lo < 0 {
		lo = 0
	}
	cp.rangeRun(f, lo, hi)
	cp.putFrame(f)
	return nil
}

// Name returns the kernel's name.
func (cp *Compiled) Name() string { return cp.kernel.Name }

// AST returns the kernel AST this program was compiled from. The AST is
// pure data, so it is what the engine cache serializes; decoding re-runs
// Finalize to regenerate the closures.
func (cp *Compiled) AST() *Kernel { return cp.kernel }

// DimNames returns the runtime dim parameter names.
func (cp *Compiled) DimNames() []string { return cp.kernel.DimNames }
