package kir

import (
	"fmt"
	"sync"

	"godisc/internal/tensor"
)

// FuncTable maps scalar function names used by FUn/FBin to implementations.
// Sharing the tensor package's functions guarantees the compiled path is
// bit-identical to the reference interpreter.
var (
	unaryFuncs = map[string]tensor.UnaryFunc{
		"neg": tensor.FnNeg, "abs": tensor.FnAbs, "exp": tensor.FnExp,
		"log": tensor.FnLog, "sqrt": tensor.FnSqrt, "rsqrt": tensor.FnRsqrt,
		"tanh": tensor.FnTanh, "erf": tensor.FnErf, "sigmoid": tensor.FnSigmoid,
		"relu": tensor.FnRelu, "gelu": tensor.FnGelu, "id": func(x float32) float32 { return x },
	}
	binaryFuncs = map[string]tensor.BinaryFunc{
		"add": tensor.FnAdd, "sub": tensor.FnSub, "mul": tensor.FnMul,
		"div": tensor.FnDiv, "pow": tensor.FnPow, "max": tensor.FnMax,
		"min": tensor.FnMin,
	}
)

// Frame is the runtime activation record of a compiled kernel.
type Frame struct {
	ints   []int
	floats []float32
	bufs   [][]float32
	dims   []int
}

// Compiled is a kernel after closure compilation ("machine code"). It is
// immutable and safe for concurrent Run calls (frames are pooled per
// kernel; every local is written before it is read, so frames need no
// zeroing between runs).
type Compiled struct {
	kernel   *Kernel
	run      func(*Frame)
	nInts    int
	nFloats  int
	dimIndex map[string]int
	frames   sync.Pool
}

type compiler struct {
	k       *Kernel
	intSlot map[string]int
	fltSlot map[string]int
	dimSlot map[string]int
	err     error
}

func (c *compiler) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("kir: kernel %s: %s", c.k.Name, fmt.Sprintf(format, args...))
	}
}

func (c *compiler) intVar(name string, define bool) int {
	if s, ok := c.intSlot[name]; ok {
		return s
	}
	if !define {
		c.fail("use of undefined int var %q", name)
		return 0
	}
	s := len(c.intSlot)
	c.intSlot[name] = s
	return s
}

func (c *compiler) fltVar(name string, define bool) int {
	if s, ok := c.fltSlot[name]; ok {
		return s
	}
	if !define {
		c.fail("use of undefined f32 local %q", name)
		return 0
	}
	s := len(c.fltSlot)
	c.fltSlot[name] = s
	return s
}

func (c *compiler) checkBuf(i int) {
	if i < 0 || i >= c.k.NumBuffers {
		c.fail("buffer index %d out of range [0,%d)", i, c.k.NumBuffers)
	}
}

// Finalize validates and closure-compiles the kernel. This is the
// compile-time half of the combined codegen: after Finalize, Run only binds
// runtime dims and buffers.
func (k *Kernel) Finalize() (*Compiled, error) {
	c := &compiler{
		k:       k,
		intSlot: map[string]int{},
		fltSlot: map[string]int{},
		dimSlot: map[string]int{},
	}
	for i, d := range k.DimNames {
		if _, dup := c.dimSlot[d]; dup {
			return nil, fmt.Errorf("kir: kernel %s: duplicate dim %q", k.Name, d)
		}
		c.dimSlot[d] = i
	}
	body := c.compileStmts(k.Body)
	if c.err != nil {
		return nil, c.err
	}
	return &Compiled{
		kernel:   k,
		run:      body,
		nInts:    len(c.intSlot),
		nFloats:  len(c.fltSlot),
		dimIndex: c.dimSlot,
	}, nil
}

// MustFinalize is Finalize that panics; for statically-known-good kernels
// in tests.
func (k *Kernel) MustFinalize() *Compiled {
	cp, err := k.Finalize()
	if err != nil {
		panic(err)
	}
	return cp
}

func (c *compiler) compileStmts(ss []Stmt) func(*Frame) {
	fns := make([]func(*Frame), len(ss))
	for i, s := range ss {
		fns[i] = c.compileStmt(s)
	}
	if len(fns) == 1 {
		return fns[0]
	}
	return func(f *Frame) {
		for _, fn := range fns {
			fn(f)
		}
	}
}

func (c *compiler) compileStmt(s Stmt) func(*Frame) {
	switch s := s.(type) {
	case SLoop:
		extent := c.compileInt(s.Extent)
		slot := c.intVar(s.Var, true)
		body := c.compileStmts(s.Body)
		return func(f *Frame) {
			n := extent(f)
			for i := 0; i < n; i++ {
				f.ints[slot] = i
				body(f)
			}
		}
	case SSet:
		slot := c.fltVar(s.Var, true)
		val := c.compileExpr(s.Val)
		return func(f *Frame) { f.floats[slot] = val(f) }
	case SSetInt:
		slot := c.intVar(s.Var, true)
		val := c.compileInt(s.Val)
		return func(f *Frame) { f.ints[slot] = val(f) }
	case SStore:
		c.checkBuf(s.Buf)
		buf := s.Buf
		idx := c.compileInt(s.Idx)
		val := c.compileExpr(s.Val)
		return func(f *Frame) { f.bufs[buf][idx(f)] = val(f) }
	case SStoreInt:
		c.checkBuf(s.Buf)
		buf := s.Buf
		idx := c.compileInt(s.Idx)
		val := c.compileInt(s.Val)
		return func(f *Frame) { f.bufs[buf][idx(f)] = float32(val(f)) }
	default:
		c.fail("unknown statement %T", s)
		return func(*Frame) {}
	}
}

func (c *compiler) compileInt(e IntExpr) func(*Frame) int {
	switch e := e.(type) {
	case IConst:
		v := int(e)
		return func(*Frame) int { return v }
	case IDim:
		slot, ok := c.dimSlot[string(e)]
		if !ok {
			c.fail("unknown dim %q", string(e))
			return func(*Frame) int { return 0 }
		}
		return func(f *Frame) int { return f.dims[slot] }
	case IVar:
		slot := c.intVar(string(e), false)
		return func(f *Frame) int { return f.ints[slot] }
	case ILoad:
		c.checkBuf(e.Buf)
		buf := e.Buf
		idx := c.compileInt(e.Idx)
		return func(f *Frame) int { return int(f.bufs[buf][idx(f)]) }
	case IBin:
		a := c.compileInt(e.A)
		b := c.compileInt(e.B)
		switch e.Op {
		case IAdd:
			return func(f *Frame) int { return a(f) + b(f) }
		case ISub:
			return func(f *Frame) int { return a(f) - b(f) }
		case IMul:
			return func(f *Frame) int { return a(f) * b(f) }
		case IDiv:
			return func(f *Frame) int { return a(f) / b(f) }
		case IMod:
			return func(f *Frame) int { return a(f) % b(f) }
		}
		c.fail("unknown int op %d", e.Op)
		return func(*Frame) int { return 0 }
	default:
		c.fail("unknown int expr %T", e)
		return func(*Frame) int { return 0 }
	}
}

func (c *compiler) compileExpr(e Expr) func(*Frame) float32 {
	switch e := e.(type) {
	case FConst:
		v := float32(e)
		return func(*Frame) float32 { return v }
	case FLoad:
		c.checkBuf(e.Buf)
		buf := e.Buf
		idx := c.compileInt(e.Idx)
		return func(f *Frame) float32 { return f.bufs[buf][idx(f)] }
	case FLocal:
		slot := c.fltVar(string(e), false)
		return func(f *Frame) float32 { return f.floats[slot] }
	case FUn:
		fn, ok := unaryFuncs[e.Fn]
		if !ok {
			c.fail("unknown unary fn %q", e.Fn)
			return func(*Frame) float32 { return 0 }
		}
		if cx, ok := e.X.(FConst); ok {
			// Constant folding at closure-compile time.
			v := fn(float32(cx))
			return func(*Frame) float32 { return v }
		}
		x := c.compileExpr(e.X)
		return func(f *Frame) float32 { return fn(x(f)) }
	case FBin:
		fn, ok := binaryFuncs[e.Fn]
		if !ok {
			c.fail("unknown binary fn %q", e.Fn)
			return func(*Frame) float32 { return 0 }
		}
		if ca, okA := e.A.(FConst); okA {
			if cb, okB := e.B.(FConst); okB {
				v := fn(float32(ca), float32(cb))
				return func(*Frame) float32 { return v }
			}
		}
		a := c.compileExpr(e.A)
		b := c.compileExpr(e.B)
		return func(f *Frame) float32 { return fn(a(f), b(f)) }
	case FCmp:
		a := c.compileExpr(e.A)
		b := c.compileExpr(e.B)
		var pred func(x, y float32) bool
		switch e.Op {
		case "lt":
			pred = func(x, y float32) bool { return x < y }
		case "le":
			pred = func(x, y float32) bool { return x <= y }
		case "gt":
			pred = func(x, y float32) bool { return x > y }
		case "ge":
			pred = func(x, y float32) bool { return x >= y }
		case "eq":
			pred = func(x, y float32) bool { return x == y }
		case "ne":
			pred = func(x, y float32) bool { return x != y }
		default:
			c.fail("unknown compare op %q", e.Op)
			return func(*Frame) float32 { return 0 }
		}
		return func(f *Frame) float32 {
			if pred(a(f), b(f)) {
				return 1
			}
			return 0
		}
	case FSel:
		p := c.compileExpr(e.P)
		a := c.compileExpr(e.A)
		b := c.compileExpr(e.B)
		return func(f *Frame) float32 {
			if p(f) != 0 {
				return a(f)
			}
			return b(f)
		}
	case FCastInt:
		x := c.compileInt(e.X)
		return func(f *Frame) float32 { return float32(x(f)) }
	default:
		c.fail("unknown expr %T", e)
		return func(*Frame) float32 { return 0 }
	}
}

// Run executes the kernel against flat buffers and positional dim values
// (aligned with Kernel.DimNames).
func (cp *Compiled) Run(bufs [][]float32, dims []int) error {
	if len(bufs) != cp.kernel.NumBuffers {
		return fmt.Errorf("kir: kernel %s: got %d buffers, want %d",
			cp.kernel.Name, len(bufs), cp.kernel.NumBuffers)
	}
	if len(dims) != len(cp.kernel.DimNames) {
		return fmt.Errorf("kir: kernel %s: got %d dims, want %d",
			cp.kernel.Name, len(dims), len(cp.kernel.DimNames))
	}
	f, _ := cp.frames.Get().(*Frame)
	if f == nil {
		f = &Frame{
			ints:   make([]int, cp.nInts),
			floats: make([]float32, cp.nFloats),
		}
	}
	f.bufs = bufs
	f.dims = dims
	cp.run(f)
	f.bufs = nil
	f.dims = nil
	cp.frames.Put(f)
	return nil
}

// Name returns the kernel's name.
func (cp *Compiled) Name() string { return cp.kernel.Name }

// DimNames returns the runtime dim parameter names.
func (cp *Compiled) DimNames() []string { return cp.kernel.DimNames }
