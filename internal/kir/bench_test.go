package kir

import "testing"

// BenchmarkInterpreterThroughput measures the closure-compiled kernel VM on
// a fused elementwise loop — the substrate's per-element cost.
func BenchmarkInterpreterThroughput(b *testing.B) {
	k := &Kernel{
		Name:       "fused",
		NumBuffers: 2,
		DimNames:   []string{"n"},
		Body: []Stmt{
			SLoop{Var: "i", Extent: IDim("n"), Body: []Stmt{
				SSet{Var: "v", Val: FUn{Fn: "exp", X: FLoad{Buf: 0, Idx: IVar("i")}}},
				SSet{Var: "w", Val: FBin{Fn: "add", A: FLocal("v"), B: FConst(1)}},
				SStore{Buf: 1, Idx: IVar("i"), Val: FUn{Fn: "relu", X: FLocal("w")}},
			}},
		},
	}
	cp := k.MustFinalize()
	const n = 1 << 14
	in := make([]float32, n)
	out := make([]float32, n)
	b.SetBytes(n * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cp.Run([][]float32{in, out}, []int{n}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFinalize measures closure-compilation latency.
func BenchmarkFinalize(b *testing.B) {
	k := &Kernel{
		Name:       "k",
		NumBuffers: 3,
		DimNames:   []string{"R", "L"},
		Body: []Stmt{
			SLoop{Var: "r", Extent: IDim("R"), Body: []Stmt{
				SSet{Var: "acc", Val: FConst(0)},
				SLoop{Var: "j", Extent: IDim("L"), Body: []Stmt{
					SSet{Var: "acc", Val: FBin{Fn: "add", A: FLocal("acc"),
						B: FLoad{Buf: 0, Idx: Add(Mul(IVar("r"), IDim("L")), IVar("j"))}}},
				}},
				SStore{Buf: 1, Idx: IVar("r"), Val: FLocal("acc")},
			}},
		},
	}
	for i := 0; i < b.N; i++ {
		if _, err := k.Finalize(); err != nil {
			b.Fatal(err)
		}
	}
}
