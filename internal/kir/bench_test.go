package kir

import "testing"

// benchModes runs fn once per execution mode as sub-benchmarks, so
// `go test -bench BenchmarkKernel` reports the bytecode-vs-closure ablation
// side by side.
func benchModes(b *testing.B, fn func(b *testing.B, mode ExecMode)) {
	for _, mode := range []ExecMode{ModeBytecode, ModeClosure} {
		b.Run(mode.String(), func(b *testing.B) { fn(b, mode) })
	}
}

// BenchmarkKernelElementwise measures the per-element cost of a fused
// elementwise loop — the substrate's headline number. The exp/relu body
// deliberately defeats the superinstruction matcher's single-op rows, so
// this is the generic dispatch loop, not a row op.
func BenchmarkKernelElementwise(b *testing.B) {
	k := &Kernel{
		Name:       "fused",
		NumBuffers: 2,
		DimNames:   []string{"n"},
		Body: []Stmt{
			SLoop{Var: "i", Extent: IDim("n"), Body: []Stmt{
				SSet{Var: "v", Val: FUn{Fn: "exp", X: FLoad{Buf: 0, Idx: IVar("i")}}},
				SSet{Var: "w", Val: FBin{Fn: "add", A: FLocal("v"), B: FConst(1)}},
				SStore{Buf: 1, Idx: IVar("i"), Val: FUn{Fn: "relu", X: FLocal("w")}},
			}},
		},
	}
	const n = 1 << 14
	bufs := [][]float32{make([]float32, n), make([]float32, n)}
	dims := []int{n}
	benchModes(b, func(b *testing.B, mode ExecMode) {
		cp, err := k.FinalizeMode(mode)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(n * 4)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := cp.Run(bufs, dims); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkKernelAxpyRow measures a superinstruction-eligible row
// (out = in*2 + rest is a zipS): bytecode runs it as one row op per kernel,
// closures pay per-element tree walks.
func BenchmarkKernelAxpyRow(b *testing.B) {
	k := &Kernel{
		Name:       "axpy",
		NumBuffers: 2,
		DimNames:   []string{"n"},
		Body: []Stmt{
			SLoop{Var: "i", Extent: IDim("n"), Flags: LoopStride1, Body: []Stmt{
				SStore{Buf: 1, Idx: IVar("i"),
					Val: FBin{Fn: "mul", A: FLoad{Buf: 0, Idx: IVar("i")}, B: FConst(2)}},
			}},
		},
	}
	const n = 1 << 14
	bufs := [][]float32{make([]float32, n), make([]float32, n)}
	dims := []int{n}
	benchModes(b, func(b *testing.B, mode ExecMode) {
		cp, err := k.FinalizeMode(mode)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(n * 4)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := cp.Run(bufs, dims); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkKernelRowReduce measures the one-pass reduction superinstruction
// against closure-tree accumulation.
func BenchmarkKernelRowReduce(b *testing.B) {
	k := &Kernel{
		Name:       "rowsum",
		NumBuffers: 2,
		DimNames:   []string{"r", "l"},
		Body: []Stmt{
			SLoop{Var: "i", Extent: IDim("r"), Body: []Stmt{
				SSet{Var: "acc", Val: FConst(0)},
				SLoop{Var: "j", Extent: IDim("l"), Flags: LoopStride1, Body: []Stmt{
					SSet{Var: "acc", Val: FBin{Fn: "add", A: FLocal("acc"),
						B: FLoad{Buf: 0, Idx: Add(Mul(IVar("i"), IDim("l")), IVar("j"))}}},
				}},
				SStore{Buf: 1, Idx: IVar("i"), Val: FLocal("acc")},
			}},
		},
	}
	const r, l = 128, 128
	bufs := [][]float32{make([]float32, r*l), make([]float32, r*l)}
	dims := []int{r, l}
	benchModes(b, func(b *testing.B, mode ExecMode) {
		cp, err := k.FinalizeMode(mode)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(r * l * 4)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := cp.Run(bufs, dims); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFinalize measures compilation latency per mode: the bytecode
// compiler does strictly more work (register allocation + pattern matching),
// and this pins how much.
func BenchmarkFinalize(b *testing.B) {
	k := &Kernel{
		Name:       "k",
		NumBuffers: 3,
		DimNames:   []string{"R", "L"},
		Body: []Stmt{
			SLoop{Var: "r", Extent: IDim("R"), Body: []Stmt{
				SSet{Var: "acc", Val: FConst(0)},
				SLoop{Var: "j", Extent: IDim("L"), Flags: LoopStride1, Body: []Stmt{
					SSet{Var: "acc", Val: FBin{Fn: "add", A: FLocal("acc"),
						B: FLoad{Buf: 0, Idx: Add(Mul(IVar("r"), IDim("L")), IVar("j"))}}},
				}},
				SStore{Buf: 1, Idx: IVar("r"), Val: FLocal("acc")},
			}},
		},
	}
	benchModes(b, func(b *testing.B, mode ExecMode) {
		for i := 0; i < b.N; i++ {
			if _, err := k.FinalizeMode(mode); err != nil {
				b.Fatal(err)
			}
		}
	})
}
