package kir

// The bytecode VM: one tight dispatch loop over the flat register file.
// exec performs zero allocations; all state lives in the pooled Frame and
// the caller's buffers. Superinstruction cases run whole contiguous rows
// per dispatch, with the hottest scalar functions open-coded so the inner
// loops contain no indirect calls.

func (p *program) exec(f *Frame) {
	code := p.code
	ints := f.ints
	floats := f.floats
	bufs := f.bufs
	dims := f.dims
	for pc := 0; pc < len(code); {
		i := &code[pc]
		switch i.op {
		case opIConst:
			ints[i.a] = int(i.b)
		case opIDim:
			ints[i.a] = dims[i.b]
		case opIMov:
			ints[i.a] = ints[i.b]
		case opIAdd:
			ints[i.a] = ints[i.b] + ints[i.c]
		case opISub:
			ints[i.a] = ints[i.b] - ints[i.c]
		case opIMul:
			ints[i.a] = ints[i.b] * ints[i.c]
		case opIDiv:
			ints[i.a] = ints[i.b] / ints[i.c]
		case opIMod:
			ints[i.a] = ints[i.b] % ints[i.c]
		case opIMin:
			x, y := ints[i.b], ints[i.c]
			if y < x {
				x = y
			}
			ints[i.a] = x
		case opIAddImm:
			ints[i.a] = ints[i.b] + int(i.c)
		case opIMulImm:
			ints[i.a] = ints[i.b] * int(i.c)
		case opIMulAdd:
			ints[i.a] = ints[i.b]*ints[i.c] + ints[i.d]
		case opILoad:
			ints[i.a] = int(bufs[i.b][ints[i.c]])
		case opFConst:
			floats[i.a] = i.fimm
		case opFMov:
			floats[i.a] = floats[i.b]
		case opFLoad:
			floats[i.a] = bufs[i.b][ints[i.c]]
		case opFAdd:
			floats[i.a] = floats[i.b] + floats[i.c]
		case opFSub:
			floats[i.a] = floats[i.b] - floats[i.c]
		case opFMul:
			floats[i.a] = floats[i.b] * floats[i.c]
		case opFDiv:
			floats[i.a] = floats[i.b] / floats[i.c]
		case opFMax:
			// FnMax semantics: a > b ? a : b (NaN falls through to b).
			x, y := floats[i.b], floats[i.c]
			if x > y {
				floats[i.a] = x
			} else {
				floats[i.a] = y
			}
		case opFMin:
			x, y := floats[i.b], floats[i.c]
			if x < y {
				floats[i.a] = x
			} else {
				floats[i.a] = y
			}
		case opFUn:
			floats[i.a] = unaryTable[i.b](floats[i.c])
		case opFBin:
			floats[i.a] = binaryTable[i.b](floats[i.c], floats[i.d])
		case opFCmpLT:
			floats[i.a] = b2f(floats[i.b] < floats[i.c])
		case opFCmpLE:
			floats[i.a] = b2f(floats[i.b] <= floats[i.c])
		case opFCmpGT:
			floats[i.a] = b2f(floats[i.b] > floats[i.c])
		case opFCmpGE:
			floats[i.a] = b2f(floats[i.b] >= floats[i.c])
		case opFCmpEQ:
			floats[i.a] = b2f(floats[i.b] == floats[i.c])
		case opFCmpNE:
			floats[i.a] = b2f(floats[i.b] != floats[i.c])
		case opFCastInt:
			floats[i.a] = float32(ints[i.b])
		case opStore:
			bufs[i.a][ints[i.b]] = floats[i.c]
		case opStoreInt:
			bufs[i.a][ints[i.b]] = float32(ints[i.c])
		case opJump:
			pc = int(i.a)
			continue
		case opJumpIfZ:
			if floats[i.a] == 0 {
				pc = int(i.b)
				continue
			}
		case opLoopHead:
			if ints[i.a] >= ints[i.b] {
				pc = int(i.c)
				continue
			}
		case opLoopTail:
			if t := ints[i.a] + 1; t < ints[i.b] {
				ints[i.a] = t
				pc = int(i.c)
				continue
			}
		case opRowCopy:
			if n := ints[i.e]; n > 0 {
				copy(bufs[i.a][ints[i.d]:ints[i.d]+n], bufs[i.b][ints[i.d+1]:ints[i.d+1]+n])
			}
		case opRowMap1:
			if n := ints[i.e]; n > 0 {
				rowMap1(bufs[i.a][ints[i.d]:ints[i.d]+n], bufs[i.b][ints[i.d+1]:ints[i.d+1]+n], int(i.g))
			}
		case opRowZip:
			if n := ints[i.e]; n > 0 {
				rowZip(bufs[i.a][ints[i.d]:ints[i.d]+n],
					bufs[i.b][ints[i.d+1]:ints[i.d+1]+n],
					bufs[i.c][ints[i.d+2]:ints[i.d+2]+n], int(i.g))
			}
		case opRowZipSR:
			if n := ints[i.e]; n > 0 {
				rowZipS(bufs[i.a][ints[i.d]:ints[i.d]+n], bufs[i.b][ints[i.d+1]:ints[i.d+1]+n],
					floats[i.c], int(i.g), false)
			}
		case opRowZipSL:
			if n := ints[i.e]; n > 0 {
				rowZipS(bufs[i.a][ints[i.d]:ints[i.d]+n], bufs[i.b][ints[i.d+1]:ints[i.d+1]+n],
					floats[i.c], int(i.g), true)
			}
		case opRowMapZipSR:
			if n := ints[i.e]; n > 0 {
				rowMapZipS(bufs[i.a][ints[i.d]:ints[i.d]+n], bufs[i.b][ints[i.d+1]:ints[i.d+1]+n],
					floats[i.c], int(i.g), false)
			}
		case opRowMapZipSL:
			if n := ints[i.e]; n > 0 {
				rowMapZipS(bufs[i.a][ints[i.d]:ints[i.d]+n], bufs[i.b][ints[i.d+1]:ints[i.d+1]+n],
					floats[i.c], int(i.g), true)
			}
		case opRowZip2S:
			if n := ints[i.e]; n > 0 {
				rowZip2S(bufs[i.a][ints[i.d]:ints[i.d]+n], bufs[i.b][ints[i.d+1]:ints[i.d+1]+n],
					floats[i.c], floats[i.c+1], int(i.g))
			}
		case opRowMapZip:
			if n := ints[i.e]; n > 0 {
				rowMapZip(bufs[i.a][ints[i.d]:ints[i.d]+n],
					bufs[i.b][ints[i.d+1]:ints[i.d+1]+n],
					bufs[i.c][ints[i.d+2]:ints[i.d+2]+n], int(i.g))
			}
		case opRowFill:
			if n := ints[i.e]; n > 0 {
				rowFill(bufs[i.a][ints[i.d]:ints[i.d]+n], floats[i.c])
			}
		case opRowGathS:
			if n := ints[i.e]; n > 0 {
				rowGathS(bufs[i.a][ints[i.d]:ints[i.d]+n], bufs[i.b], ints[i.d+1], ints[i.c], int(i.g))
			}
		case opRowFRedSR:
			if n := ints[i.e]; n > 0 {
				floats[i.c>>16] = rowFusedRed(bufs[i.a][ints[i.d]:ints[i.d]+n],
					bufs[i.b][ints[i.d+1]:ints[i.d+1]+n],
					floats[i.c&0xffff], floats[i.c>>16], int(i.g), false)
			}
		case opRowFRedSL:
			if n := ints[i.e]; n > 0 {
				floats[i.c>>16] = rowFusedRed(bufs[i.a][ints[i.d]:ints[i.d]+n],
					bufs[i.b][ints[i.d+1]:ints[i.d+1]+n],
					floats[i.c&0xffff], floats[i.c>>16], int(i.g), true)
			}
		case opRowReduce:
			if n := ints[i.d]; n > 0 {
				floats[i.a] = rowReduce(floats[i.a], bufs[i.b][ints[i.c]:ints[i.c]+n], int(i.g))
			}
		}
		pc++
	}
}

func b2f(b bool) float32 {
	if b {
		return 1
	}
	return 0
}

func rowMap1(dst, src []float32, fn int) {
	src = src[:len(dst)]
	f := unaryTable[fn]
	for k := range dst {
		dst[k] = f(src[k])
	}
}

func rowZip(dst, x, y []float32, fn int) {
	x = x[:len(dst)]
	y = y[:len(dst)]
	switch fn {
	case bcAdd:
		for k := range dst {
			dst[k] = x[k] + y[k]
		}
	case bcSub:
		for k := range dst {
			dst[k] = x[k] - y[k]
		}
	case bcMul:
		for k := range dst {
			dst[k] = x[k] * y[k]
		}
	case bcDiv:
		for k := range dst {
			dst[k] = x[k] / y[k]
		}
	default:
		f := binaryTable[fn]
		for k := range dst {
			dst[k] = f(x[k], y[k])
		}
	}
}

func rowZipS(dst, x []float32, s float32, fn int, scalarLeft bool) {
	x = x[:len(dst)]
	if scalarLeft {
		switch fn {
		case bcAdd:
			for k := range dst {
				dst[k] = s + x[k]
			}
		case bcSub:
			for k := range dst {
				dst[k] = s - x[k]
			}
		case bcMul:
			for k := range dst {
				dst[k] = s * x[k]
			}
		case bcDiv:
			for k := range dst {
				dst[k] = s / x[k]
			}
		default:
			f := binaryTable[fn]
			for k := range dst {
				dst[k] = f(s, x[k])
			}
		}
		return
	}
	switch fn {
	case bcAdd:
		for k := range dst {
			dst[k] = x[k] + s
		}
	case bcSub:
		for k := range dst {
			dst[k] = x[k] - s
		}
	case bcMul:
		for k := range dst {
			dst[k] = x[k] * s
		}
	case bcDiv:
		for k := range dst {
			dst[k] = x[k] / s
		}
	default:
		f := binaryTable[fn]
		for k := range dst {
			dst[k] = f(x[k], s)
		}
	}
}

func rowMapZipS(dst, x []float32, s float32, fns int, scalarLeft bool) {
	x = x[:len(dst)]
	u := unaryTable[fns>>8]
	bin := fns & 0xff
	if scalarLeft {
		switch bin {
		case bcSub:
			for k := range dst {
				dst[k] = u(s - x[k])
			}
		default:
			f := binaryTable[bin]
			for k := range dst {
				dst[k] = u(f(s, x[k]))
			}
		}
		return
	}
	switch bin {
	case bcSub:
		// The softmax sweep: dst = exp(x - max).
		for k := range dst {
			dst[k] = u(x[k] - s)
		}
	case bcMul:
		for k := range dst {
			dst[k] = u(x[k] * s)
		}
	default:
		f := binaryTable[bin]
		for k := range dst {
			dst[k] = u(f(x[k], s))
		}
	}
}

func rowZip2S(dst, x []float32, s1, s2 float32, fns int) {
	x = x[:len(dst)]
	b1 := fns & 0xff
	b2 := fns >> 8
	if b1 == bcSub && b2 == bcMul {
		// The layernorm sweep: dst = (x - mean) * rstd.
		for k := range dst {
			dst[k] = (x[k] - s1) * s2
		}
		return
	}
	f1 := binaryTable[b1]
	f2 := binaryTable[b2]
	for k := range dst {
		dst[k] = f2(f1(x[k], s1), s2)
	}
}

func rowMapZip(dst, x, y []float32, fns int) {
	x = x[:len(dst)]
	y = y[:len(dst)]
	u := unaryTable[fns>>8]
	switch fns & 0xff {
	case bcAdd:
		// The bias-broadcast sweep: dst = act(x + bias_row).
		for k := range dst {
			dst[k] = u(x[k] + y[k])
		}
	case bcMul:
		for k := range dst {
			dst[k] = u(x[k] * y[k])
		}
	default:
		f := binaryTable[fns&0xff]
		for k := range dst {
			dst[k] = u(f(x[k], y[k]))
		}
	}
}

func rowFill(dst []float32, s float32) {
	for k := range dst {
		dst[k] = s
	}
}

func rowGathS(dst, src []float32, sb, stride, un int) {
	if un == bcIdUn {
		for k := range dst {
			dst[k] = src[sb]
			sb += stride
		}
		return
	}
	f := unaryTable[un]
	for k := range dst {
		dst[k] = f(src[sb])
		sb += stride
	}
}

// rowFusedRed runs dst[i] = un(bin(x[i], s)); acc = bin2(acc, dst[i]) in one
// sweep. Reusing the stored value for the fold is bit-identical to the
// scalar loop's re-evaluation because the expression is pure and the matcher
// rejects rows whose loads alias the destination.
func rowFusedRed(dst, x []float32, s, acc float32, g int, scalarLeft bool) float32 {
	x = x[:len(dst)]
	un := (g >> 8) & 0xff
	bin := g & 0xff
	bin2 := g >> 16
	// The two softmax sweeps are open-coded: scale/max and exp-shift/sum.
	if !scalarLeft && un == bcIdUn && bin == bcMul && bin2 == bcMax {
		for k, v := range x {
			t := v * s
			dst[k] = t
			if !(acc > t) {
				acc = t
			}
		}
		return acc
	}
	if !scalarLeft && un == bcExpUn && bin == bcSub && bin2 == bcAdd {
		exp := unaryTable[bcExpUn]
		for k, v := range x {
			t := exp(v - s)
			dst[k] = t
			acc += t
		}
		return acc
	}
	u := unaryTable[un]
	f2 := binaryTable[bin2]
	if bin == binNoneIdx {
		for k, v := range x {
			t := u(v)
			dst[k] = t
			acc = f2(acc, t)
		}
		return acc
	}
	f1 := binaryTable[bin]
	if scalarLeft {
		for k, v := range x {
			t := u(f1(s, v))
			dst[k] = t
			acc = f2(acc, t)
		}
		return acc
	}
	for k, v := range x {
		t := u(f1(v, s))
		dst[k] = t
		acc = f2(acc, t)
	}
	return acc
}

func rowReduce(acc float32, src []float32, fn int) float32 {
	switch fn {
	case bcAdd:
		for _, v := range src {
			acc += v
		}
	case bcMax:
		// FnMax(acc, v) keeps acc only when acc > v (NaN acc is replaced,
		// matching the closure oracle bit for bit).
		for _, v := range src {
			if !(acc > v) {
				acc = v
			}
		}
	case bcMin:
		for _, v := range src {
			if !(acc < v) {
				acc = v
			}
		}
	default:
		f := binaryTable[fn]
		for _, v := range src {
			acc = f(acc, v)
		}
	}
	return acc
}
