package kir

import "fmt"

// The closure compiler: the pre-bytecode execution engine, retained as the
// differential oracle behind ExecMode == ModeClosure. Every statement
// compiles to a Go closure over *Frame; execution is one indirect call per
// IR node per iteration. The bytecode compiler must stay bit-identical to
// this path (and both to the reference interpreter in interp.go).

type compiler struct {
	k       *Kernel
	intSlot map[string]int
	fltSlot map[string]int
	dimSlot map[string]int
	err     error
}

// finalizeClosures compiles the kernel into the closure tree, populating
// crun (always) and crange (when partitionable).
func (cp *Compiled) finalizeClosures(dimSlot map[string]int, lp SLoop, partitionable bool) error {
	c := &compiler{
		k:       cp.kernel,
		intSlot: map[string]int{},
		fltSlot: map[string]int{},
		dimSlot: dimSlot,
	}
	if partitionable {
		// Compile the loop pieces separately so the same closures serve both
		// full runs and range runs; the full run is just range [0, extent).
		slot := c.intVar(lp.Var, true)
		inner := c.compileStmts(lp.Body)
		extent := cp.extent
		cp.crange = func(f *Frame, lo, hi int) {
			for i := lo; i < hi; i++ {
				f.ints[slot] = i
				inner(f)
			}
		}
		cp.crun = func(f *Frame) { cp.crange(f, 0, extent(f.dims)) }
	} else {
		cp.crun = c.compileStmts(cp.kernel.Body)
	}
	if c.err != nil {
		return c.err
	}
	cp.nInts = len(c.intSlot)
	cp.nFloats = len(c.fltSlot)
	return nil
}

func (c *compiler) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("kir: kernel %s: %s", c.k.Name, fmt.Sprintf(format, args...))
	}
}

func (c *compiler) intVar(name string, define bool) int {
	if s, ok := c.intSlot[name]; ok {
		return s
	}
	if !define {
		c.fail("use of undefined int var %q", name)
		return 0
	}
	s := len(c.intSlot)
	c.intSlot[name] = s
	return s
}

func (c *compiler) fltVar(name string, define bool) int {
	if s, ok := c.fltSlot[name]; ok {
		return s
	}
	if !define {
		c.fail("use of undefined f32 local %q", name)
		return 0
	}
	s := len(c.fltSlot)
	c.fltSlot[name] = s
	return s
}

func (c *compiler) checkBuf(i int) {
	if i < 0 || i >= c.k.NumBuffers {
		c.fail("buffer index %d out of range [0,%d)", i, c.k.NumBuffers)
	}
}

func (c *compiler) compileStmts(ss []Stmt) func(*Frame) {
	fns := make([]func(*Frame), len(ss))
	for i, s := range ss {
		fns[i] = c.compileStmt(s)
	}
	if len(fns) == 1 {
		return fns[0]
	}
	return func(f *Frame) {
		for _, fn := range fns {
			fn(f)
		}
	}
}

func (c *compiler) compileStmt(s Stmt) func(*Frame) {
	switch s := s.(type) {
	case SLoop:
		extent := c.compileInt(s.Extent)
		slot := c.intVar(s.Var, true)
		body := c.compileStmts(s.Body)
		return func(f *Frame) {
			n := extent(f)
			for i := 0; i < n; i++ {
				f.ints[slot] = i
				body(f)
			}
		}
	case SSet:
		slot := c.fltVar(s.Var, true)
		val := c.compileExpr(s.Val)
		return func(f *Frame) { f.floats[slot] = val(f) }
	case SSetInt:
		slot := c.intVar(s.Var, true)
		val := c.compileInt(s.Val)
		return func(f *Frame) { f.ints[slot] = val(f) }
	case SStore:
		c.checkBuf(s.Buf)
		buf := s.Buf
		idx := c.compileInt(s.Idx)
		val := c.compileExpr(s.Val)
		return func(f *Frame) { f.bufs[buf][idx(f)] = val(f) }
	case SStoreInt:
		c.checkBuf(s.Buf)
		buf := s.Buf
		idx := c.compileInt(s.Idx)
		val := c.compileInt(s.Val)
		return func(f *Frame) { f.bufs[buf][idx(f)] = float32(val(f)) }
	default:
		c.fail("unknown statement %T", s)
		return func(*Frame) {}
	}
}

func (c *compiler) compileInt(e IntExpr) func(*Frame) int {
	switch e := e.(type) {
	case IConst:
		v := int(e)
		return func(*Frame) int { return v }
	case IDim:
		slot, ok := c.dimSlot[string(e)]
		if !ok {
			c.fail("unknown dim %q", string(e))
			return func(*Frame) int { return 0 }
		}
		return func(f *Frame) int { return f.dims[slot] }
	case IVar:
		slot := c.intVar(string(e), false)
		return func(f *Frame) int { return f.ints[slot] }
	case ILoad:
		c.checkBuf(e.Buf)
		buf := e.Buf
		idx := c.compileInt(e.Idx)
		return func(f *Frame) int { return int(f.bufs[buf][idx(f)]) }
	case IBin:
		a := c.compileInt(e.A)
		b := c.compileInt(e.B)
		switch e.Op {
		case IAdd:
			return func(f *Frame) int { return a(f) + b(f) }
		case ISub:
			return func(f *Frame) int { return a(f) - b(f) }
		case IMul:
			return func(f *Frame) int { return a(f) * b(f) }
		case IDiv:
			return func(f *Frame) int { return a(f) / b(f) }
		case IMod:
			return func(f *Frame) int { return a(f) % b(f) }
		case IMin:
			return func(f *Frame) int {
				x, y := a(f), b(f)
				if x < y {
					return x
				}
				return y
			}
		}
		c.fail("unknown int op %d", e.Op)
		return func(*Frame) int { return 0 }
	default:
		c.fail("unknown int expr %T", e)
		return func(*Frame) int { return 0 }
	}
}

func (c *compiler) compileExpr(e Expr) func(*Frame) float32 {
	switch e := e.(type) {
	case FConst:
		v := float32(e)
		return func(*Frame) float32 { return v }
	case FLoad:
		c.checkBuf(e.Buf)
		buf := e.Buf
		idx := c.compileInt(e.Idx)
		return func(f *Frame) float32 { return f.bufs[buf][idx(f)] }
	case FLocal:
		slot := c.fltVar(string(e), false)
		return func(f *Frame) float32 { return f.floats[slot] }
	case FUn:
		fn, ok := unaryFuncs[e.Fn]
		if !ok {
			c.fail("unknown unary fn %q", e.Fn)
			return func(*Frame) float32 { return 0 }
		}
		if cx, ok := e.X.(FConst); ok {
			// Constant folding at closure-compile time.
			v := fn(float32(cx))
			return func(*Frame) float32 { return v }
		}
		x := c.compileExpr(e.X)
		return func(f *Frame) float32 { return fn(x(f)) }
	case FBin:
		fn, ok := binaryFuncs[e.Fn]
		if !ok {
			c.fail("unknown binary fn %q", e.Fn)
			return func(*Frame) float32 { return 0 }
		}
		if ca, okA := e.A.(FConst); okA {
			if cb, okB := e.B.(FConst); okB {
				v := fn(float32(ca), float32(cb))
				return func(*Frame) float32 { return v }
			}
		}
		a := c.compileExpr(e.A)
		b := c.compileExpr(e.B)
		return func(f *Frame) float32 { return fn(a(f), b(f)) }
	case FCmp:
		a := c.compileExpr(e.A)
		b := c.compileExpr(e.B)
		var pred func(x, y float32) bool
		switch e.Op {
		case "lt":
			pred = func(x, y float32) bool { return x < y }
		case "le":
			pred = func(x, y float32) bool { return x <= y }
		case "gt":
			pred = func(x, y float32) bool { return x > y }
		case "ge":
			pred = func(x, y float32) bool { return x >= y }
		case "eq":
			pred = func(x, y float32) bool { return x == y }
		case "ne":
			pred = func(x, y float32) bool { return x != y }
		default:
			c.fail("unknown compare op %q", e.Op)
			return func(*Frame) float32 { return 0 }
		}
		return func(f *Frame) float32 {
			if pred(a(f), b(f)) {
				return 1
			}
			return 0
		}
	case FSel:
		p := c.compileExpr(e.P)
		a := c.compileExpr(e.A)
		b := c.compileExpr(e.B)
		return func(f *Frame) float32 {
			if p(f) != 0 {
				return a(f)
			}
			return b(f)
		}
	case FCastInt:
		x := c.compileInt(e.X)
		return func(f *Frame) float32 { return float32(x(f)) }
	default:
		c.fail("unknown expr %T", e)
		return func(*Frame) float32 { return 0 }
	}
}
