package kir

import (
	"strings"
	"testing"
)

// super_test pins the superinstruction matcher: each row kind must collapse
// its canonical loop shape into a single instruction, wrong hints must fall
// back to generic code without changing results, and the vec4 de-unroller
// must fold unrolled lanes back into one whole-row op.

func stride1Row(body []Stmt) *Kernel {
	return &Kernel{
		Name:       "row",
		NumBuffers: 3,
		DimNames:   []string{"n"},
		Body: []Stmt{
			SLoop{Var: "i", Extent: IDim("n"), Flags: LoopStride1, Body: body},
		},
	}
}

func requireSuper(t *testing.T, k *Kernel, wantOp string) *Compiled {
	t.Helper()
	cp, err := k.FinalizeMode(ModeBytecode)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Superinstructions() == 0 {
		t.Fatalf("no superinstruction emitted; disassembly:\n%s", cp.Disassemble())
	}
	if dis := cp.Disassemble(); !strings.Contains(dis, wantOp) {
		t.Fatalf("disassembly missing %q:\n%s", wantOp, dis)
	}
	return cp
}

func TestSuperinstructionMatching(t *testing.T) {
	load := FLoad{Buf: 0, Idx: IVar("i")}
	cases := []struct {
		name string
		body []Stmt
		op   string
	}{
		{"copy", []Stmt{
			SStore{Buf: 1, Idx: IVar("i"), Val: load},
		}, "row.copy"},
		{"map1", []Stmt{
			SStore{Buf: 1, Idx: IVar("i"), Val: FUn{Fn: "exp", X: load}},
		}, "row.map1"},
		{"zip", []Stmt{
			SStore{Buf: 2, Idx: IVar("i"),
				Val: FBin{Fn: "add", A: load, B: FLoad{Buf: 1, Idx: IVar("i")}}},
		}, "row.zip"},
		{"zipsr", []Stmt{
			SStore{Buf: 1, Idx: IVar("i"), Val: FBin{Fn: "mul", A: load, B: FConst(2)}},
		}, "row.zipsr"},
		{"zipsl", []Stmt{
			SStore{Buf: 1, Idx: IVar("i"), Val: FBin{Fn: "sub", A: FConst(2), B: load}},
		}, "row.zipsl"},
		{"mapzips via local", []Stmt{
			SSet{Var: "t", Val: FBin{Fn: "sub", A: load, B: FConst(1)}},
			SStore{Buf: 1, Idx: IVar("i"), Val: FUn{Fn: "exp", X: FLocal("t")}},
		}, "row.mapzipsr"},
		{"zip2s", []Stmt{
			SStore{Buf: 1, Idx: IVar("i"),
				Val: FBin{Fn: "max", A: FBin{Fn: "mul", A: load, B: FConst(3)}, B: FConst(0)}},
		}, "row.zip2s"},
		{"same-buffer copy demotes to map1 id", []Stmt{
			SStore{Buf: 0, Idx: Add(IVar("i"), IConst(0)), Val: load},
		}, "row.map1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			requireSuper(t, stride1Row(tc.body), tc.op)
		})
	}
}

func TestSuperinstructionReduce(t *testing.T) {
	k := &Kernel{
		Name:       "rowsum",
		NumBuffers: 2,
		DimNames:   []string{"r", "l"},
		Body: []Stmt{
			SLoop{Var: "i", Extent: IDim("r"), Body: []Stmt{
				SSet{Var: "acc", Val: FConst(0)},
				SLoop{Var: "j", Extent: IDim("l"), Flags: LoopStride1, Body: []Stmt{
					SSet{Var: "acc", Val: FBin{Fn: "add", A: FLocal("acc"),
						B: FLoad{Buf: 0, Idx: Add(Mul(IVar("i"), IDim("l")), IVar("j"))}}},
				}},
				SStore{Buf: 1, Idx: IVar("i"), Val: FLocal("acc")},
			}},
		},
	}
	requireSuper(t, k, "row.reduce")
}

// TestSuperinstructionUnrolled checks the de-unroller: a 4-lane unrolled body
// (the shape the vec4 specialization lowers to) folds back into one row op
// covering 4*extent elements.
func TestSuperinstructionUnrolled(t *testing.T) {
	lane := func(u int) []Stmt {
		return []Stmt{
			SSetInt{Var: "f", Val: Add(Mul(IVar("i"), IConst(4)), IConst(u))},
			SStore{Buf: 1, Idx: IVar("f"),
				Val: FBin{Fn: "add", A: FLoad{Buf: 0, Idx: IVar("f")}, B: FConst(1)}},
		}
	}
	var body []Stmt
	for u := 0; u < 4; u++ {
		body = append(body, lane(u)...)
	}
	k := &Kernel{
		Name:       "vec4",
		NumBuffers: 2,
		DimNames:   []string{"q"}, // extent in groups of 4
		Body: []Stmt{
			SLoop{Var: "i", Extent: IDim("q"), Flags: LoopStride1, Body: body},
		},
	}
	cp := requireSuper(t, k, "row.zipsr")
	// 3 groups of 4 → 12 elements processed by the single row op.
	in := make([]float32, 12)
	out := make([]float32, 12)
	for j := range in {
		in[j] = float32(j)
	}
	if err := cp.Run([][]float32{in, out}, []int{3}); err != nil {
		t.Fatal(err)
	}
	for j := range out {
		if out[j] != float32(j)+1 {
			t.Fatalf("out[%d] = %v, want %v", j, out[j], float32(j)+1)
		}
	}
}

// TestSuperinstructionWrongHintFallback feeds stride-1-flagged loops whose
// bodies do NOT match any row pattern; the matcher must reject them (hints
// are advisory, structure is authoritative) and the generic loop must still
// produce interpreter-identical results.
func TestSuperinstructionWrongHintFallback(t *testing.T) {
	cases := []struct {
		name string
		body []Stmt
	}{
		{"non-affine index", []Stmt{
			SStore{Buf: 1, Idx: IBin{Op: IMod, A: Mul(IVar("i"), IConst(2)), B: IDim("n")},
				Val: FLoad{Buf: 0, Idx: IVar("i")}},
		}},
		{"local escapes loop", []Stmt{
			SSet{Var: "esc", Val: FLoad{Buf: 0, Idx: IVar("i")}},
			SStore{Buf: 1, Idx: IVar("i"), Val: FLocal("esc")},
			SStore{Buf: 2, Idx: IVar("i"), Val: FLocal("esc")},
		}},
		{"two stores", []Stmt{
			SStore{Buf: 1, Idx: IVar("i"), Val: FLoad{Buf: 0, Idx: IVar("i")}},
			SStore{Buf: 2, Idx: IVar("i"), Val: FConst(1)},
		}},
		{"select body", []Stmt{
			SStore{Buf: 1, Idx: IVar("i"),
				Val: FSel{P: FCmp{Op: "gt", A: FLoad{Buf: 0, Idx: IVar("i")}, B: FConst(0)},
					A: FConst(1), B: FConst(-1)}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := stride1Row(tc.body)
			cp, err := k.FinalizeMode(ModeBytecode)
			if err != nil {
				t.Fatal(err)
			}
			if tc.name != "local escapes loop" && strings.Contains(cp.Disassemble(), "row.") {
				// (the escape case may legitimately match nothing or part;
				// the others must not emit any row op)
				t.Fatalf("unexpected superinstruction:\n%s", cp.Disassemble())
			}
			if msg := checkDifferential(k, []int{17}, 42); msg != "" {
				t.Fatalf("fallback diverged: %s", msg)
			}
		})
	}
}

// TestSuperinstructionNewKinds pins the PR 8 additions: vector-vector
// un∘bin fusion, row fills, strided gathers with symbolic strides, and
// buffer-loaded scalars — each must collapse to its row op AND stay
// bit-identical across interpreter/bytecode/closure.
func TestSuperinstructionNewKinds(t *testing.T) {
	load := FLoad{Buf: 0, Idx: IVar("i")}
	// gathsRow loops i over m with buffers sized n*m so strided reads
	// (i*2, i*n+1) stay in bounds.
	gathsRow := func(body []Stmt) *Kernel {
		return &Kernel{
			Name:       "gaths",
			NumBuffers: 3,
			DimNames:   []string{"n", "m"},
			Body: []Stmt{
				SLoop{Var: "i", Extent: IDim("m"), Flags: LoopStride1, Body: body},
			},
		}
	}
	cases := []struct {
		name string
		k    *Kernel
		dims []int
		op   string
	}{
		{"mapzip", stride1Row([]Stmt{
			SStore{Buf: 2, Idx: IVar("i"),
				Val: FUn{Fn: "relu", X: FBin{Fn: "add", A: load, B: FLoad{Buf: 1, Idx: IVar("i")}}}},
		}), []int{13}, "row.mapzip"},
		{"fill const", stride1Row([]Stmt{
			SStore{Buf: 1, Idx: IVar("i"), Val: FConst(3)},
		}), []int{13}, "row.fill"},
		{"fill from invariant load", stride1Row([]Stmt{
			SStore{Buf: 1, Idx: IVar("i"), Val: FLoad{Buf: 0, Idx: IConst(0)}},
		}), []int{13}, "row.fill"},
		{"gaths const stride", gathsRow([]Stmt{
			SStore{Buf: 1, Idx: IVar("i"),
				Val: FLoad{Buf: 0, Idx: Mul(IVar("i"), IConst(2))}},
		}), []int{13, 5}, "row.gaths"},
		{"gaths symbolic stride", gathsRow([]Stmt{
			SStore{Buf: 1, Idx: IVar("i"),
				Val: FLoad{Buf: 0, Idx: Add(Mul(IVar("i"), IDim("n")), IConst(1))}},
		}), []int{13, 5}, "row.gaths"},
		{"gaths unary", gathsRow([]Stmt{
			SStore{Buf: 1, Idx: IVar("i"),
				Val: FUn{Fn: "exp", X: FLoad{Buf: 0, Idx: Mul(IVar("i"), IDim("n"))}}},
		}), []int{13, 5}, "row.gaths"},
		{"zipsr scalar from buffer", stride1Row([]Stmt{
			SStore{Buf: 1, Idx: IVar("i"),
				Val: FBin{Fn: "add", A: load, B: FLoad{Buf: 2, Idx: IConst(0)}}},
		}), []int{13}, "row.zipsr"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			requireSuper(t, tc.k, tc.op)
			if msg := checkDifferential(tc.k, tc.dims, 7); msg != "" {
				t.Fatalf("diverged: %s", msg)
			}
		})
	}
	// A "scalar" load from the row's own destination buffer is not loop
	// invariant once the row starts storing — must NOT match any row op.
	alias := stride1Row([]Stmt{
		SStore{Buf: 1, Idx: IVar("i"),
			Val: FBin{Fn: "add", A: load, B: FLoad{Buf: 1, Idx: IConst(0)}}},
	})
	cp, err := alias.FinalizeMode(ModeBytecode)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(cp.Disassemble(), "row.") {
		t.Fatalf("aliasing scalar load matched a row op:\n%s", cp.Disassemble())
	}
	if msg := checkDifferential(alias, []int{13}, 7); msg != "" {
		t.Fatalf("alias fallback diverged: %s", msg)
	}
}

// TestSuperinstructionStoreReduce pins the fused store+reduce sweep
// (softmax's exp(x-m) sweep that also accumulates the sum).
func TestSuperinstructionStoreReduce(t *testing.T) {
	load := FLoad{Buf: 0, Idx: IVar("i")}
	fused := func(body []Stmt) *Kernel {
		k := stride1Row(body)
		k.Body = []Stmt{
			SSet{Var: "acc", Val: FConst(0)},
			k.Body[0],
			SStore{Buf: 2, Idx: IConst(0), Val: FLocal("acc")},
		}
		return k
	}
	step := func(val Expr) []Stmt {
		return []Stmt{
			SStore{Buf: 1, Idx: IVar("i"), Val: val},
			SSet{Var: "acc", Val: FBin{Fn: "add", A: FLocal("acc"), B: val}},
		}
	}
	cases := []struct {
		name string
		val  Expr
		op   string
	}{
		{"softmax sweep", FUn{Fn: "exp", X: FBin{Fn: "sub", A: load, B: FConst(1)}}, "row.fredsr"},
		{"bin none", FUn{Fn: "exp", X: load}, "row.fredsr"},
		{"plain copy accumulate", load, "row.fredsr"},
		{"scalar left", FBin{Fn: "sub", A: FConst(5), B: load}, "row.fredsl"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := fused(step(tc.val))
			requireSuper(t, k, tc.op)
			if msg := checkDifferential(k, []int{13}, 11); msg != "" {
				t.Fatalf("diverged: %s", msg)
			}
		})
	}
	t.Run("rejections", func(t *testing.T) {
		rejects := []struct {
			name string
			body []Stmt
		}{
			// The store writes the buffer the vector load reads: the
			// closure oracle re-evaluates the element expression after
			// the store, so fusing would change semantics.
			{"store aliases load", func() []Stmt {
				v := FUn{Fn: "exp", X: FLoad{Buf: 0, Idx: IVar("i")}}
				return []Stmt{
					SStore{Buf: 0, Idx: IVar("i"), Val: v},
					SSet{Var: "acc", Val: FBin{Fn: "add", A: FLocal("acc"), B: v}},
				}
			}()},
			// Accumulator update folds a DIFFERENT expression than the
			// stored value.
			{"mismatched accumulate", []Stmt{
				SStore{Buf: 1, Idx: IVar("i"), Val: FUn{Fn: "exp", X: load}},
				SSet{Var: "acc", Val: FBin{Fn: "add", A: FLocal("acc"), B: load}},
			}},
		}
		for _, rc := range rejects {
			k := fused(rc.body)
			cp, err := k.FinalizeMode(ModeBytecode)
			if err != nil {
				t.Fatal(err)
			}
			if strings.Contains(cp.Disassemble(), "row.fred") {
				t.Fatalf("%s: fused despite hazard:\n%s", rc.name, cp.Disassemble())
			}
			if msg := checkDifferential(k, []int{13}, 11); msg != "" {
				t.Fatalf("%s: fallback diverged: %s", rc.name, msg)
			}
		}
	})
}
