package kir

import "fmt"

// Interpret executes the kernel AST directly — a deliberately naive
// tree-walking reference evaluator with map-based environments, used by the
// differential suites and fuzzer as the semantics oracle for both compiled
// modes. It shares the scalar function tables, so agreement is bitwise.
func Interpret(k *Kernel, bufs [][]float32, dims []int) error {
	if len(bufs) != k.NumBuffers {
		return fmt.Errorf("kir: interpret %s: got %d buffers, want %d", k.Name, len(bufs), k.NumBuffers)
	}
	if len(dims) != len(k.DimNames) {
		return fmt.Errorf("kir: interpret %s: got %d dims, want %d", k.Name, len(dims), len(k.DimNames))
	}
	it := &interp{
		k:    k,
		bufs: bufs,
		dims: map[string]int{},
		ints: map[string]int{},
		flts: map[string]float32{},
	}
	for i, d := range k.DimNames {
		it.dims[d] = dims[i]
	}
	return it.stmts(k.Body)
}

type interp struct {
	k    *Kernel
	bufs [][]float32
	dims map[string]int
	ints map[string]int
	flts map[string]float32
}

func (it *interp) stmts(ss []Stmt) error {
	for _, s := range ss {
		if err := it.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (it *interp) stmt(s Stmt) error {
	switch s := s.(type) {
	case SLoop:
		n, err := it.intVal(s.Extent)
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			it.ints[s.Var] = i
			if err := it.stmts(s.Body); err != nil {
				return err
			}
		}
		return nil
	case SSet:
		v, err := it.fltVal(s.Val)
		if err != nil {
			return err
		}
		it.flts[s.Var] = v
		return nil
	case SSetInt:
		v, err := it.intVal(s.Val)
		if err != nil {
			return err
		}
		it.ints[s.Var] = v
		return nil
	case SStore:
		idx, err := it.intVal(s.Idx)
		if err != nil {
			return err
		}
		v, err := it.fltVal(s.Val)
		if err != nil {
			return err
		}
		if s.Buf < 0 || s.Buf >= len(it.bufs) {
			return fmt.Errorf("kir: interpret %s: buffer %d out of range", it.k.Name, s.Buf)
		}
		it.bufs[s.Buf][idx] = v
		return nil
	case SStoreInt:
		idx, err := it.intVal(s.Idx)
		if err != nil {
			return err
		}
		v, err := it.intVal(s.Val)
		if err != nil {
			return err
		}
		if s.Buf < 0 || s.Buf >= len(it.bufs) {
			return fmt.Errorf("kir: interpret %s: buffer %d out of range", it.k.Name, s.Buf)
		}
		it.bufs[s.Buf][idx] = float32(v)
		return nil
	default:
		return fmt.Errorf("kir: interpret %s: unknown statement %T", it.k.Name, s)
	}
}

func (it *interp) intVal(e IntExpr) (int, error) {
	switch e := e.(type) {
	case IConst:
		return int(e), nil
	case IDim:
		v, ok := it.dims[string(e)]
		if !ok {
			return 0, fmt.Errorf("kir: interpret %s: unknown dim %q", it.k.Name, string(e))
		}
		return v, nil
	case IVar:
		v, ok := it.ints[string(e)]
		if !ok {
			return 0, fmt.Errorf("kir: interpret %s: undefined int var %q", it.k.Name, string(e))
		}
		return v, nil
	case ILoad:
		if e.Buf < 0 || e.Buf >= len(it.bufs) {
			return 0, fmt.Errorf("kir: interpret %s: buffer %d out of range", it.k.Name, e.Buf)
		}
		idx, err := it.intVal(e.Idx)
		if err != nil {
			return 0, err
		}
		return int(it.bufs[e.Buf][idx]), nil
	case IBin:
		a, err := it.intVal(e.A)
		if err != nil {
			return 0, err
		}
		b, err := it.intVal(e.B)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case IAdd:
			return a + b, nil
		case ISub:
			return a - b, nil
		case IMul:
			return a * b, nil
		case IDiv:
			return a / b, nil
		case IMod:
			return a % b, nil
		case IMin:
			if a < b {
				return a, nil
			}
			return b, nil
		}
		return 0, fmt.Errorf("kir: interpret %s: unknown int op %d", it.k.Name, e.Op)
	default:
		return 0, fmt.Errorf("kir: interpret %s: unknown int expr %T", it.k.Name, e)
	}
}

func (it *interp) fltVal(e Expr) (float32, error) {
	switch e := e.(type) {
	case FConst:
		return float32(e), nil
	case FLoad:
		if e.Buf < 0 || e.Buf >= len(it.bufs) {
			return 0, fmt.Errorf("kir: interpret %s: buffer %d out of range", it.k.Name, e.Buf)
		}
		idx, err := it.intVal(e.Idx)
		if err != nil {
			return 0, err
		}
		return it.bufs[e.Buf][idx], nil
	case FLocal:
		v, ok := it.flts[string(e)]
		if !ok {
			return 0, fmt.Errorf("kir: interpret %s: undefined f32 local %q", it.k.Name, string(e))
		}
		return v, nil
	case FUn:
		fn, ok := unaryFuncs[e.Fn]
		if !ok {
			return 0, fmt.Errorf("kir: interpret %s: unknown unary fn %q", it.k.Name, e.Fn)
		}
		x, err := it.fltVal(e.X)
		if err != nil {
			return 0, err
		}
		return fn(x), nil
	case FBin:
		fn, ok := binaryFuncs[e.Fn]
		if !ok {
			return 0, fmt.Errorf("kir: interpret %s: unknown binary fn %q", it.k.Name, e.Fn)
		}
		a, err := it.fltVal(e.A)
		if err != nil {
			return 0, err
		}
		b, err := it.fltVal(e.B)
		if err != nil {
			return 0, err
		}
		return fn(a, b), nil
	case FCmp:
		a, err := it.fltVal(e.A)
		if err != nil {
			return 0, err
		}
		b, err := it.fltVal(e.B)
		if err != nil {
			return 0, err
		}
		var p bool
		switch e.Op {
		case "lt":
			p = a < b
		case "le":
			p = a <= b
		case "gt":
			p = a > b
		case "ge":
			p = a >= b
		case "eq":
			p = a == b
		case "ne":
			p = a != b
		default:
			return 0, fmt.Errorf("kir: interpret %s: unknown compare op %q", it.k.Name, e.Op)
		}
		if p {
			return 1, nil
		}
		return 0, nil
	case FSel:
		p, err := it.fltVal(e.P)
		if err != nil {
			return 0, err
		}
		if p != 0 {
			return it.fltVal(e.A)
		}
		return it.fltVal(e.B)
	case FCastInt:
		x, err := it.intVal(e.X)
		if err != nil {
			return 0, err
		}
		return float32(x), nil
	default:
		return 0, fmt.Errorf("kir: interpret %s: unknown expr %T", it.k.Name, e)
	}
}
