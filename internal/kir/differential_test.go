package kir

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// The differential suite: random programs are executed by the bytecode VM,
// the closure compiler, and the reference tree-walking interpreter, and all
// stores must agree bit for bit (math.Float32bits equality, so NaN
// propagation and -0 are checked too). Partitionable programs additionally
// run as random contiguous RunRange splits, which must reproduce the full
// run exactly.

// genProgram builds a random valid kernel from the seed. Every buffer index
// is kept in bounds by construction (non-negative affine/min/mod arithmetic
// reduced mod the domain size), so generated programs never fault and any
// divergence between execution modes is a genuine compiler bug.
type progGen struct {
	r       *rand.Rand
	k       *Kernel
	intVars []string // defined int locals + live loop vars
	fltVars []string // defined f32 locals
	nextVar int
	depth   int
}

var genUnary = []string{"neg", "abs", "exp", "log", "sqrt", "rsqrt", "tanh", "erf", "sigmoid", "relu", "gelu", "id"}
var genBinary = []string{"add", "sub", "mul", "div", "pow", "max", "min"}
var genCmp = []string{"lt", "le", "gt", "ge", "eq", "ne"}

func genProgram(seed int64) *Kernel {
	r := rand.New(rand.NewSource(seed))
	g := &progGen{r: r}
	g.k = &Kernel{
		Name:       fmt.Sprintf("fuzz_%d", seed),
		NumBuffers: 2 + r.Intn(3),
		DimNames:   []string{"d0", "d1"}[:1+r.Intn(2)],
	}
	if r.Intn(3) == 0 {
		// Partitionable shape: a single outer loop over a dims-only extent.
		v := g.fresh("i")
		g.intVars = append(g.intVars, v)
		g.k.Body = []Stmt{SLoop{Var: v, Extent: g.dimExtent(), Body: g.stmts(2 + r.Intn(3))}}
		g.intVars = g.intVars[:0]
	} else {
		g.k.Body = g.stmts(2 + r.Intn(4))
	}
	return g.k
}

func (g *progGen) fresh(prefix string) string {
	g.nextVar++
	return fmt.Sprintf("%s%d", prefix, g.nextVar)
}

// total is the guaranteed size of every buffer: the product of the dims.
func (g *progGen) total() IntExpr {
	var e IntExpr = IConst(1)
	for _, d := range g.k.DimNames {
		e = IBin{Op: IMul, A: e, B: IDim(d)}
	}
	return e
}

// dimExtent is a dims-only loop extent (for partitionable outer loops).
func (g *progGen) dimExtent() IntExpr {
	d := IDim(g.k.DimNames[g.r.Intn(len(g.k.DimNames))])
	switch g.r.Intn(3) {
	case 0:
		return d
	case 1:
		return Min(d, IConst(1+g.r.Intn(6)))
	default:
		return g.total()
	}
}

// intExpr generates a non-negative integer expression (no ISub, divisors
// and moduli are positive constants) so indices stay safe under Mod.
func (g *progGen) intExpr(depth int) IntExpr {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(3) {
		case 0:
			return IConst(g.r.Intn(5))
		case 1:
			return IDim(g.k.DimNames[g.r.Intn(len(g.k.DimNames))])
		default:
			if len(g.intVars) == 0 {
				return IConst(g.r.Intn(5))
			}
			return IVar(g.intVars[g.r.Intn(len(g.intVars))])
		}
	}
	a, b := g.intExpr(depth-1), g.intExpr(depth-1)
	switch g.r.Intn(4) {
	case 0:
		return IBin{Op: IAdd, A: a, B: b}
	case 1:
		return IBin{Op: IMul, A: a, B: b}
	case 2:
		return IBin{Op: IMin, A: a, B: b}
	default:
		op := IDiv
		if g.r.Intn(2) == 0 {
			op = IMod
		}
		return IBin{Op: op, A: a, B: IConst(1 + g.r.Intn(4))}
	}
}

// index wraps a random non-negative expression mod the buffer size.
func (g *progGen) index() IntExpr {
	return IBin{Op: IMod, A: g.intExpr(2), B: g.total()}
}

func (g *progGen) fltExpr(depth int) Expr {
	if depth <= 0 || g.r.Intn(4) == 0 {
		switch g.r.Intn(3) {
		case 0:
			return FConst(float32(g.r.NormFloat64()))
		case 1:
			if len(g.fltVars) == 0 {
				return FConst(float32(g.r.Intn(7)) - 3)
			}
			return FLocal(g.fltVars[g.r.Intn(len(g.fltVars))])
		default:
			return FLoad{Buf: g.r.Intn(g.k.NumBuffers), Idx: g.index()}
		}
	}
	switch g.r.Intn(5) {
	case 0:
		return FUn{Fn: genUnary[g.r.Intn(len(genUnary))], X: g.fltExpr(depth - 1)}
	case 1:
		return FBin{Fn: genBinary[g.r.Intn(len(genBinary))], A: g.fltExpr(depth - 1), B: g.fltExpr(depth - 1)}
	case 2:
		return FCmp{Op: genCmp[g.r.Intn(len(genCmp))], A: g.fltExpr(depth - 1), B: g.fltExpr(depth - 1)}
	case 3:
		return FSel{P: g.fltExpr(depth - 1), A: g.fltExpr(depth - 1), B: g.fltExpr(depth - 1)}
	default:
		return FCastInt{X: g.intExpr(2)}
	}
}

func (g *progGen) stmts(n int) []Stmt {
	var out []Stmt
	for i := 0; i < n; i++ {
		out = append(out, g.stmt())
	}
	return out
}

func (g *progGen) stmt() Stmt {
	if g.depth < 2 && g.r.Intn(4) == 0 {
		// A nested loop; randomly flagged stride-1 to exercise both the
		// superinstruction matcher and its structural rejection (a wrong
		// hint must never change results).
		g.depth++
		v := g.fresh("i")
		var flags LoopFlags
		if g.r.Intn(2) == 0 {
			flags = LoopStride1
		}
		// The extent generates before the loop variable enters scope: an
		// extent referencing its own variable is a use-before-definition
		// that both compilers reject.
		extent := g.loopExtent()
		ni, nf := len(g.intVars), len(g.fltVars)
		g.intVars = append(g.intVars, v)
		var body []Stmt
		if g.r.Intn(2) == 0 {
			var maxBase, div int
			body, maxBase, div = g.rowBody(v)
			// Affine row indices are base+v with base <= maxBase, so the
			// sweep length is clamped to total-maxBase to stay in bounds
			// (a negative clamp just skips the loop). Strided gather rows
			// additionally divide by their stride so base+v*stride stays
			// in bounds too.
			clamp := IntExpr(IBin{Op: ISub, A: g.total(), B: IConst(maxBase)})
			if div > 1 {
				clamp = IBin{Op: IDiv, A: clamp, B: IConst(div)}
			}
			extent = Min(extent, clamp)
		} else {
			body = g.stmts(1 + g.r.Intn(3))
		}
		// Locals defined inside the body go out of scope with the loop: a
		// later read would be undominated when the loop runs zero times
		// (the interpreter faults on it while compiled code reads a stale
		// register).
		g.intVars = g.intVars[:ni]
		g.fltVars = g.fltVars[:nf]
		g.depth--
		return SLoop{Var: v, Extent: extent, Body: body, Flags: flags}
	}
	switch g.r.Intn(4) {
	case 0:
		v := g.fresh("x")
		s := SSetInt{Var: v, Val: g.intExpr(2)}
		g.intVars = append(g.intVars, v)
		return s
	case 1:
		v := g.fresh("f")
		s := SSet{Var: v, Val: g.fltExpr(2)}
		g.fltVars = append(g.fltVars, v)
		return s
	case 2:
		return SStoreInt{Buf: g.r.Intn(g.k.NumBuffers), Idx: g.index(), Val: g.intExpr(2)}
	default:
		return SStore{Buf: g.r.Intn(g.k.NumBuffers), Idx: g.index(), Val: g.fltExpr(2)}
	}
}

func (g *progGen) loopExtent() IntExpr {
	switch g.r.Intn(3) {
	case 0:
		return IConst(g.r.Intn(7))
	case 1:
		return IDim(g.k.DimNames[g.r.Intn(len(g.k.DimNames))])
	default:
		return Min(g.intExpr(1), IConst(8))
	}
}

// rowBody builds a loop body shaped like the lowering's contiguous sweeps
// (affine stride-1 indices off a loop-invariant base) so the generated
// corpus actually exercises every superinstruction, not just the generic
// dispatch loop. Returned maxBase bounds every affine base constant; the
// caller clamps the loop extent to total-maxBase so affine indices stay in
// bounds. Mod-wrapped index variants are emitted too — those are non-affine
// on purpose, so the matcher must fall back to generic code, never
// mis-compile.
func (g *progGen) rowBody(v string) ([]Stmt, int, int) {
	nb := g.k.NumBuffers
	dst, x, y := g.r.Intn(nb), g.r.Intn(nb), g.r.Intn(nb)
	maxBase, div := 0, 1
	idx := func() IntExpr {
		if g.r.Intn(2) == 0 {
			c := g.r.Intn(3)
			if c > maxBase {
				maxBase = c
			}
			return Add(IConst(c), IVar(v))
		}
		return IBin{Op: IMod, A: IBin{Op: IAdd, A: g.intExpr(1), B: IVar(v)}, B: g.total()}
	}
	un := genUnary[g.r.Intn(len(genUnary))]
	bin := genBinary[g.r.Intn(len(genBinary))]
	load := func(b int) Expr { return FLoad{Buf: b, Idx: idx()} }
	var body []Stmt
	switch g.r.Intn(11) {
	case 0: // copy
		body = []Stmt{SStore{Buf: dst, Idx: idx(), Val: load(x)}}
	case 1: // map1
		body = []Stmt{SStore{Buf: dst, Idx: idx(), Val: FUn{Fn: un, X: load(x)}}}
	case 2: // zip
		body = []Stmt{SStore{Buf: dst, Idx: idx(),
			Val: FBin{Fn: bin, A: load(x), B: load(y)}}}
	case 3: // zipS (either operand order)
		s := Expr(FConst(float32(g.r.NormFloat64())))
		a, b := Expr(load(x)), s
		if g.r.Intn(2) == 0 {
			a, b = b, a
		}
		body = []Stmt{SStore{Buf: dst, Idx: idx(), Val: FBin{Fn: bin, A: a, B: b}}}
	case 4: // mapZipS through a local definition (forward substitution)
		lv := g.fresh("t")
		body = []Stmt{
			SSet{Var: lv, Val: FBin{Fn: bin, A: load(x), B: FConst(2)}},
			SStore{Buf: dst, Idx: idx(), Val: FUn{Fn: un, X: FLocal(lv)}},
		}
	case 5: // zip2S
		body = []Stmt{SStore{Buf: dst, Idx: idx(),
			Val: FBin{Fn: bin, A: FBin{Fn: "sub", A: load(x), B: FConst(1)}, B: FConst(3)}}}
	case 6: // mapZip: vector-vector un∘bin fusion
		body = []Stmt{SStore{Buf: dst, Idx: idx(),
			Val: FUn{Fn: un, X: FBin{Fn: bin, A: load(x), B: load(y)}}}}
	case 7: // fill from a constant or an invariant load (possibly aliasing
		// dst — the matcher must reject that one, not mis-fuse it)
		s := Expr(FConst(float32(g.r.NormFloat64())))
		if g.r.Intn(2) == 0 {
			s = FLoad{Buf: y, Idx: IConst(0)}
		}
		body = []Stmt{SStore{Buf: dst, Idx: idx(), Val: s}}
	case 8: // strided gather: dst[base+v] = [un](x[base + v*2])
		div = 2
		gl := Expr(FLoad{Buf: x, Idx: Mul(IVar(v), IConst(2))})
		if g.r.Intn(2) == 0 {
			gl = FUn{Fn: un, X: gl}
		}
		body = []Stmt{SStore{Buf: dst, Idx: idx(), Val: gl}}
	case 9: // fused store+reduce: dst[i] = E; acc = bin(acc, E)
		if len(g.fltVars) == 0 {
			body = []Stmt{SStore{Buf: dst, Idx: idx(), Val: load(x)}}
			break
		}
		acc := g.fltVars[g.r.Intn(len(g.fltVars))]
		val := load(x)
		switch g.r.Intn(3) {
		case 0:
			val = FUn{Fn: un, X: FBin{Fn: bin, A: val, B: FConst(1)}}
		case 1:
			val = FUn{Fn: un, X: val}
		}
		body = []Stmt{
			SStore{Buf: dst, Idx: idx(), Val: val},
			SSet{Var: acc, Val: FBin{Fn: bin, A: FLocal(acc), B: val}},
		}
	default: // reduce accumulate into an existing (initialized) accumulator
		if len(g.fltVars) == 0 {
			// No initialized local to fold into; degrade to a copy row.
			body = []Stmt{SStore{Buf: dst, Idx: idx(), Val: load(x)}}
			break
		}
		acc := g.fltVars[g.r.Intn(len(g.fltVars))]
		body = []Stmt{
			SSet{Var: acc, Val: FBin{Fn: bin, A: FLocal(acc), B: load(x)}},
		}
	}
	return body, maxBase, div
}

// fillBufs deterministically fills buffers with a spread of values
// (positives, negatives, zeros) so NaN-producing paths are hit too.
func fillBufs(n, size int, seed int64) [][]float32 {
	r := rand.New(rand.NewSource(seed))
	bufs := make([][]float32, n)
	for i := range bufs {
		b := make([]float32, size)
		for j := range b {
			b[j] = float32(r.NormFloat64())
		}
		bufs[i] = b
	}
	return bufs
}

func cloneBufs(b [][]float32) [][]float32 {
	out := make([][]float32, len(b))
	for i := range b {
		out[i] = append([]float32(nil), b[i]...)
	}
	return out
}

func bufsBitEqual(a, b [][]float32) (int, int, bool) {
	for i := range a {
		for j := range a[i] {
			if math.Float32bits(a[i][j]) != math.Float32bits(b[i][j]) {
				return i, j, false
			}
		}
	}
	return 0, 0, true
}

// checkDifferential compiles k in both modes, runs them plus the reference
// interpreter on identical inputs, and requires bit-identical stores. For
// partitionable programs it re-runs the bytecode via random contiguous
// RunRange splits. Returns an error description or "" on agreement.
func checkDifferential(k *Kernel, dims []int, seed int64) string {
	// The reference accumulator for reduce bodies reads an undefined local
	// on some generated programs; both compilers must agree on rejection.
	cpB, errB := k.FinalizeMode(ModeBytecode)
	cpC, errC := k.FinalizeMode(ModeClosure)
	if (errB == nil) != (errC == nil) {
		return fmt.Sprintf("finalize disagreement: bytecode=%v closure=%v", errB, errC)
	}
	if errB != nil {
		return "" // both reject: agreement
	}
	size := 1
	for _, d := range dims {
		size *= d
	}
	if size < 1 {
		size = 1
	}
	ref := fillBufs(k.NumBuffers, size, seed)
	bc := cloneBufs(ref)
	cl := cloneBufs(ref)
	if err := Interpret(k, ref, dims); err != nil {
		// The interpreter rejects (e.g. undefined local read at runtime);
		// compiled modes reject the same programs at compile time, so a
		// runtime-only interpreter error means the program never reached
		// a defined state worth comparing.
		return fmt.Sprintf("interpreter error on finalizable program: %v", err)
	}
	if err := cpB.Run(bc, dims); err != nil {
		return fmt.Sprintf("bytecode run: %v", err)
	}
	if err := cpC.Run(cl, dims); err != nil {
		return fmt.Sprintf("closure run: %v", err)
	}
	if i, j, ok := bufsBitEqual(bc, ref); !ok {
		return fmt.Sprintf("bytecode vs interpreter: buf %d[%d]: %x != %x\n%s",
			i, j, math.Float32bits(bc[i][j]), math.Float32bits(ref[i][j]), cpB.Disassemble())
	}
	if i, j, ok := bufsBitEqual(cl, ref); !ok {
		return fmt.Sprintf("closure vs interpreter: buf %d[%d]: %x != %x", i, j,
			math.Float32bits(cl[i][j]), math.Float32bits(ref[i][j]))
	}
	if !cpB.Partitionable() {
		return ""
	}
	// Random contiguous splits must replay the full run exactly.
	n := cpB.OuterExtent(dims)
	r := rand.New(rand.NewSource(seed ^ 0x5eed))
	for trial := 0; trial < 3; trial++ {
		rng := cloneBufs(fillBufs(k.NumBuffers, size, seed))
		lo := 0
		for lo < n {
			hi := lo + 1 + r.Intn(n-lo)
			if err := cpB.RunRange(rng, dims, lo, hi); err != nil {
				return fmt.Sprintf("RunRange(%d,%d): %v", lo, hi, err)
			}
			lo = hi
		}
		if i, j, ok := bufsBitEqual(rng, bc); !ok {
			return fmt.Sprintf("RunRange split vs full run: buf %d[%d]: %x != %x\n%s",
				i, j, math.Float32bits(rng[i][j]), math.Float32bits(bc[i][j]), cpB.Disassemble())
		}
	}
	return ""
}

func dimsForSeed(k *Kernel, seed int64) []int {
	r := rand.New(rand.NewSource(seed + 7))
	dims := make([]int, len(k.DimNames))
	for i := range dims {
		dims[i] = 1 + r.Intn(9)
	}
	return dims
}

func TestDifferentialRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 400; seed++ {
		k := genProgram(seed)
		if msg := checkDifferential(k, dimsForSeed(k, seed), seed); msg != "" {
			t.Fatalf("seed %d: %s\nkernel:\n%s", seed, msg, k)
		}
	}
}

// TestDifferentialHandWritten pins the shapes the lowering actually emits:
// softmax-style sweeps, axpy rows, strided unrolled bodies, gather-style
// indirect row copies (ILoad bases), and overlapping same-buffer copies
// (where memmove semantics would diverge from element order).
func TestDifferentialHandWritten(t *testing.T) {
	rowLen := IDim("n")
	cases := []*Kernel{
		// Gather: out rows copied from a table through an index buffer.
		{Name: "gather", NumBuffers: 3, DimNames: []string{"n", "r"},
			Body: []Stmt{SLoop{Var: "i", Extent: IDim("r"), Body: []Stmt{
				// The index buffer holds arbitrary floats; ((x % r) + r) % r
				// folds them into [0, r) (Go's % keeps the sign of x).
				SSetInt{Var: "t", Val: IBin{
					Op: IMod,
					A: IBin{Op: IAdd,
						A: IBin{Op: IMod, A: ILoad{Buf: 1, Idx: IVar("i")}, B: IDim("r")},
						B: IDim("r")},
					B: IDim("r")}},
				SLoop{Var: "j", Extent: rowLen, Flags: LoopStride1, Body: []Stmt{
					SStore{Buf: 2,
						Idx: IBin{Op: IMod, A: Add(Mul(IVar("i"), rowLen), IVar("j")), B: Mul(IDim("n"), IDim("r"))},
						Val: FLoad{Buf: 0, Idx: IBin{Op: IMod, A: Add(Mul(IVar("t"), rowLen), IVar("j")), B: Mul(IDim("n"), IDim("r"))}}},
				}},
			}}}},
		// Same-buffer overlapping copy: must behave like an ascending
		// element loop, not memmove.
		{Name: "overlap", NumBuffers: 1, DimNames: []string{"n"},
			Body: []Stmt{SLoop{Var: "i", Extent: IDim("n"), Flags: LoopStride1, Body: []Stmt{
				SStore{Buf: 0, Idx: IBin{Op: IMod, A: Add(IVar("i"), IConst(1)), B: Mul(IDim("n"), IConst(1))},
					Val: FLoad{Buf: 0, Idx: IVar("i")}},
			}}}},
		// Softmax-style: max reduce, exp(x-max) with running sum, div by sum.
		{Name: "softmaxish", NumBuffers: 2, DimNames: []string{"n"},
			Body: []Stmt{
				SSet{Var: "m", Val: FConst(float32(math.Inf(-1)))},
				SLoop{Var: "i", Extent: IDim("n"), Flags: LoopStride1, Body: []Stmt{
					SSet{Var: "m", Val: FBin{Fn: "max", A: FLocal("m"), B: FLoad{Buf: 0, Idx: IVar("i")}}},
				}},
				SSet{Var: "s", Val: FConst(0)},
				SLoop{Var: "j", Extent: IDim("n"), Flags: LoopStride1, Body: []Stmt{
					SSet{Var: "e", Val: FUn{Fn: "exp", X: FBin{Fn: "sub", A: FLoad{Buf: 0, Idx: IVar("j")}, B: FLocal("m")}}},
					SStore{Buf: 1, Idx: IVar("j"), Val: FLocal("e")},
					SSet{Var: "s", Val: FBin{Fn: "add", A: FLocal("s"), B: FLocal("e")}},
				}},
				SLoop{Var: "q", Extent: IDim("n"), Flags: LoopStride1, Body: []Stmt{
					SStore{Buf: 1, Idx: IVar("q"), Val: FBin{Fn: "div", A: FLoad{Buf: 1, Idx: IVar("q")}, B: FLocal("s")}},
				}},
			}},
	}
	for _, k := range cases {
		for seed := int64(1); seed <= 5; seed++ {
			if msg := checkDifferential(k, dimsForSeed(k, seed), seed); msg != "" {
				t.Fatalf("%s seed %d: %s", k.Name, seed, msg)
			}
		}
	}
}

// FuzzKIRProgram drives the same generator + differential oracle from the
// native fuzzer: any seed where the three execution engines disagree (or
// where a RunRange split diverges from the full run) is a crasher.
func FuzzKIRProgram(f *testing.F) {
	for s := int64(0); s < 16; s++ {
		f.Add(s, uint8(3), uint8(4))
	}
	f.Fuzz(func(t *testing.T, seed int64, d0, d1 uint8) {
		k := genProgram(seed)
		dims := make([]int, len(k.DimNames))
		sizes := []int{1 + int(d0)%12, 1 + int(d1)%12}
		copy(dims, sizes[:len(dims)])
		if msg := checkDifferential(k, dims, seed); msg != "" {
			t.Fatalf("seed %d dims %v: %s\nkernel:\n%s", seed, dims, msg, k)
		}
	})
}
