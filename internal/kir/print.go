package kir

import (
	"fmt"
	"strings"
)

// String renders the kernel program as indented pseudo-code — the
// disassembly the compiler driver shows for generated kernels.
//
//	kernel row_g0(s1, s3) buffers=3 {
//	  for r in 0..($s1 * $s3) {
//	    acc = 0
//	    ...
//	  }
//	}
func (k *Kernel) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "kernel %s(%s) buffers=%d {\n", k.Name, strings.Join(k.DimNames, ", "), k.NumBuffers)
	writeStmts(&sb, k.Body, 1)
	sb.WriteString("}\n")
	return sb.String()
}

func writeStmts(sb *strings.Builder, ss []Stmt, depth int) {
	indent := strings.Repeat("  ", depth)
	for _, s := range ss {
		switch s := s.(type) {
		case SLoop:
			fmt.Fprintf(sb, "%sfor %s in 0..%s {\n", indent, s.Var, s.Extent)
			writeStmts(sb, s.Body, depth+1)
			fmt.Fprintf(sb, "%s}\n", indent)
		case SSet:
			fmt.Fprintf(sb, "%s%s = %s\n", indent, s.Var, s.Val)
		case SSetInt:
			fmt.Fprintf(sb, "%s%s := %s\n", indent, s.Var, s.Val)
		case SStore:
			fmt.Fprintf(sb, "%sb%d[%s] = %s\n", indent, s.Buf, s.Idx, s.Val)
		case SStoreInt:
			fmt.Fprintf(sb, "%sb%d[%s] = f32(%s)\n", indent, s.Buf, s.Idx, s.Val)
		default:
			fmt.Fprintf(sb, "%s<unknown stmt %T>\n", indent, s)
		}
	}
}

// Source exposes the disassembly of a compiled kernel.
func (cp *Compiled) Source() string { return cp.kernel.String() }

// opNames mirrors the opcode constants in bytecode.go for disassembly.
var opNames = [...]string{
	opNop:    "nop",
	opIConst: "iconst", opIDim: "idim", opIMov: "imov",
	opIAdd: "iadd", opISub: "isub", opIMul: "imul", opIDiv: "idiv",
	opIMod: "imod", opIMin: "imin",
	opIAddImm: "iaddi", opIMulImm: "imuli", opIMulAdd: "imuladd",
	opILoad:  "iload",
	opFConst: "fconst", opFMov: "fmov", opFLoad: "fload",
	opFAdd: "fadd", opFSub: "fsub", opFMul: "fmul", opFDiv: "fdiv",
	opFMax: "fmax", opFMin: "fmin", opFUn: "fun", opFBin: "fbin",
	opFCmpLT: "fcmplt", opFCmpLE: "fcmple", opFCmpGT: "fcmpgt",
	opFCmpGE: "fcmpge", opFCmpEQ: "fcmpeq", opFCmpNE: "fcmpne",
	opFCastInt: "fcasti",
	opStore:    "store", opStoreInt: "storei",
	opJump: "jump", opJumpIfZ: "jz", opLoopHead: "loop.head", opLoopTail: "loop.tail",
	opRowCopy: "row.copy", opRowMap1: "row.map1", opRowZip: "row.zip",
	opRowZipSR: "row.zipsr", opRowZipSL: "row.zipsl",
	opRowMapZipSR: "row.mapzipsr", opRowMapZipSL: "row.mapzipsl",
	opRowZip2S: "row.zip2s", opRowReduce: "row.reduce",
	opRowMapZip: "row.mapzip", opRowFill: "row.fill", opRowGathS: "row.gaths",
	opRowFRedSR: "row.fredsr", opRowFRedSL: "row.fredsl",
}

// Disassemble renders the compiled bytecode program, one instruction per
// line — the executable mirror of the AST printer, shown by trace/debug
// output and differential-test failures. Closure-compiled kernels have no
// bytecode; their source AST is returned instead.
func (cp *Compiled) Disassemble() string {
	if cp.prog == nil {
		return "; closure-compiled (no bytecode)\n" + cp.kernel.String()
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "; kernel %s: %d instrs, %d superinstructions, %d int regs, %d f32 regs",
		cp.kernel.Name, len(cp.prog.code), cp.prog.supers, cp.nInts, cp.nFloats)
	if cp.prog.loReg >= 0 {
		fmt.Fprintf(&sb, ", range regs i%d/i%d", cp.prog.loReg, cp.prog.hiReg)
	}
	sb.WriteByte('\n')
	for pc, in := range cp.prog.code {
		fmt.Fprintf(&sb, "%4d  %s\n", pc, formatInstr(in))
	}
	return sb.String()
}

// formatInstr renders one instruction with operands typed per opcode:
// iN/fN are registers, bN buffers, dN dim slots, @N jump targets.
func formatInstr(in instr) string {
	n := opNames[in.op]
	switch in.op {
	case opNop:
		return n
	case opIConst:
		return fmt.Sprintf("%-12s i%d = %d", n, in.a, in.b)
	case opIDim:
		return fmt.Sprintf("%-12s i%d = dim%d", n, in.a, in.b)
	case opIMov:
		return fmt.Sprintf("%-12s i%d = i%d", n, in.a, in.b)
	case opIAdd, opISub, opIMul, opIDiv, opIMod, opIMin:
		return fmt.Sprintf("%-12s i%d = i%d, i%d", n, in.a, in.b, in.c)
	case opIAddImm, opIMulImm:
		return fmt.Sprintf("%-12s i%d = i%d, %d", n, in.a, in.b, in.c)
	case opIMulAdd:
		return fmt.Sprintf("%-12s i%d = i%d*i%d + i%d", n, in.a, in.b, in.c, in.d)
	case opILoad:
		return fmt.Sprintf("%-12s i%d = b%d[i%d]", n, in.a, in.b, in.c)
	case opFConst:
		return fmt.Sprintf("%-12s f%d = %g", n, in.a, in.fimm)
	case opFMov:
		return fmt.Sprintf("%-12s f%d = f%d", n, in.a, in.b)
	case opFLoad:
		return fmt.Sprintf("%-12s f%d = b%d[i%d]", n, in.a, in.b, in.c)
	case opFAdd, opFSub, opFMul, opFDiv, opFMax, opFMin,
		opFCmpLT, opFCmpLE, opFCmpGT, opFCmpGE, opFCmpEQ, opFCmpNE:
		return fmt.Sprintf("%-12s f%d = f%d, f%d", n, in.a, in.b, in.c)
	case opFUn:
		return fmt.Sprintf("%-12s f%d = %s(f%d)", n, in.a, unaryNames[in.b], in.c)
	case opFBin:
		return fmt.Sprintf("%-12s f%d = %s(f%d, f%d)", n, in.a, binaryNames[in.b], in.c, in.d)
	case opFCastInt:
		return fmt.Sprintf("%-12s f%d = i%d", n, in.a, in.b)
	case opStore:
		return fmt.Sprintf("%-12s b%d[i%d] = f%d", n, in.a, in.b, in.c)
	case opStoreInt:
		return fmt.Sprintf("%-12s b%d[i%d] = i%d", n, in.a, in.b, in.c)
	case opJump:
		return fmt.Sprintf("%-12s @%d", n, in.a)
	case opJumpIfZ:
		return fmt.Sprintf("%-12s f%d, @%d", n, in.a, in.b)
	case opLoopHead:
		return fmt.Sprintf("%-12s i%d >= i%d -> @%d", n, in.a, in.b, in.c)
	case opLoopTail:
		return fmt.Sprintf("%-12s i%d++ < i%d -> @%d", n, in.a, in.b, in.c)
	case opRowCopy:
		return fmt.Sprintf("%-12s b%d[i%d:] = b%d[i%d:] n=i%d", n, in.a, in.d, in.b, in.d+1, in.e)
	case opRowMap1:
		return fmt.Sprintf("%-12s b%d[i%d:] = %s(b%d[i%d:]) n=i%d",
			n, in.a, in.d, unaryNames[in.g], in.b, in.d+1, in.e)
	case opRowZip:
		return fmt.Sprintf("%-12s b%d[i%d:] = %s(b%d[i%d:], b%d[i%d:]) n=i%d",
			n, in.a, in.d, binaryNames[in.g], in.b, in.d+1, in.c, in.d+2, in.e)
	case opRowZipSR:
		return fmt.Sprintf("%-12s b%d[i%d:] = %s(b%d[i%d:], f%d) n=i%d",
			n, in.a, in.d, binaryNames[in.g], in.b, in.d+1, in.c, in.e)
	case opRowZipSL:
		return fmt.Sprintf("%-12s b%d[i%d:] = %s(f%d, b%d[i%d:]) n=i%d",
			n, in.a, in.d, binaryNames[in.g], in.c, in.b, in.d+1, in.e)
	case opRowMapZipSR:
		return fmt.Sprintf("%-12s b%d[i%d:] = %s(%s(b%d[i%d:], f%d)) n=i%d",
			n, in.a, in.d, unaryNames[in.g>>8], binaryNames[in.g&0xff], in.b, in.d+1, in.c, in.e)
	case opRowMapZipSL:
		return fmt.Sprintf("%-12s b%d[i%d:] = %s(%s(f%d, b%d[i%d:])) n=i%d",
			n, in.a, in.d, unaryNames[in.g>>8], binaryNames[in.g&0xff], in.c, in.b, in.d+1, in.e)
	case opRowZip2S:
		return fmt.Sprintf("%-12s b%d[i%d:] = %s(%s(b%d[i%d:], f%d), f%d) n=i%d",
			n, in.a, in.d, binaryNames[in.g>>8], binaryNames[in.g&0xff], in.b, in.d+1, in.c, in.c+1, in.e)
	case opRowMapZip:
		return fmt.Sprintf("%-12s b%d[i%d:] = %s(%s(b%d[i%d:], b%d[i%d:])) n=i%d",
			n, in.a, in.d, unaryNames[in.g>>8], binaryNames[in.g&0xff], in.b, in.d+1, in.c, in.d+2, in.e)
	case opRowFill:
		return fmt.Sprintf("%-12s b%d[i%d:] = f%d n=i%d", n, in.a, in.d, in.c, in.e)
	case opRowGathS:
		return fmt.Sprintf("%-12s b%d[i%d:] = %s(b%d[i%d + k*i%d]) n=i%d",
			n, in.a, in.d, unaryNames[in.g], in.b, in.d+1, in.c, in.e)
	case opRowFRedSR, opRowFRedSL:
		inner := fmt.Sprintf("b%d[i%d:]", in.b, in.d+1)
		if bin := in.g & 0xff; bin != binNoneIdx {
			if in.op == opRowFRedSL {
				inner = fmt.Sprintf("%s(f%d, %s)", binaryNames[bin], in.c&0xffff, inner)
			} else {
				inner = fmt.Sprintf("%s(%s, f%d)", binaryNames[bin], inner, in.c&0xffff)
			}
		}
		return fmt.Sprintf("%-12s b%d[i%d:] = %s(%s); f%d = fold %s n=i%d",
			n, in.a, in.d, unaryNames[(in.g>>8)&0xff], inner, in.c>>16, binaryNames[in.g>>16], in.e)
	case opRowReduce:
		return fmt.Sprintf("%-12s f%d = fold %s b%d[i%d:] n=i%d",
			n, in.a, binaryNames[in.g], in.b, in.c, in.d)
	}
	return fmt.Sprintf("%-12s a=%d b=%d c=%d d=%d e=%d g=%d", n, in.a, in.b, in.c, in.d, in.e, in.g)
}
