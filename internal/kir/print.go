package kir

import (
	"fmt"
	"strings"
)

// String renders the kernel program as indented pseudo-code — the
// disassembly the compiler driver shows for generated kernels.
//
//	kernel row_g0(s1, s3) buffers=3 {
//	  for r in 0..($s1 * $s3) {
//	    acc = 0
//	    ...
//	  }
//	}
func (k *Kernel) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "kernel %s(%s) buffers=%d {\n", k.Name, strings.Join(k.DimNames, ", "), k.NumBuffers)
	writeStmts(&sb, k.Body, 1)
	sb.WriteString("}\n")
	return sb.String()
}

func writeStmts(sb *strings.Builder, ss []Stmt, depth int) {
	indent := strings.Repeat("  ", depth)
	for _, s := range ss {
		switch s := s.(type) {
		case SLoop:
			fmt.Fprintf(sb, "%sfor %s in 0..%s {\n", indent, s.Var, s.Extent)
			writeStmts(sb, s.Body, depth+1)
			fmt.Fprintf(sb, "%s}\n", indent)
		case SSet:
			fmt.Fprintf(sb, "%s%s = %s\n", indent, s.Var, s.Val)
		case SSetInt:
			fmt.Fprintf(sb, "%s%s := %s\n", indent, s.Var, s.Val)
		case SStore:
			fmt.Fprintf(sb, "%sb%d[%s] = %s\n", indent, s.Buf, s.Idx, s.Val)
		case SStoreInt:
			fmt.Fprintf(sb, "%sb%d[%s] = f32(%s)\n", indent, s.Buf, s.Idx, s.Val)
		default:
			fmt.Fprintf(sb, "%s<unknown stmt %T>\n", indent, s)
		}
	}
}

// Source exposes the disassembly of a compiled kernel.
func (cp *Compiled) Source() string { return cp.kernel.String() }
