package kir

import (
	"fmt"
	"sort"

	"godisc/internal/tensor"
)

// The bytecode compiler: Finalize's default backend. The kernel AST is
// compiled once into a flat []instr over a flat register file (Frame.ints /
// Frame.floats) and executed by the dispatch loop in vm.go. Named scalar
// functions are resolved to direct indices into ordered tables at compile
// time; loops compile to an entry test plus a backward-jumping tail; and
// contiguous loop bodies (hinted by codegen via LoopStride1, then verified
// structurally here) collapse into single whole-row superinstructions.

// opcode enumerates bytecode operations. Operand meanings are documented
// per op; a..g are the fixed-width int32 operands of instr.
type opcode uint8

const (
	opNop opcode = iota

	// Integer ALU (dst/src are ints registers).
	opIConst  // ints[a] = b
	opIDim    // ints[a] = dims[b]
	opIMov    // ints[a] = ints[b]
	opIAdd    // ints[a] = ints[b] + ints[c]
	opISub    // ints[a] = ints[b] - ints[c]
	opIMul    // ints[a] = ints[b] * ints[c]
	opIDiv    // ints[a] = ints[b] / ints[c]
	opIMod    // ints[a] = ints[b] % ints[c]
	opIMin    // ints[a] = min(ints[b], ints[c])
	opIAddImm // ints[a] = ints[b] + c
	opIMulImm // ints[a] = ints[b] * c
	opIMulAdd // ints[a] = ints[b]*ints[c] + ints[d]
	opILoad   // ints[a] = int(bufs[b][ints[c]])

	// f32 ALU (dst/src are floats registers).
	opFConst   // floats[a] = fimm
	opFMov     // floats[a] = floats[b]
	opFLoad    // floats[a] = bufs[b][ints[c]]
	opFAdd     // floats[a] = floats[b] + floats[c]
	opFSub     // floats[a] = floats[b] - floats[c]
	opFMul     // floats[a] = floats[b] * floats[c]
	opFDiv     // floats[a] = floats[b] / floats[c]
	opFMax     // floats[a] = max(floats[b], floats[c])  (FnMax semantics)
	opFMin     // floats[a] = min(floats[b], floats[c])  (FnMin semantics)
	opFUn      // floats[a] = unaryTable[b](floats[c])
	opFBin     // floats[a] = binaryTable[b](floats[c], floats[d])
	opFCmpLT   // floats[a] = floats[b] <  floats[c] ? 1 : 0
	opFCmpLE   // floats[a] = floats[b] <= floats[c] ? 1 : 0
	opFCmpGT   // floats[a] = floats[b] >  floats[c] ? 1 : 0
	opFCmpGE   // floats[a] = floats[b] >= floats[c] ? 1 : 0
	opFCmpEQ   // floats[a] = floats[b] == floats[c] ? 1 : 0
	opFCmpNE   // floats[a] = floats[b] != floats[c] ? 1 : 0
	opFCastInt // floats[a] = float32(ints[b])

	// Stores.
	opStore    // bufs[a][ints[b]] = floats[c]
	opStoreInt // bufs[a][ints[b]] = float32(ints[c])

	// Control flow. Jump targets are absolute pcs.
	opJump     // pc = a
	opJumpIfZ  // if floats[a] == 0 { pc = b }
	opLoopHead // if ints[a] >= ints[b] { pc = c }   (loop entry test)
	opLoopTail // t := ints[a]+1; if t < ints[b] { ints[a] = t; pc = c }

	// Superinstructions: one dispatch runs a whole contiguous row. Unless
	// noted, a = dst buffer, b = src buffer, d = first of consecutive base
	// registers (ints[d] = dst base, ints[d+1] = src base, ints[d+2] =
	// second src base for zip), e = element-count register, g = function
	// index (un<<8 | bin where two are needed). n <= 0 is a no-op.
	opRowCopy     // dst[i] = src[i]                      (memmove; dst != src buffer)
	opRowMap1     // dst[i] = un[g](src[i])
	opRowZip      // dst[i] = bin[g](x[i], y[i]); b = x buf, c = y buf
	opRowZipSR    // dst[i] = bin[g](src[i], floats[c])
	opRowZipSL    // dst[i] = bin[g](floats[c], src[i])
	opRowMapZipSR // dst[i] = un[g>>8](bin[g&255](src[i], floats[c]))
	opRowMapZipSL // dst[i] = un[g>>8](bin[g&255](floats[c], src[i]))
	opRowZip2S    // dst[i] = bin[g>>8](bin[g&255](src[i], floats[c]), floats[c+1])
	opRowMapZip   // dst[i] = un[g>>8](bin[g&255](x[i], y[i])); b = x buf, c = y buf
	opRowFill     // dst[i] = floats[c]
	opRowGathS    // dst[i] = un[g](bufs[b][ints[d+1] + i*ints[c]]) (strided source)
	opRowReduce   // floats[a] = fold of bin[g] over bufs[b][ints[c] : +ints[d]]
	// Fused store+reduce sweeps: dst[i] = un[g>>8&255](bin[g&255](src[i],
	// floats[c&0xffff])); floats[c>>16] = fold of bin[g>>16] over the stored
	// values. bin g&255 == binNoneIdx skips the scalar stage; SL puts the
	// scalar on the left of the inner bin.
	opRowFRedSR
	opRowFRedSL
)

// instr is one fixed-width bytecode instruction.
type instr struct {
	op      opcode
	a, b, c int32
	d, e, g int32
	fimm    float32
}

// program is a compiled bytecode kernel.
type program struct {
	code []instr
	// loReg/hiReg are the outer-range registers of a partitionable kernel
	// (-1 otherwise). Run seeds them with [0, extent); RunRange with the
	// requested [lo, hi) — range runs are pure register seeding.
	loReg, hiReg int32
	// supers counts emitted superinstructions (for tests and tracing).
	supers int
}

// Ordered function tables: FUn/FBin names resolve to direct indices at
// compile time so dispatch never touches a map. Sorted for determinism.
var (
	unaryNames  []string
	unaryTable  []tensor.UnaryFunc
	unaryIndex  = map[string]int{}
	binaryNames []string
	binaryTable []tensor.BinaryFunc
	binaryIndex = map[string]int{}

	// Fast indices for the ops the VM open-codes in superinstruction loops.
	bcAdd, bcSub, bcMul, bcDiv, bcMax, bcMin int
	bcIdUn, bcExpUn                          int
)

func init() {
	for name := range unaryFuncs {
		unaryNames = append(unaryNames, name)
	}
	sort.Strings(unaryNames)
	for i, name := range unaryNames {
		unaryIndex[name] = i
		unaryTable = append(unaryTable, unaryFuncs[name])
	}
	for name := range binaryFuncs {
		binaryNames = append(binaryNames, name)
	}
	sort.Strings(binaryNames)
	for i, name := range binaryNames {
		binaryIndex[name] = i
		binaryTable = append(binaryTable, binaryFuncs[name])
	}
	bcAdd = binaryIndex["add"]
	bcSub = binaryIndex["sub"]
	bcMul = binaryIndex["mul"]
	bcDiv = binaryIndex["div"]
	bcMax = binaryIndex["max"]
	bcMin = binaryIndex["min"]
	bcIdUn = unaryIndex["id"]
	bcExpUn = unaryIndex["exp"]
}

type bcompiler struct {
	k       *Kernel
	dimSlot map[string]int
	intSlot map[string]int32
	fltSlot map[string]int32
	// Register allocation: named locals occupy [0, len(slot)); temps are a
	// stack above them, released at statement boundaries. nInt/nFlt are the
	// high-water marks that size pooled frames.
	nInt, nFlt     int32
	tmpInt, tmpFlt int32
	// defInt/defFlt track which named locals have been defined at the
	// current compile point. Slots are pre-assigned by collectLocals, but a
	// read before the defining statement must fail exactly as in the
	// closure compiler, which defines names in compile-time encounter
	// order (loop extents before the loop variable; set targets before
	// their right-hand sides).
	defInt, defFlt map[string]bool
	loReg, hiReg   int32
	code           []instr
	supers         int
	// globalReads counts IVar/FLocal reads per prefixed name across the
	// whole kernel; superinstruction substitution requires the consumed
	// locals to have no reads outside the matched loop.
	globalReads map[string]int
	err         error
}

func (c *bcompiler) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("kir: kernel %s: %s", c.k.Name, fmt.Sprintf(format, args...))
	}
}

func (c *bcompiler) checkBuf(i int) {
	if i < 0 || i >= c.k.NumBuffers {
		c.fail("buffer index %d out of range [0,%d)", i, c.k.NumBuffers)
	}
}

// finalizeBytecode compiles the kernel body into cp.prog.
func (cp *Compiled) finalizeBytecode(dimSlot map[string]int, lp SLoop, partitionable bool) error {
	c := &bcompiler{
		k:       cp.kernel,
		dimSlot: dimSlot,
		intSlot: map[string]int32{},
		fltSlot: map[string]int32{},
		defInt:  map[string]bool{},
		defFlt:  map[string]bool{},
		loReg:   -1,
		hiReg:   -1,
	}
	c.collectLocals(cp.kernel.Body)
	c.tmpInt = int32(len(c.intSlot))
	c.tmpFlt = int32(len(c.fltSlot))
	c.nInt, c.nFlt = c.tmpInt, c.tmpFlt
	if partitionable {
		c.loReg = c.tempInt()
		c.hiReg = c.tempInt()
	}
	c.globalReads = map[string]int{}
	countReadsStmts(cp.kernel.Body, c.globalReads)
	if partitionable {
		c.compileRangeLoop(lp)
	} else {
		c.compileStmts(cp.kernel.Body)
	}
	if c.err != nil {
		return c.err
	}
	cp.prog = &program{code: c.code, loReg: c.loReg, hiReg: c.hiReg, supers: c.supers}
	cp.nInts = int(c.nInt)
	cp.nFloats = int(c.nFlt)
	return nil
}

// collectLocals pre-assigns a register to every assigned name (loop vars,
// SSetInt and SSet targets). Reads of names never assigned anywhere fail
// compilation, exactly as in the closure compiler.
func (c *bcompiler) collectLocals(ss []Stmt) {
	for _, s := range ss {
		switch s := s.(type) {
		case SLoop:
			c.defineInt(s.Var)
			c.collectLocals(s.Body)
		case SSetInt:
			c.defineInt(s.Var)
		case SSet:
			c.defineFlt(s.Var)
		}
	}
}

func (c *bcompiler) defineInt(name string) int32 {
	if r, ok := c.intSlot[name]; ok {
		return r
	}
	r := int32(len(c.intSlot))
	c.intSlot[name] = r
	return r
}

func (c *bcompiler) defineFlt(name string) int32 {
	if r, ok := c.fltSlot[name]; ok {
		return r
	}
	r := int32(len(c.fltSlot))
	c.fltSlot[name] = r
	return r
}

func (c *bcompiler) intReg(name string) int32 {
	r, ok := c.intSlot[name]
	if !ok || !c.defInt[name] {
		c.fail("use of undefined int var %q", name)
	}
	return r
}

func (c *bcompiler) fltReg(name string) int32 {
	r, ok := c.fltSlot[name]
	if !ok || !c.defFlt[name] {
		c.fail("use of undefined f32 local %q", name)
	}
	return r
}

func (c *bcompiler) tempInt() int32 {
	r := c.tmpInt
	c.tmpInt++
	if c.tmpInt > c.nInt {
		c.nInt = c.tmpInt
	}
	return r
}

func (c *bcompiler) tempFlt() int32 {
	r := c.tmpFlt
	c.tmpFlt++
	if c.tmpFlt > c.nFlt {
		c.nFlt = c.tmpFlt
	}
	return r
}

func (c *bcompiler) emit(i instr) int {
	c.code = append(c.code, i)
	return len(c.code) - 1
}

func (c *bcompiler) here() int32 { return int32(len(c.code)) }

func (c *bcompiler) compileStmts(ss []Stmt) {
	for _, s := range ss {
		mi, mf := c.tmpInt, c.tmpFlt
		c.compileStmt(s)
		c.tmpInt, c.tmpFlt = mi, mf
	}
}

func (c *bcompiler) compileStmt(s Stmt) {
	switch s := s.(type) {
	case SLoop:
		c.compileLoop(s)
	case SSet:
		// The target is defined before its right-hand side compiles, as in
		// the closure compiler.
		dst := c.defineFlt(s.Var)
		c.defFlt[s.Var] = true
		c.emitF(s.Val, dst)
	case SSetInt:
		dst := c.defineInt(s.Var)
		c.defInt[s.Var] = true
		c.emitInt(s.Val, dst)
	case SStore:
		c.checkBuf(s.Buf)
		ti := c.intOperand(s.Idx)
		tf := c.fltOperand(s.Val)
		c.emit(instr{op: opStore, a: int32(s.Buf), b: ti, c: tf})
	case SStoreInt:
		c.checkBuf(s.Buf)
		ti := c.intOperand(s.Idx)
		tv := c.intOperand(s.Val)
		c.emit(instr{op: opStoreInt, a: int32(s.Buf), b: ti, c: tv})
	default:
		c.fail("unknown statement %T", s)
	}
}

// compileLoop emits a generic counted loop, or a superinstruction when the
// body matches a whole-row pattern. The loop variable register ends at
// extent-1 after a non-empty loop, matching closure semantics (the closure
// path assigns the variable at the top of each iteration and never
// increments past the last).
func (c *bcompiler) compileLoop(s SLoop) {
	if c.trySuper(s, false) {
		return
	}
	ext := c.tempInt()
	c.emitInt(s.Extent, ext) // extent compiles before the var is defined
	v := c.defineInt(s.Var)
	c.defInt[s.Var] = true
	c.emit(instr{op: opIConst, a: v, b: 0})
	head := c.emit(instr{op: opLoopHead, a: v, b: ext})
	c.compileStmts(s.Body)
	c.emit(instr{op: opLoopTail, a: v, b: ext, c: int32(head + 1)})
	c.code[head].c = c.here()
}

// compileRangeLoop compiles the partitionable outer loop against the
// dedicated lo/hi registers; Run and RunRange seed them before dispatch.
func (c *bcompiler) compileRangeLoop(s SLoop) {
	if c.trySuper(s, true) {
		return
	}
	v := c.defineInt(s.Var)
	c.defInt[s.Var] = true
	c.emit(instr{op: opIMov, a: v, b: c.loReg})
	head := c.emit(instr{op: opLoopHead, a: v, b: c.hiReg})
	c.compileStmts(s.Body)
	c.emit(instr{op: opLoopTail, a: v, b: c.hiReg, c: int32(head + 1)})
	c.code[head].c = c.here()
}

// emitInt compiles an integer expression into ints[dst].
func (c *bcompiler) emitInt(e IntExpr, dst int32) {
	switch e := e.(type) {
	case IConst:
		c.emit(instr{op: opIConst, a: dst, b: int32(e)})
	case IDim:
		slot, ok := c.dimSlot[string(e)]
		if !ok {
			c.fail("unknown dim %q", string(e))
			return
		}
		c.emit(instr{op: opIDim, a: dst, b: int32(slot)})
	case IVar:
		c.emit(instr{op: opIMov, a: dst, b: c.intReg(string(e))})
	case ILoad:
		c.checkBuf(e.Buf)
		ti := c.intOperand(e.Idx)
		c.emit(instr{op: opILoad, a: dst, b: int32(e.Buf), c: ti})
	case IBin:
		c.emitIBin(e, dst)
	default:
		c.fail("unknown int expr %T", e)
	}
}

func (c *bcompiler) emitIBin(e IBin, dst int32) {
	switch e.Op {
	case IAdd:
		// r*L + j — the dominant index shape — is a single opIMulAdd.
		if m, ok := e.A.(IBin); ok && m.Op == IMul {
			rb := c.intOperand(m.A)
			rc := c.intOperand(m.B)
			rd := c.intOperand(e.B)
			c.emit(instr{op: opIMulAdd, a: dst, b: rb, c: rc, d: rd})
			return
		}
		if m, ok := e.B.(IBin); ok && m.Op == IMul {
			rb := c.intOperand(m.A)
			rc := c.intOperand(m.B)
			rd := c.intOperand(e.A)
			c.emit(instr{op: opIMulAdd, a: dst, b: rb, c: rc, d: rd})
			return
		}
		if k, ok := e.B.(IConst); ok {
			c.emit(instr{op: opIAddImm, a: dst, b: c.intOperand(e.A), c: int32(k)})
			return
		}
		if k, ok := e.A.(IConst); ok {
			c.emit(instr{op: opIAddImm, a: dst, b: c.intOperand(e.B), c: int32(k)})
			return
		}
	case IMul:
		if k, ok := e.B.(IConst); ok {
			c.emit(instr{op: opIMulImm, a: dst, b: c.intOperand(e.A), c: int32(k)})
			return
		}
		if k, ok := e.A.(IConst); ok {
			c.emit(instr{op: opIMulImm, a: dst, b: c.intOperand(e.B), c: int32(k)})
			return
		}
	}
	ra := c.intOperand(e.A)
	rb := c.intOperand(e.B)
	var op opcode
	switch e.Op {
	case IAdd:
		op = opIAdd
	case ISub:
		op = opISub
	case IMul:
		op = opIMul
	case IDiv:
		op = opIDiv
	case IMod:
		op = opIMod
	case IMin:
		op = opIMin
	default:
		c.fail("unknown int op %d", e.Op)
		return
	}
	c.emit(instr{op: op, a: dst, b: ra, c: rb})
}

// intOperand returns a register holding e's value: named variables are read
// in place; everything else evaluates into a fresh temp.
func (c *bcompiler) intOperand(e IntExpr) int32 {
	if v, ok := e.(IVar); ok {
		return c.intReg(string(v))
	}
	t := c.tempInt()
	c.emitInt(e, t)
	return t
}

// fltOperand mirrors intOperand for f32 expressions.
func (c *bcompiler) fltOperand(e Expr) int32 {
	if v, ok := e.(FLocal); ok {
		return c.fltReg(string(v))
	}
	t := c.tempFlt()
	c.emitF(e, t)
	return t
}

// emitF compiles an f32 expression into floats[dst].
func (c *bcompiler) emitF(e Expr, dst int32) {
	switch e := e.(type) {
	case FConst:
		c.emit(instr{op: opFConst, a: dst, fimm: float32(e)})
	case FLocal:
		c.emit(instr{op: opFMov, a: dst, b: c.fltReg(string(e))})
	case FLoad:
		c.checkBuf(e.Buf)
		ti := c.intOperand(e.Idx)
		c.emit(instr{op: opFLoad, a: dst, b: int32(e.Buf), c: ti})
	case FUn:
		fn, ok := unaryIndex[e.Fn]
		if !ok {
			c.fail("unknown unary fn %q", e.Fn)
			return
		}
		if cx, ok := e.X.(FConst); ok {
			// Constant folding, identical to the closure compiler's.
			c.emit(instr{op: opFConst, a: dst, fimm: unaryTable[fn](float32(cx))})
			return
		}
		rx := c.fltOperand(e.X)
		c.emit(instr{op: opFUn, a: dst, b: int32(fn), c: rx})
	case FBin:
		fn, ok := binaryIndex[e.Fn]
		if !ok {
			c.fail("unknown binary fn %q", e.Fn)
			return
		}
		if ca, okA := e.A.(FConst); okA {
			if cb, okB := e.B.(FConst); okB {
				c.emit(instr{op: opFConst, a: dst, fimm: binaryTable[fn](float32(ca), float32(cb))})
				return
			}
		}
		ra := c.fltOperand(e.A)
		rb := c.fltOperand(e.B)
		switch fn {
		case bcAdd:
			c.emit(instr{op: opFAdd, a: dst, b: ra, c: rb})
		case bcSub:
			c.emit(instr{op: opFSub, a: dst, b: ra, c: rb})
		case bcMul:
			c.emit(instr{op: opFMul, a: dst, b: ra, c: rb})
		case bcDiv:
			c.emit(instr{op: opFDiv, a: dst, b: ra, c: rb})
		case bcMax:
			c.emit(instr{op: opFMax, a: dst, b: ra, c: rb})
		case bcMin:
			c.emit(instr{op: opFMin, a: dst, b: ra, c: rb})
		default:
			c.emit(instr{op: opFBin, a: dst, b: int32(fn), c: ra, d: rb})
		}
	case FCmp:
		var op opcode
		switch e.Op {
		case "lt":
			op = opFCmpLT
		case "le":
			op = opFCmpLE
		case "gt":
			op = opFCmpGT
		case "ge":
			op = opFCmpGE
		case "eq":
			op = opFCmpEQ
		case "ne":
			op = opFCmpNE
		default:
			c.fail("unknown compare op %q", e.Op)
			return
		}
		ra := c.fltOperand(e.A)
		rb := c.fltOperand(e.B)
		c.emit(instr{op: op, a: dst, b: ra, c: rb})
	case FSel:
		// Lazy branches, like the closure path: only the taken side runs.
		rp := c.fltOperand(e.P)
		jz := c.emit(instr{op: opJumpIfZ, a: rp})
		c.emitF(e.A, dst)
		j := c.emit(instr{op: opJump})
		c.code[jz].b = c.here()
		c.emitF(e.B, dst)
		c.code[j].a = c.here()
	case FCastInt:
		rx := c.intOperand(e.X)
		c.emit(instr{op: opFCastInt, a: dst, b: rx})
	default:
		c.fail("unknown expr %T", e)
	}
}
