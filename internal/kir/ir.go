// Package kir is the loop-level kernel IR that fusion groups are lowered
// into — the stand-in for BladeDISC's LLVM/CUDA code generation. A Kernel
// is shape-generic: loop extents reference named runtime dimension
// parameters rather than constants, so one kernel serves every concrete
// shape (the paper's compile-time/runtime combined codegen). Finalize
// performs the "compile-time" half — validating the program and compiling
// every statement into a Go closure — and Run performs the "runtime" half,
// binding concrete dimension values and buffers.
//
// The IR is deliberately small: integer index expressions, f32 scalar
// expressions (booleans are 0/1 floats), sequential statements, loops, and
// stores. All buffers are flat []float32; multi-dimensional indexing is
// explicit arithmetic, exactly as in generated GPU code.
package kir

import "fmt"

// IntExpr is an integer-valued expression (indices, extents).
type IntExpr interface {
	intExpr()
	String() string
}

// IConst is an integer literal.
type IConst int

// IDim references a runtime dimension parameter by name.
type IDim string

// IVar references a loop variable or integer local.
type IVar string

// IntOp enumerates integer arithmetic operators.
type IntOp uint8

// Integer operator values.
const (
	IAdd IntOp = iota
	ISub
	IMul
	IDiv
	IMod
	// IMin yields the smaller operand — used by partitioned reduction
	// programs to clamp the last chunk's extent.
	IMin
)

// IBin is a binary integer operation.
type IBin struct {
	Op   IntOp
	A, B IntExpr
}

// ILoad reads Buf[Idx] and truncates to int — used by gather kernels whose
// index tensors arrive as exact small integers in f32 buffers.
type ILoad struct {
	Buf int
	Idx IntExpr
}

func (IConst) intExpr() {}
func (IDim) intExpr()   {}
func (IVar) intExpr()   {}
func (IBin) intExpr()   {}
func (ILoad) intExpr()  {}

// String implements fmt.Stringer.
func (e IConst) String() string { return fmt.Sprintf("%d", int(e)) }

// String implements fmt.Stringer.
func (e IDim) String() string { return "$" + string(e) }

// String implements fmt.Stringer.
func (e IVar) String() string { return string(e) }

// String implements fmt.Stringer.
func (e IBin) String() string {
	if e.Op == IMin {
		return fmt.Sprintf("min(%s, %s)", e.A, e.B)
	}
	ops := [...]string{"+", "-", "*", "/", "%"}
	return fmt.Sprintf("(%s %s %s)", e.A, ops[e.Op], e.B)
}

// String implements fmt.Stringer.
func (e ILoad) String() string { return fmt.Sprintf("int(b%d[%s])", e.Buf, e.Idx) }

// Expr is an f32-valued scalar expression.
type Expr interface {
	expr()
	String() string
}

// FConst is an f32 literal.
type FConst float32

// FLoad reads Buf[Idx].
type FLoad struct {
	Buf int
	Idx IntExpr
}

// FLocal references an f32 local set by SSet.
type FLocal string

// FUn applies a named unary scalar function (see FuncTable).
type FUn struct {
	Fn string
	X  Expr
}

// FBin applies a named binary scalar function (see FuncTable).
type FBin struct {
	Fn   string
	A, B Expr
}

// FCmp compares and yields 1.0 or 0.0. Op is lt|le|gt|ge|eq|ne.
type FCmp struct {
	Op   string
	A, B Expr
}

// FSel yields A when P != 0, else B.
type FSel struct {
	P, A, B Expr
}

// FCastInt converts an integer expression to f32 (for iota-like patterns).
type FCastInt struct {
	X IntExpr
}

func (FConst) expr()   {}
func (FLoad) expr()    {}
func (FLocal) expr()   {}
func (FUn) expr()      {}
func (FBin) expr()     {}
func (FCmp) expr()     {}
func (FSel) expr()     {}
func (FCastInt) expr() {}

// String implements fmt.Stringer.
func (e FConst) String() string { return fmt.Sprintf("%g", float32(e)) }

// String implements fmt.Stringer.
func (e FLoad) String() string { return fmt.Sprintf("b%d[%s]", e.Buf, e.Idx) }

// String implements fmt.Stringer.
func (e FLocal) String() string { return string(e) }

// String implements fmt.Stringer.
func (e FUn) String() string { return fmt.Sprintf("%s(%s)", e.Fn, e.X) }

// String implements fmt.Stringer.
func (e FBin) String() string { return fmt.Sprintf("%s(%s, %s)", e.Fn, e.A, e.B) }

// String implements fmt.Stringer.
func (e FCmp) String() string { return fmt.Sprintf("(%s %s %s)", e.A, e.Op, e.B) }

// String implements fmt.Stringer.
func (e FSel) String() string { return fmt.Sprintf("sel(%s, %s, %s)", e.P, e.A, e.B) }

// String implements fmt.Stringer.
func (e FCastInt) String() string { return fmt.Sprintf("f32(%s)", e.X) }

// Stmt is a kernel statement.
type Stmt interface {
	stmt()
}

// LoopFlags carries lowering hints attached to a loop. Hints never change
// semantics: they gate *attempts* at bytecode superinstruction matching,
// and every match is still verified structurally, so a wrong flag can cost
// speed but never correctness.
type LoopFlags uint8

// LoopStride1 marks a loop the lowering believes walks buffers
// contiguously (unit stride in the loop variable), making it a candidate
// for whole-row superinstructions.
const LoopStride1 LoopFlags = 1 << 0

// SLoop runs Body with Var = 0..Extent-1.
type SLoop struct {
	Var    string
	Extent IntExpr
	Body   []Stmt
	// Flags are optional lowering hints (see LoopFlags). Zero is always
	// safe; old serialized kernels decode with zero flags and simply skip
	// superinstruction matching.
	Flags LoopFlags
}

// SSet assigns an f32 local.
type SSet struct {
	Var string
	Val Expr
}

// SSetInt assigns an integer local.
type SSetInt struct {
	Var string
	Val IntExpr
}

// SStore writes Buf[Idx] = Val.
type SStore struct {
	Buf int
	Idx IntExpr
	Val Expr
}

// SStoreInt writes Buf[Idx] = float32(Val); used by index-producing kernels.
type SStoreInt struct {
	Buf int
	Idx IntExpr
	Val IntExpr
}

func (SLoop) stmt()     {}
func (SSet) stmt()      {}
func (SSetInt) stmt()   {}
func (SStore) stmt()    {}
func (SStoreInt) stmt() {}

// Kernel is a shape-generic kernel program.
type Kernel struct {
	Name string
	// NumBuffers is the number of flat f32 buffers the kernel touches;
	// Run receives exactly this many, inputs first then outputs by the
	// caller's convention.
	NumBuffers int
	// DimNames are the runtime dimension parameters, bound positionally
	// at Run time.
	DimNames []string
	Body     []Stmt
}

// Helpers for building index arithmetic without deep nesting noise.

// Mul returns a*b, folding constants.
func Mul(a, b IntExpr) IntExpr {
	if ca, ok := a.(IConst); ok {
		if cb, ok := b.(IConst); ok {
			return IConst(int(ca) * int(cb))
		}
		if ca == 1 {
			return b
		}
	}
	if cb, ok := b.(IConst); ok && cb == 1 {
		return a
	}
	return IBin{Op: IMul, A: a, B: b}
}

// Add returns a+b, folding constants.
func Add(a, b IntExpr) IntExpr {
	if ca, ok := a.(IConst); ok {
		if cb, ok := b.(IConst); ok {
			return IConst(int(ca) + int(cb))
		}
		if ca == 0 {
			return b
		}
	}
	if cb, ok := b.(IConst); ok && cb == 0 {
		return a
	}
	return IBin{Op: IAdd, A: a, B: b}
}

// Div returns a/b, folding constants.
func Div(a, b IntExpr) IntExpr {
	if cb, ok := b.(IConst); ok && cb == 1 {
		return a
	}
	return IBin{Op: IDiv, A: a, B: b}
}

// Mod returns a%b.
func Mod(a, b IntExpr) IntExpr { return IBin{Op: IMod, A: a, B: b} }

// Min returns min(a,b), folding constants.
func Min(a, b IntExpr) IntExpr {
	if ca, ok := a.(IConst); ok {
		if cb, ok := b.(IConst); ok {
			if ca < cb {
				return ca
			}
			return cb
		}
	}
	return IBin{Op: IMin, A: a, B: b}
}
