package kir

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// addKernel builds out[i] = a[i] + b[i] over a runtime dim n.
func addKernel() *Kernel {
	return &Kernel{
		Name:       "add",
		NumBuffers: 3,
		DimNames:   []string{"n"},
		Body: []Stmt{
			SLoop{Var: "i", Extent: IDim("n"), Body: []Stmt{
				SStore{Buf: 2, Idx: IVar("i"),
					Val: FBin{Fn: "add", A: FLoad{Buf: 0, Idx: IVar("i")}, B: FLoad{Buf: 1, Idx: IVar("i")}}},
			}},
		},
	}
}

func TestAddKernelArbitraryDims(t *testing.T) {
	cp := addKernel().MustFinalize()
	for _, n := range []int{0, 1, 7, 128} {
		a := make([]float32, n)
		b := make([]float32, n)
		out := make([]float32, n)
		for i := range a {
			a[i] = float32(i)
			b[i] = 2 * float32(i)
		}
		if err := cp.Run([][]float32{a, b, out}, []int{n}); err != nil {
			t.Fatal(err)
		}
		for i := range out {
			if out[i] != 3*float32(i) {
				t.Fatalf("n=%d out[%d]=%v", n, i, out[i])
			}
		}
	}
}

func TestRowSumKernel(t *testing.T) {
	// out[r] = sum_j in[r*L + j], dims (R, L) runtime.
	k := &Kernel{
		Name:       "rowsum",
		NumBuffers: 2,
		DimNames:   []string{"R", "L"},
		Body: []Stmt{
			SLoop{Var: "r", Extent: IDim("R"), Body: []Stmt{
				SSet{Var: "acc", Val: FConst(0)},
				SLoop{Var: "j", Extent: IDim("L"), Body: []Stmt{
					SSet{Var: "acc", Val: FBin{Fn: "add", A: FLocal("acc"),
						B: FLoad{Buf: 0, Idx: Add(Mul(IVar("r"), IDim("L")), IVar("j"))}}},
				}},
				SStore{Buf: 1, Idx: IVar("r"), Val: FLocal("acc")},
			}},
		},
	}
	cp := k.MustFinalize()
	in := []float32{1, 2, 3, 4, 5, 6}
	out := make([]float32, 2)
	if err := cp.Run([][]float32{in, out}, []int{2, 3}); err != nil {
		t.Fatal(err)
	}
	if out[0] != 6 || out[1] != 15 {
		t.Fatalf("out=%v", out)
	}
	// Same kernel, different shape — no recompilation.
	out6 := make([]float32, 6)
	if err := cp.Run([][]float32{in, out6}, []int{6, 1}); err != nil {
		t.Fatal(err)
	}
	for i, v := range in {
		if out6[i] != v {
			t.Fatalf("out6=%v", out6)
		}
	}
}

func TestCompareSelectCast(t *testing.T) {
	// out[i] = i < 2 ? exp(a[i]) : -1
	k := &Kernel{
		Name:       "sel",
		NumBuffers: 2,
		DimNames:   []string{"n"},
		Body: []Stmt{
			SLoop{Var: "i", Extent: IDim("n"), Body: []Stmt{
				SStore{Buf: 1, Idx: IVar("i"), Val: FSel{
					P: FCmp{Op: "lt", A: FCastInt{X: IVar("i")}, B: FConst(2)},
					A: FUn{Fn: "exp", X: FLoad{Buf: 0, Idx: IVar("i")}},
					B: FConst(-1),
				}},
			}},
		},
	}
	cp := k.MustFinalize()
	in := []float32{0, 1, 2, 3}
	out := make([]float32, 4)
	if err := cp.Run([][]float32{in, out}, []int{4}); err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 || math.Abs(float64(out[1])-math.E) > 1e-5 || out[2] != -1 || out[3] != -1 {
		t.Fatalf("out=%v", out)
	}
}

func TestIndexArithmeticFolding(t *testing.T) {
	if Mul(IConst(2), IConst(3)) != IConst(6) {
		t.Fatal("const mul folding")
	}
	if Mul(IConst(1), IVar("x")) != IVar("x") {
		t.Fatal("identity mul folding")
	}
	if Add(IConst(0), IVar("x")) != IVar("x") {
		t.Fatal("identity add folding")
	}
	if Div(IVar("x"), IConst(1)) != IVar("x") {
		t.Fatal("identity div folding")
	}
}

func TestFinalizeRejectsBadPrograms(t *testing.T) {
	cases := []struct {
		name string
		k    *Kernel
	}{
		{"undefined var", &Kernel{NumBuffers: 1, Body: []Stmt{
			SStore{Buf: 0, Idx: IVar("nope"), Val: FConst(0)},
		}}},
		{"buffer oob", &Kernel{NumBuffers: 1, Body: []Stmt{
			SStore{Buf: 3, Idx: IConst(0), Val: FConst(0)},
		}}},
		{"unknown dim", &Kernel{NumBuffers: 1, Body: []Stmt{
			SLoop{Var: "i", Extent: IDim("zz"), Body: nil},
		}}},
		{"unknown fn", &Kernel{NumBuffers: 1, Body: []Stmt{
			SStore{Buf: 0, Idx: IConst(0), Val: FUn{Fn: "zzz", X: FConst(1)}},
		}}},
		{"undefined local", &Kernel{NumBuffers: 1, Body: []Stmt{
			SStore{Buf: 0, Idx: IConst(0), Val: FLocal("acc")},
		}}},
	}
	for _, c := range cases {
		if _, err := c.k.Finalize(); err == nil {
			t.Errorf("%s: expected finalize error", c.name)
		}
	}
}

func TestRunValidatesArity(t *testing.T) {
	cp := addKernel().MustFinalize()
	if err := cp.Run([][]float32{{1}}, []int{1}); err == nil {
		t.Fatal("buffer arity must be checked")
	}
	if err := cp.Run([][]float32{{1}, {1}, {1}}, nil); err == nil {
		t.Fatal("dim arity must be checked")
	}
}

func TestStringRendering(t *testing.T) {
	e := FBin{Fn: "add", A: FLoad{Buf: 0, Idx: Add(Mul(IVar("r"), IDim("L")), IVar("j"))}, B: FConst(1)}
	got := e.String()
	want := "add(b0[((r * $L) + j)], 1)"
	if got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

// Property: the shape-generic add kernel agrees with Go addition for
// arbitrary sizes and contents.
func TestAddKernelProperty(t *testing.T) {
	cp := addKernel().MustFinalize()
	f := func(xs []float32) bool {
		n := len(xs)
		b := make([]float32, n)
		out := make([]float32, n)
		for i := range b {
			b[i] = float32(i) * 0.5
		}
		if err := cp.Run([][]float32{xs, b, out}, []int{n}); err != nil {
			return false
		}
		for i := range out {
			if out[i] != xs[i]+b[i] && !(math.IsNaN(float64(out[i])) && math.IsNaN(float64(xs[i]+b[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKernelDisassembly(t *testing.T) {
	k := addKernel()
	src := k.String()
	for _, want := range []string{"kernel add(n) buffers=3", "for i in 0..$n", "b2[i] = add(b0[i], b1[i])"} {
		if !strings.Contains(src, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, src)
		}
	}
	if cp := k.MustFinalize(); cp.Source() != src {
		t.Fatal("Compiled.Source must match the kernel disassembly")
	}
}

func TestConstantFoldingInCompiler(t *testing.T) {
	// exp(1)+2 folds at Finalize; the kernel stores a constant.
	k := &Kernel{
		Name:       "fold",
		NumBuffers: 1,
		Body: []Stmt{
			SStore{Buf: 0, Idx: IConst(0), Val: FBin{Fn: "add",
				A: FUn{Fn: "exp", X: FConst(1)}, B: FConst(2)}},
		},
	}
	out := make([]float32, 1)
	if err := k.MustFinalize().Run([][]float32{out}, nil); err != nil {
		t.Fatal(err)
	}
	want := float32(math.E) + 2
	if math.Abs(float64(out[0]-want)) > 1e-5 {
		t.Fatalf("folded value %v, want %v", out[0], want)
	}
}
