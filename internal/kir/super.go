package kir

// Superinstruction matching: loops that walk buffers contiguously collapse
// into single whole-row bytecode ops, so the dispatch loop runs once per
// row instead of once per IR node per element. Matching is attempted only
// on loops the lowering flagged LoopStride1, but every match is verified
// structurally — after forward-substituting the loop body's local
// definitions, the body must reduce to one of a fixed set of store/reduce
// shapes whose indices are affine in the loop variable with unit (or
// unrolled) stride and loop-invariant bases. A wrong hint therefore falls
// back to generic bytecode; it can never change results.

type rowKind uint8

const (
	rowNone    rowKind = iota
	rkCopy             // dst[i] = src[i]
	rkMap1             // dst[i] = un(src[i])
	rkZip              // dst[i] = bin(x[i], y[i])
	rkMapZip           // dst[i] = un(bin(x[i], y[i]))
	rkZipS             // dst[i] = bin(src[i], s) or bin(s, src[i])
	rkMapZipS          // dst[i] = un(bin(src[i], s)) / un(bin(s, src[i]))
	rkZip2S            // dst[i] = bin2(bin1(src[i], s1), s2)
	rkFill             // dst[i] = s
	rkGathS            // dst[i] = un(src[xBase + i*xStride]) (strided load)
	rkReduce           // acc = bin(acc, src[i])
	rkStoreRed         // dst[i] = un(bin(src[i], s)); acc = bin2(acc, dst[i])
)

// binNoneIdx marks "no binary op" in rkStoreRed's packed function field.
const binNoneIdx = 0xff

// rowMatch describes one recognized whole-row pattern.
type rowMatch struct {
	kind       rowKind
	un         int // unary fn index (rkMap1, rkMapZipS)
	bin, bin2  int // binary fn indices
	scalarLeft bool
	dstBuf     int
	xBuf, yBuf int
	dstBase    IntExpr // loop-invariant element bases
	xBase      IntExpr
	yBase      IntExpr
	xStride    IntExpr // rkGathS only: loop-invariant source element stride
	scalar1    Expr    // FConst, loop-invariant FLocal, or loop-invariant FLoad
	scalar2    Expr
	accName    string // rkReduce / rkStoreRed only
	unroll     int    // lanes per iteration (1 = plain; 4 = vec4 bodies)
	// consumed lists the prefixed names absorbed by the match (substituted
	// locals and the loop variable); each must have no reads outside the
	// loop body, since the superinstruction never materializes them.
	consumed []string
	// bodyReads are the read counts within the original loop body, used
	// with bcompiler.globalReads for the outside-the-loop liveness check.
	bodyReads map[string]int
}

// trySuper matches and emits a superinstruction for the loop; it reports
// whether the loop was fully absorbed. rng selects compilation against the
// partitionable lo/hi registers instead of [0, extent).
func (c *bcompiler) trySuper(s SLoop, rng bool) bool {
	if s.Flags&LoopStride1 == 0 {
		return false
	}
	m, ok := c.matchRow(s)
	if !ok {
		return false
	}
	// Liveness: a superinstruction materializes neither the loop variable
	// nor the substituted locals, so any read of them outside this loop
	// body disqualifies the match.
	for _, name := range m.consumed {
		if c.globalReads[name] != m.bodyReads[name] {
			return false
		}
	}
	c.emitSuper(m, s, rng)
	return true
}

// matchRow recognizes the loop body as one of the row patterns.
func (c *bcompiler) matchRow(s SLoop) (rowMatch, bool) {
	assigned := map[string]bool{}
	assignedIn(s.Body, assigned)
	if m, ok := c.matchGroup(s.Body, s.Var, 1, 0, true, assigned); ok {
		m.bodyReads = map[string]int{}
		countReadsStmts(s.Body, m.bodyReads)
		return m, true
	}
	if m, ok := c.matchUnrolled(s, assigned); ok {
		m.bodyReads = map[string]int{}
		countReadsStmts(s.Body, m.bodyReads)
		return m, true
	}
	return rowMatch{}, false
}

// matchUnrolled recognizes a body that is k structurally identical unrolled
// lanes — each [SSetInt v = base + var*k + u; ...] for u = 0..k-1 — and
// rewrites it as a single row over k*extent contiguous elements. This is
// the shape of codegen's vectorized elementwise variants.
func (c *bcompiler) matchUnrolled(s SLoop, assigned map[string]bool) (rowMatch, bool) {
	if len(s.Body) < 2 {
		return rowMatch{}, false
	}
	first, ok := s.Body[0].(SSetInt)
	if !ok {
		return rowMatch{}, false
	}
	_, k, off, ok := splitAffine(first.Val, s.Var, assigned)
	if !ok || k < 2 || off != 0 || len(s.Body)%k != 0 {
		return rowMatch{}, false
	}
	groupLen := len(s.Body) / k
	var m0 rowMatch
	for u := 0; u < k; u++ {
		group := s.Body[u*groupLen : (u+1)*groupLen]
		mu, ok := c.matchGroup(group, s.Var, k, u, false, assigned)
		if !ok || mu.kind == rkReduce || mu.kind == rkStoreRed {
			// Folding accumulator kinds across lanes would reorder the
			// reduction; only pure store rows de-unroll.
			return rowMatch{}, false
		}
		if u == 0 {
			m0 = mu
			continue
		}
		if !sameRow(m0, mu) {
			return rowMatch{}, false
		}
		m0.consumed = append(m0.consumed, mu.consumed...)
	}
	m0.unroll = k
	return m0, true
}

// sameRow reports whether two lane matches describe the same row operation
// (everything but lane offsets and consumed locals).
func sameRow(a, b rowMatch) bool {
	return a.kind == b.kind && a.un == b.un && a.bin == b.bin && a.bin2 == b.bin2 &&
		a.scalarLeft == b.scalarLeft && a.dstBuf == b.dstBuf &&
		a.xBuf == b.xBuf && a.yBuf == b.yBuf &&
		a.dstBase == b.dstBase && a.xBase == b.xBase && a.yBase == b.yBase &&
		a.xStride == b.xStride && a.scalar1 == b.scalar1 && a.scalar2 == b.scalar2
}

// matchGroup normalizes one lane (forward-substituting SSetInt/SSet
// definitions) and classifies the remaining statement. stride/lane fix the
// required affine shape of every index; foldOff folds constant offsets
// into the base (plain stride-1 matching) instead of requiring off == lane.
func (c *bcompiler) matchGroup(body []Stmt, v string, stride, lane int, foldOff bool, assigned map[string]bool) (rowMatch, bool) {
	ienv := map[string]IntExpr{}
	fenv := map[string]Expr{}
	var rest []Stmt
	consumed := []string{"i:" + v}
	for _, st := range body {
		switch st := st.(type) {
		case SSetInt:
			if _, dup := ienv[st.Var]; dup {
				return rowMatch{}, false
			}
			ienv[st.Var] = substInt(st.Val, ienv)
			consumed = append(consumed, "i:"+st.Var)
		case SSet:
			val := substExpr(st.Val, ienv, fenv)
			if readsLocal(val, st.Var) {
				// Self-referential assignment: a reduction accumulator.
				rest = append(rest, SSet{Var: st.Var, Val: val})
				continue
			}
			if _, dup := fenv[st.Var]; dup {
				return rowMatch{}, false
			}
			fenv[st.Var] = val
			consumed = append(consumed, "f:"+st.Var)
		case SStore:
			rest = append(rest, SStore{Buf: st.Buf, Idx: substInt(st.Idx, ienv), Val: substExpr(st.Val, ienv, fenv)})
		default:
			return rowMatch{}, false
		}
	}
	base := func(idx IntExpr) (IntExpr, bool) {
		b, s, o, ok := splitAffine(idx, v, assigned)
		if !ok || s != stride {
			return nil, false
		}
		if foldOff {
			return addConst(b, o), true
		}
		if o != lane {
			return nil, false
		}
		return b, true
	}
	ctx := rowCtx{v: v, assigned: assigned, base: base, strided: foldOff && stride == 1, dstBuf: -1}
	if len(rest) == 2 {
		// dst[i] = E; acc = bin2(acc, E) — a fused store+reduce sweep, the
		// shape of softmax's scale/max and exp/sum passes.
		st, okS := rest[0].(SStore)
		ac, okA := rest[1].(SSet)
		if !okS || !okA {
			return rowMatch{}, false
		}
		m, ok := c.matchStoreReduce(st, ac, ctx)
		if !ok {
			return rowMatch{}, false
		}
		m.unroll = 1
		m.consumed = consumed
		return m, true
	}
	if len(rest) != 1 {
		return rowMatch{}, false
	}
	switch st := rest[0].(type) {
	case SSet:
		// acc = bin(acc, load(x[i])) — one-pass reduction accumulate.
		fb, ok := st.Val.(FBin)
		if !ok {
			return rowMatch{}, false
		}
		if fl, ok := fb.A.(FLocal); !ok || string(fl) != st.Var {
			return rowMatch{}, false
		}
		ld, ok := fb.B.(FLoad)
		if !ok {
			return rowMatch{}, false
		}
		xb, ok := base(ld.Idx)
		if !ok {
			return rowMatch{}, false
		}
		fn, ok := binaryIndex[fb.Fn]
		if !ok {
			return rowMatch{}, false
		}
		return rowMatch{kind: rkReduce, bin: fn, xBuf: ld.Buf, xBase: xb,
			accName: st.Var, unroll: 1, consumed: consumed}, true
	case SStore:
		db, ok := base(st.Idx)
		if !ok {
			return rowMatch{}, false
		}
		ctx.dstBuf = st.Buf
		m, ok := c.classifyRowVal(st.Val, ctx)
		if !ok {
			return rowMatch{}, false
		}
		m.dstBuf = st.Buf
		m.dstBase = db
		m.unroll = 1
		m.consumed = consumed
		return m, true
	}
	return rowMatch{}, false
}

// matchStoreReduce recognizes the two-statement fused sweep
// dst[i] = E; acc = bin2(acc, E). The row op reuses the stored value for
// the fold, which is bit-identical to re-evaluating E because E is pure and
// must not read the destination buffer (enforced below: a store that lands
// on one of E's own load addresses would otherwise feed the fold the
// post-store value).
func (c *bcompiler) matchStoreReduce(st SStore, ac SSet, ctx rowCtx) (rowMatch, bool) {
	fb, ok := ac.Val.(FBin)
	if !ok {
		return rowMatch{}, false
	}
	if fl, ok := fb.A.(FLocal); !ok || string(fl) != ac.Var {
		return rowMatch{}, false
	}
	bin2, ok := binaryIndex[fb.Fn]
	if !ok || fb.B != st.Val {
		return rowMatch{}, false
	}
	db, ok := ctx.base(st.Idx)
	if !ok {
		return rowMatch{}, false
	}
	ctx.dstBuf = st.Buf
	ctx.strided = false
	inner, ok := c.classifyRowVal(st.Val, ctx)
	if !ok || inner.xBuf == st.Buf {
		return rowMatch{}, false
	}
	m := rowMatch{kind: rkStoreRed, bin2: bin2, dstBuf: st.Buf, dstBase: db,
		xBuf: inner.xBuf, xBase: inner.xBase, accName: ac.Var}
	switch inner.kind {
	case rkCopy:
		m.un, m.bin = bcIdUn, binNoneIdx
	case rkMap1:
		m.un, m.bin = inner.un, binNoneIdx
	case rkZipS:
		m.un, m.bin = bcIdUn, inner.bin
		m.scalar1, m.scalarLeft = inner.scalar1, inner.scalarLeft
	case rkMapZipS:
		m.un, m.bin = inner.un, inner.bin
		m.scalar1, m.scalarLeft = inner.scalar1, inner.scalarLeft
	default:
		return rowMatch{}, false
	}
	return m, true
}

// rowCtx carries everything classification needs about the enclosing loop:
// the loop variable, the names it assigns, the affine base resolver for
// unit-stride loads, the buffer the (single) store writes (-1 before it is
// known), and whether strided source loads may match (plain stride-1 loops
// only; unrolled lanes cannot fold symbolic strides).
type rowCtx struct {
	v        string
	assigned map[string]bool
	base     func(IntExpr) (IntExpr, bool)
	dstBuf   int
	strided  bool
}

// scalar reports whether e is loop-invariant and safe to hoist into a
// register read once per row: a constant, a local not assigned in the loop,
// or a load at an invariant index from a buffer the row never writes (the
// store could otherwise feed later iterations through the hoisted value).
func (ctx rowCtx) scalar(e Expr) bool {
	switch e := e.(type) {
	case FConst:
		return true
	case FLocal:
		return !ctx.assigned["f:"+string(e)]
	case FLoad:
		return e.Buf != ctx.dstBuf && invariantInt(e.Idx, ctx.v, ctx.assigned)
	}
	return false
}

func (ctx rowCtx) load(e Expr) (int, IntExpr, bool) {
	ld, ok := e.(FLoad)
	if !ok {
		return 0, nil, false
	}
	b, ok := ctx.base(ld.Idx)
	return ld.Buf, b, ok
}

// classifyRowVal matches the stored value against the supported row
// expression shapes.
func (c *bcompiler) classifyRowVal(val Expr, ctx rowCtx) (rowMatch, bool) {
	switch val := val.(type) {
	case FConst, FLocal:
		// dst[i] = s over the whole row: a fill (pad's zero sweeps).
		if ctx.scalar(val) {
			return rowMatch{kind: rkFill, scalar1: val}, true
		}
		return rowMatch{}, false
	case FLoad:
		if buf, b, ok := ctx.load(val); ok {
			return rowMatch{kind: rkCopy, xBuf: buf, xBase: b}, true
		}
		if ctx.scalar(val) {
			return rowMatch{kind: rkFill, scalar1: val}, true
		}
		// Strided gather: base + i*stride with an invariant stride — the
		// inner sweep of a restructured transpose.
		if ctx.strided {
			if b, sx, ok := splitAffineSym(val.Idx, ctx.v, ctx.assigned); ok {
				return rowMatch{kind: rkGathS, un: bcIdUn, xBuf: val.Buf, xBase: b, xStride: sx}, true
			}
		}
		return rowMatch{}, false
	case FUn:
		un, ok := unaryIndex[val.Fn]
		if !ok {
			return rowMatch{}, false
		}
		if buf, b, ok := ctx.load(val.X); ok {
			return rowMatch{kind: rkMap1, un: un, xBuf: buf, xBase: b}, true
		}
		if ld, isLd := val.X.(FLoad); isLd && ctx.strided {
			if b, sx, ok := splitAffineSym(ld.Idx, ctx.v, ctx.assigned); ok {
				return rowMatch{kind: rkGathS, un: un, xBuf: ld.Buf, xBase: b, xStride: sx}, true
			}
		}
		// un(bin(...)) — the softmax exp(x - max) sweep, or a vector-vector
		// un(bin(x, y)) like gelu(x + bias_row).
		fb, ok := val.X.(FBin)
		if !ok {
			return rowMatch{}, false
		}
		if fn, ok := binaryIndex[fb.Fn]; ok {
			if xBuf, xb, ok := ctx.load(fb.A); ok {
				if yBuf, yb, ok := ctx.load(fb.B); ok {
					return rowMatch{kind: rkMapZip, un: un, bin: fn,
						xBuf: xBuf, xBase: xb, yBuf: yBuf, yBase: yb}, true
				}
			}
		}
		m, ok := c.classifyBinScalar(fb, ctx)
		if !ok {
			return rowMatch{}, false
		}
		m.kind = rkMapZipS
		m.un = un
		return m, true
	case FBin:
		fn, ok := binaryIndex[val.Fn]
		if !ok {
			return rowMatch{}, false
		}
		if xBuf, xb, ok := ctx.load(val.A); ok {
			if yBuf, yb, ok := ctx.load(val.B); ok {
				return rowMatch{kind: rkZip, bin: fn, xBuf: xBuf, xBase: xb, yBuf: yBuf, yBase: yb}, true
			}
		}
		// bin2(bin1(load, s1), s2) — e.g. the layernorm (x-mean)*rstd sweep.
		if inner, ok := val.A.(FBin); ok && ctx.scalar(val.B) {
			if m, ok := c.classifyBinScalar(inner, ctx); ok {
				m.kind = rkZip2S
				m.bin2 = fn
				m.scalar2 = val.B
				return m, true
			}
		}
		m, ok := c.classifyBinScalar(val, ctx)
		if !ok {
			return rowMatch{}, false
		}
		m.kind = rkZipS
		return m, true
	}
	return rowMatch{}, false
}

// classifyBinScalar matches bin(load, s) or bin(s, load) with a
// loop-invariant scalar. rkZip2S additionally requires the scalar on the
// right of the inner op, which this reports via scalarLeft.
func (c *bcompiler) classifyBinScalar(fb FBin, ctx rowCtx) (rowMatch, bool) {
	fn, ok := binaryIndex[fb.Fn]
	if !ok {
		return rowMatch{}, false
	}
	if buf, b, ok := ctx.load(fb.A); ok && ctx.scalar(fb.B) {
		return rowMatch{bin: fn, xBuf: buf, xBase: b, scalar1: fb.B, scalarLeft: false}, true
	}
	if buf, b, ok := ctx.load(fb.B); ok && ctx.scalar(fb.A) {
		return rowMatch{bin: fn, xBuf: buf, xBase: b, scalar1: fb.A, scalarLeft: true}, true
	}
	return rowMatch{}, false
}

// emitSuper emits the base/count setup and the row instruction.
func (c *bcompiler) emitSuper(m rowMatch, s SLoop, rng bool) {
	// Element count: extent (or hi-lo) times the unroll factor.
	tn := c.tempInt()
	if rng {
		c.emit(instr{op: opISub, a: tn, b: c.hiReg, c: c.loReg})
	} else {
		c.emitInt(s.Extent, tn)
	}
	if m.unroll > 1 {
		c.emit(instr{op: opIMulImm, a: tn, b: tn, c: int32(m.unroll)})
	}
	// adjust shifts a base register by unroll*lo for range runs: iteration
	// lo starts at element base + unroll*lo.
	adjust := func(reg int32) {
		if !rng {
			return
		}
		if m.unroll == 1 {
			c.emit(instr{op: opIAdd, a: reg, b: reg, c: c.loReg})
			return
		}
		tk := c.tempInt()
		c.emit(instr{op: opIConst, a: tk, b: int32(m.unroll)})
		c.emit(instr{op: opIMulAdd, a: reg, b: tk, c: c.loReg, d: reg})
	}
	if m.kind == rkReduce {
		tb := c.tempInt()
		c.emitInt(m.xBase, tb)
		adjust(tb)
		acc := c.fltReg(m.accName)
		c.emit(instr{op: opRowReduce, a: acc, b: int32(m.xBuf), c: tb, d: tn, g: int32(m.bin)})
		c.supers++
		return
	}
	if m.kind == rkFill {
		bd := c.tempInt()
		c.emitInt(m.dstBase, bd)
		adjust(bd)
		rs := c.fltOperand(m.scalar1)
		c.emit(instr{op: opRowFill, a: int32(m.dstBuf), c: rs, d: bd, e: tn})
		c.supers++
		return
	}
	if m.kind == rkGathS {
		bd := c.tempInt()
		bx := c.tempInt()
		ts := c.tempInt()
		c.emitInt(m.dstBase, bd)
		adjust(bd)
		c.emitInt(m.xBase, bx)
		c.emitInt(m.xStride, ts)
		if rng {
			// Iteration lo reads from source element xBase + lo*stride.
			c.emit(instr{op: opIMulAdd, a: bx, b: ts, c: c.loReg, d: bx})
		}
		c.emit(instr{op: opRowGathS, a: int32(m.dstBuf), b: int32(m.xBuf), c: ts, d: bd, e: tn,
			g: int32(m.un)})
		c.supers++
		return
	}
	// Store patterns share the consecutive-base-register convention:
	// ints[d] = dst base, ints[d+1] = x base, (ints[d+2] = y base).
	bd := c.tempInt()
	bx := c.tempInt()
	var by int32
	if m.kind == rkZip || m.kind == rkMapZip {
		by = c.tempInt()
	}
	c.emitInt(m.dstBase, bd)
	adjust(bd)
	c.emitInt(m.xBase, bx)
	adjust(bx)
	if m.kind == rkZip || m.kind == rkMapZip {
		c.emitInt(m.yBase, by)
		adjust(by)
	}
	switch m.kind {
	case rkCopy:
		if m.dstBuf == m.xBuf {
			// Same-buffer copies keep the scalar loop's ascending
			// element order (memmove semantics would differ on overlap).
			c.emit(instr{op: opRowMap1, a: int32(m.dstBuf), b: int32(m.xBuf), d: bd, e: tn,
				g: int32(unaryIndex["id"])})
		} else {
			c.emit(instr{op: opRowCopy, a: int32(m.dstBuf), b: int32(m.xBuf), d: bd, e: tn})
		}
	case rkMap1:
		c.emit(instr{op: opRowMap1, a: int32(m.dstBuf), b: int32(m.xBuf), d: bd, e: tn, g: int32(m.un)})
	case rkZip:
		c.emit(instr{op: opRowZip, a: int32(m.dstBuf), b: int32(m.xBuf), c: int32(m.yBuf),
			d: bd, e: tn, g: int32(m.bin)})
	case rkMapZip:
		c.emit(instr{op: opRowMapZip, a: int32(m.dstBuf), b: int32(m.xBuf), c: int32(m.yBuf),
			d: bd, e: tn, g: int32(m.bin) | int32(m.un)<<8})
	case rkZipS:
		op := opRowZipSR
		if m.scalarLeft {
			op = opRowZipSL
		}
		rs := c.fltOperand(m.scalar1)
		c.emit(instr{op: op, a: int32(m.dstBuf), b: int32(m.xBuf), c: rs, d: bd, e: tn, g: int32(m.bin)})
	case rkMapZipS:
		op := opRowMapZipSR
		if m.scalarLeft {
			op = opRowMapZipSL
		}
		rs := c.fltOperand(m.scalar1)
		c.emit(instr{op: op, a: int32(m.dstBuf), b: int32(m.xBuf), c: rs, d: bd, e: tn,
			g: int32(m.bin) | int32(m.un)<<8})
	case rkZip2S:
		rs1 := c.tempFlt()
		rs2 := c.tempFlt()
		c.emitF(m.scalar1, rs1)
		c.emitF(m.scalar2, rs2)
		c.emit(instr{op: opRowZip2S, a: int32(m.dstBuf), b: int32(m.xBuf), c: rs1, d: bd, e: tn,
			g: int32(m.bin) | int32(m.bin2)<<8})
	case rkStoreRed:
		acc := c.fltReg(m.accName)
		var rs int32
		if m.bin != binNoneIdx {
			rs = c.fltOperand(m.scalar1)
		}
		op := opRowFRedSR
		if m.scalarLeft {
			op = opRowFRedSL
		}
		c.emit(instr{op: op, a: int32(m.dstBuf), b: int32(m.xBuf),
			c: rs | acc<<16, d: bd, e: tn,
			g: int32(m.bin) | int32(m.un)<<8 | int32(m.bin2)<<16})
	}
	c.supers++
}

// splitAffine decomposes e as base + stride*v + off with a v-invariant base
// and constant off. Invariance rejects names assigned inside the loop body
// and all buffer loads (the loop may write the buffer being read).
func splitAffine(e IntExpr, v string, assigned map[string]bool) (base IntExpr, stride, off int, ok bool) {
	switch e := e.(type) {
	case IConst:
		return IConst(0), 0, int(e), true
	case IDim:
		return e, 0, 0, true
	case IVar:
		if string(e) == v {
			return IConst(0), 1, 0, true
		}
		if assigned["i:"+string(e)] {
			return nil, 0, 0, false
		}
		return e, 0, 0, true
	case IBin:
		switch e.Op {
		case IAdd:
			ba, sa, oa, okA := splitAffine(e.A, v, assigned)
			bb, sb, ob, okB := splitAffine(e.B, v, assigned)
			if !okA || !okB {
				return nil, 0, 0, false
			}
			return Add(ba, bb), sa + sb, oa + ob, true
		case ISub:
			ba, sa, oa, okA := splitAffine(e.A, v, assigned)
			bb, sb, ob, okB := splitAffine(e.B, v, assigned)
			if !okA || !okB {
				return nil, 0, 0, false
			}
			return subExpr(ba, bb), sa - sb, oa - ob, true
		case IMul:
			if k, isC := e.A.(IConst); isC {
				b, s, o, okB := splitAffine(e.B, v, assigned)
				if !okB {
					return nil, 0, 0, false
				}
				return Mul(b, k), s * int(k), o * int(k), true
			}
			if k, isC := e.B.(IConst); isC {
				b, s, o, okA := splitAffine(e.A, v, assigned)
				if !okA {
					return nil, 0, 0, false
				}
				return Mul(b, k), s * int(k), o * int(k), true
			}
		}
		if invariantInt(e, v, assigned) {
			return e, 0, 0, true
		}
		return nil, 0, 0, false
	}
	return nil, 0, 0, false
}

// splitAffineSym decomposes e as base + stride*v where both base and stride
// are loop-invariant *expressions* — the shape of a restructured transpose's
// inner sweep, whose source stride is a symbolic pitch rather than a
// constant. splitAffine stays the fast path for unit/constant strides.
func splitAffineSym(e IntExpr, v string, assigned map[string]bool) (base, stride IntExpr, ok bool) {
	switch e := e.(type) {
	case IVar:
		if string(e) == v {
			return IConst(0), IConst(1), true
		}
	case IBin:
		switch e.Op {
		case IAdd:
			ba, sa, okA := splitAffineSym(e.A, v, assigned)
			bb, sb, okB := splitAffineSym(e.B, v, assigned)
			if okA && okB {
				return addIE(ba, bb), addIE(sa, sb), true
			}
			return nil, nil, false
		case ISub:
			ba, sa, okA := splitAffineSym(e.A, v, assigned)
			bb, sb, okB := splitAffineSym(e.B, v, assigned)
			if okA && okB {
				return subExpr(ba, bb), subExpr(sa, sb), true
			}
			return nil, nil, false
		case IMul:
			if invariantInt(e.A, v, assigned) {
				if b, s, okB := splitAffineSym(e.B, v, assigned); okB {
					return mulIE(e.A, b), mulIE(e.A, s), true
				}
				return nil, nil, false
			}
			if invariantInt(e.B, v, assigned) {
				if b, s, okA := splitAffineSym(e.A, v, assigned); okA {
					return mulIE(b, e.B), mulIE(s, e.B), true
				}
			}
			return nil, nil, false
		}
	}
	if invariantInt(e, v, assigned) {
		return e, IConst(0), true
	}
	return nil, nil, false
}

// addIE / mulIE build folded sums and products for splitAffineSym bases.
func addIE(a, b IntExpr) IntExpr {
	ca, aok := a.(IConst)
	cb, bok := b.(IConst)
	if aok && bok {
		return IConst(int(ca) + int(cb))
	}
	if aok && ca == 0 {
		return b
	}
	if bok && cb == 0 {
		return a
	}
	return Add(a, b)
}

func mulIE(a, b IntExpr) IntExpr {
	ca, aok := a.(IConst)
	cb, bok := b.(IConst)
	if aok && bok {
		return IConst(int(ca) * int(cb))
	}
	if aok {
		if ca == 0 {
			return IConst(0)
		}
		if ca == 1 {
			return b
		}
	}
	if bok {
		if cb == 0 {
			return IConst(0)
		}
		if cb == 1 {
			return a
		}
	}
	return Mul(a, b)
}

// invariantInt reports whether e is loop-invariant: it references neither
// the loop variable, nor any name assigned in the loop body, nor any buffer.
func invariantInt(e IntExpr, v string, assigned map[string]bool) bool {
	switch e := e.(type) {
	case IConst, IDim:
		return true
	case IVar:
		return string(e) != v && !assigned["i:"+string(e)]
	case IBin:
		return invariantInt(e.A, v, assigned) && invariantInt(e.B, v, assigned)
	default: // ILoad: never hoisted out of the loop
		return false
	}
}

// addConst folds a constant offset into a base expression.
func addConst(b IntExpr, o int) IntExpr {
	if o == 0 {
		return b
	}
	return Add(b, IConst(o))
}

// subExpr builds a-b with light folding (splitAffine keeps bases small).
func subExpr(a, b IntExpr) IntExpr {
	if cb, ok := b.(IConst); ok {
		if ca, ok := a.(IConst); ok {
			return IConst(int(ca) - int(cb))
		}
		if cb == 0 {
			return a
		}
	}
	return IBin{Op: ISub, A: a, B: b}
}

// substInt forward-substitutes integer local definitions.
func substInt(e IntExpr, ienv map[string]IntExpr) IntExpr {
	switch e := e.(type) {
	case IVar:
		if r, ok := ienv[string(e)]; ok {
			return r
		}
		return e
	case IBin:
		return IBin{Op: e.Op, A: substInt(e.A, ienv), B: substInt(e.B, ienv)}
	case ILoad:
		return ILoad{Buf: e.Buf, Idx: substInt(e.Idx, ienv)}
	default:
		return e
	}
}

// substExpr forward-substitutes local definitions into an f32 expression.
// All expressions are pure, so duplication is semantically free.
func substExpr(e Expr, ienv map[string]IntExpr, fenv map[string]Expr) Expr {
	switch e := e.(type) {
	case FLocal:
		if r, ok := fenv[string(e)]; ok {
			return r
		}
		return e
	case FLoad:
		return FLoad{Buf: e.Buf, Idx: substInt(e.Idx, ienv)}
	case FUn:
		return FUn{Fn: e.Fn, X: substExpr(e.X, ienv, fenv)}
	case FBin:
		return FBin{Fn: e.Fn, A: substExpr(e.A, ienv, fenv), B: substExpr(e.B, ienv, fenv)}
	case FCmp:
		return FCmp{Op: e.Op, A: substExpr(e.A, ienv, fenv), B: substExpr(e.B, ienv, fenv)}
	case FSel:
		return FSel{P: substExpr(e.P, ienv, fenv), A: substExpr(e.A, ienv, fenv), B: substExpr(e.B, ienv, fenv)}
	case FCastInt:
		return FCastInt{X: substInt(e.X, ienv)}
	default:
		return e
	}
}

// readsLocal reports whether e reads the named f32 local.
func readsLocal(e Expr, name string) bool {
	switch e := e.(type) {
	case FLocal:
		return string(e) == name
	case FUn:
		return readsLocal(e.X, name)
	case FBin:
		return readsLocal(e.A, name) || readsLocal(e.B, name)
	case FCmp:
		return readsLocal(e.A, name) || readsLocal(e.B, name)
	case FSel:
		return readsLocal(e.P, name) || readsLocal(e.A, name) || readsLocal(e.B, name)
	default:
		return false
	}
}

// assignedIn collects prefixed names assigned anywhere in the statements.
func assignedIn(ss []Stmt, out map[string]bool) {
	for _, s := range ss {
		switch s := s.(type) {
		case SLoop:
			out["i:"+s.Var] = true
			assignedIn(s.Body, out)
		case SSetInt:
			out["i:"+s.Var] = true
		case SSet:
			out["f:"+s.Var] = true
		}
	}
}

// countReadsStmts tallies IVar ("i:name") and FLocal ("f:name") reads.
func countReadsStmts(ss []Stmt, m map[string]int) {
	for _, s := range ss {
		switch s := s.(type) {
		case SLoop:
			countReadsInt(s.Extent, m)
			countReadsStmts(s.Body, m)
		case SSet:
			countReadsExpr(s.Val, m)
		case SSetInt:
			countReadsInt(s.Val, m)
		case SStore:
			countReadsInt(s.Idx, m)
			countReadsExpr(s.Val, m)
		case SStoreInt:
			countReadsInt(s.Idx, m)
			countReadsInt(s.Val, m)
		}
	}
}

func countReadsInt(e IntExpr, m map[string]int) {
	switch e := e.(type) {
	case IVar:
		m["i:"+string(e)]++
	case IBin:
		countReadsInt(e.A, m)
		countReadsInt(e.B, m)
	case ILoad:
		countReadsInt(e.Idx, m)
	}
}

func countReadsExpr(e Expr, m map[string]int) {
	switch e := e.(type) {
	case FLocal:
		m["f:"+string(e)]++
	case FLoad:
		countReadsInt(e.Idx, m)
	case FUn:
		countReadsExpr(e.X, m)
	case FBin:
		countReadsExpr(e.A, m)
		countReadsExpr(e.B, m)
	case FCmp:
		countReadsExpr(e.A, m)
		countReadsExpr(e.B, m)
	case FSel:
		countReadsExpr(e.P, m)
		countReadsExpr(e.A, m)
		countReadsExpr(e.B, m)
	case FCastInt:
		countReadsInt(e.X, m)
	}
}
