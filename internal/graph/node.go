package graph

import (
	"godisc/internal/symshape"
	"godisc/internal/tensor"
)

// ReduceAttr parameterizes OpReduce.
type ReduceAttr struct {
	Kind     tensor.ReduceKind
	Axes     []int // normalized, sorted, non-negative
	KeepDims bool
}

// Node is one operation in the graph. Nodes are created only through the
// Graph's builder methods, which run shape inference; user code must treat
// all fields other than Name as read-only.
type Node struct {
	ID     int
	Kind   OpKind
	Inputs []*Node

	// Inferred result type.
	Shape symshape.Shape
	DType tensor.DType

	// Name is an optional diagnostic label.
	Name string

	// Attributes (used per Kind).
	Lit        *tensor.Tensor // OpConstant
	ParamIndex int            // OpParameter
	CmpOp      string         // OpCompare: lt le gt ge eq ne
	Reduce     ReduceAttr     // OpReduce
	Perm       []int          // OpTranspose
	Axis       int            // OpConcat
	Starts     []int          // OpSlice
	Sizes      []int          // OpSlice
	Eps        float32        // OpLayerNorm
	To         tensor.DType   // OpConvert
	PadLo      []int          // OpPad
	PadHi      []int          // OpPad
	TransB     bool           // OpMatMul: contract against B's last-two-transposed view
}

// Rank returns the output rank.
func (n *Node) Rank() int { return len(n.Shape) }

// IsLeaf reports whether n has no operands.
func (n *Node) IsLeaf() bool { return n.Kind == OpParameter || n.Kind == OpConstant }
