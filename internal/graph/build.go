package graph

import (
	"fmt"

	"godisc/internal/symshape"
	"godisc/internal/tensor"
)

// This file is the builder API. Every constructor runs symbolic shape
// inference: output dimensions reuse the input dimension *symbols* wherever
// the op semantics guarantee equality, so equality facts propagate through
// the graph for free, and reshape/concat register product/sum facts in the
// shared context. This is the "shape information propagation" on which the
// dynamic-shape fusion decisions rely.

// Parameter declares graph input #len(Params) with the given dtype and
// symbolic shape.
func (g *Graph) Parameter(name string, dt tensor.DType, shape symshape.Shape) *Node {
	n := g.add(&Node{
		Kind:       OpParameter,
		Shape:      shape.Clone(),
		DType:      dt,
		Name:       name,
		ParamIndex: len(g.Params),
	})
	g.Params = append(g.Params, n)
	return n
}

// Constant embeds a literal tensor. Its shape is fully static.
func (g *Graph) Constant(t *tensor.Tensor) *Node {
	dims := make([]int64, t.Rank())
	for i, d := range t.Shape() {
		dims[i] = int64(d)
	}
	return g.add(&Node{
		Kind:  OpConstant,
		Shape: g.Ctx.StaticShape(dims...),
		DType: t.DType(),
		Lit:   t,
	})
}

// ConstScalar embeds an f32 scalar.
func (g *Graph) ConstScalar(v float32) *Node { return g.Constant(tensor.Scalar(v)) }

// unary builds an elementwise unary node.
func (g *Graph) unary(k OpKind, x *Node) *Node {
	if x.DType != tensor.F32 {
		panic(fmt.Sprintf("graph: %s requires f32 input, got %s", k, x.DType))
	}
	return g.add(&Node{Kind: k, Inputs: []*Node{x}, Shape: x.Shape.Clone(), DType: tensor.F32})
}

// Neg returns -x.
func (g *Graph) Neg(x *Node) *Node { return g.unary(OpNeg, x) }

// Abs returns |x|.
func (g *Graph) Abs(x *Node) *Node { return g.unary(OpAbs, x) }

// Exp returns e^x.
func (g *Graph) Exp(x *Node) *Node { return g.unary(OpExp, x) }

// Log returns ln(x).
func (g *Graph) Log(x *Node) *Node { return g.unary(OpLog, x) }

// Sqrt returns x^0.5.
func (g *Graph) Sqrt(x *Node) *Node { return g.unary(OpSqrt, x) }

// Rsqrt returns x^-0.5.
func (g *Graph) Rsqrt(x *Node) *Node { return g.unary(OpRsqrt, x) }

// Tanh returns tanh(x).
func (g *Graph) Tanh(x *Node) *Node { return g.unary(OpTanh, x) }

// Erf returns erf(x).
func (g *Graph) Erf(x *Node) *Node { return g.unary(OpErf, x) }

// Sigmoid returns 1/(1+e^-x).
func (g *Graph) Sigmoid(x *Node) *Node { return g.unary(OpSigmoid, x) }

// Relu returns max(x, 0).
func (g *Graph) Relu(x *Node) *Node { return g.unary(OpRelu, x) }

// Gelu returns the erf-form GELU.
func (g *Graph) Gelu(x *Node) *Node { return g.unary(OpGelu, x) }

// broadcastShapes computes the symbolic broadcast of two shapes. Per-dim
// rule (aligned from the trailing axis): static 1 broadcasts; otherwise the
// two symbols are unified — the frontend asserts dims that meet in a binary
// op without an explicit size-1 are equal at run time, exactly the
// shape-constraint injection a real frontend performs.
func (g *Graph) broadcastShapes(a, b symshape.Shape) symshape.Shape {
	ra, rb := len(a), len(b)
	r := ra
	if rb > r {
		r = rb
	}
	out := make(symshape.Shape, r)
	for i := 0; i < r; i++ {
		var da, db symshape.DimID = symshape.Invalid, symshape.Invalid
		if i >= r-ra {
			da = a[i-(r-ra)]
		}
		if i >= r-rb {
			db = b[i-(r-rb)]
		}
		switch {
		case da == symshape.Invalid:
			out[i] = db
		case db == symshape.Invalid:
			out[i] = da
		case isStaticOne(g.Ctx, da):
			out[i] = db
		case isStaticOne(g.Ctx, db):
			out[i] = da
		case g.Ctx.Equal(da, db):
			out[i] = da
		default:
			if err := g.Ctx.Unify(da, db); err != nil {
				panic(fmt.Sprintf("graph: broadcast of %s and %s: %v",
					g.Ctx.String(a), g.Ctx.String(b), err))
			}
			out[i] = da
		}
	}
	return out
}

func isStaticOne(ctx *symshape.Context, d symshape.DimID) bool {
	v, ok := ctx.StaticValue(d)
	return ok && v == 1
}

// binary builds an elementwise binary node with implicit broadcasting.
func (g *Graph) binary(k OpKind, a, b *Node) *Node {
	if a.DType != tensor.F32 || b.DType != tensor.F32 {
		panic(fmt.Sprintf("graph: %s requires f32 inputs, got %s,%s", k, a.DType, b.DType))
	}
	return g.add(&Node{
		Kind:   k,
		Inputs: []*Node{a, b},
		Shape:  g.broadcastShapes(a.Shape, b.Shape),
		DType:  tensor.F32,
	})
}

// Add returns a+b.
func (g *Graph) Add(a, b *Node) *Node { return g.binary(OpAdd, a, b) }

// Sub returns a-b.
func (g *Graph) Sub(a, b *Node) *Node { return g.binary(OpSub, a, b) }

// Mul returns a*b.
func (g *Graph) Mul(a, b *Node) *Node { return g.binary(OpMul, a, b) }

// Div returns a/b.
func (g *Graph) Div(a, b *Node) *Node { return g.binary(OpDiv, a, b) }

// Pow returns a^b.
func (g *Graph) Pow(a, b *Node) *Node { return g.binary(OpPow, a, b) }

// Maximum returns max(a,b).
func (g *Graph) Maximum(a, b *Node) *Node { return g.binary(OpMaximum, a, b) }

// Minimum returns min(a,b).
func (g *Graph) Minimum(a, b *Node) *Node { return g.binary(OpMinimum, a, b) }

// Compare returns the bool tensor a <op> b; op is lt|le|gt|ge|eq|ne.
func (g *Graph) Compare(a, b *Node, op string) *Node {
	switch op {
	case "lt", "le", "gt", "ge", "eq", "ne":
	default:
		panic("graph: bad compare op " + op)
	}
	n := g.binary(OpCompare, a, b)
	n.DType = tensor.Bool
	n.CmpOp = op
	return n
}

// Select returns elementwise pred ? onTrue : onFalse.
func (g *Graph) Select(pred, onTrue, onFalse *Node) *Node {
	if pred.DType != tensor.Bool {
		panic("graph: Select predicate must be bool")
	}
	s := g.broadcastShapes(pred.Shape, onTrue.Shape)
	s = g.broadcastShapes(s, onFalse.Shape)
	return g.add(&Node{
		Kind:   OpSelect,
		Inputs: []*Node{pred, onTrue, onFalse},
		Shape:  s,
		DType:  tensor.F32,
	})
}

// MatMul returns the batched matrix product. Contraction dims are unified
// (asserted equal); batch dims broadcast symbolically.
func (g *Graph) MatMul(a, b *Node) *Node {
	if a.Rank() < 2 || b.Rank() < 2 {
		panic(fmt.Sprintf("graph: MatMul requires rank>=2, got %d,%d", a.Rank(), b.Rank()))
	}
	ka := a.Shape[a.Rank()-1]
	kb := b.Shape[b.Rank()-2]
	if !g.Ctx.Equal(ka, kb) {
		if err := g.Ctx.Unify(ka, kb); err != nil {
			panic(fmt.Sprintf("graph: MatMul contraction %s x %s: %v",
				g.Ctx.String(a.Shape), g.Ctx.String(b.Shape), err))
		}
	}
	batch := g.broadcastShapes(a.Shape[:a.Rank()-2], b.Shape[:b.Rank()-2])
	out := append(batch, a.Shape[a.Rank()-2], b.Shape[b.Rank()-1])
	return g.add(&Node{Kind: OpMatMul, Inputs: []*Node{a, b}, Shape: out, DType: tensor.F32})
}

// MatMulT returns a batched matrix product against the transposed view of
// b's last two axes: a[..,M,K] x b[..,N,K]^T -> [..,M,N]. It is the form
// BLAS executes natively (transB); the simplifier folds explicit
// transpose-then-matmul patterns into it.
func (g *Graph) MatMulT(a, b *Node) *Node {
	if a.Rank() < 2 || b.Rank() < 2 {
		panic(fmt.Sprintf("graph: MatMulT requires rank>=2, got %d,%d", a.Rank(), b.Rank()))
	}
	ka := a.Shape[a.Rank()-1]
	kb := b.Shape[b.Rank()-1] // contraction is b's LAST dim under transB
	if !g.Ctx.Equal(ka, kb) {
		if err := g.Ctx.Unify(ka, kb); err != nil {
			panic(fmt.Sprintf("graph: MatMulT contraction %s x %s: %v",
				g.Ctx.String(a.Shape), g.Ctx.String(b.Shape), err))
		}
	}
	batch := g.broadcastShapes(a.Shape[:a.Rank()-2], b.Shape[:b.Rank()-2])
	out := append(batch, a.Shape[a.Rank()-2], b.Shape[b.Rank()-2])
	n := g.add(&Node{Kind: OpMatMul, Inputs: []*Node{a, b}, Shape: out, DType: tensor.F32})
	n.TransB = true
	return n
}

// ReduceOp reduces x over the given axes.
func (g *Graph) ReduceOp(x *Node, kind tensor.ReduceKind, axes []int, keepDims bool) *Node {
	norm := make([]int, 0, len(axes))
	for _, a := range axes {
		if a < 0 {
			a += x.Rank()
		}
		if a < 0 || a >= x.Rank() {
			panic(fmt.Sprintf("graph: reduce axis out of range for rank %d", x.Rank()))
		}
		norm = append(norm, a)
	}
	drop := map[int]bool{}
	for _, a := range norm {
		drop[a] = true
	}
	out := make(symshape.Shape, 0, x.Rank())
	for i, d := range x.Shape {
		if drop[i] {
			if keepDims {
				out = append(out, g.Ctx.StaticDim(1))
			}
			continue
		}
		out = append(out, d)
	}
	sortInts(norm)
	return g.add(&Node{
		Kind:   OpReduce,
		Inputs: []*Node{x},
		Shape:  out,
		DType:  tensor.F32,
		Reduce: ReduceAttr{Kind: kind, Axes: norm, KeepDims: keepDims},
	})
}

// Sum reduces with addition.
func (g *Graph) Sum(x *Node, axes []int, keepDims bool) *Node {
	return g.ReduceOp(x, tensor.ReduceSum, axes, keepDims)
}

// Max reduces with maximum.
func (g *Graph) Max(x *Node, axes []int, keepDims bool) *Node {
	return g.ReduceOp(x, tensor.ReduceMax, axes, keepDims)
}

// Mean reduces with arithmetic mean.
func (g *Graph) Mean(x *Node, axes []int, keepDims bool) *Node {
	return g.ReduceOp(x, tensor.ReduceMean, axes, keepDims)
}

// Softmax applies a softmax over the last axis. It is a composite op:
// the decompose pass expands it before fusion.
func (g *Graph) Softmax(x *Node) *Node {
	return g.add(&Node{Kind: OpSoftmax, Inputs: []*Node{x}, Shape: x.Shape.Clone(), DType: tensor.F32})
}

// LayerNorm normalizes over the last axis with scale gamma and shift beta.
func (g *Graph) LayerNorm(x, gamma, beta *Node, eps float32) *Node {
	last := x.Shape[x.Rank()-1]
	if gamma.Rank() != 1 || beta.Rank() != 1 {
		panic("graph: LayerNorm gamma/beta must be rank 1")
	}
	g.Ctx.MustUnify(gamma.Shape[0], last)
	g.Ctx.MustUnify(beta.Shape[0], last)
	return g.add(&Node{
		Kind:   OpLayerNorm,
		Inputs: []*Node{x, gamma, beta},
		Shape:  x.Shape.Clone(),
		DType:  tensor.F32,
		Eps:    eps,
	})
}

// Reshape reshapes x to target, verifying the symbolic element counts are
// provably equal. Construct target dims with the context (StaticDim,
// existing symbols, DeclareProduct).
func (g *Graph) Reshape(x *Node, target symshape.Shape) *Node {
	if !g.Ctx.ProductEqual(x.Shape, target) {
		panic(fmt.Sprintf("graph: reshape %s -> %s not provably element-preserving",
			g.Ctx.String(x.Shape), g.Ctx.String(target)))
	}
	return g.add(&Node{Kind: OpReshape, Inputs: []*Node{x}, Shape: target.Clone(), DType: x.DType})
}

// MergeDims reshapes x so that dims [from, to) collapse into one derived
// product dimension, e.g. [B,S,H] -> [B*S, H].
func (g *Graph) MergeDims(x *Node, from, to int) *Node {
	if from < 0 || to > x.Rank() || from >= to {
		panic("graph: MergeDims bad range")
	}
	merged := g.Ctx.DeclareProduct("m", x.Shape[from:to])
	target := make(symshape.Shape, 0, x.Rank()-(to-from)+1)
	target = append(target, x.Shape[:from]...)
	target = append(target, merged)
	target = append(target, x.Shape[to:]...)
	return g.Reshape(x, target)
}

// SplitDim reshapes x so that dim axis (which must be provably divisible by
// inner) splits into [outer, inner]; inner must be a static value.
func (g *Graph) SplitDim(x *Node, axis int, inner int64) *Node {
	d := x.Shape[axis]
	if v, ok := g.Ctx.StaticValue(d); ok {
		if v%inner != 0 {
			panic(fmt.Sprintf("graph: SplitDim %d %% %d != 0", v, inner))
		}
		target := make(symshape.Shape, 0, x.Rank()+1)
		target = append(target, x.Shape[:axis]...)
		target = append(target, g.Ctx.StaticDim(v/inner), g.Ctx.StaticDim(inner))
		target = append(target, x.Shape[axis+1:]...)
		return g.Reshape(x, target)
	}
	if !g.Ctx.DivisibleBy(d, inner) {
		panic(fmt.Sprintf("graph: SplitDim dynamic dim %s not provably divisible by %d",
			g.Ctx.Name(d), inner))
	}
	outer := g.Ctx.DeclareQuotient(fmt.Sprintf("%s/%d", g.Ctx.Name(d), inner), d, inner)
	// d == outer*inner: register d as a product so reshape verification and
	// runtime shape evaluation can see through it.
	prod := g.Ctx.DeclareProduct(g.Ctx.Name(d)+"=o*i", symshape.Shape{outer, g.Ctx.StaticDim(inner)})
	g.Ctx.MustUnify(d, prod)
	target := make(symshape.Shape, 0, x.Rank()+1)
	target = append(target, x.Shape[:axis]...)
	target = append(target, outer, g.Ctx.StaticDim(inner))
	target = append(target, x.Shape[axis+1:]...)
	return g.Reshape(x, target)
}

// Transpose permutes the axes of x.
func (g *Graph) Transpose(x *Node, perm ...int) *Node {
	if len(perm) != x.Rank() {
		panic("graph: Transpose perm rank mismatch")
	}
	out := make(symshape.Shape, len(perm))
	seen := make([]bool, len(perm))
	for i, p := range perm {
		if p < 0 || p >= x.Rank() || seen[p] {
			panic(fmt.Sprintf("graph: bad perm %v", perm))
		}
		seen[p] = true
		out[i] = x.Shape[p]
	}
	return g.add(&Node{
		Kind:   OpTranspose,
		Inputs: []*Node{x},
		Shape:  out,
		DType:  x.DType,
		Perm:   append([]int(nil), perm...),
	})
}

// Concat concatenates xs along axis; the output extent on that axis is a
// derived sum symbol (folded if all inputs are static there).
func (g *Graph) Concat(axis int, xs ...*Node) *Node {
	if len(xs) == 0 {
		panic("graph: Concat of nothing")
	}
	r := xs[0].Rank()
	if axis < 0 {
		axis += r
	}
	terms := make([]symshape.DimID, len(xs))
	for i, x := range xs {
		if x.Rank() != r || x.DType != xs[0].DType {
			panic("graph: Concat rank/dtype mismatch")
		}
		for d := 0; d < r; d++ {
			if d == axis {
				continue
			}
			if !g.Ctx.Equal(x.Shape[d], xs[0].Shape[d]) {
				g.Ctx.MustUnify(x.Shape[d], xs[0].Shape[d])
			}
		}
		terms[i] = x.Shape[axis]
	}
	out := xs[0].Shape.Clone()
	out[axis] = g.Ctx.DeclareSum("cat", terms)
	return g.add(&Node{Kind: OpConcat, Inputs: xs, Shape: out, DType: xs[0].DType, Axis: axis})
}

// StaticSlice extracts a static window: x[starts[i] : starts[i]+sizes[i]].
func (g *Graph) StaticSlice(x *Node, starts, sizes []int) *Node {
	if len(starts) != x.Rank() || len(sizes) != x.Rank() {
		panic("graph: StaticSlice rank mismatch")
	}
	out := make(symshape.Shape, x.Rank())
	for i := range sizes {
		out[i] = g.Ctx.StaticDim(int64(sizes[i]))
	}
	return g.add(&Node{
		Kind:   OpSlice,
		Inputs: []*Node{x},
		Shape:  out,
		DType:  x.DType,
		Starts: append([]int(nil), starts...),
		Sizes:  append([]int(nil), sizes...),
	})
}

// Gather looks rows of table (axis 0) up by i32 indices; output shape is
// indices.Shape ++ table.Shape[1:].
func (g *Graph) Gather(table, indices *Node) *Node {
	if indices.DType != tensor.I32 {
		panic("graph: Gather indices must be i32")
	}
	out := append(indices.Shape.Clone(), table.Shape[1:]...)
	return g.add(&Node{Kind: OpGather, Inputs: []*Node{table, indices}, Shape: out, DType: table.DType})
}

// Pad zero-pads x by lo[i] elements before and hi[i] after axis i (static
// padding amounts). Padded extents are derived sums, so runtime shape
// evaluation sees through them.
func (g *Graph) Pad(x *Node, lo, hi []int) *Node {
	if len(lo) != x.Rank() || len(hi) != x.Rank() {
		panic("graph: Pad rank mismatch")
	}
	out := make(symshape.Shape, x.Rank())
	for i := range out {
		if lo[i] < 0 || hi[i] < 0 {
			panic("graph: Pad negative padding")
		}
		if lo[i] == 0 && hi[i] == 0 {
			out[i] = x.Shape[i]
			continue
		}
		out[i] = g.Ctx.DeclareSum("pad", []symshape.DimID{
			g.Ctx.StaticDim(int64(lo[i])), x.Shape[i], g.Ctx.StaticDim(int64(hi[i])),
		})
	}
	return g.add(&Node{
		Kind:   OpPad,
		Inputs: []*Node{x},
		Shape:  out,
		DType:  x.DType,
		PadLo:  append([]int(nil), lo...),
		PadHi:  append([]int(nil), hi...),
	})
}

// Conv1D applies a stride-1 valid 1-D convolution: x [B,S,Cin] with
// filters w [K,Cin,Cout] yields [B, S-K+1, Cout]. K, Cin and Cout must be
// static; the output sequence extent is a derived affine dimension.
func (g *Graph) Conv1D(x, w *Node) *Node {
	if x.Rank() != 3 || w.Rank() != 3 {
		panic("graph: Conv1D wants x [B,S,Cin] and w [K,Cin,Cout]")
	}
	k, ok := g.Ctx.StaticValue(w.Shape[0])
	if !ok {
		panic("graph: Conv1D kernel size must be static")
	}
	if !g.Ctx.Equal(x.Shape[2], w.Shape[1]) {
		g.Ctx.MustUnify(x.Shape[2], w.Shape[1])
	}
	sOut := g.Ctx.DeclareAffine("convS", x.Shape[1], 1, 1-k)
	out := symshape.Shape{x.Shape[0], sOut, w.Shape[2]}
	return g.add(&Node{Kind: OpConv1D, Inputs: []*Node{x, w}, Shape: out, DType: tensor.F32})
}

// SameConv1D pads and convolves so the sequence length is preserved; the
// kernel size must be odd.
func (g *Graph) SameConv1D(x, w *Node) *Node {
	k, ok := g.Ctx.StaticValue(w.Shape[0])
	if !ok || k%2 == 0 {
		panic("graph: SameConv1D needs a static odd kernel size")
	}
	p := int(k-1) / 2
	padded := g.Pad(x, []int{0, p, 0}, []int{0, p, 0})
	conv := g.Conv1D(padded, w)
	// The affine output extent provably equals the original: assert it so
	// downstream ops reuse the symbol.
	g.Ctx.MustUnify(conv.Shape[1], x.Shape[1])
	return conv
}

// Convert casts x to dtype dt (i32->f32 and bool->f32 supported).
func (g *Graph) Convert(x *Node, dt tensor.DType) *Node {
	n := g.add(&Node{Kind: OpConvert, Inputs: []*Node{x}, Shape: x.Shape.Clone(), DType: dt})
	n.To = dt
	return n
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
