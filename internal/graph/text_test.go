package graph

import (
	"strings"
	"testing"

	"godisc/internal/symshape"
	"godisc/internal/tensor"
)

// roundTrip serializes, parses, and checks the graphs agree on evaluation
// at the given inputs and on their symbolic parameter signature.
func roundTrip(t *testing.T, g *Graph, inputs []*tensor.Tensor) *Graph {
	t.Helper()
	src := WriteText(g)
	g2, err := ParseText(src)
	if err != nil {
		t.Fatalf("parse failed: %v\nsource:\n%s", err, src)
	}
	want, err := Evaluate(g, inputs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Evaluate(g2, inputs)
	if err != nil {
		t.Fatalf("evaluating parsed graph: %v\nsource:\n%s", err, src)
	}
	if len(got) != len(want) {
		t.Fatalf("output count %d vs %d", len(got), len(want))
	}
	for i := range want {
		if err := tensor.AllClose(got[i], want[i], 0, 0); err != nil {
			t.Fatalf("output %d differs after round trip: %v", i, err)
		}
	}
	sig := func(g *Graph) string {
		shapes := make([]symshape.Shape, len(g.Params))
		for i, p := range g.Params {
			shapes[i] = p.Shape
		}
		return g.Ctx.Signature(shapes)
	}
	if sig(g) != sig(g2) {
		t.Fatalf("signature changed: %q vs %q", sig(g), sig(g2))
	}
	return g2
}

func TestRoundTripMLP(t *testing.T) {
	g, _, _ := mlpGraph(t)
	r := tensor.NewRNG(1)
	roundTrip(t, g, []*tensor.Tensor{tensor.RandN(r, 1, 3, 4)})
}

func TestRoundTripAllOps(t *testing.T) {
	// One graph touching every op category: gather, pad, conv, reduce,
	// softmax, layernorm, compare/select, concat, slice, transpose,
	// reshape, convert.
	g := New("allops")
	b := g.Ctx.NewDim("B")
	s := g.Ctx.NewDim("S")
	g.Ctx.DeclareRange(s, 4, 64)
	g.Ctx.DeclareDivisible(b, 1)
	ids := g.Parameter("ids", tensor.I32, symshape.Shape{b, s})
	table := g.Constant(tensor.RandN(tensor.NewRNG(1), 0.2, 8, 6))
	x := g.Gather(table, ids) // [B,S,6]
	w := g.Constant(tensor.RandN(tensor.NewRNG(2), 0.2, 3, 6, 6))
	c := g.Relu(g.SameConv1D(x, w))
	sm := g.Softmax(c)
	gamma := g.Constant(tensor.RandN(tensor.NewRNG(3), 0.2, 6))
	beta := g.Constant(tensor.RandN(tensor.NewRNG(4), 0.2, 6))
	ln := g.LayerNorm(sm, gamma, beta, 1e-5)
	masked := g.Select(g.Compare(ln, g.ConstScalar(0), "gt"), ln, g.ConstScalar(-1))
	tr := g.Transpose(masked, 0, 2, 1) // [B,6,S]
	red := g.Mean(tr, []int{-1}, true) // [B,6,1]
	cat := g.Concat(1, red, red)       // [B,12,1]
	sl := g.StaticSlice(g.Convert(g.Parameter("extra", tensor.I32, symshape.Shape{g.Ctx.StaticDim(2), g.Ctx.StaticDim(3)}), tensor.F32), []int{0, 1}, []int{2, 2})
	g.SetOutputs(g.MergeDims(cat, 1, 3), sl)

	r := tensor.NewRNG(5)
	inputs := []*tensor.Tensor{
		tensor.RandIndices(r, 8, 2, 9),
		tensor.RandIndices(r, 100, 2, 3),
	}
	g2 := roundTrip(t, g, inputs)
	// Ranges and divisibility survive.
	s2 := g2.Params[0].Shape[1]
	lo, hi := g2.Ctx.Range(s2)
	if lo != 4 || hi != 64 {
		t.Fatalf("range lost: [%d,%d]", lo, hi)
	}
}

func TestRoundTripDerivedDims(t *testing.T) {
	g := New("derived")
	b := g.Ctx.NewDim("B")
	s := g.Ctx.NewDim("S")
	x := g.Parameter("x", tensor.F32, symshape.Shape{b, s, g.Ctx.StaticDim(4)})
	m := g.MergeDims(x, 0, 2) // product dim
	g.SetOutputs(g.Exp(m))
	r := tensor.NewRNG(6)
	roundTrip(t, g, []*tensor.Tensor{tensor.RandN(r, 1, 3, 5, 4)})
}

func TestRoundTripModelsEvaluate(t *testing.T) {
	// The serializer must handle every zoo model. (Imported lazily via a
	// local rebuild to avoid the import cycle with internal/models: this
	// test builds representative fragments instead.)
	g := New("attention")
	b := g.Ctx.NewDim("B")
	s := g.Ctx.NewDim("S")
	g.Ctx.DeclareRange(s, 1, 64)
	h := g.Ctx.StaticDim(8)
	q := g.Parameter("q", tensor.F32, symshape.Shape{b, s, h})
	k := g.Parameter("k", tensor.F32, symshape.Shape{b, s, h})
	v := g.Parameter("v", tensor.F32, symshape.Shape{b, s, h})
	probs := g.Softmax(g.Mul(g.MatMul(q, g.Transpose(k, 0, 2, 1)), g.ConstScalar(0.35)))
	g.SetOutputs(g.MatMul(probs, v))
	r := tensor.NewRNG(7)
	roundTrip(t, g, []*tensor.Tensor{
		tensor.RandN(r, 1, 2, 5, 8), tensor.RandN(r, 1, 2, 5, 8), tensor.RandN(r, 1, 2, 5, 8),
	})
}

func TestRoundTripStable(t *testing.T) {
	// write(parse(write(g))) == write(parse(...)) — the format is a fixpoint
	// after one round trip (IDs may be renumbered on the first pass).
	g, _, _ := mlpGraph(t)
	src1 := WriteText(g)
	g2, err := ParseText(src1)
	if err != nil {
		t.Fatal(err)
	}
	src2 := WriteText(g2)
	g3, err := ParseText(src2)
	if err != nil {
		t.Fatal(err)
	}
	src3 := WriteText(g3)
	if src2 != src3 {
		t.Fatalf("format not stable:\n--- first ---\n%s\n--- second ---\n%s", src2, src3)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"no header", "dim d0 dynamic\n"},
		{"unclosed", "graph g {\n"},
		{"unknown op", "graph g {\n  %0 = zorp f32[2]\n  return %0\n}\n"},
		{"undeclared dim", "graph g {\n  %0 = parameter idx=0 name=\"x\" f32[dZ]\n  return %0\n}\n"},
		{"forward operand", "graph g {\n  %0 = exp(%1) f32[2]\n  return %0\n}\n"},
		{"bad payload", "graph g {\n  %0 = constant f32[2] data=[1]\n  return %0\n}\n"},
		{"negative dim", "graph g {\n  %0 = parameter idx=0 name=\"x\" f32[-3]\n  return %0\n}\n"},
		{"dup param idx", "graph g {\n  dim d0 dynamic\n  %0 = parameter idx=0 name=\"a\" f32[d0]\n  %1 = parameter idx=0 name=\"b\" f32[d0]\n  %2 = add(%0, %1) f32[d0]\n  return %2\n}\n"},
	}
	for _, c := range cases {
		if _, err := ParseText(c.src); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}
}

func TestParseHandComposed(t *testing.T) {
	src := `
graph hand {
  dim d0 dynamic range(1, 32)
  dim d1 = sum(2, d0)
  %0 = parameter idx=0 name="x" f32[d0, 3]
  %1 = constant f32[3] data=[0.5, -1, 2]
  %2 = add(%0, %1) f32[d0, 3]
  %3 = reduce(%2) rkind=sum axes=[1] keep=false f32[d0]
  return %3
}
`
	g, err := ParseText(src)
	if err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(8)
	in := tensor.RandN(r, 1, 4, 3)
	got, err := Evaluate(g, []*tensor.Tensor{in})
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.Reduce(tensor.Binary(in, tensor.FromF32([]float32{0.5, -1, 2}, 3), tensor.FnAdd),
		tensor.ReduceSum, []int{1}, false)
	if err := tensor.AllClose(got[0], want, 1e-6, 1e-7); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(WriteText(g), "rkind=sum") {
		t.Fatal("reduce attrs lost")
	}
}

// TestParserNeverPanics mutates a valid source in many ways; the parser
// must return errors, never panic.
func TestParserNeverPanics(t *testing.T) {
	g, _, _ := mlpGraph(t)
	base := WriteText(g)
	r := tensor.NewRNG(99)
	for trial := 0; trial < 500; trial++ {
		b := []byte(base)
		// Apply 1-3 random mutations: byte flips, deletions, duplications.
		for m := 0; m < 1+r.Intn(3); m++ {
			if len(b) == 0 {
				break
			}
			pos := r.Intn(len(b))
			switch r.Intn(3) {
			case 0:
				b[pos] = byte(32 + r.Intn(95))
			case 1:
				b = append(b[:pos], b[pos+1:]...)
			case 2:
				b = append(b[:pos], append([]byte{b[pos]}, b[pos:]...)...)
			}
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("parser panicked on mutated input: %v\nsource:\n%s", p, b)
				}
			}()
			g2, err := ParseText(string(b))
			// If it parsed, it must at least verify and print.
			if err == nil {
				_ = WriteText(g2)
			}
		}()
	}
}

// TestParserTruncations feeds every prefix of a valid source.
func TestParserTruncations(t *testing.T) {
	g, _, _ := mlpGraph(t)
	base := WriteText(g)
	for i := 0; i <= len(base); i += 7 {
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on truncation at %d: %v", i, p)
				}
			}()
			_, _ = ParseText(base[:i])
		}()
	}
}

func TestWriteDot(t *testing.T) {
	g, _, _ := mlpGraph(t)
	dot := WriteDot(g)
	for _, want := range []string{"digraph", "param", "matmul", "->", "lightgreen"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("dot output missing %q:\n%s", want, dot)
		}
	}
}
