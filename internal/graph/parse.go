package graph

import (
	"fmt"
	"strconv"
	"strings"

	"godisc/internal/symshape"
	"godisc/internal/tensor"
)

// ParseText reconstructs a graph from the WriteText format. The result is
// verified before being returned.
func ParseText(src string) (*Graph, error) {
	p := &parser{
		dims:  map[string]symshape.DimID{},
		nodes: map[int]*Node{},
	}
	lines := strings.Split(src, "\n")
	for i, raw := range lines {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		if err := p.line(line); err != nil {
			return nil, fmt.Errorf("graph: parse line %d: %w", i+1, err)
		}
	}
	if p.g == nil {
		return nil, fmt.Errorf("graph: parse: no graph header found")
	}
	if !p.closed {
		return nil, fmt.Errorf("graph: parse: missing closing brace")
	}
	if err := p.g.Verify(); err != nil {
		return nil, fmt.Errorf("graph: parsed graph invalid: %w", err)
	}
	return p.g, nil
}

type parser struct {
	g      *Graph
	dims   map[string]symshape.DimID
	nodes  map[int]*Node
	params []*Node
	closed bool
}

func (p *parser) line(line string) error {
	switch {
	case strings.HasPrefix(line, "graph "):
		rest := strings.TrimPrefix(line, "graph ")
		name := strings.TrimSpace(strings.TrimSuffix(rest, "{"))
		p.g = New(name)
		return nil
	case line == "}":
		p.closed = true
		return nil
	case strings.HasPrefix(line, "dim "):
		return p.dimDecl(strings.TrimPrefix(line, "dim "))
	case strings.HasPrefix(line, "%"):
		return p.nodeDecl(line)
	case strings.HasPrefix(line, "return "):
		return p.returns(strings.TrimPrefix(line, "return "))
	}
	return fmt.Errorf("unrecognized line %q", line)
}

// dimRef resolves a dim token: an integer literal (static) or d<N>.
func (p *parser) dimRef(tok string) (symshape.DimID, error) {
	tok = strings.TrimSpace(tok)
	if v, err := strconv.ParseInt(tok, 10, 64); err == nil {
		if v < 0 {
			return symshape.Invalid, fmt.Errorf("negative dim literal %q", tok)
		}
		return p.g.Ctx.StaticDim(v), nil
	}
	d, ok := p.dims[tok]
	if !ok {
		return symshape.Invalid, fmt.Errorf("undeclared dim %q", tok)
	}
	return d, nil
}

func (p *parser) dimRefs(list string) ([]symshape.DimID, error) {
	var out []symshape.DimID
	for _, tok := range splitTop(list, ',') {
		d, err := p.dimRef(tok)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// dimDecl parses "dN dynamic ..." or "dN = <def> ...".
func (p *parser) dimDecl(rest string) error {
	if p.g == nil {
		return fmt.Errorf("dim before graph header")
	}
	rest = strings.TrimSpace(rest)
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return fmt.Errorf("bad dim declaration %q", rest)
	}
	name := rest[:sp]
	if _, dup := p.dims[name]; dup {
		return fmt.Errorf("duplicate dim %q", name)
	}
	body := strings.TrimSpace(rest[sp+1:])
	ctx := p.g.Ctx
	var d symshape.DimID
	var facts []string
	switch {
	case body == "dynamic" || strings.HasPrefix(body, "dynamic "):
		d = ctx.NewDim(name)
		facts = splitFactTokens(strings.TrimPrefix(body, "dynamic"))
	case strings.HasPrefix(body, "= "):
		def := strings.TrimSpace(body[2:])
		// The definition is fn(args) optionally followed by fact tokens;
		// find the closing paren of the definition.
		open := strings.IndexByte(def, '(')
		if open < 0 {
			return fmt.Errorf("bad dim definition %q", def)
		}
		closeIdx := matchParen(def, open)
		if closeIdx < 0 {
			return fmt.Errorf("unbalanced parens in %q", def)
		}
		fn := def[:open]
		args := def[open+1 : closeIdx]
		facts = splitFactTokens(def[closeIdx+1:])
		var ops []symshape.DimID
		if fn != "affine" {
			var err error
			ops, err = p.dimRefs(args)
			if err != nil {
				return err
			}
		}
		switch fn {
		case "product":
			d = ctx.DeclareProduct(name, ops)
		case "sum":
			d = ctx.DeclareSum(name, ops)
		case "quot":
			if len(ops) != 2 {
				return fmt.Errorf("quot wants 2 args")
			}
			denom, ok := ctx.StaticValue(ops[1])
			if !ok {
				return fmt.Errorf("quot denominator must be static")
			}
			d = ctx.DeclareQuotient(name, ops[0], denom)
		case "affine":
			parts := splitTop(args, ',')
			if len(parts) != 3 {
				return fmt.Errorf("affine wants 3 args")
			}
			base, err := p.dimRef(parts[0])
			if err != nil {
				return err
			}
			scale, err1 := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
			off, err2 := strconv.ParseInt(strings.TrimSpace(parts[2]), 10, 64)
			if err1 != nil || err2 != nil {
				return fmt.Errorf("affine scale/offset must be integer literals")
			}
			d = ctx.DeclareAffine(name, base, scale, off)
		default:
			return fmt.Errorf("unknown dim definition %q", fn)
		}
	default:
		return fmt.Errorf("bad dim declaration %q", rest)
	}
	for _, f := range facts {
		f = strings.ReplaceAll(f, " ", "")
		switch {
		case strings.HasPrefix(f, "range(") && strings.HasSuffix(f, ")"):
			parts := splitTop(f[len("range("):len(f)-1], ',')
			if len(parts) != 2 {
				return fmt.Errorf("bad range fact %q", f)
			}
			lo, err1 := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
			hi, err2 := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
			if err1 != nil || err2 != nil {
				return fmt.Errorf("bad range fact %q", f)
			}
			if hi < 0 {
				hi = symshape.Unbounded
			}
			ctx.DeclareRange(d, lo, hi)
		case strings.HasPrefix(f, "div(") && strings.HasSuffix(f, ")"):
			k, err := strconv.ParseInt(f[len("div("):len(f)-1], 10, 64)
			if err != nil {
				return fmt.Errorf("bad div fact %q", f)
			}
			ctx.DeclareDivisible(d, k)
		case strings.HasPrefix(f, "likely(") && strings.HasSuffix(f, ")"):
			v, err := strconv.ParseInt(f[len("likely("):len(f)-1], 10, 64)
			if err != nil {
				return fmt.Errorf("bad likely fact %q", f)
			}
			ctx.DeclareLikely(d, v)
		default:
			return fmt.Errorf("unknown dim fact %q", f)
		}
	}
	p.dims[name] = d
	return nil
}

// nodeDecl parses "%N = op(...) attrs dtype[shape] data=[...]".
func (p *parser) nodeDecl(line string) error {
	if p.g == nil {
		return fmt.Errorf("node before graph header")
	}
	eq := strings.Index(line, " = ")
	if eq < 0 {
		return fmt.Errorf("missing '=' in %q", line)
	}
	id, err := strconv.Atoi(strings.TrimPrefix(line[:eq], "%"))
	if err != nil {
		return fmt.Errorf("bad node id in %q", line)
	}
	rest := strings.TrimSpace(line[eq+3:])

	// Op name runs until '(' or whitespace.
	opEnd := strings.IndexAny(rest, "( ")
	if opEnd < 0 {
		return fmt.Errorf("bad node body %q", rest)
	}
	opName := rest[:opEnd]
	kind, ok := opByName(opName)
	if !ok {
		return fmt.Errorf("unknown op %q", opName)
	}
	rest = rest[opEnd:]

	// Operands.
	var inputs []*Node
	if strings.HasPrefix(rest, "(") {
		closeIdx := matchParen(rest, 0)
		if closeIdx < 0 {
			return fmt.Errorf("unbalanced operand list")
		}
		for _, tok := range splitTop(rest[1:closeIdx], ',') {
			tok = strings.TrimSpace(tok)
			oid, err := strconv.Atoi(strings.TrimPrefix(tok, "%"))
			if err != nil {
				return fmt.Errorf("bad operand %q", tok)
			}
			in, ok := p.nodes[oid]
			if !ok {
				return fmt.Errorf("operand %%%d not yet defined", oid)
			}
			inputs = append(inputs, in)
		}
		rest = strings.TrimSpace(rest[closeIdx+1:])
	} else {
		rest = strings.TrimSpace(rest)
	}

	// Attributes up to the dtype token; the dtype token is f32/i32/bool
	// immediately followed by '['.
	n := &Node{Kind: kind, Inputs: inputs}
	for {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			return fmt.Errorf("missing type in node %%%d", id)
		}
		if dt, rem, ok := leadingType(rest); ok {
			n.DType = dt
			rest = rem
			break
		}
		tokEnd := attrEnd(rest)
		tok := rest[:tokEnd]
		rest = rest[tokEnd:]
		if err := p.nodeAttr(n, tok); err != nil {
			return fmt.Errorf("node %%%d: %w", id, err)
		}
	}

	// Shape.
	if !strings.HasPrefix(rest, "[") {
		return fmt.Errorf("missing shape in node %%%d", id)
	}
	closeIdx := strings.IndexByte(rest, ']')
	if closeIdx < 0 {
		return fmt.Errorf("unterminated shape in node %%%d", id)
	}
	shapeSrc := rest[1:closeIdx]
	rest = strings.TrimSpace(rest[closeIdx+1:])
	if strings.TrimSpace(shapeSrc) != "" {
		dims, err := p.dimRefs(shapeSrc)
		if err != nil {
			return err
		}
		n.Shape = dims
	}

	// Constant payload.
	if kind == OpConstant {
		if !strings.HasPrefix(rest, "data=[") || !strings.HasSuffix(rest, "]") {
			return fmt.Errorf("constant %%%d missing data payload", id)
		}
		lit, err := parsePayload(n, rest[len("data=["):len(rest)-1], p.g.Ctx)
		if err != nil {
			return err
		}
		n.Lit = lit
	} else if rest != "" {
		return fmt.Errorf("trailing tokens %q in node %%%d", rest, id)
	}

	p.g.add(n)
	p.nodes[id] = n
	if kind == OpParameter {
		p.params = append(p.params, n)
	}
	return nil
}

// attrEnd finds the end of the next attribute token, respecting brackets
// and quotes (attributes contain no spaces outside quotes).
func attrEnd(s string) int {
	depth := 0
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '[', '(':
			depth++
		case ']', ')':
			depth--
		case ' ':
			if depth == 0 && !inStr {
				return i
			}
		}
	}
	return len(s)
}

// leadingType matches a dtype token followed by '['.
func leadingType(s string) (tensor.DType, string, bool) {
	for _, c := range []struct {
		name string
		dt   tensor.DType
	}{{"f32[", tensor.F32}, {"i32[", tensor.I32}, {"bool[", tensor.Bool}} {
		if strings.HasPrefix(s, c.name) {
			return c.dt, s[len(c.name)-1:], true
		}
	}
	return 0, "", false
}

func (p *parser) nodeAttr(n *Node, tok string) error {
	kv := strings.SplitN(tok, "=", 2)
	if len(kv) != 2 {
		return fmt.Errorf("bad attribute %q", tok)
	}
	key, val := kv[0], kv[1]
	switch key {
	case "idx":
		v, err := strconv.Atoi(val)
		if err != nil {
			return err
		}
		n.ParamIndex = v
	case "name":
		v, err := strconv.Unquote(val)
		if err != nil {
			return err
		}
		n.Name = v
	case "cmp":
		n.CmpOp = val
	case "rkind":
		switch val {
		case "sum":
			n.Reduce.Kind = tensor.ReduceSum
		case "max":
			n.Reduce.Kind = tensor.ReduceMax
		case "min":
			n.Reduce.Kind = tensor.ReduceMin
		case "mean":
			n.Reduce.Kind = tensor.ReduceMean
		default:
			return fmt.Errorf("unknown reduce kind %q", val)
		}
	case "axes":
		xs, err := parseIntList(val)
		if err != nil {
			return err
		}
		n.Reduce.Axes = xs
	case "keep":
		n.Reduce.KeepDims = val == "true"
	case "perm":
		xs, err := parseIntList(val)
		if err != nil {
			return err
		}
		n.Perm = xs
	case "axis":
		v, err := strconv.Atoi(val)
		if err != nil {
			return err
		}
		n.Axis = v
	case "starts":
		xs, err := parseIntList(val)
		if err != nil {
			return err
		}
		n.Starts = xs
	case "sizes":
		xs, err := parseIntList(val)
		if err != nil {
			return err
		}
		n.Sizes = xs
	case "lo":
		xs, err := parseIntList(val)
		if err != nil {
			return err
		}
		n.PadLo = xs
	case "hi":
		xs, err := parseIntList(val)
		if err != nil {
			return err
		}
		n.PadHi = xs
	case "eps":
		v, err := strconv.ParseFloat(val, 32)
		if err != nil {
			return err
		}
		n.Eps = float32(v)
	case "transb":
		n.TransB = val == "true"
	case "to":
		switch val {
		case "f32":
			n.To = tensor.F32
		case "i32":
			n.To = tensor.I32
		case "bool":
			n.To = tensor.Bool
		default:
			return fmt.Errorf("unknown dtype %q", val)
		}
	default:
		return fmt.Errorf("unknown attribute %q", key)
	}
	return nil
}

func parseIntList(s string) ([]int, error) {
	s = strings.TrimPrefix(strings.TrimSuffix(s, "]"), "[")
	if strings.TrimSpace(s) == "" {
		return []int{}, nil
	}
	var out []int
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// parsePayload reads the flat constant payload using the node's (already
// parsed) dtype and shape.
func parsePayload(n *Node, body string, ctx *symshape.Context) (*tensor.Tensor, error) {
	shape := make([]int, len(n.Shape))
	for i, d := range n.Shape {
		v, ok := ctx.StaticValue(d)
		if !ok {
			return nil, fmt.Errorf("constant with dynamic shape")
		}
		shape[i] = int(v)
	}
	var toks []string
	if strings.TrimSpace(body) != "" {
		toks = strings.Split(body, ",")
	}
	if len(toks) != tensor.Numel(shape) {
		return nil, fmt.Errorf("payload has %d values for shape %v", len(toks), shape)
	}
	switch n.DType {
	case tensor.F32:
		data := make([]float32, len(toks))
		for i, t := range toks {
			v, err := strconv.ParseFloat(strings.TrimSpace(t), 32)
			if err != nil {
				return nil, err
			}
			data[i] = float32(v)
		}
		return tensor.FromF32(data, shape...), nil
	case tensor.I32:
		data := make([]int32, len(toks))
		for i, t := range toks {
			v, err := strconv.ParseInt(strings.TrimSpace(t), 10, 32)
			if err != nil {
				return nil, err
			}
			data[i] = int32(v)
		}
		return tensor.FromI32(data, shape...), nil
	case tensor.Bool:
		data := make([]bool, len(toks))
		for i, t := range toks {
			data[i] = strings.TrimSpace(t) == "true"
		}
		return tensor.FromBool(data, shape...), nil
	}
	return nil, fmt.Errorf("unknown dtype")
}

func (p *parser) returns(rest string) error {
	var outs []*Node
	for _, tok := range strings.Split(rest, ",") {
		tok = strings.TrimSpace(tok)
		id, err := strconv.Atoi(strings.TrimPrefix(tok, "%"))
		if err != nil {
			return fmt.Errorf("bad return %q", tok)
		}
		n, ok := p.nodes[id]
		if !ok {
			return fmt.Errorf("return of undefined %%%d", id)
		}
		outs = append(outs, n)
	}
	p.g.SetOutputs(outs...)
	// Register parameters by declared index.
	p.g.Params = make([]*Node, len(p.params))
	for _, n := range p.params {
		if n.ParamIndex < 0 || n.ParamIndex >= len(p.params) {
			return fmt.Errorf("parameter index %d out of range", n.ParamIndex)
		}
		if p.g.Params[n.ParamIndex] != nil {
			return fmt.Errorf("duplicate parameter index %d", n.ParamIndex)
		}
		p.g.Params[n.ParamIndex] = n
	}
	return nil
}

// opByName inverts the op name table.
func opByName(name string) (OpKind, bool) {
	for k, n := range opNames {
		if n == name {
			return k, true
		}
	}
	return OpInvalid, false
}

// splitFactTokens splits whitespace-separated fact tokens, keeping each
// parenthesized group (which may contain spaces) intact.
func splitFactTokens(s string) []string {
	var out []string
	depth := 0
	start := -1
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ' ', '\t':
			if depth == 0 {
				if start >= 0 {
					out = append(out, s[start:i])
					start = -1
				}
				continue
			}
		}
		if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, s[start:])
	}
	return out
}

// matchParen returns the index of the ')' matching the '(' at open.
func matchParen(s string, open int) int {
	depth := 0
	for i := open; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				return i
			}
		}
	}
	return -1
}

// splitTop splits s on sep at paren/bracket depth zero.
func splitTop(s string, sep byte) []string {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(', '[':
			depth++
		case ')', ']':
			depth--
		default:
			if s[i] == sep && depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}
