package graph

import (
	"fmt"
	"strings"
)

// WriteDot renders the reachable graph in Graphviz DOT form for
// visualization (`discc -dot | dot -Tsvg`). Node labels carry the op and
// symbolic shape; parameters and constants are shaped distinctly.
func WriteDot(g *Graph) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=TB;\n  node [fontsize=10];\n", sanitizeName(g.Name))
	outputs := map[*Node]bool{}
	for _, o := range g.Outputs {
		outputs[o] = true
	}
	for _, n := range g.Toposort() {
		label := fmt.Sprintf("%%%d %s\\n%s%s", n.ID, n.Kind, n.DType, g.Ctx.String(n.Shape))
		attrs := "shape=box"
		switch {
		case n.Kind == OpParameter:
			attrs = "shape=ellipse,style=filled,fillcolor=lightblue"
			label = fmt.Sprintf("%%%d param %q\\n%s%s", n.ID, n.Name, n.DType, g.Ctx.String(n.Shape))
		case n.Kind == OpConstant:
			attrs = "shape=note,style=filled,fillcolor=lightyellow"
		case outputs[n]:
			attrs = "shape=box,style=filled,fillcolor=lightgreen"
		}
		fmt.Fprintf(&sb, "  n%d [label=\"%s\",%s];\n", n.ID, label, attrs)
		for _, in := range n.Inputs {
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", in.ID, n.ID)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
