// Package graph defines the HLO-like tensor computation IR that the
// compiler pipeline operates on. Nodes carry *symbolic* shapes
// (symshape.Shape); shape inference runs at construction time inside the
// Builder methods, propagating dimension symbols between operators — the
// "shape information propagation" that BladeDISC's dynamic-shape fusion is
// built on.
package graph

import "fmt"

// OpKind enumerates the operators of the IR.
type OpKind uint8

const (
	// OpInvalid is the zero value and never appears in a valid graph.
	OpInvalid OpKind = iota

	// Leaf nodes.
	OpParameter // graph input
	OpConstant  // embedded literal

	// Elementwise unary (f32 -> f32).
	OpNeg
	OpAbs
	OpExp
	OpLog
	OpSqrt
	OpRsqrt
	OpTanh
	OpErf
	OpSigmoid
	OpRelu
	OpGelu

	// Elementwise binary with implicit NumPy broadcasting.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpPow
	OpMaximum
	OpMinimum

	// Predicates and selection.
	OpCompare // attr CmpOp; result dtype Bool
	OpSelect  // pred(bool), onTrue, onFalse

	// Contraction.
	OpMatMul // batched [..,M,K] x [..,K,N]

	// Reductions over static axes.
	OpReduce // attr Reduce{Kind, Axes, KeepDims}

	// Composite neural ops; the decompose pass expands them into
	// primitives so fusion sees plain elementwise/reduce structure.
	OpSoftmax   // over last axis
	OpLayerNorm // inputs x, gamma, beta; attr Eps

	// Data movement.
	OpReshape   // symbolic product-preserving reshape
	OpTranspose // attr Perm
	OpConcat    // attr Axis
	OpSlice     // attrs Starts, Sizes (static)
	OpGather    // table, i32 indices
	OpConvert   // dtype cast (attr To)
	OpPad       // attrs PadLo, PadHi (static per-axis zero padding)

	// Library contractions beyond matmul.
	OpConv1D // x [B,S,Cin] ⊛ w [K,Cin,Cout], stride 1, valid
)

var opNames = map[OpKind]string{
	OpParameter: "parameter", OpConstant: "constant",
	OpNeg: "neg", OpAbs: "abs", OpExp: "exp", OpLog: "log", OpSqrt: "sqrt",
	OpRsqrt: "rsqrt", OpTanh: "tanh", OpErf: "erf", OpSigmoid: "sigmoid",
	OpRelu: "relu", OpGelu: "gelu",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpPow: "pow",
	OpMaximum: "maximum", OpMinimum: "minimum",
	OpCompare: "compare", OpSelect: "select",
	OpMatMul: "matmul", OpReduce: "reduce",
	OpSoftmax: "softmax", OpLayerNorm: "layernorm",
	OpReshape: "reshape", OpTranspose: "transpose", OpConcat: "concat",
	OpSlice: "slice", OpGather: "gather", OpConvert: "convert",
	OpPad: "pad", OpConv1D: "conv1d",
}

// String implements fmt.Stringer.
func (k OpKind) String() string {
	if n, ok := opNames[k]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// IsElementwiseUnary reports whether k maps one element to one element.
func (k OpKind) IsElementwiseUnary() bool {
	switch k {
	case OpNeg, OpAbs, OpExp, OpLog, OpSqrt, OpRsqrt, OpTanh, OpErf,
		OpSigmoid, OpRelu, OpGelu, OpConvert:
		return true
	}
	return false
}

// IsElementwiseBinary reports whether k is a two-operand pointwise op
// (with implicit broadcasting).
func (k OpKind) IsElementwiseBinary() bool {
	switch k {
	case OpAdd, OpSub, OpMul, OpDiv, OpPow, OpMaximum, OpMinimum, OpCompare:
		return true
	}
	return false
}

// IsElementwise reports whether k is pointwise over its output index space
// (unary, binary, or select).
func (k OpKind) IsElementwise() bool {
	return k.IsElementwiseUnary() || k.IsElementwiseBinary() || k == OpSelect
}

// FlopsPerElement returns the approximate arithmetic cost per output
// element charged by the device model for elementwise ops. Transcendentals
// are charged as multiple flops, mirroring GPU SFU throughput.
func (k OpKind) FlopsPerElement() int {
	switch k {
	case OpExp, OpLog, OpTanh, OpErf, OpSigmoid, OpGelu, OpPow:
		return 8
	case OpSqrt, OpRsqrt:
		return 4
	case OpParameter, OpConstant, OpReshape, OpTranspose, OpConcat,
		OpSlice, OpGather, OpConvert, OpPad:
		return 0
	default:
		return 1
	}
}
