package graph

import (
	"testing"

	"godisc/internal/symshape"
	"godisc/internal/tensor"
)

func benchGraph() *Graph {
	g := New("bench")
	b := g.Ctx.NewDim("B")
	s := g.Ctx.NewDim("S")
	x := g.Parameter("x", tensor.F32, symshape.Shape{b, s, g.Ctx.StaticDim(32)})
	h := x
	for i := 0; i < 40; i++ {
		h = g.Relu(g.Add(g.Exp(h), x))
	}
	g.SetOutputs(h)
	return g
}

func BenchmarkToposort(b *testing.B) {
	g := benchGraph()
	for i := 0; i < b.N; i++ {
		g.Toposort()
	}
}

func BenchmarkSerializeRoundTrip(b *testing.B) {
	g := benchGraph()
	src := WriteText(g)
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := ParseText(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluate(b *testing.B) {
	g := benchGraph()
	r := tensor.NewRNG(1)
	in := tensor.RandN(r, 1, 4, 32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(g, []*tensor.Tensor{in}); err != nil {
			b.Fatal(err)
		}
	}
}
