package graph

import (
	"fmt"
	"strings"

	"godisc/internal/symshape"
	"godisc/internal/tensor"
)

// Graph is a directed acyclic tensor computation. It owns a symshape
// Context so that all symbolic shape facts discovered during construction
// and optimization live in one place — the cross-level shape representation.
type Graph struct {
	Name    string
	Ctx     *symshape.Context
	Params  []*Node
	Outputs []*Node

	nodes  []*Node // insertion order; Toposort() for a valid schedule
	nextID int
}

// New creates an empty graph with a fresh full-featured shape context.
func New(name string) *Graph {
	return &Graph{Name: name, Ctx: symshape.NewContext(symshape.FeatAll)}
}

// NewWithContext creates an empty graph over an existing context (used by
// tests that pre-populate shape facts).
func NewWithContext(name string, ctx *symshape.Context) *Graph {
	return &Graph{Name: name, Ctx: ctx}
}

// add registers a node, assigning its ID.
func (g *Graph) add(n *Node) *Node {
	n.ID = g.nextID
	g.nextID++
	g.nodes = append(g.nodes, n)
	return n
}

// Nodes returns all nodes in insertion order (not necessarily topological
// after graph rewrites; use Toposort for scheduling).
func (g *Graph) Nodes() []*Node { return g.nodes }

// NumNodes returns the node count including dead nodes not yet swept.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// SetOutputs declares the graph results.
func (g *Graph) SetOutputs(outs ...*Node) { g.Outputs = outs }

// Toposort returns the nodes reachable from the outputs in dependency
// order (inputs before users). It panics on cycles, which cannot occur for
// builder-constructed graphs.
func (g *Graph) Toposort() []*Node {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := make(map[*Node]int, len(g.nodes))
	var order []*Node
	var visit func(n *Node)
	visit = func(n *Node) {
		switch state[n] {
		case black:
			return
		case gray:
			panic("graph: cycle detected")
		}
		state[n] = gray
		for _, in := range n.Inputs {
			visit(in)
		}
		state[n] = black
		order = append(order, n)
	}
	for _, o := range g.Outputs {
		visit(o)
	}
	return order
}

// Users returns a map from each node to the nodes that consume it, over the
// reachable subgraph. Output nodes additionally appear in the Roots set.
func (g *Graph) Users() map[*Node][]*Node {
	users := map[*Node][]*Node{}
	for _, n := range g.Toposort() {
		for _, in := range n.Inputs {
			users[in] = append(users[in], n)
		}
	}
	return users
}

// Sweep drops unreachable nodes from the node list; rewrites call it after
// replacing uses.
func (g *Graph) Sweep() int {
	live := map[*Node]bool{}
	for _, n := range g.Toposort() {
		live[n] = true
	}
	kept := g.nodes[:0]
	removed := 0
	for _, n := range g.nodes {
		if live[n] {
			kept = append(kept, n)
		} else {
			removed++
		}
	}
	g.nodes = kept
	return removed
}

// ReplaceAllUses redirects every use of old (including graph outputs) to new.
func (g *Graph) ReplaceAllUses(old, new *Node) {
	if old == new {
		return
	}
	for _, n := range g.nodes {
		for i, in := range n.Inputs {
			if in == old {
				n.Inputs[i] = new
			}
		}
	}
	for i, o := range g.Outputs {
		if o == old {
			g.Outputs[i] = new
		}
	}
}

// Clone appends a copy of n (same kind, inputs and attributes) to the
// graph and returns it. Used by the producer-duplication pass; the clone
// shares the (immutable) shape and attribute slices.
func (g *Graph) Clone(n *Node) *Node {
	if n.Kind == OpParameter {
		panic("graph: cannot clone a parameter")
	}
	c := *n
	c.Inputs = append([]*Node(nil), n.Inputs...)
	return g.add(&c)
}

// Verify checks structural invariants: operand dtypes/shapes consistent
// with each op's semantics under the shape context, parameters registered,
// and outputs reachable. It returns the first violation found.
func (g *Graph) Verify() error {
	if len(g.Outputs) == 0 {
		return fmt.Errorf("graph %s: no outputs", g.Name)
	}
	seen := map[*Node]bool{}
	for _, n := range g.Toposort() {
		seen[n] = true
		for _, in := range n.Inputs {
			if !seen[in] {
				return fmt.Errorf("graph %s: node %d uses undominated input", g.Name, n.ID)
			}
		}
		if err := g.verifyNode(n); err != nil {
			return fmt.Errorf("graph %s: node %d (%s): %w", g.Name, n.ID, n.Kind, err)
		}
	}
	for i, p := range g.Params {
		if p.Kind != OpParameter || p.ParamIndex != i {
			return fmt.Errorf("graph %s: Params[%d] is not parameter %d", g.Name, i, i)
		}
	}
	return nil
}

func (g *Graph) verifyNode(n *Node) error {
	arity := map[OpKind]int{
		OpParameter: 0, OpConstant: 0,
		OpSelect: 3, OpLayerNorm: 3,
		OpMatMul: 2, OpGather: 2, OpConv1D: 2,
	}
	want, ok := arity[n.Kind]
	switch {
	case ok:
		if len(n.Inputs) != want {
			return fmt.Errorf("arity %d, want %d", len(n.Inputs), want)
		}
	case n.Kind.IsElementwiseUnary() || n.Kind == OpReduce || n.Kind == OpSoftmax ||
		n.Kind == OpReshape || n.Kind == OpTranspose || n.Kind == OpSlice || n.Kind == OpPad:
		if len(n.Inputs) != 1 {
			return fmt.Errorf("arity %d, want 1", len(n.Inputs))
		}
	case n.Kind.IsElementwiseBinary():
		if len(n.Inputs) != 2 {
			return fmt.Errorf("arity %d, want 2", len(n.Inputs))
		}
	case n.Kind == OpConcat:
		if len(n.Inputs) < 1 {
			return fmt.Errorf("concat needs inputs")
		}
	default:
		return fmt.Errorf("unknown op")
	}

	switch n.Kind {
	case OpConstant:
		if n.Lit == nil {
			return fmt.Errorf("constant without literal")
		}
		if len(n.Shape) != n.Lit.Rank() {
			return fmt.Errorf("constant shape rank mismatch")
		}
	case OpMatMul:
		a, b := n.Inputs[0], n.Inputs[1]
		if a.Rank() < 2 || b.Rank() < 2 {
			return fmt.Errorf("matmul operands must have rank>=2")
		}
		ka := a.Shape[a.Rank()-1]
		kb := b.Shape[b.Rank()-2]
		if n.TransB {
			kb = b.Shape[b.Rank()-1]
		}
		if !g.Ctx.Equal(ka, kb) {
			return fmt.Errorf("contraction dims %s vs %s not provably equal",
				g.Ctx.Name(ka), g.Ctx.Name(kb))
		}
	case OpReduce:
		for _, a := range n.Reduce.Axes {
			if a < 0 || a >= n.Inputs[0].Rank() {
				return fmt.Errorf("reduce axis %d out of range", a)
			}
		}
	case OpTranspose:
		if len(n.Perm) != n.Inputs[0].Rank() {
			return fmt.Errorf("perm rank mismatch")
		}
	case OpReshape:
		if !g.Ctx.ProductEqual(n.Inputs[0].Shape, n.Shape) {
			return fmt.Errorf("reshape %s -> %s does not provably preserve element count",
				g.Ctx.String(n.Inputs[0].Shape), g.Ctx.String(n.Shape))
		}
	case OpSelect:
		if n.Inputs[0].DType != tensor.Bool {
			return fmt.Errorf("select predicate must be bool")
		}
	case OpGather:
		if n.Inputs[1].DType != tensor.I32 {
			return fmt.Errorf("gather indices must be i32")
		}
	case OpConv1D:
		if n.Inputs[0].Rank() != 3 || n.Inputs[1].Rank() != 3 {
			return fmt.Errorf("conv1d operands must be rank 3")
		}
	case OpPad:
		if len(n.PadLo) != n.Inputs[0].Rank() || len(n.PadHi) != n.Inputs[0].Rank() {
			return fmt.Errorf("pad amounts rank mismatch")
		}
	}
	return nil
}

// String renders the reachable graph one node per line for debugging and
// golden tests.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph %s {\n", g.Name)
	for _, n := range g.Toposort() {
		fmt.Fprintf(&sb, "  %%%d = %s %s%s", n.ID, n.Kind, n.DType, g.Ctx.String(n.Shape))
		if len(n.Inputs) > 0 {
			ins := make([]string, len(n.Inputs))
			for i, in := range n.Inputs {
				ins[i] = fmt.Sprintf("%%%d", in.ID)
			}
			fmt.Fprintf(&sb, " (%s)", strings.Join(ins, ", "))
		}
		switch n.Kind {
		case OpParameter:
			fmt.Fprintf(&sb, " idx=%d", n.ParamIndex)
		case OpReduce:
			fmt.Fprintf(&sb, " kind=%s axes=%v keep=%v", n.Reduce.Kind, n.Reduce.Axes, n.Reduce.KeepDims)
		case OpTranspose:
			fmt.Fprintf(&sb, " perm=%v", n.Perm)
		case OpCompare:
			fmt.Fprintf(&sb, " cmp=%s", n.CmpOp)
		case OpConcat:
			fmt.Fprintf(&sb, " axis=%d", n.Axis)
		}
		if n.Name != "" {
			fmt.Fprintf(&sb, " // %s", n.Name)
		}
		sb.WriteString("\n")
	}
	outs := make([]string, len(g.Outputs))
	for i, o := range g.Outputs {
		outs[i] = fmt.Sprintf("%%%d", o.ID)
	}
	fmt.Fprintf(&sb, "  return %s\n}\n", strings.Join(outs, ", "))
	return sb.String()
}
