package graph

import (
	"fmt"
	"strconv"
	"strings"

	"godisc/internal/symshape"
	"godisc/internal/tensor"
)

// This file implements the textual serialization of graphs: WriteText
// renders a graph (including the symbolic dimension declarations and
// constant payloads) and ParseText reconstructs it. The format is the
// interchange used by the compiler driver and enables golden tests; the
// round-trip invariant (parse(write(g)) evaluates identically and has the
// same symbolic signature) is property-tested.
//
// Example:
//
//	graph mlp {
//	  dim d0 dynamic range(1, 64) div(4)
//	  dim d1 = product(d0, 16)
//	  %0 = parameter idx=0 name="x" f32[d0, 16]
//	  %1 = constant f32[2] data=[1, 2]
//	  %2 = add(%0, %1) f32[d0, 16]
//	  return %2
//	}

// WriteText serializes g.
func WriteText(g *Graph) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph %s {\n", sanitizeName(g.Name))
	order := g.Toposort()

	// Collect every dim reachable from node shapes, transitively through
	// derived-dimension operands, then emit declarations in dependency
	// order. Derived dims whose definitions are mutually recursive (a dim
	// unified with a product of its own quotient, as SplitDim creates on
	// dynamic dims) degrade to plain dynamic declarations; see the
	// package documentation for this serialization limitation.
	var dims []symshape.DimID
	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := map[symshape.DimID]int{}
	degraded := map[symshape.DimID]bool{}
	var visit func(d symshape.DimID)
	visit = func(d symshape.DimID) {
		r := g.Ctx.Root(d)
		if state[r] == black {
			return
		}
		if state[r] == gray {
			// Cycle: the ancestor currently being defined references
			// itself through this chain (SameConv1D unifies a dim with
			// an affine of a sum of itself). The ancestor degrades to a
			// plain dynamic declaration, cutting the cycle while keeping
			// this dim's definition evaluable from it.
			degraded[r] = true
			return
		}
		state[r] = gray
		desc := g.Ctx.Describe(r)
		for _, op := range desc.Operands {
			visit(op)
		}
		state[r] = black
		if desc.Kind != symshape.KindStatic {
			dims = append(dims, r)
		}
	}
	// Parameters are part of the graph's ABI even when unreachable from
	// the outputs (a model may ignore an input); emit them all.
	for _, pn := range g.Params {
		for _, d := range pn.Shape {
			visit(d)
		}
	}
	for _, n := range order {
		for _, d := range n.Shape {
			visit(d)
		}
	}
	// Degraded (cycle-cut) dims come first: they are plain dynamic
	// declarations that later definitions may reference.
	for _, d := range dims {
		if degraded[d] {
			writeDimDecl(&sb, g.Ctx, d, true)
		}
	}
	for _, d := range dims {
		if !degraded[d] {
			writeDimDecl(&sb, g.Ctx, d, false)
		}
	}

	emitted := map[*Node]bool{}
	for _, pn := range g.Params {
		writeNode(&sb, g.Ctx, pn)
		emitted[pn] = true
	}
	for _, n := range order {
		if emitted[n] {
			continue
		}
		writeNode(&sb, g.Ctx, n)
	}
	outs := make([]string, len(g.Outputs))
	for i, o := range g.Outputs {
		outs[i] = fmt.Sprintf("%%%d", o.ID)
	}
	fmt.Fprintf(&sb, "  return %s\n}\n", strings.Join(outs, ", "))
	return sb.String()
}

func sanitizeName(s string) string {
	if s == "" {
		return "g"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
			return r
		}
		return '_'
	}, s)
}

func dimRef(ctx *symshape.Context, d symshape.DimID) string {
	if v, ok := ctx.StaticValue(d); ok {
		return strconv.FormatInt(v, 10)
	}
	return fmt.Sprintf("d%d", ctx.Root(d))
}

func writeDimDecl(sb *strings.Builder, ctx *symshape.Context, d symshape.DimID, degrade bool) {
	desc := ctx.Describe(d)
	if degrade {
		desc.Kind = symshape.KindDynamic
	}
	fmt.Fprintf(sb, "  dim d%d", ctx.Root(d))
	switch desc.Kind {
	case symshape.KindDynamic:
		sb.WriteString(" dynamic")
	case symshape.KindProduct:
		sb.WriteString(" = product(")
		writeDimOperands(sb, ctx, desc.Operands)
		sb.WriteString(")")
	case symshape.KindSum:
		sb.WriteString(" = sum(")
		writeDimOperands(sb, ctx, desc.Operands)
		sb.WriteString(")")
	case symshape.KindQuotient:
		fmt.Fprintf(sb, " = quot(%s, %d)", dimRef(ctx, desc.Operands[0]), desc.Denom)
	case symshape.KindAffine:
		fmt.Fprintf(sb, " = affine(%s, %d, %d)", dimRef(ctx, desc.Operands[0]), desc.Scale, desc.Offset)
	}
	if desc.Lo > 1 || desc.Hi < symshape.Unbounded {
		hi := desc.Hi
		if hi >= symshape.Unbounded {
			hi = -1
		}
		fmt.Fprintf(sb, " range(%d,%d)", desc.Lo, hi)
	}
	if desc.Divisor > 1 {
		fmt.Fprintf(sb, " div(%d)", desc.Divisor)
	}
	if desc.Likely > 0 {
		fmt.Fprintf(sb, " likely(%d)", desc.Likely)
	}
	sb.WriteString("\n")
}

func writeDimOperands(sb *strings.Builder, ctx *symshape.Context, ops []symshape.DimID) {
	for i, op := range ops {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(dimRef(ctx, op))
	}
}

func writeShape(sb *strings.Builder, ctx *symshape.Context, s symshape.Shape) {
	sb.WriteString("[")
	for i, d := range s {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(dimRef(ctx, d))
	}
	sb.WriteString("]")
}

func writeNode(sb *strings.Builder, ctx *symshape.Context, n *Node) {
	fmt.Fprintf(sb, "  %%%d = %s", n.ID, n.Kind)
	if len(n.Inputs) > 0 {
		sb.WriteString("(")
		for i, in := range n.Inputs {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(sb, "%%%d", in.ID)
		}
		sb.WriteString(")")
	}
	switch n.Kind {
	case OpParameter:
		fmt.Fprintf(sb, " idx=%d name=%q", n.ParamIndex, n.Name)
	case OpCompare:
		fmt.Fprintf(sb, " cmp=%s", n.CmpOp)
	case OpReduce:
		fmt.Fprintf(sb, " rkind=%s axes=%s keep=%t", n.Reduce.Kind, intList(n.Reduce.Axes), n.Reduce.KeepDims)
	case OpTranspose:
		fmt.Fprintf(sb, " perm=%s", intList(n.Perm))
	case OpConcat:
		fmt.Fprintf(sb, " axis=%d", n.Axis)
	case OpSlice:
		fmt.Fprintf(sb, " starts=%s sizes=%s", intList(n.Starts), intList(n.Sizes))
	case OpPad:
		fmt.Fprintf(sb, " lo=%s hi=%s", intList(n.PadLo), intList(n.PadHi))
	case OpLayerNorm:
		fmt.Fprintf(sb, " eps=%s", formatF32(n.Eps))
	case OpConvert:
		fmt.Fprintf(sb, " to=%s", n.To)
	case OpMatMul:
		if n.TransB {
			sb.WriteString(" transb=true")
		}
	}
	sb.WriteString(" ")
	sb.WriteString(n.DType.String())
	writeShape(sb, ctx, n.Shape)
	if n.Kind == OpConstant {
		sb.WriteString(" data=[")
		for i := 0; i < n.Lit.Numel(); i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			switch n.Lit.DType() {
			case tensor.F32:
				sb.WriteString(formatF32(n.Lit.F32()[i]))
			case tensor.I32:
				fmt.Fprintf(sb, "%d", n.Lit.I32()[i])
			case tensor.Bool:
				fmt.Fprintf(sb, "%t", n.Lit.Bools()[i])
			}
		}
		sb.WriteString("]")
	}
	sb.WriteString("\n")
}

func intList(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// formatF32 renders a float32 with exact round-trip.
func formatF32(v float32) string {
	return strconv.FormatFloat(float64(v), 'g', -1, 32)
}
