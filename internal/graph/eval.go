package graph

import (
	"context"
	"fmt"

	"godisc/internal/symshape"
	"godisc/internal/tensor"
)

// Evaluate interprets the graph with the reference tensor math. It is the
// semantic ground truth: compiled executables are tested against it, and
// the eager baseline reuses it op by op. Inputs must match the parameter
// dtypes; concrete shapes may be anything consistent with the symbolic
// parameter shapes.
func Evaluate(g *Graph, inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	return EvaluateContext(context.Background(), g, inputs)
}

// EvaluateContext is Evaluate with cancellation observed between nodes, so
// long interpreter runs (the serving fallback path) stop promptly when the
// request is cancelled or the server force-drains.
func EvaluateContext(ctx context.Context, g *Graph, inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(inputs) != len(g.Params) {
		return nil, fmt.Errorf("graph: %d inputs for %d parameters", len(inputs), len(g.Params))
	}
	env := make(map[*Node]*tensor.Tensor)
	for _, n := range g.Toposort() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		v, err := EvalNode(g.Ctx, n, inputs, func(in *Node) *tensor.Tensor { return env[in] })
		if err != nil {
			return nil, fmt.Errorf("graph: node %%%d (%s): %w", n.ID, n.Kind, err)
		}
		env[n] = v
	}
	outs := make([]*tensor.Tensor, len(g.Outputs))
	for i, o := range g.Outputs {
		outs[i] = env[o]
	}
	return outs, nil
}

// EvalNode computes one node given its operand values via get. It is
// exported (within the module) so the eager baseline can execute single ops
// with the same semantics as whole-graph evaluation.
func EvalNode(ctx *symshape.Context, n *Node, params []*tensor.Tensor, get func(*Node) *tensor.Tensor) (*tensor.Tensor, error) {
	in := func(i int) *tensor.Tensor { return get(n.Inputs[i]) }
	switch n.Kind {
	case OpParameter:
		return params[n.ParamIndex], nil
	case OpConstant:
		return n.Lit, nil
	case OpNeg:
		return tensor.Unary(in(0), tensor.FnNeg), nil
	case OpAbs:
		return tensor.Unary(in(0), tensor.FnAbs), nil
	case OpExp:
		return tensor.Unary(in(0), tensor.FnExp), nil
	case OpLog:
		return tensor.Unary(in(0), tensor.FnLog), nil
	case OpSqrt:
		return tensor.Unary(in(0), tensor.FnSqrt), nil
	case OpRsqrt:
		return tensor.Unary(in(0), tensor.FnRsqrt), nil
	case OpTanh:
		return tensor.Unary(in(0), tensor.FnTanh), nil
	case OpErf:
		return tensor.Unary(in(0), tensor.FnErf), nil
	case OpSigmoid:
		return tensor.Unary(in(0), tensor.FnSigmoid), nil
	case OpRelu:
		return tensor.Unary(in(0), tensor.FnRelu), nil
	case OpGelu:
		return tensor.Unary(in(0), tensor.FnGelu), nil
	case OpAdd:
		return tensor.Binary(in(0), in(1), tensor.FnAdd), nil
	case OpSub:
		return tensor.Binary(in(0), in(1), tensor.FnSub), nil
	case OpMul:
		return tensor.Binary(in(0), in(1), tensor.FnMul), nil
	case OpDiv:
		return tensor.Binary(in(0), in(1), tensor.FnDiv), nil
	case OpPow:
		return tensor.Binary(in(0), in(1), tensor.FnPow), nil
	case OpMaximum:
		return tensor.Binary(in(0), in(1), tensor.FnMax), nil
	case OpMinimum:
		return tensor.Binary(in(0), in(1), tensor.FnMin), nil
	case OpCompare:
		return tensor.Compare(in(0), in(1), n.CmpOp), nil
	case OpSelect:
		return tensor.Select(in(0), in(1), in(2)), nil
	case OpMatMul:
		b := in(1)
		if n.TransB {
			perm := make([]int, b.Rank())
			for i := range perm {
				perm[i] = i
			}
			perm[len(perm)-1], perm[len(perm)-2] = perm[len(perm)-2], perm[len(perm)-1]
			b = tensor.Transpose(b, perm)
		}
		return tensor.MatMul(in(0), b), nil
	case OpReduce:
		return tensor.Reduce(in(0), n.Reduce.Kind, n.Reduce.Axes, n.Reduce.KeepDims), nil
	case OpSoftmax:
		return tensor.Softmax(in(0)), nil
	case OpLayerNorm:
		return tensor.LayerNorm(in(0), in(1), in(2), n.Eps), nil
	case OpReshape:
		x := in(0)
		// Concrete target extents come from the input: symbols cannot be
		// evaluated here, but reshape preserves element count, so the
		// target is derived by substituting the one unknown extent.
		return reshapeConcrete(ctx, x, n)
	case OpTranspose:
		return tensor.Transpose(in(0), n.Perm), nil
	case OpConcat:
		ts := make([]*tensor.Tensor, len(n.Inputs))
		for i := range n.Inputs {
			ts[i] = in(i)
		}
		return tensor.Concat(n.Axis, ts...), nil
	case OpSlice:
		return tensor.Slice(in(0), n.Starts, n.Sizes), nil
	case OpGather:
		return tensor.Gather(in(0), in(1)), nil
	case OpPad:
		return tensor.PadLoHi(in(0), n.PadLo, n.PadHi), nil
	case OpConv1D:
		return tensor.Conv1D(in(0), in(1)), nil
	case OpConvert:
		x := in(0)
		switch {
		case x.DType() == tensor.I32 && n.To == tensor.F32:
			return tensor.ConvertI32ToF32(x), nil
		case x.DType() == n.To:
			return x, nil
		default:
			return nil, fmt.Errorf("unsupported convert %s -> %s", x.DType(), n.To)
		}
	}
	return nil, fmt.Errorf("unsupported op %s", n.Kind)
}

// reshapeConcrete computes the concrete output shape of a reshape node by
// evaluating static dims and inferring at most the dynamic extents from the
// element count. The builder guarantees the symbolic product matches, but
// here we only have one concrete tensor, so we resolve per-dim: static dims
// keep their value; dynamic dims absorb the remaining factor proportionally.
func reshapeConcrete(ctx *symshape.Context, x *tensor.Tensor, n *Node) (*tensor.Tensor, error) {
	// Most reshapes in models are merges/splits where the graph context can
	// evaluate every target dim given the input dims. Rather than thread a
	// Binding through evaluation, resolve the common cases structurally:
	// count static extents, then distribute the residue over dynamic dims
	// only if exactly one is dynamic.
	ctxShape := n.Shape
	out := make([]int, len(ctxShape))
	residue := x.Numel()
	dynIdx := -1
	for i, d := range ctxShape {
		if v, ok := ctx.StaticValue(d); ok {
			out[i] = int(v)
			if v == 0 {
				residue = 0
				continue
			}
			residue /= int(v)
			continue
		}
		if dynIdx >= 0 {
			// Two dynamic dims: derive via binding against the input shape.
			return reshapeViaBinding(ctx, x, n)
		}
		dynIdx = i
	}
	if dynIdx >= 0 {
		out[dynIdx] = residue
	}
	if tensor.Numel(out) != x.Numel() {
		return nil, fmt.Errorf("reshape %v -> %v element mismatch", x.Shape(), out)
	}
	return x.Reshape(out...), nil
}

// reshapeViaBinding handles reshapes with several dynamic output dims by
// binding the input's symbolic shape to its concrete extents and evaluating
// the target shape.
func reshapeViaBinding(ctx *symshape.Context, x *tensor.Tensor, n *Node) (*tensor.Tensor, error) {
	b := symshape.NewBinding(ctx)
	if err := b.Bind(n.Inputs[0].Shape, x.Shape()); err != nil {
		return nil, err
	}
	out, err := b.Eval(n.Shape)
	if err != nil {
		return nil, err
	}
	return x.Reshape(out...), nil
}
