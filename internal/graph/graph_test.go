package graph

import (
	"strings"
	"testing"

	"godisc/internal/symshape"
	"godisc/internal/tensor"
)

// mlpGraph builds a tiny [B,4] -> relu(x*W+b) graph used by several tests.
func mlpGraph(t *testing.T) (*Graph, *tensor.Tensor, *tensor.Tensor) {
	t.Helper()
	g := New("mlp")
	b := g.Ctx.NewDim("B")
	x := g.Parameter("x", tensor.F32, symshape.Shape{b, g.Ctx.StaticDim(4)})
	r := tensor.NewRNG(5)
	w := tensor.RandN(r, 0.5, 4, 3)
	bias := tensor.RandN(r, 0.5, 3)
	y := g.Relu(g.Add(g.MatMul(x, g.Constant(w)), g.Constant(bias)))
	g.SetOutputs(y)
	return g, w, bias
}

func TestBuilderShapePropagation(t *testing.T) {
	g := New("t")
	bd := g.Ctx.NewDim("B")
	s := g.Ctx.NewDim("S")
	h := g.Ctx.StaticDim(8)
	x := g.Parameter("x", tensor.F32, symshape.Shape{bd, s, h})
	y := g.Exp(x)
	// Elementwise ops must reuse the same dim symbols.
	for i := range x.Shape {
		if !g.Ctx.Equal(x.Shape[i], y.Shape[i]) {
			t.Fatalf("dim %d symbol not propagated", i)
		}
	}
	z := g.Add(y, x)
	if !g.Ctx.ShapeEqual(z.Shape, x.Shape) {
		t.Fatal("binary op shape mismatch")
	}
}

func TestBuilderBroadcastBias(t *testing.T) {
	g := New("t")
	bd := g.Ctx.NewDim("B")
	h := g.Ctx.StaticDim(8)
	x := g.Parameter("x", tensor.F32, symshape.Shape{bd, h})
	bias := g.Parameter("bias", tensor.F32, symshape.Shape{h})
	y := g.Add(x, bias)
	if !g.Ctx.ShapeEqual(y.Shape, x.Shape) {
		t.Fatalf("bias broadcast shape %s", g.Ctx.String(y.Shape))
	}
}

func TestBuilderBroadcastUnifiesDynamicDims(t *testing.T) {
	g := New("t")
	a := g.Ctx.NewDim("A")
	b := g.Ctx.NewDim("B")
	x := g.Parameter("x", tensor.F32, symshape.Shape{a})
	y := g.Parameter("y", tensor.F32, symshape.Shape{b})
	_ = g.Add(x, y)
	if !g.Ctx.Equal(a, b) {
		t.Fatal("broadcast of two dynamic dims must unify them")
	}
}

func TestMatMulShape(t *testing.T) {
	g := New("t")
	bd := g.Ctx.NewDim("B")
	m := g.Ctx.NewDim("M")
	x := g.Parameter("x", tensor.F32, symshape.Shape{bd, m, g.Ctx.StaticDim(4)})
	w := g.Parameter("w", tensor.F32, symshape.Shape{g.Ctx.StaticDim(4), g.Ctx.StaticDim(6)})
	y := g.MatMul(x, w)
	want := symshape.Shape{bd, m, g.Ctx.StaticDim(6)}
	if !g.Ctx.ShapeEqual(y.Shape, want) {
		t.Fatalf("matmul shape %s", g.Ctx.String(y.Shape))
	}
}

func TestMatMulUnifiesContraction(t *testing.T) {
	g := New("t")
	k1 := g.Ctx.NewDim("K1")
	k2 := g.Ctx.NewDim("K2")
	a := g.Parameter("a", tensor.F32, symshape.Shape{g.Ctx.StaticDim(2), k1})
	b := g.Parameter("b", tensor.F32, symshape.Shape{k2, g.Ctx.StaticDim(3)})
	_ = g.MatMul(a, b)
	if !g.Ctx.Equal(k1, k2) {
		t.Fatal("matmul must unify contraction dims")
	}
}

func TestReduceShape(t *testing.T) {
	g := New("t")
	bd := g.Ctx.NewDim("B")
	s := g.Ctx.NewDim("S")
	x := g.Parameter("x", tensor.F32, symshape.Shape{bd, s, g.Ctx.StaticDim(8)})
	r := g.Sum(x, []int{-1}, false)
	if !g.Ctx.ShapeEqual(r.Shape, symshape.Shape{bd, s}) {
		t.Fatalf("reduce shape %s", g.Ctx.String(r.Shape))
	}
	rk := g.Sum(x, []int{2}, true)
	if rk.Rank() != 3 {
		t.Fatalf("keepDims rank %d", rk.Rank())
	}
	if v, ok := g.Ctx.StaticValue(rk.Shape[2]); !ok || v != 1 {
		t.Fatal("keepDims dim must be static 1")
	}
}

func TestMergeAndSplitDims(t *testing.T) {
	g := New("t")
	bd := g.Ctx.NewDim("B")
	s := g.Ctx.NewDim("S")
	h := g.Ctx.StaticDim(12)
	x := g.Parameter("x", tensor.F32, symshape.Shape{bd, s, h})
	m := g.MergeDims(x, 0, 2)
	if m.Rank() != 2 {
		t.Fatalf("merged rank %d", m.Rank())
	}
	if !g.Ctx.ProductEqual(m.Shape, x.Shape) {
		t.Fatal("merge must preserve symbolic element count")
	}
	sp := g.SplitDim(x, 2, 4)
	if sp.Rank() != 4 {
		t.Fatalf("split rank %d", sp.Rank())
	}
	if v, ok := g.Ctx.StaticValue(sp.Shape[2]); !ok || v != 3 {
		t.Fatalf("split outer dim = %d, %v", v, ok)
	}
}

func TestSplitDynamicDimRequiresDivisibility(t *testing.T) {
	g := New("t")
	d := g.Ctx.NewDim("D")
	g.Ctx.DeclareDivisible(d, 4)
	x := g.Parameter("x", tensor.F32, symshape.Shape{d})
	sp := g.SplitDim(x, 0, 4)
	if sp.Rank() != 2 {
		t.Fatalf("rank %d", sp.Rank())
	}
	// Runtime evaluation must see through the product.
	b := symshape.NewBinding(g.Ctx)
	if err := b.Bind(x.Shape, []int{12}); err != nil {
		t.Fatal(err)
	}
	got := b.MustEval(sp.Shape)
	if got[0] != 3 || got[1] != 4 {
		t.Fatalf("split eval %v", got)
	}
}

func TestConcatShape(t *testing.T) {
	g := New("t")
	bd := g.Ctx.NewDim("B")
	a := g.Parameter("a", tensor.F32, symshape.Shape{bd, g.Ctx.StaticDim(2)})
	b := g.Parameter("b", tensor.F32, symshape.Shape{bd, g.Ctx.StaticDim(3)})
	c := g.Concat(1, a, b)
	if v, ok := g.Ctx.StaticValue(c.Shape[1]); !ok || v != 5 {
		t.Fatalf("static concat extent %d %v", v, ok)
	}
	// Dynamic axis: derived sum must evaluate at runtime.
	s1 := g.Ctx.NewDim("S1")
	s2 := g.Ctx.NewDim("S2")
	p := g.Parameter("p", tensor.F32, symshape.Shape{bd, s1})
	q := g.Parameter("q", tensor.F32, symshape.Shape{bd, s2})
	cat := g.Concat(1, p, q)
	bind := symshape.NewBinding(g.Ctx)
	if err := bind.Bind(p.Shape, []int{2, 7}); err != nil {
		t.Fatal(err)
	}
	if err := bind.Bind(q.Shape, []int{2, 4}); err != nil {
		t.Fatal(err)
	}
	got := bind.MustEval(cat.Shape)
	if got[1] != 11 {
		t.Fatalf("concat eval %v", got)
	}
}

func TestToposortAndVerify(t *testing.T) {
	g, _, _ := mlpGraph(t)
	order := g.Toposort()
	pos := map[*Node]int{}
	for i, n := range order {
		pos[n] = i
	}
	for _, n := range order {
		for _, in := range n.Inputs {
			if pos[in] >= pos[n] {
				t.Fatal("toposort violated")
			}
		}
	}
	if err := g.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestReplaceAllUsesAndSweep(t *testing.T) {
	g := New("t")
	bd := g.Ctx.NewDim("B")
	x := g.Parameter("x", tensor.F32, symshape.Shape{bd})
	a := g.Exp(x)
	bNode := g.Log(a)
	g.SetOutputs(bNode)
	// Replace exp(x) with x directly.
	g.ReplaceAllUses(a, x)
	if bNode.Inputs[0] != x {
		t.Fatal("use not replaced")
	}
	removed := g.Sweep()
	if removed != 1 {
		t.Fatalf("swept %d nodes, want 1", removed)
	}
}

func TestEvaluateMLP(t *testing.T) {
	g, w, bias := mlpGraph(t)
	r := tensor.NewRNG(11)
	for _, batch := range []int{1, 3, 17} {
		x := tensor.RandN(r, 1, batch, 4)
		got, err := Evaluate(g, []*tensor.Tensor{x})
		if err != nil {
			t.Fatal(err)
		}
		want := tensor.Unary(tensor.Binary(tensor.MatMul(x, w), bias, tensor.FnAdd), tensor.FnRelu)
		if err := tensor.AllClose(got[0], want, 1e-5, 1e-6); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
	}
}

func TestEvaluateSoftmaxLayerNorm(t *testing.T) {
	g := New("t")
	bd := g.Ctx.NewDim("B")
	h := g.Ctx.StaticDim(8)
	x := g.Parameter("x", tensor.F32, symshape.Shape{bd, h})
	gamma := g.Parameter("gamma", tensor.F32, symshape.Shape{h})
	beta := g.Parameter("beta", tensor.F32, symshape.Shape{h})
	g.SetOutputs(g.Softmax(x), g.LayerNorm(x, gamma, beta, 1e-5))
	r := tensor.NewRNG(2)
	xs := tensor.RandN(r, 1, 5, 8)
	gs := tensor.RandN(r, 1, 8)
	bs := tensor.RandN(r, 1, 8)
	got, err := Evaluate(g, []*tensor.Tensor{xs, gs, bs})
	if err != nil {
		t.Fatal(err)
	}
	if err := tensor.AllClose(got[0], tensor.Softmax(xs), 1e-6, 1e-7); err != nil {
		t.Fatal(err)
	}
	if err := tensor.AllClose(got[1], tensor.LayerNorm(xs, gs, bs, 1e-5), 1e-6, 1e-7); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateReshapeDynamic(t *testing.T) {
	g := New("t")
	bd := g.Ctx.NewDim("B")
	s := g.Ctx.NewDim("S")
	h := g.Ctx.StaticDim(4)
	x := g.Parameter("x", tensor.F32, symshape.Shape{bd, s, h})
	m := g.MergeDims(x, 0, 2)
	g.SetOutputs(m)
	r := tensor.NewRNG(4)
	xs := tensor.RandN(r, 1, 3, 5, 4)
	got, err := Evaluate(g, []*tensor.Tensor{xs})
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.ShapeEq(got[0].Shape(), []int{15, 4}) {
		t.Fatalf("shape %v", got[0].Shape())
	}
}

func TestEvaluateGatherConvert(t *testing.T) {
	g := New("t")
	bd := g.Ctx.NewDim("B")
	table := g.Constant(tensor.FromF32([]float32{1, 2, 3, 4, 5, 6}, 3, 2))
	idx := g.Parameter("idx", tensor.I32, symshape.Shape{bd})
	emb := g.Gather(table, idx)
	g.SetOutputs(emb)
	got, err := Evaluate(g, []*tensor.Tensor{tensor.FromI32([]int32{2, 0}, 2)})
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{5, 6, 1, 2}
	for i, v := range want {
		if got[0].F32()[i] != v {
			t.Fatalf("gather %v", got[0].F32())
		}
	}
}

func TestVerifyCatchesBadGraph(t *testing.T) {
	g := New("t")
	bd := g.Ctx.NewDim("B")
	x := g.Parameter("x", tensor.F32, symshape.Shape{bd})
	y := g.Exp(x)
	// Corrupt: make select with non-bool predicate.
	bad := &Node{Kind: OpSelect, Inputs: []*Node{y, y, y}, Shape: y.Shape, DType: tensor.F32}
	g.add(bad)
	g.SetOutputs(bad)
	if err := g.Verify(); err == nil {
		t.Fatal("verify must reject non-bool select predicate")
	}
}

func TestStringRendering(t *testing.T) {
	g, _, _ := mlpGraph(t)
	s := g.String()
	for _, want := range []string{"graph mlp", "matmul", "relu", "return"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestSignatureOfGraphParams(t *testing.T) {
	g, _, _ := mlpGraph(t)
	shapes := make([]symshape.Shape, len(g.Params))
	for i, p := range g.Params {
		shapes[i] = p.Shape
	}
	sig := g.Ctx.Signature(shapes)
	if sig != "[d0,4]" {
		t.Fatalf("signature %q", sig)
	}
}

func TestConv1DShapeInference(t *testing.T) {
	g := New("t")
	b := g.Ctx.NewDim("B")
	s := g.Ctx.NewDim("S")
	g.Ctx.DeclareRange(s, 4, 64)
	x := g.Parameter("x", tensor.F32, symshape.Shape{b, s, g.Ctx.StaticDim(3)})
	w := g.Constant(tensor.RandN(tensor.NewRNG(1), 0.1, 4, 3, 5))
	c := g.Conv1D(x, w)
	// Output: [B, S-3, 5]; evaluate via binding.
	bind := symshape.NewBinding(g.Ctx)
	if err := bind.Bind(x.Shape, []int{2, 10, 3}); err != nil {
		t.Fatal(err)
	}
	got := bind.MustEval(c.Shape)
	if got[0] != 2 || got[1] != 7 || got[2] != 5 {
		t.Fatalf("conv shape %v", got)
	}
}

func TestSameConv1DPreservesSeqSymbol(t *testing.T) {
	g := New("t")
	b := g.Ctx.NewDim("B")
	s := g.Ctx.NewDim("S")
	g.Ctx.DeclareRange(s, 4, 64)
	x := g.Parameter("x", tensor.F32, symshape.Shape{b, s, g.Ctx.StaticDim(3)})
	w := g.Constant(tensor.RandN(tensor.NewRNG(1), 0.1, 3, 3, 5))
	c := g.SameConv1D(x, w)
	if !g.Ctx.Equal(c.Shape[1], s) {
		t.Fatal("same conv must preserve the sequence symbol")
	}
	g.SetOutputs(c)
	// Numerics: compare against explicit pad + tensor conv.
	r := tensor.NewRNG(2)
	xs := tensor.RandN(r, 1, 2, 6, 3)
	got, err := Evaluate(g, []*tensor.Tensor{xs})
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.Conv1D(tensor.PadLoHi(xs, []int{0, 1, 0}, []int{0, 1, 0}), w.Lit)
	if err := tensor.AllClose(got[0], want, 1e-5, 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestPadShapeAndEval(t *testing.T) {
	g := New("t")
	b := g.Ctx.NewDim("B")
	x := g.Parameter("x", tensor.F32, symshape.Shape{b, g.Ctx.StaticDim(3)})
	p := g.Pad(x, []int{0, 2}, []int{0, 1})
	if v, ok := g.Ctx.StaticValue(p.Shape[1]); !ok || v != 6 {
		t.Fatalf("padded static dim %d %v", v, ok)
	}
	g.SetOutputs(p)
	r := tensor.NewRNG(3)
	xs := tensor.RandN(r, 1, 2, 3)
	got, err := Evaluate(g, []*tensor.Tensor{xs})
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.ShapeEq(got[0].Shape(), []int{2, 6}) {
		t.Fatalf("pad shape %v", got[0].Shape())
	}
}
