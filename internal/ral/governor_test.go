package ral

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"godisc/internal/discerr"
)

func TestGovernorNilIsUngoverned(t *testing.T) {
	var g *Governor
	release, err := g.Reserve(context.Background(), 1<<40)
	if err != nil {
		t.Fatalf("nil governor rejected: %v", err)
	}
	release()
	if g.Budget() != 0 {
		t.Fatalf("nil governor budget = %d", g.Budget())
	}
	if NewGovernor(0) != nil || NewGovernor(-5) != nil {
		t.Fatal("non-positive budget should build a nil governor")
	}
}

func TestGovernorAccounting(t *testing.T) {
	g := NewGovernor(1000)
	r1, err := g.Reserve(context.Background(), 400)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g.Reserve(context.Background(), 600)
	if err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.ReservedBytes != 1000 || st.HighWaterBytes != 1000 || st.Grants != 2 {
		t.Fatalf("stats after two grants: %+v", st)
	}
	r1()
	r2()
	st = g.Stats()
	if st.ReservedBytes != 0 || st.HighWaterBytes != 1000 {
		t.Fatalf("stats after release: %+v", st)
	}
}

func TestGovernorFailFastOverBudget(t *testing.T) {
	g := NewGovernor(100)
	_, err := g.Reserve(context.Background(), 101)
	if !errors.Is(err, discerr.ErrMemoryBudget) {
		t.Fatalf("want ErrMemoryBudget, got %v", err)
	}
	if st := g.Stats(); st.Rejects != 1 {
		t.Fatalf("rejects = %d, want 1", st.Rejects)
	}
}

func TestGovernorBlocksThenGrantsFIFO(t *testing.T) {
	g := NewGovernor(100)
	r1, err := g.Reserve(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	order := make(chan int, 2)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 1; i <= 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			// Stagger so the FIFO order is deterministic.
			time.Sleep(time.Duration(i) * 20 * time.Millisecond)
			r, err := g.Reserve(context.Background(), 100)
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order <- i
			r()
		}(i)
	}
	close(start)
	time.Sleep(80 * time.Millisecond) // both waiters queued
	if st := g.Stats(); st.Waits != 2 {
		t.Fatalf("waits = %d, want 2", st.Waits)
	}
	r1()
	wg.Wait()
	if first, second := <-order, <-order; first != 1 || second != 2 {
		t.Fatalf("grant order %d,%d; want FIFO 1,2", first, second)
	}
	if st := g.Stats(); st.ReservedBytes != 0 || st.HighWaterBytes != 100 {
		t.Fatalf("final stats: %+v", st)
	}
}

func TestGovernorWaitTimeout(t *testing.T) {
	g := NewGovernor(100)
	release, err := g.Reserve(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err = g.Reserve(ctx, 50)
	if !errors.Is(err, discerr.ErrMemoryBudget) {
		t.Fatalf("timeout should wrap ErrMemoryBudget, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timeout should wrap the context error, got %v", err)
	}
	if st := g.Stats(); st.Timeouts != 1 {
		t.Fatalf("timeouts = %d, want 1", st.Timeouts)
	}
}

func TestGovernorConcurrentNeverExceedsBudget(t *testing.T) {
	const budget = 512
	g := NewGovernor(budget)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				n := int64(32 + (i*j)%97)
				r, err := g.Reserve(context.Background(), n)
				if err != nil {
					t.Errorf("reserve %d: %v", n, err)
					return
				}
				r()
			}
		}(i)
	}
	wg.Wait()
	st := g.Stats()
	if st.ReservedBytes != 0 {
		t.Fatalf("leaked reservation: %+v", st)
	}
	if st.HighWaterBytes > budget {
		t.Fatalf("high water %d exceeded budget %d", st.HighWaterBytes, budget)
	}
}
