// Package ral is the Runtime Abstraction Layer: the thin host runtime that
// compiled executables run on, mirroring BladeDISC's RAL. It owns device
// buffer management (a size-class pool with reuse), the launch profiler
// that the simulated device model charges into, and the compilation cache.
// Host-side shape computation is symshape.Binding, which RAL consumers use
// to size every intermediate buffer at invocation time.
package ral

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"godisc/internal/faultinject"
	"godisc/internal/obs"
)

// Pool is a size-class buffer pool for device allocations. Buffers are
// rounded up to powers of two and reused, so steady-state inference does
// not allocate — the BladeDISC RAL behaviour that keeps dynamic shapes from
// thrashing the device allocator.
type Pool struct {
	mu      sync.Mutex
	classes map[uint][][]float32

	// faults, when set, is probed at the alloc site by Session.Get so
	// transient RAL allocation failures are testable (see faultinject).
	faults atomic.Pointer[faultinject.Injector]

	// Stats (read via Stats()).
	allocs int
	reuses int
	inUse  int64
	peak   int64
}

// SetFaults installs (or clears, with nil) the pool's fault injector.
func (p *Pool) SetFaults(in *faultinject.Injector) { p.faults.Store(in) }

// NewPool returns an empty pool.
func NewPool() *Pool {
	return &Pool{classes: map[uint][][]float32{}}
}

// class returns the size class (log2 of rounded capacity) for n elements.
func class(n int) uint {
	if n <= 1 {
		return 0
	}
	return uint(bits.Len(uint(n - 1)))
}

// RoundElems reports the pooled capacity, in elements, that Get(n) books
// against the pool's accounting: buffers round up to power-of-two size
// classes. Footprint estimation (exec) uses it so memory reservations
// match the pool's own arithmetic exactly.
func RoundElems(n int) int64 { return int64(1) << class(n) }

// Get returns a buffer with len n (capacity the size class). Contents are
// zeroed.
func (p *Pool) Get(n int) []float32 {
	c := class(n)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.inUse += int64(1) << c
	if p.inUse > p.peak {
		p.peak = p.inUse
	}
	free := p.classes[c]
	if len(free) > 0 {
		buf := free[len(free)-1]
		p.classes[c] = free[:len(free)-1]
		p.reuses++
		buf = buf[:n]
		for i := range buf {
			buf[i] = 0
		}
		return buf
	}
	p.allocs++
	return make([]float32, n, 1<<c)
}

// Put returns a buffer to the pool.
func (p *Pool) Put(buf []float32) {
	if buf == nil {
		return
	}
	c := class(cap(buf))
	if 1<<c != cap(buf) {
		// Foreign buffer (not from Get): adopt into the class below.
		c = uint(bits.Len(uint(cap(buf)))) - 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.inUse -= int64(1) << c
	p.classes[c] = append(p.classes[c], buf[:cap(buf)])
}

// PoolStats is a snapshot of pool behaviour.
type PoolStats struct {
	Allocs    int
	Reuses    int
	PeakElems int64
	// InUseElems is the rounded element count currently checked out.
	// After every run has released its buffers it must be zero.
	InUseElems int64
}

// Stats returns a snapshot.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{Allocs: p.allocs, Reuses: p.reuses, PeakElems: p.peak, InUseElems: p.inUse}
}

// Observe registers the pool's accounting as on-scrape gauges on reg.
// Several pools may observe the same labelled series (one pool per
// compiled engine of a graph); the registry sums their contributions.
func (p *Pool) Observe(reg *obs.Registry, labels ...obs.Label) {
	if p == nil || reg == nil {
		return
	}
	reg.GaugeFunc("godisc_pool_allocs_total", func() float64 { return float64(p.Stats().Allocs) }, labels...)
	reg.GaugeFunc("godisc_pool_reuses_total", func() float64 { return float64(p.Stats().Reuses) }, labels...)
	reg.GaugeFunc("godisc_pool_in_use_elems", func() float64 { return float64(p.Stats().InUseElems) }, labels...)
	reg.GaugeFunc("godisc_pool_peak_elems", func() float64 { return float64(p.Stats().PeakElems) }, labels...)
}

// Session is a per-run view of a shared Pool: each invocation of an
// executable opens one, routes every Get/Put through it, and thereby keeps
// per-run bookkeeping (outstanding buffers, traffic) out of the shared
// pool. A Session belongs to exactly one run, but that run may execute on
// several worker goroutines at once (the parallel executor's partitioned
// kernels allocate scratch concurrently), so the counters are atomic.
type Session struct {
	pool *Pool
	gets atomic.Int64
	puts atomic.Int64
}

// Session opens a per-run handle on the pool.
func (p *Pool) Session() *Session { return &Session{pool: p} }

// Get draws a zeroed buffer of len n from the underlying pool. It fails
// only when the pool's fault injector fires at the alloc site — the
// simulated equivalent of a transient device-allocator error, which the
// serving layer's retry policy absorbs.
func (s *Session) Get(n int) ([]float32, error) {
	if err := s.pool.faults.Load().Check(faultinject.SiteAlloc); err != nil {
		return nil, fmt.Errorf("ral: alloc %d elems: %w", n, err)
	}
	s.gets.Add(1)
	return s.pool.Get(n), nil
}

// Put returns a buffer drawn by this session to the underlying pool.
func (s *Session) Put(buf []float32) {
	if buf == nil {
		return
	}
	s.puts.Add(1)
	s.pool.Put(buf)
}

// Outstanding reports buffers drawn but not yet returned. After a run has
// released everything it must be zero — the invariant the concurrency
// tests assert so that leaks in one request cannot starve the others.
func (s *Session) Outstanding() int { return int(s.gets.Load() - s.puts.Load()) }

// Profiler accumulates the simulated execution profile of a run (or many).
type Profiler struct {
	Launches    int
	LibraryOps  int
	BytesMoved  float64
	Flops       float64
	SimulatedNs float64
	// HostNs charges per-op host/dispatch overheads (framework overhead in
	// eager baselines, RAL dispatch in compiled ones).
	HostNs float64
	// CompileNs charges compilation/tuning stalls (static compilers).
	CompileNs float64
	// VariantHits counts runtime variant selections by name.
	VariantHits map[string]int
	// PerKernel accumulates simulated time by kernel name.
	PerKernel map[string]float64
	// Partitions counts kernel partition chunks executed by the parallel
	// executor (0 for sequential runs; a partitioned launch of C chunks
	// adds C).
	Partitions int
	// KernelWallNs accumulates real host wall-clock nanoseconds spent inside
	// compiled kernel programs (generated-kernel substrate only — library
	// calls excluded, so the E17 exec-mode ablation measures exactly the
	// code the kernel compiler owns). Recorded on the sequential execution
	// path; parallel workers skip the timer to stay lock-free.
	KernelWallNs float64
	// KernelRuns counts the kernel program invocations timed into
	// KernelWallNs.
	KernelRuns int
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{VariantHits: map[string]int{}, PerKernel: map[string]float64{}}
}

// Launch records one kernel launch.
func (pr *Profiler) Launch(kernel, variant string, bytes, flops, simNs float64) {
	pr.Launches++
	pr.BytesMoved += bytes
	pr.Flops += flops
	pr.SimulatedNs += simNs
	if variant != "" {
		pr.VariantHits[variant]++
	}
	pr.PerKernel[kernel] += simNs
}

// Library records one library (BLAS) call.
func (pr *Profiler) Library(name string, bytes, flops, simNs float64) {
	pr.Launches++
	pr.LibraryOps++
	pr.BytesMoved += bytes
	pr.Flops += flops
	pr.SimulatedNs += simNs
	pr.PerKernel[name] += simNs
}

// Host charges host-side overhead (dispatch, scheduling, guards).
func (pr *Profiler) Host(ns float64) {
	pr.HostNs += ns
	pr.SimulatedNs += ns
}

// Compile charges a compilation stall.
func (pr *Profiler) Compile(ns float64) {
	pr.CompileNs += ns
	pr.SimulatedNs += ns
}

// KernelWall records one timed kernel program invocation.
func (pr *Profiler) KernelWall(ns float64) {
	pr.KernelWallNs += ns
	pr.KernelRuns++
}

// Add merges another profile into pr.
func (pr *Profiler) Add(o *Profiler) {
	pr.Launches += o.Launches
	pr.LibraryOps += o.LibraryOps
	pr.BytesMoved += o.BytesMoved
	pr.Flops += o.Flops
	pr.SimulatedNs += o.SimulatedNs
	pr.HostNs += o.HostNs
	pr.CompileNs += o.CompileNs
	pr.Partitions += o.Partitions
	pr.KernelWallNs += o.KernelWallNs
	pr.KernelRuns += o.KernelRuns
	for k, v := range o.VariantHits {
		pr.VariantHits[k] += v
	}
	for k, v := range o.PerKernel {
		pr.PerKernel[k] += v
	}
}

// SharedProfiler is the concurrency-safe aggregation point of a parallel
// run: worker goroutines record each unit's launches into a private
// Profiler shard and merge it here, so the hot per-launch methods stay
// lock-free and the shared profile is only touched once per unit. The
// zero value is not usable; wrap an existing Profiler with ShareProfiler.
type SharedProfiler struct {
	mu sync.Mutex
	pr *Profiler
}

// ShareProfiler wraps pr for concurrent shard merging. The underlying
// Profiler must not be read until every worker is done merging.
func ShareProfiler(pr *Profiler) *SharedProfiler { return &SharedProfiler{pr: pr} }

// Merge folds one worker shard into the shared profile.
func (sp *SharedProfiler) Merge(shard *Profiler) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	sp.pr.Add(shard)
}

// String renders a human-readable summary.
func (pr *Profiler) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "launches=%d (library=%d) bytes=%.3gMB flops=%.3gM sim=%.3gms host=%.3gms compile=%.3gms",
		pr.Launches, pr.LibraryOps, pr.BytesMoved/1e6, pr.Flops/1e6,
		pr.SimulatedNs/1e6, pr.HostNs/1e6, pr.CompileNs/1e6)
	if len(pr.VariantHits) > 0 {
		keys := make([]string, 0, len(pr.VariantHits))
		for k := range pr.VariantHits {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sb.WriteString(" variants={")
		for i, k := range keys {
			if i > 0 {
				sb.WriteString(" ")
			}
			fmt.Fprintf(&sb, "%s:%d", k, pr.VariantHits[k])
		}
		sb.WriteString("}")
	}
	return sb.String()
}

// Cache is the compilation cache. BladeDISC keys it by *symbolic
// signature*, so one entry serves all concrete shapes; static compilers key
// by concrete shapes, paying one compilation per distinct shape tuple
// (experiment E9 contrasts the two). Concurrent misses on the same key are
// singleflight-deduplicated: one caller compiles, the rest wait and share
// the result — the property a serving frontend needs when a burst of first
// requests arrives for a model that is not compiled yet.
type Cache struct {
	mu       sync.Mutex
	entries  map[string]any
	inflight map[string]*flightCall
	// pins counts in-flight runs holding each entry: a pinned entry can
	// never be evicted, which is what lets a fleet's LRU release an
	// engine's memory reservation without racing the runs using it.
	pins      map[string]int
	hits      int
	misses    int
	shared    int
	evictions int
}

// flightCall is one in-progress compilation that concurrent callers of the
// same key wait on.
type flightCall struct {
	done chan struct{}
	v    any
	err  error
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{
		entries:  map[string]any{},
		inflight: map[string]*flightCall{},
		pins:     map[string]int{},
	}
}

// GetOrCompile returns the cached value for key, or invokes compile and
// stores the result. The boolean reports whether it was a hit. If another
// goroutine is already compiling the same key, the call blocks until that
// compilation finishes and shares its outcome (reported as a hit: this
// caller did not pay for a compilation). A failed compilation is not
// cached; the next request retries.
func (c *Cache) GetOrCompile(key string, compile func() (any, error)) (any, bool, error) {
	c.mu.Lock()
	if v, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		return v, true, nil
	}
	if fc, ok := c.inflight[key]; ok {
		c.shared++
		c.mu.Unlock()
		<-fc.done
		return fc.v, true, fc.err
	}
	fc := &flightCall{done: make(chan struct{})}
	c.inflight[key] = fc
	c.misses++
	c.mu.Unlock()

	fc.v, fc.err = compile()
	c.mu.Lock()
	if fc.err == nil {
		c.entries[key] = fc.v
	}
	delete(c.inflight, key)
	c.mu.Unlock()
	close(fc.done)
	return fc.v, false, fc.err
}

// AcquireOrCompile is GetOrCompile with eviction pinning: on success the
// entry's pin count is incremented atomically with the lookup, so Evict
// cannot remove it until the caller's matching Unpin. Callers that run
// the cached engine use this; callers that only materialize it (async
// compilation) keep GetOrCompile.
func (c *Cache) AcquireOrCompile(key string, compile func() (any, error)) (any, bool, error) {
	for {
		c.mu.Lock()
		if v, ok := c.entries[key]; ok {
			c.hits++
			c.pins[key]++
			c.mu.Unlock()
			return v, true, nil
		}
		fc, flying := c.inflight[key]
		if !flying {
			fc = &flightCall{done: make(chan struct{})}
			c.inflight[key] = fc
			c.misses++
			c.mu.Unlock()

			fc.v, fc.err = compile()
			c.mu.Lock()
			if fc.err == nil {
				c.entries[key] = fc.v
				c.pins[key]++
			}
			delete(c.inflight, key)
			c.mu.Unlock()
			close(fc.done)
			return fc.v, false, fc.err
		}
		c.shared++
		c.mu.Unlock()
		<-fc.done
		if fc.err != nil {
			return fc.v, true, fc.err
		}
		// The flight succeeded, but its entry may already have been
		// evicted in the gap before we could pin it; re-loop so lookup
		// and pin stay atomic.
		c.mu.Lock()
		if _, ok := c.entries[key]; ok {
			c.pins[key]++
			c.mu.Unlock()
			return fc.v, true, nil
		}
		c.mu.Unlock()
	}
}

// AcquirePeek is Peek with eviction pinning: a hit increments the entry's
// pin count atomically with the lookup. The caller must Unpin.
func (c *Cache) AcquirePeek(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.entries[key]
	if ok {
		c.hits++
		c.pins[key]++
	}
	return v, ok
}

// Unpin releases one AcquireOrCompile/AcquirePeek pin.
func (c *Cache) Unpin(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := c.pins[key]; n > 1 {
		c.pins[key] = n - 1
	} else {
		delete(c.pins, key)
	}
}

// Pins reports the current pin count of key (0 when absent) — the
// eviction-safety invariant tests assert.
func (c *Cache) Pins(key string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pins[key]
}

// Evict removes key from the cache unless a run holds it pinned.
// evicted reports whether the entry was removed; pinned reports that the
// entry exists but is held by in-flight runs (the caller retries after
// they drain). An absent key returns (false, false).
func (c *Cache) Evict(key string) (evicted, pinned bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; !ok {
		return false, false
	}
	if c.pins[key] > 0 {
		return false, true
	}
	delete(c.entries, key)
	c.evictions++
	return true, false
}

// Evictions counts successful Evict calls over the cache's lifetime.
func (c *Cache) Evictions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// Peek returns the cached value for key without ever blocking: no
// singleflight join, no compile. The async-compile serving path uses it
// to decide between "run the engine" and "serve the interpreter while a
// background build runs". A present key counts as a hit.
func (c *Cache) Peek(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.entries[key]
	if ok {
		c.hits++
	}
	return v, ok
}

// Put stores a value produced outside GetOrCompile (a background
// compilation, a deserialized engine). The first binding of a key wins:
// once an engine serves requests it is never hot-swapped for a rival, so
// concurrent loaders and compilers converge on one engine per key.
func (c *Cache) Put(key string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; !ok {
		c.entries[key] = v
	}
}

// Contains reports whether key is cached, counting a hit if so.
func (c *Cache) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Stats returns (hits, misses, entries). A caller that waited on another
// goroutine's in-flight compilation counts as a hit; misses count started
// compilations, so misses == number of times the compile callback ran
// (successful or not).
func (c *Cache) Stats() (hits, misses, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits + c.shared, c.misses, len(c.entries)
}
