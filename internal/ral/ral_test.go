package ral

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"godisc/internal/discerr"
	"godisc/internal/faultinject"
)

func TestPoolReuse(t *testing.T) {
	p := NewPool()
	a := p.Get(100)
	if len(a) != 100 || cap(a) != 128 {
		t.Fatalf("len=%d cap=%d", len(a), cap(a))
	}
	a[0] = 42
	p.Put(a)
	b := p.Get(120) // same class (128)
	if b[0] != 0 {
		t.Fatal("reused buffer must be zeroed")
	}
	st := p.Stats()
	if st.Allocs != 1 || st.Reuses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPoolDistinctClasses(t *testing.T) {
	p := NewPool()
	small := p.Get(10)
	p.Put(small)
	big := p.Get(1000)
	if cap(big) == cap(small) {
		t.Fatal("distinct classes must not share buffers")
	}
	st := p.Stats()
	if st.Allocs != 2 {
		t.Fatalf("allocs %d", st.Allocs)
	}
}

func TestPoolPeakTracking(t *testing.T) {
	p := NewPool()
	a := p.Get(64)
	b := p.Get(64)
	p.Put(a)
	p.Put(b)
	if st := p.Stats(); st.PeakElems < 128 {
		t.Fatalf("peak %d", st.PeakElems)
	}
}

func TestProfilerAccumulation(t *testing.T) {
	pr := NewProfiler()
	pr.Launch("k1", "vec4", 1000, 500, 2000)
	pr.Library("matmul", 4000, 8000, 9000)
	pr.Host(100)
	pr.Compile(1e6)
	if pr.Launches != 2 || pr.LibraryOps != 1 {
		t.Fatalf("launches=%d lib=%d", pr.Launches, pr.LibraryOps)
	}
	if pr.SimulatedNs != 2000+9000+100+1e6 {
		t.Fatalf("sim=%v", pr.SimulatedNs)
	}
	if pr.VariantHits["vec4"] != 1 {
		t.Fatalf("variants %v", pr.VariantHits)
	}
	other := NewProfiler()
	other.Launch("k1", "vec4", 1, 1, 1)
	pr.Add(other)
	if pr.Launches != 3 || pr.VariantHits["vec4"] != 2 {
		t.Fatal("Add must merge")
	}
	if !strings.Contains(pr.String(), "vec4:2") {
		t.Fatalf("String: %s", pr.String())
	}
}

func TestCacheHitsAndMisses(t *testing.T) {
	c := NewCache()
	calls := 0
	compile := func() (any, error) { calls++; return calls, nil }
	v1, hit1, err := c.GetOrCompile("a", compile)
	if err != nil || hit1 || v1 != 1 {
		t.Fatalf("first: %v %v %v", v1, hit1, err)
	}
	v2, hit2, err := c.GetOrCompile("a", compile)
	if err != nil || !hit2 || v2 != 1 {
		t.Fatalf("second: %v %v %v", v2, hit2, err)
	}
	if _, _, err := c.GetOrCompile("b", compile); err != nil {
		t.Fatal(err)
	}
	hits, misses, entries := c.Stats()
	if hits != 1 || misses != 2 || entries != 2 {
		t.Fatalf("stats %d/%d/%d", hits, misses, entries)
	}
}

func TestCachePropagatesErrors(t *testing.T) {
	c := NewCache()
	wantErr := errors.New("boom")
	if _, _, err := c.GetOrCompile("x", func() (any, error) { return nil, wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	// Failed compiles are not cached.
	if _, hit, err := c.GetOrCompile("x", func() (any, error) { return 1, nil }); err != nil || hit {
		t.Fatalf("retry: hit=%v err=%v", hit, err)
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache()
	var calls int32
	started := make(chan struct{})
	release := make(chan struct{})
	compile := func() (any, error) {
		atomic.AddInt32(&calls, 1)
		close(started)
		<-release
		return "engine", nil
	}

	const waiters = 8
	var wg sync.WaitGroup
	results := make([]any, waiters)
	hits := make([]bool, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, hit, err := c.GetOrCompile("sig", compile)
			if err != nil {
				t.Error(err)
			}
			results[i], hits[i] = v, hit
		}(i)
	}
	<-started // one compilation is in flight
	release <- struct{}{}
	close(release)
	wg.Wait()

	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Fatalf("compile ran %d times, want 1", got)
	}
	nHit := 0
	for i := range results {
		if results[i] != "engine" {
			t.Fatalf("result[%d] = %v", i, results[i])
		}
		if hits[i] {
			nHit++
		}
	}
	if nHit != waiters-1 {
		t.Fatalf("%d hits, want %d (everyone but the compiler)", nHit, waiters-1)
	}
	h, m, e := c.Stats()
	if h != waiters-1 || m != 1 || e != 1 {
		t.Fatalf("stats %d/%d/%d", h, m, e)
	}
}

func TestCacheSingleflightErrorNotCached(t *testing.T) {
	c := NewCache()
	boom := errors.New("boom")
	gate := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			_, _, errs[i] = c.GetOrCompile("k", func() (any, error) { return nil, boom })
		}(i)
	}
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("errs[%d] = %v", i, err)
		}
	}
	// The failure was not cached: a later compile succeeds.
	if v, hit, err := c.GetOrCompile("k", func() (any, error) { return 7, nil }); err != nil || hit || v != 7 {
		t.Fatalf("retry: %v %v %v", v, hit, err)
	}
}

func TestSessionAccounting(t *testing.T) {
	p := NewPool()
	s := p.Session()
	a, err := s.Get(64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Get(32)
	if err != nil {
		t.Fatal(err)
	}
	if s.Outstanding() != 2 {
		t.Fatalf("outstanding = %d", s.Outstanding())
	}
	s.Put(a)
	s.Put(b)
	s.Put(nil) // no-op
	if s.Outstanding() != 0 {
		t.Fatalf("outstanding after release = %d", s.Outstanding())
	}
	// Buffers went back to the shared pool: a fresh session reuses them.
	s2 := p.Session()
	if _, err := s2.Get(64); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Reuses == 0 {
		t.Fatal("session buffers must return to the shared pool")
	}
}

// TestSessionAllocFault: an armed alloc site makes Session.Get fail with
// a transient error, without disturbing pool accounting.
func TestSessionAllocFault(t *testing.T) {
	p := NewPool()
	p.SetFaults(faultinject.New(1).Arm(faultinject.SiteAlloc, faultinject.ModeTransient, 1))
	s := p.Session()
	if _, err := s.Get(64); !errors.Is(err, discerr.ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient", err)
	}
	if s.Outstanding() != 0 {
		t.Fatalf("failed alloc must not count as outstanding: %d", s.Outstanding())
	}
	// Disarming restores normal allocation.
	p.SetFaults(nil)
	buf, err := s.Get(64)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(buf)
	if st := p.Stats(); st.InUseElems != 0 {
		t.Fatalf("in-use after release = %d", st.InUseElems)
	}
}
