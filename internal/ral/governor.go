// Memory governor: a global byte budget over every pool that shares it.
// BladeDISC's RAL assumes the device allocator is bounded by hardware; the
// serving analogue is a soft budget — each run reserves its engine's peak
// buffer footprint (computed at compile time from symbolic shapes and the
// liveness plan, bound to concrete dims per run) before touching the pool,
// and either waits for memory to drain or fails fast with
// discerr.ErrMemoryBudget. Reservations are all-or-nothing against a
// single resource, so waiting cannot deadlock.
package ral

import (
	"context"
	"fmt"
	"sync"

	"godisc/internal/discerr"
	"godisc/internal/obs"
)

// Governor enforces a global memory budget in bytes. The zero value is not
// usable; build one with NewGovernor. A nil *Governor is valid everywhere
// and admits everything (the ungoverned default).
type Governor struct {
	budget int64

	mu       sync.Mutex
	reserved int64
	high     int64
	waiters  []*memWaiter

	// Counters (under mu; read via Stats).
	grants   int64
	waits    int64
	rejects  int64
	timeouts int64
}

// memWaiter is one blocked reservation. grant is buffered so a releaser
// never blocks handing the grant to a waiter that is concurrently timing
// out (the waiter detects the race and returns the grant).
type memWaiter struct {
	bytes int64
	grant chan struct{}
}

// NewGovernor returns a governor with the given byte budget. budget <= 0
// returns nil — the ungoverned governor every call site accepts.
func NewGovernor(budget int64) *Governor {
	if budget <= 0 {
		return nil
	}
	return &Governor{budget: budget}
}

// Budget reports the configured byte budget (0 for a nil governor).
func (g *Governor) Budget() int64 {
	if g == nil {
		return 0
	}
	return g.budget
}

// Reserve blocks until `bytes` can be reserved under the budget, the
// context is done, or the reservation is provably infeasible (bytes >
// budget, which no amount of waiting fixes). On success it returns a
// release func that must be called exactly once; on failure the error
// wraps discerr.ErrMemoryBudget (plus ctx.Err() when the wait timed out).
// A nil governor grants immediately.
func (g *Governor) Reserve(ctx context.Context, bytes int64) (func(), error) {
	if g == nil || bytes <= 0 {
		return func() {}, nil
	}
	if bytes > g.budget {
		g.mu.Lock()
		g.rejects++
		g.mu.Unlock()
		return nil, fmt.Errorf("ral: reservation of %d bytes exceeds budget %d: %w",
			bytes, g.budget, discerr.ErrMemoryBudget)
	}
	g.mu.Lock()
	if g.reserved+bytes <= g.budget && len(g.waiters) == 0 {
		g.grantLocked(bytes)
		g.mu.Unlock()
		return func() { g.release(bytes) }, nil
	}
	// Budget exhausted (or a FIFO queue has formed): wait for releases.
	w := &memWaiter{bytes: bytes, grant: make(chan struct{}, 1)}
	g.waiters = append(g.waiters, w)
	g.waits++
	g.mu.Unlock()

	select {
	case <-w.grant:
		return func() { g.release(bytes) }, nil
	case <-ctx.Done():
		g.mu.Lock()
		for i, o := range g.waiters {
			if o == w {
				g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
				break
			}
		}
		g.timeouts++
		g.mu.Unlock()
		select {
		case <-w.grant:
			// A releaser granted us in the same instant: hand it back.
			g.release(bytes)
		default:
		}
		return nil, fmt.Errorf("ral: waiting for %d bytes of budget %d: %w: %w",
			bytes, g.budget, ctx.Err(), discerr.ErrMemoryBudget)
	}
}

// TryReserve reserves bytes without ever waiting: ok=false when the
// reservation does not fit right now (or a FIFO queue of waiters has
// formed, which it must not jump). A fleet's LRU uses it to decide
// between "charge the ledger" and "evict an idle engine first". A nil
// governor (or a non-positive size) grants immediately.
func (g *Governor) TryReserve(bytes int64) (func(), bool) {
	if g == nil || bytes <= 0 {
		return func() {}, true
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if bytes > g.budget || g.reserved+bytes > g.budget || len(g.waiters) > 0 {
		return nil, false
	}
	g.grantLocked(bytes)
	return func() { g.release(bytes) }, true
}

// grantLocked books a reservation; caller holds g.mu.
func (g *Governor) grantLocked(bytes int64) {
	g.reserved += bytes
	g.grants++
	if g.reserved > g.high {
		g.high = g.reserved
	}
}

// release returns a reservation and grants as many queued waiters as now
// fit, in FIFO order (a large waiter at the head blocks smaller ones
// behind it — starvation-free, not work-conserving).
func (g *Governor) release(bytes int64) {
	g.mu.Lock()
	g.reserved -= bytes
	for len(g.waiters) > 0 {
		w := g.waiters[0]
		if g.reserved+w.bytes > g.budget {
			break
		}
		g.waiters = g.waiters[1:]
		g.grantLocked(w.bytes)
		w.grant <- struct{}{}
	}
	g.mu.Unlock()
}

// GovernorStats is a snapshot of governance accounting.
type GovernorStats struct {
	// BudgetBytes is the configured ceiling; ReservedBytes the current
	// outstanding reservations; HighWaterBytes the reservation peak.
	BudgetBytes, ReservedBytes, HighWaterBytes int64
	// Grants counts successful reservations, Waits reservations that had
	// to queue first, Rejects fail-fast refusals (bytes > budget), and
	// Timeouts waits abandoned on context expiry.
	Grants, Waits, Rejects, Timeouts int64
}

// Stats returns a snapshot (zero value for a nil governor).
func (g *Governor) Stats() GovernorStats {
	if g == nil {
		return GovernorStats{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return GovernorStats{
		BudgetBytes: g.budget, ReservedBytes: g.reserved, HighWaterBytes: g.high,
		Grants: g.grants, Waits: g.waits, Rejects: g.rejects, Timeouts: g.timeouts,
	}
}

// Observe registers the governor's accounting as on-scrape gauges on reg.
func (g *Governor) Observe(reg *obs.Registry, labels ...obs.Label) {
	if g == nil || reg == nil {
		return
	}
	reg.GaugeFunc("godisc_mem_budget_bytes", func() float64 { return float64(g.Budget()) }, labels...)
	reg.GaugeFunc("godisc_mem_reserved_bytes", func() float64 { return float64(g.Stats().ReservedBytes) }, labels...)
	reg.GaugeFunc("godisc_mem_highwater_bytes", func() float64 { return float64(g.Stats().HighWaterBytes) }, labels...)
	reg.GaugeFunc("godisc_mem_rejects_total", func() float64 {
		st := g.Stats()
		return float64(st.Rejects + st.Timeouts)
	}, labels...)
	reg.GaugeFunc("godisc_mem_waits_total", func() float64 { return float64(g.Stats().Waits) }, labels...)
}
