package ral

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestCachePinBlocksEvict is the safety contract the fleet's LRU eviction
// rides on: an entry acquired (pinned) by an in-flight run refuses
// eviction, and becomes evictable the moment the last pin drops.
func TestCachePinBlocksEvict(t *testing.T) {
	c := NewCache()
	v, hit, err := c.AcquireOrCompile("m@sig", func() (any, error) { return 42, nil })
	if err != nil || hit || v != 42 {
		t.Fatalf("first acquire: v=%v hit=%v err=%v", v, hit, err)
	}
	if n := c.Pins("m@sig"); n != 1 {
		t.Fatalf("acquire must pin: %d pins", n)
	}

	if evicted, pinned := c.Evict("m@sig"); evicted || !pinned {
		t.Fatalf("pinned entry must refuse eviction: evicted=%v pinned=%v", evicted, pinned)
	}
	if !c.Contains("m@sig") {
		t.Fatal("refused eviction must leave the entry resident")
	}

	// A second concurrent acquire stacks a second pin.
	if _, hit, _ := c.AcquireOrCompile("m@sig", func() (any, error) { return 0, nil }); !hit {
		t.Fatal("second acquire must hit")
	}
	c.Unpin("m@sig")
	if evicted, pinned := c.Evict("m@sig"); evicted || !pinned {
		t.Fatal("entry with one remaining pin must still refuse eviction")
	}
	c.Unpin("m@sig")

	if evicted, pinned := c.Evict("m@sig"); !evicted || pinned {
		t.Fatalf("unpinned entry must evict: evicted=%v pinned=%v", evicted, pinned)
	}
	if c.Contains("m@sig") {
		t.Fatal("evicted entry must be gone")
	}
	if evicted, pinned := c.Evict("m@sig"); evicted || pinned {
		t.Fatal("evicting an absent key must report (false, false)")
	}
	if c.Evictions() != 1 {
		t.Fatalf("exactly one eviction recorded, got %d", c.Evictions())
	}

	// Post-eviction acquire recompiles and the entry is usable again.
	if _, hit, err := c.AcquireOrCompile("m@sig", func() (any, error) { return 43, nil }); hit || err != nil {
		t.Fatalf("post-eviction acquire must recompile: hit=%v err=%v", hit, err)
	}
	c.Unpin("m@sig")
}

// TestCacheAcquirePeek covers the fast path: peek pins only when the
// entry exists.
func TestCacheAcquirePeek(t *testing.T) {
	c := NewCache()
	if _, ok := c.AcquirePeek("missing"); ok {
		t.Fatal("peek of a missing key must not succeed")
	}
	if n := c.Pins("missing"); n != 0 {
		t.Fatalf("failed peek must not pin: %d", n)
	}
	c.Put("k", "engine")
	v, ok := c.AcquirePeek("k")
	if !ok || v != "engine" {
		t.Fatalf("peek: %v %v", v, ok)
	}
	if n := c.Pins("k"); n != 1 {
		t.Fatalf("successful peek must pin: %d", n)
	}
	c.Unpin("k")
	if n := c.Pins("k"); n != 0 {
		t.Fatalf("unpin must drop to zero: %d", n)
	}
}

// TestCachePinRace hammers acquire/unpin/evict from many goroutines: the
// invariant is that Evict never returns evicted=true while any pin is
// outstanding, and the cache never deadlocks.
func TestCachePinRace(t *testing.T) {
	c := NewCache()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, _, err := c.AcquireOrCompile("k", func() (any, error) { return "e", nil })
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				if v != "e" {
					t.Errorf("acquired %v", v)
					return
				}
				c.Unpin("k")
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.Evict("k")
		}
	}()
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestGovernorTryReserve pins down the non-blocking reservation the fleet
// uses for its evict-then-retry loop.
func TestGovernorTryReserve(t *testing.T) {
	g := NewGovernor(100)
	rel1, ok := g.TryReserve(60)
	if !ok {
		t.Fatal("60/100 must fit")
	}
	if _, ok := g.TryReserve(50); ok {
		t.Fatal("60+50 exceeds the budget and must fail without blocking")
	}
	if _, ok := g.TryReserve(1000); ok {
		t.Fatal("over-budget single reservation must fail")
	}
	rel2, ok := g.TryReserve(40)
	if !ok {
		t.Fatal("60+40 fits exactly")
	}
	if st := g.Stats(); st.ReservedBytes != 100 {
		t.Fatalf("reserved: %+v", st)
	}
	rel1()
	rel2()
	if st := g.Stats(); st.ReservedBytes != 0 {
		t.Fatalf("releases must drain the ledger: %+v", st)
	}

	// TryReserve must also refuse to jump a blocked waiter queue: park a
	// blocking Reserve that cannot fit, then TryReserve something small.
	relBig, ok := g.TryReserve(90)
	if !ok {
		t.Fatal("90/100 must fit")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	waiting := make(chan error, 1)
	go func() {
		rel, err := g.Reserve(ctx, 50)
		if err == nil {
			rel()
		}
		waiting <- err
	}()
	// Wait until the reserver is parked in the waiter queue (Waits counts
	// reservations that had to queue).
	deadline := time.Now().Add(2 * time.Second)
	for g.Stats().Waits == 0 {
		if time.Now().After(deadline) {
			t.Fatal("Reserve never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if _, ok := g.TryReserve(5); ok {
		t.Fatal("TryReserve must not starve queued blocking waiters")
	}
	relBig()
	if err := <-waiting; err != nil {
		t.Fatalf("parked Reserve must be granted after release: %v", err)
	}
}

// TestGovernorTryReserveConcurrent checks the ledger never over-commits
// under concurrent TryReserve/release churn.
func TestGovernorTryReserveConcurrent(t *testing.T) {
	const budget = 64
	g := NewGovernor(budget)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			size := int64(8 + 8*(i%3))
			for j := 0; j < 500; j++ {
				if rel, ok := g.TryReserve(size); ok {
					rel()
				}
			}
		}(i)
	}
	wg.Wait()
	st := g.Stats()
	if st.ReservedBytes != 0 {
		t.Fatalf("ledger must drain: %+v", st)
	}
	if st.HighWaterBytes > budget {
		t.Fatalf("high water %d exceeded budget %d", st.HighWaterBytes, budget)
	}
}
