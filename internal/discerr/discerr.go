// Package discerr holds the typed sentinel errors of the public godisc
// surface. It is a leaf package so that internal packages (exec, ral,
// serve) can wrap these sentinels with %w without importing the root
// package; godisc re-exports them as ErrShapeMismatch etc. Servers branch
// on errors.Is(err, discerr.ErrQueueFull) instead of string matching.
package discerr

import "errors"

var (
	// ErrShapeMismatch marks invalid concrete input shapes: wrong arity,
	// a static dim violated, two occurrences of one symbolic dimension
	// bound to different values, or a declared range/divisibility fact
	// broken.
	ErrShapeMismatch = errors.New("shape mismatch")

	// ErrQueueFull marks a request rejected by serving admission control
	// because the bounded queue is at capacity. The request was never
	// executed; callers may retry with backoff.
	ErrQueueFull = errors.New("queue full")

	// ErrCompileFailed marks a compilation (optimization, fusion planning
	// or code generation) failure.
	ErrCompileFailed = errors.New("compile failed")

	// ErrServerClosed marks a request submitted after Server.Close.
	ErrServerClosed = errors.New("server closed")
)
