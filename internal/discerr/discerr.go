// Package discerr holds the typed sentinel errors of the public godisc
// surface. It is a leaf package so that internal packages (exec, ral,
// serve) can wrap these sentinels with %w without importing the root
// package; godisc re-exports them as ErrShapeMismatch etc. Servers branch
// on errors.Is(err, discerr.ErrQueueFull) instead of string matching.
package discerr

import "errors"

var (
	// ErrShapeMismatch marks invalid concrete input shapes: wrong arity,
	// a static dim violated, two occurrences of one symbolic dimension
	// bound to different values, or a declared range/divisibility fact
	// broken.
	ErrShapeMismatch = errors.New("shape mismatch")

	// ErrQueueFull marks a request rejected by serving admission control
	// because the bounded queue is at capacity. The request was never
	// executed; callers may retry with backoff.
	ErrQueueFull = errors.New("queue full")

	// ErrCompileFailed marks a compilation (optimization, fusion planning
	// or code generation) failure.
	ErrCompileFailed = errors.New("compile failed")

	// ErrServerClosed marks a request submitted after Server.Close.
	ErrServerClosed = errors.New("server closed")
)

// Resilience sentinels (see README "Error taxonomy" and DESIGN.md §8):
// the serving layer classifies failures with errors.Is against these to
// decide between retry, interpreter fallback, and propagation.
var (
	// ErrKernelPanic marks a panic recovered during engine execution
	// (a crashing kernel, or an injected one). The engine is suspect;
	// the serving layer records a breaker failure and serves the request
	// through the interpreter fallback instead.
	ErrKernelPanic = errors.New("kernel panic")

	// ErrEngineQuarantined marks a request that found its engine's
	// circuit breaker open: K consecutive failures quarantined the
	// (model, signature) entry, and until the cooldown elapses requests
	// are served by fallback without touching the engine.
	ErrEngineQuarantined = errors.New("engine quarantined")

	// ErrTransient marks an error expected to succeed on retry (an
	// allocation hiccup, an injected transient fault). The serving layer
	// retries these with jittered exponential backoff before giving up.
	ErrTransient = errors.New("transient error")

	// ErrUnsupported marks an input or operation outside the compiled
	// pipeline's support (e.g. an unknown dtype). It degrades the one
	// request instead of panicking the process.
	ErrUnsupported = errors.New("unsupported")
)

// Resource-governance sentinels (see README "Capacity planning" and
// DESIGN.md §11): overload is shed with typed rejections so callers can
// tell "the server protected itself" apart from "the request is broken".
var (
	// ErrMemoryBudget marks a run refused by the RAL memory governor: the
	// engine's peak buffer footprint at the request's concrete shapes
	// would push reservations past the configured byte budget (or can
	// never fit at all). The request did not execute and allocated
	// nothing; callers may retry when load drains.
	ErrMemoryBudget = errors.New("memory budget exceeded")

	// ErrDeadlineInfeasible marks a request rejected at admission because
	// its remaining deadline is provably smaller than the server's moving
	// estimate of queue wait + execution time — cheaper than admitting
	// work that is certain to time out after consuming a slot.
	ErrDeadlineInfeasible = errors.New("deadline infeasible")

	// ErrQuotaExceeded marks a request rejected because its model is at
	// its configured per-model concurrency quota; other models' capacity
	// is unaffected.
	ErrQuotaExceeded = errors.New("model quota exceeded")

	// ErrHungRequest marks an engine run cancelled by the watchdog for
	// exceeding a configured multiple of the signature's historical
	// latency. The serving layer treats it as an engine failure: breaker
	// penalty, then interpreter fallback.
	ErrHungRequest = errors.New("hung request")
)

// Rollout sentinels (see README "Error taxonomy" and DESIGN.md §16): the
// fleet's rollout controller quarantines model versions that regress
// during a canary, and requests addressing them are shed with typed
// rejections.
var (
	// ErrVersionQuarantined marks a request that explicitly addressed a
	// model version the rollout controller has quarantined after a failed
	// canary. The request did not execute; the version may recover via
	// half-open health probes, so callers may retry with backoff.
	ErrVersionQuarantined = errors.New("version quarantined")

	// ErrRolloutAborted marks a request whose canary-routed execution
	// failed and triggered (or raced with) an automatic rollback. The
	// fleet re-serves default-version traffic on the stable version;
	// explicit requests to the aborted canary get this sentinel.
	ErrRolloutAborted = errors.New("rollout aborted")
)

// Sentinel is one named entry of the public error taxonomy.
type Sentinel struct {
	Name string
	Err  error
}

// Sentinels enumerates the complete public error taxonomy, in
// documentation order. Every layer that classifies errors exhaustively —
// the serve taxonomy tests, the fleet HTTP status mapper — ranges over
// this list, so adding a sentinel here fails those suites until each
// consumer handles it explicitly.
func Sentinels() []Sentinel {
	return []Sentinel{
		{"ErrShapeMismatch", ErrShapeMismatch},
		{"ErrQueueFull", ErrQueueFull},
		{"ErrCompileFailed", ErrCompileFailed},
		{"ErrServerClosed", ErrServerClosed},
		{"ErrKernelPanic", ErrKernelPanic},
		{"ErrEngineQuarantined", ErrEngineQuarantined},
		{"ErrTransient", ErrTransient},
		{"ErrUnsupported", ErrUnsupported},
		{"ErrMemoryBudget", ErrMemoryBudget},
		{"ErrDeadlineInfeasible", ErrDeadlineInfeasible},
		{"ErrQuotaExceeded", ErrQuotaExceeded},
		{"ErrHungRequest", ErrHungRequest},
		{"ErrVersionQuarantined", ErrVersionQuarantined},
		{"ErrRolloutAborted", ErrRolloutAborted},
	}
}
