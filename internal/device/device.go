// Package device provides analytic GPU performance models. The paper's
// evaluation hardware (NVIDIA A10 and T4) is substituted by roofline-style
// models: a kernel costs one launch plus the maximum of its memory time
// (bytes moved over effective bandwidth) and compute time (flops over
// effective throughput). All comparisons in the reproduction are relative
// — strategy A vs strategy B on the same model — so what matters is that
// launches, traffic, padding waste and recompile stalls are charged
// faithfully, not the absolute constants.
package device

import (
	"fmt"
	"math"
)

// Model is an analytic GPU.
type Model struct {
	// Name identifies the device in reports ("A10", "T4").
	Name string
	// LaunchOverheadNs is charged once per kernel launch (driver + grid
	// scheduling).
	LaunchOverheadNs float64
	// BandwidthBytesPerNs is peak HBM bandwidth (bytes per nanosecond,
	// i.e. GB/s).
	BandwidthBytesPerNs float64
	// PeakFlopsPerNs is peak FP32 throughput in flops per nanosecond
	// (i.e. GFLOP/s).
	PeakFlopsPerNs float64
	// SharedMemPerBlock is usable shared memory per block in bytes; the
	// fusion planner's stitch budget should not exceed it.
	SharedMemPerBlock int64
	// MatmulSaturationFlops controls how quickly GEMM efficiency ramps to
	// its peak as problems grow (half-saturation point, in flops).
	MatmulSaturationFlops float64
	// MaxMatmulEfficiency is the large-problem GEMM efficiency.
	MaxMatmulEfficiency float64
}

// A10 returns the NVIDIA A10 model (24 GB GDDR6, Ampere).
func A10() *Model {
	return &Model{
		Name:                  "A10",
		LaunchOverheadNs:      4000,
		BandwidthBytesPerNs:   600,   // 600 GB/s
		PeakFlopsPerNs:        31200, // 31.2 TFLOPS FP32
		SharedMemPerBlock:     48 << 10,
		MatmulSaturationFlops: 6e7,
		MaxMatmulEfficiency:   0.62,
	}
}

// T4 returns the NVIDIA T4 model (16 GB GDDR6, Turing).
func T4() *Model {
	return &Model{
		Name:                  "T4",
		LaunchOverheadNs:      4500,
		BandwidthBytesPerNs:   320,  // 320 GB/s
		PeakFlopsPerNs:        8100, // 8.1 TFLOPS FP32
		SharedMemPerBlock:     48 << 10,
		MatmulSaturationFlops: 2e7,
		MaxMatmulEfficiency:   0.58,
	}
}

// ByName returns a model by its name.
func ByName(name string) (*Model, error) {
	switch name {
	case "A10", "a10":
		return A10(), nil
	case "T4", "t4":
		return T4(), nil
	}
	return nil, fmt.Errorf("device: unknown device %q (have A10, T4)", name)
}

// KernelCost describes one kernel invocation for the cost model.
type KernelCost struct {
	// Bytes is global-memory traffic (reads + writes).
	Bytes float64
	// Flops is arithmetic work.
	Flops float64
	// MemEfficiency scales effective bandwidth (0..1]; schedule dependent.
	MemEfficiency float64
	// ComputeEfficiency scales effective flops (0..1]; schedule dependent.
	ComputeEfficiency float64
}

// KernelTimeNs returns the simulated duration of one kernel launch.
func (m *Model) KernelTimeNs(c KernelCost) float64 {
	me := c.MemEfficiency
	if me <= 0 || me > 1 {
		me = 0.8
	}
	ce := c.ComputeEfficiency
	if ce <= 0 || ce > 1 {
		ce = 0.5
	}
	memT := c.Bytes / (m.BandwidthBytesPerNs * me)
	cmpT := c.Flops / (m.PeakFlopsPerNs * ce)
	return m.LaunchOverheadNs + math.Max(memT, cmpT)
}

// MatmulTimeNs returns the simulated duration of a GEMM library call of
// the given logical size; efficiency ramps with problem size, modelling
// GPU underutilization on small/skinny problems.
func (m *Model) MatmulTimeNs(bytes, flops float64) float64 {
	eff := m.MaxMatmulEfficiency * flops / (flops + m.MatmulSaturationFlops)
	if eff < 0.02 {
		eff = 0.02
	}
	memT := bytes / (m.BandwidthBytesPerNs * 0.85)
	cmpT := flops / (m.PeakFlopsPerNs * eff)
	return m.LaunchOverheadNs + math.Max(memT, cmpT)
}
