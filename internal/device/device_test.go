package device

import "testing"

func TestByName(t *testing.T) {
	for _, name := range []string{"A10", "T4", "a10", "t4"} {
		m, err := ByName(name)
		if err != nil || m == nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("H100"); err == nil {
		t.Fatal("unknown device must error")
	}
}

func TestKernelTimeMonotonicInBytes(t *testing.T) {
	m := A10()
	small := m.KernelTimeNs(KernelCost{Bytes: 1 << 10, Flops: 1, MemEfficiency: 0.8, ComputeEfficiency: 0.5})
	big := m.KernelTimeNs(KernelCost{Bytes: 1 << 24, Flops: 1, MemEfficiency: 0.8, ComputeEfficiency: 0.5})
	if big <= small {
		t.Fatalf("time must grow with bytes: %v vs %v", small, big)
	}
}

func TestLaunchOverheadDominatesTinyKernels(t *testing.T) {
	m := A10()
	tiny := m.KernelTimeNs(KernelCost{Bytes: 64, Flops: 16})
	if tiny < m.LaunchOverheadNs || tiny > m.LaunchOverheadNs*1.01 {
		t.Fatalf("tiny kernel should be ~launch overhead, got %v", tiny)
	}
}

func TestFusionWinsOnLaunches(t *testing.T) {
	// Three small elementwise kernels vs one fused: fused must be faster
	// because launches dominate — the core motivation for fusion.
	m := T4()
	c := KernelCost{Bytes: 64 << 10, Flops: 16 << 10, MemEfficiency: 0.8, ComputeEfficiency: 0.5}
	three := 3 * m.KernelTimeNs(c)
	fused := m.KernelTimeNs(KernelCost{Bytes: c.Bytes * 1.4, Flops: c.Flops * 3,
		MemEfficiency: 0.8, ComputeEfficiency: 0.5})
	if fused >= three {
		t.Fatalf("fused %v must beat three launches %v", fused, three)
	}
}

func TestMatmulEfficiencyRamp(t *testing.T) {
	m := A10()
	// Per-flop cost must be lower for large GEMMs than tiny ones.
	tiny := m.MatmulTimeNs(1<<12, 1<<14) / (1 << 14)
	huge := m.MatmulTimeNs(1<<24, 1<<30) / (1 << 30)
	if huge >= tiny {
		t.Fatalf("per-flop cost must fall with size: tiny %v, huge %v", tiny, huge)
	}
}

func TestA10FasterThanT4(t *testing.T) {
	c := KernelCost{Bytes: 1 << 24, Flops: 1 << 24, MemEfficiency: 0.8, ComputeEfficiency: 0.5}
	if A10().KernelTimeNs(c) >= T4().KernelTimeNs(c) {
		t.Fatal("A10 must be faster than T4 on identical work")
	}
}

func TestEfficiencyDefaults(t *testing.T) {
	m := A10()
	// Zero/invalid efficiencies fall back to sane defaults rather than
	// dividing by zero.
	v := m.KernelTimeNs(KernelCost{Bytes: 1 << 20, Flops: 1 << 20})
	if v <= 0 || v != v { // NaN check
		t.Fatalf("bad default time %v", v)
	}
}
