package workload

import (
	"strings"
	"testing"
)

// FuzzTraceSpec fuzzes the trace-file parser (the discbench -trace input
// format). Properties: ParseTrace never panics; accepted traces contain
// only positive points; and Marshal→Parse round-trips to the same trace.
func FuzzTraceSpec(f *testing.F) {
	seeds := []string{
		"# zipf serving trace\n1,12\n4,128\n",
		"1,1\n",
		"  2 , 64  \n\n# late comment\n8,8\n",
		"# only a comment\n",
		"3,4,5\n",
		"-1,4\n",
		"0,0\n",
		"a,b\n",
		"1,999999999999999999999\n",
		"#\n1,2\r\n",
		strings.Repeat("2,3\n", 64),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		tr, err := ParseTrace(src)
		if err != nil {
			return
		}
		if len(tr.Points) == 0 {
			t.Fatal("accepted trace with no points")
		}
		for i, p := range tr.Points {
			if p.Batch < 1 || p.Seq < 1 {
				t.Fatalf("point %d accepted with non-positive dims: %+v", i, p)
			}
		}
		again, err := ParseTrace(MarshalTrace(tr))
		if err != nil {
			t.Fatalf("marshal of accepted trace does not reparse: %v", err)
		}
		if len(again.Points) != len(tr.Points) {
			t.Fatalf("round trip changed point count: %d != %d", len(again.Points), len(tr.Points))
		}
		for i := range tr.Points {
			if again.Points[i] != tr.Points[i] {
				t.Fatalf("round trip changed point %d: %+v != %+v", i, again.Points[i], tr.Points[i])
			}
		}
	})
}
