// Package workload generates the dynamic-shape request traces the
// evaluation replays: sequences of (batch, seq) points drawn from
// distributions that mirror production shape dynamism — fixed (the static
// corner case), uniform, Zipf-skewed (a few hot shapes plus a long tail),
// bimodal (two workload populations) and adversarial churn (every request
// a new shape). The paper's motivation is exactly this diversity; the
// distributions make it a controlled axis.
package workload

import (
	"fmt"
	"sort"

	"godisc/internal/tensor"
)

// Point is one request's shape coordinates.
type Point struct {
	Batch int
	Seq   int
}

// Trace is a replayable request sequence.
type Trace struct {
	Name   string
	Points []Point
}

// DistinctShapes counts unique (batch, seq) pairs.
func (t *Trace) DistinctShapes() int {
	seen := map[Point]bool{}
	for _, p := range t.Points {
		seen[p] = true
	}
	return len(seen)
}

// DistinctSeqs counts unique sequence lengths.
func (t *Trace) DistinctSeqs() int {
	seen := map[int]bool{}
	for _, p := range t.Points {
		seen[p.Seq] = true
	}
	return len(seen)
}

// String summarizes the trace.
func (t *Trace) String() string {
	return fmt.Sprintf("%s: %d requests, %d distinct shapes", t.Name, len(t.Points), t.DistinctShapes())
}

// Spec parameterizes trace generation.
type Spec struct {
	// Requests is the trace length.
	Requests int
	// MaxBatch and MaxSeq bound the axes (inclusive).
	MaxBatch, MaxSeq int
	// Seed drives the deterministic generator.
	Seed uint64
}

// Fixed returns a trace where every request has the same shape — the
// static-shape corner where static compilers shine.
func Fixed(spec Spec, batch, seq int) *Trace {
	tr := &Trace{Name: fmt.Sprintf("fixed(b=%d,s=%d)", batch, seq)}
	for i := 0; i < spec.Requests; i++ {
		tr.Points = append(tr.Points, Point{Batch: batch, Seq: seq})
	}
	return tr
}

// Uniform draws batch and seq independently and uniformly.
func Uniform(spec Spec) *Trace {
	r := tensor.NewRNG(spec.Seed)
	tr := &Trace{Name: "uniform"}
	for i := 0; i < spec.Requests; i++ {
		tr.Points = append(tr.Points, Point{
			Batch: 1 + r.Intn(spec.MaxBatch),
			Seq:   1 + r.Intn(spec.MaxSeq),
		})
	}
	return tr
}

// Zipf draws sequence lengths from a Zipf-like distribution over a pool of
// candidate lengths (hot heads, long tail) — the published shape histogram
// of production inference services. Batch sizes cycle through typical
// serving batches.
func Zipf(spec Spec) *Trace {
	r := tensor.NewRNG(spec.Seed)
	// Candidate lengths: spread over [4, MaxSeq].
	nCand := 32
	if spec.MaxSeq < nCand+4 {
		nCand = spec.MaxSeq / 2
		if nCand < 1 {
			nCand = 1
		}
	}
	cands := make([]int, nCand)
	for i := range cands {
		cands[i] = 4 + (spec.MaxSeq-4)*i/nCand
		if cands[i] < 1 {
			cands[i] = 1
		}
	}
	// Zipf weights 1/rank.
	cum := make([]float64, nCand)
	total := 0.0
	for i := range cands {
		total += 1.0 / float64(i+1)
		cum[i] = total
	}
	batches := serveBatches(spec.MaxBatch)
	tr := &Trace{Name: "zipf"}
	for i := 0; i < spec.Requests; i++ {
		u := float64(r.Float32()) * total
		k := sort.SearchFloat64s(cum, u)
		if k >= nCand {
			k = nCand - 1
		}
		tr.Points = append(tr.Points, Point{
			Batch: batches[r.Intn(len(batches))],
			Seq:   cands[k],
		})
	}
	return tr
}

// Bimodal mixes short interactive requests with long batch requests.
func Bimodal(spec Spec) *Trace {
	r := tensor.NewRNG(spec.Seed)
	tr := &Trace{Name: "bimodal"}
	shortMax := spec.MaxSeq / 8
	if shortMax < 2 {
		shortMax = 2
	}
	for i := 0; i < spec.Requests; i++ {
		p := Point{Batch: 1 + r.Intn(spec.MaxBatch)}
		if r.Float32() < 0.7 {
			p.Seq = 1 + r.Intn(shortMax)
		} else {
			p.Seq = spec.MaxSeq/2 + r.Intn(spec.MaxSeq/2)
		}
		tr.Points = append(tr.Points, p)
	}
	return tr
}

// Churn produces a different shape on every request — the adversarial case
// for any per-shape cache.
func Churn(spec Spec) *Trace {
	tr := &Trace{Name: "churn"}
	for i := 0; i < spec.Requests; i++ {
		tr.Points = append(tr.Points, Point{
			Batch: 1 + i%spec.MaxBatch,
			Seq:   1 + (i*7)%spec.MaxSeq,
		})
	}
	return tr
}

// WithDistinctSeqs builds a trace cycling through exactly n distinct
// sequence lengths (for the shape-diversity sweep, E5).
func WithDistinctSeqs(spec Spec, n int) *Trace {
	if n < 1 {
		n = 1
	}
	tr := &Trace{Name: fmt.Sprintf("distinct(%d)", n)}
	for i := 0; i < spec.Requests; i++ {
		seq := 4 + (i%n)*(spec.MaxSeq-4)/n
		if seq < 1 {
			seq = 1
		}
		tr.Points = append(tr.Points, Point{Batch: 4, Seq: seq})
	}
	return tr
}

// serveBatches returns the typical serving batch sizes up to max.
func serveBatches(max int) []int {
	out := []int{1}
	for b := 2; b <= max; b *= 2 {
		out = append(out, b)
	}
	return out
}
