package workload

import (
	"fmt"
	"sync/atomic"
	"testing"
)

var spec = Spec{Requests: 200, MaxBatch: 8, MaxSeq: 128, Seed: 42}

func TestFixedTraceSingleShape(t *testing.T) {
	tr := Fixed(spec, 4, 64)
	if len(tr.Points) != 200 || tr.DistinctShapes() != 1 {
		t.Fatalf("%s", tr)
	}
}

func TestUniformBounds(t *testing.T) {
	tr := Uniform(spec)
	for _, p := range tr.Points {
		if p.Batch < 1 || p.Batch > spec.MaxBatch || p.Seq < 1 || p.Seq > spec.MaxSeq {
			t.Fatalf("out of bounds point %+v", p)
		}
	}
	if tr.DistinctShapes() < 20 {
		t.Fatalf("uniform trace too concentrated: %d", tr.DistinctShapes())
	}
}

func TestZipfSkew(t *testing.T) {
	tr := Zipf(spec)
	counts := map[int]int{}
	for _, p := range tr.Points {
		counts[p.Seq]++
	}
	// The hottest length must dominate: at least 3x the median frequency.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < len(tr.Points)/8 {
		t.Fatalf("zipf head not hot enough: max=%d of %d", max, len(tr.Points))
	}
	if tr.DistinctSeqs() < 5 {
		t.Fatalf("zipf tail missing: %d distinct", tr.DistinctSeqs())
	}
}

func TestBimodalModes(t *testing.T) {
	tr := Bimodal(spec)
	short, long := 0, 0
	for _, p := range tr.Points {
		if p.Seq <= spec.MaxSeq/8 {
			short++
		}
		if p.Seq >= spec.MaxSeq/2 {
			long++
		}
	}
	if short == 0 || long == 0 {
		t.Fatalf("bimodal must have both modes: short=%d long=%d", short, long)
	}
}

func TestChurnAllDistinctEarly(t *testing.T) {
	tr := Churn(Spec{Requests: 50, MaxBatch: 64, MaxSeq: 512})
	if tr.DistinctShapes() != 50 {
		t.Fatalf("churn distinct=%d, want 50", tr.DistinctShapes())
	}
}

func TestWithDistinctSeqsExact(t *testing.T) {
	for _, n := range []int{1, 4, 16} {
		tr := WithDistinctSeqs(spec, n)
		if got := tr.DistinctSeqs(); got != n {
			t.Fatalf("WithDistinctSeqs(%d) produced %d", n, got)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Zipf(spec)
	b := Zipf(spec)
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatal("traces must be deterministic for a fixed seed")
		}
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	tr := Zipf(Spec{Requests: 50, MaxBatch: 8, MaxSeq: 64, Seed: 5})
	src := MarshalTrace(tr)
	got, err := ParseTrace(src)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || len(got.Points) != len(tr.Points) {
		t.Fatalf("round trip changed trace: %s vs %s", got, tr)
	}
	for i := range tr.Points {
		if got.Points[i] != tr.Points[i] {
			t.Fatalf("point %d changed", i)
		}
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := []string{
		"",
		"1\n",
		"a,b\n",
		"0,5\n",
		"3,-1\n",
	}
	for _, src := range cases {
		if _, err := ParseTrace(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestParseTraceCommentsAndBlanks(t *testing.T) {
	tr, err := ParseTrace("# prod-trace\n\n1,12\n# mid comment\n4, 128\n")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "prod-trace" || len(tr.Points) != 2 || tr.Points[1] != (Point{4, 128}) {
		t.Fatalf("parsed %s %+v", tr.Name, tr.Points)
	}
}

func TestReplayCoversEveryPointConcurrently(t *testing.T) {
	tr := Uniform(Spec{Requests: 100, MaxBatch: 8, MaxSeq: 64, Seed: 3})
	var served int64
	seen := make([]int32, len(tr.Points))
	errs := Replay(tr, 8, func(i int, p Point) error {
		atomic.AddInt64(&served, 1)
		atomic.AddInt32(&seen[i], 1)
		if p != tr.Points[i] {
			t.Errorf("request %d got point %v, want %v", i, p, tr.Points[i])
		}
		if i%10 == 9 {
			return fmt.Errorf("synthetic failure %d", i)
		}
		return nil
	})
	if served != 100 {
		t.Fatalf("served %d of 100", served)
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("point %d served %d times", i, n)
		}
	}
	nErr := 0
	for i, err := range errs {
		if err != nil {
			nErr++
			if i%10 != 9 {
				t.Fatalf("unexpected failure index %d", i)
			}
		}
	}
	if nErr != 10 {
		t.Fatalf("%d failures recorded, want 10", nErr)
	}
}

func TestByName(t *testing.T) {
	spec := Spec{Requests: 20, MaxBatch: 4, MaxSeq: 32, Seed: 1}
	for _, name := range Names() {
		tr, err := ByName(name, spec)
		if err != nil {
			t.Fatal(err)
		}
		if len(tr.Points) != 20 {
			t.Fatalf("%s: %d points", name, len(tr.Points))
		}
	}
	if _, err := ByName("nope", spec); err == nil {
		t.Fatal("unknown distribution must error")
	}
}
