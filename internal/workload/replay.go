package workload

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Replay drives every point of a trace through fn from `workers` concurrent
// goroutines, preserving per-request outcomes: the returned slice aligns
// with tr.Points (nil = success). Requests are claimed in trace order, so
// replay is deterministic in coverage (though not in interleaving) — the
// shape a serving frontend sees under concurrent load.
func Replay(tr *Trace, workers int, fn func(i int, p Point) error) []error {
	if workers < 1 {
		workers = 1
	}
	errs := make([]error, len(tr.Points))
	next := int64(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(tr.Points) {
					return
				}
				errs[i] = fn(i, tr.Points[i])
			}
		}()
	}
	wg.Wait()
	return errs
}

// Names lists the distribution names ByName accepts.
func Names() []string { return []string{"fixed", "uniform", "zipf", "bimodal", "churn"} }

// ByName builds a trace from a distribution name — the flag surface CLIs
// expose. Fixed pins every request at (MaxBatch, MaxSeq).
func ByName(name string, spec Spec) (*Trace, error) {
	switch name {
	case "fixed":
		return Fixed(spec, spec.MaxBatch, spec.MaxSeq), nil
	case "uniform":
		return Uniform(spec), nil
	case "zipf":
		return Zipf(spec), nil
	case "bimodal":
		return Bimodal(spec), nil
	case "churn":
		return Churn(spec), nil
	}
	return nil, fmt.Errorf("workload: unknown distribution %q (have %v)", name, Names())
}
