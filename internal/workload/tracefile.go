package workload

import (
	"fmt"
	"strconv"
	"strings"
)

// Trace files let experiments replay recorded production shape traces. The
// format is one request per line, "batch,seq", with optional blank lines
// and '#' comments:
//
//	# my serving trace
//	1,12
//	4,128

// MarshalTrace renders a trace in the file format.
func MarshalTrace(t *Trace) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s\n", t.Name)
	for _, p := range t.Points {
		fmt.Fprintf(&sb, "%d,%d\n", p.Batch, p.Seq)
	}
	return sb.String()
}

// ParseTrace reads the file format. The name is taken from the first
// comment line, if any.
func ParseTrace(src string) (*Trace, error) {
	tr := &Trace{Name: "trace"}
	named := false
	for i, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !named {
				tr.Name = strings.TrimSpace(strings.TrimPrefix(line, "#"))
				named = true
			}
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("workload: line %d: want \"batch,seq\", got %q", i+1, line)
		}
		b, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
		s, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err1 != nil || err2 != nil || b < 1 || s < 1 {
			return nil, fmt.Errorf("workload: line %d: bad point %q", i+1, line)
		}
		tr.Points = append(tr.Points, Point{Batch: b, Seq: s})
	}
	if len(tr.Points) == 0 {
		return nil, fmt.Errorf("workload: trace has no points")
	}
	return tr, nil
}
