package models

import (
	"godisc/internal/graph"
	"godisc/internal/symshape"
	"godisc/internal/tensor"
)

// Suite-wide scaled-down dimensions. The operator mix and dynamism match
// the full-size models; widths are reduced so the interpreted kernel
// substrate evaluates quickly.
const (
	bertVocab  = 128
	bertHidden = 32
	bertHeads  = 2
	bertFF     = 64
	bertLayers = 2
	bertMaxSeq = 128

	gptHidden   = 32
	gptHeads    = 2
	gptMaxCache = 256

	s2sHidden = 32
	s2sHeads  = 2
	s2sMaxSeq = 128

	dlrmDense  = 16
	dlrmTables = 3
	dlrmVocab  = 64
	dlrmEmbDim = 8

	mlpWidth  = 64
	mlpHidden = 128
	mlpLayers = 5

	cnnVocab  = 128
	cnnEmbed  = 16
	cnnFilter = 24
	cnnMaxSeq = 256
)

// BERT is a scaled-down BERT encoder: token + position embeddings followed
// by transformer encoder layers. Dynamic batch and sequence length.
func BERT() *Model {
	build := func() *graph.Graph {
		g := graph.New("bert")
		r := weights(101)
		b := g.Ctx.NewDim("B")
		s := g.Ctx.NewDim("S")
		g.Ctx.DeclareRange(b, 1, 64)
		g.Ctx.DeclareRange(s, 1, bertMaxSeq)
		ids := g.Parameter("input_ids", tensor.I32, symshape.Shape{b, s})
		pos := g.Parameter("position_ids", tensor.I32, symshape.Shape{b, s})
		tokTable := g.Constant(tensor.RandN(r, 0.1, bertVocab, bertHidden))
		posTable := g.Constant(tensor.RandN(r, 0.1, bertMaxSeq, bertHidden))
		x := g.Add(g.Gather(tokTable, ids), g.Gather(posTable, pos))
		x = layerNorm(g, r, x, bertHidden)
		for i := 0; i < bertLayers; i++ {
			x = encoderLayer(g, r, x, bertHidden, bertHeads, bertFF)
		}
		g.SetOutputs(x)
		return g
	}
	return &Model{
		Name:        "bert",
		Description: "BERT-style transformer encoder (token+pos embedding, MHA, FFN, layernorm)",
		Dynamism:    "batch,seq",
		MaxSeq:      bertMaxSeq,
		Build:       build,
		GenInputs: func(r *tensor.RNG, batch, seq int) []*tensor.Tensor {
			ids := tensor.RandIndices(r, bertVocab, batch, seq)
			pos := tensor.New(tensor.I32, batch, seq)
			for i := 0; i < batch; i++ {
				for j := 0; j < seq; j++ {
					pos.I32()[i*seq+j] = int32(j)
				}
			}
			return []*tensor.Tensor{ids, pos}
		},
	}
}

// GPT2Decode is one autoregressive decode step with a growing KV cache:
// a single new token attends over `seq` cached positions plus itself. The
// cache length is the dynamic axis — the canonical dynamic-shape serving
// workload.
func GPT2Decode() *Model {
	const h, nh = gptHidden, gptHeads
	const hd = h / nh
	build := func() *graph.Graph {
		g := graph.New("gpt2")
		r := weights(202)
		b := g.Ctx.NewDim("B")
		s := g.Ctx.NewDim("S") // cached positions
		g.Ctx.DeclareRange(b, 1, 64)
		g.Ctx.DeclareRange(s, 1, gptMaxCache)
		one := g.Ctx.StaticDim(1)
		x := g.Parameter("x", tensor.F32, symshape.Shape{b, one, g.Ctx.StaticDim(h)})
		pastK := g.Parameter("past_k", tensor.F32,
			symshape.Shape{b, g.Ctx.StaticDim(nh), s, g.Ctx.StaticDim(hd)})
		pastV := g.Parameter("past_v", tensor.F32,
			symshape.Shape{b, g.Ctx.StaticDim(nh), s, g.Ctx.StaticDim(hd)})

		xn := layerNorm(g, r, x, h)
		q := attentionHeads(g, linear(g, r, xn, h, h), hd) // [B,nh,1,hd]
		k := attentionHeads(g, linear(g, r, xn, h, h), hd)
		v := attentionHeads(g, linear(g, r, xn, h, h), hd)
		fullK := g.Concat(2, pastK, k) // [B,nh,S+1,hd]
		fullV := g.Concat(2, pastV, v)
		scale := g.ConstScalar(0.25) // 1/sqrt(hd=16)
		scores := g.Mul(g.MatMul(q, g.Transpose(fullK, 0, 1, 3, 2)), scale)
		probs := g.Softmax(scores)
		ctx := mergeHeads(g, g.MatMul(probs, fullV))
		att := g.Add(x, linear(g, r, ctx, h, h))
		out := g.Add(att, ffn(g, r, layerNorm(g, r, att, h), h, 4*h))
		// Return the new hidden state and the updated cache.
		g.SetOutputs(out, fullK, fullV)
		return g
	}
	return &Model{
		Name:        "gpt2",
		Description: "GPT-2-style decode step with growing KV cache (concat over dynamic cache axis)",
		Dynamism:    "batch,cache",
		MaxSeq:      gptMaxCache,
		Build:       build,
		GenInputs: func(r *tensor.RNG, batch, seq int) []*tensor.Tensor {
			return []*tensor.Tensor{
				tensor.RandN(r, 0.5, batch, 1, h),
				tensor.RandN(r, 0.5, batch, nh, seq, hd),
				tensor.RandN(r, 0.5, batch, nh, seq, hd),
			}
		},
	}
}

// Seq2Seq is a T5-style decoder layer step: self-attention over the
// decoder prefix plus cross-attention over the encoder output; both
// sequence axes are dynamic and independent.
func Seq2Seq() *Model {
	const h, nh = s2sHidden, s2sHeads
	const hd = h / nh
	build := func() *graph.Graph {
		g := graph.New("seq2seq")
		r := weights(303)
		b := g.Ctx.NewDim("B")
		sd := g.Ctx.NewDim("Sdec")
		se := g.Ctx.NewDim("Senc")
		g.Ctx.DeclareRange(b, 1, 64)
		g.Ctx.DeclareRange(sd, 1, s2sMaxSeq)
		g.Ctx.DeclareRange(se, 1, s2sMaxSeq)
		hsym := g.Ctx.StaticDim(h)
		dec := g.Parameter("dec", tensor.F32, symshape.Shape{b, sd, hsym})
		enc := g.Parameter("enc", tensor.F32, symshape.Shape{b, se, hsym})

		// Decoder self-attention.
		x := layerNorm(g, r, g.Add(dec, selfAttention(g, r, dec, h, nh)), h)
		// Cross-attention: queries from the decoder, keys/values from the
		// encoder output.
		q := attentionHeads(g, linear(g, r, x, h, h), hd)
		k := attentionHeads(g, linear(g, r, enc, h, h), hd)
		v := attentionHeads(g, linear(g, r, enc, h, h), hd)
		scale := g.ConstScalar(0.25)
		probs := g.Softmax(g.Mul(g.MatMul(q, g.Transpose(k, 0, 1, 3, 2)), scale))
		cross := linear(g, r, mergeHeads(g, g.MatMul(probs, v)), h, h)
		x = layerNorm(g, r, g.Add(x, cross), h)
		x = layerNorm(g, r, g.Add(x, ffn(g, r, x, h, 4*h)), h)
		g.SetOutputs(x)
		return g
	}
	return &Model{
		Name:        "seq2seq",
		Description: "T5-style decoder layer: self-attention + cross-attention, two independent dynamic sequence axes",
		Dynamism:    "batch,seq_dec,seq_enc",
		MaxSeq:      s2sMaxSeq,
		Build:       build,
		GenInputs: func(r *tensor.RNG, batch, seq int) []*tensor.Tensor {
			encLen := seq + seq/2 + 1
			if encLen > s2sMaxSeq {
				encLen = s2sMaxSeq
			}
			return []*tensor.Tensor{
				tensor.RandN(r, 0.5, batch, seq, h),
				tensor.RandN(r, 0.5, batch, encLen, h),
			}
		},
	}
}

// DLRM is a recommendation model: categorical embeddings gathered per
// request, concatenated with a dense-feature projection, fed to a top MLP.
// Dynamic batch only — the shape dynamism of online serving.
func DLRM() *Model {
	build := func() *graph.Graph {
		g := graph.New("dlrm")
		r := weights(404)
		b := g.Ctx.NewDim("B")
		g.Ctx.DeclareRange(b, 1, 512)
		dense := g.Parameter("dense", tensor.F32, symshape.Shape{b, g.Ctx.StaticDim(dlrmDense)})
		var parts []*graph.Node
		bottom := g.Relu(linear(g, r, dense, dlrmDense, dlrmEmbDim))
		parts = append(parts, bottom)
		for t := 0; t < dlrmTables; t++ {
			ids := g.Parameter("ids", tensor.I32, symshape.Shape{b})
			table := g.Constant(tensor.RandN(r, 0.1, dlrmVocab, dlrmEmbDim))
			parts = append(parts, g.Gather(table, ids))
		}
		x := g.Concat(1, parts...) // [B, (1+tables)*embDim]
		width := (1 + dlrmTables) * dlrmEmbDim
		x = g.Relu(linear(g, r, x, width, 32))
		x = g.Relu(linear(g, r, x, 32, 16))
		g.SetOutputs(g.Sigmoid(linear(g, r, x, 16, 1)))
		return g
	}
	return &Model{
		Name:        "dlrm",
		Description: "DLRM-style recommender: embedding gathers + dense projection + top MLP",
		Dynamism:    "batch",
		MaxSeq:      1,
		Build:       build,
		GenInputs: func(r *tensor.RNG, batch, seq int) []*tensor.Tensor {
			ins := []*tensor.Tensor{tensor.RandN(r, 0.5, batch, dlrmDense)}
			for t := 0; t < dlrmTables; t++ {
				ins = append(ins, tensor.RandIndices(r, dlrmVocab, batch))
			}
			return ins
		},
	}
}

// MLP is a deep fully-connected network with dynamic batch — the simplest
// possible dynamic workload, dominated by library calls and fused
// activations.
func MLP() *Model {
	build := func() *graph.Graph {
		g := graph.New("mlp")
		r := weights(505)
		b := g.Ctx.NewDim("B")
		g.Ctx.DeclareRange(b, 1, 1024)
		x := g.Parameter("x", tensor.F32, symshape.Shape{b, g.Ctx.StaticDim(mlpWidth)})
		h := g.Relu(linear(g, r, x, mlpWidth, mlpHidden))
		for i := 1; i < mlpLayers; i++ {
			h = g.Relu(linear(g, r, h, mlpHidden, mlpHidden))
		}
		g.SetOutputs(linear(g, r, h, mlpHidden, 8))
		return g
	}
	return &Model{
		Name:        "mlp",
		Description: "Deep MLP with ReLU activations, dynamic batch",
		Dynamism:    "batch",
		MaxSeq:      1,
		Build:       build,
		GenInputs: func(r *tensor.RNG, batch, seq int) []*tensor.Tensor {
			return []*tensor.Tensor{tensor.RandN(r, 0.5, batch, mlpWidth)}
		},
	}
}

// TextCNN is a convolutional text classifier (CRNN-family workload in the
// paper's suite): embedding lookup, three parallel same-padded 1-D
// convolutions with different kernel widths, global max pooling over the
// dynamic sequence axis, and a dense classifier head. It exercises
// library convolutions, pad kernels, affine/sum shape arithmetic and the
// general (non-last-axis) reduction lowering.
func TextCNN() *Model {
	build := func() *graph.Graph {
		g := graph.New("textcnn")
		r := weights(606)
		b := g.Ctx.NewDim("B")
		s := g.Ctx.NewDim("S")
		g.Ctx.DeclareRange(b, 1, 64)
		g.Ctx.DeclareRange(s, 8, cnnMaxSeq)
		ids := g.Parameter("input_ids", tensor.I32, symshape.Shape{b, s})
		table := g.Constant(tensor.RandN(r, 0.1, cnnVocab, cnnEmbed))
		x := g.Gather(table, ids) // [B, S, E]
		var pooled []*graph.Node
		for _, k := range []int{3, 5, 7} {
			w := g.Constant(tensor.RandN(r, 0.15, k, cnnEmbed, cnnFilter))
			conv := g.Relu(g.SameConv1D(x, w)) // [B, S, F]
			pooled = append(pooled, g.Max(conv, []int{1}, false))
		}
		feat := g.Concat(1, pooled...) // [B, 3F]
		h := g.Relu(linear(g, r, feat, 3*cnnFilter, 32))
		g.SetOutputs(g.Sigmoid(linear(g, r, h, 32, 4)))
		return g
	}
	return &Model{
		Name:        "textcnn",
		Description: "TextCNN classifier: embedding, 3 parallel same-pad conv1d + global max pool, dense head",
		Dynamism:    "batch,seq",
		MaxSeq:      cnnMaxSeq,
		Build:       build,
		GenInputs: func(r *tensor.RNG, batch, seq int) []*tensor.Tensor {
			if seq < 8 {
				seq = 8
			}
			return []*tensor.Tensor{tensor.RandIndices(r, cnnVocab, batch, seq)}
		},
	}
}

// ASR is a conformer-lite speech model step: two same-padded convolutions
// over acoustic features followed by a self-attention block and a
// per-frame classifier — the paper's ASR workload family, mixing library
// convolutions with stitched attention normalization over a dynamic frame
// axis.
func ASR() *Model {
	const h = 32
	build := func() *graph.Graph {
		g := graph.New("asr")
		r := weights(707)
		b := g.Ctx.NewDim("B")
		s := g.Ctx.NewDim("T") // acoustic frames
		g.Ctx.DeclareRange(b, 1, 32)
		g.Ctx.DeclareRange(s, 8, 256)
		feats := g.Parameter("features", tensor.F32, symshape.Shape{b, s, g.Ctx.StaticDim(h)})
		x := feats
		for i := 0; i < 2; i++ {
			w := g.Constant(tensor.RandN(r, 0.12, 3, h, h))
			x = g.Relu(g.SameConv1D(x, w))
		}
		x = layerNorm(g, r, g.Add(x, feats), h)
		x = encoderLayer(g, r, x, h, 2, 2*h)
		g.SetOutputs(g.Softmax(linear(g, r, x, h, 16))) // per-frame token posteriors
		return g
	}
	return &Model{
		Name:        "asr",
		Description: "Conformer-lite ASR step: conv frontend + attention block + per-frame softmax head",
		Dynamism:    "batch,frames",
		MaxSeq:      256,
		Build:       build,
		GenInputs: func(r *tensor.RNG, batch, seq int) []*tensor.Tensor {
			if seq < 8 {
				seq = 8
			}
			return []*tensor.Tensor{tensor.RandN(r, 0.5, batch, seq, h)}
		},
	}
}
