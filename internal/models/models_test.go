package models

import (
	"testing"

	"godisc/internal/baselines"
	"godisc/internal/device"
	"godisc/internal/graph"
	"godisc/internal/tensor"
)

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	if len(reg) != 7 {
		t.Fatalf("registry has %d models, want 7", len(reg))
	}
	for _, m := range reg {
		if m.Name == "" || m.Build == nil || m.GenInputs == nil {
			t.Fatalf("model %+v incomplete", m)
		}
		if _, err := ByName(m.Name); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestBuildersVerifyAndAreDeterministic(t *testing.T) {
	for _, m := range Registry() {
		g1 := m.Build()
		if err := g1.Verify(); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		// Identical weights across builds: evaluating two fresh builds on
		// the same input must agree exactly.
		r1 := tensor.NewRNG(1)
		r2 := tensor.NewRNG(1)
		in1 := m.GenInputs(r1, 2, 5)
		in2 := m.GenInputs(r2, 2, 5)
		o1, err := graph.Evaluate(g1, in1)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		o2, err := graph.Evaluate(m.Build(), in2)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		for i := range o1 {
			if err := tensor.AllClose(o1[i], o2[i], 0, 0); err != nil {
				t.Fatalf("%s output %d not deterministic: %v", m.Name, i, err)
			}
		}
	}
}

func TestModelsEvaluateAcrossShapes(t *testing.T) {
	shapePoints := [][2]int{{1, 3}, {2, 8}, {4, 17}}
	for _, m := range Registry() {
		g := m.Build()
		r := tensor.NewRNG(7)
		for _, bs := range shapePoints {
			ins := m.GenInputs(r, bs[0], bs[1])
			outs, err := graph.Evaluate(g, ins)
			if err != nil {
				t.Fatalf("%s at %v: %v", m.Name, bs, err)
			}
			for i, o := range outs {
				for j := 0; j < o.Numel(); j++ {
					v := o.At(j)
					if v != v { // NaN
						t.Fatalf("%s at %v: output %d has NaN", m.Name, bs, i)
					}
				}
			}
		}
	}
}

func TestModelsCompileAndMatchReference(t *testing.T) {
	dev := device.A10()
	for _, m := range Registry() {
		disc, err := baselines.NewCompiled(m.Build(), dev, baselines.BladeDISCParams())
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		ref := m.Build()
		r := tensor.NewRNG(9)
		for _, bs := range [][2]int{{1, 4}, {3, 11}} {
			ins := m.GenInputs(r, bs[0], bs[1])
			got, prof, err := disc.Invoke(ins)
			if err != nil {
				t.Fatalf("%s at %v: %v", m.Name, bs, err)
			}
			want, err := graph.Evaluate(ref, ins)
			if err != nil {
				t.Fatalf("%s: %v", m.Name, err)
			}
			for i := range want {
				if err := tensor.AllClose(got[i], want[i], 2e-4, 1e-4); err != nil {
					t.Fatalf("%s at %v output %d: %v", m.Name, bs, i, err)
				}
			}
			if prof.Launches == 0 {
				t.Fatalf("%s: no launches recorded", m.Name)
			}
		}
	}
}

func TestBertFusionCollapsesKernels(t *testing.T) {
	dev := device.A10()
	m := BERT()
	disc, err := baselines.NewCompiled(m.Build(), dev, baselines.BladeDISCParams())
	if err != nil {
		t.Fatal(err)
	}
	eager, err := baselines.NewInterpreter(m.Build(), dev, baselines.PyTorchParams())
	if err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(11)
	ins := m.GenInputs(r, 2, 16)
	_, dp, err := disc.Invoke(ins)
	if err != nil {
		t.Fatal(err)
	}
	_, ep, err := eager.Invoke(ins)
	if err != nil {
		t.Fatal(err)
	}
	if dp.Launches >= ep.Launches {
		t.Fatalf("BladeDISC launches %d must undercut eager %d", dp.Launches, ep.Launches)
	}
	t.Logf("bert kernels: disc=%d eager=%d", dp.Launches, ep.Launches)
}

func TestModelsSerializationRoundTrip(t *testing.T) {
	// Every zoo model must survive text serialization: the parsed graph
	// evaluates identically on dynamic inputs.
	for _, m := range Registry() {
		g := m.Build()
		src := graph.WriteText(g)
		g2, err := graph.ParseText(src)
		if err != nil {
			t.Fatalf("%s: parse: %v", m.Name, err)
		}
		r := tensor.NewRNG(13)
		ins := m.GenInputs(r, 2, 9)
		want, err := graph.Evaluate(g, ins)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		got, err := graph.Evaluate(g2, ins)
		if err != nil {
			t.Fatalf("%s: parsed eval: %v", m.Name, err)
		}
		for i := range want {
			if err := tensor.AllClose(got[i], want[i], 0, 0); err != nil {
				t.Fatalf("%s output %d: %v", m.Name, i, err)
			}
		}
	}
}

func TestModelsSerializedCompileAndRun(t *testing.T) {
	// A round-tripped model must also compile and execute correctly —
	// derived dims (sums for concat/pad, affine conv extents) must
	// survive with their runtime evaluability intact.
	for _, name := range []string{"gpt2", "textcnn"} {
		m, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g2, err := graph.ParseText(graph.WriteText(m.Build()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		disc, err := baselines.NewCompiled(g2, device.A10(), baselines.BladeDISCParams())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		r := tensor.NewRNG(17)
		ins := m.GenInputs(r, 2, 10)
		got, _, err := disc.Invoke(ins)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, err := graph.Evaluate(m.Build(), ins)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if err := tensor.AllClose(got[i], want[i], 2e-4, 1e-4); err != nil {
				t.Fatalf("%s output %d: %v", name, i, err)
			}
		}
	}
}
