// Package models builds the evaluation model zoo on the graph IR. The
// suite mirrors the paper's workload mix — transformer encoders (BERT),
// autoregressive decode steps (GPT-2 with a growing KV cache),
// encoder-decoder cross attention (T5-style), a recommendation model
// (DLRM-style) and a plain deep MLP — each with the dynamism axes that
// motivate dynamic-shape compilation (batch size, sequence length, cache
// length). Widths are scaled down so the interpreted kernel substrate stays
// fast; the operator mix and shape relationships are the point.
package models

import (
	"fmt"
	"math"

	"godisc/internal/graph"
	"godisc/internal/tensor"
)

// Model describes one workload.
type Model struct {
	// Name is the registry key ("bert", "gpt2", ...).
	Name string
	// Description is a one-line summary for reports.
	Description string
	// Dynamism names the dynamic axes ("batch,seq").
	Dynamism string
	// MaxSeq bounds the sequence axis (declared as a range fact).
	MaxSeq int
	// Build returns a fresh graph (same weights every call).
	Build func() *graph.Graph
	// GenInputs produces inputs for a (batch, seq) point.
	GenInputs func(r *tensor.RNG, batch, seq int) []*tensor.Tensor
}

// Registry returns the model suite in canonical order.
func Registry() []*Model {
	return []*Model{
		BERT(), GPT2Decode(), Seq2Seq(), TextCNN(), ASR(), DLRM(), MLP(),
	}
}

// ByName returns a model from the registry.
func ByName(name string) (*Model, error) {
	for _, m := range Registry() {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("models: unknown model %q", name)
}

// weights returns a deterministic generator for a model so every Build()
// call (and every strategy) sees identical parameters.
func weights(seed uint64) *tensor.RNG { return tensor.NewRNG(seed) }

// linear applies x·W + b with W [in,out] drawn from r.
func linear(g *graph.Graph, r *tensor.RNG, x *graph.Node, in, out int) *graph.Node {
	w := g.Constant(tensor.RandN(r, 0.08, in, out))
	b := g.Constant(tensor.RandN(r, 0.02, out))
	return g.Add(g.MatMul(x, w), b)
}

// layerNorm applies a learned layer norm over the last axis.
func layerNorm(g *graph.Graph, r *tensor.RNG, x *graph.Node, h int) *graph.Node {
	gamma := g.Constant(tensor.RandUniform(r, 0.9, 1.1, h))
	beta := g.Constant(tensor.RandN(r, 0.02, h))
	return g.LayerNorm(x, gamma, beta, 1e-5)
}

// attentionHeads reshapes [B,S,H] -> [B,nh,S,hd].
func attentionHeads(g *graph.Graph, x *graph.Node, hd int64) *graph.Node {
	split := g.SplitDim(x, 2, hd) // [B,S,nh,hd]
	return g.Transpose(split, 0, 2, 1, 3)
}

// mergeHeads reshapes [B,nh,S,hd] -> [B,S,H].
func mergeHeads(g *graph.Graph, x *graph.Node) *graph.Node {
	t := g.Transpose(x, 0, 2, 1, 3) // [B,S,nh,hd]
	return g.MergeDims(t, 2, 4)
}

// selfAttention is one multi-head self-attention block over [B,S,H].
func selfAttention(g *graph.Graph, r *tensor.RNG, x *graph.Node, h, nh int) *graph.Node {
	hd := int64(h / nh)
	q := attentionHeads(g, linear(g, r, x, h, h), hd)
	k := attentionHeads(g, linear(g, r, x, h, h), hd)
	v := attentionHeads(g, linear(g, r, x, h, h), hd)
	scale := g.ConstScalar(float32(1.0 / math.Sqrt(float64(hd))))
	scores := g.Mul(g.MatMul(q, g.Transpose(k, 0, 1, 3, 2)), scale)
	probs := g.Softmax(scores)
	ctx := mergeHeads(g, g.MatMul(probs, v))
	return linear(g, r, ctx, h, h)
}

// ffn is the position-wise feed-forward block.
func ffn(g *graph.Graph, r *tensor.RNG, x *graph.Node, h, inner int) *graph.Node {
	return linear(g, r, g.Gelu(linear(g, r, x, h, inner)), inner, h)
}

// encoderLayer is a post-norm transformer encoder layer.
func encoderLayer(g *graph.Graph, r *tensor.RNG, x *graph.Node, h, nh, inner int) *graph.Node {
	att := layerNorm(g, r, g.Add(x, selfAttention(g, r, x, h, nh)), h)
	return layerNorm(g, r, g.Add(att, ffn(g, r, att, h, inner)), h)
}
