package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"godisc/internal/faultinject"
	"godisc/internal/graph"
	"godisc/internal/randgraph"
	"godisc/internal/tensor"
)

// TestBatchDifferentialRandGraph is the batching correctness suite: over
// random dynamic-shape models, randomized batch compositions and worker
// counts, every batched response must be BIT-identical to the same request
// served solo by an identical pipeline. The symbolic cache key guarantees
// batch-1 and batch-N runs execute the same compiled engine, and the
// parallel partitioner is bit-deterministic, so any divergence here is a
// real row-dependence the batchability analysis failed to reject.
func TestBatchDifferentialRandGraph(t *testing.T) {
	seeds := []uint64{1, 2, 5, 11}
	workers := []int{1, 2, 4}
	for si, seed := range seeds {
		seed := seed
		w := workers[si%len(workers)]
		t.Run(fmt.Sprintf("seed%d_w%d", seed, w), func(t *testing.T) {
			t.Parallel()
			build := func() *graph.Graph { return randgraph.Build(seed, 6, 8) }
			if info := analyzeBatchable(build()); !info.ok {
				t.Fatalf("randgraph seed %d rejected by analysis: %s", seed, info.reason)
			}

			batched := New(Config{MaxConcurrent: 8, Workers: w,
				MaxBatchSize: 32, MaxLinger: 100 * time.Millisecond}, realCompile(nil))
			defer batched.Close()
			solo := New(Config{MaxConcurrent: 8, Workers: w}, realCompile(nil))
			defer solo.Close()
			name := fmt.Sprintf("fuzz%d", seed)
			if err := batched.Register(name, build); err != nil {
				t.Fatal(err)
			}
			if err := solo.Register(name, build); err != nil {
				t.Fatal(err)
			}

			r := tensor.NewRNG(seed*77 + 13)
			for trial := 0; trial < 3; trial++ {
				// One concrete sequence length per trial: requests agree on
				// every non-batch dimension and are eligible to coalesce.
				s := 1 + r.Intn(6)
				n := 3 + r.Intn(4)
				reqs := make([][]*tensor.Tensor, n)
				for i := range reqs {
					reqs[i] = randgraph.Inputs(r, 1+r.Intn(4), s, 8)
				}

				var wg sync.WaitGroup
				resps := make([]*Response, n)
				errs := make([]error, n)
				for i := 0; i < n; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						resps[i], errs[i] = batched.Infer(context.Background(),
							&Request{Model: name, Inputs: reqs[i]})
					}(i)
				}
				wg.Wait()

				for i := 0; i < n; i++ {
					if errs[i] != nil {
						t.Fatalf("trial %d request %d: %v", trial, i, errs[i])
					}
					want, err := solo.Infer(context.Background(),
						&Request{Model: name, Inputs: reqs[i]})
					if err != nil {
						t.Fatalf("trial %d solo reference %d: %v", trial, i, err)
					}
					for oi := range want.Outputs {
						bitsEqual(t, resps[i].Outputs[oi], want.Outputs[oi],
							fmt.Sprintf("trial %d request %d output %d (batch=%d)",
								trial, i, oi, resps[i].BatchSize))
					}
				}
			}
			// With a 100ms window and barrages of concurrent requests, at
			// least some coalescing must have happened — a batcher that
			// never batches would pass the identity check vacuously.
			if st := batched.Stats(); st.BatchedRequests == 0 {
				t.Fatal("no request was ever batched across all trials")
			}
		})
	}
}

// TestBatchDifferentialUnderFaults: batching composed with fault
// injection. Transient alloc faults are retried (on the solo path, after
// the batch hands members back) and kernel faults recover through the
// interpreter fallback — every request still succeeds, and every response
// that came from a compiled engine is bit-identical to the clean solo run.
func TestBatchDifferentialUnderFaults(t *testing.T) {
	inj := faultinject.New(31).Arm(faultinject.SiteAlloc, faultinject.ModeTransient, 0.15)
	batched := New(Config{MaxConcurrent: 8, MaxBatchSize: 16,
		MaxLinger: 60 * time.Millisecond}, faultyCompile(inj))
	defer batched.Close()
	solo := New(Config{MaxConcurrent: 8}, realCompile(nil))
	defer solo.Close()
	build := func() *graph.Graph { return randgraph.Build(3, 6, 8) }
	if err := batched.Register("fuzz3", build); err != nil {
		t.Fatal(err)
	}
	if err := solo.Register("fuzz3", build); err != nil {
		t.Fatal(err)
	}

	ref := build()
	r := tensor.NewRNG(99)
	const rounds, n = 4, 5
	for round := 0; round < rounds; round++ {
		s := 1 + r.Intn(5)
		reqs := make([][]*tensor.Tensor, n)
		for i := range reqs {
			reqs[i] = randgraph.Inputs(r, 1+r.Intn(3), s, 8)
		}
		var wg sync.WaitGroup
		resps := make([]*Response, n)
		errs := make([]error, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resps[i], errs[i] = batched.Infer(context.Background(),
					&Request{Model: "fuzz3", Inputs: reqs[i]})
			}(i)
		}
		wg.Wait()
		for i := 0; i < n; i++ {
			if errs[i] != nil {
				t.Fatalf("round %d request %d: %v", round, i, errs[i])
			}
			if resps[i].Fallback {
				// Interpreter recovery: correct, not bit-comparable to the
				// compiled engine — check against the reference evaluator.
				want, err := graph.Evaluate(ref, reqs[i])
				if err != nil {
					t.Fatal(err)
				}
				for oi := range want {
					if err := tensor.AllClose(resps[i].Outputs[oi], want[oi], 1e-4, 1e-5); err != nil {
						t.Fatalf("round %d request %d fallback output %d: %v", round, i, oi, err)
					}
				}
				continue
			}
			want, err := solo.Infer(context.Background(), &Request{Model: "fuzz3", Inputs: reqs[i]})
			if err != nil {
				t.Fatal(err)
			}
			for oi := range want.Outputs {
				bitsEqual(t, resps[i].Outputs[oi], want.Outputs[oi],
					fmt.Sprintf("round %d request %d output %d", round, i, oi))
			}
		}
	}
}
