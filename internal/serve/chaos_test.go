package serve

import (
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"godisc/internal/device"
	"godisc/internal/enginecache"
	"godisc/internal/exec"
	"godisc/internal/faultinject"
	"godisc/internal/fusion"
	"godisc/internal/graph"
	"godisc/internal/opt"
	"godisc/internal/tensor"
	"godisc/internal/workload"
)

// chaosSpec is the default fault mix for the chaos replay. `make chaos`
// overrides it (and the seed) via GODISC_FAULTS / GODISC_FAULT_SEED so
// failures reproduce from the printed seed.
const chaosSpec = "compile:transient:0.35,kernel-launch:panic:0.3,alloc:transient:0.25," +
	"cache-read:transient:0.4,cache-write:transient:0.4"

func chaosInjector(t *testing.T) *faultinject.Injector {
	t.Helper()
	if os.Getenv("GODISC_FAULTS") != "" {
		inj, err := faultinject.FromEnv()
		if err != nil {
			t.Fatalf("GODISC_FAULTS: %v", err)
		}
		t.Logf("chaos: env spec %q seed %d", os.Getenv("GODISC_FAULTS"), inj.Seed())
		return inj
	}
	inj, err := faultinject.FromSpec(chaosSpec, 7)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// faultyCompile is realCompile with the injector threaded into the exec
// options, so compile/alloc/kernel-launch probes all fire in-engine.
func faultyCompile(inj *faultinject.Injector) CompileFunc {
	return func(g *graph.Graph) (Engine, error) {
		if _, err := opt.Default().Run(g); err != nil {
			return nil, err
		}
		plan, err := fusion.NewPlanner(fusion.DefaultConfig()).Plan(g)
		if err != nil {
			return nil, err
		}
		opts := exec.DefaultOptions()
		opts.Faults = inj
		return exec.Compile(g, plan, device.A10(), opts)
	}
}

// TestChaosReplayZeroFailedRequests is the headline resilience check: a
// concurrent replay with compile failures, kernel panics, and transient
// alloc errors injected must complete every request — degraded requests
// are served by the interpreter fallback, never dropped.
func TestChaosReplayZeroFailedRequests(t *testing.T) {
	inj := chaosInjector(t)
	// The chaos server also persists engines so the cache-read/cache-write
	// probes fire on the real load/persist paths: a faulted read degrades
	// to a recompile and a faulted write drops the persist, never a
	// request failure.
	dec, enc := cacheCodecs()
	ec, err := enginecache.Open(t.TempDir(), "chaos")
	if err != nil {
		t.Fatal(err)
	}
	ec.SetFaults(inj)
	s := New(Config{
		MaxConcurrent:    8,
		QueueDepth:       256,
		MaxRetries:       3,
		RetryBackoff:     200 * time.Microsecond,
		BreakerThreshold: 2,
		BreakerCooldown:  2 * time.Millisecond,
		EngineCache:      ec,
		DecodeEngine:     dec,
		EncodeEngine:     enc,
	}, faultyCompile(inj))
	defer s.Close()
	if err := s.Register("mlp", buildMLP); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("softmaxnet", buildSoftmaxNet); err != nil {
		t.Fatal(err)
	}

	tr, err := workload.ByName("churn", workload.Spec{Requests: 160, MaxBatch: 16, MaxSeq: 48, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(17)
	inputs := make([]*tensor.Tensor, len(tr.Points))
	models := make([]string, len(tr.Points))
	for i, p := range tr.Points {
		if i%2 == 0 {
			models[i], inputs[i] = "mlp", tensor.RandN(rng, 0.5, p.Batch, 12)
		} else {
			models[i], inputs[i] = "softmaxnet", tensor.RandN(rng, 0.5, p.Batch, p.Seq)
		}
	}

	errs := workload.Replay(tr, 8, func(i int, p workload.Point) error {
		resp, err := s.Infer(context.Background(), &Request{
			Model:  models[i],
			Inputs: []*tensor.Tensor{inputs[i]},
		})
		if err != nil {
			return fmt.Errorf("request %d (%s %v): %w", i, models[i], p, err)
		}
		if len(resp.Outputs) != 1 || resp.Outputs[0].Shape()[0] != p.Batch {
			return fmt.Errorf("request %d: bad output", i)
		}
		return nil
	})
	failed := 0
	for _, err := range errs {
		if err != nil {
			failed++
			t.Error(err)
		}
	}
	if failed > 0 {
		t.Fatalf("%d/%d requests failed under chaos (seed %d)", failed, len(errs), inj.Seed())
	}

	st := s.Stats()
	t.Logf("chaos: %s", st)
	t.Logf("chaos: injector fired %d times %v (seed %d)", inj.Total(), inj.Counts(), inj.Seed())
	t.Logf("chaos: enginecache %+v", ec.Stats())
	if st.Requests != int64(len(tr.Points)) || st.Completed != st.Requests {
		t.Fatalf("every request must complete: %s", st)
	}
	if st.Failed != 0 || st.Canceled != 0 || st.Rejected != 0 {
		t.Fatalf("zero failed/canceled/rejected wanted: %s", st)
	}
	if st.FallbackRuns == 0 {
		t.Fatal("chaos run must exercise the interpreter fallback")
	}
	if st.Retries == 0 {
		t.Fatal("chaos run must exercise the retry path")
	}
	if st.BreakerOpens == 0 {
		t.Fatal("chaos run must open a breaker")
	}
}
