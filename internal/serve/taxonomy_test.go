package serve

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"godisc/internal/device"
	"godisc/internal/discerr"
	"godisc/internal/exec"
	"godisc/internal/fusion"
	"godisc/internal/graph"
	"godisc/internal/obs"
	"godisc/internal/opt"
	"godisc/internal/tensor"
)

// sentinels is the full public error taxonomy; every Infer failure must
// classify as exactly one of these (plus context errors). Sourced from the
// discerr registry so a sentinel added there is covered here automatically.
var sentinels = discerr.Sentinels()

// TestErrorTaxonomyThroughServe drives each sentinel through the serving
// layer — retry, fallback-disabled propagation, quarantine, admission —
// with the observability hooks armed, and asserts errors.Is still
// resolves the right sentinel (and only that one) on the far side. This
// pins the contract that span/metric instrumentation wraps errors with
// %w and never swallows the chain.
func TestErrorTaxonomyThroughServe(t *testing.T) {
	cases := []struct {
		name string
		want error
		// run builds a server (already obs-instrumented via cfg) and
		// returns the Infer error to classify.
		run func(t *testing.T, cfg Config) error
	}{
		{
			name: "ErrShapeMismatch",
			want: discerr.ErrShapeMismatch,
			run: func(t *testing.T, cfg Config) error {
				// A really compiled engine: the mismatch must come out of
				// the executable's shape program, not a stub.
				s := New(cfg, realCompile(nil))
				defer s.Close()
				if err := s.Register("mlp", buildMLP); err != nil {
					t.Fatal(err)
				}
				// buildMLP's parameter is [B, 12]; 13 violates the static dim.
				bad := tensor.RandN(tensor.NewRNG(3), 0.5, 2, 13)
				_, err := s.Infer(context.Background(), &Request{Model: "mlp", Inputs: []*tensor.Tensor{bad}})
				return err
			},
		},
		{
			name: "ErrQueueFull",
			want: discerr.ErrQueueFull,
			run: func(t *testing.T, cfg Config) error {
				cfg.MaxConcurrent = 1
				cfg.QueueDepth = -1 // no queueing: reject when the slot is busy
				release := make(chan struct{})
				running := make(chan struct{})
				s := New(cfg, func(*graph.Graph) (Engine, error) {
					return engineFunc(func(context.Context, []*tensor.Tensor) (*exec.Result, error) {
						close(running)
						<-release
						return okResult()
					}), nil
				})
				defer s.Close()
				if err := s.Register("mlp", buildMLP); err != nil {
					t.Fatal(err)
				}
				in, _ := mlpInput(t, 2)
				req := &Request{Model: "mlp", Inputs: []*tensor.Tensor{in}}
				done := make(chan error, 1)
				go func() {
					_, err := s.Infer(context.Background(), req)
					done <- err
				}()
				<-running
				_, err := s.Infer(context.Background(), req)
				close(release)
				if ferr := <-done; ferr != nil {
					t.Fatalf("occupying request failed: %v", ferr)
				}
				return err
			},
		},
		{
			name: "ErrCompileFailed",
			want: discerr.ErrCompileFailed,
			run: func(t *testing.T, cfg Config) error {
				cfg.DisableFallback = true
				s := New(cfg, func(*graph.Graph) (Engine, error) {
					return nil, fmt.Errorf("lowering exploded: %w", discerr.ErrCompileFailed)
				})
				defer s.Close()
				if err := s.Register("mlp", buildMLP); err != nil {
					t.Fatal(err)
				}
				in, _ := mlpInput(t, 2)
				_, err := s.Infer(context.Background(), &Request{Model: "mlp", Inputs: []*tensor.Tensor{in}})
				return err
			},
		},
		{
			name: "ErrServerClosed",
			want: discerr.ErrServerClosed,
			run: func(t *testing.T, cfg Config) error {
				s := New(cfg, func(*graph.Graph) (Engine, error) {
					return engineFunc(func(context.Context, []*tensor.Tensor) (*exec.Result, error) {
						return okResult()
					}), nil
				})
				if err := s.Register("mlp", buildMLP); err != nil {
					t.Fatal(err)
				}
				s.Close()
				in, _ := mlpInput(t, 2)
				_, err := s.Infer(context.Background(), &Request{Model: "mlp", Inputs: []*tensor.Tensor{in}})
				return err
			},
		},
		{
			name: "ErrKernelPanic",
			want: discerr.ErrKernelPanic,
			run: func(t *testing.T, cfg Config) error {
				cfg.DisableFallback = true
				cfg.MaxRetries = -1
				s := New(cfg, func(*graph.Graph) (Engine, error) {
					return engineFunc(func(context.Context, []*tensor.Tensor) (*exec.Result, error) {
						panic("kernel crashed")
					}), nil
				})
				defer s.Close()
				if err := s.Register("mlp", buildMLP); err != nil {
					t.Fatal(err)
				}
				in, _ := mlpInput(t, 2)
				_, err := s.Infer(context.Background(), &Request{Model: "mlp", Inputs: []*tensor.Tensor{in}})
				return err
			},
		},
		{
			name: "ErrEngineQuarantined",
			want: discerr.ErrEngineQuarantined,
			run: func(t *testing.T, cfg Config) error {
				cfg.DisableFallback = true
				cfg.MaxRetries = -1
				cfg.BreakerThreshold = 1
				cfg.BreakerCooldown = time.Hour
				s := New(cfg, func(*graph.Graph) (Engine, error) {
					return engineFunc(func(context.Context, []*tensor.Tensor) (*exec.Result, error) {
						panic("kernel crashed")
					}), nil
				})
				defer s.Close()
				if err := s.Register("mlp", buildMLP); err != nil {
					t.Fatal(err)
				}
				in, _ := mlpInput(t, 2)
				req := &Request{Model: "mlp", Inputs: []*tensor.Tensor{in}}
				// First request trips the breaker (kernel panic)...
				if _, err := s.Infer(context.Background(), req); !errors.Is(err, discerr.ErrKernelPanic) {
					t.Fatalf("first request: %v, want ErrKernelPanic", err)
				}
				// ...second finds the engine quarantined.
				_, err := s.Infer(context.Background(), req)
				return err
			},
		},
		{
			name: "ErrTransient",
			want: discerr.ErrTransient,
			run: func(t *testing.T, cfg Config) error {
				cfg.DisableFallback = true
				cfg.MaxRetries = 2
				cfg.RetryBackoff = 50 * time.Microsecond
				s := New(cfg, func(*graph.Graph) (Engine, error) {
					return engineFunc(func(context.Context, []*tensor.Tensor) (*exec.Result, error) {
						return nil, fmt.Errorf("alloc hiccup: %w", discerr.ErrTransient)
					}), nil
				})
				defer s.Close()
				if err := s.Register("mlp", buildMLP); err != nil {
					t.Fatal(err)
				}
				in, _ := mlpInput(t, 2)
				_, err := s.Infer(context.Background(), &Request{Model: "mlp", Inputs: []*tensor.Tensor{in}})
				if st := s.Stats(); st.Retries != 2 {
					t.Fatalf("retries = %d, want 2 (instrumented retry path)", st.Retries)
				}
				return err
			},
		},
		{
			name: "ErrUnsupported",
			want: discerr.ErrUnsupported,
			run: func(t *testing.T, cfg Config) error {
				cfg.DisableFallback = true
				cfg.MaxRetries = -1
				s := New(cfg, func(*graph.Graph) (Engine, error) {
					return engineFunc(func(context.Context, []*tensor.Tensor) (*exec.Result, error) {
						return nil, fmt.Errorf("dtype f64: %w", discerr.ErrUnsupported)
					}), nil
				})
				defer s.Close()
				if err := s.Register("mlp", buildMLP); err != nil {
					t.Fatal(err)
				}
				in, _ := mlpInput(t, 2)
				_, err := s.Infer(context.Background(), &Request{Model: "mlp", Inputs: []*tensor.Tensor{in}})
				return err
			},
		},
		{
			name: "ErrQuotaExceeded",
			want: discerr.ErrQuotaExceeded,
			run: func(t *testing.T, cfg Config) error {
				cfg.ModelQuotas = map[string]int{"mlp": 1}
				release := make(chan struct{})
				running := make(chan struct{})
				s := New(cfg, func(*graph.Graph) (Engine, error) {
					return engineFunc(func(context.Context, []*tensor.Tensor) (*exec.Result, error) {
						close(running)
						<-release
						return okResult()
					}), nil
				})
				defer s.Close()
				if err := s.Register("mlp", buildMLP); err != nil {
					t.Fatal(err)
				}
				in, _ := mlpInput(t, 2)
				req := &Request{Model: "mlp", Inputs: []*tensor.Tensor{in}}
				done := make(chan error, 1)
				go func() {
					_, err := s.Infer(context.Background(), req)
					done <- err
				}()
				<-running
				_, err := s.Infer(context.Background(), req)
				close(release)
				if ferr := <-done; ferr != nil {
					t.Fatalf("occupying request failed: %v", ferr)
				}
				return err
			},
		},
		{
			name: "ErrDeadlineInfeasible",
			want: discerr.ErrDeadlineInfeasible,
			run: func(t *testing.T, cfg Config) error {
				cfg.MaxConcurrent = 1
				cfg.QueueDepth = 4
				block := make(chan struct{})
				var blocked atomic.Bool
				s := New(cfg, func(*graph.Graph) (Engine, error) {
					return engineFunc(func(ctx context.Context, _ []*tensor.Tensor) (*exec.Result, error) {
						if blocked.Load() {
							select {
							case <-block:
							case <-ctx.Done():
								return nil, ctx.Err()
							}
							return okResult()
						}
						time.Sleep(20 * time.Millisecond)
						return okResult()
					}), nil
				})
				defer s.Close()
				if err := s.Register("mlp", buildMLP); err != nil {
					t.Fatal(err)
				}
				in, _ := mlpInput(t, 2)
				req := &Request{Model: "mlp", Inputs: []*tensor.Tensor{in}}
				for i := 0; i < estMinSamples; i++ {
					if _, err := s.Infer(context.Background(), req); err != nil {
						t.Fatal(err)
					}
				}
				blocked.Store(true)
				done := make(chan error, 1)
				go func() {
					_, err := s.Infer(context.Background(), req)
					done <- err
				}()
				waitFor(t, "slot occupied", func() bool { return s.Stats().InFlight == 1 })
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
				defer cancel()
				_, err := s.Infer(ctx, req)
				close(block)
				if ferr := <-done; ferr != nil {
					t.Fatalf("occupying request failed: %v", ferr)
				}
				return err
			},
		},
		{
			name: "ErrMemoryBudget",
			want: discerr.ErrMemoryBudget,
			run: func(t *testing.T, cfg Config) error {
				cfg.MemoryBudgetBytes = 64 // smaller than any run's buffers
				var s *Server
				s = New(cfg, func(g *graph.Graph) (Engine, error) {
					if _, err := opt.Default().Run(g); err != nil {
						return nil, err
					}
					plan, err := fusion.NewPlanner(fusion.DefaultConfig()).Plan(g)
					if err != nil {
						return nil, err
					}
					eo := exec.DefaultOptions()
					eo.Governor = s.Governor()
					return exec.Compile(g, plan, device.A10(), eo)
				})
				defer s.Close()
				if err := s.Register("mlp", buildMLP); err != nil {
					t.Fatal(err)
				}
				in, _ := mlpInput(t, 8)
				_, err := s.Infer(context.Background(), &Request{Model: "mlp", Inputs: []*tensor.Tensor{in}})
				return err
			},
		},
		{
			name: "ErrHungRequest",
			want: discerr.ErrHungRequest,
			run: func(t *testing.T, cfg Config) error {
				cfg.DisableFallback = true
				cfg.MaxRetries = -1
				cfg.BreakerThreshold = -1
				cfg.WatchdogMultiple = 2
				cfg.WatchdogFloor = 10 * time.Millisecond
				var calls int32
				s := New(cfg, func(*graph.Graph) (Engine, error) {
					return engineFunc(func(ctx context.Context, _ []*tensor.Tensor) (*exec.Result, error) {
						if int(atomic.AddInt32(&calls, 1)) <= watchdogMinSamples {
							return okResult()
						}
						<-ctx.Done()
						return nil, ctx.Err()
					}), nil
				})
				defer s.Close()
				if err := s.Register("mlp", buildMLP); err != nil {
					t.Fatal(err)
				}
				in, _ := mlpInput(t, 2)
				req := &Request{Model: "mlp", Inputs: []*tensor.Tensor{in}}
				for i := 0; i < watchdogMinSamples; i++ {
					if _, err := s.Infer(context.Background(), req); err != nil {
						t.Fatal(err)
					}
				}
				_, err := s.Infer(context.Background(), req)
				return err
			},
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			// Every server runs fully instrumented: the error chain must
			// survive the span/metric wrapping identically to the bare path.
			tracer := obs.NewTracer(0)
			reg := obs.NewRegistry()
			cfg := Config{MaxConcurrent: 2, Observer: tracer, Metrics: reg}
			err := tc.run(t, cfg)
			if err == nil {
				t.Fatalf("want error wrapping %v, got nil", tc.want)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("errors.Is(%v, %v) = false", err, tc.want)
			}
			// The taxonomy is disjoint: no other sentinel may match.
			for _, s := range sentinels {
				if s.Err != tc.want && errors.Is(err, s.Err) {
					t.Errorf("error %v also matches %s — taxonomy not disjoint", err, s.Name)
				}
			}
			if tracer.Len() == 0 {
				t.Error("instrumented path recorded no spans")
			}
		})
	}
}
