package serve

import "fmt"

// Engine lifecycle hooks for a fleet front-end: a model repository keeps a
// byte ledger of resident engines and needs to (a) name the engine-cache
// key a model resolves to, (b) evict the in-memory engine of an idle model
// so its reservation can be released, and (c) retire a model entirely on
// unload. Eviction is safe against in-flight runs by construction: every
// executing request holds a pin on its cache entry (ral.Cache), and Evict
// refuses pinned entries.

// ModelSignature returns the symbolic shape signature of a registered
// model — the second half of its engine-cache key. Callers that evict by
// (model, signature) capture it at load time, before any unload removes
// the builder.
func (s *Server) ModelSignature(model string) (string, error) {
	m, err := s.lookup(model)
	if err != nil {
		return "", err
	}
	return m.signature()
}

// EvictEngine removes the in-memory engine for (model, sig) — the entry
// compiled under the key model@sig — unless an in-flight run holds it
// pinned. evicted reports removal; pinned reports the entry is busy and
// the caller should retry after the runs drain. A persisted copy in the
// engine cache is untouched: the next request reloads it from disk (a
// decode, not a compilation).
func (s *Server) EvictEngine(model, sig string) (evicted, pinned bool) {
	return s.cache.Evict(model + "@" + sig)
}

// Unregister removes a model's builder: later Infer calls fail with an
// unknown-model error, while requests already past lookup finish normally
// on the engine they pinned. The signature's circuit-breaker state is
// dropped with it. The in-memory engine is NOT evicted here — callers
// that account engine residency evict explicitly (EvictEngine) so the
// release of their ledger bytes cannot race in-flight runs.
func (s *Server) Unregister(model string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.models[model]
	if !ok {
		return fmt.Errorf("serve: unknown model %q", model)
	}
	delete(s.models, model)
	if sig, err := m.signature(); err == nil {
		delete(s.breakers, model+"@"+sig)
	}
	return nil
}
