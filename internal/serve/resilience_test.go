package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"godisc/internal/discerr"
	"godisc/internal/exec"
	"godisc/internal/graph"
	"godisc/internal/ral"
	"godisc/internal/tensor"
)

// engineFunc adapts a function to the Engine interface for failure-mode
// stubs.
type engineFunc func(ctx context.Context, inputs []*tensor.Tensor) (*exec.Result, error)

func (f engineFunc) RunContext(ctx context.Context, inputs []*tensor.Tensor) (*exec.Result, error) {
	return f(ctx, inputs)
}

func okResult() (*exec.Result, error) {
	p := ral.NewProfiler()
	p.Host(1000)
	return &exec.Result{Profile: p}, nil
}

// mlpInput returns a valid input for buildMLP plus its reference outputs.
func mlpInput(t *testing.T, batch int) (*tensor.Tensor, []*tensor.Tensor) {
	t.Helper()
	in := tensor.RandN(tensor.NewRNG(11), 0.6, batch, 12)
	want, err := graph.Evaluate(buildMLP(), []*tensor.Tensor{in})
	if err != nil {
		t.Fatal(err)
	}
	return in, want
}

// TestFallbackOnCompileFailure: a model whose compilation always fails is
// still served — through the interpreter — with correct outputs.
func TestFallbackOnCompileFailure(t *testing.T) {
	s := New(Config{MaxConcurrent: 2}, func(*graph.Graph) (Engine, error) {
		return nil, errors.New("lowering exploded")
	})
	if err := s.Register("mlp", buildMLP); err != nil {
		t.Fatal(err)
	}
	in, want := mlpInput(t, 3)
	resp, err := s.Infer(context.Background(), &Request{Model: "mlp", Inputs: []*tensor.Tensor{in}})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Fallback {
		t.Fatal("response must be marked as fallback")
	}
	if err := tensor.AllClose(resp.Outputs[0], want[0], 1e-5, 1e-6); err != nil {
		t.Fatal(err)
	}
	if resp.Profile.SimulatedNs <= 0 {
		t.Fatal("fallback must charge interpreter overhead")
	}
	st := s.Stats()
	if st.FallbackRuns != 1 || st.Completed != 1 || st.Failed != 0 {
		t.Fatalf("stats: %s", st)
	}
}

// TestFallbackOnKernelPanic: an engine that panics mid-run degrades to a
// successful interpreter-served request, not a dead process.
func TestFallbackOnKernelPanic(t *testing.T) {
	s := New(Config{MaxConcurrent: 2}, func(*graph.Graph) (Engine, error) {
		return engineFunc(func(context.Context, []*tensor.Tensor) (*exec.Result, error) {
			panic("kernel crashed")
		}), nil
	})
	if err := s.Register("mlp", buildMLP); err != nil {
		t.Fatal(err)
	}
	in, want := mlpInput(t, 2)
	resp, err := s.Infer(context.Background(), &Request{Model: "mlp", Inputs: []*tensor.Tensor{in}})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Fallback {
		t.Fatal("want fallback response")
	}
	if err := tensor.AllClose(resp.Outputs[0], want[0], 1e-5, 1e-6); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.KernelPanics != 1 || st.FallbackRuns != 1 || st.Failed != 0 {
		t.Fatalf("stats: %s", st)
	}
}

// TestTransientRetrySucceeds: two transient failures then success — the
// request completes on the engine (no fallback) after two retries.
func TestTransientRetrySucceeds(t *testing.T) {
	var calls int32
	s := New(Config{MaxConcurrent: 2, MaxRetries: 3, RetryBackoff: 100 * time.Microsecond},
		func(*graph.Graph) (Engine, error) {
			return engineFunc(func(context.Context, []*tensor.Tensor) (*exec.Result, error) {
				if atomic.AddInt32(&calls, 1) <= 2 {
					return nil, fmt.Errorf("alloc hiccup: %w", discerr.ErrTransient)
				}
				return okResult()
			}), nil
		})
	if err := s.Register("mlp", buildMLP); err != nil {
		t.Fatal(err)
	}
	resp, err := s.Infer(context.Background(), &Request{Model: "mlp"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Fallback || resp.Retries != 2 {
		t.Fatalf("fallback=%v retries=%d, want engine success after 2 retries", resp.Fallback, resp.Retries)
	}
	st := s.Stats()
	if st.Retries != 2 || st.FallbackRuns != 0 || st.Completed != 1 {
		t.Fatalf("stats: %s", st)
	}
}

// TestTransientExhaustedFallsBack: when every attempt is transient, the
// retry budget is spent and the request falls back.
func TestTransientExhaustedFallsBack(t *testing.T) {
	s := New(Config{MaxConcurrent: 2, MaxRetries: 2, RetryBackoff: 100 * time.Microsecond},
		func(*graph.Graph) (Engine, error) {
			return engineFunc(func(context.Context, []*tensor.Tensor) (*exec.Result, error) {
				return nil, fmt.Errorf("alloc hiccup: %w", discerr.ErrTransient)
			}), nil
		})
	if err := s.Register("mlp", buildMLP); err != nil {
		t.Fatal(err)
	}
	in, _ := mlpInput(t, 2)
	resp, err := s.Infer(context.Background(), &Request{Model: "mlp", Inputs: []*tensor.Tensor{in}})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Fallback || resp.Retries != 2 {
		t.Fatalf("fallback=%v retries=%d", resp.Fallback, resp.Retries)
	}
	if st := s.Stats(); st.Retries != 2 || st.FallbackRuns != 1 {
		t.Fatalf("stats: %s", st)
	}
}

// TestDisableFallbackPropagates: with fallback off, the engine error
// reaches the caller typed.
func TestDisableFallbackPropagates(t *testing.T) {
	s := New(Config{MaxConcurrent: 2, DisableFallback: true, MaxRetries: -1},
		func(*graph.Graph) (Engine, error) {
			return engineFunc(func(context.Context, []*tensor.Tensor) (*exec.Result, error) {
				panic("kernel crashed")
			}), nil
		})
	if err := s.Register("mlp", buildMLP); err != nil {
		t.Fatal(err)
	}
	in, _ := mlpInput(t, 2)
	_, err := s.Infer(context.Background(), &Request{Model: "mlp", Inputs: []*tensor.Tensor{in}})
	if !errors.Is(err, discerr.ErrKernelPanic) {
		t.Fatalf("err = %v, want ErrKernelPanic", err)
	}
	if st := s.Stats(); st.Failed != 1 || st.FallbackRuns != 0 {
		t.Fatalf("stats: %s", st)
	}
}

// TestBreakerOpensAndShortCircuits: BreakerThreshold consecutive engine
// failures quarantine the engine; further requests go straight to
// fallback without touching it, until the cooldown.
func TestBreakerOpensAndShortCircuits(t *testing.T) {
	var engineCalls int32
	s := New(Config{
		MaxConcurrent: 1, MaxRetries: -1,
		BreakerThreshold: 2, BreakerCooldown: time.Hour,
	}, func(*graph.Graph) (Engine, error) {
		return engineFunc(func(context.Context, []*tensor.Tensor) (*exec.Result, error) {
			atomic.AddInt32(&engineCalls, 1)
			panic("kernel crashed")
		}), nil
	})
	if err := s.Register("mlp", buildMLP); err != nil {
		t.Fatal(err)
	}
	in, _ := mlpInput(t, 2)
	req := &Request{Model: "mlp", Inputs: []*tensor.Tensor{in}}

	for i := 0; i < 5; i++ {
		resp, err := s.Infer(context.Background(), req)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if !resp.Fallback {
			t.Fatalf("request %d must fall back", i)
		}
	}
	if got := atomic.LoadInt32(&engineCalls); got != 2 {
		t.Fatalf("engine ran %d times, want 2 (then quarantined)", got)
	}
	st := s.Stats()
	if st.BreakerOpens != 1 || st.BreakerShortCircuits != 3 {
		t.Fatalf("stats: %s", st)
	}
	if st.FallbackRuns != 5 || st.Failed != 0 {
		t.Fatalf("stats: %s", st)
	}
}

// TestBreakerHalfOpenProbeCloses: after the cooldown one probe is let
// through; when the engine has healed, the probe closes the breaker and
// traffic returns to the compiled path.
func TestBreakerHalfOpenProbeCloses(t *testing.T) {
	var healed atomic.Bool
	var engineCalls int32
	s := New(Config{
		MaxConcurrent: 1, MaxRetries: -1,
		BreakerThreshold: 1, BreakerCooldown: 20 * time.Millisecond,
	}, func(*graph.Graph) (Engine, error) {
		return engineFunc(func(context.Context, []*tensor.Tensor) (*exec.Result, error) {
			atomic.AddInt32(&engineCalls, 1)
			if !healed.Load() {
				panic("kernel crashed")
			}
			return okResult()
		}), nil
	})
	if err := s.Register("mlp", buildMLP); err != nil {
		t.Fatal(err)
	}
	in, _ := mlpInput(t, 2)
	req := &Request{Model: "mlp", Inputs: []*tensor.Tensor{in}}

	// Failure opens the breaker (threshold 1).
	if resp, err := s.Infer(context.Background(), req); err != nil || !resp.Fallback {
		t.Fatalf("first: resp=%+v err=%v", resp, err)
	}
	// Quarantined while open.
	if resp, err := s.Infer(context.Background(), req); err != nil || !resp.Fallback {
		t.Fatalf("quarantined: resp=%+v err=%v", resp, err)
	}

	healed.Store(true)
	time.Sleep(25 * time.Millisecond) // past the cooldown: half-open

	resp, err := s.Infer(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Fallback {
		t.Fatal("half-open probe must reach the healed engine")
	}
	// Breaker closed again: the next request uses the engine too.
	if resp, err := s.Infer(context.Background(), req); err != nil || resp.Fallback {
		t.Fatalf("after close: resp=%+v err=%v", resp, err)
	}
	st := s.Stats()
	if st.BreakerOpens != 1 {
		t.Fatalf("stats: %s", st)
	}
	if got := atomic.LoadInt32(&engineCalls); got != 3 { // fail, probe, normal
		t.Fatalf("engine ran %d times, want 3", got)
	}
}

// TestBreakerReopensOnFailedProbe: a half-open probe that fails sends the
// breaker straight back to open.
func TestBreakerReopensOnFailedProbe(t *testing.T) {
	var engineCalls int32
	s := New(Config{
		MaxConcurrent: 1, MaxRetries: -1,
		BreakerThreshold: 1, BreakerCooldown: 15 * time.Millisecond,
	}, func(*graph.Graph) (Engine, error) {
		return engineFunc(func(context.Context, []*tensor.Tensor) (*exec.Result, error) {
			atomic.AddInt32(&engineCalls, 1)
			panic("still broken")
		}), nil
	})
	if err := s.Register("mlp", buildMLP); err != nil {
		t.Fatal(err)
	}
	in, _ := mlpInput(t, 2)
	req := &Request{Model: "mlp", Inputs: []*tensor.Tensor{in}}

	s.Infer(context.Background(), req) // opens
	time.Sleep(20 * time.Millisecond)  // half-open window
	s.Infer(context.Background(), req) // probe fails -> reopen
	s.Infer(context.Background(), req) // quarantined again immediately

	if got := atomic.LoadInt32(&engineCalls); got != 2 {
		t.Fatalf("engine ran %d times, want 2 (initial + failed probe)", got)
	}
	if st := s.Stats(); st.BreakerOpens != 2 || st.Failed != 0 {
		t.Fatalf("stats: %s", st)
	}
}

// TestShutdownDrainsInFlight: Shutdown returns nil only after in-flight
// requests complete; late Infers get ErrServerClosed.
func TestShutdownDrainsInFlight(t *testing.T) {
	stub := &stubEngine{started: make(chan struct{}, 8), release: make(chan struct{})}
	s := stubServer(t, Config{MaxConcurrent: 2}, stub)

	var wg sync.WaitGroup
	wg.Add(1)
	var inflightErr error
	go func() {
		defer wg.Done()
		_, inflightErr = s.Infer(context.Background(), &Request{Model: "m"})
	}()
	<-stub.started

	done := make(chan error, 1)
	go func() { done <- s.Shutdown(context.Background()) }()
	select {
	case <-done:
		t.Fatal("Shutdown returned while a request was in flight")
	case <-time.After(30 * time.Millisecond):
	}

	close(stub.release)
	wg.Wait()
	if err := <-done; err != nil {
		t.Fatalf("clean drain must return nil, got %v", err)
	}
	if inflightErr != nil {
		t.Fatalf("in-flight request must complete: %v", inflightErr)
	}
	if _, err := s.Infer(context.Background(), &Request{Model: "m"}); !errors.Is(err, discerr.ErrServerClosed) {
		t.Fatalf("late Infer: %v, want ErrServerClosed", err)
	}
	if st := s.Stats(); st.Completed != 1 || st.Rejected != 1 {
		t.Fatalf("stats: %s", st)
	}
}

// TestShutdownForceCancelsAtDeadline: when the drain deadline expires,
// in-flight requests are cancelled, Shutdown returns ctx.Err(), and the
// server still waits for them to unwind.
func TestShutdownForceCancelsAtDeadline(t *testing.T) {
	stub := &stubEngine{started: make(chan struct{}, 8), release: make(chan struct{})}
	s := stubServer(t, Config{MaxConcurrent: 2}, stub)

	var wg sync.WaitGroup
	wg.Add(1)
	var inflightErr error
	go func() {
		defer wg.Done()
		// The stub blocks until released or cancelled; we never release.
		_, inflightErr = s.Infer(context.Background(), &Request{Model: "m"})
	}()
	<-stub.started

	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	wg.Wait()
	if !errors.Is(inflightErr, context.Canceled) {
		t.Fatalf("in-flight err = %v, want context.Canceled", inflightErr)
	}
	if st := s.Stats(); st.Canceled != 1 {
		t.Fatalf("stats: %s", st)
	}
}

// TestShutdownIdempotent: repeated and concurrent Shutdown/Close calls
// are safe.
func TestShutdownIdempotent(t *testing.T) {
	s := New(Config{}, realCompile(nil))
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Shutdown(context.Background()); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	s.Close()
	if _, err := s.Infer(context.Background(), &Request{Model: "x"}); !errors.Is(err, discerr.ErrServerClosed) {
		t.Fatalf("err = %v", err)
	}
}
