package serve

import (
	"sync"
	"time"
)

// breakerState is the classic circuit-breaker state machine.
type breakerState int

const (
	// breakerClosed: requests flow to the engine normally.
	breakerClosed breakerState = iota
	// breakerOpen: the engine is quarantined; requests are served by the
	// interpreter fallback without touching it until the cooldown elapses.
	breakerOpen
	// breakerHalfOpen: the cooldown elapsed; exactly one probe request is
	// let through. Success closes the breaker, failure reopens it.
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker quarantines one (model, signature) engine after `threshold`
// consecutive failures. While open it short-circuits requests to the
// fallback path; after `cooldown` it half-opens and admits a single probe.
// This doubles as the negative cache for failed compilations: K requests
// that fail to compile open the breaker, and nobody re-attempts the
// compile until the TTL probe.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu          sync.Mutex
	state       breakerState
	consecutive int
	openedAt    time.Time
	probing     bool
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a request may use the engine now. In half-open
// state only one in-flight probe is admitted at a time; everyone else is
// short-circuited to fallback until the probe's verdict lands.
func (b *breaker) allow(now time.Time) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// success records an engine run that completed; it closes the breaker and
// resets the failure streak.
func (b *breaker) success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.state = breakerClosed
	b.consecutive = 0
	b.probing = false
	b.mu.Unlock()
}

// failure records an engine failure (compile error, kernel panic, or
// transient errors after retries were exhausted). It reports whether this
// failure transitioned the breaker to open — a failed half-open probe
// reopens immediately, a closed breaker opens at the threshold.
func (b *breaker) failure(now time.Time) (opened bool) {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	if b.state == breakerHalfOpen || b.consecutive >= b.threshold {
		opened = b.state != breakerOpen
		b.state = breakerOpen
		b.openedAt = now
		b.probing = false
	}
	return opened
}

// snapshot returns the current state for stats/debugging.
func (b *breaker) snapshot() breakerState {
	if b == nil {
		return breakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
