package serve

import (
	"context"
	"errors"
	"testing"

	"godisc/internal/discerr"
)

// fullAdmitter returns an admitter with every slot taken and no queue, so
// each admit call exercises the rejection path.
func fullAdmitter(cfg Config) *admitter {
	if cfg.MaxConcurrent == 0 {
		cfg.MaxConcurrent = 1
	}
	a := newAdmitter(cfg, newCollector(nil))
	if _, err := a.admit(context.Background(), "m", PriorityBatch); err != nil {
		panic(err)
	}
	return a
}

// TestQueueFullRejectionAllocs guards the satellite invariant: rejection
// under overload returns the preformatted error, so shedding does not
// allocate per rejected request.
func TestQueueFullRejectionAllocs(t *testing.T) {
	a := fullAdmitter(Config{MaxConcurrent: 1, QueueDepth: QueueDepthNone})
	ctx := context.Background()
	_, err := a.admit(ctx, "m", PriorityBatch)
	if !errors.Is(err, discerr.ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if err != a.errQueueFull {
		t.Fatalf("rejection must return the preformatted error, got a fresh %T", err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := a.admit(ctx, "m", PriorityBatch); err == nil {
			t.Fatal("admit unexpectedly succeeded")
		}
	})
	if allocs > 0 {
		t.Fatalf("queue-full rejection allocates %.1f objects/op, want 0", allocs)
	}
}

// TestQuotaRejectionPreformatted: per-model quota errors are also built
// once at construction.
func TestQuotaRejectionPreformatted(t *testing.T) {
	a := fullAdmitter(Config{MaxConcurrent: 4, ModelQuotas: map[string]int{"m": 1}})
	_, err := a.admit(context.Background(), "m", PriorityBatch)
	if !errors.Is(err, discerr.ErrQuotaExceeded) {
		t.Fatalf("want ErrQuotaExceeded, got %v", err)
	}
	if err != a.errQuota["m"] {
		t.Fatal("quota rejection must return the preformatted error")
	}
}

func BenchmarkQueueFullRejection(b *testing.B) {
	a := fullAdmitter(Config{MaxConcurrent: 1, QueueDepth: QueueDepthNone})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.admit(ctx, "m", PriorityBatch); err == nil {
			b.Fatal("admit unexpectedly succeeded")
		}
	}
}
