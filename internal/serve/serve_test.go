package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"godisc/internal/device"
	"godisc/internal/discerr"
	"godisc/internal/exec"
	"godisc/internal/fusion"
	"godisc/internal/graph"
	"godisc/internal/opt"
	"godisc/internal/ral"
	"godisc/internal/symshape"
	"godisc/internal/tensor"
)

// realCompile is the full pipeline as a CompileFunc, with an atomic
// counter so tests can assert exactly how many compilations ran.
func realCompile(calls *int32) CompileFunc {
	return func(g *graph.Graph) (Engine, error) {
		if calls != nil {
			atomic.AddInt32(calls, 1)
		}
		if _, err := opt.Default().Run(g); err != nil {
			return nil, err
		}
		plan, err := fusion.NewPlanner(fusion.DefaultConfig()).Plan(g)
		if err != nil {
			return nil, err
		}
		return exec.Compile(g, plan, device.A10(), exec.DefaultOptions())
	}
}

// buildMLP is a deterministic two-layer model with a dynamic batch axis.
func buildMLP() *graph.Graph {
	g := graph.New("mlp")
	r := tensor.NewRNG(42)
	b := g.Ctx.NewDim("B")
	g.Ctx.DeclareRange(b, 1, 128)
	x := g.Parameter("x", tensor.F32, symshape.Shape{b, g.Ctx.StaticDim(12)})
	w1 := g.Constant(tensor.RandN(r, 0.2, 12, 20))
	w2 := g.Constant(tensor.RandN(r, 0.2, 20, 4))
	g.SetOutputs(g.MatMul(g.Relu(g.MatMul(x, w1)), w2))
	return g
}

// buildSoftmaxNet has a different symbolic signature (two dynamic axes).
func buildSoftmaxNet() *graph.Graph {
	g := graph.New("softmaxnet")
	b := g.Ctx.NewDim("B")
	s := g.Ctx.NewDim("S")
	g.Ctx.DeclareRange(b, 1, 64)
	g.Ctx.DeclareRange(s, 1, 512)
	x := g.Parameter("x", tensor.F32, symshape.Shape{b, s})
	g.SetOutputs(g.Softmax(g.Tanh(x)))
	return g
}

// TestConcurrentInferSingleCompile sends 16 concurrent first requests with
// mixed dynamic shapes through one model: the signature-keyed singleflight
// cache must compile exactly once, every request must succeed, and every
// output must match the reference interpreter.
func TestConcurrentInferSingleCompile(t *testing.T) {
	var compiles int32
	s := New(Config{MaxConcurrent: 16}, realCompile(&compiles))
	if err := s.Register("mlp", buildMLP); err != nil {
		t.Fatal(err)
	}

	ref := buildMLP()
	batches := []int{1, 2, 3, 5, 8, 13, 21, 34}
	r := tensor.NewRNG(9)
	inputs := make([]*tensor.Tensor, len(batches))
	wants := make([][]*tensor.Tensor, len(batches))
	for i, b := range batches {
		inputs[i] = tensor.RandN(r, 0.7, b, 12)
		want, err := graph.Evaluate(ref, []*tensor.Tensor{inputs[i]})
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = want
	}

	const requests = 16
	var wg sync.WaitGroup
	errc := make(chan error, requests)
	hits := make([]bool, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ci := i % len(batches)
			resp, err := s.Infer(context.Background(), &Request{Model: "mlp", Inputs: []*tensor.Tensor{inputs[ci]}})
			if err != nil {
				errc <- err
				return
			}
			hits[i] = resp.CacheHit
			if err := tensor.AllClose(resp.Outputs[0], wants[ci][0], 1e-4, 1e-5); err != nil {
				errc <- fmt.Errorf("request %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	if got := atomic.LoadInt32(&compiles); got != 1 {
		t.Fatalf("compiled %d times under concurrent first requests, want 1", got)
	}
	nMiss := 0
	for _, h := range hits {
		if !h {
			nMiss++
		}
	}
	if nMiss != 1 {
		t.Fatalf("%d cache misses, want exactly 1", nMiss)
	}
	st := s.Stats()
	if st.Requests != requests || st.Completed != requests {
		t.Fatalf("stats: %s", st)
	}
	if st.Engines != 1 || st.CacheMisses != 1 || st.CacheHits != requests-1 {
		t.Fatalf("cache stats: %s", st)
	}
	if st.P50SimNs <= 0 || st.P99SimNs < st.P50SimNs {
		t.Fatalf("latency percentiles: %s", st)
	}
}

// TestDistinctSignaturesCompileOnceEach mixes concurrent first requests
// for two models with different symbolic signatures: exactly one
// compilation per signature.
func TestDistinctSignaturesCompileOnceEach(t *testing.T) {
	var compiles int32
	s := New(Config{MaxConcurrent: 8}, realCompile(&compiles))
	if err := s.Register("mlp", buildMLP); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("softmaxnet", buildSoftmaxNet); err != nil {
		t.Fatal(err)
	}

	r := tensor.NewRNG(5)
	mlpIn := tensor.RandN(r, 0.5, 4, 12)
	smIn := tensor.RandN(r, 0.5, 2, 17)

	var wg sync.WaitGroup
	errc := make(chan error, 12)
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := &Request{Model: "mlp", Inputs: []*tensor.Tensor{mlpIn}}
			if i%2 == 1 {
				req = &Request{Model: "softmaxnet", Inputs: []*tensor.Tensor{smIn}}
			}
			if _, err := s.Infer(context.Background(), req); err != nil {
				errc <- err
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&compiles); got != 2 {
		t.Fatalf("compiled %d times, want 2 (one per signature)", got)
	}
	if st := s.Stats(); st.Engines != 2 {
		t.Fatalf("engines = %d, want 2", st.Engines)
	}
}

// stubEngine blocks until released, so admission tests control timing.
type stubEngine struct {
	started chan struct{}
	release chan struct{}
}

func (e *stubEngine) RunContext(ctx context.Context, inputs []*tensor.Tensor) (*exec.Result, error) {
	if e.started != nil {
		e.started <- struct{}{}
	}
	select {
	case <-e.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return &exec.Result{Profile: ral.NewProfiler()}, nil
}

// stubServer returns a warmed server whose single model runs on stub.
func stubServer(t *testing.T, cfg Config, stub *stubEngine) *Server {
	t.Helper()
	s := New(cfg, func(*graph.Graph) (Engine, error) { return stub, nil })
	if err := s.Register("m", buildMLP); err != nil {
		t.Fatal(err)
	}
	if err := s.Warm("m"); err != nil {
		t.Fatal(err)
	}
	return s
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// TestQueueFullRejection: with one execution slot and one queue slot, a
// third concurrent request is rejected with ErrQueueFull; the first two
// complete once the engine unblocks.
func TestQueueFullRejection(t *testing.T) {
	stub := &stubEngine{started: make(chan struct{}, 8), release: make(chan struct{})}
	s := stubServer(t, Config{MaxConcurrent: 1, QueueDepth: 1}, stub)

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Infer(context.Background(), &Request{Model: "m"})
		}(i)
	}
	<-stub.started // one request is executing
	waitFor(t, "one queued request", func() bool { return s.Stats().QueueDepth == 1 })

	_, err := s.Infer(context.Background(), &Request{Model: "m"})
	if !errors.Is(err, discerr.ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}

	close(stub.release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.Completed != 2 || st.Rejected != 1 || st.QueueDepth != 0 || st.PeakQueueDepth != 1 {
		t.Fatalf("stats: %s", st)
	}
}

// TestQueuedRequestCancellation: a queued request whose context is
// cancelled leaves the queue with ctx.Err().
func TestQueuedRequestCancellation(t *testing.T) {
	stub := &stubEngine{started: make(chan struct{}, 8), release: make(chan struct{})}
	s := stubServer(t, Config{MaxConcurrent: 1, QueueDepth: 4}, stub)

	var wg sync.WaitGroup
	wg.Add(1)
	var firstErr error
	go func() {
		defer wg.Done()
		_, firstErr = s.Infer(context.Background(), &Request{Model: "m"})
	}()
	<-stub.started

	ctx, cancel := context.WithCancel(context.Background())
	wg.Add(1)
	var queuedErr error
	go func() {
		defer wg.Done()
		_, queuedErr = s.Infer(ctx, &Request{Model: "m"})
	}()
	waitFor(t, "request to queue", func() bool { return s.Stats().QueueDepth == 1 })
	cancel()
	waitFor(t, "queue to drain", func() bool { return s.Stats().QueueDepth == 0 })

	close(stub.release)
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	if !errors.Is(queuedErr, context.Canceled) {
		t.Fatalf("queued err = %v, want context.Canceled", queuedErr)
	}
	if st := s.Stats(); st.Canceled != 1 {
		t.Fatalf("stats: %s", st)
	}
}

// TestDeadlineMidRun: a request whose deadline expires while the engine
// is executing returns DeadlineExceeded (the engine observes ctx).
func TestDeadlineMidRun(t *testing.T) {
	stub := &stubEngine{release: make(chan struct{})}
	s := stubServer(t, Config{MaxConcurrent: 2}, stub)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := s.Infer(ctx, &Request{Model: "m"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if st := s.Stats(); st.Canceled != 1 {
		t.Fatalf("stats: %s", st)
	}
}

// TestServerClose: Infer after Close fails with ErrServerClosed; Close
// waits for in-flight requests.
func TestServerClose(t *testing.T) {
	stub := &stubEngine{started: make(chan struct{}, 8), release: make(chan struct{})}
	s := stubServer(t, Config{MaxConcurrent: 2}, stub)

	var wg sync.WaitGroup
	wg.Add(1)
	var inflightErr error
	go func() {
		defer wg.Done()
		_, inflightErr = s.Infer(context.Background(), &Request{Model: "m"})
	}()
	<-stub.started

	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while a request was in flight")
	case <-time.After(30 * time.Millisecond):
	}

	close(stub.release)
	wg.Wait()
	<-closed
	if inflightErr != nil {
		t.Fatal(inflightErr)
	}
	if _, err := s.Infer(context.Background(), &Request{Model: "m"}); !errors.Is(err, discerr.ErrServerClosed) {
		t.Fatalf("err = %v, want ErrServerClosed", err)
	}
}

// TestCompileFailure: with fallback disabled, a failing compile surfaces
// ErrCompileFailed and is not cached — the next request compiles again.
// (With fallback enabled — the default — a compile failure is served by
// the interpreter instead; see resilience_test.go.)
func TestCompileFailure(t *testing.T) {
	fails := int32(0)
	s := New(Config{MaxConcurrent: 2, DisableFallback: true}, func(g *graph.Graph) (Engine, error) {
		if atomic.AddInt32(&fails, 1) == 1 {
			return nil, errors.New("lowering exploded")
		}
		return &stubEngine{release: closedChan()}, nil
	})
	if err := s.Register("m", buildMLP); err != nil {
		t.Fatal(err)
	}
	_, err := s.Infer(context.Background(), &Request{Model: "m"})
	if !errors.Is(err, discerr.ErrCompileFailed) {
		t.Fatalf("err = %v, want ErrCompileFailed", err)
	}
	// Failure was not cached: the next request compiles again and works.
	if _, err := s.Infer(context.Background(), &Request{Model: "m"}); err != nil {
		t.Fatal(err)
	}
}

func closedChan() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

// TestUnknownModelAndBadInputs: lookup failures and shape mismatches are
// typed.
func TestUnknownModelAndBadInputs(t *testing.T) {
	var compiles int32
	s := New(Config{}, realCompile(&compiles))
	if err := s.Register("mlp", buildMLP); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Infer(context.Background(), &Request{Model: "nope"}); err == nil {
		t.Fatal("unknown model must fail")
	}
	bad := tensor.RandN(tensor.NewRNG(1), 1, 3, 13) // static dim must be 12
	_, err := s.Infer(context.Background(), &Request{Model: "mlp", Inputs: []*tensor.Tensor{bad}})
	if !errors.Is(err, discerr.ErrShapeMismatch) {
		t.Fatalf("err = %v, want ErrShapeMismatch", err)
	}
	if st := s.Stats(); st.Failed != 2 {
		t.Fatalf("stats: %s", st)
	}
}

// TestWarm precompiles so the first request is a cache hit.
func TestWarm(t *testing.T) {
	var compiles int32
	s := New(Config{}, realCompile(&compiles))
	if err := s.Register("mlp", buildMLP); err != nil {
		t.Fatal(err)
	}
	if err := s.Warm("mlp"); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&compiles); got != 1 {
		t.Fatalf("warm compiled %d times", got)
	}
	in := tensor.RandN(tensor.NewRNG(2), 0.5, 3, 12)
	resp, err := s.Infer(context.Background(), &Request{Model: "mlp", Inputs: []*tensor.Tensor{in}})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Fatal("first request after Warm must hit the cache")
	}
	if resp.Signature == "" {
		t.Fatal("response must carry the symbolic signature")
	}
}

// TestRegisterValidation rejects nil builders and duplicate names.
func TestRegisterValidation(t *testing.T) {
	s := New(Config{}, realCompile(nil))
	if err := s.Register("m", nil); err == nil {
		t.Fatal("nil builder must be rejected")
	}
	if err := s.Register("m", buildMLP); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("m", buildMLP); err == nil {
		t.Fatal("duplicate registration must be rejected")
	}
}
