// Package serve is the concurrent serving runtime layered over the
// shape-generic compiler: the production face of the paper's compilation
// cache. A Server owns
//
//   - a registry of named model builders;
//   - a signature-keyed engine cache — each model compiles once per
//     *symbolic* shape signature (the paper's cache key), and the
//     singleflight compilation cache guarantees a burst of concurrent
//     first requests pays for exactly one compilation;
//   - bounded admission — MaxConcurrent requests execute at once, up to
//     QueueDepth more wait (honouring per-request deadline/cancellation),
//     and anything beyond that is rejected immediately with
//     discerr.ErrQueueFull instead of collapsing under load;
//   - a stats collector exposing requests, cache behaviour, queue depth
//     and p50/p99 simulated latency as a Stats snapshot.
//
// Execution itself is concurrency-safe because exec.RunContext keeps all
// per-run mutable state in a per-call run context; the server simply
// dispatches N goroutines into one cached engine.
package serve

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"godisc/internal/discerr"
	"godisc/internal/exec"
	"godisc/internal/graph"
	"godisc/internal/ral"
	"godisc/internal/symshape"
	"godisc/internal/tensor"
)

// Engine is the executable contract the server dispatches requests to.
// *exec.Executable implements it; tests substitute stubs.
type Engine interface {
	RunContext(ctx context.Context, inputs []*tensor.Tensor) (*exec.Result, error)
}

// CompileFunc lowers a freshly built graph into an Engine. The server
// invokes it at most once per (model, symbolic signature) — under the
// singleflight cache — no matter how many requests race on a cold model.
type CompileFunc func(g *graph.Graph) (Engine, error)

// Config parameterizes admission control.
type Config struct {
	// MaxConcurrent is the number of requests executing at once
	// (default: GOMAXPROCS).
	MaxConcurrent int
	// QueueDepth bounds how many admitted-but-waiting requests may queue
	// (default 64; negative means no queueing — reject when all
	// execution slots are busy).
	QueueDepth int
}

// Request is one inference call.
type Request struct {
	// Model names a registered builder.
	Model string
	// Inputs are the concrete tensors; any shapes consistent with the
	// model's symbolic parameter shapes are accepted.
	Inputs []*tensor.Tensor
}

// Response is the outcome of one admitted, executed request.
type Response struct {
	Outputs []*tensor.Tensor
	// Profile is this request's simulated execution profile.
	Profile *ral.Profiler
	// CacheHit reports whether the engine came from the cache (false
	// exactly for the request that paid for the compilation).
	CacheHit bool
	// Signature is the symbolic cache key the request mapped to.
	Signature string
	// QueueNs is wall time spent waiting for an execution slot.
	QueueNs int64
}

// Server is a concurrency-safe inference frontend over compiled engines.
type Server struct {
	cfg     Config
	compile CompileFunc
	cache   *ral.Cache

	mu     sync.Mutex
	models map[string]*modelEntry

	// sem holds one token per executing request.
	sem chan struct{}

	// closeMu serializes Close against in-flight Infers: every Infer
	// holds the read side for its duration.
	closeMu sync.RWMutex
	closed  bool

	stats *collector
}

// modelEntry is one registered builder plus its lazily computed symbolic
// signature.
type modelEntry struct {
	name    string
	build   func() *graph.Graph
	sigOnce sync.Once
	sig     string
	sigErr  error
}

// signature builds one throwaway graph to derive the symbolic signature
// of the model's parameter shapes — the engine-cache key. Builders are
// deterministic, so the signature is computed once and reused.
func (m *modelEntry) signature() (string, error) {
	m.sigOnce.Do(func() {
		g := m.build()
		if g == nil {
			m.sigErr = fmt.Errorf("serve: model %q: builder returned nil graph", m.name)
			return
		}
		shapes := make([]symshape.Shape, len(g.Params))
		for i, p := range g.Params {
			shapes[i] = p.Shape
		}
		m.sig = g.Ctx.Signature(shapes)
	})
	return m.sig, m.sigErr
}

// New returns a server that compiles engines with the given function.
func New(cfg Config, compile CompileFunc) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	switch {
	case cfg.QueueDepth == 0:
		cfg.QueueDepth = 64
	case cfg.QueueDepth < 0:
		cfg.QueueDepth = 0
	}
	return &Server{
		cfg:     cfg,
		compile: compile,
		cache:   ral.NewCache(),
		models:  map[string]*modelEntry{},
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		stats:   newCollector(),
	}
}

// Register adds a named model builder. Builders must be deterministic
// (same graph, same weights on every call) and are invoked lazily: once
// to derive the signature and once per compiled engine.
func (s *Server) Register(name string, build func() *graph.Graph) error {
	if build == nil {
		return fmt.Errorf("serve: model %q: nil builder", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.models[name]; dup {
		return fmt.Errorf("serve: model %q already registered", name)
	}
	s.models[name] = &modelEntry{name: name, build: build}
	return nil
}

// lookup returns the entry for a model name.
func (s *Server) lookup(name string) (*modelEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.models[name]
	if !ok {
		return nil, fmt.Errorf("serve: unknown model %q", name)
	}
	return m, nil
}

// engine returns the cached engine for a model, compiling under the
// signature-keyed singleflight cache on a cold key. The cache key scopes
// the symbolic signature by model name, since two models with identical
// signatures still differ in weights.
func (s *Server) engine(m *modelEntry) (Engine, string, bool, error) {
	sig, err := m.signature()
	if err != nil {
		return nil, "", false, err
	}
	key := m.name + "@" + sig
	v, hit, err := s.cache.GetOrCompile(key, func() (any, error) {
		eng, err := s.compile(m.build())
		if err != nil {
			return nil, fmt.Errorf("serve: model %q (signature %s): %v: %w",
				m.name, sig, err, discerr.ErrCompileFailed)
		}
		return eng, nil
	})
	if err != nil {
		return nil, sig, hit, err
	}
	return v.(Engine), sig, hit, nil
}

// Warm compiles a model's engine eagerly (outside admission control), so
// the first real request finds a hot cache.
func (s *Server) Warm(model string) error {
	m, err := s.lookup(model)
	if err != nil {
		return err
	}
	_, _, _, err = s.engine(m)
	return err
}

// Infer runs one request end to end: admission, engine lookup/compile,
// execution. It is safe to call from any number of goroutines. Errors
// wrap the discerr sentinels: ErrQueueFull (rejected by admission),
// ErrServerClosed, ErrCompileFailed, ErrShapeMismatch (bad inputs), plus
// ctx.Err() when the request's context expires while queued or mid-run.
func (s *Server) Infer(ctx context.Context, req *Request) (*Response, error) {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	s.stats.request()
	if s.closed {
		s.stats.rejected()
		return nil, fmt.Errorf("serve: %w", discerr.ErrServerClosed)
	}
	m, err := s.lookup(req.Model)
	if err != nil {
		s.stats.failed()
		return nil, err
	}

	queueStart := time.Now()
	release, err := s.admit(ctx)
	if err != nil {
		switch {
		case ctx.Err() != nil:
			s.stats.canceled()
		default:
			s.stats.rejected()
		}
		return nil, err
	}
	defer release()
	queueNs := time.Since(queueStart).Nanoseconds()

	eng, sig, hit, err := s.engine(m)
	if err != nil {
		s.stats.failed()
		return nil, err
	}
	if hit {
		s.stats.cacheHit()
	} else {
		s.stats.cacheMiss()
	}

	res, err := eng.RunContext(ctx, req.Inputs)
	if err != nil {
		if ctx.Err() != nil {
			s.stats.canceled()
			return nil, err
		}
		s.stats.failed()
		return nil, err
	}
	s.stats.completed(res.Profile.SimulatedNs)
	return &Response{
		Outputs:   res.Outputs,
		Profile:   res.Profile,
		CacheHit:  hit,
		Signature: sig,
		QueueNs:   queueNs,
	}, nil
}

// admit acquires an execution slot, queueing up to QueueDepth waiters.
// It returns the release func, or ErrQueueFull / ctx.Err().
func (s *Server) admit(ctx context.Context) (func(), error) {
	// Fast path: a slot is free.
	select {
	case s.sem <- struct{}{}:
		s.stats.running(+1)
		return s.release, nil
	default:
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !s.stats.tryEnqueue(s.cfg.QueueDepth) {
		return nil, fmt.Errorf("serve: %d executing, %d queued: %w",
			s.cfg.MaxConcurrent, s.cfg.QueueDepth, discerr.ErrQueueFull)
	}
	defer s.stats.dequeue()
	select {
	case s.sem <- struct{}{}:
		s.stats.running(+1)
		return s.release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// release frees one execution slot.
func (s *Server) release() {
	<-s.sem
	s.stats.running(-1)
}

// Stats returns a point-in-time snapshot of serving counters.
func (s *Server) Stats() Stats {
	st := s.stats.snapshot()
	_, _, st.Engines = s.cache.Stats()
	return st
}

// Close marks the server closed and waits for in-flight requests to
// drain. Later Infer calls fail with discerr.ErrServerClosed.
func (s *Server) Close() {
	s.closeMu.Lock()
	s.closed = true
	s.closeMu.Unlock()
}
