// Package serve is the concurrent serving runtime layered over the
// shape-generic compiler: the production face of the paper's compilation
// cache. A Server owns
//
//   - a registry of named model builders;
//   - a signature-keyed engine cache — each model compiles once per
//     *symbolic* shape signature (the paper's cache key), and the
//     singleflight compilation cache guarantees a burst of concurrent
//     first requests pays for exactly one compilation;
//   - bounded admission — MaxConcurrent requests execute at once, up to
//     QueueDepth more wait (honouring per-request deadline/cancellation),
//     and anything beyond that is rejected immediately with
//     discerr.ErrQueueFull instead of collapsing under load;
//   - resource governance — priority load shedding, deadline
//     infeasibility rejection and per-model quotas (govern.go), an
//     optional global memory budget enforced by a ral.Governor the
//     engines reserve their footprint against, and a hung-request
//     watchdog that cancels runs exceeding a multiple of their
//     signature's historical latency and recovers them through the
//     interpreter fallback;
//   - a stats collector exposing requests, cache behaviour, queue depth
//     and p50/p99 simulated latency as a Stats snapshot.
//
// Execution itself is concurrency-safe because exec.RunContext keeps all
// per-run mutable state in a per-call run context; the server simply
// dispatches N goroutines into one cached engine.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"godisc/internal/discerr"
	"godisc/internal/enginecache"
	"godisc/internal/exec"
	"godisc/internal/graph"
	"godisc/internal/obs"
	"godisc/internal/ral"
	"godisc/internal/symshape"
	"godisc/internal/tensor"
)

// Engine is the executable contract the server dispatches requests to.
// *exec.Executable implements it; tests substitute stubs.
type Engine interface {
	RunContext(ctx context.Context, inputs []*tensor.Tensor) (*exec.Result, error)
}

// CompileFunc lowers a freshly built graph into an Engine. The server
// invokes it at most once per (model, symbolic signature) — under the
// singleflight cache — no matter how many requests race on a cold model.
type CompileFunc func(g *graph.Graph) (Engine, error)

// Config parameterizes admission control and the resilience policy.
type Config struct {
	// MaxConcurrent is the number of requests executing at once
	// (default: GOMAXPROCS).
	MaxConcurrent int
	// QueueDepth bounds how many admitted-but-waiting requests may queue
	// (default 64; QueueDepthNone — or any negative value — means no
	// queueing: reject when all execution slots are busy).
	QueueDepth int
	// ModelQuotas optionally caps one model's queued+executing occupancy
	// so a hot model cannot starve the rest; requests over quota are
	// rejected with discerr.ErrQuotaExceeded. Unlisted models are
	// unlimited (within MaxConcurrent/QueueDepth).
	ModelQuotas map[string]int

	// MaxBatchSize enables admission-side dynamic batching when > 1: up to
	// MaxBatchSize total rows of concurrently queued requests to the same
	// model — agreeing on dtype and every non-batch dimension — are
	// stacked along the symbolic batch dimension and served by ONE engine
	// run, then scattered back as zero-copy row views. The zero value (or
	// any value ≤ 1) disables batching entirely. Only models whose graphs
	// are provably row-independent coalesce (see batch.go); everything
	// else is served solo, unchanged.
	MaxBatchSize int
	// MaxLinger bounds how long the first request of a batch waits for
	// company before the window flushes (default 2ms when batching is
	// enabled). A request with a deadline never lingers past the point the
	// deadline becomes infeasible, and Interactive requests never linger
	// at all.
	MaxLinger time.Duration

	// MemoryBudgetBytes, when > 0, caps the total pooled-buffer footprint
	// of concurrently executing engine runs: the server builds a
	// ral.Governor (see Governor()) that compile functions thread into
	// exec.Options.Governor, and each run reserves its peak footprint
	// before allocating — waiting for memory to drain or failing with
	// discerr.ErrMemoryBudget. 0 disables governance.
	MemoryBudgetBytes int64

	// WatchdogMultiple, when > 0, arms the hung-request watchdog: an
	// engine run exceeding Multiple × its signature's moving-average wall
	// latency is cancelled (discerr.ErrHungRequest) and recovered through
	// the breaker/fallback path. The limit never drops below
	// WatchdogFloor (default 10ms) and only applies once a signature has
	// latency history. 0 disables the watchdog.
	WatchdogMultiple float64
	// WatchdogFloor is the minimum watchdog limit (default 10ms).
	WatchdogFloor time.Duration

	// MaxRetries bounds re-attempts after a transient failure
	// (discerr.ErrTransient), with jittered exponential backoff between
	// attempts. Default 2; negative disables retries.
	MaxRetries int
	// RetryBackoff is the base delay before the first retry; each
	// further retry doubles it, and each delay is jittered to [d/2, d).
	// Default 1ms.
	RetryBackoff time.Duration
	// BreakerThreshold is the number of consecutive engine failures that
	// quarantines a (model, signature) engine — requests then go straight
	// to the interpreter fallback. Default 3; negative disables the
	// breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before
	// half-opening to admit one probe request. Default 10s.
	BreakerCooldown time.Duration
	// DisableFallback turns off the interpreter fallback: engine
	// failures propagate to the caller instead of being served slowly.
	// For tests and ablations.
	DisableFallback bool

	// Workers is the per-request parallelism of the execution engine:
	// each run schedules independent kernels over the unit DAG and
	// partitions large kernels across up to Workers goroutines (the
	// request's own goroutine included). Default exec.DefaultWorkers()
	// (GODISC_WORKERS or GOMAXPROCS); 1 keeps engines sequential. All
	// engines of a server share ONE worker pool, so helper goroutines are
	// bounded per server — not multiplied per concurrent request.
	Workers int

	// EngineCache, when non-nil, is a persistent engine cache consulted
	// (inside the singleflight) before compiling and populated after each
	// successful compilation, so a restarted server reaches full speed
	// without recompiling anything. Requires DecodeEngine/EncodeEngine to
	// translate between Engines and cache payloads; without codecs the
	// cache is inert.
	EngineCache *enginecache.Cache
	// CacheDir + CacheFingerprint open an EngineCache when one was not
	// provided directly. The fingerprint names the compiler configuration
	// (godisc.NewServer derives it from the compile options); entries from
	// a different fingerprint are quarantined, never served. An unopenable
	// directory disables persistence rather than failing the server — a
	// hostile cache dir must not take serving down.
	CacheDir         string
	CacheFingerprint string
	// DecodeEngine rebuilds an Engine from a persisted cache payload;
	// EncodeEngine serializes one for persistence (engines that do not
	// serialize return an error, which skips the persist).
	DecodeEngine func(payload []byte) (Engine, error)
	EncodeEngine func(e Engine) ([]byte, error)

	// AsyncCompile changes how first-seen signatures are served: instead
	// of stalling the request behind the compiler, the request is answered
	// immediately through the interpreter fallback while a background
	// worker (bounded by CompileWorkers, charged against the memory
	// governor) compiles the engine; once it lands in the cache, later
	// requests run compiled. Persistent-cache entries still load inline —
	// decoding is milliseconds, so only true compilations go async.
	AsyncCompile bool
	// CompileWorkers bounds concurrent background compilations (default 2).
	CompileWorkers int

	// Observer, when non-nil, receives one hierarchical span per Infer
	// call (infer → cache-lookup/compile → exec → kernel/partition →
	// fallback/retry). The exec-layer children only appear when the
	// compiled engines were built with the same hook (exec.Options.Hook);
	// the request span rides the run context so the Engine interface
	// stays unchanged. Nil keeps the request path free of span work.
	Observer obs.Hook
	// Metrics, when non-nil, is the registry the serving counters,
	// latency histograms and queue gauges register on (served by
	// discserve at /metrics). Nil gives the server a private registry so
	// the Stats API works regardless.
	Metrics *obs.Registry
}

// Request is one inference call.
type Request struct {
	// Model names a registered builder.
	Model string
	// Inputs are the concrete tensors; any shapes consistent with the
	// model's symbolic parameter shapes are accepted.
	Inputs []*tensor.Tensor
	// Priority orders this request for admission under overload; the zero
	// value is PriorityBatch. See Priority.
	Priority Priority
}

// Response is the outcome of one admitted, executed request.
type Response struct {
	Outputs []*tensor.Tensor
	// Profile is this request's simulated execution profile.
	Profile *ral.Profiler
	// CacheHit reports whether the engine came from the cache (false
	// exactly for the request that paid for the compilation).
	CacheHit bool
	// Signature is the symbolic cache key the request mapped to.
	Signature string
	// QueueNs is wall time spent waiting for an execution slot.
	QueueNs int64
	// Fallback reports that the compiled engine failed (or was
	// quarantined) and the request was served — correctly but slowly —
	// by the reference interpreter.
	Fallback bool
	// Retries is how many times this request re-attempted its engine
	// after transient failures.
	Retries int
	// Batched reports that this response came from a coalesced engine run
	// shared with other requests; BatchSize is the total stacked batch
	// extent (rows) of that run. Both stay zero on the solo path.
	Batched   bool
	BatchSize int
	// Compiling reports that the signature's engine was not ready and is
	// being built in the background (Config.AsyncCompile): this response
	// came from the interpreter (Fallback is also set), and a later
	// request will find the compiled engine.
	Compiling bool
}

// OutcomeEvent describes the terminal outcome of one Infer call, emitted
// to the hook installed with SetOutcomeHook. The fleet layer uses it to
// drive per-model-version health: with fallback enabled a broken engine's
// failures surface as slow successes, so health must observe the engine
// verdict (Fallback/Hung/BreakerOpened), not just the returned error.
type OutcomeEvent struct {
	// Model is the request's registered model name (the fleet registers
	// "<model>:<version>", so version health can be attributed).
	Model string
	// Err is the error the Infer call returned (nil on success).
	Err error
	// Fallback and Compiling mirror the Response fields: the request was
	// served by the interpreter, and (for Compiling) only because the
	// engine is still being built — not because it failed.
	Fallback  bool
	Compiling bool
	// Hung reports the watchdog cancelled this request's engine run.
	Hung bool
	// BreakerOpened reports this request's failure tripped the engine's
	// circuit breaker open; BreakerShorted reports the request found it
	// already open and short-circuited to fallback.
	BreakerOpened  bool
	BreakerShorted bool
}

// Server is a concurrency-safe inference frontend over compiled engines.
type Server struct {
	cfg     Config
	compile CompileFunc
	cache   *ral.Cache
	// pool is the server-wide execution worker pool shared by every
	// compiled engine (nil when Workers resolves to 1).
	pool *exec.WorkerPool

	mu       sync.Mutex
	models   map[string]*modelEntry
	breakers map[string]*breaker
	closed   bool

	// inflight counts admitted Infer calls; Shutdown waits on it.
	inflight sync.WaitGroup

	// Async compilation state: compileSem bounds concurrent background
	// builds, compiling dedupes per key (under mu), compileWG is joined by
	// Shutdown so no build outlives the server.
	compileSem chan struct{}
	compiling  map[string]struct{}
	compileWG  sync.WaitGroup

	// forceCtx is cancelled by Shutdown when the drain deadline expires,
	// which cancels every in-flight request's derived context.
	forceCtx    context.Context
	forceCancel context.CancelFunc

	// adm owns execution slots and the governance policies (priority
	// shedding, deadline infeasibility, per-model quotas).
	adm *admitter
	// wd is the hung-request watchdog (nil when disabled).
	wd *watchdog
	// gov is the memory governor engines reserve against (nil when
	// MemoryBudgetBytes is 0).
	gov *ral.Governor
	// batch owns the dynamic-batching coalescing windows (nil when
	// MaxBatchSize ≤ 1).
	batch *batcher

	// outcomeHook, when set, receives one OutcomeEvent per Infer call
	// (guarded by mu; see SetOutcomeHook).
	outcomeHook func(OutcomeEvent)

	stats *collector
}

// modelEntry is one registered builder plus its lazily computed symbolic
// signature.
type modelEntry struct {
	name    string
	build   func() *graph.Graph
	sigOnce sync.Once
	sig     string
	sigErr  error
	// batchOnce/binfo cache the batchability analysis (batch.go), derived
	// from one throwaway graph like the signature.
	batchOnce sync.Once
	binfo     batchInfo
}

// signature builds one throwaway graph to derive the symbolic signature
// of the model's parameter shapes — the engine-cache key. Builders are
// deterministic, so the signature is computed once and reused.
func (m *modelEntry) signature() (string, error) {
	m.sigOnce.Do(func() {
		g := m.build()
		if g == nil {
			m.sigErr = fmt.Errorf("serve: model %q: builder returned nil graph", m.name)
			return
		}
		shapes := make([]symshape.Shape, len(g.Params))
		for i, p := range g.Params {
			shapes[i] = p.Shape
		}
		m.sig = g.Ctx.Signature(shapes)
	})
	return m.sig, m.sigErr
}

// New returns a server that compiles engines with the given function.
func New(cfg Config, compile CompileFunc) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	switch {
	case cfg.QueueDepth == 0:
		cfg.QueueDepth = 64
	case cfg.QueueDepth < 0:
		cfg.QueueDepth = 0
	}
	switch {
	case cfg.MaxRetries == 0:
		cfg.MaxRetries = 2
	case cfg.MaxRetries < 0:
		cfg.MaxRetries = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = time.Millisecond
	}
	switch {
	case cfg.BreakerThreshold == 0:
		cfg.BreakerThreshold = 3
	case cfg.BreakerThreshold < 0:
		cfg.BreakerThreshold = 0 // disabled
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 10 * time.Second
	}
	if cfg.Workers <= 0 {
		cfg.Workers = exec.DefaultWorkers()
	}
	if cfg.MaxBatchSize > 1 && cfg.MaxLinger <= 0 {
		cfg.MaxLinger = lingerDefault
	}
	if cfg.CompileWorkers <= 0 {
		cfg.CompileWorkers = 2
	}
	if cfg.EngineCache == nil && cfg.CacheDir != "" && cfg.CacheFingerprint != "" {
		// Best effort: an unopenable cache dir disables persistence, it
		// must not take the server down.
		if ec, err := enginecache.Open(cfg.CacheDir, cfg.CacheFingerprint); err == nil {
			cfg.EngineCache = ec
		}
	}
	cfg.EngineCache.SetMetrics(cfg.Metrics)
	var pool *exec.WorkerPool
	if cfg.Workers > 1 {
		pool = exec.NewWorkerPool(cfg.Workers)
	}
	forceCtx, forceCancel := context.WithCancel(context.Background())
	stats := newCollector(cfg.Metrics)
	s := &Server{
		cfg:         cfg,
		compile:     compile,
		cache:       ral.NewCache(),
		pool:        pool,
		models:      map[string]*modelEntry{},
		breakers:    map[string]*breaker{},
		compileSem:  make(chan struct{}, cfg.CompileWorkers),
		compiling:   map[string]struct{}{},
		forceCtx:    forceCtx,
		forceCancel: forceCancel,
		adm:         newAdmitter(cfg, stats),
		wd:          newWatchdog(cfg.WatchdogMultiple, cfg.WatchdogFloor),
		gov:         ral.NewGovernor(cfg.MemoryBudgetBytes),
		stats:       stats,
	}
	s.gov.Observe(cfg.Metrics)
	if cfg.MaxBatchSize > 1 {
		s.batch = newBatcher(s)
	}
	return s
}

// Governor returns the server's memory governor (nil when
// MemoryBudgetBytes is 0). Compile functions thread it into
// exec.Options.Governor so every engine run reserves its footprint
// against the shared budget.
func (s *Server) Governor() *ral.Governor { return s.gov }

// WorkerPool returns the server-wide execution worker pool that every
// compiled engine should share, or nil when the server is configured
// sequential (Workers: 1). Compile functions thread it into
// exec.Options.WorkerPool so concurrent requests multiplex one bounded
// set of helper goroutines instead of spawning Workers-1 each.
func (s *Server) WorkerPool() *exec.WorkerPool { return s.pool }

// SetOutcomeHook installs fn to receive one OutcomeEvent per Infer call,
// after the request fully resolves. The hook runs on the request
// goroutine, so it must be fast and must not call back into the server.
// A nil fn uninstalls the hook. Safe to call concurrently with traffic.
func (s *Server) SetOutcomeHook(fn func(OutcomeEvent)) {
	s.mu.Lock()
	s.outcomeHook = fn
	s.mu.Unlock()
}

// emitOutcome delivers ev to the installed hook, if any.
func (s *Server) emitOutcome(ev OutcomeEvent) {
	s.mu.Lock()
	fn := s.outcomeHook
	s.mu.Unlock()
	if fn != nil {
		fn(ev)
	}
}

// EngineCache returns the persistent engine cache the server serves from,
// or nil when engine persistence is disabled. Callers may Scan it at
// startup to report cache health before taking traffic.
func (s *Server) EngineCache() *enginecache.Cache { return s.cfg.EngineCache }

// Register adds a named model builder. Builders must be deterministic
// (same graph, same weights on every call) and are invoked lazily: once
// to derive the signature and once per compiled engine.
func (s *Server) Register(name string, build func() *graph.Graph) error {
	if build == nil {
		return fmt.Errorf("serve: model %q: nil builder", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.models[name]; dup {
		return fmt.Errorf("serve: model %q already registered", name)
	}
	s.models[name] = &modelEntry{name: name, build: build}
	return nil
}

// lookup returns the entry for a model name.
func (s *Server) lookup(name string) (*modelEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.models[name]
	if !ok {
		return nil, fmt.Errorf("serve: unknown model %q", name)
	}
	return m, nil
}

// engine returns the cached engine for a model, compiling under the
// signature-keyed singleflight cache on a cold key. The cache key scopes
// the symbolic signature by model name, since two models with identical
// signatures still differ in weights. The whole lookup runs under a
// `cache-lookup` child of sp (nil when observability is off), with a
// `compile` grandchild exactly when this call pays for the compilation.
//
// On success the entry is pinned against eviction (the fleet layer's LRU
// must never remove an engine mid-run); the returned unpin must be called
// exactly once, as soon as the run completes. unpin is nil on error.
func (s *Server) engine(m *modelEntry, sp *obs.Span) (Engine, string, bool, func(), error) {
	sig, err := m.signature()
	if err != nil {
		return nil, "", false, nil, err
	}
	lsp := sp.Child("cache-lookup", obs.A("signature", sig))
	defer lsp.End()
	key := m.name + "@" + sig
	v, hit, err := s.cache.AcquireOrCompile(key, func() (any, error) {
		return s.buildEngine(m, sig, key, nil, lsp)
	})
	lsp.SetAttr("hit", fmt.Sprintf("%t", hit))
	if err != nil {
		return nil, sig, hit, nil, err
	}
	return v.(Engine), sig, hit, func() { s.cache.Unpin(key) }, nil
}

// buildEngine resolves an engine that is not in memory: the persistent
// cache first (a decode, not a compile), the compiler second — persisting
// the fresh engine for the next process. Runs inside the singleflight, so
// at most once per key at a time. g, when non-nil, is a pre-built graph
// the compile may consume (the async path builds one for its footprint
// estimate); nil means build fresh.
func (s *Server) buildEngine(m *modelEntry, sig, key string, g *graph.Graph, sp *obs.Span) (any, error) {
	if eng := s.loadPersisted(m, key, sp); eng != nil {
		return eng, nil
	}
	csp := sp.Child("compile", obs.A("signature", sig))
	defer csp.End()
	s.stats.compilation()
	if g == nil {
		g = m.build()
	}
	eng, err := s.compile(g)
	if err != nil {
		return nil, fmt.Errorf("serve: model %q (signature %s): %v: %w",
			m.name, sig, err, discerr.ErrCompileFailed)
	}
	s.persistEngine(m, key, eng)
	return eng, nil
}

// loadPersisted tries the persistent engine cache. Every failure mode —
// no cache, no codec, miss, corruption (quarantined by the cache),
// fingerprint mismatch, a payload that will not decode — returns nil:
// the caller compiles. A valid entry also pre-seeds the model's
// batchability verdict so a warm restart skips that analysis too.
func (s *Server) loadPersisted(m *modelEntry, key string, sp *obs.Span) Engine {
	ec, dec := s.cfg.EngineCache, s.cfg.DecodeEngine
	if ec == nil || dec == nil {
		return nil
	}
	ent, _ := ec.Load(key) // nil entry covers every failure; error is diagnostic
	if ent == nil {
		return nil
	}
	eng, err := dec(ent.Payload)
	if err != nil {
		// Checksum passed but the image didn't decode: a compiler change
		// the fingerprint failed to capture. Recompiling overwrites it.
		sp.SetAttr("decode_error", err.Error())
		return nil
	}
	if ent.BatchKnown {
		m.batchOnce.Do(func() {
			m.binfo = batchInfo{ok: ent.Batchable, reason: ent.BatchReason, maxRows: ent.BatchMaxRows}
		})
	}
	sp.SetAttr("persisted", "true")
	return eng
}

// persistEngine writes a freshly compiled engine to the persistent cache,
// best effort: an engine that does not serialize (test stubs) or a failed
// write (full disk, injected fault) is simply not persisted — the entry
// slot stays empty or keeps its previous content.
func (s *Server) persistEngine(m *modelEntry, key string, eng Engine) {
	ec, enc := s.cfg.EngineCache, s.cfg.EncodeEngine
	if ec == nil || enc == nil {
		return
	}
	payload, err := enc(eng)
	if err != nil || payload == nil {
		return
	}
	info := m.batchable()
	_ = ec.Persist(&enginecache.Entry{
		Key:          key,
		BatchKnown:   true,
		Batchable:    info.ok,
		BatchReason:  info.reason,
		BatchMaxRows: info.maxRows,
		Payload:      payload,
	})
}

// engineFast resolves an engine without ever blocking on a compilation:
// the in-memory cache, then an inline load from the persistent cache
// (decoding is milliseconds, not a compile). ready=false means no engine
// exists yet anywhere — the caller kicks a background compile and serves
// the request through the interpreter. A ready engine comes back pinned
// against eviction; unpin must be called once the run completes (nil when
// not ready).
func (s *Server) engineFast(m *modelEntry, sig, key string, sp *obs.Span) (eng Engine, hit, ready bool, unpin func()) {
	lsp := sp.Child("cache-lookup", obs.A("signature", sig), obs.A("async", "true"))
	defer lsp.End()
	if v, ok := s.cache.AcquirePeek(key); ok {
		lsp.SetAttr("hit", "true")
		return v.(Engine), true, true, func() { s.cache.Unpin(key) }
	}
	lsp.SetAttr("hit", "false")
	if eng := s.loadPersisted(m, key, lsp); eng != nil {
		// Put is first-binding-wins, so re-acquire what actually landed:
		// a racing loader's engine may have won the slot.
		s.cache.Put(key, eng)
		if v, ok := s.cache.AcquirePeek(key); ok {
			return v.(Engine), false, true, func() { s.cache.Unpin(key) }
		}
		// Evicted between Put and pin (vanishingly rare): serve this
		// request on the just-decoded engine without a pin — nothing
		// references the cache entry, so eviction cannot invalidate it.
		return eng, false, true, func() {}
	}
	return nil, false, false, nil
}

// compileAsync launches (at most one per key) a background build of an
// engine: persistent-cache load or full compilation under the in-memory
// singleflight, bounded by the compile-worker semaphore, charged against
// the memory governor for the constants the engine will hold resident,
// and drained by Shutdown. Failures feed the signature's circuit breaker
// exactly like request-path compile failures, so a signature that cannot
// compile quarantines instead of re-compiling on every request.
func (s *Server) compileAsync(m *modelEntry, sig, key string) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if _, dup := s.compiling[key]; dup {
		s.mu.Unlock()
		return
	}
	s.compiling[key] = struct{}{}
	s.compileWG.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.compileWG.Done()
		defer func() {
			s.mu.Lock()
			delete(s.compiling, key)
			s.mu.Unlock()
		}()
		select {
		case s.compileSem <- struct{}{}:
		case <-s.forceCtx.Done():
			return
		}
		defer func() { <-s.compileSem }()
		s.stats.compileInflight(1)
		defer s.stats.compileInflight(-1)
		var sp *obs.Span
		if s.cfg.Observer != nil {
			sp = s.cfg.Observer.StartSpan("compile-async",
				obs.A("model", m.name), obs.A("signature", sig))
			defer sp.End()
		}
		// Reserve the engine's resident constant bytes against the memory
		// governor while compiling, so a storm of first-seen signatures
		// cannot blow the budget; released once the engine is cached (its
		// runs reserve their own footprints).
		g := m.build()
		if s.gov != nil && g != nil {
			if est := graphConstBytes(g); est > 0 {
				release, err := s.gov.Reserve(s.forceCtx, est)
				if err != nil {
					// Budget pressure: drop this attempt; the next request
					// for the signature re-kicks the compile.
					sp.SetAttr("error", err.Error())
					return
				}
				defer release()
			}
		}
		_, _, err := s.cache.GetOrCompile(key, func() (any, error) {
			return s.buildEngine(m, sig, key, g, sp)
		})
		if err != nil {
			sp.SetAttr("error", err.Error())
			if br := s.breakerFor(key); br.failure(time.Now()) {
				s.stats.breakerOpened()
			}
		}
	}()
}

// graphConstBytes sums the constant payload bytes of a graph — the
// compile-time memory estimate charged to the governor by compileAsync.
func graphConstBytes(g *graph.Graph) int64 {
	var n int64
	for _, nd := range g.Nodes() {
		if nd.Lit != nil {
			n += int64(nd.Lit.Bytes())
		}
	}
	return n
}

// Warm compiles a model's engine eagerly (outside admission control), so
// the first real request finds a hot cache.
func (s *Server) Warm(model string) error {
	m, err := s.lookup(model)
	if err != nil {
		return err
	}
	_, _, _, unpin, err := s.engine(m, nil)
	if unpin != nil {
		unpin()
	}
	return err
}

// Infer runs one request end to end: admission, engine lookup/compile,
// execution — with the resilience policy wrapped around the engine. It is
// safe to call from any number of goroutines.
//
// Failure handling, in order:
//
//   - Transient errors (discerr.ErrTransient — e.g. a RAL allocation
//     hiccup, injected or real) are retried up to MaxRetries times with
//     jittered exponential backoff.
//   - Compile failures, recovered kernel panics (discerr.ErrKernelPanic)
//     and exhausted transient retries count against the engine's circuit
//     breaker and — unless DisableFallback — the request is re-executed
//     through the shape-generic reference interpreter: it succeeds,
//     slowly, and FallbackRuns is recorded.
//   - BreakerThreshold consecutive failures quarantine the
//     (model, signature) engine: requests short-circuit to fallback
//     (discerr.ErrEngineQuarantined classifies the cause) until the
//     cooldown elapses and a half-open probe closes the breaker again.
//   - Shape mismatches and unknown models are the caller's fault: they
//     propagate immediately with no retry, breaker penalty, or fallback.
//
// Governance, before any of the above:
//
//   - Admission applies the priority/deadline/quota policy: queue-full
//     rejections and priority sheds wrap ErrQueueFull, provably late
//     requests ErrDeadlineInfeasible, over-quota models ErrQuotaExceeded.
//   - A run that trips the memory governor's budget fails with
//     ErrMemoryBudget and propagates immediately — it is load shedding,
//     not an engine fault, so no retry, breaker penalty or fallback.
//   - The watchdog cancels a run exceeding its signature's historical
//     latency envelope (ErrHungRequest) and recovers it through the
//     normal breaker/fallback path.
//
// Errors wrap the discerr sentinels: ErrQueueFull (rejected by
// admission), ErrDeadlineInfeasible, ErrQuotaExceeded, ErrMemoryBudget,
// ErrHungRequest, ErrServerClosed, ErrCompileFailed, ErrShapeMismatch,
// ErrKernelPanic, ErrTransient, ErrEngineQuarantined, plus ctx.Err() when
// the request's context expires while queued or mid-run.
func (s *Server) Infer(ctx context.Context, req *Request) (resp *Response, retErr error) {
	s.stats.request()
	// One outcome event per request, fired after the result is final —
	// the fleet's rollout controller keys per-version health off it.
	outcome := OutcomeEvent{Model: req.Model}
	defer func() {
		outcome.Err = retErr
		if resp != nil {
			outcome.Fallback = resp.Fallback
			outcome.Compiling = resp.Compiling
		}
		s.emitOutcome(outcome)
	}()
	// Root span of this request's trace. When no Observer is configured
	// sp stays nil and every span call below is one nil branch.
	var sp *obs.Span
	if s.cfg.Observer != nil {
		elems := 0
		for _, in := range req.Inputs {
			elems += in.Numel()
		}
		attrs := []obs.Attr{
			obs.A("model", req.Model), obs.A("shape_bucket", obs.ShapeBucket(elems)),
		}
		// Nest under a caller-provided span (the fleet HTTP front-end puts
		// its request span on the context) so HTTP traces contain the full
		// infer → exec tree; otherwise this is the trace root.
		if parent := obs.SpanFromContext(ctx); parent != nil {
			sp = parent.Child("infer", attrs...)
		} else {
			sp = s.cfg.Observer.StartSpan("infer", attrs...)
		}
		defer func() {
			if retErr != nil {
				sp.SetAttr("error", retErr.Error())
			} else if resp != nil {
				sp.SetAttr("cache_hit", fmt.Sprintf("%t", resp.CacheHit))
				if resp.Fallback {
					sp.SetAttr("fallback", "true")
				}
			}
			sp.End()
		}()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.stats.rejected()
		return nil, fmt.Errorf("serve: %w", discerr.ErrServerClosed)
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	defer s.inflight.Done()

	// Derive the request context so Shutdown's force-cancel reaches
	// every in-flight request.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := context.AfterFunc(s.forceCtx, cancel)
	defer stop()

	m, err := s.lookup(req.Model)
	if err != nil {
		s.stats.failed()
		return nil, err
	}

	// Dynamic batching: non-Interactive requests to a provably
	// row-independent model may coalesce with concurrent same-layout
	// requests into one engine run (batch.go). handled=true means the
	// batch path resolved the request (success, or context expiry while
	// lingering); otherwise it falls through to the solo path below —
	// including every batch-side failure, so retries, breaker accounting
	// and fallback happen exactly once per request, here.
	if s.batch != nil && req.Priority < PriorityInteractive {
		if resp, berr, handled := s.batch.join(ctx, sp, m, req); handled {
			return resp, berr
		}
	}

	queueStart := time.Now()
	qsp := sp.Child("admit", obs.A("priority", req.Priority.String()))
	release, err := s.adm.admit(ctx, m.name, req.Priority)
	qsp.End()
	if err != nil {
		// The admitter pre-counts its own rejections by reason; context
		// expiry while queued is the only outcome classified here.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s.stats.canceled()
		}
		return nil, err
	}
	defer release()
	queueNs := time.Since(queueStart).Nanoseconds()

	sig, err := m.signature()
	if err != nil {
		s.stats.failed()
		return nil, err
	}
	key := m.name + "@" + sig
	br := s.breakerFor(key)
	if !br.allow(time.Now()) {
		s.stats.breakerShorted()
		outcome.BreakerShorted = true
		cause := fmt.Errorf("serve: model %q (signature %s): %w", m.name, sig, discerr.ErrEngineQuarantined)
		return s.finish(s.fallback(ctx, sp, m, req, sig, queueNs, 0, cause))
	}

	var lastErr error
	retries := 0
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			retries++
			s.stats.retry()
			rsp := sp.Child("retry", obs.A("attempt", fmt.Sprintf("%d", attempt)))
			err := s.backoff(ctx, attempt)
			rsp.End()
			if err != nil {
				s.stats.canceled()
				return nil, err
			}
		}
		var eng Engine
		var hit bool
		var unpin func()
		var err error
		if s.cfg.AsyncCompile && !s.cfg.DisableFallback {
			var ready bool
			eng, hit, ready, unpin = s.engineFast(m, sig, key, sp)
			if !ready {
				// First-seen signature: kick the background build and
				// answer now through the interpreter — the request never
				// stalls behind the compiler.
				s.compileAsync(m, sig, key)
				s.stats.cacheMiss()
				resp, ferr := s.fallback(ctx, sp, m, req, sig, queueNs, retries, nil)
				if resp != nil {
					resp.Compiling = true
				}
				return s.finish(resp, ferr)
			}
		} else {
			eng, _, hit, unpin, err = s.engine(m, sp)
		}
		if err != nil {
			lastErr = err
			if errors.Is(err, discerr.ErrTransient) && attempt < s.cfg.MaxRetries && ctx.Err() == nil {
				continue
			}
			break
		}
		if hit {
			s.stats.cacheHit()
		} else {
			s.stats.cacheMiss()
		}

		// Run the engine under the watchdog: once the signature has
		// latency history, a run exceeding WatchdogMultiple × its moving
		// average is cancelled with cause ErrHungRequest and recovered
		// through the breaker/fallback path below.
		runStart := time.Now()
		rctx := obs.ContextWithSpan(ctx, sp)
		var wdCancel context.CancelCauseFunc
		var wdTimer *time.Timer
		if lim, armed := s.wd.limit(key); armed {
			var wc context.Context
			wc, wdCancel = context.WithCancelCause(rctx)
			cancelCause, limit := wdCancel, lim
			wdTimer = time.AfterFunc(lim, func() {
				cancelCause(fmt.Errorf("serve: run exceeded watchdog limit %v: %w",
					limit, discerr.ErrHungRequest))
			})
			rctx = wc
		}
		res, err := runEngine(rctx, eng, req.Inputs)
		// The pin window is acquire → run complete: everything below only
		// classifies the outcome, so eviction is safe again from here.
		unpin()
		hung := false
		if wdCancel != nil {
			wdTimer.Stop()
			hung = errors.Is(context.Cause(rctx), discerr.ErrHungRequest)
			wdCancel(nil)
		}
		wall := time.Since(runStart)
		if err == nil {
			// Healthy compiled runs feed both the admission-time cost
			// estimator and the signature's watchdog envelope.
			s.adm.est.observe(wall)
			s.wd.observe(key, wall)
			br.success()
			s.stats.completed(res.Profile.SimulatedNs)
			s.stats.observeSignature(m.name, sig, res.Profile.SimulatedNs)
			return &Response{
				Outputs:   res.Outputs,
				Profile:   res.Profile,
				CacheHit:  hit,
				Signature: sig,
				QueueNs:   queueNs,
				Retries:   retries,
			}, nil
		}
		if hung && ctx.Err() == nil {
			s.stats.watchdogFired()
			outcome.Hung = true
			lastErr = fmt.Errorf("serve: model %q (signature %s): run cancelled by watchdog after %v: %w",
				m.name, sig, wall, discerr.ErrHungRequest)
			break // hung engines go to the breaker + fallback, not retry
		}
		if ctx.Err() != nil {
			s.stats.canceled()
			return nil, err
		}
		if errors.Is(err, discerr.ErrShapeMismatch) {
			// The caller's inputs are invalid; the engine is fine.
			s.stats.failed()
			return nil, err
		}
		if errors.Is(err, discerr.ErrMemoryBudget) {
			// Budget pressure is load shedding, not an engine fault: no
			// retry, no breaker penalty, and no fallback (the interpreter
			// would allocate the same buffers).
			s.stats.memoryRejected()
			return nil, err
		}
		lastErr = err
		if errors.Is(err, discerr.ErrKernelPanic) {
			s.stats.kernelPanic()
			break // a panicking kernel may be deterministic: don't retry
		}
		if errors.Is(err, discerr.ErrTransient) && attempt < s.cfg.MaxRetries {
			continue
		}
		break
	}

	if br.failure(time.Now()) {
		s.stats.breakerOpened()
		outcome.BreakerOpened = true
	}
	return s.finish(s.fallback(ctx, sp, m, req, sig, queueNs, retries, lastErr))
}

// finish translates a fallback outcome into the final stats bucket.
func (s *Server) finish(resp *Response, err error) (*Response, error) {
	if err == nil {
		return resp, nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		s.stats.canceled()
	} else {
		s.stats.failed()
	}
	return nil, err
}

// runEngine invokes the engine with panic isolation: a panicking kernel
// (or engine implementation) becomes an error wrapping
// discerr.ErrKernelPanic instead of killing the process. exec.Executable
// recovers its own panics too; this guards non-exec Engine
// implementations as a second line.
func runEngine(ctx context.Context, eng Engine, inputs []*tensor.Tensor) (res *exec.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("serve: engine panicked: %v: %w", r, discerr.ErrKernelPanic)
		}
	}()
	return eng.RunContext(ctx, inputs)
}

// breakerFor returns (lazily creating) the circuit breaker for an engine
// key, or nil when breakers are disabled.
func (s *Server) breakerFor(key string) *breaker {
	if s.cfg.BreakerThreshold <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.breakers[key]
	if !ok {
		b = newBreaker(s.cfg.BreakerThreshold, s.cfg.BreakerCooldown)
		s.breakers[key] = b
	}
	return b
}

// backoff sleeps the jittered exponential delay before retry `attempt`
// (1-based), honouring cancellation.
func (s *Server) backoff(ctx context.Context, attempt int) error {
	d := s.cfg.RetryBackoff << (attempt - 1)
	if max := 250 * time.Millisecond; d > max {
		d = max
	}
	// Jitter into [d/2, d) so synchronized failures don't retry in
	// lockstep.
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// fallbackNodeNs is the per-op host overhead charged to fallback runs:
// interpreter dispatch is framework-speed, not compiled-speed, which is
// exactly the degradation the paper's framework fallback accepts.
const fallbackNodeNs = 25000

// fallback serves the request through the shape-generic reference
// interpreter — the paper's framework-fallback path. The request
// succeeds with correct outputs but pays eager per-op dispatch costs;
// `cause` records why the compiled path was abandoned.
func (s *Server) fallback(ctx context.Context, sp *obs.Span, m *modelEntry, req *Request, sig string, queueNs int64, retries int, cause error) (*Response, error) {
	if s.cfg.DisableFallback {
		return nil, cause
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	fsp := sp.Child("fallback")
	if fsp != nil && cause != nil {
		fsp.SetAttr("cause", cause.Error())
	}
	defer fsp.End()
	g := m.build()
	outs, err := graph.EvaluateContext(ctx, g, req.Inputs)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			// Cancelled (or force-drained) mid-interpretation: classify as
			// a context outcome, not a fallback failure.
			return nil, ctxErr
		}
		return nil, fmt.Errorf("serve: fallback for %q also failed: %v (compiled path: %w)", m.name, err, cause)
	}
	prof := ral.NewProfiler()
	prof.Host(float64(len(g.Toposort())) * fallbackNodeNs)
	s.stats.fallback(prof.SimulatedNs)
	s.stats.observeSignature(m.name, sig, prof.SimulatedNs)
	return &Response{
		Outputs:   outs,
		Profile:   prof,
		Signature: sig,
		QueueNs:   queueNs,
		Fallback:  true,
		Retries:   retries,
	}, nil
}

// Stats returns a point-in-time snapshot of serving counters.
func (s *Server) Stats() Stats {
	st := s.stats.snapshot()
	_, _, st.Engines = s.cache.Stats()
	if ec := s.cfg.EngineCache; ec != nil {
		ecs := ec.Stats()
		st.EngineLoads = ecs.Hits
		st.EnginePersists = ecs.Persists
		st.EngineCorrupt = ecs.Corrupt
		st.EngineMismatch = ecs.Mismatch
	}
	if s.gov != nil {
		gs := s.gov.Stats()
		st.MemBudgetBytes = gs.BudgetBytes
		st.MemReservedBytes = gs.ReservedBytes
		st.MemHighWaterBytes = gs.HighWaterBytes
		st.MemWaits = gs.Waits
	}
	return st
}

// Shutdown gracefully drains the server: it stops admitting new requests
// (late Infer calls fail with discerr.ErrServerClosed), waits for
// in-flight requests to finish, and — if ctx expires first — force-cancels
// them, then waits for them to unwind and release their resources. It
// returns nil on a clean drain or ctx.Err() when the deadline forced
// cancellation. Safe to call multiple times and from multiple goroutines.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		// Background compiles are drained too: a build must not race the
		// process teardown (a half-written cache entry is recoverable, but
		// there is no reason to create one on a clean shutdown).
		s.compileWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Deadline expired: cancel every in-flight request's context and
		// wait for them to unwind (cancellation is observed between
		// kernel launches, so this is prompt) — buffers must be back in
		// their pools before we return.
		s.forceCancel()
		<-done
		return ctx.Err()
	}
}

// Close is Shutdown with no deadline: it blocks until every in-flight
// request has drained. Later Infer calls fail with discerr.ErrServerClosed.
func (s *Server) Close() {
	s.Shutdown(context.Background())
}
