package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"godisc/internal/device"
	"godisc/internal/discerr"
	"godisc/internal/exec"
	"godisc/internal/fusion"
	"godisc/internal/graph"
	"godisc/internal/opt"
	"godisc/internal/tensor"
)

// TestPrioritySheddingEvictsLowest: with the queue full, an arriving
// higher-priority request evicts the lowest-priority waiter instead of
// being rejected; the victim's error still wraps ErrQueueFull.
func TestPrioritySheddingEvictsLowest(t *testing.T) {
	stub := &stubEngine{started: make(chan struct{}, 8), release: make(chan struct{})}
	s := stubServer(t, Config{MaxConcurrent: 1, QueueDepth: 1}, stub)
	defer close(stub.release)

	in, _ := mlpInput(t, 2)
	req := func(p Priority) *Request {
		return &Request{Model: "m", Inputs: []*tensor.Tensor{in}, Priority: p}
	}

	// Occupy the slot, then queue a best-effort request.
	running := make(chan error, 1)
	go func() { _, err := s.Infer(context.Background(), req(PriorityBatch)); running <- err }()
	<-stub.started
	shedErr := make(chan error, 1)
	go func() { _, err := s.Infer(context.Background(), req(PriorityBestEffort)); shedErr <- err }()
	waitFor(t, "best-effort queued", func() bool { return s.Stats().QueueDepth == 1 })

	// An interactive arrival must evict it.
	interactive := make(chan error, 1)
	go func() { _, err := s.Infer(context.Background(), req(PriorityInteractive)); interactive <- err }()

	err := <-shedErr
	if !errors.Is(err, discerr.ErrQueueFull) {
		t.Fatalf("shed victim error = %v, want ErrQueueFull", err)
	}
	stub.release <- struct{}{} // finish the running request
	if err := <-running; err != nil {
		t.Fatalf("running request: %v", err)
	}
	stub.release <- struct{}{} // let the interactive request run
	if err := <-interactive; err != nil {
		t.Fatalf("interactive request: %v", err)
	}
	st := s.Stats()
	if st.Shed != 1 {
		t.Fatalf("Shed = %d, want 1", st.Shed)
	}
	if st.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1 (the shed victim)", st.Rejected)
	}
	s.Close()
}

// TestGrantOrderByPriority: freed slots go to the highest-priority waiter,
// not FIFO across classes.
func TestGrantOrderByPriority(t *testing.T) {
	stub := &stubEngine{started: make(chan struct{}, 8), release: make(chan struct{})}
	s := stubServer(t, Config{MaxConcurrent: 1, QueueDepth: 3}, stub)

	in, _ := mlpInput(t, 2)
	var mu sync.Mutex
	var order []Priority
	launch := func(p Priority) {
		go func() {
			_, err := s.Infer(context.Background(),
				&Request{Model: "m", Inputs: []*tensor.Tensor{in}, Priority: p})
			if err != nil {
				t.Errorf("priority %v: %v", p, err)
				return
			}
			mu.Lock()
			order = append(order, p)
			mu.Unlock()
		}()
	}

	launch(PriorityBatch) // occupies the slot
	<-stub.started
	// Queue worst-first so FIFO would be wrong.
	launch(PriorityBestEffort)
	waitFor(t, "queue=1", func() bool { return s.Stats().QueueDepth == 1 })
	launch(PriorityBatch)
	waitFor(t, "queue=2", func() bool { return s.Stats().QueueDepth == 2 })
	launch(PriorityInteractive)
	waitFor(t, "queue=3", func() bool { return s.Stats().QueueDepth == 3 })

	for i := 0; i < 4; i++ {
		stub.release <- struct{}{}
		n := i + 1
		waitFor(t, "completion", func() bool { mu.Lock(); defer mu.Unlock(); return len(order) == n })
	}
	want := []Priority{PriorityBatch, PriorityInteractive, PriorityBatch, PriorityBestEffort}
	mu.Lock()
	defer mu.Unlock()
	for i, p := range want {
		if order[i] != p {
			t.Fatalf("completion order %v, want %v", order, want)
		}
	}
	s.Close()
}

// TestModelQuota: a model at its concurrency quota rejects with
// ErrQuotaExceeded while other models are unaffected.
func TestModelQuota(t *testing.T) {
	stub := &stubEngine{started: make(chan struct{}, 8), release: make(chan struct{})}
	s := New(Config{MaxConcurrent: 4, ModelQuotas: map[string]int{"hot": 1}},
		func(*graph.Graph) (Engine, error) { return stub, nil })
	for _, name := range []string{"hot", "cold"} {
		if err := s.Register(name, buildMLP); err != nil {
			t.Fatal(err)
		}
		if err := s.Warm(name); err != nil {
			t.Fatal(err)
		}
	}
	in, _ := mlpInput(t, 2)

	done := make(chan error, 1)
	go func() {
		_, err := s.Infer(context.Background(), &Request{Model: "hot", Inputs: []*tensor.Tensor{in}})
		done <- err
	}()
	<-stub.started

	_, err := s.Infer(context.Background(), &Request{Model: "hot", Inputs: []*tensor.Tensor{in}})
	if !errors.Is(err, discerr.ErrQuotaExceeded) {
		t.Fatalf("second hot request: %v, want ErrQuotaExceeded", err)
	}
	// The other model still has the three remaining slots.
	coldDone := make(chan error, 1)
	go func() {
		_, err := s.Infer(context.Background(), &Request{Model: "cold", Inputs: []*tensor.Tensor{in}})
		coldDone <- err
	}()
	<-stub.started
	stub.release <- struct{}{}
	stub.release <- struct{}{}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := <-coldDone; err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.QuotaRejections != 1 || st.Rejected != 1 {
		t.Fatalf("quota=%d rejected=%d, want 1/1", st.QuotaRejections, st.Rejected)
	}
	s.Close()
}

// TestDeadlineInfeasibleRejection: once the latency estimator has
// samples, a queued-behind request whose remaining deadline is below the
// estimate is rejected up front instead of timing out later.
func TestDeadlineInfeasibleRejection(t *testing.T) {
	block := make(chan struct{})
	var blocked atomic.Bool
	eng := engineFunc(func(ctx context.Context, _ []*tensor.Tensor) (*exec.Result, error) {
		if blocked.Load() {
			select {
			case <-block:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return okResult()
		}
		time.Sleep(20 * time.Millisecond)
		return okResult()
	})
	s := New(Config{MaxConcurrent: 1, QueueDepth: 4},
		func(*graph.Graph) (Engine, error) { return eng, nil })
	if err := s.Register("m", buildMLP); err != nil {
		t.Fatal(err)
	}
	in, _ := mlpInput(t, 2)

	// Seed the estimator: estMinSamples successful ~20ms runs.
	for i := 0; i < estMinSamples; i++ {
		if _, err := s.Infer(context.Background(), &Request{Model: "m", Inputs: []*tensor.Tensor{in}}); err != nil {
			t.Fatal(err)
		}
	}

	// Occupy the slot, then offer a request that cannot make its deadline
	// (estimate ≈ 2×20ms; deadline 5ms).
	blocked.Store(true)
	done := make(chan error, 1)
	go func() {
		_, err := s.Infer(context.Background(), &Request{Model: "m", Inputs: []*tensor.Tensor{in}})
		done <- err
	}()
	waitFor(t, "slot occupied", func() bool { return s.Stats().InFlight == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := s.Infer(ctx, &Request{Model: "m", Inputs: []*tensor.Tensor{in}})
	if !errors.Is(err, discerr.ErrDeadlineInfeasible) {
		t.Fatalf("tight-deadline request: %v, want ErrDeadlineInfeasible", err)
	}

	// A request with a generous deadline still queues normally.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	ok2 := make(chan error, 1)
	go func() {
		_, err := s.Infer(ctx2, &Request{Model: "m", Inputs: []*tensor.Tensor{in}})
		ok2 <- err
	}()
	waitFor(t, "generous request queued", func() bool { return s.Stats().QueueDepth == 1 })
	close(block)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := <-ok2; err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.DeadlineInfeasible != 1 || st.Rejected != 1 {
		t.Fatalf("infeasible=%d rejected=%d, want 1/1", st.DeadlineInfeasible, st.Rejected)
	}
	s.Close()
}

// TestWatchdogCancelsHungRun: after a signature builds latency history, a
// run that hangs is cancelled at the watchdog limit and recovered through
// the interpreter fallback.
func TestWatchdogCancelsHungRun(t *testing.T) {
	var calls int32
	eng := engineFunc(func(ctx context.Context, _ []*tensor.Tensor) (*exec.Result, error) {
		if int(atomic.AddInt32(&calls, 1)) <= watchdogMinSamples {
			time.Sleep(2 * time.Millisecond)
			return okResult()
		}
		<-ctx.Done() // hang until cancelled
		return nil, ctx.Err()
	})
	s := New(Config{MaxConcurrent: 2, WatchdogMultiple: 3, WatchdogFloor: 20 * time.Millisecond},
		func(*graph.Graph) (Engine, error) { return eng, nil })
	if err := s.Register("m", buildMLP); err != nil {
		t.Fatal(err)
	}
	in, want := mlpInput(t, 2)

	for i := 0; i < watchdogMinSamples; i++ {
		if _, err := s.Infer(context.Background(), &Request{Model: "m", Inputs: []*tensor.Tensor{in}}); err != nil {
			t.Fatal(err)
		}
	}

	start := time.Now()
	resp, err := s.Infer(context.Background(), &Request{Model: "m", Inputs: []*tensor.Tensor{in}})
	if err != nil {
		t.Fatalf("hung run should be recovered by fallback, got %v", err)
	}
	if !resp.Fallback {
		t.Fatal("recovered response must be marked Fallback")
	}
	if err := tensor.AllClose(resp.Outputs[0], want[0], 1e-4, 1e-5); err != nil {
		t.Fatalf("fallback output: %v", err)
	}
	if wait := time.Since(start); wait > 5*time.Second {
		t.Fatalf("watchdog took %v to fire", wait)
	}
	if st := s.Stats(); st.WatchdogCancels != 1 {
		t.Fatalf("WatchdogCancels = %d, want 1", st.WatchdogCancels)
	}
	s.Close()
}

// TestWatchdogErrorWithoutFallback: with fallback disabled the caller
// sees ErrHungRequest itself.
func TestWatchdogErrorWithoutFallback(t *testing.T) {
	var calls int32
	eng := engineFunc(func(ctx context.Context, _ []*tensor.Tensor) (*exec.Result, error) {
		if int(atomic.AddInt32(&calls, 1)) <= watchdogMinSamples {
			return okResult()
		}
		<-ctx.Done()
		return nil, ctx.Err()
	})
	s := New(Config{
		MaxConcurrent: 1, WatchdogMultiple: 2, WatchdogFloor: 10 * time.Millisecond,
		DisableFallback: true, MaxRetries: -1, BreakerThreshold: -1,
	}, func(*graph.Graph) (Engine, error) { return eng, nil })
	if err := s.Register("m", buildMLP); err != nil {
		t.Fatal(err)
	}
	in, _ := mlpInput(t, 2)
	for i := 0; i < watchdogMinSamples; i++ {
		if _, err := s.Infer(context.Background(), &Request{Model: "m", Inputs: []*tensor.Tensor{in}}); err != nil {
			t.Fatal(err)
		}
	}
	_, err := s.Infer(context.Background(), &Request{Model: "m", Inputs: []*tensor.Tensor{in}})
	if !errors.Is(err, discerr.ErrHungRequest) {
		t.Fatalf("want ErrHungRequest, got %v", err)
	}
	s.Close()
}

// TestMemoryBudgetRejectionThroughServer: a server whose governor cannot
// fit a run's footprint rejects with ErrMemoryBudget — no retry, breaker
// penalty or fallback — and the rejection taxonomy records it.
func TestMemoryBudgetRejectionThroughServer(t *testing.T) {
	var s *Server
	s = New(Config{MaxConcurrent: 2, MemoryBudgetBytes: 64}, func(g *graph.Graph) (Engine, error) {
		if _, err := opt.Default().Run(g); err != nil {
			return nil, err
		}
		plan, err := fusion.NewPlanner(fusion.DefaultConfig()).Plan(g)
		if err != nil {
			return nil, err
		}
		eo := exec.DefaultOptions()
		eo.Governor = s.Governor()
		return exec.Compile(g, plan, device.A10(), eo)
	})
	if err := s.Register("m", buildMLP); err != nil {
		t.Fatal(err)
	}
	in, _ := mlpInput(t, 8)
	_, err := s.Infer(context.Background(), &Request{Model: "m", Inputs: []*tensor.Tensor{in}})
	if !errors.Is(err, discerr.ErrMemoryBudget) {
		t.Fatalf("want ErrMemoryBudget, got %v", err)
	}
	st := s.Stats()
	if st.MemoryRejections != 1 || st.Rejected != 1 || st.FallbackRuns != 0 || st.Retries != 0 {
		t.Fatalf("stats after memory rejection: %+v", st)
	}
	if st.MemBudgetBytes != 64 {
		t.Fatalf("MemBudgetBytes = %d", st.MemBudgetBytes)
	}
	s.Close()
}

// TestQueueDepthNoneConstant pins the sentinel to the documented
// semantics: no queue, immediate rejection.
func TestQueueDepthNoneConstant(t *testing.T) {
	stub := &stubEngine{started: make(chan struct{}, 8), release: make(chan struct{})}
	s := stubServer(t, Config{MaxConcurrent: 1, QueueDepth: QueueDepthNone}, stub)
	defer close(stub.release)
	in, _ := mlpInput(t, 2)
	done := make(chan error, 1)
	go func() {
		_, err := s.Infer(context.Background(), &Request{Model: "m", Inputs: []*tensor.Tensor{in}})
		done <- err
	}()
	<-stub.started
	_, err := s.Infer(context.Background(), &Request{Model: "m", Inputs: []*tensor.Tensor{in}})
	if !errors.Is(err, discerr.ErrQueueFull) {
		t.Fatalf("want immediate ErrQueueFull, got %v", err)
	}
	stub.release <- struct{}{}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.PeakQueueDepth != 0 {
		t.Fatalf("PeakQueueDepth = %d, want 0", st.PeakQueueDepth)
	}
	s.Close()
}
