package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"godisc/internal/device"
	"godisc/internal/exec"
	"godisc/internal/faultinject"
	"godisc/internal/fusion"
	"godisc/internal/graph"
	"godisc/internal/opt"
	"godisc/internal/tensor"
)

// governedCompile compiles for real with the server's governor threaded
// into the exec options and a kernel-latency fault armed, so every run
// holds its pool buffers for a realistic service time (without the
// latency the tiny test kernels finish in microseconds and concurrent
// runs never actually overlap in the allocator). The compiled executable
// is captured through exe so the test can sample its pool.
func governedCompile(sp **Server, exe **exec.Executable, mu *sync.Mutex, kernelDelay time.Duration) CompileFunc {
	return func(g *graph.Graph) (Engine, error) {
		if _, err := opt.Default().Run(g); err != nil {
			return nil, err
		}
		plan, err := fusion.NewPlanner(fusion.DefaultConfig()).Plan(g)
		if err != nil {
			return nil, err
		}
		eo := exec.DefaultOptions()
		eo.Workers = 1
		eo.Governor = (*sp).Governor()
		eo.Faults = faultinject.New(11).
			ArmLatency(faultinject.SiteKernelLaunch, faultinject.ModeLatency, 1, kernelDelay)
		e, err := exec.Compile(g, plan, device.A10(), eo)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		*exe = e
		mu.Unlock()
		return e, nil
	}
}

// TestOverloadBudgetAndPriorities is the acceptance check for resource
// governance: offered load 4× MaxConcurrent against a memory budget set
// to half the measured unbounded peak. The budget must never be
// exceeded (sampled live and via the governor's high-water mark),
// Interactive must see a strictly lower error rate than BestEffort, and
// every rejection must map to exactly one documented sentinel.
func TestOverloadBudgetAndPriorities(t *testing.T) {
	const (
		slots       = 4
		clients     = 16 // 4× MaxConcurrent offered concurrency
		perClient   = 12
		batch       = 8
		kernelDelay = time.Millisecond
	)
	in := tensor.RandN(tensor.NewRNG(9), 0.5, batch, 12)

	// runLoad hammers the server from `clients` goroutines. With
	// usePriorities set, clients are assigned Interactive/Batch/BestEffort
	// round-robin; reqs/errs are indexed by Priority+1.
	runLoad := func(s *Server, usePriorities bool) (reqs, errCounts [3]int64, errs []error) {
		var wg sync.WaitGroup
		var mu sync.Mutex
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				p := PriorityBatch
				if usePriorities {
					switch c % 3 {
					case 0:
						p = PriorityInteractive
					case 1:
						p = PriorityBatch
					case 2:
						p = PriorityBestEffort
					}
				}
				for i := 0; i < perClient; i++ {
					atomic.AddInt64(&reqs[p+1], 1)
					_, err := s.Infer(context.Background(),
						&Request{Model: "m", Inputs: []*tensor.Tensor{in}, Priority: p})
					if err != nil {
						atomic.AddInt64(&errCounts[p+1], 1)
						mu.Lock()
						errs = append(errs, err)
						mu.Unlock()
					}
				}
			}(c)
		}
		wg.Wait()
		return reqs, errCounts, errs
	}

	// Phase 1: no budget, generous queue — measure the unbounded pool peak
	// under full concurrency.
	var exeMu sync.Mutex
	var exe1 *exec.Executable
	var s1 *Server
	s1 = New(Config{MaxConcurrent: slots, QueueDepth: 64},
		governedCompile(&s1, &exe1, &exeMu, kernelDelay))
	if err := s1.Register("m", buildMLP); err != nil {
		t.Fatal(err)
	}
	if err := s1.Warm("m"); err != nil {
		t.Fatal(err)
	}
	if _, ec, errs := runLoad(s1, false); ec[PriorityBatch+1] != 0 {
		t.Fatalf("unbounded phase had %d errors, first: %v", ec[PriorityBatch+1], errs[0])
	}
	exeMu.Lock()
	unboundedPeakBytes := 4 * exe1.Pool.Stats().PeakElems
	singleFp, fpErr := exe1.FootprintBytes([][]int{{batch, 12}})
	exeMu.Unlock()
	s1.Close()
	if fpErr != nil {
		t.Fatal(fpErr)
	}
	if unboundedPeakBytes < 2*singleFp {
		t.Fatalf("unbounded peak %dB never reached 2 concurrent runs (footprint %dB) — no overlap to constrain",
			unboundedPeakBytes, singleFp)
	}
	budget := unboundedPeakBytes / 2
	t.Logf("unbounded peak %dB, single-run footprint %dB, budget %dB", unboundedPeakBytes, singleFp, budget)

	// Phase 2: same load, mixed priorities, budget = half the unbounded
	// peak, tight queue so admission control has to work.
	var exe2 *exec.Executable
	var s2 *Server
	s2 = New(Config{MaxConcurrent: slots, QueueDepth: slots, MemoryBudgetBytes: budget},
		governedCompile(&s2, &exe2, &exeMu, kernelDelay))
	if err := s2.Register("m", buildMLP); err != nil {
		t.Fatal(err)
	}
	if err := s2.Warm("m"); err != nil {
		t.Fatal(err)
	}

	// Live sampler: the pool's in-use bytes must stay within budget at
	// every instant, not just at the high-water mark.
	stop := make(chan struct{})
	var worstOver atomic.Int64
	var samplerWg sync.WaitGroup
	samplerWg.Add(1)
	go func() {
		defer samplerWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			exeMu.Lock()
			used := 4 * exe2.Pool.Stats().InUseElems
			exeMu.Unlock()
			if used > budget && used > worstOver.Load() {
				worstOver.Store(used)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	reqs, errCounts, errs := runLoad(s2, true)
	close(stop)
	samplerWg.Wait()

	if over := worstOver.Load(); over != 0 {
		t.Fatalf("sampled pool usage %dB exceeded budget %dB during overload", over, budget)
	}
	st := s2.Stats()
	t.Logf("governed: %s", st)
	if st.MemHighWaterBytes > budget {
		t.Fatalf("governor high water %dB exceeded budget %dB", st.MemHighWaterBytes, budget)
	}
	if st.MemHighWaterBytes == 0 {
		t.Fatal("governor never accounted a reservation")
	}
	if st.MemWaits == 0 {
		t.Fatal("budget at half peak must force reservation waits")
	}

	// Priority differentiation: Interactive strictly outperforms
	// BestEffort, and BestEffort actually got shed under this load.
	beReqs, beErrs := reqs[PriorityBestEffort+1], errCounts[PriorityBestEffort+1]
	intReqs, intErrs := reqs[PriorityInteractive+1], errCounts[PriorityInteractive+1]
	beRate := float64(beErrs) / float64(beReqs)
	intRate := float64(intErrs) / float64(intReqs)
	t.Logf("error rates: interactive %d/%d (%.2f), batch %d/%d, best-effort %d/%d (%.2f)",
		intErrs, intReqs, intRate,
		errCounts[PriorityBatch+1], reqs[PriorityBatch+1],
		beErrs, beReqs, beRate)
	if beErrs == 0 {
		t.Fatal("overload never rejected a best-effort request — load too light to mean anything")
	}
	if intRate >= beRate {
		t.Fatalf("interactive error rate %.3f not below best-effort %.3f", intRate, beRate)
	}
	if st.Shed == 0 {
		t.Fatal("priority shedding never fired under overload")
	}

	// Every rejection maps to exactly one documented sentinel.
	for _, err := range errs {
		n := 0
		for _, s := range sentinels {
			if errors.Is(err, s.Err) {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("error %v matches %d sentinels, want exactly 1", err, n)
		}
	}

	// The rejection taxonomy partitions Rejected exactly, and nothing was
	// silently dropped: every offered request is accounted for.
	if got := st.Shed + st.QueueFullRejections + st.DeadlineInfeasible + st.QuotaRejections + st.MemoryRejections; got != st.Rejected {
		t.Fatalf("rejection reasons sum to %d, Rejected = %d", got, st.Rejected)
	}
	if st.Failed != 0 || st.Canceled != 0 {
		t.Fatalf("overload must reject cleanly, not fail: %s", st)
	}
	total := reqs[0] + reqs[1] + reqs[2]
	if st.Requests != total || st.Completed+st.Rejected != total {
		t.Fatalf("accounting: requests=%d completed=%d rejected=%d, offered %d",
			st.Requests, st.Completed, st.Rejected, total)
	}
	s2.Close()
}
