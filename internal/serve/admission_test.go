package serve

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"godisc/internal/discerr"
	"godisc/internal/exec"
	"godisc/internal/graph"
	"godisc/internal/ral"
	"godisc/internal/tensor"
)

// countingEngine records how many runs actually started.
type countingEngine struct{ runs int32 }

func (e *countingEngine) RunContext(context.Context, []*tensor.Tensor) (*exec.Result, error) {
	atomic.AddInt32(&e.runs, 1)
	return &exec.Result{Profile: ral.NewProfiler()}, nil
}

// TestAdmitExpiredDeadline: a request whose deadline has already expired
// when it reaches admission counts as canceled and never touches the
// engine — even when a slot is free.
func TestAdmitExpiredDeadline(t *testing.T) {
	eng := &countingEngine{}
	s := New(Config{MaxConcurrent: 2}, func(*graph.Graph) (Engine, error) { return eng, nil })
	if err := s.Register("m", buildMLP); err != nil {
		t.Fatal(err)
	}
	if err := s.Warm("m"); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := s.Infer(ctx, &Request{Model: "m"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if n := atomic.LoadInt32(&eng.runs); n != 0 {
		t.Fatalf("expired request ran the engine %d times", n)
	}
	st := s.Stats()
	if st.Canceled != 1 || st.Completed != 0 || st.InFlight != 0 {
		t.Fatalf("stats: %s", st)
	}
}

// TestCancelWhileQueued: a queued request whose caller gives up is
// counted canceled, releases its queue slot, and does not run.
func TestCancelWhileQueued(t *testing.T) {
	stub := &stubEngine{started: make(chan struct{}, 8), release: make(chan struct{})}
	s := stubServer(t, Config{MaxConcurrent: 1, QueueDepth: 4}, stub)

	// Occupy the only slot.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Infer(context.Background(), &Request{Model: "m"}); err != nil {
			t.Error(err)
		}
	}()
	<-stub.started

	// Queue several requests, then cancel them all while they wait.
	const queued = 3
	ctx, cancel := context.WithCancel(context.Background())
	errs := make(chan error, queued)
	for i := 0; i < queued; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Infer(ctx, &Request{Model: "m"})
			errs <- err
		}()
	}
	waitFor(t, "requests to queue", func() bool { return s.Stats().QueueDepth == queued })
	cancel()
	waitFor(t, "queue to drain", func() bool { return s.Stats().QueueDepth == 0 })

	close(stub.release)
	wg.Wait()
	for i := 0; i < queued; i++ {
		if err := <-errs; !errors.Is(err, context.Canceled) {
			t.Fatalf("queued request: %v, want Canceled", err)
		}
	}
	st := s.Stats()
	if st.Canceled != queued || st.Completed != 1 || st.QueueDepth != 0 {
		t.Fatalf("stats: %s", st)
	}
}

// TestNegativeQueueDepth: QueueDepth < 0 means "no queue at all" — a
// request arriving while every slot is busy is rejected immediately.
func TestNegativeQueueDepth(t *testing.T) {
	stub := &stubEngine{started: make(chan struct{}, 8), release: make(chan struct{})}
	s := stubServer(t, Config{MaxConcurrent: 1, QueueDepth: -1}, stub)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Infer(context.Background(), &Request{Model: "m"}); err != nil {
			t.Error(err)
		}
	}()
	<-stub.started

	if _, err := s.Infer(context.Background(), &Request{Model: "m"}); !errors.Is(err, discerr.ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	close(stub.release)
	wg.Wait()
	if st := s.Stats(); st.Rejected != 1 || st.Completed != 1 || st.PeakQueueDepth != 0 {
		t.Fatalf("stats: %s", st)
	}
}

// TestAdmissionCountersConsistent hammers a small server with racing
// admits, cancels, and tight deadlines, then checks the bookkeeping
// identity Requests == Completed + Rejected + Canceled + Failed. Run
// under -race this doubles as the data-race check for the stats path.
func TestAdmissionCountersConsistent(t *testing.T) {
	eng := &countingEngine{}
	s := New(Config{MaxConcurrent: 2, QueueDepth: 2}, func(*graph.Graph) (Engine, error) { return eng, nil })
	if err := s.Register("m", buildMLP); err != nil {
		t.Fatal(err)
	}
	if err := s.Warm("m"); err != nil {
		t.Fatal(err)
	}

	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				switch rng.Intn(3) {
				case 1:
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(200))*time.Microsecond)
				case 2:
					ctx, cancel = context.WithCancel(ctx)
					if rng.Intn(2) == 0 {
						cancel() // already-canceled at admission
					}
				}
				s.Infer(ctx, &Request{Model: "m"})
				cancel()
			}
		}(w)
	}
	wg.Wait()

	st := s.Stats()
	total := int64(workers * perWorker)
	if st.Requests != total {
		t.Fatalf("requests = %d, want %d", st.Requests, total)
	}
	if got := st.Completed + st.Rejected + st.Canceled + st.Failed; got != total {
		t.Fatalf("outcome sum %d != requests %d: %s", got, total, st)
	}
	if st.InFlight != 0 || st.QueueDepth != 0 {
		t.Fatalf("quiesced server has residue: %s", st)
	}
}
