package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"godisc/internal/faultinject"
	"godisc/internal/graph"
	"godisc/internal/randgraph"
	"godisc/internal/symshape"
	"godisc/internal/tensor"
)

// bitsEqual asserts exact equality — batched and solo runs must agree to
// the bit, not within a tolerance.
func bitsEqual(t *testing.T, got, want *tensor.Tensor, label string) {
	t.Helper()
	if !tensor.ShapeEq(got.Shape(), want.Shape()) {
		t.Fatalf("%s: shape %v != %v", label, got.Shape(), want.Shape())
	}
	g, w := got.F32(), want.F32()
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: element %d: %x != %x (batched vs solo must be bit-identical)",
				label, i, g[i], w[i])
		}
	}
}

// TestBatchAnalysis exercises the conservative batchability rules: accept
// only graphs provably row-independent along dim 0.
func TestBatchAnalysis(t *testing.T) {
	cases := []struct {
		name  string
		build func() *graph.Graph
		ok    bool
	}{
		{"mlp", buildMLP, true},
		{"softmaxnet", buildSoftmaxNet, true},
		{"randgraph", func() *graph.Graph { return randgraph.Build(7, 6, 8) }, true},
		{"static-batch", func() *graph.Graph {
			g := graph.New("static")
			x := g.Parameter("x", tensor.F32, g.Ctx.StaticShape(4, 8))
			g.SetOutputs(g.Relu(x))
			return g
		}, false},
		{"params-disagree", func() *graph.Graph {
			g := graph.New("disagree")
			b, c := g.Ctx.NewDim("B"), g.Ctx.NewDim("C")
			x := g.Parameter("x", tensor.F32, symshape.Shape{b, g.Ctx.StaticDim(4)})
			y := g.Parameter("y", tensor.F32, symshape.Shape{c, g.Ctx.StaticDim(4)})
			g.SetOutputs(g.Add(x, g.Sum(y, []int{0}, true)))
			return g
		}, false},
		{"divisible-batch", func() *graph.Graph {
			g := graph.New("div")
			b := g.Ctx.NewDim("B")
			g.Ctx.DeclareDivisible(b, 2)
			x := g.Parameter("x", tensor.F32, symshape.Shape{b, g.Ctx.StaticDim(4)})
			g.SetOutputs(g.Relu(x))
			return g
		}, false},
		{"batch-reduced-keepdims", func() *graph.Graph {
			// mean over the batch axis broadcast back: output shape looks
			// batch-major but every row depends on every other.
			g := graph.New("reduce0")
			b := g.Ctx.NewDim("B")
			x := g.Parameter("x", tensor.F32, symshape.Shape{b, g.Ctx.StaticDim(4)})
			g.SetOutputs(g.Sub(x, g.Mean(x, []int{0}, true)))
			return g
		}, false},
		{"softmax-rank1", func() *graph.Graph {
			g := graph.New("sm1")
			b := g.Ctx.NewDim("B")
			x := g.Parameter("x", tensor.F32, symshape.Shape{b})
			g.SetOutputs(g.Softmax(x))
			return g
		}, false},
		{"batch-folded-by-merge", func() *graph.Graph {
			g := graph.New("merge")
			b := g.Ctx.NewDim("B")
			x := g.Parameter("x", tensor.F32, symshape.Shape{b, g.Ctx.StaticDim(2), g.Ctx.StaticDim(4)})
			g.SetOutputs(g.MergeDims(x, 0, 2))
			return g
		}, false},
		{"transposed-batch", func() *graph.Graph {
			g := graph.New("tr")
			b := g.Ctx.NewDim("B")
			x := g.Parameter("x", tensor.F32, symshape.Shape{b, g.Ctx.StaticDim(4)})
			g.SetOutputs(g.Transpose(x, 1, 0))
			return g
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			info := analyzeBatchable(tc.build())
			if info.ok != tc.ok {
				t.Fatalf("analyzeBatchable(%s): ok=%v (reason %q), want %v",
					tc.name, info.ok, info.reason, tc.ok)
			}
		})
	}
}

// TestBatchAnalysisMaxRows: the stacked extent is capped by the batch
// symbol's declared upper bound.
func TestBatchAnalysisMaxRows(t *testing.T) {
	info := analyzeBatchable(buildMLP()) // DeclareRange(b, 1, 128)
	if !info.ok || info.maxRows != 128 {
		t.Fatalf("mlp batchInfo = %+v, want ok with maxRows 128", info)
	}
}

// TestBatchDisabledByDefault: the zero Config (and MaxBatchSize 1) must
// leave the batcher off entirely.
func TestBatchDisabledByDefault(t *testing.T) {
	for _, cfg := range []Config{{}, {MaxBatchSize: 1}, {MaxBatchSize: -3}} {
		s := New(cfg, realCompile(nil))
		if s.batch != nil {
			t.Fatalf("Config %+v built a batcher; batching must be opt-in", cfg)
		}
		s.Close()
	}
	s := New(Config{MaxBatchSize: 8}, realCompile(nil))
	if s.batch == nil {
		t.Fatal("MaxBatchSize 8 did not enable batching")
	}
	if s.cfg.MaxLinger != lingerDefault {
		t.Fatalf("MaxLinger defaulted to %v, want %v", s.cfg.MaxLinger, lingerDefault)
	}
	s.Close()
}

// TestBatchCoalesces: concurrent same-layout requests fill a window and
// are served by ONE engine run whose scattered outputs are bit-identical
// to solo runs.
func TestBatchCoalesces(t *testing.T) {
	s := New(Config{MaxConcurrent: 8, MaxBatchSize: 8, MaxLinger: 200 * time.Millisecond},
		realCompile(nil))
	defer s.Close()
	if err := s.Register("mlp", buildMLP); err != nil {
		t.Fatal(err)
	}
	// Solo reference server: identical pipeline, batching off.
	solo := New(Config{MaxConcurrent: 8}, realCompile(nil))
	defer solo.Close()
	if err := solo.Register("mlp", buildMLP); err != nil {
		t.Fatal(err)
	}

	// 4 requests × 2 rows = MaxBatchSize: the window flushes on full, so
	// the test does not depend on linger timing.
	r := tensor.NewRNG(3)
	const n = 4
	inputs := make([]*tensor.Tensor, n)
	for i := range inputs {
		inputs[i] = tensor.RandN(r, 0.5, 2, 12)
	}
	var wg sync.WaitGroup
	resps := make([]*Response, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = s.Infer(context.Background(),
				&Request{Model: "mlp", Inputs: []*tensor.Tensor{inputs[i]}})
		}(i)
	}
	wg.Wait()

	batched := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		want, err := solo.Infer(context.Background(),
			&Request{Model: "mlp", Inputs: []*tensor.Tensor{inputs[i]}})
		if err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, resps[i].Outputs[0], want.Outputs[0], "request")
		if resps[i].Batched {
			batched++
			if resps[i].BatchSize < 4 {
				t.Fatalf("request %d: BatchSize %d, want >= 4 stacked rows", i, resps[i].BatchSize)
			}
		}
	}
	// All four arrived while the first window was open (200ms linger), so
	// every request must have coalesced.
	if batched != n {
		t.Fatalf("%d/%d requests batched, want all (window was open for 200ms)", batched, n)
	}
	st := s.Stats()
	if st.BatchedRuns < 1 || st.BatchedRequests != int64(n) {
		t.Fatalf("stats: BatchedRuns=%d BatchedRequests=%d, want >=1 and %d", st.BatchedRuns, st.BatchedRequests, n)
	}
	if st.Completed != int64(n) {
		t.Fatalf("stats: Completed=%d, want %d (batched requests count as completions)", st.Completed, n)
	}
}

// TestBatchSingleMemberServedSolo: a lone request whose window expires is
// handed back to the solo path — correct result, Batched=false, and the
// solo machinery (estimator feeding, stats) untouched by the batch layer.
func TestBatchSingleMemberServedSolo(t *testing.T) {
	s := New(Config{MaxConcurrent: 4, MaxBatchSize: 16, MaxLinger: 20 * time.Millisecond},
		realCompile(nil))
	defer s.Close()
	if err := s.Register("mlp", buildMLP); err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(5)
	start := time.Now()
	resp, err := s.Infer(context.Background(),
		&Request{Model: "mlp", Inputs: []*tensor.Tensor{tensor.RandN(r, 0.5, 3, 12)}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Batched {
		t.Fatal("lone request reported Batched=true")
	}
	if wall := time.Since(start); wall < 20*time.Millisecond {
		t.Fatalf("lone request returned in %v, before the 20ms linger window flushed", wall)
	}
	if st := s.Stats(); st.BatchedRuns != 0 || st.Completed != 1 {
		t.Fatalf("stats: %+v, want zero BatchedRuns and one completion", st)
	}
}

// TestBatchInteractiveBypassesLinger: Interactive requests never enter the
// coalescing window — with a 2s linger a bypassing request must return in
// a fraction of that.
func TestBatchInteractiveBypassesLinger(t *testing.T) {
	s := New(Config{MaxConcurrent: 4, MaxBatchSize: 16, MaxLinger: 2 * time.Second},
		realCompile(nil))
	defer s.Close()
	if err := s.Register("mlp", buildMLP); err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(6)
	start := time.Now()
	resp, err := s.Infer(context.Background(), &Request{
		Model:    "mlp",
		Inputs:   []*tensor.Tensor{tensor.RandN(r, 0.5, 2, 12)},
		Priority: PriorityInteractive,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Batched {
		t.Fatal("Interactive request was batched")
	}
	if wall := time.Since(start); wall > time.Second {
		t.Fatalf("Interactive request took %v; it must bypass the 2s linger window", wall)
	}
}

// TestBatchDeadlineTightensFlush: a joining member with a deadline shorter
// than the window's remaining linger pulls the flush forward — the batch
// runs early and both members are served before the deadline, coalesced.
func TestBatchDeadlineTightensFlush(t *testing.T) {
	s := New(Config{MaxConcurrent: 4, MaxBatchSize: 16, MaxLinger: 2 * time.Second},
		realCompile(nil))
	defer s.Close()
	if err := s.Register("mlp", buildMLP); err != nil {
		t.Fatal(err)
	}
	if err := s.Warm("mlp"); err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(7)
	in1 := tensor.RandN(r, 0.5, 2, 12)
	in2 := tensor.RandN(r, 0.5, 2, 12)

	var wg sync.WaitGroup
	var resp1, resp2 *Response
	var err1, err2 error
	start := time.Now()
	wg.Add(2)
	go func() { // opens the window with the full 2s linger
		defer wg.Done()
		resp1, err1 = s.Infer(context.Background(),
			&Request{Model: "mlp", Inputs: []*tensor.Tensor{in1}})
	}()
	go func() { // joins with a 300ms deadline: the window must flush early
		defer wg.Done()
		time.Sleep(30 * time.Millisecond) // let the first request open the window
		ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
		defer cancel()
		resp2, err2 = s.Infer(ctx, &Request{Model: "mlp", Inputs: []*tensor.Tensor{in2}})
	}()
	wg.Wait()
	wall := time.Since(start)

	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v / %v", err1, err2)
	}
	if wall > time.Second {
		t.Fatalf("batch held %v; the 300ms member deadline must pull the flush forward", wall)
	}
	if !resp1.Batched || !resp2.Batched {
		t.Fatalf("Batched = %v/%v, want both coalesced", resp1.Batched, resp2.Batched)
	}
}

// TestBatchAbandonOnCancel: a member whose context is cancelled mid-linger
// abandons the window and returns promptly with the context error — never
// silently late. The remaining member is still served.
func TestBatchAbandonOnCancel(t *testing.T) {
	s := New(Config{MaxConcurrent: 4, MaxBatchSize: 16, MaxLinger: 400 * time.Millisecond},
		realCompile(nil))
	defer s.Close()
	if err := s.Register("mlp", buildMLP); err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(8)
	var wg sync.WaitGroup
	var respA *Response
	var errA, errB error
	var wallB time.Duration
	wg.Add(2)
	go func() {
		defer wg.Done()
		respA, errA = s.Infer(context.Background(),
			&Request{Model: "mlp", Inputs: []*tensor.Tensor{tensor.RandN(r, 0.5, 2, 12)}})
	}()
	go func() {
		defer wg.Done()
		time.Sleep(20 * time.Millisecond)
		ctx, cancel := context.WithCancel(context.Background())
		go func() { time.Sleep(60 * time.Millisecond); cancel() }()
		start := time.Now()
		_, errB = s.Infer(ctx, &Request{Model: "mlp",
			Inputs: []*tensor.Tensor{tensor.RandN(tensor.NewRNG(9), 0.5, 2, 12)}})
		wallB = time.Since(start)
	}()
	wg.Wait()

	if !errors.Is(errB, context.Canceled) {
		t.Fatalf("cancelled member returned %v, want context.Canceled", errB)
	}
	if wallB > 300*time.Millisecond {
		t.Fatalf("cancelled member took %v; it must abandon the window promptly", wallB)
	}
	if errA != nil {
		t.Fatalf("surviving member failed: %v", errA)
	}
	if respA.Batched {
		t.Fatal("surviving lone member reported Batched=true")
	}
}

// TestBatchDeadlineInfeasibleGoesSolo: when the moving execution estimate
// says lingering would make the deadline infeasible, the request skips the
// window entirely and is served solo, on time.
func TestBatchDeadlineInfeasibleGoesSolo(t *testing.T) {
	s := New(Config{MaxConcurrent: 32, MaxBatchSize: 16, MaxLinger: 2 * time.Second},
		realCompile(nil))
	defer s.Close()
	if err := s.Register("mlp", buildMLP); err != nil {
		t.Fatal(err)
	}
	// Feed the estimator a 100ms execution profile; with the 1.25 margin,
	// any deadline under 125ms leaves no room to linger.
	for i := 0; i < estMinSamples; i++ {
		s.adm.est.observe(100 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 124*time.Millisecond)
	defer cancel()
	r := tensor.NewRNG(10)
	start := time.Now()
	resp, err := s.Infer(ctx, &Request{Model: "mlp",
		Inputs: []*tensor.Tensor{tensor.RandN(r, 0.5, 2, 12)}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Batched {
		t.Fatal("infeasible-slack request entered the batch window")
	}
	if wall := time.Since(start); wall > time.Second {
		t.Fatalf("request took %v, must have gone solo immediately", wall)
	}
}

// TestBatchOverflowOpensNewWindow: a joiner that would push the window
// past MaxBatchSize flushes it and opens a fresh one — both requests are
// served correctly.
func TestBatchOverflowOpensNewWindow(t *testing.T) {
	s := New(Config{MaxConcurrent: 4, MaxBatchSize: 4, MaxLinger: 60 * time.Millisecond},
		realCompile(nil))
	defer s.Close()
	if err := s.Register("mlp", buildMLP); err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(11)
	inputs := []*tensor.Tensor{tensor.RandN(r, 0.5, 3, 12), tensor.RandN(r, 0.5, 3, 12)}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Infer(context.Background(), &Request{Model: "mlp",
				Inputs: []*tensor.Tensor{inputs[i]}})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
}

// TestBatchRowsAtCapGoSolo: a request that alone fills MaxBatchSize has
// nothing to gain from lingering and is served solo immediately.
func TestBatchRowsAtCapGoSolo(t *testing.T) {
	s := New(Config{MaxConcurrent: 4, MaxBatchSize: 4, MaxLinger: 2 * time.Second},
		realCompile(nil))
	defer s.Close()
	if err := s.Register("mlp", buildMLP); err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(12)
	start := time.Now()
	resp, err := s.Infer(context.Background(), &Request{Model: "mlp",
		Inputs: []*tensor.Tensor{tensor.RandN(r, 0.5, 4, 12)}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Batched {
		t.Fatal("cap-filling request reported Batched=true")
	}
	if wall := time.Since(start); wall > time.Second {
		t.Fatalf("cap-filling request lingered for %v", wall)
	}
}

// TestBatchEngineFailureFallsBackSolo: when the batched run fails, every
// member re-enters the solo path and is recovered by the ordinary
// resilience machinery (here: interpreter fallback after kernel faults),
// with exact per-request accounting.
func TestBatchEngineFailureFallsBackSolo(t *testing.T) {
	inj := faultinject.New(21).Arm(faultinject.SiteKernelLaunch, faultinject.ModeError, 1)
	s := New(Config{MaxConcurrent: 8, MaxBatchSize: 8, MaxLinger: 150 * time.Millisecond,
		MaxRetries: -1}, faultyCompile(inj))
	defer s.Close()
	if err := s.Register("mlp", buildMLP); err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(13)
	const n = 4
	inputs := make([]*tensor.Tensor, n)
	for i := range inputs {
		inputs[i] = tensor.RandN(r, 0.5, 2, 12)
	}
	var wg sync.WaitGroup
	resps := make([]*Response, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = s.Infer(context.Background(), &Request{Model: "mlp",
				Inputs: []*tensor.Tensor{inputs[i]}})
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if !resps[i].Fallback {
			t.Fatalf("request %d: expected interpreter fallback after batched engine failure", i)
		}
		if resps[i].Batched {
			t.Fatalf("request %d: failed batch must not report Batched=true", i)
		}
	}
	st := s.Stats()
	if st.FallbackRuns != n || st.Completed != n {
		t.Fatalf("stats: FallbackRuns=%d Completed=%d, want %d each", st.FallbackRuns, st.Completed, n)
	}
	if st.BatchedRuns != 0 {
		t.Fatalf("stats: BatchedRuns=%d after a failed batch, want 0", st.BatchedRuns)
	}
}

// TestBatchShutdownDrains: Shutdown while a window is open must not hang —
// open batches resolve and in-flight members drain.
func TestBatchShutdownDrains(t *testing.T) {
	s := New(Config{MaxConcurrent: 4, MaxBatchSize: 16, MaxLinger: 80 * time.Millisecond},
		realCompile(nil))
	if err := s.Register("mlp", buildMLP); err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(14)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := s.Infer(context.Background(), &Request{Model: "mlp",
			Inputs: []*tensor.Tensor{tensor.RandN(r, 0.5, 2, 12)}})
		if err != nil {
			t.Errorf("in-flight request failed during drain: %v", err)
		}
	}()
	time.Sleep(20 * time.Millisecond) // request is lingering in its window
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
}
