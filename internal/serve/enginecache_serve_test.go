package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"godisc/internal/faultinject"
	"godisc/internal/servetest"
	"godisc/internal/tensor"
)

// cacheCodecs adapts the shared servetest codec pair to this layer's
// Engine interface (A10, default exec options — what the public layer
// installs).
func cacheCodecs() (func([]byte) (Engine, error), func(Engine) ([]byte, error)) {
	dec := func(payload []byte) (Engine, error) {
		return servetest.DecodeExecutable(payload)
	}
	enc := func(e Engine) ([]byte, error) {
		return servetest.EncodeExecutable(e)
	}
	return dec, enc
}

// TestAsyncCompileDedup fires concurrent first requests at one signature
// with async compilation on: every request must be answered immediately
// (fallback or engine), and the background compiler must run exactly once.
func TestAsyncCompileDedup(t *testing.T) {
	var compiles int32
	s := New(Config{MaxConcurrent: 8, AsyncCompile: true, CompileWorkers: 1},
		realCompile(&compiles))
	defer s.Close()
	if err := s.Register("mlp", buildMLP); err != nil {
		t.Fatal(err)
	}

	r := tensor.NewRNG(3)
	in := tensor.RandN(r, 0.5, 6, 12)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := s.Infer(context.Background(), &Request{
				Model: "mlp", Inputs: []*tensor.Tensor{in},
			})
			if err == nil && len(resp.Outputs) != 1 {
				err = fmt.Errorf("bad output count %d", len(resp.Outputs))
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}

	// Wait for the deduplicated background compile to land, then confirm
	// the engine serves and exactly one compilation ever ran.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := s.Infer(context.Background(), &Request{
			Model: "mlp", Inputs: []*tensor.Tensor{in},
		})
		if err != nil {
			t.Fatal(err)
		}
		if resp.CacheHit && !resp.Compiling {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background compile never delivered an engine")
		}
		time.Sleep(time.Millisecond)
	}
	if n := atomic.LoadInt32(&compiles); n != 1 {
		t.Fatalf("concurrent first requests must compile once, got %d", n)
	}
}

// TestAsyncCompileShutdownDrain shuts down immediately after the first
// async request: Shutdown must wait for the in-flight background compile
// and the engine must still be persisted.
func TestAsyncCompileShutdownDrain(t *testing.T) {
	dec, enc := cacheCodecs()
	ec := servetest.OpenCache(t, t.TempDir())
	var compiles int32
	s := New(Config{
		MaxConcurrent: 4, AsyncCompile: true,
		EngineCache: ec, DecodeEngine: dec, EncodeEngine: enc,
	}, realCompile(&compiles))
	if err := s.Register("mlp", buildMLP); err != nil {
		t.Fatal(err)
	}

	r := tensor.NewRNG(5)
	resp, err := s.Infer(context.Background(), &Request{
		Model: "mlp", Inputs: []*tensor.Tensor{tensor.RandN(r, 0.5, 3, 12)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Compiling {
		t.Fatalf("first-seen request must report Compiling: %+v", resp)
	}

	servetest.Drain(t, s)
	if n := atomic.LoadInt32(&compiles); n != 1 {
		t.Fatalf("shutdown must drain the background compile, got %d compiles", n)
	}
	if st := ec.Stats(); st.Persists != 1 {
		t.Fatalf("drained compile must persist its engine: %+v", st)
	}
}

// TestCacheFaultsDegradeToMiss arms the cache-read and cache-write probes
// at rate 1.0: every load degrades to a recompile and every persist is
// dropped, but no request may fail.
func TestCacheFaultsDegradeToMiss(t *testing.T) {
	inj, err := faultinject.FromSpec("cache-read:transient:1.0,cache-write:transient:1.0", 11)
	if err != nil {
		t.Fatal(err)
	}
	dec, enc := cacheCodecs()
	ec := servetest.OpenCache(t, t.TempDir())
	ec.SetFaults(inj)

	var compiles int32
	s := New(Config{
		MaxConcurrent: 4,
		EngineCache:   ec, DecodeEngine: dec, EncodeEngine: enc,
	}, realCompile(&compiles))
	defer s.Close()
	if err := s.Register("mlp", buildMLP); err != nil {
		t.Fatal(err)
	}

	r := tensor.NewRNG(7)
	for i := 0; i < 4; i++ {
		if _, err := s.Infer(context.Background(), &Request{
			Model: "mlp", Inputs: []*tensor.Tensor{tensor.RandN(r, 0.5, 2+i, 12)},
		}); err != nil {
			t.Fatalf("request %d must survive cache faults: %v", i, err)
		}
	}
	st := ec.Stats()
	if st.ReadErr == 0 || st.WriteErr == 0 {
		t.Fatalf("both cache probes must have fired: %+v", st)
	}
	if st.Persists != 0 || st.Hits != 0 {
		t.Fatalf("all cache IO must have been rejected: %+v", st)
	}
	if n := atomic.LoadInt32(&compiles); n != 1 {
		t.Fatalf("singleflight must still bound compilations, got %d", n)
	}
}

// TestCachePersistLoadAcrossServers is the serve-layer restart check: a
// second server sharing the cache serves without its compile function
// ever being invoked.
func TestCachePersistLoadAcrossServers(t *testing.T) {
	dec, enc := cacheCodecs()
	dir := t.TempDir()
	ecA := servetest.OpenCache(t, dir)
	var compilesA int32
	a := New(Config{MaxConcurrent: 2, EngineCache: ecA, DecodeEngine: dec, EncodeEngine: enc},
		realCompile(&compilesA))
	if err := a.Register("mlp", buildMLP); err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(9)
	if _, err := a.Infer(context.Background(), &Request{
		Model: "mlp", Inputs: []*tensor.Tensor{tensor.RandN(r, 0.5, 4, 12)},
	}); err != nil {
		t.Fatal(err)
	}
	a.Close()
	if atomic.LoadInt32(&compilesA) != 1 {
		t.Fatalf("first server must compile once, got %d", compilesA)
	}

	ecB := servetest.OpenCache(t, dir)
	var compilesB int32
	b := New(Config{MaxConcurrent: 2, EngineCache: ecB, DecodeEngine: dec, EncodeEngine: enc},
		realCompile(&compilesB))
	defer b.Close()
	if err := b.Register("mlp", buildMLP); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Infer(context.Background(), &Request{
		Model: "mlp", Inputs: []*tensor.Tensor{tensor.RandN(r, 0.5, 6, 12)},
	}); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt32(&compilesB) != 0 {
		t.Fatalf("second server must serve from disk, got %d compiles", compilesB)
	}
	st := b.Stats()
	if st.EngineLoads != 1 {
		t.Fatalf("second server must load the persisted engine: %+v", st)
	}
}
