package serve

import (
	"fmt"
	"sort"
	"sync"

	"godisc/internal/obs"
)

// latencyWindow bounds the latency sample buffer: percentiles are computed
// over the most recent latencyWindow completed requests.
const latencyWindow = 8192

// Stats is a point-in-time snapshot of serving counters.
type Stats struct {
	// Requests counts every Infer call; Completed the ones that returned
	// outputs. Rejected were refused by admission (queue full or server
	// closed), Canceled expired on their context, Failed hit any other
	// error (unknown model, compile failure, shape mismatch).
	Requests, Completed, Rejected, Canceled, Failed int64

	// CacheHits/CacheMisses count engine-cache lookups by executed
	// requests. Engines is the number of distinct (model, signature)
	// entries resident in memory. Compilations counts actual compiler
	// invocations — unlike CacheMisses it excludes engines loaded from the
	// persistent cache, so a warm restart over a populated cache dir keeps
	// it at zero.
	CacheHits, CacheMisses int64
	Engines                int
	Compilations           int64

	// Persistent engine cache activity (all zero without
	// Config.EngineCache). EngineLoads counts engines deserialized from
	// disk instead of compiled; EnginePersists entries written;
	// EngineCorrupt/EngineMismatch entries quarantined for damage or a
	// foreign compiler fingerprint.
	EngineLoads, EnginePersists   int64
	EngineCorrupt, EngineMismatch int64

	// Governance counters — each is a disjoint sub-bucket of Rejected
	// except WatchdogCancels (hung runs usually complete via fallback).
	// Shed counts queued waiters evicted for higher-priority arrivals and
	// QueueFullRejections arrivals refused with no sheddable victim (both
	// wrap ErrQueueFull); DeadlineInfeasible counts requests rejected
	// because their remaining deadline was below the moving queue+exec
	// estimate; QuotaRejections requests over their model's concurrency
	// quota; MemoryRejections runs refused by the memory governor.
	// WatchdogCancels counts runs the hung-request watchdog cancelled.
	Shed, QueueFullRejections, DeadlineInfeasible int64
	QuotaRejections, MemoryRejections             int64
	WatchdogCancels                               int64

	// Memory governor snapshot (zero when no budget is configured).
	// MemWaits counts reservations that had to queue for budget.
	MemBudgetBytes, MemReservedBytes, MemHighWaterBytes int64
	MemWaits                                            int64

	// Resilience counters. FallbackRuns are requests that completed
	// through the interpreter fallback after their engine failed (they
	// also count in Completed). Retries counts re-attempts after
	// transient errors. KernelPanics counts panics recovered during
	// engine execution. BreakerOpens counts closed/half-open → open
	// transitions; BreakerShortCircuits counts requests that found their
	// engine quarantined and went straight to fallback.
	FallbackRuns, Retries, KernelPanics int64
	BreakerOpens, BreakerShortCircuits  int64

	// Dynamic batching. BatchedRuns counts coalesced engine runs (two or
	// more members served by one run); BatchedRequests the requests those
	// runs served (they also count in Completed). Requests the batcher
	// handed back to the solo path appear only in the ordinary counters.
	BatchedRuns, BatchedRequests int64

	// QueueDepth is the current number of requests waiting for an
	// execution slot; PeakQueueDepth its high-water mark. InFlight and
	// PeakInFlight track executing requests the same way.
	QueueDepth, PeakQueueDepth int
	InFlight, PeakInFlight     int

	// P50SimNs and P99SimNs are percentiles of per-request simulated
	// execution latency over the recent completion window; TotalSimNs
	// accumulates all completed requests.
	P50SimNs, P99SimNs float64
	TotalSimNs         float64
}

// String renders the snapshot for logs and CLIs.
func (st Stats) String() string {
	s := fmt.Sprintf(
		"requests=%d completed=%d rejected=%d canceled=%d failed=%d | "+
			"engines=%d cache=%d/%d hit/miss | queue=%d (peak %d) inflight=%d (peak %d) | "+
			"p50=%.1fµs p99=%.1fµs total=%.2fms",
		st.Requests, st.Completed, st.Rejected, st.Canceled, st.Failed,
		st.Engines, st.CacheHits, st.CacheMisses,
		st.QueueDepth, st.PeakQueueDepth, st.InFlight, st.PeakInFlight,
		st.P50SimNs/1e3, st.P99SimNs/1e3, st.TotalSimNs/1e6)
	if st.FallbackRuns+st.Retries+st.KernelPanics+st.BreakerOpens > 0 {
		s += fmt.Sprintf(" | fallback=%d retries=%d panics=%d breaker=%d opens/%d shorted",
			st.FallbackRuns, st.Retries, st.KernelPanics, st.BreakerOpens, st.BreakerShortCircuits)
	}
	if st.BatchedRuns > 0 {
		s += fmt.Sprintf(" | batches=%d batched=%d", st.BatchedRuns, st.BatchedRequests)
	}
	if st.Shed+st.QueueFullRejections+st.DeadlineInfeasible+st.QuotaRejections+
		st.MemoryRejections+st.WatchdogCancels > 0 {
		s += fmt.Sprintf(" | shed=%d qfull=%d infeasible=%d quota=%d membudget=%d watchdog=%d",
			st.Shed, st.QueueFullRejections, st.DeadlineInfeasible, st.QuotaRejections,
			st.MemoryRejections, st.WatchdogCancels)
	}
	if st.MemBudgetBytes > 0 {
		s += fmt.Sprintf(" | mem=%d/%d high=%d waits=%d",
			st.MemReservedBytes, st.MemBudgetBytes, st.MemHighWaterBytes, st.MemWaits)
	}
	if st.EngineLoads+st.EnginePersists+st.EngineCorrupt+st.EngineMismatch > 0 {
		s += fmt.Sprintf(" | enginecache=%d loaded/%d persisted corrupt=%d mismatch=%d compilations=%d",
			st.EngineLoads, st.EnginePersists, st.EngineCorrupt, st.EngineMismatch, st.Compilations)
	}
	return s
}

// collector is the serving stats backend, built on an obs.Registry: every
// counter is a registered metric series (cached handle, so increments are
// lock-free atomics), which means the Stats snapshot and the /metrics
// scrape are two views of the same numbers and can never disagree. The
// mutex survives only where atomicity with admission logic requires it:
// the queue-depth-vs-limit check, the in-flight/queue peaks, and the
// bounded latency sample window percentiles are computed over.
type collector struct {
	reg *obs.Registry

	cRequests, cCompleted, cRejected, cCanceled, cFailed *obs.Counter
	cHits, cMisses                                       *obs.Counter
	cFallback, cRetries, cPanics                         *obs.Counter
	cBreakerOpens, cBreakerShorted                       *obs.Counter
	cShed, cQueueFull, cInfeasible, cQuota, cMemory      *obs.Counter
	cWatchdog                                            *obs.Counter
	cBatchOK, cBatchSolo, cBatchErr, cBatchedReqs        *obs.Counter
	cCompilations                                        *obs.Counter
	gCompileInflight                                     *obs.Gauge
	hLatency, hBatchSize, hBatchLinger                   *obs.Histogram

	mu                     sync.Mutex
	queueDepth, peakQueue  int
	inFlight, peakInFlight int
	totalSimNs             float64
	samples                []float64
	next                   int
}

// newCollector builds the backend on reg; a nil reg gets a private
// registry so the Stats API works without observability configured.
func newCollector(reg *obs.Registry) *collector {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c := &collector{
		reg:              reg,
		cRequests:        reg.Counter("godisc_requests_total"),
		cCompleted:       reg.Counter("godisc_requests_outcome_total", obs.L("outcome", "completed")),
		cRejected:        reg.Counter("godisc_requests_outcome_total", obs.L("outcome", "rejected")),
		cCanceled:        reg.Counter("godisc_requests_outcome_total", obs.L("outcome", "canceled")),
		cFailed:          reg.Counter("godisc_requests_outcome_total", obs.L("outcome", "failed")),
		cHits:            reg.Counter("godisc_cache_lookups_total", obs.L("result", "hit")),
		cMisses:          reg.Counter("godisc_cache_lookups_total", obs.L("result", "miss")),
		cFallback:        reg.Counter("godisc_fallback_total"),
		cRetries:         reg.Counter("godisc_retries_total"),
		cPanics:          reg.Counter("godisc_kernel_panics_total"),
		cBreakerOpens:    reg.Counter("godisc_breaker_transitions_total", obs.L("to", "open")),
		cBreakerShorted:  reg.Counter("godisc_breaker_short_circuits_total"),
		cShed:            reg.Counter("godisc_admission_rejects_total", obs.L("reason", "shed")),
		cQueueFull:       reg.Counter("godisc_admission_rejects_total", obs.L("reason", "queue-full")),
		cInfeasible:      reg.Counter("godisc_admission_rejects_total", obs.L("reason", "deadline-infeasible")),
		cQuota:           reg.Counter("godisc_admission_rejects_total", obs.L("reason", "quota")),
		cMemory:          reg.Counter("godisc_admission_rejects_total", obs.L("reason", "memory-budget")),
		cWatchdog:        reg.Counter("godisc_watchdog_cancels_total"),
		cBatchOK:         reg.Counter("godisc_batches_total", obs.L("outcome", "ok")),
		cBatchSolo:       reg.Counter("godisc_batches_total", obs.L("outcome", "solo")),
		cBatchErr:        reg.Counter("godisc_batches_total", obs.L("outcome", "error")),
		cBatchedReqs:     reg.Counter("godisc_batched_requests_total"),
		cCompilations:    reg.Counter("godisc_compilations_total"),
		gCompileInflight: reg.Gauge("godisc_compile_inflight"),
		hLatency:         reg.Histogram("godisc_latency_sim_ns", obs.LatencyNsBuckets()),
		hBatchSize:       reg.Histogram("godisc_batch_size", obs.ExpBuckets(1, 2, 10)),
		hBatchLinger:     reg.Histogram("godisc_batch_linger_ns", obs.LatencyNsBuckets()),
		samples:          make([]float64, 0, 256),
	}
	reg.GaugeFunc("godisc_queue_depth", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.queueDepth)
	})
	reg.GaugeFunc("godisc_inflight", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.inFlight)
	})
	return c
}

func (c *collector) request()   { c.cRequests.Inc() }
func (c *collector) rejected()  { c.cRejected.Inc() }
func (c *collector) canceled()  { c.cCanceled.Inc() }
func (c *collector) failed()    { c.cFailed.Inc() }
func (c *collector) cacheHit()  { c.cHits.Inc() }
func (c *collector) cacheMiss() { c.cMisses.Inc() }

// compilation records one actual compiler invocation (not a persistent-
// cache load); compileInflight tracks background builds for the
// godisc_compile_inflight gauge.
func (c *collector) compilation()              { c.cCompilations.Inc() }
func (c *collector) compileInflight(d float64) { c.gCompileInflight.Add(d) }

func (c *collector) retry()          { c.cRetries.Inc() }
func (c *collector) kernelPanic()    { c.cPanics.Inc() }
func (c *collector) breakerOpened()  { c.cBreakerOpens.Inc() }
func (c *collector) breakerShorted() { c.cBreakerShorted.Inc() }

// Governance rejections: each increments the outcome counter (Rejected)
// plus its reason series, so the taxonomy partitions Rejected exactly.
func (c *collector) shed()               { c.cRejected.Inc(); c.cShed.Inc() }
func (c *collector) queueFullRejected()  { c.cRejected.Inc(); c.cQueueFull.Inc() }
func (c *collector) infeasibleRejected() { c.cRejected.Inc(); c.cInfeasible.Inc() }
func (c *collector) quotaRejected()      { c.cRejected.Inc(); c.cQuota.Inc() }
func (c *collector) memoryRejected()     { c.cRejected.Inc(); c.cMemory.Inc() }
func (c *collector) watchdogFired()      { c.cWatchdog.Inc() }

// batchRun records one flushed coalescing window by outcome: "ok" (one
// engine run served every member), "solo" (nothing coalesced, or the
// members were handed back before the run), "error" (the batched run
// failed and the members were handed back). The batch-size histogram
// observes the stacked row extent of real coalesced runs only.
func (c *collector) batchRun(outcome string, rows int) {
	switch outcome {
	case "ok":
		c.cBatchOK.Inc()
		c.hBatchSize.Observe(float64(rows))
	case "error":
		c.cBatchErr.Inc()
	default:
		c.cBatchSolo.Inc()
	}
}

// batchedRequest records one request served through a coalesced run, plus
// the time it spent lingering in the window (join → flush).
func (c *collector) batchedRequest(lingerNs float64) {
	c.cBatchedReqs.Inc()
	c.hBatchLinger.Observe(lingerNs)
}

// fallback records one request completed through the interpreter fallback;
// it contributes to Completed and the latency window like a normal
// completion.
func (c *collector) fallback(simNs float64) {
	c.cFallback.Inc()
	c.completed(simNs)
}

// completed records one successful request and its simulated latency.
func (c *collector) completed(simNs float64) {
	c.cCompleted.Inc()
	c.hLatency.Observe(simNs)
	c.mu.Lock()
	c.totalSimNs += simNs
	if len(c.samples) < latencyWindow {
		c.samples = append(c.samples, simNs)
	} else {
		c.samples[c.next] = simNs
		c.next = (c.next + 1) % latencyWindow
	}
	c.mu.Unlock()
}

// observeSignature records a completion's simulated latency into the
// per-(model, signature) histogram — the "latency by cache key" series
// that makes shape-bucket regressions visible per compiled engine.
func (c *collector) observeSignature(model, sig string, simNs float64) {
	c.reg.Histogram("godisc_request_sim_ns", obs.LatencyNsBuckets(),
		obs.L("model", model), obs.L("signature", sig)).Observe(simNs)
}

// running tracks executing requests (+1 on slot acquire, -1 on release).
func (c *collector) running(delta int) {
	c.mu.Lock()
	c.inFlight += delta
	if c.inFlight > c.peakInFlight {
		c.peakInFlight = c.inFlight
	}
	c.mu.Unlock()
}

// enqueued/dequeued track the admission queue depth; the limit check
// itself lives in the admitter, whose lock makes depth-vs-limit atomic.
func (c *collector) enqueued() {
	c.mu.Lock()
	c.queueDepth++
	if c.queueDepth > c.peakQueue {
		c.peakQueue = c.queueDepth
	}
	c.mu.Unlock()
}

func (c *collector) dequeued() {
	c.mu.Lock()
	c.queueDepth--
	c.mu.Unlock()
}

// snapshot computes the exported view: counters read back from their
// registry series, percentiles over the recent latency window.
func (c *collector) snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Requests: c.cRequests.Value(), Completed: c.cCompleted.Value(),
		Rejected: c.cRejected.Value(), Canceled: c.cCanceled.Value(),
		Failed:    c.cFailed.Value(),
		CacheHits: c.cHits.Value(), CacheMisses: c.cMisses.Value(),
		Compilations: c.cCompilations.Value(),
		FallbackRuns: c.cFallback.Value(), Retries: c.cRetries.Value(),
		KernelPanics: c.cPanics.Value(),
		BreakerOpens: c.cBreakerOpens.Value(), BreakerShortCircuits: c.cBreakerShorted.Value(),
		Shed: c.cShed.Value(), QueueFullRejections: c.cQueueFull.Value(),
		DeadlineInfeasible: c.cInfeasible.Value(), QuotaRejections: c.cQuota.Value(),
		MemoryRejections: c.cMemory.Value(), WatchdogCancels: c.cWatchdog.Value(),
		BatchedRuns: c.cBatchOK.Value(), BatchedRequests: c.cBatchedReqs.Value(),
		QueueDepth: c.queueDepth, PeakQueueDepth: c.peakQueue,
		InFlight: c.inFlight, PeakInFlight: c.peakInFlight,
		TotalSimNs: c.totalSimNs,
	}
	if len(c.samples) > 0 {
		sorted := append([]float64(nil), c.samples...)
		sort.Float64s(sorted)
		st.P50SimNs = percentile(sorted, 0.50)
		st.P99SimNs = percentile(sorted, 0.99)
	}
	return st
}

// percentile reads the p-quantile from a sorted sample (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
