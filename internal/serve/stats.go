package serve

import (
	"fmt"
	"sort"
	"sync"
)

// latencyWindow bounds the latency sample buffer: percentiles are computed
// over the most recent latencyWindow completed requests.
const latencyWindow = 8192

// Stats is a point-in-time snapshot of serving counters.
type Stats struct {
	// Requests counts every Infer call; Completed the ones that returned
	// outputs. Rejected were refused by admission (queue full or server
	// closed), Canceled expired on their context, Failed hit any other
	// error (unknown model, compile failure, shape mismatch).
	Requests, Completed, Rejected, Canceled, Failed int64

	// CacheHits/CacheMisses count engine-cache lookups by executed
	// requests; misses equal compilations paid for. Engines is the number
	// of distinct (model, signature) entries compiled and cached.
	CacheHits, CacheMisses int64
	Engines                int

	// Resilience counters. FallbackRuns are requests that completed
	// through the interpreter fallback after their engine failed (they
	// also count in Completed). Retries counts re-attempts after
	// transient errors. KernelPanics counts panics recovered during
	// engine execution. BreakerOpens counts closed/half-open → open
	// transitions; BreakerShortCircuits counts requests that found their
	// engine quarantined and went straight to fallback.
	FallbackRuns, Retries, KernelPanics int64
	BreakerOpens, BreakerShortCircuits  int64

	// QueueDepth is the current number of requests waiting for an
	// execution slot; PeakQueueDepth its high-water mark. InFlight and
	// PeakInFlight track executing requests the same way.
	QueueDepth, PeakQueueDepth int
	InFlight, PeakInFlight     int

	// P50SimNs and P99SimNs are percentiles of per-request simulated
	// execution latency over the recent completion window; TotalSimNs
	// accumulates all completed requests.
	P50SimNs, P99SimNs float64
	TotalSimNs         float64
}

// String renders the snapshot for logs and CLIs.
func (st Stats) String() string {
	s := fmt.Sprintf(
		"requests=%d completed=%d rejected=%d canceled=%d failed=%d | "+
			"engines=%d cache=%d/%d hit/miss | queue=%d (peak %d) inflight=%d (peak %d) | "+
			"p50=%.1fµs p99=%.1fµs total=%.2fms",
		st.Requests, st.Completed, st.Rejected, st.Canceled, st.Failed,
		st.Engines, st.CacheHits, st.CacheMisses,
		st.QueueDepth, st.PeakQueueDepth, st.InFlight, st.PeakInFlight,
		st.P50SimNs/1e3, st.P99SimNs/1e3, st.TotalSimNs/1e6)
	if st.FallbackRuns+st.Retries+st.KernelPanics+st.BreakerOpens > 0 {
		s += fmt.Sprintf(" | fallback=%d retries=%d panics=%d breaker=%d opens/%d shorted",
			st.FallbackRuns, st.Retries, st.KernelPanics, st.BreakerOpens, st.BreakerShortCircuits)
	}
	return s
}

// collector accumulates counters under one mutex. Admission queueing uses
// it too, so "queue depth vs limit" checks are atomic with the counters
// they publish.
type collector struct {
	mu sync.Mutex

	nRequests, nCompleted, nRejected, nCanceled, nFailed int64
	nHits, nMisses                                       int64
	nFallback, nRetries, nPanics                         int64
	nBreakerOpens, nBreakerShorted                       int64

	queueDepth, peakQueue  int
	inFlight, peakInFlight int
	totalSimNs             float64
	samples                []float64
	next                   int
}

func newCollector() *collector {
	return &collector{samples: make([]float64, 0, 256)}
}

func (c *collector) request()   { c.mu.Lock(); c.nRequests++; c.mu.Unlock() }
func (c *collector) rejected()  { c.mu.Lock(); c.nRejected++; c.mu.Unlock() }
func (c *collector) canceled()  { c.mu.Lock(); c.nCanceled++; c.mu.Unlock() }
func (c *collector) failed()    { c.mu.Lock(); c.nFailed++; c.mu.Unlock() }
func (c *collector) cacheHit()  { c.mu.Lock(); c.nHits++; c.mu.Unlock() }
func (c *collector) cacheMiss() { c.mu.Lock(); c.nMisses++; c.mu.Unlock() }

func (c *collector) retry()          { c.mu.Lock(); c.nRetries++; c.mu.Unlock() }
func (c *collector) kernelPanic()    { c.mu.Lock(); c.nPanics++; c.mu.Unlock() }
func (c *collector) breakerOpened()  { c.mu.Lock(); c.nBreakerOpens++; c.mu.Unlock() }
func (c *collector) breakerShorted() { c.mu.Lock(); c.nBreakerShorted++; c.mu.Unlock() }

// fallback records one request completed through the interpreter fallback;
// it contributes to Completed and the latency window like a normal
// completion.
func (c *collector) fallback(simNs float64) {
	c.mu.Lock()
	c.nFallback++
	c.mu.Unlock()
	c.completed(simNs)
}

// completed records one successful request and its simulated latency.
func (c *collector) completed(simNs float64) {
	c.mu.Lock()
	c.nCompleted++
	c.totalSimNs += simNs
	if len(c.samples) < latencyWindow {
		c.samples = append(c.samples, simNs)
	} else {
		c.samples[c.next] = simNs
		c.next = (c.next + 1) % latencyWindow
	}
	c.mu.Unlock()
}

// running tracks executing requests (+1 on slot acquire, -1 on release).
func (c *collector) running(delta int) {
	c.mu.Lock()
	c.inFlight += delta
	if c.inFlight > c.peakInFlight {
		c.peakInFlight = c.inFlight
	}
	c.mu.Unlock()
}

// tryEnqueue admits one waiter if the queue is below limit.
func (c *collector) tryEnqueue(limit int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.queueDepth >= limit {
		return false
	}
	c.queueDepth++
	if c.queueDepth > c.peakQueue {
		c.peakQueue = c.queueDepth
	}
	return true
}

func (c *collector) dequeue() {
	c.mu.Lock()
	c.queueDepth--
	c.mu.Unlock()
}

// snapshot computes the exported view, including percentiles over the
// recent latency window.
func (c *collector) snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Requests: c.nRequests, Completed: c.nCompleted, Rejected: c.nRejected,
		Canceled: c.nCanceled, Failed: c.nFailed,
		CacheHits: c.nHits, CacheMisses: c.nMisses,
		FallbackRuns: c.nFallback, Retries: c.nRetries, KernelPanics: c.nPanics,
		BreakerOpens: c.nBreakerOpens, BreakerShortCircuits: c.nBreakerShorted,
		QueueDepth: c.queueDepth, PeakQueueDepth: c.peakQueue,
		InFlight: c.inFlight, PeakInFlight: c.peakInFlight,
		TotalSimNs: c.totalSimNs,
	}
	if len(c.samples) > 0 {
		sorted := append([]float64(nil), c.samples...)
		sort.Float64s(sorted)
		st.P50SimNs = percentile(sorted, 0.50)
		st.P99SimNs = percentile(sorted, 0.99)
	}
	return st
}

// percentile reads the p-quantile from a sorted sample (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
