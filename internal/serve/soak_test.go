package serve

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"godisc/internal/device"
	"godisc/internal/exec"
	"godisc/internal/faultinject"
	"godisc/internal/fusion"
	"godisc/internal/graph"
	"godisc/internal/opt"
	"godisc/internal/tensor"
)

// soakDuration is ~1s by default so the soak runs inside the normal
// `go test -race ./internal/serve` gate; `make soak` stretches it to 30s
// via GODISC_SOAK.
func soakDuration(t *testing.T) time.Duration {
	if v := os.Getenv("GODISC_SOAK"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("GODISC_SOAK: %v", err)
		}
		return d
	}
	return time.Second
}

// TestSoakGovernedOverload runs a randomized overload mix — all three
// priorities, tight and generous deadlines, kernel panics and transient
// alloc faults injected, a memory budget tighter than the offered
// concurrency — and checks the governance invariants hold for the whole
// run: the budget is never exceeded, nothing leaks, every failure maps
// to exactly one documented sentinel (or is a plain context error), and
// the rejection taxonomy partitions Rejected exactly.
func TestSoakGovernedOverload(t *testing.T) {
	const (
		slots    = 4
		clients  = 12
		maxBatch = 16
		seed     = 23
	)
	dur := soakDuration(t)

	// Panic is armed before latency: same-site rules fire in arming order,
	// and the always-on latency rule would otherwise mask it. The latency
	// keeps pool buffers held long enough that runs genuinely contend.
	inj := faultinject.New(seed).
		Arm(faultinject.SiteKernelLaunch, faultinject.ModePanic, 0.02).
		ArmLatency(faultinject.SiteKernelLaunch, faultinject.ModeLatency, 1, 500*time.Microsecond).
		Arm(faultinject.SiteAlloc, faultinject.ModeTransient, 0.02)

	var exeMu sync.Mutex
	var exe *exec.Executable
	var s *Server
	compile := func(g *graph.Graph) (Engine, error) {
		if _, err := opt.Default().Run(g); err != nil {
			return nil, err
		}
		plan, err := fusion.NewPlanner(fusion.DefaultConfig()).Plan(g)
		if err != nil {
			return nil, err
		}
		eo := exec.DefaultOptions()
		eo.Workers = 1
		eo.Governor = s.Governor()
		eo.Faults = inj
		e, err := exec.Compile(g, plan, device.A10(), eo)
		if err != nil {
			return nil, err
		}
		exeMu.Lock()
		exe = e
		exeMu.Unlock()
		return e, nil
	}

	// Size the budget from a probe compile of the same model: 3× the
	// largest request footprint, so four concurrent max-batch runs cannot
	// all reserve at once.
	pg := buildMLP()
	if _, err := opt.Default().Run(pg); err != nil {
		t.Fatal(err)
	}
	pplan, err := fusion.NewPlanner(fusion.DefaultConfig()).Plan(pg)
	if err != nil {
		t.Fatal(err)
	}
	popts := exec.DefaultOptions()
	popts.Workers = 1
	pexe, err := exec.Compile(pg, pplan, device.A10(), popts)
	if err != nil {
		t.Fatal(err)
	}
	maxFp, err := pexe.FootprintBytes([][]int{{maxBatch, 12}})
	if err != nil {
		t.Fatal(err)
	}
	budget := 2 * maxFp
	t.Logf("soak: %v, budget %dB (2× max footprint %dB), fault seed %d", dur, budget, maxFp, seed)

	// The quota rides on a low-traffic side model so it fires without
	// dominating the mix; main-model traffic exercises queue/shed/budget.
	s = New(Config{
		MaxConcurrent:     slots,
		QueueDepth:        8,
		ModelQuotas:       map[string]int{"side": 1},
		MaxRetries:        2,
		RetryBackoff:      100 * time.Microsecond,
		BreakerThreshold:  3,
		BreakerCooldown:   5 * time.Millisecond,
		WatchdogMultiple:  8,
		WatchdogFloor:     25 * time.Millisecond,
		MemoryBudgetBytes: budget,
	}, compile)
	defer s.Close()
	for _, name := range []string{"m", "side"} {
		if err := s.Register(name, buildMLP); err != nil {
			t.Fatal(err)
		}
		if err := s.Warm(name); err != nil {
			t.Fatal(err)
		}
	}

	// Budget sampler: live pool usage must never exceed the budget.
	stopSample := make(chan struct{})
	var worstOver atomic.Int64
	var samplerWg sync.WaitGroup
	samplerWg.Add(1)
	go func() {
		defer samplerWg.Done()
		for {
			select {
			case <-stopSample:
				return
			default:
			}
			exeMu.Lock()
			used := 4 * exe.Pool.Stats().InUseElems
			exeMu.Unlock()
			if used > budget && used > worstOver.Load() {
				worstOver.Store(used)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	deadline := time.Now().Add(dur)
	var completed, failedTaxonomy int64
	var taxMu sync.Mutex
	var firstBad error
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)))
			prios := []Priority{PriorityInteractive, PriorityBatch, PriorityBestEffort}
			for time.Now().Before(deadline) {
				batch := 1 + rng.Intn(maxBatch)
				in := tensor.RandN(tensor.NewRNG(uint64(batch)), 0.5, batch, 12)
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				switch rng.Intn(4) {
				case 0: // tight deadline: infeasibility + cancels
					ctx, cancel = context.WithTimeout(ctx, time.Duration(2+rng.Intn(8))*time.Millisecond)
				case 1, 2: // generous deadline
					ctx, cancel = context.WithTimeout(ctx, 200*time.Millisecond)
				}
				model := "m"
				if rng.Intn(8) == 0 {
					model = "side"
				}
				_, err := s.Infer(ctx, &Request{
					Model:    model,
					Inputs:   []*tensor.Tensor{in},
					Priority: prios[rng.Intn(len(prios))],
				})
				cancel()
				if err == nil {
					atomic.AddInt64(&completed, 1)
					continue
				}
				// Clean taxonomy: exactly one documented sentinel, or a
				// plain context error with no sentinel at all.
				n := 0
				for _, sn := range sentinels {
					if errors.Is(err, sn.Err) {
						n++
					}
				}
				ctxErr := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
				if n != 1 && !(n == 0 && ctxErr) {
					atomic.AddInt64(&failedTaxonomy, 1)
					taxMu.Lock()
					if firstBad == nil {
						firstBad = err
					}
					taxMu.Unlock()
				}
			}
		}(c)
	}
	wg.Wait()
	close(stopSample)
	samplerWg.Wait()

	st := s.Stats()
	t.Logf("soak: %s", st)
	t.Logf("soak: injector fired %d times %v", inj.Total(), inj.Counts())

	if over := worstOver.Load(); over != 0 {
		t.Fatalf("pool usage %dB exceeded budget %dB during soak", over, budget)
	}
	if st.MemHighWaterBytes > budget {
		t.Fatalf("governor high water %dB exceeded budget %dB", st.MemHighWaterBytes, budget)
	}
	if st.MemReservedBytes != 0 {
		t.Fatalf("governor leaked %dB of reservations after drain", st.MemReservedBytes)
	}
	if n := failedTaxonomy; n != 0 {
		t.Fatalf("%d errors escaped the taxonomy; first: %v", n, firstBad)
	}
	if got := st.Shed + st.QueueFullRejections + st.DeadlineInfeasible + st.QuotaRejections + st.MemoryRejections; got != st.Rejected {
		t.Fatalf("rejection reasons sum to %d, Rejected = %d", got, st.Rejected)
	}
	if st.Requests != st.Completed+st.Rejected+st.Canceled+st.Failed {
		t.Fatalf("request conservation broken: %s", st)
	}
	if st.Failed != 0 {
		t.Fatalf("engine faults must be absorbed (fallback/retry), not failed: %s", st)
	}
	if completed == 0 {
		t.Fatal("soak completed zero requests — load generator broken")
	}
	if st.FallbackRuns == 0 {
		t.Fatal("fault mix never exercised the interpreter fallback")
	}
}
