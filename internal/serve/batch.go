// Dynamic request batching: the admission-side coalescer that cashes in
// the compiler's symbolic batch dimension on the serving path. A compiled
// engine already accepts any batch size — the cache key is the *symbolic*
// signature — so N concurrent requests whose inputs agree on every
// non-batch dimension can be stacked along dim 0, run through the engine
// once, and scattered back as zero-copy row views. Per-kernel launch
// overhead, scheduling and admission are paid once per batch instead of
// once per request, which is the single biggest requests-per-second lever
// at saturation.
//
// Design points:
//
//   - Eligibility is decided per model by a conservative symbolic-shape
//     analysis (batchInfo): the leading dimension of every parameter must
//     be the same dynamic symbol, that symbol must appear in node shapes
//     only as dimension 0, carry no divisibility facts, and reach every
//     output at dimension 0. Models that fold the batch into derived dims
//     (reshapes, flattens) are served solo — correctness over coverage.
//   - Requests coalesce per (model@signature + concrete non-batch input
//     layout) key. A batch flushes when its stacked rows reach the
//     effective MaxBatchSize, when the linger window expires, or when a
//     joiner would overflow it.
//   - Deadlines are honoured at join time: a request never lingers past
//     the point its deadline becomes infeasible (slack below the moving
//     execution estimate plus margin goes solo; otherwise the linger is
//     clamped to the slack), and a member whose context expires mid-linger
//     abandons the batch and returns ctx.Err() — never silently late.
//   - Fairness: Interactive requests bypass the linger window entirely and
//     take the solo path; the batch admits at the highest priority among
//     its members, so coalesced Batch traffic cannot be starved by
//     BestEffort floods nor jump ahead of Interactive arrivals it doesn't
//     contain.
//   - Failure policy: the batch path delivers only successes. Any failure
//     — admission rejection, compile error, engine fault, quarantined
//     breaker, or a single-member flush — hands every member back to the
//     solo path, where the full resilience machinery (retries, breaker
//     accounting, watchdog, interpreter fallback) lives. This keeps the
//     stats taxonomy exact: no outcome is ever double-counted.
//   - Memory governance comes for free: the engine computes its footprint
//     from the concrete run dimensions, so the batched run reserves the
//     batched footprint against the shared ral.Governor.
package serve

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"godisc/internal/graph"
	"godisc/internal/obs"
	"godisc/internal/ral"
	"godisc/internal/symshape"
	"godisc/internal/tensor"
)

// lingerDefault is the linger window used when batching is enabled without
// an explicit MaxLinger.
const lingerDefault = 2 * time.Millisecond

// lingerSlackMargin scales the execution estimate when deciding whether a
// deadline leaves room to linger: slack = budget − estimate × margin.
const lingerSlackMargin = 1.25

// batchInfo is the cached result of the batchability analysis for one
// model: whether stacking along dim 0 is provably equivalent to running
// each request alone, and the symbolic cap on the stacked extent.
type batchInfo struct {
	ok     bool
	reason string // why the model is not batchable (spans, tests)
	// maxRows caps the stacked batch extent to the symbol's declared
	// upper bound (0 = unbounded).
	maxRows int
}

// analyzeBatchable decides whether a model may be served by stacking
// requests along dimension 0. The rules are deliberately conservative —
// every rejection is a model served correctly solo, every acceptance must
// be provably row-independent:
//
//   - every parameter has rank ≥ 1 and the same dynamic leading symbol B;
//   - B carries no divisibility facts (stacking two valid extents may
//     break divisibility the compiler specialised on);
//   - wherever B (or any derived dimension depending on it) appears in a
//     node shape, it is exactly B at index 0 — so no reshape folds the
//     batch into a fused dimension and no transpose moves it;
//   - every output has B at dimension 0, so scattering row ranges back to
//     members is well-defined.
func analyzeBatchable(g *graph.Graph) batchInfo {
	if g == nil || len(g.Params) == 0 {
		return batchInfo{reason: "no parameters"}
	}
	ctx := g.Ctx
	if g.Params[0].Shape.Rank() < 1 {
		return batchInfo{reason: "rank-0 parameter"}
	}
	batch := ctx.Root(g.Params[0].Shape[0])
	if ctx.IsStatic(batch) {
		return batchInfo{reason: "static leading dimension"}
	}
	if ctx.Divisor(batch) > 1 {
		return batchInfo{reason: "batch dimension carries divisibility facts"}
	}
	for _, p := range g.Params {
		if p.Shape.Rank() < 1 {
			return batchInfo{reason: "rank-0 parameter"}
		}
		if !ctx.Equal(p.Shape[0], batch) {
			return batchInfo{reason: "parameters disagree on the leading dimension"}
		}
	}

	// usesBatch reports whether a dimension is, or is derived from, the
	// batch symbol (product/sum/quotient/affine operands, recursively).
	memo := map[symshape.DimID]bool{}
	var usesBatch func(d symshape.DimID) bool
	usesBatch = func(d symshape.DimID) bool {
		r := ctx.Root(d)
		if v, ok := memo[r]; ok {
			return v
		}
		memo[r] = false // cut cycles conservatively inside the recursion
		use := r == batch
		if !use {
			for _, op := range ctx.Describe(r).Operands {
				if usesBatch(op) {
					use = true
					break
				}
			}
		}
		memo[r] = use
		return use
	}

	shapeUses := func(n *graph.Node) bool {
		for _, d := range n.Shape {
			if usesBatch(d) {
				return true
			}
		}
		return false
	}

	nodes := append(append([]*graph.Node(nil), g.Toposort()...), g.Params...)
	for _, n := range nodes {
		// Placement: a batch-derived dimension may appear only as the
		// batch symbol itself, at index 0. This rejects reshapes that fold
		// the batch into a product, transposes that move it, concats and
		// pads along it, and splits of it.
		for i, d := range n.Shape {
			if !usesBatch(d) {
				continue
			}
			if i != 0 || ctx.Root(d) != batch {
				return batchInfo{reason: fmt.Sprintf(
					"%s uses the batch dimension at index %d", n.Kind, i)}
			}
		}
		inBatched := false
		for _, in := range n.Inputs {
			if shapeUses(in) {
				inBatched = true
				break
			}
		}
		if !inBatched {
			continue
		}
		// A batched input must flow through to a batch-major result: an op
		// whose output loses the batch dimension (a reduction over axis 0,
		// a slice of it, a gather across it) mixes rows.
		if n.Shape.Rank() < 1 || ctx.Root(n.Shape[0]) != batch {
			return batchInfo{reason: fmt.Sprintf("%s consumes the batch dimension", n.Kind)}
		}
		// Shape rules alone cannot see reductions that keep the batch
		// extent (axis-0 mean with keepDims broadcast back, softmax over a
		// rank-1 batch vector): the op kind decides row independence.
		if n.Kind.IsElementwise() {
			continue
		}
		switch n.Kind {
		case graph.OpMatMul:
			if a := n.Inputs[0]; shapeUses(a) && a.Shape.Rank() < 2 {
				return batchInfo{reason: "matmul contracts over the batch dimension"}
			}
			if b := n.Inputs[1]; shapeUses(b) && b.Shape.Rank() < 3 {
				return batchInfo{reason: "matmul right operand carries the batch dimension"}
			}
		case graph.OpReduce:
			for _, ax := range n.Reduce.Axes {
				if ax == 0 {
					return batchInfo{reason: "reduction over the batch dimension"}
				}
			}
		case graph.OpSoftmax, graph.OpLayerNorm:
			// Both normalize over the last axis; on rank 1 that IS the
			// batch axis.
			if n.Inputs[0].Shape.Rank() < 2 {
				return batchInfo{reason: fmt.Sprintf("%s normalizes over the batch dimension", n.Kind)}
			}
		case graph.OpGather:
			// Batch-carrying indices per-row-gather a constant table: fine.
			// A batch-carrying table means rows select across requests.
			if shapeUses(n.Inputs[0]) {
				return batchInfo{reason: "gather from a batch-carrying table"}
			}
		case graph.OpConv1D:
			for _, in := range n.Inputs[1:] {
				if shapeUses(in) {
					return batchInfo{reason: "conv1d filter carries the batch dimension"}
				}
			}
		case graph.OpReshape, graph.OpTranspose, graph.OpConcat, graph.OpSlice, graph.OpPad:
			// Row-mixing forms were rejected by the placement and
			// batch-major rules above.
		default:
			return batchInfo{reason: fmt.Sprintf("%s is not proven row-independent", n.Kind)}
		}
	}
	for _, out := range g.Outputs {
		if out.Shape.Rank() < 1 || ctx.Root(out.Shape[0]) != batch {
			return batchInfo{reason: "output does not carry the batch dimension at index 0"}
		}
	}
	info := batchInfo{ok: true}
	if hi, ok := ctx.UpperBound(batch); ok && hi > 0 {
		info.maxRows = int(hi)
	}
	return info
}

// batchable runs (and caches) the batchability analysis for this model.
// Builders are deterministic, so one throwaway graph decides for all
// requests.
func (m *modelEntry) batchable() batchInfo {
	m.batchOnce.Do(func() {
		m.binfo = analyzeBatchable(m.build())
	})
	return m.binfo
}

// batchMember is one request waiting inside an open batch.
type batchMember struct {
	req      *Request
	rows     int
	joinedAt time.Time
	// done delivers the batch outcome; buffered so the runner never
	// blocks on a member that abandoned.
	done chan batchResult
	// abandoned is set (under openBatch.mu) when the member's context
	// expired mid-linger; the runner skips delivery to it.
	abandoned bool
}

// batchResult is what the runner delivers to each member.
type batchResult struct {
	// solo tells the member to fall through to the per-request path; all
	// other fields are unset. Used for every non-success outcome.
	solo bool

	// outs are this member's rows of every batch output — zero-copy views
	// into the batched result tensors.
	outs     []*tensor.Tensor
	prof     *ral.Profiler
	hit      bool
	rows     int // total stacked batch extent of the engine run
	flushAt  time.Time
	runStart time.Time
}

// openBatch is one in-flight coalescing window for a (model@signature +
// input layout) key.
type openBatch struct {
	b       *batcher
	key     string
	m       *modelEntry
	sig     string
	maxRows int

	// runCtx is the batch run's context: detached from any member (so one
	// caller's cancellation cannot kill its neighbours' work) but wired to
	// the server's force-drain and cancelled when every member abandons.
	runCtx    context.Context
	runCancel context.CancelFunc
	stopForce func() bool

	mu       sync.Mutex
	members  []*batchMember
	rows     int
	live     int
	closed   bool
	deadline time.Time
	timer    *time.Timer
	flushed  chan struct{}
}

// batcher owns the open coalescing windows. One per server when
// Config.MaxBatchSize > 1.
type batcher struct {
	s       *Server
	maxRows int
	linger  time.Duration

	mu   sync.Mutex
	open map[string]*openBatch
}

func newBatcher(s *Server) *batcher {
	return &batcher{
		s:       s,
		maxRows: s.cfg.MaxBatchSize,
		linger:  s.cfg.MaxLinger,
		open:    map[string]*openBatch{},
	}
}

// layoutKey returns the coalescing key suffix for a request's concrete
// inputs: dtype and non-batch dimensions of every input. Requests agree on
// it exactly when their tensors can be stacked along dim 0. ok is false
// when any input has rank 0 or a leading extent disagreeing with the
// others — those go solo and let the engine report the shape error.
func layoutKey(inputs []*tensor.Tensor) (string, int, bool) {
	if len(inputs) == 0 {
		return "", 0, false
	}
	var sb strings.Builder
	rows := -1
	for _, in := range inputs {
		if in.Rank() < 1 {
			return "", 0, false
		}
		if rows < 0 {
			rows = in.Dim(0)
		} else if in.Dim(0) != rows {
			return "", 0, false
		}
		sb.WriteByte('|')
		sb.WriteString(in.DType().String())
		for _, d := range in.Shape()[1:] {
			sb.WriteByte('x')
			sb.WriteString(strconv.Itoa(d))
		}
	}
	if rows < 1 {
		return "", 0, false
	}
	return sb.String(), rows, true
}

// join offers a request to the batcher. It returns (resp, nil, true) on a
// coalesced success, (nil, err, true) when the member's context expired
// while waiting, and handled=false when the request should take the solo
// path — model not batchable, no linger slack before its deadline, rows
// over the cap, or the batch itself handed its members back.
func (b *batcher) join(ctx context.Context, sp *obs.Span, m *modelEntry, req *Request) (*Response, error, bool) {
	info := m.batchable()
	if !info.ok {
		sp.SetAttr("batch_skip", info.reason)
		return nil, nil, false
	}
	sig, err := m.signature()
	if err != nil {
		return nil, nil, false
	}
	lk, rows, ok := layoutKey(req.Inputs)
	if !ok {
		return nil, nil, false
	}
	maxRows := b.maxRows
	if info.maxRows > 0 && info.maxRows < maxRows {
		maxRows = info.maxRows
	}
	if rows >= maxRows {
		return nil, nil, false // fills (or overflows) a batch alone: no point lingering
	}

	// Deadline feasibility: lingering must leave room for the run itself.
	// With a warm estimator the slack is budget − margin × estimate; a
	// cold estimator reserves half the budget for execution rather than
	// letting the linger consume the deadline entirely.
	linger := b.linger
	if dl, hasDL := ctx.Deadline(); hasDL {
		budget := time.Until(dl)
		est := b.s.adm.est.execEstimate()
		slack := budget / 2
		if est > 0 {
			slack = budget - time.Duration(lingerSlackMargin*float64(est))
		}
		if slack <= 0 {
			sp.SetAttr("batch_skip", "deadline slack exhausted")
			return nil, nil, false
		}
		if slack < linger {
			linger = slack
		}
	}

	mb := &batchMember{req: req, rows: rows, joinedAt: time.Now(), done: make(chan batchResult, 1)}
	key := m.name + "@" + sig + lk
	// Lock order is always b.mu → ob.mu; the timer/abandon paths take
	// ob.mu alone and the runner takes b.mu alone (map cleanup), so the
	// two locks never invert.
	b.mu.Lock()
	ob := b.open[key]
	if ob != nil {
		ob.mu.Lock()
		if ob.closed || ob.rows+rows > ob.maxRows {
			// Full or would overflow: flush it and open a fresh window.
			ob.flushLocked()
			ob.mu.Unlock()
			ob = nil
		} else {
			ob.members = append(ob.members, mb)
			ob.rows += rows
			ob.live++
			if ob.rows >= ob.maxRows {
				ob.flushLocked()
			} else if md := mb.joinedAt.Add(linger); md.Before(ob.deadline) {
				// This member tolerates less linger than the window has
				// left: tighten the flush deadline.
				ob.deadline = md
				ob.timer.Reset(linger)
			}
			ob.mu.Unlock()
		}
	}
	if ob == nil {
		ob = b.openBatch(key, m, sig, maxRows, mb, linger)
	}
	b.mu.Unlock()

	select {
	case r := <-mb.done:
		if r.solo {
			return nil, nil, false
		}
		s := b.s.stats
		s.batchedRequest(float64(r.flushAt.Sub(mb.joinedAt).Nanoseconds()))
		simNs := r.prof.SimulatedNs
		s.completed(simNs)
		s.observeSignature(m.name, sig, simNs)
		sp.SetAttr("batched", "true")
		return &Response{
			Outputs:   r.outs,
			Profile:   r.prof,
			CacheHit:  r.hit,
			Signature: sig,
			QueueNs:   r.runStart.Sub(mb.joinedAt).Nanoseconds(),
			Batched:   true,
			BatchSize: r.rows,
		}, nil, true
	case <-ctx.Done():
		ob.abandon(mb)
		b.s.stats.canceled()
		return nil, ctx.Err(), true
	}
}

// openBatch creates a new coalescing window seeded with mb and spawns its
// runner. Caller holds b.mu.
func (b *batcher) openBatch(key string, m *modelEntry, sig string, maxRows int, mb *batchMember, linger time.Duration) *openBatch {
	runCtx, runCancel := context.WithCancel(context.Background())
	ob := &openBatch{
		b: b, key: key, m: m, sig: sig, maxRows: maxRows,
		runCtx: runCtx, runCancel: runCancel,
		members: []*batchMember{mb},
		rows:    mb.rows,
		live:    1,
		flushed: make(chan struct{}),
	}
	ob.stopForce = context.AfterFunc(b.s.forceCtx, runCancel)
	// The timer handle is assigned under ob.mu: its callback takes ob.mu
	// before touching the batch, so the handle is visible by then even if
	// the timer fires immediately.
	ob.mu.Lock()
	ob.deadline = mb.joinedAt.Add(linger)
	ob.timer = time.AfterFunc(linger, ob.flush)
	ob.mu.Unlock()
	// The runner participates in Shutdown's drain independently of its
	// members (who may all abandon mid-run). The Add is safe: the joining
	// member's own Infer already holds the WaitGroup.
	b.s.inflight.Add(1)
	go ob.run()
	b.open[key] = ob
	return ob
}

// flush closes the window from the linger timer.
func (ob *openBatch) flush() {
	ob.mu.Lock()
	ob.flushLocked()
	ob.mu.Unlock()
}

// flushLocked closes the window: no more joins, runner wakes. Caller holds
// ob.mu (and possibly b.mu — the map entry is cleaned up by the runner,
// never here, to keep lock acquisition one-directional).
func (ob *openBatch) flushLocked() {
	if ob.closed {
		return
	}
	ob.closed = true
	ob.timer.Stop()
	close(ob.flushed)
}

// abandon removes a member whose context expired mid-linger. When the last
// live member leaves, the batch run (if any) is cancelled — there is
// nobody left to deliver to.
func (ob *openBatch) abandon(mb *batchMember) {
	ob.mu.Lock()
	if !mb.abandoned {
		mb.abandoned = true
		ob.live--
		if !ob.closed {
			// Pre-flush: free the rows so later joiners can still fill the
			// window. Post-flush the stacked extent is already decided.
			ob.rows -= mb.rows
		}
		if ob.live == 0 {
			if !ob.closed {
				ob.flushLocked()
			}
			ob.runCancel()
		}
	}
	ob.mu.Unlock()
}

// deliver hands r to every member still waiting. Caller must not hold
// ob.mu.
func (ob *openBatch) deliver(r batchResult) {
	ob.mu.Lock()
	for _, mb := range ob.members {
		if !mb.abandoned {
			mb.done <- r
		}
	}
	ob.mu.Unlock()
}

// run is the batch runner goroutine: it waits for the flush, then — with
// two or more live members — admits once at the members' highest priority,
// stacks the inputs, runs the cached engine once, and scatters the outputs
// back as zero-copy row views. Every non-success outcome hands the members
// back to the solo path (batchResult{solo: true}); see the package comment
// for why.
func (ob *openBatch) run() {
	defer ob.b.s.inflight.Done()
	defer ob.stopForce()
	defer ob.runCancel()
	<-ob.flushed
	flushAt := time.Now()

	// Retire this window's map entry (if a joiner hasn't already replaced
	// it). The runner holds no other lock here.
	ob.b.mu.Lock()
	if ob.b.open[ob.key] == ob {
		delete(ob.b.open, ob.key)
	}
	ob.b.mu.Unlock()

	ob.mu.Lock()
	members := make([]*batchMember, 0, len(ob.members))
	maxPrio := PriorityBestEffort
	rows := 0
	for _, mb := range ob.members {
		if mb.abandoned {
			continue
		}
		members = append(members, mb)
		rows += mb.rows
		if mb.req.Priority > maxPrio {
			maxPrio = mb.req.Priority
		}
	}
	ob.mu.Unlock()

	s := ob.b.s
	if len(members) == 0 {
		return
	}
	if len(members) < 2 {
		// Nothing coalesced: the lone request keeps the full solo-path
		// machinery (retries, estimator feeding, watchdog).
		s.stats.batchRun("solo", rows)
		ob.deliver(batchResult{solo: true})
		return
	}

	var sp *obs.Span
	if s.cfg.Observer != nil {
		sp = s.cfg.Observer.StartSpan("batch",
			obs.A("model", ob.m.name), obs.A("signature", ob.sig),
			obs.A("members", strconv.Itoa(len(members))), obs.A("rows", strconv.Itoa(rows)))
		defer sp.End()
	}

	key := ob.m.name + "@" + ob.sig
	if br := s.breakerFor(key); br != nil && !br.allow(time.Now()) {
		// Quarantined engine: members short-circuit to fallback solo,
		// where the outcome is counted once per request.
		s.stats.batchRun("solo", rows)
		ob.deliver(batchResult{solo: true})
		return
	}

	release, err := s.adm.admitQuiet(ob.runCtx, ob.m.name, maxPrio)
	if err != nil {
		// Rejected or force-drained: members re-enter admission solo so
		// every rejection is counted exactly once, against a real request.
		s.stats.batchRun("solo", rows)
		ob.deliver(batchResult{solo: true})
		return
	}
	defer release()

	// Async compilation: a batch must not stall behind the compiler any
	// more than a solo request would. On a cold engine, hand every member
	// back to the solo path — each is then served by the interpreter while
	// the background build (kicked by the solo path) proceeds.
	if s.cfg.AsyncCompile && !s.cfg.DisableFallback {
		_, _, ready, probeUnpin := s.engineFast(ob.m, ob.sig, key, sp)
		if probeUnpin != nil {
			// Readiness probe only — the run below re-acquires its own pin.
			probeUnpin()
		}
		if !ready {
			s.stats.batchRun("solo", rows)
			ob.deliver(batchResult{solo: true})
			return
		}
	}
	eng, _, hit, unpin, err := s.engine(ob.m, sp)
	if err != nil {
		s.stats.batchRun("error", rows)
		ob.deliver(batchResult{solo: true})
		return
	}
	defer unpin()
	if hit {
		s.stats.cacheHit()
	} else {
		s.stats.cacheMiss()
	}

	nin := len(members[0].req.Inputs)
	stacked := make([]*tensor.Tensor, nin)
	parts := make([]*tensor.Tensor, len(members))
	for i := 0; i < nin; i++ {
		for j, mb := range members {
			parts[j] = mb.req.Inputs[i]
		}
		stacked[i] = tensor.StackDim0(parts...)
	}

	runStart := time.Now()
	rctx := obs.ContextWithSpan(ob.runCtx, sp)
	res, err := runEngine(rctx, eng, stacked)
	if err != nil {
		// Engine fault (or cancellation because everyone abandoned): solo
		// retries drive the breaker and fallback with exact accounting.
		s.stats.batchRun("error", rows)
		ob.deliver(batchResult{solo: true})
		return
	}
	for _, o := range res.Outputs {
		if o.Rank() < 1 || o.Dim(0) != rows {
			// The analysis promised batch-major outputs; if an engine ever
			// violates that, serve everyone solo rather than mis-scatter.
			s.stats.batchRun("error", rows)
			ob.deliver(batchResult{solo: true})
			return
		}
	}
	if br := s.breakerFor(key); br != nil {
		br.success()
	}
	s.stats.batchRun("ok", rows)

	// Scatter: each member gets zero-copy views of its own row range in
	// every output. Members stacked in order, so offsets are prefix sums.
	// A member that abandoned after the snapshot paid for stacked rows
	// nobody reads; skipping its delivery is the only bookkeeping needed.
	ob.mu.Lock()
	row := 0
	for _, mb := range members {
		outs := make([]*tensor.Tensor, len(res.Outputs))
		for oi, o := range res.Outputs {
			outs[oi] = tensor.ViewDim0(o, row, mb.rows)
		}
		row += mb.rows
		if !mb.abandoned {
			mb.done <- batchResult{
				outs: outs, prof: res.Profile, hit: hit, rows: rows,
				flushAt: flushAt, runStart: runStart,
			}
		}
	}
	ob.mu.Unlock()
}
