package serve

import (
	"context"
	"strings"
	"testing"

	"godisc/internal/device"
	"godisc/internal/exec"
	"godisc/internal/fusion"
	"godisc/internal/graph"
	"godisc/internal/obs"
	"godisc/internal/opt"
	"godisc/internal/tensor"
)

// tracedCompile is realCompile with the observability hooks threaded into
// the executable, the way godisc.NewServer wires engines for a server
// with an Observer/Metrics config.
func tracedCompile(hook obs.Hook, reg *obs.Registry) CompileFunc {
	return func(g *graph.Graph) (Engine, error) {
		if _, err := opt.Default().Run(g); err != nil {
			return nil, err
		}
		plan, err := fusion.NewPlanner(fusion.DefaultConfig()).Plan(g)
		if err != nil {
			return nil, err
		}
		o := exec.DefaultOptions()
		o.Hook = hook
		o.Metrics = reg
		return exec.Compile(g, plan, device.A10(), o)
	}
}

// findChild returns the first direct child span with the given name.
func findChild(sd obs.SpanData, name string) (obs.SpanData, bool) {
	for _, c := range sd.Children {
		if c.Name == name {
			return c, true
		}
	}
	return obs.SpanData{}, false
}

// TestInferSpanTreeEndToEnd proves the request span crosses the layer
// boundary: serve opens infer/cache-lookup spans, the span rides the run
// context into the compiled engine, and exec hangs its exec/kernel
// children underneath — one connected tree per request.
func TestInferSpanTreeEndToEnd(t *testing.T) {
	tracer := obs.NewTracer(0)
	reg := obs.NewRegistry()
	s := New(Config{MaxConcurrent: 2, Observer: tracer, Metrics: reg},
		tracedCompile(tracer, reg))
	defer s.Close()
	if err := s.Register("mlp", buildMLP); err != nil {
		t.Fatal(err)
	}
	in, want := mlpInput(t, 3)
	for i := 0; i < 2; i++ { // first = miss+compile, second = hit
		resp, err := s.Infer(context.Background(), &Request{Model: "mlp", Inputs: []*tensor.Tensor{in}})
		if err != nil {
			t.Fatal(err)
		}
		if err := tensor.AllClose(resp.Outputs[0], want[0], 1e-5, 1e-6); err != nil {
			t.Fatal(err)
		}
	}

	traces := tracer.Snapshot()
	if len(traces) != 2 {
		t.Fatalf("recorded %d traces, want 2", len(traces))
	}
	for i, root := range traces {
		if root.Name != "infer" {
			t.Fatalf("trace %d root = %q, want infer", i, root.Name)
		}
		if root.Attrs["model"] != "mlp" {
			t.Errorf("trace %d: model attr = %q", i, root.Attrs["model"])
		}
		if root.DurNs <= 0 {
			t.Errorf("trace %d: non-positive duration", i)
		}
		if _, ok := findChild(root, "admit"); !ok {
			t.Errorf("trace %d: no admit child", i)
		}
		lookup, ok := findChild(root, "cache-lookup")
		if !ok {
			t.Fatalf("trace %d: no cache-lookup child", i)
		}
		if lookup.Attrs["signature"] == "" {
			t.Errorf("trace %d: cache-lookup has no signature attr", i)
		}
		_, compiled := findChild(lookup, "compile")
		if wantCompile := i == 0; compiled != wantCompile {
			t.Errorf("trace %d: compile child present = %t, want %t", i, compiled, wantCompile)
		}
		ex, ok := findChild(root, "exec")
		if !ok {
			t.Fatalf("trace %d: no exec child — span did not cross into the engine", i)
		}
		kernels := 0
		for _, c := range ex.Children {
			if c.Name == "kernel" || c.Name == "library" {
				kernels++
			}
		}
		if kernels == 0 {
			t.Errorf("trace %d: exec span has no kernel/library children", i)
		}
		// Child windows nest inside the root window.
		for _, c := range root.Children {
			if c.Start.Before(root.Start) {
				t.Errorf("trace %d: child %q starts before root", i, c.Name)
			}
		}
	}

	// Both layers' metrics landed in the one registry.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, series := range []string{
		"godisc_requests_total 2",
		`godisc_cache_lookups_total{result="hit"} 1`,
		`godisc_cache_lookups_total{result="miss"} 1`,
		"godisc_exec_tasks_total{",
		"godisc_pool_in_use_elems",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("registry missing %q after instrumented serve+exec run", series)
		}
	}
}
