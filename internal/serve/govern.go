// Cost- and deadline-aware admission: the governance half of the serving
// runtime. Plain slot/queue counting (PR 1) keeps the server from
// collapsing, but treats every request as equal and every deadline as
// achievable; under sustained overload that spends capacity on work that
// is doomed (deadlines that cannot be met) or expendable (best-effort
// traffic) while interactive requests starve. The admitter here keeps the
// slot/queue bounds and adds three policies:
//
//   - priority shedding: when the queue is full, an arriving request
//     evicts the youngest strictly-lower-priority waiter instead of being
//     rejected — Interactive > Batch > BestEffort;
//   - deadline infeasibility: a request whose remaining deadline is
//     provably below a moving estimate of queue wait + execution time is
//     rejected up front (ErrDeadlineInfeasible) instead of timing out
//     after consuming a slot;
//   - per-model quotas: optional caps on one model's queued+executing
//     occupancy, so a hot model cannot starve the rest.
//
// Rejection errors are preformatted at construction so the shed path
// stays O(1) alloc under overload (see BenchmarkQueueFullRejection).
package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"godisc/internal/discerr"
)

// Priority orders requests for admission under overload: when the queue
// is full, lower-priority waiters are shed to admit higher-priority
// arrivals. The zero value is PriorityBatch, so callers that never set it
// get the middle of the lattice.
type Priority int8

const (
	// PriorityBestEffort is shed first under pressure.
	PriorityBestEffort Priority = -1
	// PriorityBatch is the default for requests that do not say.
	PriorityBatch Priority = 0
	// PriorityInteractive is shed last: user-facing traffic.
	PriorityInteractive Priority = 1
)

// String names the priority for logs and span attributes.
func (p Priority) String() string {
	switch {
	case p >= PriorityInteractive:
		return "interactive"
	case p <= PriorityBestEffort:
		return "best-effort"
	default:
		return "batch"
	}
}

// QueueDepthNone configures a server with no admission queue at all:
// requests arriving while every execution slot is busy are rejected
// immediately with ErrQueueFull. (Any negative QueueDepth means the same;
// this constant replaces the sign magic at call sites.)
const QueueDepthNone = -1

// estimator keeps a moving estimate of per-request engine wall time, fed
// by successful compiled runs. The infeasibility check multiplies it out
// to "time until a new arrival would complete": its own execution plus
// the queue ahead of it drained MaxConcurrent-wide.
type estimator struct {
	mu   sync.Mutex
	ewma float64 // exec wall ns
	n    int64
}

const (
	estAlpha      = 0.2
	estMinSamples = 8
)

func (e *estimator) observe(d time.Duration) {
	e.mu.Lock()
	if e.n == 0 {
		e.ewma = float64(d)
	} else {
		e.ewma += estAlpha * (float64(d) - e.ewma)
	}
	e.n++
	e.mu.Unlock()
}

// estimate predicts queue wait + execution for a request arriving with
// queueAhead waiters already queued and `slots` execution lanes. ok is
// false until enough samples have accumulated — the estimator refuses to
// reject anything on a cold start.
func (e *estimator) estimate(queueAhead, slots int) (time.Duration, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.n < estMinSamples {
		return 0, false
	}
	if slots < 1 {
		slots = 1
	}
	total := e.ewma + e.ewma*float64(queueAhead+1)/float64(slots)
	return time.Duration(total), true
}

// execEstimate returns the moving single-run execution estimate, or 0
// until enough samples have accumulated — a cold estimator never stops a
// request from lingering in a batch window.
func (e *estimator) execEstimate() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.n < estMinSamples {
		return 0
	}
	return time.Duration(e.ewma)
}

// watchdog tracks per-(model@signature) engine wall latency and derives
// the hung-run cancellation limit: Multiple × the signature's moving
// average, floored so fast signatures aren't cancelled on scheduler
// noise. nil (or Multiple <= 0) disables the watchdog.
type watchdog struct {
	multiple float64
	floor    time.Duration

	mu   sync.Mutex
	sigs map[string]*sigLatency
}

type sigLatency struct {
	ewma float64
	n    int64
}

const watchdogMinSamples = 4

func newWatchdog(multiple float64, floor time.Duration) *watchdog {
	if multiple <= 0 {
		return nil
	}
	if floor <= 0 {
		floor = 10 * time.Millisecond
	}
	return &watchdog{multiple: multiple, floor: floor, sigs: map[string]*sigLatency{}}
}

func (wd *watchdog) observe(key string, d time.Duration) {
	if wd == nil {
		return
	}
	wd.mu.Lock()
	sl := wd.sigs[key]
	if sl == nil {
		sl = &sigLatency{}
		wd.sigs[key] = sl
	}
	if sl.n == 0 {
		sl.ewma = float64(d)
	} else {
		sl.ewma += estAlpha * (float64(d) - sl.ewma)
	}
	sl.n++
	wd.mu.Unlock()
}

// limit returns the cancellation deadline for one run of key, once the
// signature has enough history to judge "abnormally slow".
func (wd *watchdog) limit(key string) (time.Duration, bool) {
	if wd == nil {
		return 0, false
	}
	wd.mu.Lock()
	sl := wd.sigs[key]
	var lim time.Duration
	if sl != nil && sl.n >= watchdogMinSamples {
		lim = time.Duration(wd.multiple * sl.ewma)
	}
	wd.mu.Unlock()
	if lim == 0 {
		return 0, false
	}
	if lim < wd.floor {
		lim = wd.floor
	}
	return lim, true
}

// waiter is one queued request.
type waiter struct {
	model string
	prio  Priority
	seq   uint64
	// ready delivers the admission outcome: nil = slot granted, non-nil =
	// shed. Buffered so a grantor/shedder never blocks on a waiter that is
	// concurrently cancelling.
	ready chan error
	// granted marks a slot handed to this waiter (set under admitter.mu);
	// a cancelling waiter that finds it set owns a slot and must pass it on.
	granted bool
}

// admitter owns the execution slots, the priority queue and the
// governance policies. Counters go through the shared collector so the
// Stats snapshot and /metrics stay one source of truth.
type admitter struct {
	maxSlots   int
	queueDepth int
	quotas     map[string]int
	est        *estimator
	stats      *collector

	// Preformatted rejections: built once, returned by value on the hot
	// shed path (O(1) alloc — guarded by TestQueueFullRejectionAllocs).
	errQueueFull  error
	errShed       error
	errInfeasible error
	errQuota      map[string]error

	mu        sync.Mutex
	slots     int            // free execution slots
	occupancy map[string]int // per-model queued+executing
	waiters   []*waiter
	seq       uint64
}

func newAdmitter(cfg Config, stats *collector) *admitter {
	a := &admitter{
		maxSlots:   cfg.MaxConcurrent,
		queueDepth: cfg.QueueDepth,
		quotas:     cfg.ModelQuotas,
		est:        &estimator{},
		stats:      stats,
		slots:      cfg.MaxConcurrent,
		occupancy:  map[string]int{},
		errQueueFull: fmt.Errorf("serve: %d executing, %d queued: %w",
			cfg.MaxConcurrent, cfg.QueueDepth, discerr.ErrQueueFull),
		errShed: fmt.Errorf("serve: shed for a higher-priority request (%d executing, %d queued): %w",
			cfg.MaxConcurrent, cfg.QueueDepth, discerr.ErrQueueFull),
		errInfeasible: fmt.Errorf("serve: remaining deadline below estimated queue+exec time: %w",
			discerr.ErrDeadlineInfeasible),
	}
	if len(cfg.ModelQuotas) > 0 {
		a.errQuota = make(map[string]error, len(cfg.ModelQuotas))
		for model, q := range cfg.ModelQuotas {
			a.errQuota[model] = fmt.Errorf("serve: model %q at quota %d: %w",
				model, q, discerr.ErrQuotaExceeded)
		}
	}
	return a
}

// admit acquires an execution slot for (model, prio), queueing up to
// QueueDepth waiters and applying quota, infeasibility and shedding
// policy. On success the returned release frees the slot (exactly once).
// Rejections are pre-counted into the collector by reason; context errors
// are the caller's to classify.
func (a *admitter) admit(ctx context.Context, model string, prio Priority) (func(), error) {
	return a.admitWith(ctx, model, prio, true)
}

// admitQuiet is admission for the batch runner: identical slot/queue/quota
// policy, but this caller's own rejections are not counted — a rejected
// batch hands its members back to the solo path, where each re-enters
// admission and is counted exactly once, as a real request. (Victims shed
// FOR the batch are still counted: they are real requests.)
func (a *admitter) admitQuiet(ctx context.Context, model string, prio Priority) (func(), error) {
	return a.admitWith(ctx, model, prio, false)
}

func (a *admitter) admitWith(ctx context.Context, model string, prio Priority, count bool) (func(), error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	a.mu.Lock()
	if q, ok := a.quotas[model]; ok && a.occupancy[model] >= q {
		a.mu.Unlock()
		if count {
			a.stats.quotaRejected()
		}
		return nil, a.errQuota[model]
	}
	if a.slots > 0 {
		a.slots--
		a.occupancy[model]++
		a.mu.Unlock()
		a.stats.running(+1)
		return func() { a.release(model) }, nil
	}
	// Every slot is busy: is the deadline even achievable from the back
	// of the queue?
	if dl, ok := ctx.Deadline(); ok {
		if eta, have := a.est.estimate(len(a.waiters), a.maxSlots); have && time.Until(dl) < eta {
			a.mu.Unlock()
			if count {
				a.stats.infeasibleRejected()
			}
			return nil, a.errInfeasible
		}
	}
	if len(a.waiters) >= a.queueDepth {
		v := a.victimLocked(prio)
		if v == nil {
			a.mu.Unlock()
			if count {
				a.stats.queueFullRejected()
			}
			return nil, a.errQueueFull
		}
		a.removeLocked(v)
		a.occupancy[v.model]--
		a.stats.dequeued()
		v.ready <- a.errShed
		a.stats.shed()
	}
	w := &waiter{model: model, prio: prio, seq: a.seq, ready: make(chan error, 1)}
	a.seq++
	a.waiters = append(a.waiters, w)
	a.occupancy[model]++
	// Gauge updates happen at the list mutation points, under a.mu, so the
	// observed queue depth can never exceed the configured bound.
	a.stats.enqueued()
	a.mu.Unlock()

	select {
	case err := <-w.ready:
		if err != nil {
			return nil, err
		}
		a.stats.running(+1)
		return func() { a.release(model) }, nil
	case <-ctx.Done():
		a.mu.Lock()
		granted := w.granted
		removed := false
		if !granted {
			removed = a.removeLocked(w)
			if removed {
				a.occupancy[model]--
				a.stats.dequeued()
			}
		}
		a.mu.Unlock()
		if granted {
			// A grant raced our cancellation: we own a slot we will never
			// use — hand it to the next waiter.
			a.releaseSlot(model)
			return nil, ctx.Err()
		}
		if !removed {
			// A shed raced our cancellation: the shedder already removed us
			// and counted the rejection — honor its resolution.
			return nil, <-w.ready
		}
		return nil, ctx.Err()
	}
}

// release frees one executing request's slot.
func (a *admitter) release(model string) {
	a.stats.running(-1)
	a.releaseSlot(model)
}

// releaseSlot returns a slot to the best waiter (highest priority, FIFO
// within a class) or to the free pool.
func (a *admitter) releaseSlot(model string) {
	a.mu.Lock()
	a.occupancy[model]--
	if w := a.bestLocked(); w != nil {
		a.removeLocked(w)
		a.stats.dequeued()
		w.granted = true
		w.ready <- nil
	} else {
		a.slots++
	}
	a.mu.Unlock()
}

// bestLocked picks the next waiter to run: highest priority, oldest first
// within it.
func (a *admitter) bestLocked() *waiter {
	var best *waiter
	for _, w := range a.waiters {
		if best == nil || w.prio > best.prio || (w.prio == best.prio && w.seq < best.seq) {
			best = w
		}
	}
	return best
}

// victimLocked picks the waiter to shed for an arrival at prio: the
// youngest waiter of the lowest priority strictly below prio (the one
// that has invested the least wait), or nil when no waiter outranks.
func (a *admitter) victimLocked(prio Priority) *waiter {
	var victim *waiter
	for _, w := range a.waiters {
		if w.prio >= prio {
			continue
		}
		if victim == nil || w.prio < victim.prio || (w.prio == victim.prio && w.seq > victim.seq) {
			victim = w
		}
	}
	return victim
}

// removeLocked deletes w from the waiter list, reporting whether it was
// still queued (false means a grant or shed already claimed it).
func (a *admitter) removeLocked(w *waiter) bool {
	for i, o := range a.waiters {
		if o == w {
			a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
			return true
		}
	}
	return false
}
