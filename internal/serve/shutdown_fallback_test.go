package serve

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"godisc/internal/discerr"
	"godisc/internal/exec"
	"godisc/internal/graph"
	"godisc/internal/tensor"
)

// gatedFallbackServer builds a server whose engine always fails (so every
// request goes to the interpreter fallback) and whose model builder can
// be armed to block inside the fallback path — pinning a request
// mid-fallback so tests can race Shutdown against it.
func gatedFallbackServer(t *testing.T, armed *atomic.Bool, entered chan<- struct{}, gate <-chan struct{}) *Server {
	t.Helper()
	eng := engineFunc(func(context.Context, []*tensor.Tensor) (*exec.Result, error) {
		return nil, fmt.Errorf("boom: %w", discerr.ErrKernelPanic)
	})
	s := New(Config{MaxConcurrent: 2, MaxRetries: -1, BreakerThreshold: -1},
		func(*graph.Graph) (Engine, error) { return eng, nil })
	build := func() *graph.Graph {
		if armed.Load() {
			entered <- struct{}{}
			<-gate
		}
		return buildMLP()
	}
	if err := s.Register("m", build); err != nil {
		t.Fatal(err)
	}
	// Warm while unarmed so the signature and engine are cached.
	if err := s.Warm("m"); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestShutdownWaitsForInFlightFallback: a graceful Shutdown (no deadline)
// must not return while a request is mid-fallback, and the request must
// complete successfully once the fallback finishes.
func TestShutdownWaitsForInFlightFallback(t *testing.T) {
	var armed atomic.Bool
	entered := make(chan struct{}, 1)
	gate := make(chan struct{})
	s := gatedFallbackServer(t, &armed, entered, gate)
	armed.Store(true)

	in, want := mlpInput(t, 3)
	inferDone := make(chan error, 1)
	var resp *Response
	go func() {
		var err error
		resp, err = s.Infer(context.Background(), &Request{Model: "m", Inputs: []*tensor.Tensor{in}})
		inferDone <- err
	}()
	<-entered // request is inside the fallback build
	armed.Store(false)

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(context.Background()) }()
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a fallback was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(gate) // let the fallback finish
	if err := <-inferDone; err != nil {
		t.Fatalf("in-flight request failed: %v", err)
	}
	if !resp.Fallback {
		t.Fatal("response should be a fallback completion")
	}
	if err := tensor.AllClose(resp.Outputs[0], want[0], 1e-4, 1e-5); err != nil {
		t.Fatalf("fallback output: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("graceful Shutdown: %v", err)
	}
}

// TestShutdownForceCancelsInFlightFallback: when the drain deadline
// expires, the force-cancel must reach a request blocked in the fallback
// interpreter — EvaluateContext observes the cancelled context — and
// Shutdown returns only after the request unwound.
func TestShutdownForceCancelsInFlightFallback(t *testing.T) {
	var armed atomic.Bool
	entered := make(chan struct{}, 1)
	gate := make(chan struct{})
	s := gatedFallbackServer(t, &armed, entered, gate)
	armed.Store(true)

	in, _ := mlpInput(t, 3)
	inferDone := make(chan error, 1)
	go func() {
		_, err := s.Infer(context.Background(), &Request{Model: "m", Inputs: []*tensor.Tensor{in}})
		inferDone <- err
	}()
	<-entered
	armed.Store(false)

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(shutdownCtx) }()

	// Give the drain deadline time to expire and force-cancel; the
	// request is still pinned at the gate, so Shutdown must still wait.
	time.Sleep(60 * time.Millisecond)
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) before the fallback unwound", err)
	default:
	}

	close(gate) // evaluation resumes on a cancelled context and aborts
	err := <-inferDone
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("force-cancelled fallback returned %v, want context.Canceled", err)
	}
	if err := <-shutdownDone; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced Shutdown returned %v, want DeadlineExceeded", err)
	}
	st := s.Stats()
	if st.Canceled != 1 || st.Completed != 0 {
		t.Fatalf("canceled=%d completed=%d, want 1/0", st.Canceled, st.Completed)
	}
}
