package exec

import (
	"context"
	"fmt"

	"godisc/internal/graph"
	"godisc/internal/ral"
	"godisc/internal/tensor"
)

// runCtx is the mutable state of ONE invocation of an Executable. Every
// piece of per-run state — the value environment, pooled-buffer ownership,
// the profiler, the pool session — lives here and nowhere on the
// Executable, so one compiled engine can serve N goroutines concurrently:
// Run simply builds a fresh runCtx per call. The Executable itself is
// immutable after Compile (units, shape program, constants, liveness plan),
// and the shared Pool is internally locked.
type runCtx struct {
	exe    *Executable
	ctx    context.Context
	done   <-chan struct{}
	inputs []*tensor.Tensor
	// vals is the evaluated shape-program slot array for this call's
	// concrete input shapes.
	vals []int64
	// env maps every materialized value to its flat buffer.
	env map[*graph.Node][]float32
	// owned tracks which env buffers came from the pool and are still
	// held by this run; they return to the pool at their liveness point
	// or at release().
	owned map[*graph.Node][]float32
	// sess is this run's pool session (per-run accounting over the
	// shared pool).
	sess *ral.Session
	// prof receives this run's simulated profile.
	prof *ral.Profiler
}

// newRunCtx opens the per-call state for one invocation.
func (e *Executable) newRunCtx(ctx context.Context, inputs []*tensor.Tensor, vals []int64) *runCtx {
	return &runCtx{
		exe:    e,
		ctx:    ctx,
		done:   ctx.Done(),
		inputs: inputs,
		vals:   vals,
		env:    map[*graph.Node][]float32{},
		owned:  map[*graph.Node][]float32{},
		sess:   e.Pool.Session(),
		prof:   ral.NewProfiler(),
	}
}

// cancelled reports the context error once the context is done. It is
// checked between units, so a cancelled request stops before its next
// kernel launch (kernels themselves are short).
func (rc *runCtx) cancelled() error {
	if rc.done == nil {
		return nil
	}
	select {
	case <-rc.done:
		return rc.ctx.Err()
	default:
		return nil
	}
}

// valueOf returns the flat buffer of a computed or source value.
func (rc *runCtx) valueOf(n *graph.Node) ([]float32, error) {
	if v, ok := rc.env[n]; ok {
		return v, nil
	}
	switch n.Kind {
	case graph.OpParameter:
		v, err := flatten(rc.inputs[n.ParamIndex])
		if err != nil {
			return nil, fmt.Errorf("exec: parameter %d: %w", n.ParamIndex, err)
		}
		rc.env[n] = v
		return v, nil
	case graph.OpConstant:
		return rc.exe.constBufs[n], nil
	}
	return nil, fmt.Errorf("exec: value of %%%d (%s) not yet computed", n.ID, n.Kind)
}

// freeDead returns pooled buffers whose last use was unit i (compile-time
// liveness planning).
func (rc *runCtx) freeDead(i int) {
	for _, dead := range rc.exe.freeAt[i] {
		if buf, ok := rc.owned[dead]; ok {
			rc.sess.Put(buf)
			delete(rc.owned, dead)
		}
	}
}

// release returns every pooled buffer this run still holds. It runs on
// every exit path (including cancellation and kernel errors) so one failed
// request can never leak pool memory from under concurrent ones.
func (rc *runCtx) release() {
	for n, b := range rc.owned {
		rc.sess.Put(b)
		delete(rc.owned, n)
	}
}
