package exec

import (
	"context"
	"fmt"
	"sync/atomic"

	"godisc/internal/obs"
	"godisc/internal/ral"
	"godisc/internal/tensor"
)

// runCtx is the mutable state of ONE invocation of an Executable. Every
// piece of per-run state — the value environment, pooled-buffer ownership,
// buffer reference counts, the profiler, the pool session — lives here and
// nowhere on the Executable, so one compiled engine can serve N goroutines
// concurrently: Run simply builds a fresh runCtx per call. The Executable
// itself is immutable after Compile (units, task DAG, shape program,
// constants, initial refcounts), and the shared Pool is internally locked.
//
// Values live in slot-indexed slices rather than maps so that concurrent
// workers of a parallel run never touch shared map internals: each slot is
// written by exactly one producer task, read by consumers that the DAG
// orders after it (happens-before through the scheduler's queue lock), and
// freed by whichever consumer drops its reference count to zero.
type runCtx struct {
	exe  *Executable
	ctx  context.Context
	done <-chan struct{}
	// vals is the evaluated shape-program slot array for this call's
	// concrete input shapes.
	vals []int64
	// env holds the flat buffer of every materialized value, by slot.
	env [][]float32
	// owned marks env slots whose buffers came from the pool and are still
	// held by this run.
	owned []bool
	// refs counts the remaining consumers of each slot; the consumer that
	// takes it to zero returns the buffer to the pool (liveness under
	// out-of-order completion).
	refs []int32
	// sess is this run's pool session (per-run accounting over the
	// shared pool).
	sess *ral.Session
	// prof receives this run's simulated profile. Parallel workers write
	// per-task shards and merge them through a ral.SharedProfiler instead
	// of touching prof directly.
	prof *ral.Profiler
	// span is this run's `exec` trace span (nil when observability is
	// off — the one branch executors pay per instrumentation point).
	span *obs.Span
}

// newRunCtx opens the per-call state for one invocation: parameters are
// flattened eagerly into their slots (so no two workers race to flatten
// one lazily) and constants are installed from the compile-time buffers.
func (e *Executable) newRunCtx(ctx context.Context, inputs []*tensor.Tensor, vals []int64) (*runCtx, error) {
	rc := &runCtx{
		exe:   e,
		ctx:   ctx,
		done:  ctx.Done(),
		vals:  vals,
		env:   make([][]float32, e.nSlots),
		owned: make([]bool, e.nSlots),
		refs:  make([]int32, e.nSlots),
		sess:  e.Pool.Session(),
		prof:  ral.NewProfiler(),
	}
	copy(rc.refs, e.refs0)
	for _, p := range e.paramRefs {
		buf, err := flatten(inputs[p.param])
		if err != nil {
			return nil, fmt.Errorf("exec: parameter %d: %w", p.param, err)
		}
		rc.env[p.slot] = buf
	}
	for _, c := range e.constRefs {
		rc.env[c.slot] = c.buf
	}
	return rc, nil
}

// cancelled reports the context error once the context is done. The
// sequential path checks it between units; the parallel scheduler checks
// it at partition granularity, so deadline/cancel takes effect mid-kernel.
func (rc *runCtx) cancelled() error {
	if rc.done == nil {
		return nil
	}
	select {
	case <-rc.done:
		return rc.ctx.Err()
	default:
		return nil
	}
}

// bufOf returns the buffer of slot s, which the task DAG guarantees was
// produced (or prefilled) before any consumer runs.
func (rc *runCtx) bufOf(s int) ([]float32, error) {
	if b := rc.env[s]; b != nil {
		return b, nil
	}
	return nil, fmt.Errorf("exec: slot %d not yet computed", s)
}

// setOwned installs a pooled buffer as slot s's value. Only the single
// producer task of s calls this.
func (rc *runCtx) setOwned(s int, buf []float32) {
	rc.env[s] = buf
	rc.owned[s] = true
}

// decRef drops one consumer reference from slot s; the reference that hits
// zero returns the pooled buffer (if any). References are counted so that
// tasks may complete out of order: whoever finishes last frees.
func (rc *runCtx) decRef(s int) {
	if atomic.AddInt32(&rc.refs[s], -1) != 0 {
		return
	}
	if rc.owned[s] {
		rc.sess.Put(rc.env[s])
		rc.owned[s] = false
		rc.env[s] = nil
	}
}

// release returns every pooled buffer this run still holds. It runs on
// every exit path (including cancellation and kernel errors), after all
// workers have stopped, so one failed request can never leak pool memory
// from under concurrent ones.
func (rc *runCtx) release() {
	for s, own := range rc.owned {
		if own {
			rc.sess.Put(rc.env[s])
			rc.owned[s] = false
			rc.env[s] = nil
		}
	}
}
