package exec

import (
	"context"
	"errors"
	"testing"
	"time"

	"godisc/internal/device"
	"godisc/internal/discerr"
	"godisc/internal/fusion"
	"godisc/internal/graph"
	"godisc/internal/opt"
	"godisc/internal/ral"
	"godisc/internal/symshape"
	"godisc/internal/tensor"
)

// compileOpts is the footprint tests' compile helper with custom Options.
func compileOpts(t *testing.T, g *graph.Graph, opts Options) *Executable {
	t.Helper()
	if _, err := opt.Default().Run(g); err != nil {
		t.Fatal(err)
	}
	plan, err := fusion.NewPlanner(fusion.DefaultConfig()).Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Compile(g, plan, device.A10(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// buildFootprintModel is an MLP-ish pipeline with a reduction, ranged so
// MaxFootprintBytes has declared bounds to work with.
func buildFootprintModel(g *graph.Graph) {
	b := g.Ctx.NewDim("B")
	g.Ctx.DeclareRange(b, 1, 64)
	h := g.Ctx.StaticDim(32)
	x := g.Parameter("x", tensor.F32, symshape.Shape{b, h})
	w := g.Constant(tensor.RandN(tensor.NewRNG(3), 0.3, 32, 32))
	y := g.Relu(g.MatMul(x, w))
	g.SetOutputs(g.Softmax(g.Add(y, x)))
}

// TestFootprintCoversPoolPeak is the core soundness property: the
// compile-time footprint (evaluated at the run's concrete shapes) must be
// an upper bound on the pool's observed in-use peak for that run, in both
// sequential and parallel modes.
func TestFootprintCoversPoolPeak(t *testing.T) {
	for _, workers := range []int{1, 4} {
		g := graph.New("fp")
		buildFootprintModel(g)
		opts := DefaultOptions()
		opts.Workers = workers
		e := compileOpts(t, g, opts)

		for _, batch := range []int{1, 7, 33, 64} {
			in := tensor.RandN(tensor.NewRNG(uint64(batch)), 1, batch, 32)
			fpBytes, err := e.FootprintBytes([][]int{{batch, 32}})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := e.Run([]*tensor.Tensor{in}); err != nil {
				t.Fatal(err)
			}
			peak := e.Pool.Stats().PeakElems
			if peak == 0 {
				t.Fatalf("workers=%d batch=%d: pool never allocated", workers, batch)
			}
			if 4*peak > fpBytes {
				t.Fatalf("workers=%d batch=%d: pool peak %d elems (%d bytes) exceeds footprint %d bytes",
					workers, batch, peak, 4*peak, fpBytes)
			}
		}
	}
}

func TestMaxFootprintBoundsEveryShape(t *testing.T) {
	g := graph.New("fpmax")
	buildFootprintModel(g)
	e := compileOpts(t, g, DefaultOptions())
	maxBytes, ok := e.MaxFootprintBytes()
	if !ok {
		t.Fatal("ranged model should have a max footprint")
	}
	for _, batch := range []int{1, 17, 64} {
		fp, err := e.FootprintBytes([][]int{{batch, 32}})
		if err != nil {
			t.Fatal(err)
		}
		if fp > maxBytes {
			t.Fatalf("batch %d footprint %d exceeds max %d", batch, fp, maxBytes)
		}
	}

	// Without a declared range the bound is unknowable.
	g2 := graph.New("fpunbounded")
	b := g2.Ctx.NewDim("B")
	x := g2.Parameter("x", tensor.F32, symshape.Shape{b, g2.Ctx.StaticDim(8)})
	g2.SetOutputs(g2.Relu(x))
	e2 := compileOpts(t, g2, DefaultOptions())
	if v, ok := e2.MaxFootprintBytes(); ok {
		t.Fatalf("unbounded model reported max footprint %d", v)
	}
}

func TestGovernorAdmitsAndAccountsRun(t *testing.T) {
	g := graph.New("fpgov")
	buildFootprintModel(g)
	opts := DefaultOptions()
	opts.Workers = 1
	opts.Governor = ral.NewGovernor(1 << 20)
	e := compileOpts(t, g, opts)
	in := tensor.RandN(tensor.NewRNG(1), 1, 16, 32)
	if _, err := e.Run([]*tensor.Tensor{in}); err != nil {
		t.Fatal(err)
	}
	st := opts.Governor.Stats()
	if st.Grants == 0 || st.ReservedBytes != 0 {
		t.Fatalf("governor after run: %+v", st)
	}
	fp, err := e.FootprintBytes([][]int{{16, 32}})
	if err != nil {
		t.Fatal(err)
	}
	if st.HighWaterBytes != fp {
		t.Fatalf("high water %d != footprint %d", st.HighWaterBytes, fp)
	}
}

func TestGovernorRejectsOversizedRun(t *testing.T) {
	g := graph.New("fpreject")
	buildFootprintModel(g)
	opts := DefaultOptions()
	opts.Workers = 1
	opts.Governor = ral.NewGovernor(64) // smaller than any run's buffers
	e := compileOpts(t, g, opts)
	in := tensor.RandN(tensor.NewRNG(1), 1, 16, 32)
	_, err := e.Run([]*tensor.Tensor{in})
	if !errors.Is(err, discerr.ErrMemoryBudget) {
		t.Fatalf("want ErrMemoryBudget, got %v", err)
	}
	if st := e.Pool.Stats(); st.InUseElems != 0 {
		t.Fatalf("rejected run leaked pool buffers: %+v", st)
	}
}

func TestGovernorBlockedRunHonoursDeadline(t *testing.T) {
	g := graph.New("fpblock")
	buildFootprintModel(g)
	opts := DefaultOptions()
	opts.Workers = 1
	gov := ral.NewGovernor(1 << 20)
	opts.Governor = gov
	e := compileOpts(t, g, opts)

	// Occupy almost the whole budget so the run's reservation must wait,
	// then let the request deadline expire.
	hold, err := gov.Reserve(context.Background(), (1<<20)-16)
	if err != nil {
		t.Fatal(err)
	}
	defer hold()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	in := tensor.RandN(tensor.NewRNG(1), 1, 16, 32)
	_, err = e.RunContext(ctx, []*tensor.Tensor{in})
	if !errors.Is(err, discerr.ErrMemoryBudget) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want ErrMemoryBudget wrapping DeadlineExceeded, got %v", err)
	}
}
