// Parallel execution engine: at compile time the fusion plan is turned
// into a task DAG (producer/consumer edges between units) with per-buffer
// reference counts replacing the index-ordered liveness plan; at run time
// a small worker pool launches tasks as their in-degrees drop to zero and
// splits large partitionable kernels into outer-loop ranges. The paper's
// RAL exists to extract hardware parallelism from fused kernels; this is
// the host-side analogue for the simulated device: multi-branch graphs use
// every core, single big kernels split by row/element range, and the
// result stays bit-identical to the sequential walk.
package exec

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"godisc/internal/discerr"
	"godisc/internal/faultinject"
	"godisc/internal/graph"
	"godisc/internal/obs"
	"godisc/internal/ral"
)

// DefaultWorkers resolves the default worker count for one run: the
// GODISC_WORKERS environment variable when set to a positive integer,
// otherwise GOMAXPROCS.
func DefaultWorkers() int {
	if s := os.Getenv("GODISC_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// WorkerPool bounds helper goroutines across every run that shares it (one
// pool per serving process, so concurrent requests cannot oversubscribe
// cores). It is a token limiter, not a set of persistent threads: a run's
// coordinator goroutine always executes tasks itself and borrows helper
// tokens opportunistically, so a pool exhausted by other requests degrades
// a run toward sequential execution instead of ever blocking it.
type WorkerPool struct {
	tokens chan struct{}
}

// NewWorkerPool sizes a pool for n-way execution (the coordinator plus
// n-1 helper tokens). n < 1 means DefaultWorkers().
func NewWorkerPool(n int) *WorkerPool {
	if n < 1 {
		n = DefaultWorkers()
	}
	return &WorkerPool{tokens: make(chan struct{}, n-1)}
}

// Size reports the worker count the pool was sized for.
func (p *WorkerPool) Size() int { return cap(p.tokens) + 1 }

// Observe registers the pool's utilization gauges on reg: its sizing and
// how many helper tokens are currently borrowed by running requests.
func (p *WorkerPool) Observe(reg *obs.Registry, labels ...obs.Label) {
	if p == nil || reg == nil {
		return
	}
	reg.GaugeFunc("godisc_worker_pool_size", func() float64 { return float64(p.Size()) }, labels...)
	reg.GaugeFunc("godisc_worker_helpers_busy", func() float64 { return float64(len(p.tokens)) }, labels...)
}

// tryAcquire takes a helper token without blocking.
func (p *WorkerPool) tryAcquire() bool {
	select {
	case p.tokens <- struct{}{}:
		return true
	default:
		return false
	}
}

func (p *WorkerPool) releaseToken() { <-p.tokens }

// task is one schedulable node of the compiled unit DAG (every non-alias
// unit). Alias units need no runtime action — the alias and its source
// share a slot — so they are resolved away at compile time.
type task struct {
	id int
	u  *unit
	// nDeps is the static in-degree: distinct producer tasks of this
	// task's inputs.
	nDeps int
	// outs lists dependent task ids whose in-degree drops when this task
	// completes.
	outs []int
	// inSlots/outSlots align with u.group.Inputs/Outputs (canonical slots).
	inSlots  []int
	outSlots []int
	// reads is the deduplicated slot set this task consumes; completing
	// the task drops one reference from each.
	reads []int
}

type paramRef struct{ slot, param int }

type constRef struct {
	slot int
	buf  []float32
}

// buildSchedule derives the task DAG and per-buffer reference counts from
// the fusion plan's producer/consumer edges. Replaces the old index-ordered
// freeAt plan: under out-of-order completion only a count of outstanding
// consumers frees buffers correctly.
func (e *Executable) buildSchedule() {
	// Aliases share their source's buffer: resolve every alias chain to
	// its root so the alias and its source are one slot.
	resolve := map[*graph.Node]*graph.Node{}
	for _, u := range e.units {
		if u.alias {
			resolve[u.group.Nodes[0]] = u.group.Nodes[0].Inputs[0]
		}
	}
	canon := func(n *graph.Node) *graph.Node {
		for {
			src, ok := resolve[n]
			if !ok {
				return n
			}
			n = src
		}
	}
	slotOf := map[*graph.Node]int{}
	slot := func(n *graph.Node) int {
		n = canon(n)
		if s, ok := slotOf[n]; ok {
			return s
		}
		s := e.nSlots
		e.nSlots++
		slotOf[n] = s
		return s
	}
	producer := map[int]int{} // slot -> producing task id
	for _, u := range e.units {
		if u.alias {
			slot(u.group.Nodes[0])
			continue
		}
		t := &task{id: len(e.tasks), u: u}
		for _, in := range u.group.Inputs {
			t.inSlots = append(t.inSlots, slot(in))
		}
		for _, out := range u.group.Outputs {
			sl := slot(out)
			t.outSlots = append(t.outSlots, sl)
			producer[sl] = t.id
		}
		e.tasks = append(e.tasks, t)
	}
	for _, t := range e.tasks {
		depSeen := map[int]bool{}
		readSeen := map[int]bool{}
		for _, sl := range t.inSlots {
			if !readSeen[sl] {
				readSeen[sl] = true
				t.reads = append(t.reads, sl)
			}
			if p, ok := producer[sl]; ok && p != t.id && !depSeen[p] {
				depSeen[p] = true
				t.nDeps++
				e.tasks[p].outs = append(e.tasks[p].outs, t.id)
			}
		}
	}
	// Initial reference counts: one per consuming task plus one per graph
	// output (results must survive to the end of the run).
	e.refs0 = make([]int32, e.nSlots)
	for _, t := range e.tasks {
		for _, sl := range t.reads {
			e.refs0[sl]++
		}
	}
	for _, o := range e.Graph.Outputs {
		sl := slot(o)
		e.outputSlots = append(e.outputSlots, sl)
		e.refs0[sl]++
	}
	for n, sl := range slotOf {
		switch n.Kind {
		case graph.OpParameter:
			e.paramRefs = append(e.paramRefs, paramRef{slot: sl, param: n.ParamIndex})
		case graph.OpConstant:
			e.constRefs = append(e.constRefs, constRef{slot: sl, buf: e.constBufs[n]})
		}
	}
}

// workItem is one queue entry: a whole task (cs == nil) or one partition
// chunk of a kernel launch.
type workItem struct {
	t      *task
	cs     *chunkState
	lo, hi int
}

// chunkState is the shared state of a partitioned kernel launch; the chunk
// that drops pending to zero finalizes the unit (combine step, cost
// charge, completion).
type chunkState struct {
	t       *task
	ln      *launch
	shard   *ral.Profiler
	span    *obs.Span // the unit's kernel span; ended at finalize
	chunks  int
	pending int32
}

// scheduler drives one parallel run. The ready queue is a LIFO stack under
// one mutex (depth-first: finish the current kernel's chunks before
// opening new units); the calling goroutine is the coordinator and always
// participates, so a run makes progress even when the shared pool has no
// spare tokens — the property that makes pool sharing deadlock-free across
// concurrent requests.
type scheduler struct {
	e          *Executable
	rc         *runCtx
	pool       *WorkerPool
	workers    int
	maxHelpers int
	sp         *ral.SharedProfiler

	mu        sync.Mutex
	cond      *sync.Cond
	queue     []workItem
	inDeg     []int
	remaining int
	helpers   int
	err       error

	wg sync.WaitGroup
}

// runParallel executes the task DAG with up to `workers` goroutines
// (coordinator included). On any failure — kernel error, panic, fault
// injection, cancellation — the DAG is drained structurally: queued tasks
// become no-ops that still propagate completion, so every goroutine winds
// down and every pooled buffer is accounted for before returning.
func (e *Executable) runParallel(rc *runCtx, workers int, pool *WorkerPool) error {
	s := &scheduler{
		e:          e,
		rc:         rc,
		pool:       pool,
		workers:    workers,
		maxHelpers: workers - 1,
		sp:         ral.ShareProfiler(rc.prof),
		inDeg:      make([]int, len(e.tasks)),
		remaining:  len(e.tasks),
	}
	s.cond = sync.NewCond(&s.mu)
	var seed []workItem
	for _, t := range e.tasks {
		s.inDeg[t.id] = t.nDeps
		if t.nDeps == 0 {
			seed = append(seed, workItem{t: t})
		}
	}
	s.push(seed)
	s.runWorker(true)
	s.wg.Wait()
	return s.err
}

// push appends items (LIFO order) and recruits helpers up to min(queue
// length, maxHelpers, available pool tokens).
func (s *scheduler) push(items []workItem) {
	s.mu.Lock()
	s.queue = append(s.queue, items...)
	spawn := s.spawnCountLocked()
	s.cond.Broadcast()
	s.mu.Unlock()
	s.startHelpers(spawn)
}

func (s *scheduler) spawnCountLocked() int {
	spawn := 0
	for s.helpers+spawn < s.maxHelpers && s.helpers+spawn < len(s.queue) && s.pool.tryAcquire() {
		spawn++
	}
	s.helpers += spawn
	return spawn
}

func (s *scheduler) startHelpers(n int) {
	for i := 0; i < n; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.runWorker(false)
			s.pool.releaseToken()
		}()
	}
}

// runWorker pops and executes items. Helpers exit as soon as the queue is
// momentarily empty (returning their token to the shared pool); the
// coordinator instead sleeps until new items arrive or the run completes.
func (s *scheduler) runWorker(coordinator bool) {
	for {
		s.mu.Lock()
		for coordinator && len(s.queue) == 0 && s.remaining > 0 {
			s.cond.Wait()
		}
		if len(s.queue) == 0 {
			if !coordinator {
				s.helpers--
			}
			s.mu.Unlock()
			return
		}
		it := s.queue[len(s.queue)-1]
		s.queue = s.queue[:len(s.queue)-1]
		s.mu.Unlock()
		if it.cs != nil {
			s.execChunk(it)
		} else {
			s.execTask(it.t)
		}
	}
}

// fail records the run's first error; later tasks drain as no-ops.
func (s *scheduler) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

func (s *scheduler) aborted() bool { return s.currentErr() != nil }

func (s *scheduler) currentErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

func panicErr(r any) error {
	return fmt.Errorf("exec: recovered: %v: %w", r, discerr.ErrKernelPanic)
}

// execTask runs one unit. Kernel launches above the grain threshold are
// split into outer-loop range chunks (or per-worker partials for full
// reductions) that re-enter the queue; everything else runs inline. A
// panicking kernel fails the run but still completes the task so the DAG
// drains.
func (s *scheduler) execTask(t *task) {
	handedOff := false
	var sp *obs.Span
	defer func() {
		if r := recover(); r != nil {
			s.fail(panicErr(r))
			sp.End()
			if !handedOff {
				s.complete(t)
			}
		}
	}()
	if err := s.rc.cancelled(); err != nil {
		s.fail(err)
	}
	if s.aborted() {
		handedOff = true
		s.complete(t)
		return
	}
	if s.rc.span != nil {
		name, unit := t.spanInfo()
		sp = s.rc.span.Child(name, obs.A("unit", unit))
	}
	shard := ral.NewProfiler()
	if t.u.isLib {
		err := s.e.runLibrary(s.rc, t, shard)
		handedOff = true
		sp.End()
		s.finishTask(t, shard, err)
		return
	}
	ln, err := s.e.prepareKernel(s.rc, t)
	if err != nil {
		handedOff = true
		sp.End()
		s.finishTask(t, nil, err)
		return
	}
	if err := s.e.opts.Faults.Check(faultinject.SiteKernelLaunch); err != nil {
		handedOff = true
		sp.End()
		s.finishTask(t, nil, fmt.Errorf("exec: launching %s: %w", ln.k.Name, err))
		return
	}
	chunks := 1
	if ln.k.Partial != nil {
		if p := partialCount(ln.numel, ln.k.GrainPoints, s.workers); p > 1 {
			partials, err := s.rc.sess.Get(p)
			if err != nil {
				handedOff = true
				sp.End()
				s.finishTask(t, nil, err)
				return
			}
			ln.partials = partials
			ln.pbufs = append(append(make([][]float32, 0, len(ln.bufs)+1), ln.bufs...), partials)
			ln.pdims = append(append(make([]int, 0, len(ln.dims)+1), ln.dims...), p)
			ln.outer = p
			chunks = p
		}
	} else if ln.outer > 1 {
		chunks = chunkCount(ln.numel, ln.k.GrainPoints, ln.outer, s.workers)
	}
	if chunks <= 1 {
		err := s.e.runWholeKernel(s.rc, ln)
		if err == nil {
			s.e.chargeKernel(shard, ln, 1)
		}
		handedOff = true
		sp.End()
		s.finishTask(t, shard, err)
		return
	}
	handedOff = true
	s.launchChunks(t, ln, chunks, shard, sp)
}

// partialCount picks the number of per-worker partials for a full
// reduction: at most one per worker, and none unless each partial covers
// at least a grain of work (a tiny reduction is cheaper sequential).
func partialCount(numel, grain, workers int) int {
	if grain <= 0 || numel < 2*grain {
		return 1
	}
	return min(workers, numel/grain)
}

// chunkCount picks how many range chunks to split a kernel into: enough to
// spread across workers (with slack for imbalance), never finer than the
// grain size, never more than the outer extent.
func chunkCount(numel, grain, outer, workers int) int {
	if grain <= 0 {
		return 1
	}
	c := min(outer, numel/grain, 4*workers)
	if c < 2 {
		return 1
	}
	return c
}

// splitRange returns the half-open outer range of chunk i of n over extent.
func splitRange(extent, n, i int) (lo, hi int) {
	base, rem := extent/n, extent%n
	lo = i*base + min(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}

func (s *scheduler) launchChunks(t *task, ln *launch, chunks int, shard *ral.Profiler, sp *obs.Span) {
	cs := &chunkState{t: t, ln: ln, shard: shard, span: sp, chunks: chunks, pending: int32(chunks)}
	items := make([]workItem, chunks)
	for i := 0; i < chunks; i++ {
		lo, hi := splitRange(ln.outer, chunks, i)
		items[i] = workItem{cs: cs, lo: lo, hi: hi}
	}
	s.push(items)
}

// execChunk runs one partition chunk. Cancellation is checked here — at
// partition granularity — so a deadline takes effect mid-kernel, not just
// between units. The chunk that drops pending to zero finalizes the unit.
func (s *scheduler) execChunk(it workItem) {
	cs := it.cs
	settled := false
	defer func() {
		if r := recover(); r != nil {
			s.fail(panicErr(r))
			if !settled && atomic.AddInt32(&cs.pending, -1) == 0 {
				s.finalizeChunks(cs)
			}
		}
	}()
	if err := s.rc.cancelled(); err != nil {
		s.fail(err)
	} else if !s.aborted() {
		var csp *obs.Span
		if cs.span != nil {
			csp = cs.span.Child("partition", obs.A("range", fmt.Sprintf("%d:%d", it.lo, it.hi)))
		}
		if err := s.e.runChunk(s.rc, cs.ln, it.lo, it.hi); err != nil {
			s.fail(err)
		}
		csp.End()
	}
	settled = true
	if atomic.AddInt32(&cs.pending, -1) == 0 {
		s.finalizeChunks(cs)
	}
}

// finalizeChunks completes a partitioned launch: the combine step for
// partial reductions, the cost charge (identical to a sequential launch —
// the simulated device already runs the kernel "in parallel"; partitioning
// buys host wall-clock, not simulated time), and task completion.
func (s *scheduler) finalizeChunks(cs *chunkState) {
	done := false
	defer func() {
		if r := recover(); r != nil {
			s.fail(panicErr(r))
			if !done {
				s.complete(cs.t)
			}
		}
	}()
	ln := cs.ln
	err := s.currentErr()
	if err == nil && ln.partials != nil {
		outBuf := ln.bufs[len(cs.t.u.group.Inputs)]
		err = ln.k.Partial.Combine.Run([][]float32{ln.partials, outBuf}, []int{len(ln.partials)})
	}
	if ln.partials != nil {
		s.rc.sess.Put(ln.partials)
		ln.partials = nil
	}
	if err == nil {
		s.e.chargeKernel(cs.shard, ln, cs.chunks)
		s.sp.Merge(cs.shard)
	} else {
		s.fail(err)
	}
	cs.span.End()
	done = true
	s.complete(cs.t)
}

// finishTask merges the task's profile shard (on success), records any
// error, and completes the task.
func (s *scheduler) finishTask(t *task, shard *ral.Profiler, err error) {
	if err != nil {
		s.fail(err)
	} else if shard != nil {
		s.sp.Merge(shard)
	}
	s.complete(t)
}

// complete drops this task's buffer references, releases dependents whose
// in-degree hits zero, and wakes the coordinator. Runs for every task on
// every path (success, failure, abort drain) exactly once.
func (s *scheduler) complete(t *task) {
	s.e.mTasks.Inc()
	if !s.e.opts.DisableLivenessPlanning {
		for _, sl := range t.reads {
			s.rc.decRef(sl)
		}
	}
	var ready []workItem
	s.mu.Lock()
	for _, d := range t.outs {
		s.inDeg[d]--
		if s.inDeg[d] == 0 {
			ready = append(ready, workItem{t: s.e.tasks[d]})
		}
	}
	s.remaining--
	s.queue = append(s.queue, ready...)
	spawn := s.spawnCountLocked()
	s.cond.Broadcast()
	s.mu.Unlock()
	s.startHelpers(spawn)
}
