package exec

import (
	"testing"

	"godisc/internal/device"
	"godisc/internal/fusion"
	"godisc/internal/graph"
	"godisc/internal/opt"
	"godisc/internal/randgraph"
	"godisc/internal/tensor"
)

// Differential testing: random valid graphs (internal/randgraph),
// compiled through the full pipeline and compared against the reference
// interpreter at several dynamic shapes. This is the broad-spectrum
// correctness net over fusion, codegen, variant dispatch, and the
// runtime. The opt and fusion packages run their own differential nets
// over the same generator at randomized worker counts.

func buildRandom(seed uint64, steps, h int) *graph.Graph {
	return randgraph.Build(seed, steps, h)
}

func TestDifferentialRandomGraphs(t *testing.T) {
	const trials = 60
	dev := device.A10()
	for seed := uint64(1); seed <= trials; seed++ {
		steps := 4 + int(seed%12)
		h := []int{4, 8, 16}[seed%3]
		ref := buildRandom(seed, steps, h)
		cg := buildRandom(seed, steps, h)
		if err := cg.Verify(); err != nil {
			t.Fatalf("seed %d: generator produced invalid graph: %v", seed, err)
		}
		if _, err := opt.Default().Run(cg); err != nil {
			t.Fatalf("seed %d: optimize: %v", seed, err)
		}
		plan, err := fusion.NewPlanner(fusion.DefaultConfig()).Plan(cg)
		if err != nil {
			t.Fatalf("seed %d: plan: %v", seed, err)
		}
		exe, err := Compile(cg, plan, dev, DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		r := tensor.NewRNG(seed * 7)
		for _, shape := range [][2]int{{1, 1}, {1, 3}, {2, 17}} {
			x := tensor.RandN(r, 0.5, shape[0], shape[1], h)
			y := tensor.RandN(r, 0.5, shape[0], shape[1], h)
			want, err := graph.Evaluate(ref, []*tensor.Tensor{x, y})
			if err != nil {
				t.Fatalf("seed %d: reference: %v", seed, err)
			}
			got, err := exe.Run([]*tensor.Tensor{x, y})
			if err != nil {
				t.Fatalf("seed %d shape %v: run: %v", seed, shape, err)
			}
			for i := range want {
				if err := tensor.AllClose(got.Outputs[i], want[i], 2e-4, 2e-4); err != nil {
					t.Fatalf("seed %d shape %v output %d: %v\nplan:\n%s",
						seed, shape, i, err, plan)
				}
			}
		}
	}
}

// TestDifferentialSerializedRandomGraphs additionally routes every random
// graph through the text serializer before compiling — the parser and
// writer join the differential net.
func TestDifferentialSerializedRandomGraphs(t *testing.T) {
	const trials = 20
	dev := device.A10()
	for seed := uint64(100); seed < 100+trials; seed++ {
		ref := buildRandom(seed, 8, 8)
		parsed, err := graph.ParseText(graph.WriteText(buildRandom(seed, 8, 8)))
		if err != nil {
			t.Fatalf("seed %d: round trip: %v", seed, err)
		}
		if _, err := opt.Default().Run(parsed); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		plan, err := fusion.NewPlanner(fusion.DefaultConfig()).Plan(parsed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		exe, err := Compile(parsed, plan, dev, DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r := tensor.NewRNG(seed)
		x := tensor.RandN(r, 0.5, 2, 9, 8)
		y := tensor.RandN(r, 0.5, 2, 9, 8)
		want, err := graph.Evaluate(ref, []*tensor.Tensor{x, y})
		if err != nil {
			t.Fatal(err)
		}
		got, err := exe.Run([]*tensor.Tensor{x, y})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := range want {
			if err := tensor.AllClose(got.Outputs[i], want[i], 2e-4, 2e-4); err != nil {
				t.Fatalf("seed %d output %d: %v", seed, i, err)
			}
		}
	}
}

// TestDifferentialFusionConfigs compiles each random graph under opposite
// fusion configurations; any disagreement is a fusion/codegen miscompile.
func TestDifferentialFusionConfigs(t *testing.T) {
	const trials = 30
	dev := device.A10()
	for seed := uint64(200); seed < 200+trials; seed++ {
		mk := func(cfg fusion.Config) *Executable {
			g := buildRandom(seed, 10, 8)
			if _, err := opt.Default().Run(g); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			plan, err := fusion.NewPlanner(cfg).Plan(g)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			exe, err := Compile(g, plan, dev, DefaultOptions())
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return exe
		}
		fused := mk(fusion.DefaultConfig())
		unfused := mk(fusion.Config{})
		r := tensor.NewRNG(seed)
		x := tensor.RandN(r, 0.5, 3, 13, 8)
		y := tensor.RandN(r, 0.5, 3, 13, 8)
		fres, err := fused.Run([]*tensor.Tensor{x, y})
		if err != nil {
			t.Fatalf("seed %d fused: %v", seed, err)
		}
		ures, err := unfused.Run([]*tensor.Tensor{x, y})
		if err != nil {
			t.Fatalf("seed %d unfused: %v", seed, err)
		}
		for i := range fres.Outputs {
			if err := tensor.AllClose(fres.Outputs[i], ures.Outputs[i], 2e-4, 2e-4); err != nil {
				t.Fatalf("seed %d output %d: fused and unfused disagree: %v", seed, i, err)
			}
		}
	}
}
