package exec

import (
	"fmt"
	"testing"

	"godisc/internal/device"
	"godisc/internal/fusion"
	"godisc/internal/graph"
	"godisc/internal/opt"
	"godisc/internal/symshape"
	"godisc/internal/tensor"
)

// Differential testing: random valid graphs, compiled through the full
// pipeline and compared against the reference interpreter at several
// dynamic shapes. This is the broad-spectrum correctness net over fusion,
// codegen, variant dispatch, and the runtime.

// graphGen builds random graphs over a [B, S, H] value pool using a
// numerically tame op set (values squashed regularly so exp never
// overflows).
type graphGen struct {
	r *tensor.RNG
	g *graph.Graph
	// pool holds f32 values of shape [B,S,H].
	pool []*graph.Node
	// reducedPool holds values of shape [B,S,1] or [B,S].
	reducedPool []*graph.Node
	h           int
}

func newGraphGen(seed uint64, h int) *graphGen {
	gg := &graphGen{r: tensor.NewRNG(seed), h: h}
	g := graph.New(fmt.Sprintf("fuzz%d", seed))
	b := g.Ctx.NewDim("B")
	s := g.Ctx.NewDim("S")
	g.Ctx.DeclareRange(s, 1, 512)
	x := g.Parameter("x", tensor.F32, symshape.Shape{b, s, g.Ctx.StaticDim(int64(h))})
	y := g.Parameter("y", tensor.F32, symshape.Shape{b, s, g.Ctx.StaticDim(int64(h))})
	gg.g = g
	gg.pool = []*graph.Node{x, y}
	return gg
}

func (gg *graphGen) pick() *graph.Node { return gg.pool[gg.r.Intn(len(gg.pool))] }

// squash keeps magnitudes tame.
func (gg *graphGen) squash(n *graph.Node) *graph.Node {
	switch gg.r.Intn(3) {
	case 0:
		return gg.g.Tanh(n)
	case 1:
		return gg.g.Sigmoid(n)
	default:
		return gg.g.Mul(n, gg.g.ConstScalar(0.5))
	}
}

// step adds one random op to the pool.
func (gg *graphGen) step() {
	g := gg.g
	switch gg.r.Intn(10) {
	case 0, 1: // unary
		ops := []func(*graph.Node) *graph.Node{g.Relu, g.Gelu, g.Tanh, g.Abs, g.Neg, g.Sigmoid}
		gg.pool = append(gg.pool, ops[gg.r.Intn(len(ops))](gg.pick()))
	case 2, 3: // binary same-shape
		a, b := gg.pick(), gg.pick()
		ops := []func(a, b *graph.Node) *graph.Node{g.Add, g.Sub, g.Mul, g.Maximum, g.Minimum}
		gg.pool = append(gg.pool, gg.squash(ops[gg.r.Intn(len(ops))](a, b)))
	case 4: // bias broadcast
		bias := g.Constant(tensor.RandN(gg.r, 0.3, gg.h))
		gg.pool = append(gg.pool, g.Add(gg.pick(), bias))
	case 5: // softmax over last axis
		gg.pool = append(gg.pool, g.Softmax(gg.pick()))
	case 6: // layernorm
		gamma := g.Constant(tensor.RandUniform(gg.r, 0.9, 1.1, gg.h))
		beta := g.Constant(tensor.RandN(gg.r, 0.1, gg.h))
		gg.pool = append(gg.pool, g.LayerNorm(gg.pick(), gamma, beta, 1e-5))
	case 7: // matmul with constant weight [H,H]
		w := g.Constant(tensor.RandN(gg.r, 0.2, gg.h, gg.h))
		gg.pool = append(gg.pool, gg.squash(g.MatMul(gg.pick(), w)))
	case 8: // row reduction -> reduced pool
		kinds := []tensor.ReduceKind{tensor.ReduceSum, tensor.ReduceMax, tensor.ReduceMean}
		red := g.ReduceOp(gg.pick(), kinds[gg.r.Intn(len(kinds))], []int{-1}, true)
		gg.reducedPool = append(gg.reducedPool, red)
	case 9: // combine a reduced value back in (broadcast over H)
		if len(gg.reducedPool) == 0 {
			gg.pool = append(gg.pool, g.Relu(gg.pick()))
			return
		}
		red := gg.reducedPool[gg.r.Intn(len(gg.reducedPool))]
		gg.pool = append(gg.pool, gg.squash(g.Sub(gg.pick(), red)))
	}
}

// finish selects outputs: the last value plus possibly a reduced one.
func (gg *graphGen) finish() *graph.Graph {
	outs := []*graph.Node{gg.pool[len(gg.pool)-1]}
	if len(gg.reducedPool) > 0 && gg.r.Intn(2) == 0 {
		outs = append(outs, gg.reducedPool[len(gg.reducedPool)-1])
	}
	gg.g.SetOutputs(outs...)
	return gg.g
}

func buildRandom(seed uint64, steps, h int) *graph.Graph {
	gg := newGraphGen(seed, h)
	for i := 0; i < steps; i++ {
		gg.step()
	}
	return gg.finish()
}

func TestDifferentialRandomGraphs(t *testing.T) {
	const trials = 60
	dev := device.A10()
	for seed := uint64(1); seed <= trials; seed++ {
		steps := 4 + int(seed%12)
		h := []int{4, 8, 16}[seed%3]
		ref := buildRandom(seed, steps, h)
		cg := buildRandom(seed, steps, h)
		if err := cg.Verify(); err != nil {
			t.Fatalf("seed %d: generator produced invalid graph: %v", seed, err)
		}
		if _, err := opt.Default().Run(cg); err != nil {
			t.Fatalf("seed %d: optimize: %v", seed, err)
		}
		plan, err := fusion.NewPlanner(fusion.DefaultConfig()).Plan(cg)
		if err != nil {
			t.Fatalf("seed %d: plan: %v", seed, err)
		}
		exe, err := Compile(cg, plan, dev, DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		r := tensor.NewRNG(seed * 7)
		for _, shape := range [][2]int{{1, 1}, {1, 3}, {2, 17}} {
			x := tensor.RandN(r, 0.5, shape[0], shape[1], h)
			y := tensor.RandN(r, 0.5, shape[0], shape[1], h)
			want, err := graph.Evaluate(ref, []*tensor.Tensor{x, y})
			if err != nil {
				t.Fatalf("seed %d: reference: %v", seed, err)
			}
			got, err := exe.Run([]*tensor.Tensor{x, y})
			if err != nil {
				t.Fatalf("seed %d shape %v: run: %v", seed, shape, err)
			}
			for i := range want {
				if err := tensor.AllClose(got.Outputs[i], want[i], 2e-4, 2e-4); err != nil {
					t.Fatalf("seed %d shape %v output %d: %v\nplan:\n%s",
						seed, shape, i, err, plan)
				}
			}
		}
	}
}

// TestDifferentialSerializedRandomGraphs additionally routes every random
// graph through the text serializer before compiling — the parser and
// writer join the differential net.
func TestDifferentialSerializedRandomGraphs(t *testing.T) {
	const trials = 20
	dev := device.A10()
	for seed := uint64(100); seed < 100+trials; seed++ {
		ref := buildRandom(seed, 8, 8)
		parsed, err := graph.ParseText(graph.WriteText(buildRandom(seed, 8, 8)))
		if err != nil {
			t.Fatalf("seed %d: round trip: %v", seed, err)
		}
		if _, err := opt.Default().Run(parsed); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		plan, err := fusion.NewPlanner(fusion.DefaultConfig()).Plan(parsed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		exe, err := Compile(parsed, plan, dev, DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r := tensor.NewRNG(seed)
		x := tensor.RandN(r, 0.5, 2, 9, 8)
		y := tensor.RandN(r, 0.5, 2, 9, 8)
		want, err := graph.Evaluate(ref, []*tensor.Tensor{x, y})
		if err != nil {
			t.Fatal(err)
		}
		got, err := exe.Run([]*tensor.Tensor{x, y})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := range want {
			if err := tensor.AllClose(got.Outputs[i], want[i], 2e-4, 2e-4); err != nil {
				t.Fatalf("seed %d output %d: %v", seed, i, err)
			}
		}
	}
}

// TestDifferentialFusionConfigs compiles each random graph under opposite
// fusion configurations; any disagreement is a fusion/codegen miscompile.
func TestDifferentialFusionConfigs(t *testing.T) {
	const trials = 30
	dev := device.A10()
	for seed := uint64(200); seed < 200+trials; seed++ {
		mk := func(cfg fusion.Config) *Executable {
			g := buildRandom(seed, 10, 8)
			if _, err := opt.Default().Run(g); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			plan, err := fusion.NewPlanner(cfg).Plan(g)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			exe, err := Compile(g, plan, dev, DefaultOptions())
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return exe
		}
		fused := mk(fusion.DefaultConfig())
		unfused := mk(fusion.Config{})
		r := tensor.NewRNG(seed)
		x := tensor.RandN(r, 0.5, 3, 13, 8)
		y := tensor.RandN(r, 0.5, 3, 13, 8)
		fres, err := fused.Run([]*tensor.Tensor{x, y})
		if err != nil {
			t.Fatalf("seed %d fused: %v", seed, err)
		}
		ures, err := unfused.Run([]*tensor.Tensor{x, y})
		if err != nil {
			t.Fatalf("seed %d unfused: %v", seed, err)
		}
		for i := range fres.Outputs {
			if err := tensor.AllClose(fres.Outputs[i], ures.Outputs[i], 2e-4, 2e-4); err != nil {
				t.Fatalf("seed %d output %d: fused and unfused disagree: %v", seed, i, err)
			}
		}
	}
}
