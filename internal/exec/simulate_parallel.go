package exec

import (
	"fmt"

	"godisc/internal/codegen"
	"godisc/internal/device"
	"godisc/internal/discerr"
)

// ParallelSim is the modeled outcome of executing one run's task DAG over
// a bounded set of host workers (see SimulateSchedule).
type ParallelSim struct {
	// Workers is the modeled lane count.
	Workers int
	// SerialNs is the sum of every unit's host+device cost — the modeled
	// completion time of the sequential engine.
	SerialNs float64
	// MakespanNs is the modeled completion time under DAG list scheduling
	// with kernel partitioning: independent units overlap, and kernels
	// above the grain threshold split into chunks that fill idle lanes.
	MakespanNs float64
	// Chunks is the total number of partitioned chunks in the schedule.
	Chunks int
	// Tasks is the DAG width input: the number of schedulable units.
	Tasks int
}

// Speedup is the modeled sequential-over-parallel ratio.
func (s *ParallelSim) Speedup() float64 {
	if s.MakespanNs <= 0 {
		return 1
	}
	return s.SerialNs / s.MakespanNs
}

// SimulateSchedule models the parallel engine's schedule at the given
// concrete input shapes without executing kernels: each task is costed
// exactly as Simulate does (host dispatch + analytic device time), then
// list-scheduled over `workers` lanes respecting the compiled unit DAG,
// with partitionable kernels split into the same chunk counts the real
// scheduler would use. The ratio SerialNs/MakespanNs is the
// machine-independent scaling curve of E14 — wall-clock measurements of
// the same engine converge to it as host cores become available.
func (e *Executable) SimulateSchedule(inputShapes [][]int, workers int) (*ParallelSim, error) {
	if len(inputShapes) != len(e.Graph.Params) {
		return nil, fmt.Errorf("exec: %d input shapes for %d parameters: %w",
			len(inputShapes), len(e.Graph.Params), discerr.ErrShapeMismatch)
	}
	if workers < 1 {
		workers = 1
	}
	vals, err := e.prog.Run(inputShapes)
	if err != nil {
		return nil, err
	}

	sim := &ParallelSim{Workers: workers, Tasks: len(e.tasks)}

	// Cost and chunk count per task, mirroring Simulate and the real
	// scheduler's partitioning policy.
	costs := make([]float64, len(e.tasks))
	chunks := make([]int, len(e.tasks))
	for i, t := range e.tasks {
		chunks[i] = 1
		u := t.u
		if u.isLib {
			n := u.group.Nodes[0]
			aShape := evalRefs(vals, u.inShapeRefs[0])
			bShape := evalRefs(vals, u.inShapeRefs[1])
			oShape := evalRefs(vals, u.outShapeRefs[0])
			_, bytes, flops := libraryCost(n.Kind, aShape, bShape, oShape)
			costs[i] = e.opts.HostDispatchNs + e.Dev.MatmulTimeNs(bytes, flops)
			sim.SerialNs += costs[i]
			continue
		}
		k := u.kernel
		numel := refsNumel(vals, u.domainRefs)
		rowLen := 0
		if n := len(u.domainRefs); n > 0 {
			r := u.domainRefs[n-1]
			if r.Slot < 0 {
				rowLen = int(r.Static)
			} else {
				rowLen = int(vals[r.Slot])
			}
		}
		dims := evalRefs(vals, u.kernelDimRefs)
		variant := k.Select(codegen.RunInfoOf(numel, rowLen, dims))
		var bytes float64
		for _, refs := range u.inShapeRefs {
			bytes += float64(4 * refsNumel(vals, refs))
		}
		for _, refs := range u.outShapeRefs {
			bytes += float64(4 * refsNumel(vals, refs))
		}
		passPenalty := 1 + 0.08*float64(k.Passes-1)
		cost := device.KernelCost{
			Bytes:             bytes * passPenalty,
			Flops:             float64(k.FlopsPerPoint) * float64(numel),
			MemEfficiency:     variant.MemEfficiency,
			ComputeEfficiency: variant.ComputeEfficiency,
		}
		costs[i] = e.opts.HostDispatchNs + e.Dev.KernelTimeNs(cost)
		sim.SerialNs += costs[i]
		if workers > 1 && k.ParallelOuter && variant.Code != nil && variant.Code.Partitionable() {
			outer := variant.Code.OuterExtent(dims)
			if k.Partial != nil {
				if c := partialCount(numel, k.GrainPoints, workers); c > 1 {
					chunks[i] = c
				}
			} else if c := chunkCount(numel, k.GrainPoints, outer, workers); c > 1 {
				chunks[i] = c
			}
		}
	}

	if workers == 1 {
		sim.MakespanNs = sim.SerialNs
		return sim, nil
	}

	// Greedy list schedule in topological order (tasks are already stored
	// in plan order, which is a topological order of the unit DAG): every
	// task starts at the max of its dependencies' finish times and the
	// earliest lane availability; a partitioned task occupies `chunks`
	// lanes with cost/chunks each and finishes when its last chunk does.
	lanes := make([]float64, workers)
	finish := make([]float64, len(e.tasks))
	ready := make([]float64, len(e.tasks))
	for i, t := range e.tasks {
		c := chunks[i]
		per := costs[i] / float64(c)
		var last float64
		for ch := 0; ch < c; ch++ {
			// Earliest-available lane.
			li := 0
			for l := 1; l < len(lanes); l++ {
				if lanes[l] < lanes[li] {
					li = l
				}
			}
			start := lanes[li]
			if ready[i] > start {
				start = ready[i]
			}
			lanes[li] = start + per
			if lanes[li] > last {
				last = lanes[li]
			}
		}
		finish[i] = last
		if c > 1 {
			sim.Chunks += c
		}
		// Task ids are indices into e.tasks, assigned in plan order, so
		// every dependent has a larger index and is scheduled later.
		for _, out := range t.outs {
			if finish[i] > ready[out] {
				ready[out] = finish[i]
			}
		}
	}
	for _, f := range finish {
		if f > sim.MakespanNs {
			sim.MakespanNs = f
		}
	}
	return sim, nil
}
