package exec

import (
	"bytes"
	"testing"

	"godisc/internal/device"
	"godisc/internal/fusion"
	"godisc/internal/models"
	"godisc/internal/opt"
	"godisc/internal/randgraph"
	"godisc/internal/tensor"
)

// TestEngineImageRoundTripModels encodes and decodes every model-zoo engine
// and requires the reloaded engine to produce bit-identical outputs,
// identical simulated profiles, identical footprints and the same capacity
// bound as the original — the property the persistent engine cache rests on.
func TestEngineImageRoundTripModels(t *testing.T) {
	for _, m := range models.Registry() {
		orig := compile(t, m.Build(), fusion.DefaultConfig())
		data, err := orig.EncodeImage()
		if err != nil {
			t.Fatalf("%s: encode: %v", m.Name, err)
		}
		dec, err := DecodeImage(data, device.A10(), DefaultOptions())
		if err != nil {
			t.Fatalf("%s: decode: %v", m.Name, err)
		}
		for _, p := range [][2]int{{1, 4}, {3, 17}, {8, 96}} {
			seqLen := min(p[1], m.MaxSeq)
			r := tensor.NewRNG(uint64(7 * (p[0] + seqLen)))
			ins := m.GenInputs(r, p[0], seqLen)
			requireBitIdentical(t, orig, dec, ins, m.Name)

			shapes := make([][]int, len(ins))
			for i, in := range ins {
				shapes[i] = in.Shape()
			}
			po, err := orig.Simulate(shapes)
			if err != nil {
				t.Fatalf("%s: simulate original: %v", m.Name, err)
			}
			pd, err := dec.Simulate(shapes)
			if err != nil {
				t.Fatalf("%s: simulate decoded: %v", m.Name, err)
			}
			if po.SimulatedNs != pd.SimulatedNs {
				t.Fatalf("%s: simulated time %v vs %v after round trip", m.Name, po.SimulatedNs, pd.SimulatedNs)
			}
			fo, err := orig.FootprintBytes(shapes)
			if err != nil {
				t.Fatalf("%s: footprint original: %v", m.Name, err)
			}
			fd, err := dec.FootprintBytes(shapes)
			if err != nil {
				t.Fatalf("%s: footprint decoded: %v", m.Name, err)
			}
			if fo != fd {
				t.Fatalf("%s: footprint %d vs %d after round trip", m.Name, fo, fd)
			}
		}
		mo, oko := orig.MaxFootprintBytes()
		md, okd := dec.MaxFootprintBytes()
		if mo != md || oko != okd {
			t.Fatalf("%s: max footprint (%d,%v) vs (%d,%v) after round trip", m.Name, mo, oko, md, okd)
		}
	}
}

// TestEngineImageRoundTripRandomGraphs covers the fuzz-shaped corner of the
// format: random graphs, parallel workers on the decoded side.
func TestEngineImageRoundTripRandomGraphs(t *testing.T) {
	const trials = 25
	for seed := uint64(900); seed < 900+trials; seed++ {
		h := []int{4, 8, 16}[seed%3]
		g := buildRandom(seed, 4+int(seed%10), h)
		if _, err := opt.Default().Run(g); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		plan, err := fusion.NewPlanner(fusion.DefaultConfig()).Plan(g)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		orig, err := Compile(g, plan, device.A10(), DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		data, err := orig.EncodeImage()
		if err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		o := DefaultOptions()
		o.Workers = 2 + int(seed%3)
		dec, err := DecodeImage(data, device.A10(), o)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		r := tensor.NewRNG(seed)
		b, s := 1+int(r.Intn(4)), 1+int(r.Intn(24))
		ins := randgraph.Inputs(r, b, s, h)
		requireBitIdentical(t, orig, dec, ins, "randgraph")
		if st := dec.Pool.Stats(); st.InUseElems != 0 {
			t.Fatalf("seed %d: decoded engine leaked %d elems", seed, st.InUseElems)
		}
	}
}

// TestEngineImageDeterministic requires EncodeImage to be stable for one
// engine: cache entries should not churn on disk across identical persists.
func TestEngineImageDeterministic(t *testing.T) {
	m := models.Registry()[0]
	e := compile(t, m.Build(), fusion.DefaultConfig())
	a, err := e.EncodeImage()
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.EncodeImage()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("EncodeImage is not deterministic for a fixed engine")
	}
}

// TestDecodeImageRejectsGarbage feeds the decoder hostile inputs and
// requires errors, never panics.
func TestDecodeImageRejectsGarbage(t *testing.T) {
	m := models.Registry()[0]
	e := compile(t, m.Build(), fusion.DefaultConfig())
	valid, err := e.EncodeImage()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"short":     valid[:len(valid)/3],
		"garbage":   []byte("not an engine image at all"),
		"truncated": valid[:len(valid)-7],
	}
	// Bit flips across the payload: every one must decode cleanly or error,
	// never panic (the recover in DecodeImage is the backstop; validation
	// catches structural damage).
	for i := 0; i < len(valid); i += 101 {
		flipped := append([]byte(nil), valid...)
		flipped[i] ^= 0x40
		cases["bitflip"] = flipped
		for name, data := range cases {
			if _, err := DecodeImage(data, device.A10(), DefaultOptions()); err == nil && name != "bitflip" {
				t.Fatalf("%s: decode accepted malformed input", name)
			}
		}
		delete(cases, "bitflip")
	}
}
