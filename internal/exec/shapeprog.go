package exec

import (
	"fmt"

	"godisc/internal/discerr"

	"godisc/internal/graph"
	"godisc/internal/symshape"
)

// Host-side shape computation, compiled. BladeDISC emits host code that
// derives every intermediate extent from the input shapes; this file is
// that compiler: at executable-build time the symbolic dimension graph is
// flattened into a shapeProgram — input fills with their validation facts,
// followed by derived-dimension steps in dependency order. At run time the
// program evaluates into a flat slot array with no map lookups or
// recursion; every unit's domain, kernel dims and buffer sizes read slots.

// dimRef is a compiled reference to a dimension value: either a static
// constant (Slot < 0) or a program slot.
type dimRef struct {
	Static int64
	Slot   int
}

// shapeStepKind enumerates derived-dimension evaluation ops.
type shapeStepKind uint8

const (
	stepProduct shapeStepKind = iota
	stepSum
	stepQuot
	stepAffine
)

// shapeStep computes one derived slot from earlier slots/statics.
type shapeStep struct {
	Kind shapeStepKind
	Slot int
	Args []dimRef
	// A, B parameterize quotients (denom = A) and affines (scale = A,
	// offset = B).
	A, B int64
}

// fillCheck binds (and validates) one input dimension.
type fillCheck struct {
	Param, Dim int
	// Slot receives the value; -1 means the dim is static and only the
	// equality check applies.
	Slot   int
	Static int64
	Lo, Hi int64
	Div    int64
}

// shapeProgram is the compiled host shape computation.
type shapeProgram struct {
	slots int
	fills []fillCheck
	steps []shapeStep
}

// shapeCompiler builds a shapeProgram over a graph's dimension context.
type shapeCompiler struct {
	ctx    *symshape.Context
	slotOf map[symshape.DimID]int
	prog   *shapeProgram
	// building guards against (pathological) cyclic decompositions.
	building map[symshape.DimID]bool
	// inputRoots are roots directly filled from parameters; they never
	// need derivation steps.
	inputRoots map[symshape.DimID]bool
}

// compileShapeProgram builds the program for g: fills for every parameter
// dimension, then derivation steps for every root in needed.
func compileShapeProgram(g *graph.Graph, needed []symshape.DimID) (*shapeProgram, map[symshape.DimID]int, error) {
	sc := &shapeCompiler{
		ctx:        g.Ctx,
		slotOf:     map[symshape.DimID]int{},
		prog:       &shapeProgram{},
		building:   map[symshape.DimID]bool{},
		inputRoots: map[symshape.DimID]bool{},
	}
	// Fills first: parameter dims are value sources.
	for pi, p := range g.Params {
		for di, d := range p.Shape {
			fc := fillCheck{Param: pi, Dim: di, Slot: -1, Div: 1}
			if v, ok := sc.ctx.StaticValue(d); ok {
				fc.Static = v
				sc.prog.fills = append(sc.prog.fills, fc)
				continue
			}
			r := sc.ctx.Root(d)
			slot, ok := sc.slotOf[r]
			if !ok {
				slot = sc.newSlot(r)
			}
			sc.inputRoots[r] = true
			desc := sc.ctx.Describe(r)
			fc.Slot = slot
			fc.Lo, fc.Hi = desc.Lo, desc.Hi
			fc.Div = desc.Divisor
			if fc.Div < 1 {
				fc.Div = 1
			}
			sc.prog.fills = append(sc.prog.fills, fc)
		}
	}
	for _, d := range needed {
		if _, err := sc.ref(d); err != nil {
			return nil, nil, err
		}
	}
	return sc.prog, sc.slotOf, nil
}

func (sc *shapeCompiler) newSlot(r symshape.DimID) int {
	slot := sc.prog.slots
	sc.prog.slots++
	sc.slotOf[r] = slot
	return slot
}

// ref resolves d to a dimRef, emitting derivation steps as needed.
func (sc *shapeCompiler) ref(d symshape.DimID) (dimRef, error) {
	if v, ok := sc.ctx.StaticValue(d); ok {
		return dimRef{Static: v, Slot: -1}, nil
	}
	r := sc.ctx.Root(d)
	if slot, ok := sc.slotOf[r]; ok {
		return dimRef{Slot: slot}, nil
	}
	if sc.building[r] {
		return dimRef{}, fmt.Errorf("exec: cyclic dimension decomposition at %s", sc.ctx.Name(d))
	}
	sc.building[r] = true
	defer delete(sc.building, r)

	desc := sc.ctx.Describe(r)
	var step shapeStep
	switch desc.Kind {
	case symshape.KindProduct:
		step.Kind = stepProduct
	case symshape.KindSum:
		step.Kind = stepSum
	case symshape.KindQuotient:
		step.Kind = stepQuot
		step.A = desc.Denom
	case symshape.KindAffine:
		step.Kind = stepAffine
		step.A = desc.Scale
		step.B = desc.Offset
	default:
		return dimRef{}, fmt.Errorf("exec: dimension %s is not derivable from the graph inputs", sc.ctx.Name(d))
	}
	for _, op := range desc.Operands {
		opRef, err := sc.ref(op)
		if err != nil {
			return dimRef{}, err
		}
		step.Args = append(step.Args, opRef)
	}
	step.Slot = sc.newSlot(r)
	sc.prog.steps = append(sc.prog.steps, step)
	return dimRef{Slot: step.Slot}, nil
}

// Run evaluates the program for one invocation's input shapes.
func (p *shapeProgram) Run(inputShapes [][]int) ([]int64, error) {
	vals := make([]int64, p.slots)
	set := make([]bool, p.slots)
	for _, f := range p.fills {
		if f.Param >= len(inputShapes) || f.Dim >= len(inputShapes[f.Param]) {
			return nil, fmt.Errorf("exec: input %d has too few dims: %w", f.Param, discerr.ErrShapeMismatch)
		}
		v := int64(inputShapes[f.Param][f.Dim])
		if v < 0 {
			return nil, fmt.Errorf("exec: input %d dim %d is negative: %w", f.Param, f.Dim, discerr.ErrShapeMismatch)
		}
		if f.Slot < 0 {
			if v != f.Static {
				return nil, fmt.Errorf("exec: input %d dim %d must be %d, got %d: %w", f.Param, f.Dim, f.Static, v, discerr.ErrShapeMismatch)
			}
			continue
		}
		if set[f.Slot] {
			if vals[f.Slot] != v {
				return nil, fmt.Errorf("exec: input %d dim %d bound to both %d and %d (same symbolic dimension): %w",
					f.Param, f.Dim, vals[f.Slot], v, discerr.ErrShapeMismatch)
			}
			continue
		}
		if v < f.Lo || v > f.Hi {
			return nil, fmt.Errorf("exec: input %d dim %d = %d outside declared range [%d,%d]: %w",
				f.Param, f.Dim, v, f.Lo, f.Hi, discerr.ErrShapeMismatch)
		}
		if f.Div > 1 && v%f.Div != 0 {
			return nil, fmt.Errorf("exec: input %d dim %d = %d violates divisibility by %d: %w",
				f.Param, f.Dim, v, f.Div, discerr.ErrShapeMismatch)
		}
		vals[f.Slot] = v
		set[f.Slot] = true
	}
	get := func(r dimRef) (int64, error) {
		if r.Slot < 0 {
			return r.Static, nil
		}
		if !set[r.Slot] {
			return 0, fmt.Errorf("exec: unbound dimension slot %d", r.Slot)
		}
		return vals[r.Slot], nil
	}
	for _, s := range p.steps {
		var out int64
		switch s.Kind {
		case stepProduct:
			out = 1
			for _, a := range s.Args {
				v, err := get(a)
				if err != nil {
					return nil, err
				}
				out *= v
			}
		case stepSum:
			for _, a := range s.Args {
				v, err := get(a)
				if err != nil {
					return nil, err
				}
				out += v
			}
		case stepQuot:
			v, err := get(s.Args[0])
			if err != nil {
				return nil, err
			}
			if v%s.A != 0 {
				return nil, fmt.Errorf("exec: %d not divisible by %d in derived dimension: %w", v, s.A, discerr.ErrShapeMismatch)
			}
			out = v / s.A
		case stepAffine:
			v, err := get(s.Args[0])
			if err != nil {
				return nil, err
			}
			out = s.A*v + s.B
			if out < 0 {
				return nil, fmt.Errorf("exec: derived dimension %d*%d%+d is negative: %w", s.A, v, s.B, discerr.ErrShapeMismatch)
			}
		}
		vals[s.Slot] = out
		set[s.Slot] = true
	}
	return vals, nil
}

// evalRefs materializes a compiled shape.
func evalRefs(vals []int64, refs []dimRef) []int {
	out := make([]int, len(refs))
	for i, r := range refs {
		if r.Slot < 0 {
			out[i] = int(r.Static)
		} else {
			out[i] = int(vals[r.Slot])
		}
	}
	return out
}

// refsNumel multiplies a compiled shape's extents.
func refsNumel(vals []int64, refs []dimRef) int {
	n := 1
	for _, r := range refs {
		if r.Slot < 0 {
			n *= int(r.Static)
		} else {
			n *= int(vals[r.Slot])
		}
	}
	return n
}
