package exec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"godisc/internal/discerr"
	"godisc/internal/fusion"
	"godisc/internal/graph"
	"godisc/internal/symshape"
	"godisc/internal/tensor"
)

// buildServingModelGraph is a small transformer-ish block exercising
// kernels, a library matmul, stitched softmax (scratch rows) and liveness
// planning — the unit mix a serving engine dispatches concurrently.
func buildServingModelGraph(g *graph.Graph) {
	b := g.Ctx.NewDim("B")
	s := g.Ctx.NewDim("S")
	g.Ctx.DeclareRange(b, 1, 64)
	g.Ctx.DeclareRange(s, 1, 256)
	x := g.Parameter("x", tensor.F32, symshape.Shape{b, s, g.Ctx.StaticDim(16)})
	w := g.Constant(tensor.RandN(tensor.NewRNG(7), 0.1, 16, 16))
	h := g.MatMul(x, w)
	g.SetOutputs(g.Softmax(g.Add(g.Relu(h), g.Tanh(x))))
}

// TestConcurrentRunMatchesReference drives one compiled executable from
// many goroutines with mixed dynamic shapes and checks every result
// against the reference interpreter; afterwards the shared pool must have
// zero buffers outstanding (run contexts release everything they draw).
func TestConcurrentRunMatchesReference(t *testing.T) {
	cg, ref := buildTwice(buildServingModelGraph)
	e := compile(t, cg, fusion.DefaultConfig())

	shapes := [][]int{{1, 3}, {2, 7}, {4, 16}, {8, 33}, {3, 5}, {1, 64}, {6, 12}, {2, 40}}
	type testCase struct {
		in   *tensor.Tensor
		want []*tensor.Tensor
	}
	r := tensor.NewRNG(11)
	cases := make([]testCase, len(shapes))
	for i, sh := range shapes {
		in := tensor.RandN(r, 1, sh[0], sh[1], 16)
		want, err := graph.Evaluate(ref, []*tensor.Tensor{in})
		if err != nil {
			t.Fatal(err)
		}
		cases[i] = testCase{in: in, want: want}
	}

	const goroutines = 8
	const itersPerGoroutine = 10
	var wg sync.WaitGroup
	errc := make(chan error, goroutines*itersPerGoroutine)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for it := 0; it < itersPerGoroutine; it++ {
				tc := cases[(gi+it)%len(cases)]
				res, err := e.RunContext(context.Background(), []*tensor.Tensor{tc.in})
				if err != nil {
					errc <- err
					return
				}
				for oi := range tc.want {
					if err := tensor.AllClose(res.Outputs[oi], tc.want[oi], 1e-4, 1e-5); err != nil {
						errc <- fmt.Errorf("goroutine %d iter %d output %d: %w", gi, it, oi, err)
						return
					}
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	st := e.Pool.Stats()
	if st.InUseElems != 0 {
		t.Fatalf("pool has %d elems outstanding after all runs", st.InUseElems)
	}
	if st.Allocs == 0 {
		t.Fatal("expected pooled allocations")
	}
	if st.Reuses == 0 {
		t.Fatal("concurrent steady-state runs must reuse pooled buffers")
	}
}

// TestRunContextCancellation: a cancelled context stops the run between
// units with ctx.Err(), and the aborted run leaks nothing from the pool.
func TestRunContextCancellation(t *testing.T) {
	cg, _ := buildTwice(buildServingModelGraph)
	e := compile(t, cg, fusion.DefaultConfig())

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := tensor.RandN(tensor.NewRNG(3), 1, 2, 8, 16)
	if _, err := e.RunContext(ctx, []*tensor.Tensor{in}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := e.Pool.Stats(); st.InUseElems != 0 {
		t.Fatalf("cancelled run leaked %d elems", st.InUseElems)
	}
	// The engine still works after a cancelled run.
	if _, err := e.Run([]*tensor.Tensor{in}); err != nil {
		t.Fatal(err)
	}
}

// TestRunShapeMismatchSentinel: invalid inputs surface as
// discerr.ErrShapeMismatch, so servers can branch with errors.Is.
func TestRunShapeMismatchSentinel(t *testing.T) {
	cg, _ := buildTwice(buildServingModelGraph)
	e := compile(t, cg, fusion.DefaultConfig())

	// Wrong arity.
	if _, err := e.Run(nil); !errors.Is(err, discerr.ErrShapeMismatch) {
		t.Fatalf("arity err = %v", err)
	}
	// Static dim violated (last dim must be 16).
	bad := tensor.RandN(tensor.NewRNG(1), 1, 2, 8, 17)
	if _, err := e.Run([]*tensor.Tensor{bad}); !errors.Is(err, discerr.ErrShapeMismatch) {
		t.Fatalf("static dim err = %v", err)
	}
	// Declared range violated (S <= 256).
	big := tensor.RandN(tensor.NewRNG(1), 1, 2, 300, 16)
	if _, err := e.Run([]*tensor.Tensor{big}); !errors.Is(err, discerr.ErrShapeMismatch) {
		t.Fatalf("range err = %v", err)
	}
}
