package exec

import (
	"fmt"

	"godisc/internal/codegen"
	"godisc/internal/device"
	"godisc/internal/discerr"
	"godisc/internal/ral"
)

// Simulate charges the cost model for a run over the given concrete input
// shapes without executing any kernel or allocating buffers. It is used by
// baselines that execute at *different* shapes than the logical request —
// e.g. the TensorRT-style strategy pays for bucket-padded shapes — and by
// sweeps that only need performance, not values. It shares the compiled
// shape program with Run.
func (e *Executable) Simulate(inputShapes [][]int) (*ral.Profiler, error) {
	if len(inputShapes) != len(e.Graph.Params) {
		return nil, fmt.Errorf("exec: %d input shapes for %d parameters: %w",
			len(inputShapes), len(e.Graph.Params), discerr.ErrShapeMismatch)
	}
	vals, err := e.prog.Run(inputShapes)
	if err != nil {
		return nil, err
	}
	prof := ral.NewProfiler()
	for _, u := range e.units {
		switch {
		case u.alias:
			// Zero cost.
		case u.isLib:
			n := u.group.Nodes[0]
			aShape := evalRefs(vals, u.inShapeRefs[0])
			bShape := evalRefs(vals, u.inShapeRefs[1])
			oShape := evalRefs(vals, u.outShapeRefs[0])
			name, bytes, flops := libraryCost(n.Kind, aShape, bShape, oShape)
			prof.Host(e.opts.HostDispatchNs)
			prof.Library(name, bytes, flops, e.Dev.MatmulTimeNs(bytes, flops))
		default:
			k := u.kernel
			numel := refsNumel(vals, u.domainRefs)
			rowLen := 0
			if n := len(u.domainRefs); n > 0 {
				r := u.domainRefs[n-1]
				if r.Slot < 0 {
					rowLen = int(r.Static)
				} else {
					rowLen = int(vals[r.Slot])
				}
			}
			dims := evalRefs(vals, u.kernelDimRefs)
			variant := k.Select(codegen.RunInfoOf(numel, rowLen, dims))
			var bytes float64
			for _, refs := range u.inShapeRefs {
				bytes += float64(4 * refsNumel(vals, refs))
			}
			for _, refs := range u.outShapeRefs {
				bytes += float64(4 * refsNumel(vals, refs))
			}
			passPenalty := 1 + 0.08*float64(k.Passes-1)
			cost := device.KernelCost{
				Bytes:             bytes * passPenalty,
				Flops:             float64(k.FlopsPerPoint) * float64(numel),
				MemEfficiency:     variant.MemEfficiency,
				ComputeEfficiency: variant.ComputeEfficiency,
			}
			prof.Host(e.opts.HostDispatchNs)
			prof.Launch(k.Name, variant.Name, cost.Bytes, cost.Flops, e.Dev.KernelTimeNs(cost))
		}
	}
	return prof, nil
}
