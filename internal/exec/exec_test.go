package exec

import (
	"testing"

	"godisc/internal/device"
	"godisc/internal/fusion"
	"godisc/internal/graph"
	"godisc/internal/opt"
	"godisc/internal/symshape"
	"godisc/internal/tensor"
)

// compile optimizes, plans and compiles a graph with the given fusion
// config.
func compile(t *testing.T, g *graph.Graph, fcfg fusion.Config) *Executable {
	t.Helper()
	if _, err := opt.Default().Run(g); err != nil {
		t.Fatal(err)
	}
	plan, err := fusion.NewPlanner(fcfg).Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Compile(g, plan, device.A10(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// checkAgainstReference runs the compiled executable and the reference
// interpreter on the same inputs and compares outputs. It returns the
// profile for further assertions.
func checkAgainstReference(t *testing.T, e *Executable, ref *graph.Graph, inputs []*tensor.Tensor) *Result {
	t.Helper()
	res, err := e.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := graph.Evaluate(ref, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != len(want) {
		t.Fatalf("output count %d vs %d", len(res.Outputs), len(want))
	}
	for i := range want {
		if err := tensor.AllClose(res.Outputs[i], want[i], 1e-4, 1e-5); err != nil {
			t.Fatalf("output %d: %v", i, err)
		}
	}
	return res
}

// buildTwice builds the same model into two graphs (one compiled, one kept
// as reference).
func buildTwice(build func(g *graph.Graph)) (*graph.Graph, *graph.Graph) {
	a := graph.New("compiled")
	build(a)
	b := graph.New("reference")
	build(b)
	return a, b
}

func TestCompiledElementwiseChain(t *testing.T) {
	build := func(g *graph.Graph) {
		b := g.Ctx.NewDim("B")
		s := g.Ctx.NewDim("S")
		x := g.Parameter("x", tensor.F32, symshape.Shape{b, s, g.Ctx.StaticDim(8)})
		g.SetOutputs(g.Relu(g.Add(g.Exp(x), g.Tanh(x))))
	}
	cg, ref := buildTwice(build)
	e := compile(t, cg, fusion.DefaultConfig())
	r := tensor.NewRNG(1)
	for _, shape := range [][]int{{1, 1, 8}, {2, 5, 8}, {4, 33, 8}} {
		in := tensor.RandN(r, 1, shape...)
		checkAgainstReference(t, e, ref, []*tensor.Tensor{in})
	}
}

func TestCompiledSoftmax(t *testing.T) {
	build := func(g *graph.Graph) {
		b := g.Ctx.NewDim("B")
		l := g.Ctx.NewDim("L")
		g.Ctx.DeclareRange(l, 1, 2048)
		x := g.Parameter("x", tensor.F32, symshape.Shape{b, l})
		g.SetOutputs(g.Softmax(x))
	}
	cg, ref := buildTwice(build)
	e := compile(t, cg, fusion.DefaultConfig())
	r := tensor.NewRNG(2)
	for _, shape := range [][]int{{1, 3}, {4, 17}, {2, 256}} {
		in := tensor.RandN(r, 1, shape...)
		res := checkAgainstReference(t, e, ref, []*tensor.Tensor{in})
		// Stitched softmax must be a single launch.
		if res.Profile.Launches != 1 {
			t.Fatalf("stitched softmax launches = %d", res.Profile.Launches)
		}
	}
}

func TestCompiledLayerNorm(t *testing.T) {
	build := func(g *graph.Graph) {
		b := g.Ctx.NewDim("B")
		s := g.Ctx.NewDim("S")
		g.Ctx.DeclareRange(s, 1, 512)
		h := g.Ctx.StaticDim(16)
		x := g.Parameter("x", tensor.F32, symshape.Shape{b, s, h})
		rr := tensor.NewRNG(7)
		gamma := g.Constant(tensor.RandN(rr, 1, 16))
		beta := g.Constant(tensor.RandN(rr, 1, 16))
		g.SetOutputs(g.LayerNorm(x, gamma, beta, 1e-5))
	}
	cg, ref := buildTwice(build)
	e := compile(t, cg, fusion.DefaultConfig())
	r := tensor.NewRNG(3)
	for _, shape := range [][]int{{1, 2, 16}, {3, 9, 16}} {
		in := tensor.RandN(r, 1, shape...)
		checkAgainstReference(t, e, ref, []*tensor.Tensor{in})
	}
}

func TestCompiledMLPWithMatmul(t *testing.T) {
	build := func(g *graph.Graph) {
		b := g.Ctx.NewDim("B")
		x := g.Parameter("x", tensor.F32, symshape.Shape{b, g.Ctx.StaticDim(8)})
		rr := tensor.NewRNG(4)
		w1 := g.Constant(tensor.RandN(rr, 0.3, 8, 12))
		b1 := g.Constant(tensor.RandN(rr, 0.3, 12))
		w2 := g.Constant(tensor.RandN(rr, 0.3, 12, 4))
		h := g.Gelu(g.Add(g.MatMul(x, w1), b1))
		g.SetOutputs(g.MatMul(h, w2))
	}
	cg, ref := buildTwice(build)
	e := compile(t, cg, fusion.DefaultConfig())
	r := tensor.NewRNG(5)
	for _, batch := range []int{1, 6, 32} {
		in := tensor.RandN(r, 1, batch, 8)
		res := checkAgainstReference(t, e, ref, []*tensor.Tensor{in})
		// 2 library calls + 1 fused elementwise tail.
		if res.Profile.Launches != 3 {
			t.Fatalf("launches = %d, want 3", res.Profile.Launches)
		}
	}
}

func TestCompiledAttentionHead(t *testing.T) {
	// Scaled dot-product attention with dynamic batch and sequence length:
	// exercises matmul, transpose, stitched softmax, broadcasting.
	build := func(g *graph.Graph) {
		b := g.Ctx.NewDim("B")
		s := g.Ctx.NewDim("S")
		g.Ctx.DeclareRange(s, 1, 512)
		h := g.Ctx.StaticDim(8)
		q := g.Parameter("q", tensor.F32, symshape.Shape{b, s, h})
		k := g.Parameter("k", tensor.F32, symshape.Shape{b, s, h})
		v := g.Parameter("v", tensor.F32, symshape.Shape{b, s, h})
		scores := g.Mul(g.MatMul(q, g.Transpose(k, 0, 2, 1)), g.ConstScalar(0.35355))
		probs := g.Softmax(scores)
		g.SetOutputs(g.MatMul(probs, v))
	}
	cg, ref := buildTwice(build)
	e := compile(t, cg, fusion.DefaultConfig())
	r := tensor.NewRNG(6)
	for _, shape := range [][]int{{1, 4, 8}, {2, 19, 8}} {
		q := tensor.RandN(r, 1, shape...)
		k := tensor.RandN(r, 1, shape...)
		v := tensor.RandN(r, 1, shape...)
		checkAgainstReference(t, e, ref, []*tensor.Tensor{q, k, v})
	}
}

func TestCompiledGatherEmbedding(t *testing.T) {
	build := func(g *graph.Graph) {
		b := g.Ctx.NewDim("B")
		s := g.Ctx.NewDim("S")
		rr := tensor.NewRNG(8)
		table := g.Constant(tensor.RandN(rr, 1, 11, 6))
		idx := g.Parameter("ids", tensor.I32, symshape.Shape{b, s})
		g.SetOutputs(g.Relu(g.Gather(table, idx)))
	}
	cg, ref := buildTwice(build)
	e := compile(t, cg, fusion.DefaultConfig())
	r := tensor.NewRNG(9)
	ids := tensor.RandIndices(r, 11, 3, 5)
	checkAgainstReference(t, e, ref, []*tensor.Tensor{ids})
}

func TestCompiledConcatSliceTranspose(t *testing.T) {
	build := func(g *graph.Graph) {
		b := g.Ctx.NewDim("B")
		x := g.Parameter("x", tensor.F32, symshape.Shape{b, g.Ctx.StaticDim(4)})
		y := g.Parameter("y", tensor.F32, symshape.Shape{b, g.Ctx.StaticDim(3)})
		cat := g.Concat(1, x, y) // [B, 7]
		tr := g.Transpose(cat, 1, 0)
		g.SetOutputs(tr, g.StaticSlice(g.Transpose(tr, 1, 0), []int{0, 2}, []int{1, 4}))
	}
	cg, ref := buildTwice(build)
	e := compile(t, cg, fusion.DefaultConfig())
	r := tensor.NewRNG(10)
	for _, batch := range []int{1, 5} {
		x := tensor.RandN(r, 1, batch, 4)
		y := tensor.RandN(r, 1, batch, 3)
		checkAgainstReference(t, e, ref, []*tensor.Tensor{x, y})
	}
}

func TestCompiledReshapeFusion(t *testing.T) {
	build := func(g *graph.Graph) {
		b := g.Ctx.NewDim("B")
		s := g.Ctx.NewDim("S")
		x := g.Parameter("x", tensor.F32, symshape.Shape{b, s, g.Ctx.StaticDim(4)})
		g.SetOutputs(g.Relu(g.MergeDims(g.Exp(x), 0, 2)))
	}
	cg, ref := buildTwice(build)
	e := compile(t, cg, fusion.DefaultConfig())
	r := tensor.NewRNG(11)
	in := tensor.RandN(r, 1, 3, 7, 4)
	res := checkAgainstReference(t, e, ref, []*tensor.Tensor{in})
	if res.Profile.Launches != 1 {
		t.Fatalf("reshape chain should fuse to 1 launch, got %d", res.Profile.Launches)
	}
}

func TestCompiledMaskedSelect(t *testing.T) {
	build := func(g *graph.Graph) {
		b := g.Ctx.NewDim("B")
		s := g.Ctx.NewDim("S")
		x := g.Parameter("x", tensor.F32, symshape.Shape{b, s})
		mask := g.Parameter("mask", tensor.F32, symshape.Shape{b, s})
		pred := g.Compare(mask, g.ConstScalar(0.5), "gt")
		g.SetOutputs(g.Select(pred, x, g.ConstScalar(-1e9)))
	}
	cg, ref := buildTwice(build)
	e := compile(t, cg, fusion.DefaultConfig())
	r := tensor.NewRNG(12)
	x := tensor.RandN(r, 1, 2, 9)
	mask := tensor.RandUniform(r, 0, 1, 2, 9)
	checkAgainstReference(t, e, ref, []*tensor.Tensor{x, mask})
}

func TestSameExecutableServesManyShapes(t *testing.T) {
	// The core dynamic-shape property: one compiled artifact, many shapes,
	// zero recompiles — launches stay flat across shape changes.
	build := func(g *graph.Graph) {
		b := g.Ctx.NewDim("B")
		s := g.Ctx.NewDim("S")
		g.Ctx.DeclareRange(s, 1, 512)
		x := g.Parameter("x", tensor.F32, symshape.Shape{b, s})
		g.SetOutputs(g.Softmax(g.Relu(x)))
	}
	cg, ref := buildTwice(build)
	e := compile(t, cg, fusion.DefaultConfig())
	r := tensor.NewRNG(13)
	launches := -1
	for _, shape := range [][]int{{1, 7}, {3, 120}, {2, 300}, {8, 64}} {
		in := tensor.RandN(r, 1, shape...)
		res := checkAgainstReference(t, e, ref, []*tensor.Tensor{in})
		if launches == -1 {
			launches = res.Profile.Launches
		} else if res.Profile.Launches != launches {
			t.Fatalf("launch count changed across shapes: %d vs %d", res.Profile.Launches, launches)
		}
	}
}

func TestVariantDispatchByRowLength(t *testing.T) {
	build := func(g *graph.Graph) {
		b := g.Ctx.NewDim("B")
		l := g.Ctx.NewDim("L")
		x := g.Parameter("x", tensor.F32, symshape.Shape{b, l})
		g.SetOutputs(g.Sum(g.Exp(x), []int{-1}, false))
	}
	cg, _ := buildTwice(build)
	e := compile(t, cg, fusion.Config{EnableLoop: true, EnableInput: true})
	r := tensor.NewRNG(14)
	// Short rows -> rowwarp; long rows -> rowblock.
	short, err := e.Run([]*tensor.Tensor{tensor.RandN(r, 1, 4, 16)})
	if err != nil {
		t.Fatal(err)
	}
	if short.Profile.VariantHits["rowwarp"] == 0 {
		t.Fatalf("short rows must pick rowwarp: %v", short.Profile.VariantHits)
	}
	long, err := e.Run([]*tensor.Tensor{tensor.RandN(r, 1, 4, 256)})
	if err != nil {
		t.Fatal(err)
	}
	if long.Profile.VariantHits["rowblock"] == 0 {
		t.Fatalf("long rows must pick rowblock: %v", long.Profile.VariantHits)
	}
}

func TestVectorizedVariantDispatch(t *testing.T) {
	build := func(g *graph.Graph) {
		b := g.Ctx.NewDim("B")
		x := g.Parameter("x", tensor.F32, symshape.Shape{b})
		g.SetOutputs(g.Relu(g.Exp(x)))
	}
	cg, ref := buildTwice(build)
	e := compile(t, cg, fusion.DefaultConfig())
	r := tensor.NewRNG(15)
	res4 := checkAgainstReference(t, e, ref, []*tensor.Tensor{tensor.RandN(r, 1, 16)})
	if res4.Profile.VariantHits["vec4"] == 0 {
		t.Fatalf("divisible size must pick vec4: %v", res4.Profile.VariantHits)
	}
	res3 := checkAgainstReference(t, e, ref, []*tensor.Tensor{tensor.RandN(r, 1, 15)})
	if res3.Profile.VariantHits["scalar"] == 0 {
		t.Fatalf("non-divisible size must pick scalar: %v", res3.Profile.VariantHits)
	}
}

func TestGeneralReduceNonLastAxis(t *testing.T) {
	build := func(g *graph.Graph) {
		b := g.Ctx.NewDim("B")
		s := g.Ctx.NewDim("S")
		x := g.Parameter("x", tensor.F32, symshape.Shape{b, s, g.Ctx.StaticDim(4)})
		g.SetOutputs(g.Mean(x, []int{0}, false), g.Max(x, []int{1}, true))
	}
	cg, ref := buildTwice(build)
	e := compile(t, cg, fusion.DefaultConfig())
	r := tensor.NewRNG(16)
	in := tensor.RandN(r, 1, 3, 5, 4)
	checkAgainstReference(t, e, ref, []*tensor.Tensor{in})
}

func TestFusionReducesSimulatedTime(t *testing.T) {
	build := func(g *graph.Graph) {
		b := g.Ctx.NewDim("B")
		s := g.Ctx.NewDim("S")
		g.Ctx.DeclareRange(s, 1, 512)
		x := g.Parameter("x", tensor.F32, symshape.Shape{b, s})
		y := g.Relu(g.Add(g.Exp(x), g.ConstScalar(1)))
		g.SetOutputs(g.Softmax(y))
	}
	fusedG, _ := buildTwice(build)
	unfusedG, _ := buildTwice(build)
	fused := compile(t, fusedG, fusion.DefaultConfig())
	unfused := compile(t, unfusedG, fusion.Config{})
	r := tensor.NewRNG(17)
	in := tensor.RandN(r, 1, 8, 128)
	fres, err := fused.Run([]*tensor.Tensor{in})
	if err != nil {
		t.Fatal(err)
	}
	ures, err := unfused.Run([]*tensor.Tensor{in})
	if err != nil {
		t.Fatal(err)
	}
	if fres.Profile.Launches >= ures.Profile.Launches {
		t.Fatalf("fusion must reduce launches: %d vs %d", fres.Profile.Launches, ures.Profile.Launches)
	}
	if fres.Profile.SimulatedNs >= ures.Profile.SimulatedNs {
		t.Fatalf("fusion must reduce simulated time: %.0f vs %.0f",
			fres.Profile.SimulatedNs, ures.Profile.SimulatedNs)
	}
	if fres.Profile.BytesMoved >= ures.Profile.BytesMoved {
		t.Fatalf("fusion must reduce traffic: %.0f vs %.0f",
			fres.Profile.BytesMoved, ures.Profile.BytesMoved)
	}
	// Numerics must agree between the two compilations.
	for i := range fres.Outputs {
		if err := tensor.AllClose(fres.Outputs[i], ures.Outputs[i], 1e-4, 1e-5); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPoolReuseAcrossRuns(t *testing.T) {
	build := func(g *graph.Graph) {
		b := g.Ctx.NewDim("B")
		x := g.Parameter("x", tensor.F32, symshape.Shape{b, g.Ctx.StaticDim(8)})
		g.SetOutputs(g.Exp(x))
	}
	cg, _ := buildTwice(build)
	e := compile(t, cg, fusion.DefaultConfig())
	r := tensor.NewRNG(18)
	in := tensor.RandN(r, 1, 4, 8)
	for i := 0; i < 5; i++ {
		if _, err := e.Run([]*tensor.Tensor{in}); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Pool.Stats()
	if st.Reuses == 0 {
		t.Fatalf("pool must reuse buffers across runs: %+v", st)
	}
}

func TestSpeculativeVariantDispatch(t *testing.T) {
	// With a declared likely row length, the compiler emits a specialized
	// variant; invocations at the likely value take it, others fall back
	// — with identical numerics either way.
	build := func(g *graph.Graph) {
		b := g.Ctx.NewDim("B")
		l := g.Ctx.NewDim("L")
		g.Ctx.DeclareRange(l, 1, 512)
		g.Ctx.DeclareLikely(l, 64)
		x := g.Parameter("x", tensor.F32, symshape.Shape{b, l})
		g.SetOutputs(g.Softmax(g.Relu(x)))
	}
	cg, ref := buildTwice(build)
	e := compile(t, cg, fusion.DefaultConfig())
	r := tensor.NewRNG(31)

	hot := checkAgainstReference(t, e, ref, []*tensor.Tensor{tensor.RandN(r, 1, 3, 64)})
	if hot.Profile.VariantHits["spec64"] == 0 {
		t.Fatalf("likely shape must take the speculative variant: %v", hot.Profile.VariantHits)
	}
	cold := checkAgainstReference(t, e, ref, []*tensor.Tensor{tensor.RandN(r, 1, 3, 65)})
	if cold.Profile.VariantHits["spec64"] != 0 {
		t.Fatalf("non-likely shape must not take the speculative variant: %v", cold.Profile.VariantHits)
	}
	// The speculative variant must be at least as fast in the cost model.
	if hot.Profile.SimulatedNs > cold.Profile.SimulatedNs*1.05 {
		t.Fatalf("speculation should not slow the hot shape: %.0f vs %.0f",
			hot.Profile.SimulatedNs, cold.Profile.SimulatedNs)
	}
}

func TestSpeculativeElementwiseVariant(t *testing.T) {
	build := func(g *graph.Graph) {
		b := g.Ctx.NewDim("B")
		h := g.Ctx.NewDim("H")
		g.Ctx.DeclareLikely(h, 32)
		x := g.Parameter("x", tensor.F32, symshape.Shape{b, h})
		g.SetOutputs(g.Relu(g.Add(g.Exp(x), g.ConstScalar(1))))
	}
	cg, ref := buildTwice(build)
	e := compile(t, cg, fusion.DefaultConfig())
	r := tensor.NewRNG(32)
	hot := checkAgainstReference(t, e, ref, []*tensor.Tensor{tensor.RandN(r, 1, 2, 32)})
	if hot.Profile.VariantHits["spec32"] == 0 {
		t.Fatalf("hot shape variants: %v", hot.Profile.VariantHits)
	}
	checkAgainstReference(t, e, ref, []*tensor.Tensor{tensor.RandN(r, 1, 2, 33)})
}

func TestConcurrentRunsAreSafe(t *testing.T) {
	// One Engine, many goroutines, different shapes: results must match
	// the reference and nothing may race (run with -race in CI).
	build := func(g *graph.Graph) {
		b := g.Ctx.NewDim("B")
		l := g.Ctx.NewDim("L")
		g.Ctx.DeclareRange(l, 1, 256)
		x := g.Parameter("x", tensor.F32, symshape.Shape{b, l})
		g.SetOutputs(g.Softmax(x))
	}
	cg, ref := buildTwice(build)
	e := compile(t, cg, fusion.DefaultConfig())
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			r := tensor.NewRNG(uint64(100 + i))
			in := tensor.RandN(r, 1, 1+i%3, 5+7*i)
			res, err := e.Run([]*tensor.Tensor{in})
			if err != nil {
				errs <- err
				return
			}
			want, err := graph.Evaluate(ref, []*tensor.Tensor{in})
			if err != nil {
				errs <- err
				return
			}
			errs <- tensor.AllClose(res.Outputs[0], want[0], 1e-4, 1e-5)
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	build := func(g *graph.Graph) {
		b := g.Ctx.NewDim("B")
		x := g.Parameter("x", tensor.F32, symshape.Shape{b, g.Ctx.StaticDim(4)})
		y := g.Parameter("y", tensor.F32, symshape.Shape{b, g.Ctx.StaticDim(4)})
		g.SetOutputs(g.Add(x, y))
	}
	cg, _ := buildTwice(build)
	e := compile(t, cg, fusion.DefaultConfig())
	r := tensor.NewRNG(33)
	good := tensor.RandN(r, 1, 3, 4)
	// Wrong arity.
	if _, err := e.Run([]*tensor.Tensor{good}); err == nil {
		t.Fatal("arity mismatch must error")
	}
	// Wrong static dim.
	if _, err := e.Run([]*tensor.Tensor{good, tensor.RandN(r, 1, 3, 5)}); err == nil {
		t.Fatal("static dim mismatch must error")
	}
	// Inconsistent symbol binding (B=3 vs B=2).
	if _, err := e.Run([]*tensor.Tensor{good, tensor.RandN(r, 1, 2, 4)}); err == nil {
		t.Fatal("inconsistent symbol binding must error")
	}
	// Wrong rank.
	if _, err := e.Run([]*tensor.Tensor{good, tensor.RandN(r, 1, 3)}); err == nil {
		t.Fatal("rank mismatch must error")
	}
}

func TestZeroExtentDimRejectedByRangeFacts(t *testing.T) {
	// Dynamic dims default to a declared lower bound of 1; a zero-sized
	// input is rejected by the compiled shape program's validation rather
	// than producing empty kernels.
	build := func(g *graph.Graph) {
		b := g.Ctx.NewDim("B")
		x := g.Parameter("x", tensor.F32, symshape.Shape{b, g.Ctx.StaticDim(4)})
		g.SetOutputs(g.Relu(x))
	}
	cg, _ := buildTwice(build)
	e := compile(t, cg, fusion.DefaultConfig())
	if _, err := e.Run([]*tensor.Tensor{tensor.New(tensor.F32, 0, 4)}); err == nil {
		t.Fatal("zero-extent dim must be rejected")
	}
}
