// Compile-time memory footprint estimation: how many pooled bytes can one
// run of this executable hold at once? The BladeDISC++ observation is that
// symbolic shapes make this answerable before any request arrives — the
// shape program already computes every buffer extent from the input dims,
// and the task DAG's refcounts say which buffers are alive together. The
// plan built here is evaluated per run (concrete dims bound by the shape
// program) to reserve against the ral.Governor before any allocation, and
// against declared dim ranges (symshape.UpperBound) for capacity planning.
//
// The estimate is an upper bound on the pool accounting of any execution
// order the engine can take:
//
//   - sequential engines walk tasks in plan order, so the peak is the max
//     over tasks of (buffers alive during that task + its scratch rows);
//   - parallel engines may interleave tasks arbitrarily, so the bound is
//     the sum of every task output plus worst-case concurrent scratch
//     (workers chunks of one kernel each allocate private rows) plus one
//     per-worker partials buffer per reduction kernel.
//
// Sizes round to the pool's power-of-two classes (ral.RoundElems) so the
// reservation matches Pool accounting exactly, not just asymptotically.
package exec

import (
	"context"
	"fmt"

	"godisc/internal/ral"
	"godisc/internal/symshape"
)

// footprintPlan is the compile-time side of the estimate.
type footprintPlan struct {
	// slotRefs/slotDims describe each pooled slot's extent: the compiled
	// numel refs (runtime evaluation) and the symbolic shape (bound
	// evaluation). Nil entries are non-pooled slots (params, constants).
	slotRefs [][]dimRef
	slotDims []symshape.Shape
	// pooled lists the pooled slot ids.
	pooled []int
	// live[i] is the set of pooled slots held while task i runs in plan
	// order: previously produced buffers not yet freed by the refcount
	// plan, plus task i's own outputs.
	live [][]int32
}

// buildFootprint derives the plan from the task DAG and refcounts; called
// once at Compile, after buildSchedule.
func (e *Executable) buildFootprint() {
	fp := &footprintPlan{
		slotRefs: make([][]dimRef, e.nSlots),
		slotDims: make([]symshape.Shape, e.nSlots),
		live:     make([][]int32, len(e.tasks)),
	}
	for _, t := range e.tasks {
		for oi, sl := range t.outSlots {
			if fp.slotRefs[sl] == nil {
				fp.slotRefs[sl] = t.u.outShapeRefs[oi]
				fp.slotDims[sl] = t.u.group.Outputs[oi].Shape
				fp.pooled = append(fp.pooled, sl)
			}
		}
	}
	// Replay the sequential refcount plan symbolically to capture which
	// pooled buffers coexist at each step.
	refs := append([]int32(nil), e.refs0...)
	held := map[int]bool{}
	for i, t := range e.tasks {
		for _, sl := range t.outSlots {
			held[sl] = true
		}
		snap := make([]int32, 0, len(held))
		for sl := range held {
			snap = append(snap, int32(sl))
		}
		fp.live[i] = snap
		if !e.opts.DisableLivenessPlanning {
			for _, sl := range t.reads {
				refs[sl]--
				if refs[sl] == 0 && fp.slotRefs[sl] != nil {
					delete(held, sl)
				}
			}
		}
	}
	e.fp = fp
}

// resolvedWorkers mirrors RunContext's worker resolution: the configured
// count, or the shared pool's size when only a pool was given.
func (e *Executable) resolvedWorkers() int {
	w := e.opts.Workers
	if w <= 0 && e.opts.WorkerPool != nil {
		w = e.opts.WorkerPool.Size()
	}
	if w < 1 {
		w = 1
	}
	return w
}

// scratchRowElems evaluates the rounded scratch-row size of a task's
// kernel (the last domain extent) against the run's shape values.
func scratchRowElems(vals []int64, t *task) int64 {
	refs := t.u.domainRefs
	row := 0
	if n := len(refs); n > 0 {
		r := refs[n-1]
		if r.Slot < 0 {
			row = int(r.Static)
		} else {
			row = int(vals[r.Slot])
		}
	}
	return ral.RoundElems(row)
}

// footprintElems folds per-slot sizes and per-task scratch rows into the
// run's worst-case pooled element count for the given engine mode.
func (e *Executable) footprintElems(sizes []int64, rowOf func(*task) int64, workers int) int64 {
	fp := e.fp
	if fp == nil {
		return 0
	}
	if workers > 1 && len(e.tasks) > 1 {
		// Any-order bound: every output plus worst-case concurrent
		// scratch (up to `workers` chunks of a kernel run at once, each
		// with private rows) plus one partials buffer per reduction.
		var total int64
		for _, sl := range fp.pooled {
			total += sizes[sl]
		}
		for _, t := range e.tasks {
			if k := t.u.kernel; k != nil {
				if k.ScratchRows > 0 {
					total += int64(workers) * int64(k.ScratchRows) * rowOf(t)
				}
				if k.Partial != nil {
					total += ral.RoundElems(workers)
				}
			}
		}
		return total
	}
	// Sequential peak: max over plan steps.
	var peak int64
	for i, t := range e.tasks {
		var cur int64
		for _, sl := range fp.live[i] {
			cur += sizes[sl]
		}
		if k := t.u.kernel; k != nil && k.ScratchRows > 0 {
			cur += int64(k.ScratchRows) * rowOf(t)
		}
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// footprintBytes is the per-run reservation at concrete shape values.
func (e *Executable) footprintBytes(vals []int64, workers int) int64 {
	fp := e.fp
	if fp == nil {
		return 0
	}
	sizes := make([]int64, e.nSlots)
	for _, sl := range fp.pooled {
		sizes[sl] = ral.RoundElems(refsNumel(vals, fp.slotRefs[sl]))
	}
	elems := e.footprintElems(sizes, func(t *task) int64 { return scratchRowElems(vals, t) }, workers)
	return 4 * elems
}

// FootprintBytes reports the pooled-buffer reservation one run at the
// given concrete input shapes makes against a memory governor (0 when the
// graph allocates nothing). It is an upper bound on the pool's in-use
// high-water mark for that run, in the pool's own rounded accounting.
func (e *Executable) FootprintBytes(shapes [][]int) (int64, error) {
	vals, err := e.prog.Run(shapes)
	if err != nil {
		return 0, err
	}
	return e.footprintBytes(vals, e.resolvedWorkers()), nil
}

// MaxFootprintBytes bounds FootprintBytes over every admissible input
// shape, from the declared symbolic dim ranges — the capacity-planning
// number ("how much budget does one request of this engine ever need?").
// ok is false when some dimension has no declared upper bound.
func (e *Executable) MaxFootprintBytes() (int64, bool) {
	if e.maxFPSet {
		return e.maxFP, e.maxFPOK
	}
	fp := e.fp
	if fp == nil {
		return 0, true
	}
	ctx := e.Graph.Ctx
	boundNumel := func(s symshape.Shape) (int64, bool) {
		n := int64(1)
		for _, d := range s {
			b, ok := ctx.UpperBound(d)
			if !ok {
				return 0, false
			}
			if b > 0 && n > (int64(1)<<40)/b {
				return 0, false
			}
			n *= b
		}
		return n, true
	}
	sizes := make([]int64, e.nSlots)
	for _, sl := range fp.pooled {
		n, ok := boundNumel(fp.slotDims[sl])
		if !ok {
			return 0, false
		}
		sizes[sl] = ral.RoundElems(int(n))
	}
	rowOK := true
	rowOf := func(t *task) int64 {
		dom := t.u.group.Domain
		if len(dom) == 0 {
			return ral.RoundElems(0)
		}
		b, ok := ctx.UpperBound(dom[len(dom)-1])
		if !ok {
			rowOK = false
			return 0
		}
		return ral.RoundElems(int(b))
	}
	elems := e.footprintElems(sizes, rowOf, e.resolvedWorkers())
	if !rowOK {
		return 0, false
	}
	return 4 * elems, true
}

// reserveFootprint blocks until the run's footprint fits under the
// governor's budget (or fails with discerr.ErrMemoryBudget). The returned
// release must run after the run's buffers are back in the pool.
func (e *Executable) reserveFootprint(ctx context.Context, vals []int64, workers int) (func(), error) {
	gov := e.opts.Governor
	if gov == nil {
		return func() {}, nil
	}
	need := e.footprintBytes(vals, workers)
	release, err := gov.Reserve(ctx, need)
	if err != nil {
		return nil, fmt.Errorf("exec: %s: %w", e.Graph.Name, err)
	}
	return release, nil
}
